package mapa

import (
	"fmt"
	"math/rand"
	"testing"
)

// checkAvailInvariant asserts the soundness contract the match
// pipeline's keying depends on (see matchcache.Key): the System's
// availability graph must be exactly the topology's induced subgraph
// over the currently free GPUs — edges a pure function of the free
// vertex set — after any interleaving of allocates and releases.
func checkAvailInvariant(t *testing.T, s *System, step string) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	want := s.top.Graph.InducedSubgraph(s.avail.Vertices())
	if !s.avail.Equal(want) {
		t.Fatalf("%s: avail is not the induced subgraph over free GPUs:\n avail: %v\n want:  %v",
			step, s.avail, want)
	}
}

// TestSystemAllocateReleaseInterleavingKeepsInducedSubgraph drives a
// System through out-of-order allocate/release interleavings and
// checks the induced-subgraph invariant after every single operation.
// Releases deliberately do not mirror allocation order: the paper's
// Sec. 3.6 state update must hold for arbitrary completion orders.
func TestSystemAllocateReleaseInterleavingKeepsInducedSubgraph(t *testing.T) {
	s, err := NewSystem("dgx-v100", "preserve")
	if err != nil {
		t.Fatal(err)
	}
	checkAvailInvariant(t, s, "idle")

	// Fill the machine with four 2-GPU leases…
	var leases []*Lease
	for i := 0; i < 4; i++ {
		l, err := s.Allocate(JobRequest{NumGPUs: 2, Shape: "Ring", Sensitive: i%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		leases = append(leases, l)
		checkAvailInvariant(t, s, fmt.Sprintf("allocate %d", i))
	}
	// …then release them out of order (2, 0, 3, 1), reallocating a
	// differently shaped job between releases so frees interleave with
	// new placements.
	for step, idx := range []int{2, 0, 3, 1} {
		if err := s.Release(leases[idx]); err != nil {
			t.Fatal(err)
		}
		checkAvailInvariant(t, s, fmt.Sprintf("release lease %d", idx))
		if step == 1 {
			l, err := s.Allocate(JobRequest{NumGPUs: 3, Shape: "Chain", Sensitive: true})
			if err != nil {
				t.Fatal(err)
			}
			checkAvailInvariant(t, s, "interleaved allocate")
			defer func() {
				if err := s.Release(l); err != nil {
					t.Fatal(err)
				}
			}()
		}
	}

	// Double release must fail and leave the state untouched.
	if err := s.Release(leases[2]); err == nil {
		t.Fatal("double release succeeded")
	}
	checkAvailInvariant(t, s, "after rejected double release")
}

// TestSystemRandomizedInterleavingKeepsInducedSubgraph is the seeded
// stress variant: hundreds of random allocates and out-of-order
// releases across shapes and sizes, invariant checked at every step,
// ending with a full drain back to the idle machine.
func TestSystemRandomizedInterleavingKeepsInducedSubgraph(t *testing.T) {
	s, err := NewSystem("dgx-v100", "preserve", WithWarmShapes(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	shapes := []string{"Ring", "Chain", "Star", "AllToAll"}
	var live []*Lease
	for step := 0; step < 300; step++ {
		if len(live) > 0 && (rng.Intn(2) == 0 || len(s.FreeGPUs()) < 2) {
			// Release a random live lease — not the most recent one.
			i := rng.Intn(len(live))
			if err := s.Release(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			checkAvailInvariant(t, s, fmt.Sprintf("step %d release", step))
			continue
		}
		maxK := 3
		if free := len(s.FreeGPUs()); free < maxK {
			maxK = free
		}
		k := 1 + rng.Intn(maxK)
		l, err := s.Allocate(JobRequest{NumGPUs: k, Shape: shapes[rng.Intn(len(shapes))], Sensitive: rng.Intn(2) == 0})
		if err != nil {
			t.Fatalf("step %d: allocate %d GPUs with %d free: %v", step, k, len(s.FreeGPUs()), err)
		}
		live = append(live, l)
		checkAvailInvariant(t, s, fmt.Sprintf("step %d allocate", step))
	}
	for _, l := range live {
		if err := s.Release(l); err != nil {
			t.Fatal(err)
		}
	}
	checkAvailInvariant(t, s, "after drain")
	if free := s.FreeGPUs(); len(free) != s.NumGPUs() {
		t.Fatalf("drained system has %d free GPUs, want %d", len(free), s.NumGPUs())
	}
}

// TestSystemChurnLiveViewParity drives two Systems through the same
// seeded >=500-step allocate/release interleaving: one running the
// full pipeline (warmed universes + delta-maintained live views), one
// stripped to plain per-decision searches. Every allocation must pick
// identical GPU sets with identical scores, the induced-subgraph
// invariant must hold throughout on the pipelined system, and at the
// end the live views — not the filter path — must have served its
// misses.
func TestSystemChurnLiveViewParity(t *testing.T) {
	fast, err := NewSystem("dgx-a100", "preserve", WithWarmShapes(4))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewSystem("dgx-a100", "preserve", WithoutCache(), WithoutUniverses())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4242))
	shapes := []string{"Ring", "Chain", "Star", "AllToAll"}
	type pair struct{ fast, slow *Lease }
	var live []pair
	for step := 0; step < 500; step++ {
		if len(live) > 0 && (rng.Intn(2) == 0 || len(fast.FreeGPUs()) < 2) {
			i := rng.Intn(len(live))
			if err := fast.Release(live[i].fast); err != nil {
				t.Fatal(err)
			}
			if err := slow.Release(live[i].slow); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			checkAvailInvariant(t, fast, fmt.Sprintf("step %d release", step))
			continue
		}
		maxK := 3
		if free := len(fast.FreeGPUs()); free < maxK {
			maxK = free
		}
		req := JobRequest{
			NumGPUs:   1 + rng.Intn(maxK),
			Shape:     shapes[rng.Intn(len(shapes))],
			Sensitive: rng.Intn(2) == 0,
		}
		lf, err := fast.Allocate(req)
		if err != nil {
			t.Fatalf("step %d: pipelined allocate: %v", step, err)
		}
		ls, err := slow.Allocate(req)
		if err != nil {
			t.Fatalf("step %d: plain allocate: %v", step, err)
		}
		if fmt.Sprint(lf.GPUs) != fmt.Sprint(ls.GPUs) ||
			lf.EffBW != ls.EffBW || lf.AggBW != ls.AggBW || lf.PreservedBW != ls.PreservedBW {
			t.Fatalf("step %d (%+v): pipelined decision diverged:\n got gpus=%v eff=%v agg=%v pres=%v\nwant gpus=%v eff=%v agg=%v pres=%v",
				step, req, lf.GPUs, lf.EffBW, lf.AggBW, lf.PreservedBW, ls.GPUs, ls.EffBW, ls.AggBW, ls.PreservedBW)
		}
		live = append(live, pair{lf, ls})
		checkAvailInvariant(t, fast, fmt.Sprintf("step %d allocate", step))
	}
	st := fast.CacheStats()
	if st.ViewServed == 0 || st.LiveViews == 0 {
		t.Fatalf("churn was not served by live views: %+v", st)
	}
	// The fast system's slow twin scored every candidate dynamically,
	// so the 500-step byte-parity above is also the system-level
	// table-vs-dynamic-scoring check — provided the fast side really
	// took the table path.
	if st.TableServed != st.ViewServed || st.ScoreTables == 0 {
		t.Fatalf("churn was not table-served (%d of %d view-served, %d tables): %+v",
			st.TableServed, st.ViewServed, st.ScoreTables, st)
	}
	if st.FilterServed != 0 {
		t.Fatalf("churn fell back to %d full-universe scans: %+v", st.FilterServed, st)
	}
	if st.ViewRejected != 0 {
		t.Fatalf("live views rejected %d decisions mid-churn: %+v", st.ViewRejected, st)
	}
}
