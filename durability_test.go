package mapa

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"mapa/internal/graph"
	"mapa/internal/journal"
)

// runScriptedWorkload drives one deterministic pass over every
// journaled mutation kind: owned and TTL'd allocations, client
// releases, health mark/restore, link degradation before and after a
// MIG repartition, renewals, and a reaper sweep that expires two
// leases. mid (optional) runs at the point where the machine is fully
// free — the snapshot tests compact there.
func runScriptedWorkload(t *testing.T, s *System, mid func()) {
	t.Helper()
	alloc := func(req JobRequest) *Lease {
		t.Helper()
		l, err := s.Allocate(req)
		if err != nil {
			t.Fatalf("scripted allocate %+v: %v", req, err)
		}
		return l
	}
	release := func(l *Lease) {
		t.Helper()
		if err := s.Release(l); err != nil {
			t.Fatalf("scripted release %d: %v", l.ID, err)
		}
	}

	s.mu.Lock()
	origBW := s.top.Graph.Weight(0, 1)
	s.mu.Unlock()

	l1 := alloc(JobRequest{NumGPUs: 2, Owner: "tenant-a", TTL: time.Hour})
	l2 := alloc(JobRequest{NumGPUs: 3, Owner: "tenant-b"})
	l3 := alloc(JobRequest{NumGPUs: 2, Sensitive: true, TTL: 30 * time.Minute})
	release(l2)
	marked := s.FreeGPUs()[0]
	if err := s.MarkUnhealthy(marked); err != nil {
		t.Fatalf("scripted mark %d: %v", marked, err)
	}
	l4 := alloc(JobRequest{NumGPUs: 2, Owner: "tenant-a"})
	if err := s.DegradeLink(0, 1, 40); err != nil {
		t.Fatalf("scripted degrade (0,1): %v", err)
	}
	if err := s.Restore(marked); err != nil {
		t.Fatalf("scripted restore %d: %v", marked, err)
	}
	if _, err := s.Renew(l1.ID, 2*time.Hour); err != nil {
		t.Fatalf("scripted renew %d: %v", l1.ID, err)
	}
	release(l1)
	release(l3)
	release(l4)
	// Repartition recomposes the machine and validates canonical link
	// weights, so the operator must repair the port first.
	if err := s.DegradeLink(0, 1, origBW); err != nil {
		t.Fatalf("scripted link repair (0,1): %v", err)
	}
	if mid != nil {
		mid()
	}
	if err := s.Repartition(map[int]int{0: 2, 5: 3}); err != nil {
		t.Fatalf("scripted repartition: %v", err)
	}
	l5 := alloc(JobRequest{NumGPUs: 2, Owner: "tenant-c", TTL: time.Hour})
	l6 := alloc(JobRequest{NumGPUs: 3})
	if _, err := s.Renew(l6.ID, time.Hour); err != nil {
		t.Fatalf("scripted renew %d: %v", l6.ID, err)
	}
	reaped, err := s.ReapExpired(time.Now().Add(3 * time.Hour))
	if err != nil {
		t.Fatalf("scripted reap: %v", err)
	}
	if want := []int{l5.ID, l6.ID}; !reflect.DeepEqual(reaped, want) {
		t.Fatalf("scripted reap = %v, want %v", reaped, want)
	}
	alloc(JobRequest{NumGPUs: 2, Owner: "tenant-d"})
	free := s.FreeGPUs()
	if err := s.DegradeLink(free[0], free[1], 30); err != nil {
		t.Fatalf("scripted degrade (%d,%d): %v", free[0], free[1], err)
	}
}

// applyCommitOps advances a journal-less oracle System through a
// prefix of the observed linearization. Allocations re-run the real
// policy decision and must reproduce the committed lease exactly; the
// wall-clock TTL deadline is installed from the recorded op, matching
// what recovery installs from the journal.
func applyCommitOps(t *testing.T, r *System, ops []commitOp) {
	t.Helper()
	for i, op := range ops {
		switch op.kind {
		case opAllocate:
			l, err := r.Allocate(op.req)
			if err != nil {
				t.Fatalf("oracle op %d: allocate %+v: %v", i, op.req, err)
			}
			if l.ID != op.id || !reflect.DeepEqual(l.GPUs, op.gpus) {
				t.Fatalf("oracle op %d: got lease %d %v, observed %d %v", i, l.ID, l.GPUs, op.id, op.gpus)
			}
			r.mu.Lock()
			if op.deadline != 0 {
				r.expiry[l.ID] = op.deadline
			} else {
				delete(r.expiry, l.ID)
			}
			r.mu.Unlock()
		case opRelease:
			r.mu.Lock()
			err := r.releaseLocked(op.id, op.expired)
			r.mu.Unlock()
			if err != nil {
				t.Fatalf("oracle op %d: release %d: %v", i, op.id, err)
			}
		case opMark:
			if err := r.MarkUnhealthy(op.gpus...); err != nil {
				t.Fatalf("oracle op %d: mark %v: %v", i, op.gpus, err)
			}
		case opRestore:
			if err := r.Restore(op.gpus...); err != nil {
				t.Fatalf("oracle op %d: restore %v: %v", i, op.gpus, err)
			}
		case opDegrade:
			if err := r.DegradeLink(op.u, op.v, op.bw); err != nil {
				t.Fatalf("oracle op %d: degrade (%d,%d): %v", i, op.u, op.v, err)
			}
		case opRepartition:
			m := make(map[int]int, len(op.slices))
			for _, sl := range op.slices {
				m[sl.GPU] = sl.Instances
			}
			if err := r.Repartition(m); err != nil {
				t.Fatalf("oracle op %d: repartition %v: %v", i, m, err)
			}
		case opRenew:
			r.mu.Lock()
			err := r.renewLocked(op.id, op.deadline)
			r.mu.Unlock()
			if err != nil {
				t.Fatalf("oracle op %d: renew %d: %v", i, op.id, err)
			}
		default:
			t.Fatalf("oracle op %d: unknown kind %q", i, op.kind)
		}
	}
}

func sortedEdges(g *graph.Graph) []graph.Edge {
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// assertSystemsEqual is the field-exact bar of the crashpoint sweep:
// leases (IDs, GPU sets, owners, TTL deadlines), the free set, the
// unhealthy set, the repartition map, every link weight of the serving
// and physical graphs, and the ID counters.
func assertSystemsEqual(t *testing.T, label string, got, want *System) {
	t.Helper()
	got.mu.Lock()
	defer got.mu.Unlock()
	want.mu.Lock()
	defer want.mu.Unlock()
	check := func(field string, g, w any) {
		t.Helper()
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: %s diverges:\n got  %v\n want %v", label, field, g, w)
		}
	}
	check("leases", got.leases, want.leases)
	check("leasedBy", got.leasedBy, want.leasedBy)
	check("owners", got.owners, want.owners)
	check("expiry", got.expiry, want.expiry)
	check("unhealthy", got.unhealthy, want.unhealthy)
	check("free set", got.avail.Vertices(), want.avail.Vertices())
	check("nextID", got.nextID, want.nextID)
	check("instances", got.instances, want.instances)
	check("physOf", got.physOf, want.physOf)
	check("fractions", got.fractions, want.fractions)
	check("nextVID", got.nextVID, want.nextVID)
	check("graph edges", sortedEdges(got.top.Graph), sortedEdges(want.top.Graph))
	check("physical edges", sortedEdges(got.top.Physical), sortedEdges(want.top.Physical))
	check("avail edges", sortedEdges(got.avail), sortedEdges(want.avail))
}

// recoverAt builds a System from a journal directory and returns it
// with its journal closed (the sweep only inspects recovered state).
func recoverAt(t *testing.T, label, dir string) *System {
	t.Helper()
	rec, err := NewSystem("dgx-a100", "preserve", WithJournal(dir, journal.Options{}))
	if err != nil {
		t.Fatalf("%s: recovery: %v", label, err)
	}
	rec.mu.Lock()
	rec.jw.Close()
	rec.jw = nil
	rec.mu.Unlock()
	return rec
}

// TestCrashpointSweepJournalPrefixes is the crash-fault injection
// harness: after a scripted run touching every mutation kind, recovery
// from every journal prefix — every "the process died exactly here"
// point — must reconstruct state field-identical to the serialized
// replay oracle advanced through the same number of committed ops.
func TestCrashpointSweepJournalPrefixes(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSystem("dgx-a100", "preserve", WithJournal(dir, journal.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	var log []commitOp
	s.onCommit = func(op commitOp) { log = append(log, op) }
	runScriptedWorkload(t, s, nil)

	walPath := filepath.Join(dir, "wal")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	_, ends, torn, err := journal.ScanFile(walPath)
	if err != nil || torn {
		t.Fatalf("ScanFile: torn=%v err=%v", torn, err)
	}
	if len(ends) != len(log) {
		t.Fatalf("journal has %d records, linearization has %d ops — must be 1:1", len(ends), len(log))
	}

	for cut := 0; cut <= len(log); cut++ {
		sub := t.TempDir()
		var prefix []byte
		if cut > 0 {
			prefix = data[:ends[cut-1]]
		}
		if err := os.WriteFile(filepath.Join(sub, "wal"), prefix, 0o644); err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("prefix %d/%d", cut, len(log))
		rec := recoverAt(t, label, sub)
		if got := rec.Recovery().Records; got != cut {
			t.Errorf("%s: replayed %d records", label, got)
		}
		oracle, err := NewSystem("dgx-a100", "preserve")
		if err != nil {
			t.Fatal(err)
		}
		applyCommitOps(t, oracle, log[:cut])
		assertSystemsEqual(t, label, rec, oracle)
		if t.Failed() {
			t.FailNow()
		}
	}

	// Torn tails: a crash mid-append leaves a partial frame after a
	// record boundary; recovery must land exactly on the boundary.
	for _, k := range []int{0, len(log) / 2, len(log) - 2} {
		cutAt := ends[k] + 5
		if cutAt >= int64(len(data)) {
			continue
		}
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, "wal"), data[:cutAt], 0o644); err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("torn tail after record %d", k+1)
		rec := recoverAt(t, label, sub)
		oracle, err := NewSystem("dgx-a100", "preserve")
		if err != nil {
			t.Fatal(err)
		}
		applyCommitOps(t, oracle, log[:k+1])
		assertSystemsEqual(t, label, rec, oracle)
	}
}

// TestCrashpointSweepWithSnapshot reruns the sweep across a compaction
// boundary: the journal snapshots mid-run (truncating the wal), so
// every later crash point recovers as snapshot + partial journal.
func TestCrashpointSweepWithSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSystem("dgx-a100", "preserve", WithJournal(dir, journal.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	var log []commitOp
	snapCount := -1
	s.onCommit = func(op commitOp) { log = append(log, op) }
	runScriptedWorkload(t, s, func() {
		if err := s.Snapshot(); err != nil {
			t.Fatalf("mid-run snapshot: %v", err)
		}
		snapCount = len(log)
	})
	if snapCount < 0 {
		t.Fatal("snapshot hook never ran")
	}

	snapData, err := os.ReadFile(filepath.Join(dir, "snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "wal")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	_, ends, torn, err := journal.ScanFile(walPath)
	if err != nil || torn {
		t.Fatalf("ScanFile: torn=%v err=%v", torn, err)
	}
	if len(ends) != len(log)-snapCount {
		t.Fatalf("post-snapshot wal has %d records, want %d", len(ends), len(log)-snapCount)
	}

	for j := 0; j <= len(ends); j++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, "snapshot"), snapData, 0o644); err != nil {
			t.Fatal(err)
		}
		var prefix []byte
		if j > 0 {
			prefix = data[:ends[j-1]]
		}
		if err := os.WriteFile(filepath.Join(sub, "wal"), prefix, 0o644); err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("snapshot + %d records", j)
		rec := recoverAt(t, label, sub)
		if st := rec.Recovery(); st.SnapshotLSN != uint64(snapCount) || st.Records != j {
			t.Errorf("%s: recovery stats %+v, want snapshot LSN %d + %d records", label, st, snapCount, j)
		}
		oracle, err := NewSystem("dgx-a100", "preserve")
		if err != nil {
			t.Fatal(err)
		}
		applyCommitOps(t, oracle, log[:snapCount+j])
		assertSystemsEqual(t, label, rec, oracle)
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestCloseWritesFinalSnapshot pins the drain contract: after Close,
// reopening recovers the whole state from the snapshot alone, with
// zero records to replay.
func TestCloseWritesFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSystem("dgx-a100", "preserve", WithJournal(dir, journal.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	runScriptedWorkload(t, s, nil)
	wantLeases := s.Leases()
	wantFree := s.FreeGPUs()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := NewSystem("dgx-a100", "preserve", WithJournal(dir, journal.Options{}))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	st := r.Recovery()
	if st.Records != 0 {
		t.Errorf("recovered with %d journal records, want all state from the final snapshot", st.Records)
	}
	if !reflect.DeepEqual(r.Leases(), wantLeases) {
		t.Errorf("leases after reopen:\n got  %+v\n want %+v", r.Leases(), wantLeases)
	}
	if !reflect.DeepEqual(r.FreeGPUs(), wantFree) {
		t.Errorf("free set after reopen: %v, want %v", r.FreeGPUs(), wantFree)
	}
}

// TestExpiredLeasesReapedAfterRecovery: a lease whose TTL lapsed while
// the daemon was down is still held right after recovery (recovery
// replays history, it does not invent releases) and is then reaped —
// journaled as an expired release that survives the next crash.
func TestExpiredLeasesReapedAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSystem("dgx-a100", "preserve", WithJournal(dir, journal.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	short, err := s.Allocate(JobRequest{NumGPUs: 2, Owner: "tenant-a", TTL: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	durable, err := s.Allocate(JobRequest{NumGPUs: 3, Owner: "tenant-b"})
	if err != nil {
		t.Fatal(err)
	}
	// Crash without snapshot or clean close.
	s.mu.Lock()
	s.jw.Close()
	s.jw = nil
	s.mu.Unlock()

	r, err := NewSystem("dgx-a100", "preserve", WithJournal(dir, journal.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Leases()); got != 2 {
		t.Fatalf("recovered %d leases, want 2 (expiry is the reaper's call, not recovery's)", got)
	}
	reaped, err := r.ReapExpired(time.Now().Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reaped, []int{short.ID}) {
		t.Fatalf("reaped %v, want [%d]", reaped, short.ID)
	}
	if got := r.Reaped(); got != 1 {
		t.Errorf("Reaped() = %d, want 1", got)
	}
	r.mu.Lock()
	r.jw.Close()
	r.jw = nil
	r.mu.Unlock()

	// The expiration was journaled: a third incarnation sees only the
	// durable lease, and remembers the reap.
	r2, err := NewSystem("dgx-a100", "preserve", WithJournal(dir, journal.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	leases := r2.Leases()
	if len(leases) != 1 || leases[0].ID != durable.ID || leases[0].Owner != "tenant-b" {
		t.Fatalf("leases after reap + crash = %+v, want only lease %d", leases, durable.ID)
	}
	if got := r2.Reaped(); got != 1 {
		t.Errorf("replayed Reaped() = %d, want 1", got)
	}
}

// TestReplayRejectsDuplicateAllocate: a journal carrying the same
// lease ID twice (contiguous sequence numbers, so framing is clean)
// must fail recovery loudly, not double-apply.
func TestReplayRejectsDuplicateAllocate(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rec := journal.Record{Kind: journal.KindAllocate, ID: 1, NumGPUs: 2, GPUs: []int{0, 1}}
		if err := j.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	_, err = NewSystem("dgx-a100", "preserve", WithJournal(dir, journal.Options{}))
	if err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("NewSystem = %v, want duplicate-allocate replay error", err)
	}
}

// TestReplayRejectsConflictingAllocate: a journaled allocation naming
// GPUs that are not free at that point in the replay is corruption.
func TestReplayRejectsConflictingAllocate(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := journal.Record{Kind: journal.KindAllocate, ID: 1, NumGPUs: 2, GPUs: []int{0, 1}}
	r2 := journal.Record{Kind: journal.KindAllocate, ID: 2, NumGPUs: 2, GPUs: []int{1, 2}}
	for _, rec := range []*journal.Record{&r1, &r2} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	_, err = NewSystem("dgx-a100", "preserve", WithJournal(dir, journal.Options{}))
	if err == nil || !strings.Contains(err.Error(), "not free") {
		t.Fatalf("NewSystem = %v, want conflicting-allocate replay error", err)
	}
}

// TestJournaledHammerMatchesOracle folds journaling into the PR 8
// concurrent hammer: after racy mixed traffic on a journaled System, a
// crash-recovery lands field-identical to the serialized-replay oracle
// at the full linearization.
func TestJournaledHammerMatchesOracle(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSystem("dgx-a100", "preserve", WithWarmShapes(4),
		WithJournal(dir, journal.Options{Fsync: journal.FsyncInterval}))
	if err != nil {
		t.Fatal(err)
	}
	var log []commitOp
	s.onCommit = func(op commitOp) { log = append(log, op) }

	done := make(chan struct{})
	for w := 0; w < 6; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			var held []*Lease
			for i := 0; i < 25; i++ {
				if len(held) > 2 || (len(held) > 0 && (i+w)%3 == 0) {
					l := held[0]
					held = held[1:]
					if err := s.Release(l); err != nil {
						t.Errorf("worker %d: release: %v", w, err)
					}
					continue
				}
				req := JobRequest{NumGPUs: 2 + (i+w)%2, Owner: fmt.Sprintf("w%d", w)}
				if (i+w)%4 == 0 {
					req.TTL = time.Hour
				}
				l, err := s.Allocate(req)
				if err == nil {
					held = append(held, l)
				}
			}
			for _, l := range held {
				if err := s.Release(l); err != nil {
					t.Errorf("worker %d: drain release: %v", w, err)
				}
			}
		}(w)
	}
	for w := 0; w < 6; w++ {
		<-done
	}
	s.mu.Lock()
	s.jw.Close() // crash: no snapshot
	s.jw = nil
	s.mu.Unlock()

	rec := recoverAt(t, "hammer recovery", dir)
	oracle, err := NewSystem("dgx-a100", "preserve", WithWarmShapes(4))
	if err != nil {
		t.Fatal(err)
	}
	applyCommitOps(t, oracle, log)
	assertSystemsEqual(t, "hammer recovery", rec, oracle)
}
