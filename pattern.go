package mapa

import (
	"fmt"
	"io"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
	"mapa/internal/policy"
	"mapa/internal/trace"
)

// Pattern is an application communication topology: the small graph
// MAPA mines the hardware graph for. Build one from a named shape
// (NewPattern), from a source-analysis call trace (PatternFromCalls),
// or from runtime link-traffic profiling (PatternFromProfile) — the
// two extraction paths of Sec. 3.1 / Fig. 9 of the paper.
type Pattern struct {
	g *graph.Graph
}

// NewPattern builds a named communication shape over n accelerators.
func NewPattern(shape string, n int) (*Pattern, error) {
	s, err := appgraph.ParseShape(shape)
	if err != nil {
		return nil, err
	}
	g, err := appgraph.Build(s, n)
	if err != nil {
		return nil, err
	}
	return &Pattern{g: g}, nil
}

// CollectiveCall is one communication API invocation found by source
// analysis: a collective (ncclAllReduce, ncclBroadcast) over a device
// set, or a point-to-point transfer (cudaMemcpyPeer, MPI_Sendrecv)
// between two devices.
type CollectiveCall struct {
	// API is the call name; see the constants in this package.
	API string
	// Devices lists the participating logical devices.
	Devices []int
	// Bytes is the transfer size (selects ring vs tree for
	// collectives, as NCCL does).
	Bytes float64
}

// Supported CollectiveCall API names.
const (
	CallAllReduce  = string(trace.CallAllReduce)
	CallBroadcast  = string(trace.CallBroadcast)
	CallMemcpyPeer = string(trace.CallMemcpyPeer)
	CallSendRecv   = string(trace.CallSendRecv)
)

// PatternFromCalls builds the application pattern implied by a list of
// communication API calls, as source-code analysis would (Fig. 9a):
// the union of every call's communication edges, with devices
// renumbered 0..k-1.
func PatternFromCalls(calls []CollectiveCall) (*Pattern, error) {
	internal := make([]trace.Call, len(calls))
	for i, c := range calls {
		internal[i] = trace.Call{Kind: trace.CallKind(c.API), Devices: c.Devices, Bytes: c.Bytes}
	}
	g, err := trace.FromSource(internal)
	if err != nil {
		return nil, err
	}
	return &Pattern{g: g}, nil
}

// PatternFromProfile builds the application pattern from an
// nvidia-smi-style link-traffic dump (Fig. 9b): one "gpuA gpuB bytes"
// record per line; GPU pairs whose observed traffic exceeds
// thresholdBytes become communication edges.
func PatternFromProfile(r io.Reader, thresholdBytes float64) (*Pattern, error) {
	counters, err := trace.ParseProfile(r)
	if err != nil {
		return nil, err
	}
	g, err := trace.FromProfile(counters, thresholdBytes)
	if err != nil {
		return nil, err
	}
	return &Pattern{g: g}, nil
}

// NumGPUs returns the number of accelerators the pattern requires.
func (p *Pattern) NumGPUs() int { return p.g.NumVertices() }

// NumEdges returns the number of communication pairs in the pattern.
func (p *Pattern) NumEdges() int { return p.g.NumEdges() }

// DOT renders the pattern in Graphviz format.
func (p *Pattern) DOT() string { return p.g.DOT("pattern") }

// AllocatePattern leases GPUs for an explicit communication pattern,
// e.g. one extracted from a trace. It behaves like Allocate otherwise.
func (s *System) AllocatePattern(p *Pattern, sensitive bool) (*Lease, error) {
	if p == nil || p.g.NumVertices() == 0 {
		return nil, fmt.Errorf("mapa: empty pattern")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	alloc, err := s.alloc.Allocate(s.avail, s.top, policy.Request{Pattern: p.g, Sensitive: sensitive})
	if err != nil {
		return nil, fmt.Errorf("mapa: allocating %d GPUs: %w", p.NumGPUs(), err)
	}
	for _, g := range alloc.GPUs {
		s.avail.RemoveVertex(g)
	}
	s.views.Allocate(alloc.GPUs)
	s.nextID++
	lease := &Lease{
		ID:          s.nextID,
		GPUs:        alloc.GPUs,
		EffBW:       alloc.Scores.EffBW,
		AggBW:       alloc.Scores.AggBW,
		PreservedBW: alloc.Scores.PreservedBW,
	}
	s.leases[lease.ID] = alloc.GPUs
	return lease, nil
}
