// FleetSystem: the live allocator for fleet-scale machines, built on
// node-symmetric universe templates instead of a flattened hardware
// graph.
//
// A System materializes the whole machine: its universe store
// enumerates candidate GPU sets over all N·perNode vertices, so cost
// grows with fleet size even though every node is the same machine.
// FleetSystem keeps the fleet symbolic — a topology.Fleet records the
// node classes and per-node vertex offsets — and builds the match
// pipeline per node *class*: one idle-state universe and one score
// table per (class, canonical shape), shared by every node of that
// class. Template memory and build time are O(distinct classes ×
// shapes), independent of node count: warming a 1,000-node fleet costs
// exactly what warming a 2-node one does.
//
// Decisions for patterns that fit inside one node run the hierarchical
// two-level path (policy.AllocateFleetInto): an inter-node sweep over
// cheap per-node aggregates picks candidate nodes, and the intra-node
// selection is the ordinary table-served argmax against the shared
// class template, with node-local scores translated to exact
// fleet-global values (see matchcache's fleet doc comment for the
// Eq. 3 decomposition). The hierarchical path places each job inside
// one node — the documented node-local placement rule. On fleets small
// enough to flatten (FleetFlattenLimit), a flat fallback pipeline
// serves node-spanning patterns and requests no single node can host;
// larger fleets reject those with an error, since flattening them is
// the cost this type exists to avoid.
//
// Determinism: GPU IDs are node-major (node i owns IDs
// [Offset(i), Offset(i)+size)), equal-scored node winners resolve to
// the lowest node index, and that coincides with the flat matcher's
// lexicographic GPU-set tie-break. The churn-parity suites pin greedy
// decisions byte-identical to a flat System's; PreservedBW-primary
// policies follow the node-local rule (a flat matcher may prefer
// spreading an insensitive job across nodes) and are pinned against a
// node-local flat oracle instead.
package mapa

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/matchcache"
	"mapa/internal/policy"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// FleetFlattenLimit is the largest fleet (in GPUs) for which
// FleetSystem also materializes the flattened machine as a fallback
// pipeline for node-spanning patterns. Beyond it the fleet stays
// purely symbolic: a complete graph on F GPUs has C(F,2) edges —
// 32 million at 8,000 GPUs — which is exactly the footprint templates
// avoid.
const FleetFlattenLimit = 128

// FleetSystem is a live MAPA allocator for a multi-node fleet. It has
// the System lease lifecycle — Allocate/Release, MarkUnhealthy/Restore
// — but serves decisions from per-node-class universe templates, so
// construction and steady-state cost scale with the number of distinct
// node classes, not the number of nodes. It is safe for concurrent
// use.
type FleetSystem struct {
	mu     sync.Mutex
	fleet  *topology.Fleet
	flat   *topology.Topology // flattened machine; nil above FleetFlattenLimit
	alloc  policy.Allocator
	scorer *score.Scorer

	// Fleet template pipeline: always on — it is the point of the type.
	fstore *matchcache.FleetStore
	fviews *matchcache.FleetViews

	// Flat fallback pipeline for node-spanning patterns; nil fields on
	// fleets above FleetFlattenLimit.
	avail *graph.Graph
	cache *matchcache.Cache
	store *matchcache.Store
	views *matchcache.Views

	leases    map[int][]int
	leasedBy  map[int]int
	unhealthy map[int]bool
	nextID    int
	cfg       systemConfig

	buf        policy.Allocation // reused hierarchical decision buffer
	hierServed uint64
	flatServed uint64
}

// NewFleetSystem builds a FleetSystem of nodes instances of the named
// node-template topology (e.g. "dgx-a100"), with the given policy.
// Options are the System options; WithWarmShapes warms the class
// templates (cost per class, not per node), and the cache/universe/
// live-view disable knobs apply to the flat fallback pipeline only —
// the template path requires its tiers and always builds them.
func NewFleetSystem(templateName string, nodes int, policyName string, opts ...SystemOption) (*FleetSystem, error) {
	tmpl, err := topology.ByName(templateName)
	if err != nil {
		return nil, err
	}
	return NewFleetSystemFor(topology.NewFleet(tmpl, nodes), policyName, opts...)
}

// NewFleetSystemFor builds a FleetSystem for an explicit fleet. The
// Eq. 2 model is trained on the flattened machine when the fleet is
// small enough to flatten and falls back to the paper's published
// coefficients otherwise — the same rule effbw.TrainedFor applies to
// any machine above its training-size ceiling, so decisions agree with
// a flat System's either way.
func NewFleetSystemFor(f *topology.Fleet, policyName string, opts ...SystemOption) (*FleetSystem, error) {
	var cfg systemConfig
	for _, o := range opts {
		o(&cfg)
	}
	var flat *topology.Topology
	if f.NumGPUs() <= FleetFlattenLimit {
		flat = f.Flatten()
	}
	var model *effbw.Model
	if flat != nil {
		model = effbw.TrainedFor(flat)
	} else {
		model = effbw.PaperModel()
	}
	scorer := score.NewScorer(model)
	alloc, err := policy.ByName(policyName, scorer)
	if err != nil {
		return nil, err
	}
	if cfg.workers > 1 {
		policy.SetParallelism(alloc, cfg.workers)
	}
	s := &FleetSystem{
		fleet:     f,
		flat:      flat,
		alloc:     alloc,
		scorer:    scorer,
		leases:    make(map[int][]int),
		leasedBy:  make(map[int]int),
		unhealthy: make(map[int]bool),
		cfg:       cfg,
	}
	s.fstore = matchcache.NewFleetStore(f, matchcache.DefaultUniverseCapacity)
	if cfg.buildWorkers > 1 {
		s.fstore.SetBuildWorkers(cfg.buildWorkers)
	}
	if cfg.warmMaxGPUs > 1 {
		warmWorkers := cfg.workers
		if cfg.buildWorkers > warmWorkers {
			warmWorkers = cfg.buildWorkers
		}
		s.fstore.Warm(warmWorkers, warmPatterns(cfg.warmMaxGPUs, f.MaxNodeGPUs())...)
	}
	s.fviews = s.fstore.NewFleetViews()
	policy.AttachFleet(alloc, s.fviews)
	if flat != nil {
		s.avail = flat.Graph.Clone()
		if !cfg.disableCache {
			s.cache = matchcache.New(flat, matchcache.DefaultShardCapacity)
			policy.AttachCache(alloc, s.cache)
		}
		if !cfg.disableUniverses {
			s.store = matchcache.NewStore(flat, matchcache.DefaultUniverseCapacity)
			if cfg.buildWorkers > 1 {
				s.store.SetBuildWorkers(cfg.buildWorkers)
			}
			if cfg.disableScoreTables || cfg.disableLiveViews {
				s.store.SetScoreTables(false)
			}
			if !cfg.disableLiveViews {
				s.views = s.store.NewViews()
			}
		}
		policy.AttachUniverses(alloc, s.store)
		policy.AttachViews(alloc, s.views)
	}
	return s, nil
}

// Fleet returns the fleet the system allocates over.
func (s *FleetSystem) Fleet() *topology.Fleet { return s.fleet }

// Topology returns the fleet's name.
func (s *FleetSystem) Topology() string { return s.fleet.Name }

// Policy returns the system's policy name.
func (s *FleetSystem) Policy() string { return s.alloc.Name() }

// NumGPUs returns the fleet size in GPUs.
func (s *FleetSystem) NumGPUs() int { return s.fleet.NumGPUs() }

// NumNodes returns the fleet's node count.
func (s *FleetSystem) NumNodes() int { return s.fleet.NumNodes() }

// ActiveLeases returns the number of live leases.
func (s *FleetSystem) ActiveLeases() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.leases)
}

// FreeGPUs returns the currently allocatable GPU IDs, ascending. It is
// derived from the lease and health tables, so it works at any fleet
// size — no flattened graph required.
func (s *FleetSystem) FreeGPUs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, s.fleet.NumGPUs()-len(s.leasedBy)-len(s.unhealthy))
	for g := 0; g < s.fleet.NumGPUs(); g++ {
		if _, leased := s.leasedBy[g]; leased {
			continue
		}
		if s.unhealthy[g] {
			continue
		}
		out = append(out, g)
	}
	return out
}

// UnhealthyGPUs returns the GPUs currently marked unhealthy,
// ascending.
func (s *FleetSystem) UnhealthyGPUs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.unhealthy))
	for g := range s.unhealthy {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// Allocate leases GPUs for the request. Patterns that fit inside one
// node take the hierarchical template path; patterns that span nodes —
// or fitting patterns no single node can currently host — fall back to
// the flat pipeline on fleets small enough to flatten, and error
// otherwise. Like System.Allocate, a cold shape's template build runs
// before the state lock is taken, so one tenant's first-use cost never
// stalls another's table-served decision.
func (s *FleetSystem) Allocate(req JobRequest) (*Lease, error) {
	pattern, err := buildPattern(req)
	if err != nil {
		return nil, err
	}
	fits := pattern.NumVertices() <= s.fleet.MaxNodeGPUs()
	if fits {
		// Unlocked prewarm: class-template universes and tables build
		// outside the state lock (and outside the view lock — ensureSlot
		// then finds them memoized).
		s.fstore.Ensure(pattern, s.cfg.workers)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	preq := policy.Request{Pattern: pattern, Sensitive: req.Sensitive}
	if fits {
		served, aerr := policy.AllocateFleetInto(s.alloc, &s.buf, preq)
		if served && aerr == nil {
			s.hierServed++
			return s.commitLocked(s.buf.GPUs, s.buf.Scores), nil
		}
		if served && !errors.Is(aerr, policy.ErrNoAllocation) {
			return nil, fmt.Errorf("mapa: allocating %d GPUs on %s: %w", req.NumGPUs, s.fleet.Name, aerr)
		}
		// served with ErrNoAllocation (no node can host right now) or
		// declined (e.g. a policy without the fleet path): fall through
		// to the flat pipeline where one exists.
	}
	if s.flat == nil {
		if fits {
			return nil, fmt.Errorf("mapa: allocating %d GPUs on %s: %w", req.NumGPUs, s.fleet.Name, policy.ErrNoAllocation)
		}
		return nil, fmt.Errorf("mapa: pattern of %d GPUs spans nodes (max node size %d) and fleet %s is above the flatten limit (%d GPUs): %w",
			req.NumGPUs, s.fleet.MaxNodeGPUs(), s.fleet.Name, FleetFlattenLimit, policy.ErrNoAllocation)
	}
	a, err := s.alloc.Allocate(s.avail, s.flat, preq)
	if err != nil {
		return nil, fmt.Errorf("mapa: allocating %d GPUs on %s: %w", req.NumGPUs, s.fleet.Name, err)
	}
	s.flatServed++
	return s.commitLocked(a.GPUs, a.Scores), nil
}

// commitLocked books a decided GPU set as a lease and publishes the
// allocation delta to both the fleet views and (when present) the flat
// fallback pipeline. gpus may alias a reused decision buffer, so the
// lease record and the returned Lease each take their own copy.
func (s *FleetSystem) commitLocked(gpus []int, sc score.Scores) *Lease {
	if s.avail != nil {
		for _, g := range gpus {
			s.avail.RemoveVertex(g)
		}
	}
	s.fviews.Allocate(gpus)
	s.views.Allocate(gpus)
	s.nextID++
	id := s.nextID
	own := append([]int(nil), gpus...)
	s.leases[id] = own
	for _, g := range own {
		s.leasedBy[g] = id
	}
	return &Lease{
		ID:          id,
		GPUs:        append([]int(nil), gpus...),
		EffBW:       sc.EffBW,
		AggBW:       sc.AggBW,
		PreservedBW: sc.PreservedBW,
	}
}

// Release returns a lease's GPUs to the free pool. GPUs marked
// unhealthy while leased stay out until Restore. Fleet topologies are
// immutable (no DegradeLink), so unlike System.Release no edge
// validation is needed: the complete-by-construction graph always has
// every rejoin edge.
func (s *FleetSystem) Release(l *Lease) error {
	if l == nil {
		return fmt.Errorf("mapa: nil lease")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gpus, ok := s.leases[l.ID]
	if !ok {
		return fmt.Errorf("mapa: lease %d not active", l.ID)
	}
	var rejoin []int
	for _, g := range gpus {
		if !s.unhealthy[g] {
			rejoin = append(rejoin, g)
		}
	}
	delete(s.leases, l.ID)
	for _, g := range gpus {
		delete(s.leasedBy, g)
	}
	if s.avail != nil {
		free := s.avail.Vertices()
		for i, g := range rejoin {
			s.avail.AddVertex(g)
			for _, v := range free {
				e, _ := s.flat.Graph.EdgeBetween(g, v)
				s.avail.MustAddEdge(g, v, e.Weight, e.Label)
			}
			for _, h := range rejoin[:i] {
				e, _ := s.flat.Graph.EdgeBetween(g, h)
				s.avail.MustAddEdge(g, h, e.Weight, e.Label)
			}
		}
	}
	// The views track free and health masks independently: unhealthy
	// members re-enter the free mask but stay blocked by the health
	// mask, exactly like the flat stream.
	s.fviews.Release(gpus)
	s.views.Release(gpus)
	return nil
}

// MarkUnhealthy marks GPUs unhealthy fleet-wide — they become
// unallocatable (and their nodes' usable aggregates shrink) until
// Restore. The event is an O(posting list) delta on each GPU's node;
// no template is touched. The same error rules as System.MarkUnhealthy
// apply, and an erroring call mutates nothing.
func (s *FleetSystem) MarkUnhealthy(gpus ...int) error {
	if len(gpus) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[int]bool, len(gpus))
	for _, g := range gpus {
		if s.fleet.NodeOf(g) < 0 {
			return fmt.Errorf("mapa: GPU %d not in fleet %s", g, s.fleet.Name)
		}
		if s.unhealthy[g] {
			return fmt.Errorf("mapa: GPU %d already unhealthy", g)
		}
		if seen[g] {
			return fmt.Errorf("mapa: GPU %d listed twice", g)
		}
		seen[g] = true
	}
	for _, g := range gpus {
		s.unhealthy[g] = true
		if s.avail != nil {
			if _, leased := s.leasedBy[g]; !leased {
				s.avail.RemoveVertex(g)
			}
		}
	}
	s.fviews.MarkUnhealthy(gpus)
	s.views.MarkUnhealthy(gpus)
	return nil
}

// Restore returns unhealthy GPUs to service; a GPU still held by a
// lease becomes allocatable on release, like System.Restore.
func (s *FleetSystem) Restore(gpus ...int) error {
	if len(gpus) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[int]bool, len(gpus))
	for _, g := range gpus {
		if !s.unhealthy[g] {
			return fmt.Errorf("mapa: GPU %d is not unhealthy", g)
		}
		if seen[g] {
			return fmt.Errorf("mapa: GPU %d listed twice", g)
		}
		seen[g] = true
	}
	for _, g := range gpus {
		delete(s.unhealthy, g)
	}
	if s.avail != nil {
		free := s.avail.Vertices()
		var rejoin []int
		for _, g := range gpus {
			if _, leased := s.leasedBy[g]; !leased {
				rejoin = append(rejoin, g)
			}
		}
		for i, g := range rejoin {
			s.avail.AddVertex(g)
			for _, v := range free {
				e, _ := s.flat.Graph.EdgeBetween(g, v)
				s.avail.MustAddEdge(g, v, e.Weight, e.Label)
			}
			for _, h := range rejoin[:i] {
				e, _ := s.flat.Graph.EdgeBetween(g, h)
				s.avail.MustAddEdge(g, h, e.Weight, e.Label)
			}
		}
	}
	s.fviews.RestoreHealth(gpus)
	s.views.RestoreHealth(gpus)
	return nil
}

// DegradeLink is unsupported on fleets: a per-link weight change
// breaks the node-class symmetry the template store is built on (the
// degraded node would need its own class). Degrade links on a flat
// System, or model the event as MarkUnhealthy on the affected node's
// GPUs.
func (s *FleetSystem) DegradeLink(u, v int, bw float64) error {
	return fmt.Errorf("mapa: DegradeLink is unsupported on fleet %s: link degradation breaks node-class symmetry; use a flat System or MarkUnhealthy", s.fleet.Name)
}

// FleetStats is a snapshot of a FleetSystem's pipeline counters.
type FleetStats struct {
	// Template tier: universes and score tables held per node class —
	// the whole template footprint, independent of node count — and
	// their summed build wall time.
	TemplateUniverses int
	TemplateTables    int
	TemplateBuildTime time.Duration
	TemplateTableTime time.Duration
	// NodeViews counts per-node live views actually materialized (lazy);
	// FleetServed/FleetRejected are the fleet layer's decision counters.
	NodeViews     int
	FleetServed   uint64
	FleetRejected uint64
	// HierarchicalServed counts leases granted by the two-level template
	// path; FlatServed counts leases that went through the flat fallback
	// pipeline (node-spanning patterns, or fitting patterns no single
	// node could host).
	HierarchicalServed uint64
	FlatServed         uint64
}

// Stats returns a snapshot of the system's pipeline counters.
func (s *FleetSystem) Stats() FleetStats {
	ss := s.fstore.Stats()
	vs := s.fviews.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	return FleetStats{
		TemplateUniverses:  ss.Universes,
		TemplateTables:     ss.Tables,
		TemplateBuildTime:  ss.BuildTime,
		TemplateTableTime:  ss.TableTime,
		NodeViews:          vs.NodeViews,
		FleetServed:        vs.Served,
		FleetRejected:      vs.Rejected,
		HierarchicalServed: s.hierServed,
		FlatServed:         s.flatServed,
	}
}
