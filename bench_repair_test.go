package mapa

import (
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/matchcache"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// BenchmarkTopologyRepair pins the cost model of topology deltas on a
// warmed 72-GPU cluster-a100 store: a health event (MarkUnhealthy +
// Restore) is an O(posting list) walk over the live views, a link
// degradation repairs exactly the candidates containing both endpoints,
// and both must sit orders of magnitude under the full rebuild
// (universe enumeration + score-table fill) they replace. CI exports
// this through cmd/benchjson into BENCH_matcher.json next to the build
// and decision benchmarks.
func BenchmarkTopologyRepair(b *testing.B) {
	top := topology.ClusterA100(9)
	shapes := []*graph.Graph{appgraph.Ring(2), appgraph.Ring(3)}
	warmed := matchcache.NewStore(top, 0)
	warmed.Warm(8, shapes...)
	views := warmed.NewViews()
	// Instantiate the live views the deltas will walk: serve each
	// warmed shape once, the way a real decision would.
	for _, shape := range shapes {
		ok := views.SelectLive(shape, top.Graph, 0, 1, func(*match.LiveView, *match.BandwidthAccounting, *score.Table, []int, bool) {})
		if !ok {
			b.Fatalf("warmed %d-GPU shape not view-served", shape.NumVertices())
		}
	}

	b.Run("health-event", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			views.MarkUnhealthy([]int{0})
			views.RestoreHealth([]int{0})
		}
	})

	b.Run("link-repair", func(b *testing.B) {
		e, ok := top.Graph.EdgeBetween(0, 1)
		if !ok {
			b.Fatal("cluster-a100 has no (0,1) link")
		}
		repaired := 0
		for i := 0; i < b.N; i++ {
			w := e.Weight / 2
			if i%2 == 1 {
				w = e.Weight // restore on odd iterations; state stays bounded
			}
			top.Graph.MustAddEdge(0, 1, w, e.Label)
			if pe, ok := top.Physical.EdgeBetween(0, 1); ok {
				top.Physical.MustAddEdge(0, 1, w, pe.Label)
			}
			score.InvalidateMixes(top)
			repaired = warmed.RepairEdge(0, 1)
			views.UpdateEdge(0, 1, w)
		}
		b.ReportMetric(float64(repaired), "repaired-candidates")
	})

	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh := matchcache.NewStore(top, 0)
			fresh.Warm(8, shapes...)
		}
	})
}
