package mapa

import (
	"strings"
	"testing"
)

func TestNewPattern(t *testing.T) {
	p, err := NewPattern("Ring", 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumGPUs() != 4 || p.NumEdges() != 4 {
		t.Fatalf("ring pattern: V=%d E=%d", p.NumGPUs(), p.NumEdges())
	}
	if _, err := NewPattern("Pentagram", 4); err == nil {
		t.Error("unknown shape should error")
	}
	if _, err := NewPattern("Ring", 0); err == nil {
		t.Error("zero GPUs should error")
	}
}

func TestPatternFromCalls(t *testing.T) {
	p, err := PatternFromCalls([]CollectiveCall{
		{API: CallAllReduce, Devices: []int{0, 1, 2, 3}, Bytes: 1 << 24},
		{API: CallMemcpyPeer, Devices: []int{0, 2}, Bytes: 1e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumGPUs() != 4 {
		t.Fatalf("pattern GPUs = %d", p.NumGPUs())
	}
	// Ring (4 edges) plus the explicit 0-2 copy.
	if p.NumEdges() != 5 {
		t.Fatalf("pattern edges = %d, want 5", p.NumEdges())
	}
	if _, err := PatternFromCalls(nil); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := PatternFromCalls([]CollectiveCall{{API: "cudaLaunchKernel", Devices: []int{0, 1}}}); err == nil {
		t.Error("unknown API should error")
	}
}

func TestPatternFromProfile(t *testing.T) {
	profile := "0 1 2000000\n1 2 3000000\n2 0 100\n"
	p, err := PatternFromProfile(strings.NewReader(profile), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumGPUs() != 3 || p.NumEdges() != 2 {
		t.Fatalf("pattern: V=%d E=%d", p.NumGPUs(), p.NumEdges())
	}
	if !strings.Contains(p.DOT(), "graph") {
		t.Error("DOT output malformed")
	}
	if _, err := PatternFromProfile(strings.NewReader("garbage"), 0); err == nil {
		t.Error("bad profile should error")
	}
}

func TestAllocatePattern(t *testing.T) {
	sys, err := NewSystem("dgx-v100", "preserve")
	if err != nil {
		t.Fatal(err)
	}
	p, err := PatternFromCalls([]CollectiveCall{
		{API: CallAllReduce, Devices: []int{0, 1, 2}, Bytes: 1 << 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	lease, err := sys.AllocatePattern(p, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(lease.GPUs) != 3 || lease.EffBW <= 0 {
		t.Fatalf("lease = %+v", lease)
	}
	if err := sys.Release(lease); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AllocatePattern(nil, true); err == nil {
		t.Error("nil pattern should error")
	}
}

func TestAllocatePatternExhaustion(t *testing.T) {
	sys, err := NewSystem("summit", "greedy")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewPattern("Ring", 5)
	if _, err := sys.AllocatePattern(p, true); err != nil {
		t.Fatal(err)
	}
	p2, _ := NewPattern("Ring", 2)
	if _, err := sys.AllocatePattern(p2, true); err == nil {
		t.Error("second allocation should fail with 1 GPU free")
	}
}
