// Fleet parity suites: the hierarchical template path must reproduce
// the flat matcher's decisions.
//
// Two pins, matching the two halves of the determinism contract:
//
//   - Churn parity (greedy): on switch-uniform node classes, an
//     AggBW-primary winner inside a node strictly dominates every
//     node-spanning candidate whenever any node can host the pattern,
//     so FleetSystem decisions — hierarchical path plus flat fallback —
//     are byte-identical to a flat System's, lease for lease, through
//     allocate/release/health churn.
//   - Node-local oracle (all four selection-order variants): the
//     hierarchical path's winner equals a from-first-principles oracle
//     over every single-node candidate on the flattened fleet, under
//     the policies' exact total order (primary desc, secondary desc,
//     lexicographic GPU set) with fleet-global Eq. 3 values.
package mapa

import (
	"errors"
	"fmt"
	"testing"

	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/matchcache"
	"mapa/internal/policy"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// flatRig drives a policy against a flattened machine exactly the way
// System does — avail graph, view stream, health masks — without the
// lease plumbing. It is the flat reference for fleets of sizes that
// have no named topology.
type flatRig struct {
	t         *testing.T
	top       *topology.Topology
	alloc     policy.Allocator
	avail     *graph.Graph
	views     *matchcache.Views
	leased    map[int]bool
	unhealthy map[int]bool
}

func newFlatRig(t *testing.T, top *topology.Topology, policyName string) *flatRig {
	t.Helper()
	scorer := score.NewScorer(effbw.TrainedFor(top))
	alloc, err := policy.ByName(policyName, scorer)
	if err != nil {
		t.Fatal(err)
	}
	store := matchcache.NewStore(top, 0)
	views := store.NewViews()
	policy.AttachUniverses(alloc, store)
	policy.AttachViews(alloc, views)
	return &flatRig{
		t:         t,
		top:       top,
		alloc:     alloc,
		avail:     top.Graph.Clone(),
		views:     views,
		leased:    make(map[int]bool),
		unhealthy: make(map[int]bool),
	}
}

func (r *flatRig) allocate(req JobRequest) (policy.Allocation, error) {
	pattern, err := buildPattern(req)
	if err != nil {
		r.t.Fatal(err)
	}
	a, err := r.alloc.Allocate(r.avail, r.top, policy.Request{Pattern: pattern, Sensitive: req.Sensitive})
	if err != nil {
		return policy.Allocation{}, err
	}
	for _, g := range a.GPUs {
		r.avail.RemoveVertex(g)
		r.leased[g] = true
	}
	r.views.Allocate(a.GPUs)
	return a, nil
}

// rejoinFree re-adds GPUs to the availability graph with their full
// hardware edges, the way System.Release/Restore does.
func (r *flatRig) rejoinFree(rejoin []int) {
	free := r.avail.Vertices()
	for i, g := range rejoin {
		r.avail.AddVertex(g)
		for _, v := range free {
			e, _ := r.top.Graph.EdgeBetween(g, v)
			r.avail.MustAddEdge(g, v, e.Weight, e.Label)
		}
		for _, h := range rejoin[:i] {
			e, _ := r.top.Graph.EdgeBetween(g, h)
			r.avail.MustAddEdge(g, h, e.Weight, e.Label)
		}
	}
}

func (r *flatRig) release(gpus []int) {
	var rejoin []int
	for _, g := range gpus {
		delete(r.leased, g)
		if !r.unhealthy[g] {
			rejoin = append(rejoin, g)
		}
	}
	r.rejoinFree(rejoin)
	r.views.Release(gpus)
}

func (r *flatRig) markUnhealthy(gpus []int) {
	for _, g := range gpus {
		r.unhealthy[g] = true
		if !r.leased[g] {
			r.avail.RemoveVertex(g)
		}
	}
	r.views.MarkUnhealthy(gpus)
}

func (r *flatRig) restore(gpus []int) {
	var rejoin []int
	for _, g := range gpus {
		delete(r.unhealthy, g)
		if !r.leased[g] {
			rejoin = append(rejoin, g)
		}
	}
	r.rejoinFree(rejoin)
	r.views.RestoreHealth(gpus)
}

// churnOp is one step of a deterministic churn script.
type churnOp struct {
	kind  string // "alloc", "release", "mark", "restore"
	gpus  int    // alloc: request size
	shape string // alloc: shape name ("" = ring)
	idx   int    // release: index into the granted-lease log
	set   []int  // mark/restore: GPU IDs
}

// TestFleetGreedyChurnParity drives a FleetSystem and a flat reference
// through the same allocate/release/health script and requires every
// lease byte-identical: GPUs and all three scores. The scripts force
// all three serving modes — hierarchical template decisions, the flat
// fallback after the hierarchy answers "no node can host" (machine
// drained to single free GPUs per node), and direct flat decisions for
// node-spanning patterns.
//
// Byte-parity is asserted on the sizes the flat matcher itself serves
// exactly. At 72 GPUs a ring-4 has ~3 million distinct candidates —
// past the universe capacity — so the flat path truncates its
// enumeration and returns a best-of-prefix winner; the template path
// has no such limit (class universes are node-sized), so on those
// sizes TestFleetBeatsTruncatedFlat below asserts dominance instead.
func TestFleetGreedyChurnParity(t *testing.T) {
	for _, nodes := range []int{2, 9} {
		t.Run(fmt.Sprintf("nodes-%d", nodes), func(t *testing.T) {
			fs, err := NewFleetSystemFor(topology.NewFleet(topology.DGXA100(), nodes), "greedy")
			if err != nil {
				t.Fatal(err)
			}
			rig := newFlatRig(t, topology.ClusterA100(nodes), "greedy")

			var script []churnOp
			if nodes == 2 {
				// 16 GPUs: every ring size up to 5 (and ring-8) has a
				// complete flat universe, so the whole script is exact on
				// both sides. The tail drains the machine until no node
				// hosts a pair — the hierarchy must answer
				// ErrNoAllocation and the flat fallback must find the
				// node-spanning placement both sides agree on — then
				// requests a 9-GPU ring, which spans nodes outright.
				script = []churnOp{
					{kind: "alloc", gpus: 3},
					{kind: "alloc", gpus: 2},
					{kind: "alloc", gpus: 4},
					{kind: "mark", set: []int{5, 9}},
					{kind: "alloc", gpus: 3},
					{kind: "release", idx: 1},
					{kind: "alloc", gpus: 8, shape: "ring"},
					{kind: "alloc", gpus: 2},
					{kind: "restore", set: []int{5, 9}},
					{kind: "alloc", gpus: 4},
					{kind: "alloc", gpus: 3},
					{kind: "release", idx: 0},
					{kind: "alloc", gpus: 5},
					{kind: "alloc", gpus: 2},
					{kind: "alloc", gpus: 4},
					{kind: "alloc", gpus: 2},
					{kind: "alloc", gpus: 2},
					{kind: "alloc", gpus: 2}, // cross-node fallback
					{kind: "alloc", gpus: 9}, // spans: direct flat
				}
			} else {
				// 72 GPUs: ring-2 (2,556 candidates) and ring-3 (59,640)
				// stay under the flat universe capacity, so those sizes
				// are byte-exact on both sides through churn and health
				// events.
				script = []churnOp{
					{kind: "alloc", gpus: 3},
					{kind: "alloc", gpus: 2},
					{kind: "alloc", gpus: 3},
					{kind: "mark", set: []int{5, 9}},
					{kind: "alloc", gpus: 3},
					{kind: "release", idx: 1},
					{kind: "alloc", gpus: 2},
					{kind: "alloc", gpus: 3},
					{kind: "restore", set: []int{5, 9}},
					{kind: "alloc", gpus: 3},
					{kind: "alloc", gpus: 2},
					{kind: "release", idx: 0},
					{kind: "alloc", gpus: 3},
					{kind: "alloc", gpus: 3},
				}
			}

			var fleetLeases []*Lease
			var rigLeases [][]int
			for step, op := range script {
				switch op.kind {
				case "alloc":
					req := JobRequest{NumGPUs: op.gpus, Shape: op.shape}
					lease, ferr := fs.Allocate(req)
					want, rerr := rig.allocate(req)
					if (ferr != nil) != (rerr != nil) {
						t.Fatalf("step %d: fleet err=%v, flat err=%v", step, ferr, rerr)
					}
					if ferr != nil {
						if !errors.Is(ferr, policy.ErrNoAllocation) {
							t.Fatalf("step %d: unexpected error %v", step, ferr)
						}
						fleetLeases = append(fleetLeases, nil)
						rigLeases = append(rigLeases, nil)
						continue
					}
					if fmt.Sprint(lease.GPUs) != fmt.Sprint(want.GPUs) {
						t.Fatalf("step %d (k=%d): fleet GPUs %v, flat GPUs %v",
							step, op.gpus, lease.GPUs, want.GPUs)
					}
					if lease.AggBW != want.Scores.AggBW ||
						lease.EffBW != want.Scores.EffBW ||
						lease.PreservedBW != want.Scores.PreservedBW {
						t.Fatalf("step %d: fleet scores (%v %v %v), flat scores %+v",
							step, lease.AggBW, lease.EffBW, lease.PreservedBW, want.Scores)
					}
					fleetLeases = append(fleetLeases, lease)
					rigLeases = append(rigLeases, want.GPUs)
				case "release":
					if err := fs.Release(fleetLeases[op.idx]); err != nil {
						t.Fatalf("step %d: release: %v", step, err)
					}
					rig.release(rigLeases[op.idx])
				case "mark":
					if err := fs.MarkUnhealthy(op.set...); err != nil {
						t.Fatalf("step %d: mark: %v", step, err)
					}
					rig.markUnhealthy(op.set)
				case "restore":
					if err := fs.Restore(op.set...); err != nil {
						t.Fatalf("step %d: restore: %v", step, err)
					}
					rig.restore(op.set)
				}
			}
			st := fs.Stats()
			if st.HierarchicalServed == 0 {
				t.Fatal("no decision took the hierarchical template path")
			}
			if nodes == 2 && st.FlatServed == 0 {
				t.Fatal("2-node script never exercised the flat fallback")
			}
		})
	}
}

// TestFleetBeatsTruncatedFlat pins the quality half of the fleet
// story: for a size whose flat universe overflows capacity (ring-4 at
// 72 GPUs has ~3 million candidates), the flat matcher truncates its
// enumeration and settles for a best-of-prefix winner with inter-node
// PCIe edges, while the template path — whose per-class universes are
// node-sized and always complete — returns the true all-NVSwitch
// argmax.
func TestFleetBeatsTruncatedFlat(t *testing.T) {
	fs, err := NewFleetSystemFor(topology.NewFleet(topology.DGXA100(), 9), "greedy")
	if err != nil {
		t.Fatal(err)
	}
	rig := newFlatRig(t, topology.ClusterA100(9), "greedy")
	// Drain node 0 to three free GPUs: every candidate the flat
	// matcher's truncated enumeration prefix reaches straddles the node
	// boundary (the prefix exhausts sets containing the low free IDs
	// 5..7 before it ever reaches one fully inside node 1), while the
	// template path jumps straight to node 1's complete universe.
	for _, k := range []int{3, 2} {
		req := JobRequest{NumGPUs: k}
		if _, err := fs.Allocate(req); err != nil {
			t.Fatal(err)
		}
		if _, err := rig.allocate(req); err != nil {
			t.Fatal(err)
		}
	}
	req := JobRequest{NumGPUs: 4}
	lease, err := fs.Allocate(req)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := rig.allocate(req)
	if err != nil {
		t.Fatal(err)
	}
	wantAgg := 4 * topology.LinkNVSwitch.Bandwidth()
	if lease.AggBW != wantAgg {
		t.Fatalf("template ring-4 AggBW = %v, want all-NVSwitch %v", lease.AggBW, wantAgg)
	}
	if flat.Scores.AggBW >= lease.AggBW {
		t.Fatalf("flat truncated AggBW = %v, expected strictly below template %v (flat GPUs %v, template %v)",
			flat.Scores.AggBW, lease.AggBW, flat.GPUs, lease.GPUs)
	}
}

// combinations appends every k-subset of set (ascending) to out.
func combinations(set []int, k int, out *[][]int) {
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			*out = append(*out, append([]int(nil), cur...))
			return
		}
		for i := start; i <= len(set)-(k-len(cur)); i++ {
			rec(i+1, append(cur, set[i]))
		}
	}
	rec(0, nil)
}

// fleetOracle models a DGX-A100 fleet's flattened graph from first
// principles: intra-node usable pairs weigh NVSwitch bandwidth,
// inter-node pairs the PCIe fallback. It enumerates every single-node
// candidate and selects under the policy's total order with exact
// fleet-global Eq. 3 values.
type fleetOracle struct {
	nodes   int
	perNode int
	leased  map[int]bool
	sick    map[int]bool
}

func newFleetOracle(nodes int) *fleetOracle {
	return &fleetOracle{nodes: nodes, perNode: 8, leased: make(map[int]bool), sick: make(map[int]bool)}
}

func (o *fleetOracle) usable() []int {
	var out []int
	for g := 0; g < o.nodes*o.perNode; g++ {
		if !o.leased[g] && !o.sick[g] {
			out = append(out, g)
		}
	}
	return out
}

func (o *fleetOracle) weight(u, v int) float64 {
	if u/o.perNode == v/o.perNode {
		return topology.LinkNVSwitch.Bandwidth()
	}
	return topology.LinkPCIe.Bandwidth()
}

// preserved computes the fleet-global Eq. 3 value of candidate S over
// the current usable set: totalFree − Σ incident + internal.
func (o *fleetOracle) preserved(s []int) float64 {
	usable := o.usable()
	total := 0.0
	for i, u := range usable {
		for _, v := range usable[i+1:] {
			total += o.weight(u, v)
		}
	}
	inSet := make(map[int]bool, len(s))
	for _, g := range s {
		inSet[g] = true
	}
	incident := 0.0
	for _, g := range s {
		for _, v := range usable {
			if v != g {
				incident += o.weight(g, v)
			}
		}
	}
	internal := 0.0
	for i, u := range s {
		for _, v := range s[i+1:] {
			_ = inSet
			internal += o.weight(u, v)
		}
	}
	return total - incident + internal
}

// selectBest returns the winning single-node k-subset under the
// policy's order. On a switch-uniform class every candidate ties on
// AggBW and EffBW, so the order reduces to: maximize PreservedBW when
// it appears in the policy's rank (preserve variants), pure
// lexicographic-first otherwise (greedy); ties resolve lexicographic,
// i.e. first generated.
func (o *fleetOracle) selectBest(k int, usePreserved bool) ([]int, float64, bool) {
	var candidates [][]int
	for n := 0; n < o.nodes; n++ {
		var local []int
		for _, g := range o.usable() {
			if g/o.perNode == n {
				local = append(local, g)
			}
		}
		if len(local) >= k {
			combinations(local, k, &candidates)
		}
	}
	if len(candidates) == 0 {
		return nil, 0, false
	}
	best := candidates[0]
	bestP := o.preserved(best)
	if usePreserved {
		for _, c := range candidates[1:] {
			if p := o.preserved(c); p > bestP {
				best, bestP = c, p
			}
		}
	}
	return best, bestP, true
}

func (o *fleetOracle) commit(gpus []int) {
	for _, g := range gpus {
		o.leased[g] = true
	}
}

// TestFleetNodeLocalOracle pins all four selection-order variants of
// the hierarchical path against the first-principles oracle through a
// churn script with health events: same GPU sets, same AggBW (pattern
// edges × NVSwitch bandwidth), same fleet-global PreservedBW.
func TestFleetNodeLocalOracle(t *testing.T) {
	variants := []struct {
		name         string
		policy       string
		sensitive    bool
		usePreserved bool
	}{
		{"greedy", "greedy", true, false},
		{"preserve-sensitive", "preserve", true, true},
		{"preserve-insensitive", "preserve", false, true},
		{"preserve-aggbw-insensitive", "preserve-aggbw", false, true},
	}
	const nodes = 3
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			fs, err := NewFleetSystemFor(topology.NewFleet(topology.DGXA100(), nodes), v.policy)
			if err != nil {
				t.Fatal(err)
			}
			oracle := newFleetOracle(nodes)
			var leases []*Lease
			script := []churnOp{
				{kind: "alloc", gpus: 3},
				{kind: "alloc", gpus: 2},
				{kind: "mark", set: []int{9}},
				{kind: "alloc", gpus: 4},
				{kind: "alloc", gpus: 3},
				{kind: "release", idx: 0},
				{kind: "alloc", gpus: 2},
				{kind: "restore", set: []int{9}},
				{kind: "alloc", gpus: 3},
			}
			for step, op := range script {
				switch op.kind {
				case "alloc":
					want, wantPreserved, ok := oracle.selectBest(op.gpus, v.usePreserved)
					lease, err := fs.Allocate(JobRequest{NumGPUs: op.gpus, Sensitive: v.sensitive})
					if !ok {
						t.Fatalf("step %d: oracle found no single-node candidate; rework the script", step)
					}
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					if fmt.Sprint(lease.GPUs) != fmt.Sprint(want) {
						t.Fatalf("step %d (k=%d): fleet GPUs %v, oracle %v", step, op.gpus, lease.GPUs, want)
					}
					edges := op.gpus
					if op.gpus == 2 {
						edges = 1
					}
					if want := float64(edges) * topology.LinkNVSwitch.Bandwidth(); lease.AggBW != want {
						t.Fatalf("step %d: AggBW %v, want %v", step, lease.AggBW, want)
					}
					if lease.PreservedBW != wantPreserved {
						t.Fatalf("step %d: PreservedBW %v, oracle %v", step, lease.PreservedBW, wantPreserved)
					}
					oracle.commit(lease.GPUs)
					leases = append(leases, lease)
				case "release":
					if err := fs.Release(leases[op.idx]); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					for _, g := range leases[op.idx].GPUs {
						delete(oracle.leased, g)
					}
				case "mark":
					if err := fs.MarkUnhealthy(op.set...); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					for _, g := range op.set {
						oracle.sick[g] = true
					}
				case "restore":
					if err := fs.Restore(op.set...); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					for _, g := range op.set {
						delete(oracle.sick, g)
					}
				}
			}
			if fs.Stats().HierarchicalServed != 6 {
				t.Fatalf("hierarchical served %d of 6 decisions", fs.Stats().HierarchicalServed)
			}
		})
	}
}

// TestFleetSystemLifecycle covers the surround: accessors, release and
// health error paths, DegradeLink rejection, and the spanning-pattern
// error on a fleet too large to flatten.
func TestFleetSystemLifecycle(t *testing.T) {
	fs, err := NewFleetSystem("dgx-a100", 2, "preserve")
	if err != nil {
		t.Fatal(err)
	}
	if fs.NumGPUs() != 16 || fs.NumNodes() != 2 {
		t.Fatalf("size = %d GPUs / %d nodes, want 16/2", fs.NumGPUs(), fs.NumNodes())
	}
	if fs.Policy() != "preserve" {
		t.Fatalf("policy = %q", fs.Policy())
	}
	lease, err := fs.Allocate(JobRequest{NumGPUs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fs.ActiveLeases() != 1 || len(fs.FreeGPUs()) != 13 {
		t.Fatalf("leases=%d free=%d, want 1/13", fs.ActiveLeases(), len(fs.FreeGPUs()))
	}
	if err := fs.DegradeLink(0, 1, 10); err == nil {
		t.Fatal("DegradeLink should be rejected on fleets")
	}
	if err := fs.MarkUnhealthy(lease.GPUs[0]); err != nil {
		t.Fatal(err)
	}
	if err := fs.MarkUnhealthy(lease.GPUs[0]); err == nil {
		t.Fatal("double mark should error")
	}
	if err := fs.Release(lease); err != nil {
		t.Fatal(err)
	}
	if err := fs.Release(lease); err == nil {
		t.Fatal("double release should error")
	}
	// The marked GPU stays out of the free pool until restored.
	if got := len(fs.FreeGPUs()); got != 15 {
		t.Fatalf("free=%d after release with one unhealthy, want 15", got)
	}
	if err := fs.Restore(lease.GPUs[0]); err != nil {
		t.Fatal(err)
	}
	if got := len(fs.FreeGPUs()); got != 16 {
		t.Fatalf("free=%d after restore, want 16", got)
	}

	big, err := NewFleetSystem("dgx-a100", 1000, "preserve")
	if err != nil {
		t.Fatal(err)
	}
	if big.NumGPUs() != 8000 {
		t.Fatalf("big fleet = %d GPUs", big.NumGPUs())
	}
	// Fitting pattern: hierarchical path serves it without any flat
	// pipeline.
	l, err := big.Allocate(JobRequest{NumGPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(l.GPUs) != fmt.Sprint([]int{0, 1, 2, 3}) {
		t.Fatalf("idle 1000-node allocation = %v, want first node's first GPUs", l.GPUs)
	}
	// Spanning pattern: no flat fallback above the flatten limit.
	if _, err := big.Allocate(JobRequest{NumGPUs: 9}); !errors.Is(err, policy.ErrNoAllocation) {
		t.Fatalf("spanning pattern on unflattenable fleet: err=%v, want ErrNoAllocation", err)
	}
}
