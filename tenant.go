package mapa

import (
	"time"

	"mapa/internal/matchcache"
	"mapa/internal/policy"
)

// Tenant is one client's serving handle on a shared System — the unit
// of multi-tenant isolation the mapad daemon hands out. Every tenant
// decides with its own allocator instance bound to its own live-view
// stream (matchcache.Views) over the System's one shared universe
// store: universes and score tables — the expensive, state-independent
// precomputation — are built once per machine, while the per-stream
// candidate views and Eq. 3 bandwidth accounting are maintained per
// tenant from the deltas the System fans out on every state change.
//
// Decisions are byte-identical whichever handle makes them — a
// tenant's allocator is configured exactly like the System's — so
// tenancy changes contention, not outcomes: tenants contend on the
// System's decision lock only for the O(k)-arithmetic decision itself,
// never on each other's view-slot materialization or a cold shape's
// universe build (which runs outside the lock; see Allocate).
//
// Tenant is safe for concurrent use. Leases live in the System's one
// namespace: any handle may release any lease — per-tenant ownership
// enforcement is the daemon's job, not the library's.
type Tenant struct {
	s  *System
	id int

	// alloc and views are guarded by s.mu: Repartition rebinds them to
	// the post-re-cut pipeline while holding it.
	alloc policy.Allocator
	views *matchcache.Views
}

// NewTenant registers a new tenant stream on the System. The tenant's
// view set inherits the current allocation and health state, so a
// tenant joining mid-traffic serves correctly from its first decision.
// Close the tenant when its client disconnects for good, or its view
// stream keeps absorbing every delta.
func (s *System) NewTenant() (*Tenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	alloc, err := policy.ByName(s.alloc.Name(), s.scorer)
	if err != nil {
		return nil, err
	}
	if s.cfg.workers > 1 {
		policy.SetParallelism(alloc, s.cfg.workers)
	}
	s.nextTenantID++
	t := &Tenant{s: s, id: s.nextTenantID, alloc: alloc}
	s.bindTenantLocked(t)
	if s.tenants == nil {
		s.tenants = make(map[int]*Tenant)
	}
	s.tenants[t.id] = t
	return t, nil
}

// bindTenantLocked (re)wires a tenant to the System's current match
// pipeline: shared scorer, cache, and universe store, plus a fresh
// per-tenant view stream replayed to the live state. Called at
// registration and again by Repartition, which swaps the pipeline.
func (s *System) bindTenantLocked(t *Tenant) {
	policy.SetScorer(t.alloc, s.scorer)
	policy.AttachCache(t.alloc, s.cache)
	policy.AttachUniverses(t.alloc, s.store)
	t.views = nil
	if s.store != nil && !s.cfg.disableLiveViews {
		t.views = s.store.NewViews()
		s.replayViewsLocked(t.views)
	}
	policy.AttachViews(t.alloc, t.views)
}

// ID returns the tenant's System-unique registration number.
func (t *Tenant) ID() int { return t.id }

// Allocate leases GPUs for the request, deciding through the tenant's
// own allocator and view stream. Semantics match System.Allocate:
// cold-shape builds run outside the decision lock, and the returned
// lease is valid with any handle on the System.
func (t *Tenant) Allocate(req JobRequest) (*Lease, error) {
	return t.s.allocate(t, req)
}

// Release returns a lease's GPUs to the free pool (System.Release).
func (t *Tenant) Release(l *Lease) error { return t.s.Release(l) }

// Renew extends or clears a lease's TTL deadline (System.Renew).
// Ownership enforcement — only the tenant that allocated a lease may
// renew it — is the daemon's job, like Release.
func (t *Tenant) Renew(id int, ttl time.Duration) (int64, error) { return t.s.Renew(id, ttl) }

// Close unregisters the tenant: its view stream stops receiving
// deltas and becomes collectable. Releasing the tenant's leases is the
// caller's responsibility; they remain valid via the System. Allocate
// on a closed tenant still decides correctly — its views simply go
// stale-free, never stale: an out-of-sync stream degrades to the
// filter path by the Views.Entry cross-check rather than serving
// wrong candidates.
func (t *Tenant) Close() {
	t.s.mu.Lock()
	delete(t.s.tenants, t.id)
	t.s.mu.Unlock()
}
