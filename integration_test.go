package mapa

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mapa/internal/jobs"
	"mapa/internal/policy"
	"mapa/internal/sched"
	"mapa/internal/topology"
)

// TestEveryTopologyPolicyDiscipline is the full cross-product smoke
// test: a small job mix completes on every built-in machine under
// every policy and queue discipline, and every record is internally
// consistent.
func TestEveryTopologyPolicyDiscipline(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-product integration test")
	}
	jobList, err := jobs.Generate(jobs.GenerateConfig{N: 15, MaxGPUs: 4, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, topoName := range topology.Names() {
		top, err := topology.ByName(topoName)
		if err != nil {
			t.Fatal(err)
		}
		for _, policyName := range policy.Names() {
			for _, d := range sched.Disciplines() {
				t.Run(fmt.Sprintf("%s/%s/%s", topoName, policyName, d), func(t *testing.T) {
					p, err := policy.ByName(policyName, nil)
					if err != nil {
						t.Fatal(err)
					}
					e := sched.NewEngine(top, p)
					e.Queue = d
					res, err := e.Run(jobList)
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Records) != len(jobList) {
						t.Fatalf("completed %d of %d", len(res.Records), len(jobList))
					}
					for _, r := range res.Records {
						if len(r.GPUs) != r.Job.NumGPUs || r.ExecTime <= 0 {
							t.Fatalf("bad record %+v", r)
						}
					}
				})
			}
		}
	}
}

// TestSystemConcurrentAllocateRelease stresses the public System under
// concurrent clients; run with -race.
func TestSystemConcurrentAllocateRelease(t *testing.T) {
	sys, err := NewSystem("dgx-v100", "preserve")
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				lease, err := sys.Allocate(JobRequest{
					NumGPUs:   1 + r.Intn(3),
					Sensitive: r.Intn(2) == 0,
				})
				if err != nil {
					continue // machine momentarily full — expected
				}
				if err := sys.Release(lease); err != nil {
					errs <- err
					return
				}
			}
		}(int64(c))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(sys.FreeGPUs()); got != 8 {
		t.Fatalf("free GPUs after stress = %d, want 8", got)
	}
}

// TestSimulationDeterminism pins the public simulation to be fully
// deterministic: identical inputs give identical outputs.
func TestSimulationDeterminism(t *testing.T) {
	mix := PaperJobMix(5)[:50]
	a, err := Simulate("dgx-v100", "preserve", mix)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate("dgx-v100", "preserve", mix)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Throughput != b.Throughput {
		t.Fatalf("nondeterministic: %g/%g vs %g/%g", a.Makespan, a.Throughput, b.Makespan, b.Throughput)
	}
	for i := range a.Jobs {
		if a.Jobs[i].ExecTime != b.Jobs[i].ExecTime {
			t.Fatalf("job %d differs", i)
		}
		for j := range a.Jobs[i].GPUs {
			if a.Jobs[i].GPUs[j] != b.Jobs[i].GPUs[j] {
				t.Fatalf("job %d GPUs differ", i)
			}
		}
	}
}

// TestMAPAPoliciesNeverWorseThanBaselineOnBandwidth asserts the core
// paper claim at the aggregate level across several seeds: the mean
// predicted effective bandwidth of sensitive multi-GPU jobs under
// Preserve is at least Baseline's.
func TestMAPAPoliciesNeverWorseThanBaselineOnBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed evaluation")
	}
	top, err := topology.ByName("dgx-v100")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2, 3} {
		results, err := sched.ComparePolicies(top, []string{"baseline", "preserve"}, jobs.PaperMix(seed))
		if err != nil {
			t.Fatal(err)
		}
		mean := func(name string) float64 {
			recs := sched.FilterMultiGPU(sched.FilterSensitive(results[name].Records, true))
			var sum float64
			for _, r := range recs {
				sum += r.PredictedEffBW
			}
			return sum / float64(len(recs))
		}
		if mb, mp := mean("baseline"), mean("preserve"); mp < mb {
			t.Errorf("seed %d: preserve mean EffBW %.2f below baseline %.2f", seed, mp, mb)
		}
	}
}
