// Extension benchmarks: the paper's sketched-but-unevaluated features
// implemented in this repository — queue reordering (Sec. 4 notes MAPA
// is scheduler-agnostic), parallel match scoring (the Sec. 5.4
// overhead mitigation), and MIG many-to-one mapping (Sec. 3.2/3.3).
package mapa

import (
	"fmt"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/effbw"
	"mapa/internal/jobs"
	"mapa/internal/mig"
	"mapa/internal/policy"
	"mapa/internal/sched"
	"mapa/internal/score"
	"mapa/internal/stats"
	"mapa/internal/topology"
)

// BenchmarkExtQueueDisciplines compares FIFO (the paper's
// configuration) against SJF and EASY backfill under the Preserve
// policy on the DGX-V.
func BenchmarkExtQueueDisciplines(b *testing.B) {
	top := topology.DGXV100()
	jobList := jobs.PaperMix(1)
	scorer := score.NewScorer(effbw.TrainedFor(top))
	type row struct {
		d          sched.Discipline
		makespan   float64
		throughput float64
	}
	var rows []row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, d := range sched.Disciplines() {
			e := sched.NewEngine(top, policy.NewPreserve(scorer))
			e.Queue = d
			res, err := e.Run(jobList)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{d, res.Makespan, res.Throughput})
		}
	}
	b.StopTimer()
	report(b, "Extension — queue disciplines under Preserve (300-job mix)", func() {
		for _, r := range rows {
			fmt.Printf("  %-10s makespan %8.0f s   throughput %.3f jobs/ks\n", r.d, r.makespan, r.throughput)
		}
	})
}

// BenchmarkExtParallelScoring measures the Sec. 5.4 mitigation: one
// Preserve decision for a 5-GPU ring on the 16-GPU Cube-mesh,
// sequential vs parallel scoring.
func BenchmarkExtParallelScoring(b *testing.B) {
	top := topology.CubeMesh16()
	scorer := score.NewScorer(effbw.TrainedFor(top))
	req := policy.Request{Pattern: appgraph.Ring(5), Sensitive: true}
	report(b, "Extension — parallel match scoring (Sec. 5.4)", func() {
		fmt.Printf("  GOMAXPROCS = %d; speedup over workers=1 requires multiple cores\n",
			policy.DefaultParallelism())
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := policy.NewPreserve(scorer)
			policy.SetParallelism(p, workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Allocate(top.Graph, top, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtMIGAllocation exercises the many-to-one extension: a
// DGX-V with two GPUs split into MIG slices, serving a stream of
// whole-GPU and slice-tolerant jobs.
func BenchmarkExtMIGAllocation(b *testing.B) {
	top := topology.DGXV100()
	vt, err := mig.Split(top, map[int]int{0: 4, 1: 2})
	if err != nil {
		b.Fatal(err)
	}
	scorer := score.NewScorer(effbw.TrainedFor(top))
	var whole, sliced mig.Allocation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		whole, err = vt.Allocate(vt.Graph.Clone(), scorer, mig.Request{
			Pattern: appgraph.Ring(3), Sensitive: true, MinFraction: 1.0,
		})
		if err != nil {
			b.Fatal(err)
		}
		sliced, err = vt.Allocate(vt.Graph.Clone(), scorer, mig.Request{
			Pattern: appgraph.Ring(3), Sensitive: true, MinFraction: 0,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	report(b, "Extension — MIG many-to-one mapping (DGX-V, GPUs 0 and 1 split)", func() {
		fmt.Printf("  machine: %d virtual accelerators over %d physical GPUs\n", vt.NumGPUs(), top.NumGPUs())
		fmt.Printf("  whole-GPU 3-ring: virtual %v on physical %v (EffBW %.1f GB/s)\n",
			whole.GPUs, whole.Physical, whole.Scores.EffBW)
		fmt.Printf("  slice-tolerant 3-ring: virtual %v on physical %v (EffBW %.1f GB/s)\n",
			sliced.GPUs, sliced.Physical, sliced.Scores.EffBW)
	})
}

// BenchmarkExtFixedVsRealRunMode quantifies how the simulator's
// duration semantics (Sec. 5.1 fixed durations vs the real-run
// workload model) shift the Fig. 13-style distributions.
func BenchmarkExtFixedVsRealRunMode(b *testing.B) {
	top := topology.DGXV100()
	jobList := jobs.PaperMix(1)
	var realRun, fixed map[string]sched.RunResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		realRun, err = sched.ComparePoliciesMode(top, []string{"baseline", "preserve"}, jobList, sched.ModeRealRun)
		if err != nil {
			b.Fatal(err)
		}
		fixed, err = sched.ComparePoliciesMode(top, []string{"baseline", "preserve"}, jobList, sched.ModeFixed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	report(b, "Extension — duration-mode ablation (sensitive jobs, preserve vs baseline)", func() {
		for label, results := range map[string]map[string]sched.RunResult{"real-run": realRun, "fixed": fixed} {
			for _, p := range []string{"baseline", "preserve"} {
				recs := sched.FilterMultiGPU(sched.FilterSensitive(results[p].Records, true))
				fmt.Printf("  %-9s %-9s EffBW: %s\n", label, p,
					stats.Summarize(sched.PredictedEffBWs(recs)))
			}
		}
	})
}
