// Allocation-discipline gate for the hierarchical fleet decision: like
// the flat table-served path, a warmed two-level decision must stay
// exactly 0 allocs/op — the node sweep reuses the view set's scratch,
// the intra-node selection is the ordinary table-served argmax, and
// the winner lands in a caller-supplied buffer by in-place appends.
package mapa

import (
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/effbw"
	"mapa/internal/matchcache"
	"mapa/internal/policy"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// TestFleetDecisionZeroAllocs pins the warmed hierarchical decision at
// 0 allocs/op for all four selection-order variants on a churned
// 9-node fleet, and proves the path is table-served (zero dynamic
// score evaluations).
func TestFleetDecisionZeroAllocs(t *testing.T) {
	fleet := topology.NewFleet(topology.DGXA100(), 9)
	pattern := appgraph.Ring(3)
	fstore := matchcache.NewFleetStore(fleet, 0)
	fstore.Warm(1, pattern)
	fviews := fstore.NewFleetViews()
	// Churn a few nodes so incident sums and usable counts differ
	// across nodes — the sweep does real comparison work.
	fviews.Allocate([]int{1, 9, 10, 40})
	scorer := score.NewScorer(effbw.PaperModel())
	for _, v := range allocPolicies(scorer) {
		t.Run(v.name, func(t *testing.T) {
			policy.AttachFleet(v.p, fviews)
			req := policy.Request{Pattern: pattern, Sensitive: v.sensitive}
			var buf policy.Allocation
			// Warm the lazy memos (per-model tables, sorted orders, remap
			// cache, per-node view slots) and prove the fast path serves.
			evals := score.Evaluations()
			served, err := policy.AllocateFleetInto(v.p, &buf, req)
			if err != nil {
				t.Fatal(err)
			}
			if !served {
				t.Fatal("fleet layer declined a warmed decision")
			}
			if d := score.Evaluations() - evals; d != 0 {
				t.Fatalf("decision ran %d dynamic score evaluations, want 0 (not table-served)", d)
			}
			got := testing.AllocsPerRun(100, func() {
				if _, err := policy.AllocateFleetInto(v.p, &buf, req); err != nil {
					t.Fatal(err)
				}
			})
			if got != 0 {
				t.Fatalf("hierarchical decision: %v allocs/op, want 0", got)
			}
		})
	}
}

// TestFleetViewDeltaAllocBudget caps the fleet tier-0 delta path: a
// global-ID allocate/release delta pair splits into node-local
// single-GPU deltas through reused buffers, so it stays within the
// same small budget as the flat stream.
func TestFleetViewDeltaAllocBudget(t *testing.T) {
	const budget = 4.0
	fleet := topology.NewFleet(topology.DGXA100(), 9)
	pattern := appgraph.Ring(3)
	fstore := matchcache.NewFleetStore(fleet, 0)
	fstore.Warm(1, pattern)
	fviews := fstore.NewFleetViews()
	scorer := score.NewScorer(effbw.PaperModel())
	p := policy.NewPreserve(scorer)
	policy.AttachFleet(p, fviews)
	// One decision materializes the touched nodes' view slots so the
	// deltas do real posting-list work.
	var buf policy.Allocation
	if _, err := policy.AllocateFleetInto(p, &buf, policy.Request{Pattern: pattern}); err != nil {
		t.Fatal(err)
	}
	gpus := []int{3, 10, 40}
	got := testing.AllocsPerRun(100, func() {
		fviews.Allocate(gpus)
		fviews.Release(gpus)
	})
	if got > budget {
		t.Fatalf("fleet view allocate+release delta: %v allocs/op, budget %v", got, budget)
	}
}
