package linkmodel

import (
	"math"
	"testing"
	"testing/quick"

	"mapa/internal/topology"
)

func TestAchievedApproachesPeak(t *testing.T) {
	for _, l := range topology.AllLinkTypes() {
		bw := Achieved(l, 1e9)
		if bw >= l.Bandwidth() {
			t.Errorf("%s: achieved %g must stay below peak %g", l, bw, l.Bandwidth())
		}
		if bw < 0.9*l.Bandwidth() {
			t.Errorf("%s: achieved %g at 1 GB should be >90%% of peak %g", l, bw, l.Bandwidth())
		}
	}
}

func TestAchievedSmallTransfersSlow(t *testing.T) {
	// Fig. 2a: below ~1e5 bytes no link achieves much of its peak.
	for _, l := range []topology.LinkType{topology.LinkPCIe, topology.LinkNVLink2, topology.LinkNVLink2x2} {
		if frac := Achieved(l, 1e4) / l.Bandwidth(); frac > 0.1 {
			t.Errorf("%s: 10 KB transfer achieves %.0f%% of peak, want <10%%", l, frac*100)
		}
	}
}

func TestLinkOrderingPreservedAtAllSizes(t *testing.T) {
	// Fig. 2a: the relative performance of link types holds across
	// transfer sizes (double > single > PCIe).
	for _, size := range []float64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9} {
		d := Achieved(topology.LinkNVLink2x2, size)
		s := Achieved(topology.LinkNVLink2, size)
		p := Achieved(topology.LinkPCIe, size)
		if !(d > s && s > p) {
			t.Errorf("size %g: ordering violated: double %g single %g pcie %g", size, d, s, p)
		}
	}
}

func TestHalfSaturation(t *testing.T) {
	for _, l := range topology.AllLinkTypes() {
		half := HalfSaturation(l)
		got := Achieved(l, half)
		if math.Abs(got-l.Bandwidth()/2) > 1e-9 {
			t.Errorf("%s: bw at half-saturation = %g, want %g", l, got, l.Bandwidth()/2)
		}
	}
	// Doubles saturate later than PCIe: bigger transfers needed.
	if HalfSaturation(topology.LinkNVLink2x2) <= HalfSaturation(topology.LinkPCIe) {
		t.Error("faster links should require larger transfers to saturate")
	}
}

func TestZeroAndNegativeSizes(t *testing.T) {
	if Achieved(topology.LinkPCIe, 0) != 0 || Achieved(topology.LinkPCIe, -5) != 0 {
		t.Error("non-positive sizes should achieve zero bandwidth")
	}
	if Ramp(topology.LinkPCIe, 0) != 0 {
		t.Error("ramp at 0 should be 0")
	}
	if got := TransferTime(topology.LinkPCIe, -1); got != StartupLatency {
		t.Errorf("negative size transfer time = %g, want startup latency", got)
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	prev := 0.0
	for _, size := range []float64{0, 1e3, 1e6, 1e9} {
		tt := TransferTime(topology.LinkNVLink2, size)
		if tt <= prev && size > 0 {
			t.Errorf("transfer time not increasing at size %g", size)
		}
		prev = tt
	}
}

// Property: Achieved = peak * Ramp, and Ramp is within [0,1).
func TestAchievedRampConsistency(t *testing.T) {
	f := func(sizeRaw uint32) bool {
		size := float64(sizeRaw)
		for _, l := range topology.AllLinkTypes() {
			r := Ramp(l, size)
			if r < 0 || r >= 1 {
				return false
			}
			if math.Abs(Achieved(l, size)-l.Bandwidth()*r) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: achieved bandwidth is monotonically non-decreasing in size.
func TestAchievedMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, l := range topology.AllLinkTypes() {
			if Achieved(l, lo) > Achieved(l, hi)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
