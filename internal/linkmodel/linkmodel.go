// Package linkmodel models the achievable bandwidth of a single
// inter-accelerator link as a function of transfer size, reproducing the
// bandwidth-characterization curves of Fig. 2a of the MAPA paper: every
// link ramps from near-zero at small transfers to its Table 1 peak at
// large transfers, and the links keep their relative ordering at every
// size (double NVLink fastest).
//
// The model is the standard latency/bandwidth pipe: a transfer of S
// bytes takes t = t0 + S/peak, so the achieved bandwidth is
//
//	bw(S) = S/t = peak * S / (S + peak*t0).
//
// The half-saturation size peak*t0 grows with the peak, which matches
// the observation in the paper (Sec. 2.3) that transfers must exceed
// roughly 1e5 bytes before fast links pay off.
package linkmodel

import "mapa/internal/topology"

// StartupLatency is the per-transfer fixed cost t0 in seconds. With the
// Table 1 peaks this puts the half-saturation point of a double NVLink
// at 50 GB/s * 10 us = 500 KB, squarely in the 1e5-1e6 byte region the
// paper identifies.
const StartupLatency = 10e-6

// HalfSaturation returns the transfer size (bytes) at which the link
// achieves half its peak bandwidth.
func HalfSaturation(l topology.LinkType) float64 {
	return l.Bandwidth() * 1e9 * StartupLatency
}

// Achieved returns the bandwidth in GB/s achieved by a transfer of
// size bytes over the given link type. It is 0 for non-positive sizes
// and approaches the Table 1 peak as size grows.
func Achieved(l topology.LinkType, size float64) float64 {
	if size <= 0 {
		return 0
	}
	peak := l.Bandwidth()
	return peak * size / (size + HalfSaturation(l))
}

// Ramp returns the saturation fraction in [0,1) for a transfer of the
// given size on the link: Achieved = peak * Ramp.
func Ramp(l topology.LinkType, size float64) float64 {
	if size <= 0 {
		return 0
	}
	return size / (size + HalfSaturation(l))
}

// TransferTime returns the seconds needed to move size bytes across the
// link, including the startup latency. Zero-size transfers still pay
// the startup cost.
func TransferTime(l topology.LinkType, size float64) float64 {
	if size < 0 {
		size = 0
	}
	return StartupLatency + size/(l.Bandwidth()*1e9)
}
