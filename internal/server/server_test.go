package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mapa"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	sys, err := mapa.NewSystem("dgx-a100", "preserve", mapa.WithWarmShapes(4))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	srv := New(sys, opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, url string, body, out interface{}) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestAllocateReleaseRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var ar AllocateResponse
	if code := post(t, ts.URL+"/v1/allocate", AllocateRequest{Tenant: "a", NumGPUs: 2}, &ar); code != 200 {
		t.Fatalf("allocate: code %d", code)
	}
	if len(ar.GPUs) != 2 || ar.LeaseID == 0 {
		t.Fatalf("bad lease: %+v", ar)
	}
	if code := post(t, ts.URL+"/v1/release", ReleaseRequest{Tenant: "a", LeaseID: ar.LeaseID}, nil); code != 200 {
		t.Fatalf("release: code %d", code)
	}
	// A second release of the same lease is gone from the owner table.
	if code := post(t, ts.URL+"/v1/release", ReleaseRequest{Tenant: "a", LeaseID: ar.LeaseID}, nil); code != 404 {
		t.Fatalf("double release: code %d, want 404", code)
	}
}

func TestTenantOwnershipEnforced(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var ar AllocateResponse
	if code := post(t, ts.URL+"/v1/allocate", AllocateRequest{Tenant: "alice", NumGPUs: 2}, &ar); code != 200 {
		t.Fatalf("allocate: code %d", code)
	}
	if code := post(t, ts.URL+"/v1/release", ReleaseRequest{Tenant: "bob", LeaseID: ar.LeaseID}, nil); code != 403 {
		t.Fatalf("cross-tenant release: code %d, want 403", code)
	}
	if code := post(t, ts.URL+"/v1/release", ReleaseRequest{Tenant: "alice", LeaseID: ar.LeaseID}, nil); code != 200 {
		t.Fatalf("owner release: code %d", code)
	}
}

func TestAllocateConflictWhenInfeasible(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// DGX-A100 has 8 GPUs; a 9-GPU ring cannot be placed.
	if code := post(t, ts.URL+"/v1/allocate", AllocateRequest{NumGPUs: 9}, nil); code != 409 {
		t.Fatalf("infeasible allocate: code %d, want 409", code)
	}
	if code := post(t, ts.URL+"/v1/allocate", AllocateRequest{NumGPUs: 0}, nil); code != 400 {
		t.Fatalf("zero-GPU allocate: code %d, want 400", code)
	}
}

func TestAdmissionBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, Options{QueueDepth: 2})
	// Occupy every admission slot, as in-flight decisions would.
	srv.admit <- struct{}{}
	srv.admit <- struct{}{}
	if code := post(t, ts.URL+"/v1/allocate", AllocateRequest{NumGPUs: 2}, nil); code != 429 {
		t.Fatalf("overloaded allocate: code %d, want 429", code)
	}
	<-srv.admit
	<-srv.admit
	var ar AllocateResponse
	if code := post(t, ts.URL+"/v1/allocate", AllocateRequest{NumGPUs: 2}, &ar); code != 200 {
		t.Fatalf("allocate after drain: code %d", code)
	}
	body := scrape(t, ts.URL+"/metrics")
	if !strings.Contains(body, "mapad_admission_rejected_total 1") {
		t.Fatalf("metrics missing rejection count:\n%s", body)
	}
}

func TestHealthActions(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if code := post(t, ts.URL+"/v1/health", HealthRequest{Action: "mark", GPUs: []int{3}}, nil); code != 200 {
		t.Fatalf("mark: code %d", code)
	}
	// Marked GPU is unallocatable: an 8-GPU request must now fail.
	if code := post(t, ts.URL+"/v1/allocate", AllocateRequest{NumGPUs: 8}, nil); code != 409 {
		t.Fatalf("allocate over degraded machine: want 409")
	}
	if code := post(t, ts.URL+"/v1/health", HealthRequest{Action: "restore", GPUs: []int{3}}, nil); code != 200 {
		t.Fatalf("restore: code %d", code)
	}
	var ar AllocateResponse
	if code := post(t, ts.URL+"/v1/allocate", AllocateRequest{NumGPUs: 8}, &ar); code != 200 {
		t.Fatalf("allocate after restore: code %d", code)
	}
	if code := post(t, ts.URL+"/v1/health", HealthRequest{Action: "degrade", U: 0, V: 1, BW: 10}, nil); code != 200 {
		t.Fatalf("degrade: code %d", code)
	}
	if code := post(t, ts.URL+"/v1/health", HealthRequest{Action: "explode"}, nil); code != 400 {
		t.Fatalf("unknown action: want 400")
	}
}

func TestCoalescedBurstGetsDistinctLeases(t *testing.T) {
	srv, _ := newTestServer(t, Options{CoalesceWindow: 20 * time.Millisecond})
	req := mapa.JobRequest{NumGPUs: 2}
	// Lead with one request, then deterministically join it: the batch
	// is open (registered in srv.batches) for the whole coalesce
	// window, so joiners added while it is visible are guaranteed
	// members of the same AllocateBatch.
	type result struct {
		lease *mapa.Lease
		err   error
	}
	results := make(chan result, 3)
	go func() {
		l, err := srv.allocateCoalesced(req)
		results <- result{l, err}
	}()
	key := coalKey{shape: "Ring", n: 2, sensitive: false}
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		_, open := srv.batches[key]
		srv.mu.Unlock()
		if open {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never opened")
		}
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		// Join under the server lock while the batch is still
		// registered — exactly what a concurrent handler does.
		srv.mu.Lock()
		b := srv.batches[key]
		if b == nil {
			srv.mu.Unlock()
			t.Fatal("batch closed before joiners arrived; widen the window")
		}
		idx := b.members
		b.members++
		srv.mu.Unlock()
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			<-b.done
			results <- result{b.leases[idx], b.errs[idx]}
		}(idx)
	}
	wg.Wait()
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("coalesced allocate: %v", r.err)
		}
		if seen[r.lease.ID] {
			t.Fatalf("duplicate lease %d handed to two members", r.lease.ID)
		}
		seen[r.lease.ID] = true
	}
	if srv.sys.ActiveLeases() != 3 {
		t.Fatalf("ActiveLeases = %d, want 3", srv.sys.ActiveLeases())
	}
	srv.metrics.mu.Lock()
	defer srv.metrics.mu.Unlock()
	if srv.metrics.coalesced != 2 || srv.metrics.batches != 1 {
		t.Fatalf("coalesce counters = %d joiners / %d batches, want 2/1",
			srv.metrics.coalesced, srv.metrics.batches)
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return buf.String()
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var hz struct {
		Status string `json:"status"`
		Warm   bool   `json:"warm"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || !hz.Warm {
		t.Fatalf("healthz = %+v, want ok/warm (synchronous warm)", hz)
	}

	var ar AllocateResponse
	post(t, ts.URL+"/v1/allocate", AllocateRequest{Tenant: "m", NumGPUs: 3}, &ar)
	body := scrape(t, ts.URL+"/metrics")
	for _, want := range []string{
		`mapad_requests_total{route="allocate",code="200"} 1`,
		"mapad_allocate_latency_seconds_count 1",
		"mapad_allocate_latency_seconds_bucket{le=\"+Inf\"} 1",
		"mapad_leases_active 1",
		"mapad_gpus_free 5",
		"mapad_tenants 1",
		"mapad_warm 1",
		"mapad_decisions_table_served_total",
		"mapad_universes_resident",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Histogram bucket counts must be cumulative and end at count.
	if strings.Count(body, "_bucket{le=") != len(latencyBuckets)+1 {
		t.Errorf("want %d histogram buckets", len(latencyBuckets)+1)
	}
}

func TestTenantStreamsServeIdenticalDecisions(t *testing.T) {
	// Two servers over identical systems, one serving via distinct
	// tenant streams, one via the default stream only: the allocation
	// traces must be identical — tenancy shapes contention, never
	// outcomes.
	_, tsA := newTestServer(t, Options{})
	_, tsB := newTestServer(t, Options{})
	sizes := []int{2, 3, 2}
	var leasesA, leasesB []int
	step := func(i, n int) {
		t.Helper()
		var a, b AllocateResponse
		if code := post(t, tsA.URL+"/v1/allocate", AllocateRequest{Tenant: fmt.Sprintf("t%d", i), NumGPUs: n}, &a); code != 200 {
			t.Fatalf("tenant allocate %d: code %d", i, code)
		}
		if code := post(t, tsB.URL+"/v1/allocate", AllocateRequest{NumGPUs: n}, &b); code != 200 {
			t.Fatalf("default allocate %d: code %d", i, code)
		}
		if fmt.Sprint(a.GPUs) != fmt.Sprint(b.GPUs) || a.EffBW != b.EffBW {
			t.Fatalf("step %d: tenant-stream decision %v differs from default-stream %v", i, a.GPUs, b.GPUs)
		}
		leasesA = append(leasesA, a.LeaseID)
		leasesB = append(leasesB, b.LeaseID)
	}
	for i, n := range sizes {
		step(i, n)
	}
	// Release the first lease on both and keep allocating: the tenant
	// streams must have absorbed the release delta identically.
	if code := post(t, tsA.URL+"/v1/release", ReleaseRequest{Tenant: "t0", LeaseID: leasesA[0]}, nil); code != 200 {
		t.Fatalf("tenant release: code %d", code)
	}
	if code := post(t, tsB.URL+"/v1/release", ReleaseRequest{LeaseID: leasesB[0]}, nil); code != 200 {
		t.Fatalf("default release: code %d", code)
	}
	step(3, 3)
}

// TestRenewAndLeases exercises the TTL surface: allocate with ttl_ms,
// list via /v1/leases, renew (owner-gated), clear the TTL, and reap.
func TestRenewAndLeases(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	var ar AllocateResponse
	code := post(t, ts.URL+"/v1/allocate",
		AllocateRequest{Tenant: "a", NumGPUs: 2, TTLMillis: 60_000}, &ar)
	if code != 200 || ar.Deadline == 0 {
		t.Fatalf("ttl allocate: code %d deadline %d", code, ar.Deadline)
	}

	var lr LeasesResponse
	if code := get(t, ts.URL+"/v1/leases", &lr); code != 200 {
		t.Fatalf("leases: code %d", code)
	}
	if len(lr.Leases) != 1 || lr.Leases[0].LeaseID != ar.LeaseID ||
		lr.Leases[0].Tenant != "a" || lr.Leases[0].Deadline != ar.Deadline {
		t.Fatalf("leases = %+v, want lease %d tenant a deadline %d", lr.Leases, ar.LeaseID, ar.Deadline)
	}

	if code := post(t, ts.URL+"/v1/renew", RenewRequest{Tenant: "b", LeaseID: ar.LeaseID, TTLMillis: 1}, nil); code != 403 {
		t.Fatalf("cross-tenant renew: code %d, want 403", code)
	}
	var rr RenewResponse
	if code := post(t, ts.URL+"/v1/renew", RenewRequest{Tenant: "a", LeaseID: ar.LeaseID, TTLMillis: 120_000}, &rr); code != 200 {
		t.Fatalf("renew: code %d", code)
	}
	if rr.Deadline <= ar.Deadline {
		t.Fatalf("renew did not extend the deadline: %d -> %d", ar.Deadline, rr.Deadline)
	}
	if code := post(t, ts.URL+"/v1/renew", RenewRequest{Tenant: "a", LeaseID: ar.LeaseID, TTLMillis: 0}, &rr); code != 200 || rr.Deadline != 0 {
		t.Fatalf("clearing renew: code %d deadline %d", code, rr.Deadline)
	}
	if code := post(t, ts.URL+"/v1/renew", RenewRequest{Tenant: "a", LeaseID: 99}, nil); code != 404 {
		t.Fatalf("renew of unknown lease: code %d, want 404", code)
	}

	// Re-arm a short TTL and reap past it: the lease is released and
	// its owner entry pruned, so a re-release 404s.
	if code := post(t, ts.URL+"/v1/renew", RenewRequest{Tenant: "a", LeaseID: ar.LeaseID, TTLMillis: 1}, &rr); code != 200 {
		t.Fatalf("re-arm renew: code %d", code)
	}
	n, err := srv.ReapExpired(time.Now().Add(time.Second))
	if err != nil || n != 1 {
		t.Fatalf("ReapExpired = %d, %v; want 1", n, err)
	}
	if code := post(t, ts.URL+"/v1/release", ReleaseRequest{Tenant: "a", LeaseID: ar.LeaseID}, nil); code != 404 {
		t.Fatalf("release after reap: code %d, want 404", code)
	}
}

// TestDrainRefusesMutations: after Drain, serving routes answer 503
// with Retry-After while probes and lease listing stay available.
func TestDrainRefusesMutations(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	var ar AllocateResponse
	if code := post(t, ts.URL+"/v1/allocate", AllocateRequest{Tenant: "a", NumGPUs: 2}, &ar); code != 200 {
		t.Fatalf("allocate: code %d", code)
	}
	srv.Drain()
	resp, err := http.Post(ts.URL+"/v1/allocate", "application/json",
		strings.NewReader(`{"num_gpus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("allocate during drain: code %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 missing Retry-After")
	}
	var lr LeasesResponse
	if code := get(t, ts.URL+"/v1/leases", &lr); code != 200 || len(lr.Leases) != 1 {
		t.Fatalf("leases during drain: code %d %+v", code, lr.Leases)
	}
	body := scrape(t, ts.URL+"/healthz")
	if !strings.Contains(body, "draining") {
		t.Fatalf("healthz during drain: %s", body)
	}
}

func get(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}
