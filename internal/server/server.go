// Package server implements mapad's HTTP serving layer: long-running
// allocate/release over JSON for many concurrent tenants on one shared
// mapa.System, with bounded admission (429 backpressure), optional
// coalescing of identical (shape, size) allocate bursts into one
// decision-lock round trip, a readiness probe, and Prometheus-format
// metrics. The daemon skeleton — health endpoint plus text-format
// metrics beside the serving routes — follows the ROCm k8s device
// plugin's monitoring layout.
//
// Routes:
//
//	POST /v1/allocate  {tenant?, num_gpus, shape?, sensitive?, ttl_ms?} -> lease
//	POST /v1/release   {tenant?, lease_id}
//	POST /v1/renew     {tenant?, lease_id, ttl_ms} -> new deadline
//	POST /v1/health    {action: mark|restore|degrade, gpus?, u?, v?, bw?}
//	GET  /v1/leases    live leases with owners and TTL deadlines
//	GET  /healthz      readiness: 200 once serving, reports warm state
//	GET  /metrics      Prometheus text exposition
//
// During shutdown the daemon calls Drain: every serving route answers
// 503 with Retry-After while /healthz reports "draining" and /metrics
// stays scrapeable, so load balancers move on while in-flight requests
// finish and the final snapshot is cut.
//
// Tenancy: each distinct tenant name is lazily bound to its own
// mapa.Tenant — a per-tenant allocator and live-view stream over the
// shared universe store — and a tenant may only release leases it
// allocated (403 otherwise). An empty tenant name serves through the
// System's default stream.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mapa"
	"mapa/internal/policy"
)

// Defaults for Options zero values.
const (
	DefaultQueueDepth = 256
	DefaultMaxTenants = 1024
)

// Options configures a Server.
type Options struct {
	// QueueDepth bounds how many allocate requests may be admitted —
	// in flight or waiting on the decision lock — at once; requests
	// beyond it are rejected with 429 so overload surfaces as
	// backpressure instead of unbounded queueing. <= 0 uses
	// DefaultQueueDepth.
	QueueDepth int
	// CoalesceWindow, when positive, holds the first allocate of an
	// identical (shape, size, sensitivity) burst open for this long so
	// later arrivals join its batch: the batch runs as one
	// System.AllocateBatch — one prewarm, one lock acquisition — and
	// each member gets its own lease, byte-identical to sequential
	// execution. Zero disables coalescing.
	CoalesceWindow time.Duration
	// MaxTenants bounds the number of distinct tenant streams; further
	// tenant names are served through the System's default stream
	// (decisions stay identical — streams shape contention, not
	// outcomes). <= 0 uses DefaultMaxTenants.
	MaxTenants int
}

// Server is the mapad HTTP handler. Create with New; it is safe for
// concurrent use.
type Server struct {
	sys      *mapa.System
	opts     Options
	admit    chan struct{}
	mux      *http.ServeMux
	metrics  *metrics
	draining atomic.Bool

	mu      sync.Mutex
	tenants map[string]*mapa.Tenant
	owner   map[int]string // lease ID -> owning tenant name
	batches map[coalKey]*batch
}

// New returns a Server over the System. The System should usually be
// built with WithBackgroundWarming so the daemon serves early traffic
// while universes warm.
func New(sys *mapa.System, opts Options) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.MaxTenants <= 0 {
		opts.MaxTenants = DefaultMaxTenants
	}
	s := &Server{
		sys:     sys,
		opts:    opts,
		admit:   make(chan struct{}, opts.QueueDepth),
		mux:     http.NewServeMux(),
		metrics: newMetrics(),
		tenants: make(map[string]*mapa.Tenant),
		owner:   make(map[int]string),
		batches: make(map[coalKey]*batch),
	}
	// A journal-backed System hands back the leases it recovered;
	// rebind them to their owning tenants so ownership checks survive a
	// daemon restart (the owner label journaled at allocate time is the
	// tenant name).
	for id, owner := range sys.LeaseOwners() {
		s.owner[id] = owner
	}
	s.mux.HandleFunc("POST /v1/allocate", s.handleAllocate)
	s.mux.HandleFunc("POST /v1/release", s.handleRelease)
	s.mux.HandleFunc("POST /v1/renew", s.handleRenew)
	s.mux.HandleFunc("POST /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /v1/leases", s.handleLeases)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		switch r.URL.Path {
		case "/healthz", "/metrics", "/v1/leases":
			// Probes and observability stay up through the drain.
		default:
			w.Header().Set("Retry-After", "1")
			s.writeError(w, "drain", http.StatusServiceUnavailable,
				errors.New("draining: daemon is shutting down"))
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

// Drain moves the server into shutdown mode: new work is refused with
// 503 + Retry-After while requests already admitted run to completion.
// The caller then stops the http.Server (which waits out in-flight
// handlers) and closes the System for the final snapshot.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// AllocateRequest is the /v1/allocate body.
type AllocateRequest struct {
	// Tenant names the requesting tenant's stream; empty uses the
	// System default stream.
	Tenant string `json:"tenant,omitempty"`
	// NumGPUs is the accelerator count (required, >= 1).
	NumGPUs int `json:"num_gpus"`
	// Shape names the communication pattern (mapa.Shapes); empty
	// defaults to Ring.
	Shape string `json:"shape,omitempty"`
	// Sensitive is the bandwidth-sensitivity annotation.
	Sensitive bool `json:"sensitive,omitempty"`
	// TTLMillis, when positive, gives the lease a time-to-live: if it
	// is neither released nor renewed within this window the daemon's
	// reaper expires it, journaling the expiry. Zero means no TTL.
	TTLMillis int64 `json:"ttl_ms,omitempty"`
}

// AllocateResponse is the /v1/allocate success body.
type AllocateResponse struct {
	LeaseID     int     `json:"lease_id"`
	GPUs        []int   `json:"gpus"`
	EffBW       float64 `json:"eff_bw"`
	AggBW       float64 `json:"agg_bw"`
	PreservedBW float64 `json:"preserved_bw"`
	// Deadline is the TTL expiry in Unix nanoseconds, 0 if untimed.
	Deadline int64 `json:"deadline_unix_nano,omitempty"`
}

// ReleaseRequest is the /v1/release body.
type ReleaseRequest struct {
	Tenant  string `json:"tenant,omitempty"`
	LeaseID int    `json:"lease_id"`
}

// RenewRequest is the /v1/renew body. TTLMillis > 0 pushes the lease's
// deadline out from now; <= 0 clears the TTL entirely.
type RenewRequest struct {
	Tenant    string `json:"tenant,omitempty"`
	LeaseID   int    `json:"lease_id"`
	TTLMillis int64  `json:"ttl_ms"`
}

// RenewResponse is the /v1/renew success body. Deadline is always
// present: 0 states the TTL was cleared.
type RenewResponse struct {
	LeaseID  int   `json:"lease_id"`
	Deadline int64 `json:"deadline_unix_nano"`
}

// LeaseEntry is one element of the /v1/leases response.
type LeaseEntry struct {
	LeaseID  int    `json:"lease_id"`
	Tenant   string `json:"tenant,omitempty"`
	GPUs     []int  `json:"gpus"`
	Deadline int64  `json:"deadline_unix_nano,omitempty"`
}

// LeasesResponse is the /v1/leases body.
type LeasesResponse struct {
	Leases []LeaseEntry `json:"leases"`
}

// HealthRequest is the /v1/health body: a topology event. Action is
// "mark" (GPUs become unallocatable), "restore" (they return to
// service), or "degrade" (link (U,V) is re-weighted to BW GB/s).
type HealthRequest struct {
	Action string  `json:"action"`
	GPUs   []int   `json:"gpus,omitempty"`
	U      int     `json:"u,omitempty"`
	V      int     `json:"v,omitempty"`
	BW     float64 `json:"bw,omitempty"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, route string, code int, body interface{}) {
	s.metrics.request(route, fmt.Sprintf("%d", code))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) writeError(w http.ResponseWriter, route string, code int, err error) {
	s.writeJSON(w, route, code, errorResponse{Error: err.Error()})
}

// tryAdmit claims an admission slot without blocking; callers that get
// false must answer 429. Pairs with done.
func (s *Server) tryAdmit() bool {
	select {
	case s.admit <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) done() { <-s.admit }

// tenant resolves a tenant name to its stream, creating it on first
// sight up to MaxTenants; past the cap (and for the empty name) the
// System's default stream serves — identical decisions, shared
// contention. The returned Tenant may be nil.
func (s *Server) tenant(name string) (*mapa.Tenant, error) {
	if name == "" {
		return nil, nil
	}
	s.mu.Lock()
	t, ok := s.tenants[name]
	overflow := !ok && len(s.tenants) >= s.opts.MaxTenants
	s.mu.Unlock()
	if ok || overflow {
		return t, nil
	}
	nt, err := s.sys.NewTenant()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		// Lost the registration race; keep the winner's stream.
		nt.Close()
		return t, nil
	}
	if len(s.tenants) >= s.opts.MaxTenants {
		nt.Close()
		return nil, nil
	}
	s.tenants[name] = nt
	return nt, nil
}

func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	const route = "allocate"
	var req AllocateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, route, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.NumGPUs < 1 {
		s.writeError(w, route, http.StatusBadRequest, fmt.Errorf("num_gpus must be >= 1, got %d", req.NumGPUs))
		return
	}
	if !s.tryAdmit() {
		s.metrics.reject()
		s.writeError(w, route, http.StatusTooManyRequests, errors.New("admission queue full"))
		return
	}
	defer s.done()
	t, err := s.tenant(req.Tenant)
	if err != nil {
		s.writeError(w, route, http.StatusInternalServerError, err)
		return
	}
	jr := mapa.JobRequest{
		NumGPUs:   req.NumGPUs,
		Shape:     req.Shape,
		Sensitive: req.Sensitive,
		Owner:     req.Tenant,
		TTL:       time.Duration(req.TTLMillis) * time.Millisecond,
	}
	start := time.Now()
	var lease *mapa.Lease
	if s.opts.CoalesceWindow > 0 {
		lease, err = s.allocateCoalesced(jr)
	} else if t != nil {
		lease, err = t.Allocate(jr)
	} else {
		lease, err = s.sys.Allocate(jr)
	}
	s.metrics.observeAllocate(time.Since(start))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, policy.ErrNoAllocation) {
			// The machine cannot place the request right now — the
			// client's cue to retry after a release, not a server fault.
			code = http.StatusConflict
		}
		s.writeError(w, route, code, err)
		return
	}
	s.mu.Lock()
	s.owner[lease.ID] = req.Tenant
	s.mu.Unlock()
	s.writeJSON(w, route, http.StatusOK, AllocateResponse{
		LeaseID:     lease.ID,
		GPUs:        lease.GPUs,
		EffBW:       lease.EffBW,
		AggBW:       lease.AggBW,
		PreservedBW: lease.PreservedBW,
		Deadline:    lease.Deadline,
	})
}

// coalKey identifies one coalescable request class. Owner and TTL are
// part of the key because both are journaled per lease: members of one
// AllocateBatch share a JobRequest, so requests that must journal
// different owners or deadlines cannot share a batch.
type coalKey struct {
	shape     string
	n         int
	sensitive bool
	owner     string
	ttlMillis int64
}

// batch is one in-flight coalesced allocate: the leader gathers
// joiners for the coalesce window, runs one AllocateBatch, and each
// member reads its own slot after done closes.
type batch struct {
	members int
	done    chan struct{}
	leases  []*mapa.Lease
	errs    []error
}

// allocateCoalesced joins or leads the request class's batch. The
// leader holds the batch open for the coalesce window, then executes
// it as one System.AllocateBatch; joiners park on done and read their
// slot. Coalesced decisions run on the System's default stream —
// identical results to any tenant stream, since decisions are a pure
// function of machine state.
func (s *Server) allocateCoalesced(req mapa.JobRequest) (*mapa.Lease, error) {
	shape := req.Shape
	if shape == "" {
		shape = "Ring"
	}
	key := coalKey{
		shape: shape, n: req.NumGPUs, sensitive: req.Sensitive,
		owner: req.Owner, ttlMillis: int64(req.TTL / time.Millisecond),
	}
	s.mu.Lock()
	if b, ok := s.batches[key]; ok {
		idx := b.members
		b.members++
		s.mu.Unlock()
		<-b.done
		return b.leases[idx], b.errs[idx]
	}
	b := &batch{members: 1, done: make(chan struct{})}
	s.batches[key] = b
	s.mu.Unlock()
	time.Sleep(s.opts.CoalesceWindow)
	s.mu.Lock()
	delete(s.batches, key)
	n := b.members
	s.mu.Unlock()
	b.leases, b.errs = s.sys.AllocateBatch(req, n)
	close(b.done)
	if n > 1 {
		s.metrics.coalesce(n - 1)
	}
	return b.leases[0], b.errs[0]
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	const route = "release"
	var req ReleaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, route, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	s.mu.Lock()
	owner, known := s.owner[req.LeaseID]
	s.mu.Unlock()
	if !known {
		s.writeError(w, route, http.StatusNotFound, fmt.Errorf("lease %d unknown", req.LeaseID))
		return
	}
	if owner != req.Tenant {
		s.writeError(w, route, http.StatusForbidden,
			fmt.Errorf("lease %d belongs to another tenant", req.LeaseID))
		return
	}
	if err := s.sys.Release(&mapa.Lease{ID: req.LeaseID}); err != nil {
		s.writeError(w, route, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	delete(s.owner, req.LeaseID)
	s.mu.Unlock()
	s.writeJSON(w, route, http.StatusOK, struct{}{})
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	const route = "renew"
	var req RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, route, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	s.mu.Lock()
	owner, known := s.owner[req.LeaseID]
	s.mu.Unlock()
	if !known {
		s.writeError(w, route, http.StatusNotFound, fmt.Errorf("lease %d unknown", req.LeaseID))
		return
	}
	if owner != req.Tenant {
		s.writeError(w, route, http.StatusForbidden,
			fmt.Errorf("lease %d belongs to another tenant", req.LeaseID))
		return
	}
	deadline, err := s.sys.Renew(req.LeaseID, time.Duration(req.TTLMillis)*time.Millisecond)
	if err != nil {
		s.writeError(w, route, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, route, http.StatusOK, RenewResponse{LeaseID: req.LeaseID, Deadline: deadline})
}

// handleLeases lists live leases from the System itself — after a
// restart this is recovered state, which is what the crash harness
// audits against its acked set.
func (s *Server) handleLeases(w http.ResponseWriter, r *http.Request) {
	resp := LeasesResponse{Leases: []LeaseEntry{}}
	for _, l := range s.sys.Leases() {
		resp.Leases = append(resp.Leases, LeaseEntry{
			LeaseID: l.ID, Tenant: l.Owner, GPUs: l.GPUs, Deadline: l.Deadline,
		})
	}
	s.writeJSON(w, "leases", http.StatusOK, resp)
}

// ReapExpired releases every lease whose TTL deadline has passed,
// journaling each expiry, and prunes the ownership map. The daemon's
// reaper goroutine calls this on a timer.
func (s *Server) ReapExpired(now time.Time) (int, error) {
	reaped, err := s.sys.ReapExpired(now)
	if len(reaped) > 0 {
		s.mu.Lock()
		for _, id := range reaped {
			delete(s.owner, id)
		}
		s.mu.Unlock()
	}
	return len(reaped), err
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	const route = "health"
	var req HealthRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, route, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	var err error
	switch req.Action {
	case "mark":
		err = s.sys.MarkUnhealthy(req.GPUs...)
	case "restore":
		err = s.sys.Restore(req.GPUs...)
	case "degrade":
		err = s.sys.DegradeLink(req.U, req.V, req.BW)
	default:
		s.writeError(w, route, http.StatusBadRequest,
			fmt.Errorf("unknown action %q (want mark, restore, or degrade)", req.Action))
		return
	}
	if err != nil {
		s.writeError(w, route, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, route, http.StatusOK, struct{}{})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	s.writeJSON(w, "healthz", http.StatusOK, struct {
		Status   string `json:"status"`
		Topology string `json:"topology"`
		Policy   string `json:"policy"`
		Warm     bool   `json:"warm"`
	}{status, s.sys.Topology(), s.sys.Policy(), s.sys.Warmed()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("metrics", "200")
	s.mu.Lock()
	tenants := len(s.tenants)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w, s.sys, tenants, len(s.admit), cap(s.admit))
}
