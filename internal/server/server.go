// Package server implements mapad's HTTP serving layer: long-running
// allocate/release over JSON for many concurrent tenants on one shared
// mapa.System, with bounded admission (429 backpressure), optional
// coalescing of identical (shape, size) allocate bursts into one
// decision-lock round trip, a readiness probe, and Prometheus-format
// metrics. The daemon skeleton — health endpoint plus text-format
// metrics beside the serving routes — follows the ROCm k8s device
// plugin's monitoring layout.
//
// Routes:
//
//	POST /v1/allocate  {tenant?, num_gpus, shape?, sensitive?} -> lease
//	POST /v1/release   {tenant?, lease_id}
//	POST /v1/health    {action: mark|restore|degrade, gpus?, u?, v?, bw?}
//	GET  /healthz      readiness: 200 once serving, reports warm state
//	GET  /metrics      Prometheus text exposition
//
// Tenancy: each distinct tenant name is lazily bound to its own
// mapa.Tenant — a per-tenant allocator and live-view stream over the
// shared universe store — and a tenant may only release leases it
// allocated (403 otherwise). An empty tenant name serves through the
// System's default stream.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"mapa"
	"mapa/internal/policy"
)

// Defaults for Options zero values.
const (
	DefaultQueueDepth = 256
	DefaultMaxTenants = 1024
)

// Options configures a Server.
type Options struct {
	// QueueDepth bounds how many allocate requests may be admitted —
	// in flight or waiting on the decision lock — at once; requests
	// beyond it are rejected with 429 so overload surfaces as
	// backpressure instead of unbounded queueing. <= 0 uses
	// DefaultQueueDepth.
	QueueDepth int
	// CoalesceWindow, when positive, holds the first allocate of an
	// identical (shape, size, sensitivity) burst open for this long so
	// later arrivals join its batch: the batch runs as one
	// System.AllocateBatch — one prewarm, one lock acquisition — and
	// each member gets its own lease, byte-identical to sequential
	// execution. Zero disables coalescing.
	CoalesceWindow time.Duration
	// MaxTenants bounds the number of distinct tenant streams; further
	// tenant names are served through the System's default stream
	// (decisions stay identical — streams shape contention, not
	// outcomes). <= 0 uses DefaultMaxTenants.
	MaxTenants int
}

// Server is the mapad HTTP handler. Create with New; it is safe for
// concurrent use.
type Server struct {
	sys     *mapa.System
	opts    Options
	admit   chan struct{}
	mux     *http.ServeMux
	metrics *metrics

	mu      sync.Mutex
	tenants map[string]*mapa.Tenant
	owner   map[int]string // lease ID -> owning tenant name
	batches map[coalKey]*batch
}

// New returns a Server over the System. The System should usually be
// built with WithBackgroundWarming so the daemon serves early traffic
// while universes warm.
func New(sys *mapa.System, opts Options) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.MaxTenants <= 0 {
		opts.MaxTenants = DefaultMaxTenants
	}
	s := &Server{
		sys:     sys,
		opts:    opts,
		admit:   make(chan struct{}, opts.QueueDepth),
		mux:     http.NewServeMux(),
		metrics: newMetrics(),
		tenants: make(map[string]*mapa.Tenant),
		owner:   make(map[int]string),
		batches: make(map[coalKey]*batch),
	}
	s.mux.HandleFunc("POST /v1/allocate", s.handleAllocate)
	s.mux.HandleFunc("POST /v1/release", s.handleRelease)
	s.mux.HandleFunc("POST /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// AllocateRequest is the /v1/allocate body.
type AllocateRequest struct {
	// Tenant names the requesting tenant's stream; empty uses the
	// System default stream.
	Tenant string `json:"tenant,omitempty"`
	// NumGPUs is the accelerator count (required, >= 1).
	NumGPUs int `json:"num_gpus"`
	// Shape names the communication pattern (mapa.Shapes); empty
	// defaults to Ring.
	Shape string `json:"shape,omitempty"`
	// Sensitive is the bandwidth-sensitivity annotation.
	Sensitive bool `json:"sensitive,omitempty"`
}

// AllocateResponse is the /v1/allocate success body.
type AllocateResponse struct {
	LeaseID     int     `json:"lease_id"`
	GPUs        []int   `json:"gpus"`
	EffBW       float64 `json:"eff_bw"`
	AggBW       float64 `json:"agg_bw"`
	PreservedBW float64 `json:"preserved_bw"`
}

// ReleaseRequest is the /v1/release body.
type ReleaseRequest struct {
	Tenant  string `json:"tenant,omitempty"`
	LeaseID int    `json:"lease_id"`
}

// HealthRequest is the /v1/health body: a topology event. Action is
// "mark" (GPUs become unallocatable), "restore" (they return to
// service), or "degrade" (link (U,V) is re-weighted to BW GB/s).
type HealthRequest struct {
	Action string  `json:"action"`
	GPUs   []int   `json:"gpus,omitempty"`
	U      int     `json:"u,omitempty"`
	V      int     `json:"v,omitempty"`
	BW     float64 `json:"bw,omitempty"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, route string, code int, body interface{}) {
	s.metrics.request(route, fmt.Sprintf("%d", code))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) writeError(w http.ResponseWriter, route string, code int, err error) {
	s.writeJSON(w, route, code, errorResponse{Error: err.Error()})
}

// tryAdmit claims an admission slot without blocking; callers that get
// false must answer 429. Pairs with done.
func (s *Server) tryAdmit() bool {
	select {
	case s.admit <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) done() { <-s.admit }

// tenant resolves a tenant name to its stream, creating it on first
// sight up to MaxTenants; past the cap (and for the empty name) the
// System's default stream serves — identical decisions, shared
// contention. The returned Tenant may be nil.
func (s *Server) tenant(name string) (*mapa.Tenant, error) {
	if name == "" {
		return nil, nil
	}
	s.mu.Lock()
	t, ok := s.tenants[name]
	overflow := !ok && len(s.tenants) >= s.opts.MaxTenants
	s.mu.Unlock()
	if ok || overflow {
		return t, nil
	}
	nt, err := s.sys.NewTenant()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		// Lost the registration race; keep the winner's stream.
		nt.Close()
		return t, nil
	}
	if len(s.tenants) >= s.opts.MaxTenants {
		nt.Close()
		return nil, nil
	}
	s.tenants[name] = nt
	return nt, nil
}

func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	const route = "allocate"
	var req AllocateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, route, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.NumGPUs < 1 {
		s.writeError(w, route, http.StatusBadRequest, fmt.Errorf("num_gpus must be >= 1, got %d", req.NumGPUs))
		return
	}
	if !s.tryAdmit() {
		s.metrics.reject()
		s.writeError(w, route, http.StatusTooManyRequests, errors.New("admission queue full"))
		return
	}
	defer s.done()
	t, err := s.tenant(req.Tenant)
	if err != nil {
		s.writeError(w, route, http.StatusInternalServerError, err)
		return
	}
	jr := mapa.JobRequest{NumGPUs: req.NumGPUs, Shape: req.Shape, Sensitive: req.Sensitive}
	start := time.Now()
	var lease *mapa.Lease
	if s.opts.CoalesceWindow > 0 {
		lease, err = s.allocateCoalesced(jr)
	} else if t != nil {
		lease, err = t.Allocate(jr)
	} else {
		lease, err = s.sys.Allocate(jr)
	}
	s.metrics.observeAllocate(time.Since(start))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, policy.ErrNoAllocation) {
			// The machine cannot place the request right now — the
			// client's cue to retry after a release, not a server fault.
			code = http.StatusConflict
		}
		s.writeError(w, route, code, err)
		return
	}
	s.mu.Lock()
	s.owner[lease.ID] = req.Tenant
	s.mu.Unlock()
	s.writeJSON(w, route, http.StatusOK, AllocateResponse{
		LeaseID:     lease.ID,
		GPUs:        lease.GPUs,
		EffBW:       lease.EffBW,
		AggBW:       lease.AggBW,
		PreservedBW: lease.PreservedBW,
	})
}

// coalKey identifies one coalescable request class.
type coalKey struct {
	shape     string
	n         int
	sensitive bool
}

// batch is one in-flight coalesced allocate: the leader gathers
// joiners for the coalesce window, runs one AllocateBatch, and each
// member reads its own slot after done closes.
type batch struct {
	members int
	done    chan struct{}
	leases  []*mapa.Lease
	errs    []error
}

// allocateCoalesced joins or leads the request class's batch. The
// leader holds the batch open for the coalesce window, then executes
// it as one System.AllocateBatch; joiners park on done and read their
// slot. Coalesced decisions run on the System's default stream —
// identical results to any tenant stream, since decisions are a pure
// function of machine state.
func (s *Server) allocateCoalesced(req mapa.JobRequest) (*mapa.Lease, error) {
	shape := req.Shape
	if shape == "" {
		shape = "Ring"
	}
	key := coalKey{shape: shape, n: req.NumGPUs, sensitive: req.Sensitive}
	s.mu.Lock()
	if b, ok := s.batches[key]; ok {
		idx := b.members
		b.members++
		s.mu.Unlock()
		<-b.done
		return b.leases[idx], b.errs[idx]
	}
	b := &batch{members: 1, done: make(chan struct{})}
	s.batches[key] = b
	s.mu.Unlock()
	time.Sleep(s.opts.CoalesceWindow)
	s.mu.Lock()
	delete(s.batches, key)
	n := b.members
	s.mu.Unlock()
	b.leases, b.errs = s.sys.AllocateBatch(req, n)
	close(b.done)
	if n > 1 {
		s.metrics.coalesce(n - 1)
	}
	return b.leases[0], b.errs[0]
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	const route = "release"
	var req ReleaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, route, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	s.mu.Lock()
	owner, known := s.owner[req.LeaseID]
	s.mu.Unlock()
	if !known {
		s.writeError(w, route, http.StatusNotFound, fmt.Errorf("lease %d unknown", req.LeaseID))
		return
	}
	if owner != req.Tenant {
		s.writeError(w, route, http.StatusForbidden,
			fmt.Errorf("lease %d belongs to another tenant", req.LeaseID))
		return
	}
	if err := s.sys.Release(&mapa.Lease{ID: req.LeaseID}); err != nil {
		s.writeError(w, route, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	delete(s.owner, req.LeaseID)
	s.mu.Unlock()
	s.writeJSON(w, route, http.StatusOK, struct{}{})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	const route = "health"
	var req HealthRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, route, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	var err error
	switch req.Action {
	case "mark":
		err = s.sys.MarkUnhealthy(req.GPUs...)
	case "restore":
		err = s.sys.Restore(req.GPUs...)
	case "degrade":
		err = s.sys.DegradeLink(req.U, req.V, req.BW)
	default:
		s.writeError(w, route, http.StatusBadRequest,
			fmt.Errorf("unknown action %q (want mark, restore, or degrade)", req.Action))
		return
	}
	if err != nil {
		s.writeError(w, route, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, route, http.StatusOK, struct{}{})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, "healthz", http.StatusOK, struct {
		Status   string `json:"status"`
		Topology string `json:"topology"`
		Policy   string `json:"policy"`
		Warm     bool   `json:"warm"`
	}{"ok", s.sys.Topology(), s.sys.Policy(), s.sys.Warmed()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("metrics", "200")
	s.mu.Lock()
	tenants := len(s.tenants)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w, s.sys, tenants, len(s.admit), cap(s.admit))
}
