package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"mapa"
)

// latencyBuckets are the allocate-latency histogram's upper bounds in
// seconds: decade steps with 2.5/5 subdivisions from 1 µs (a
// table-served decision) to 10 s (a cold universe build on a large
// machine), the classic Prometheus exponential ladder.
var latencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// histogram is a fixed-bucket Prometheus histogram: counts[i] is the
// number of observations <= buckets[i] (cumulated at render time, the
// exposition-format convention).
type histogram struct {
	buckets []float64
	counts  []uint64
	sum     float64
	count   uint64
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]uint64, len(buckets))}
}

func (h *histogram) observe(v float64) {
	h.sum += v
	h.count++
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
}

// reqKey labels one requests_total series.
type reqKey struct {
	route, code string
}

// metrics holds the daemon's own counters; the match-pipeline and
// machine-state gauges are read live from the System at scrape time.
type metrics struct {
	mu        sync.Mutex
	requests  map[reqKey]uint64
	latency   *histogram // allocate request latency, seconds
	rejected  uint64     // admission-queue overflows (429s)
	coalesced uint64     // requests served as batch joiners
	batches   uint64     // coalesced batches executed
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[reqKey]uint64),
		latency:  newHistogram(latencyBuckets),
	}
}

func (m *metrics) request(route, code string) {
	m.mu.Lock()
	m.requests[reqKey{route, code}]++
	m.mu.Unlock()
}

func (m *metrics) observeAllocate(d time.Duration) {
	m.mu.Lock()
	m.latency.observe(d.Seconds())
	m.mu.Unlock()
}

func (m *metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *metrics) coalesce(joiners int) {
	m.mu.Lock()
	m.batches++
	m.coalesced += uint64(joiners)
	m.mu.Unlock()
}

// render writes the Prometheus text exposition format: the daemon's
// request counters and allocate-latency histogram, the machine-state
// gauges, and the System's match-pipeline counters (modeled on the
// ROCm device plugin's monitoring metrics — health and utilization as
// first-class series).
func (m *metrics) render(w io.Writer, sys *mapa.System, tenants, queued, queueDepth int) {
	m.mu.Lock()
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintln(w, "# HELP mapad_requests_total HTTP requests served, by route and status code.")
	fmt.Fprintln(w, "# TYPE mapad_requests_total counter")
	for _, k := range keys {
		fmt.Fprintf(w, "mapad_requests_total{route=%q,code=%q} %d\n", k.route, k.code, m.requests[k])
	}
	fmt.Fprintln(w, "# HELP mapad_allocate_latency_seconds Wall time of allocate requests, admission to response.")
	fmt.Fprintln(w, "# TYPE mapad_allocate_latency_seconds histogram")
	cum := uint64(0)
	for i, ub := range m.latency.buckets {
		cum += m.latency.counts[i]
		fmt.Fprintf(w, "mapad_allocate_latency_seconds_bucket{le=%q} %d\n", formatFloat(ub), cum)
	}
	fmt.Fprintf(w, "mapad_allocate_latency_seconds_bucket{le=\"+Inf\"} %d\n", m.latency.count)
	fmt.Fprintf(w, "mapad_allocate_latency_seconds_sum %g\n", m.latency.sum)
	fmt.Fprintf(w, "mapad_allocate_latency_seconds_count %d\n", m.latency.count)
	fmt.Fprintln(w, "# HELP mapad_admission_rejected_total Requests rejected with 429 because the admission queue was full.")
	fmt.Fprintln(w, "# TYPE mapad_admission_rejected_total counter")
	fmt.Fprintf(w, "mapad_admission_rejected_total %d\n", m.rejected)
	fmt.Fprintln(w, "# HELP mapad_coalesced_requests_total Allocate requests served by joining another request's batch.")
	fmt.Fprintln(w, "# TYPE mapad_coalesced_requests_total counter")
	fmt.Fprintf(w, "mapad_coalesced_requests_total %d\n", m.coalesced)
	fmt.Fprintln(w, "# HELP mapad_coalesced_batches_total Coalesced allocate batches executed.")
	fmt.Fprintln(w, "# TYPE mapad_coalesced_batches_total counter")
	fmt.Fprintf(w, "mapad_coalesced_batches_total %d\n", m.batches)
	m.mu.Unlock()

	free := len(sys.FreeGPUs())
	unhealthy := len(sys.UnhealthyGPUs())
	cs := sys.CacheStats()
	gauge := func(name, help string, v interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	gauge("mapad_gpus_total", "GPUs in the serving topology.", sys.NumGPUs())
	gauge("mapad_gpus_free", "GPUs currently free.", free)
	gauge("mapad_gpus_unhealthy", "GPUs currently marked unhealthy (visible, unallocatable).", unhealthy)
	gauge("mapad_leases_active", "Live leases.", sys.ActiveLeases())
	gauge("mapad_tenants", "Registered tenant streams.", tenants)
	gauge("mapad_admission_queued", "Requests currently admitted (in flight or queued on the decision lock).", queued)
	gauge("mapad_admission_depth", "Admission queue capacity.", queueDepth)
	warm := 0
	if sys.Warmed() {
		warm = 1
	}
	gauge("mapad_warm", "Whether the construction-time warm set is fully resident (1) or still building (0).", warm)
	counter("mapad_decisions_table_served_total", "Decisions answered by the table-served selection path (precomputed scores + O(k) arithmetic).", cs.TableServed)
	counter("mapad_decisions_view_served_total", "Miss decisions answered from delta-maintained live views.", cs.ViewServed)
	counter("mapad_decisions_filter_served_total", "Miss decisions answered by mask-filtering an idle-state universe.", cs.FilterServed)
	gauge("mapad_universes_resident", "Idle-state match universes resident in the shared store.", cs.Universes)
	gauge("mapad_score_tables_resident", "Precomputed score tables resident in the shared store.", cs.ScoreTables)
	fmt.Fprintf(w, "# HELP mapad_universe_build_seconds_total Summed wall time of idle-state universe enumerations.\n")
	fmt.Fprintf(w, "# TYPE mapad_universe_build_seconds_total counter\n")
	fmt.Fprintf(w, "mapad_universe_build_seconds_total %g\n", cs.UniverseBuildTime.Seconds())
	counter("mapad_topology_repairs_total", "Link-degradation events absorbed by incremental score-table repair.", cs.Repairs)

	// Durability series: present only when the daemon runs journaled.
	if js, ok := sys.JournalStats(); ok {
		counter("mapad_journal_records_total", "Mutation records appended to the write-ahead journal since the last snapshot truncation epoch began, plus replayed history.", js.Records)
		counter("mapad_journal_bytes_total", "Bytes appended to the write-ahead journal.", js.Bytes)
		counter("mapad_journal_fsyncs_total", "fsync calls issued against the journal.", js.Fsyncs)
		gauge("mapad_journal_last_seq", "Sequence number of the most recent journal record.", js.LastSeq)
		gauge("mapad_journal_records_since_snapshot", "Journal records accumulated since the last snapshot (replay debt).", js.RecordsSinceSnapshot)
		gauge("mapad_journal_snapshot_bytes", "Size of the last state snapshot in bytes (0 if none).", js.SnapshotBytes)
		age := float64(-1)
		if js.SnapshotUnixNano > 0 {
			age = time.Since(time.Unix(0, js.SnapshotUnixNano)).Seconds()
		}
		gauge("mapad_journal_snapshot_age_seconds", "Seconds since the last snapshot was written (-1 if none).", age)
		rs := sys.Recovery()
		gauge("mapad_leases_recovered", "Leases reconstructed from snapshot + journal at daemon startup.", rs.Leases)
		gauge("mapad_recovery_replay_seconds", "Wall time of the startup journal replay.", rs.ReplayTime.Seconds())
		counter("mapad_recovery_records_replayed_total", "Journal records replayed at daemon startup.", rs.Records)
		counter("mapad_leases_reaped_total", "Leases expired by the TTL reaper (journaled as releases).", sys.Reaped())
	}
}

// formatFloat renders a bucket bound the way Prometheus clients do —
// no exponent for the common range, no trailing zeros.
func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
