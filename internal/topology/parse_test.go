package topology

import (
	"strings"
	"testing"
)

func TestParseMatrixRoundTrip(t *testing.T) {
	// Render every built-in topology and parse it back; link structure
	// must survive (except NumGPUs=6 Summit sockets, which default to
	// halves — same as Summit's real layout).
	for _, name := range Names() {
		orig, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseMatrix(strings.NewReader(orig.Matrix()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if parsed.NumGPUs() != orig.NumGPUs() {
			t.Fatalf("%s: %d GPUs, want %d", name, parsed.NumGPUs(), orig.NumGPUs())
		}
		for _, u := range orig.GPUs() {
			for _, v := range orig.GPUs() {
				if u == v {
					continue
				}
				if parsed.Link(u, v) != orig.Link(u, v) {
					t.Fatalf("%s: link(%d,%d) = %s, want %s", name, u, v, parsed.Link(u, v), orig.Link(u, v))
				}
			}
		}
		if err := parsed.Validate(); err != nil {
			t.Fatalf("%s: parsed topology invalid: %v", name, err)
		}
	}
}

func TestParseMatrixSkipsCommentsAndBlanks(t *testing.T) {
	in := `# nvidia-smi topo -m
      GPU0  GPU1

GPU0  X     NV2x
GPU1  NV2x  X
`
	top, err := ParseMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if top.NumGPUs() != 2 || top.Link(0, 1) != LinkNVLink2x2 {
		t.Fatalf("parsed: %d GPUs, link %s", top.NumGPUs(), top.Link(0, 1))
	}
}

func TestParseMatrixErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad header", "FOO0 FOO1\nGPU0 X SYS\nGPU1 SYS X"},
		{"row count", "GPU0 GPU1\nGPU0 X SYS"},
		{"cell count", "GPU0 GPU1\nGPU0 X\nGPU1 SYS X"},
		{"bad row name", "GPU0 GPU1\nCPU0 X SYS\nGPU1 SYS X"},
		{"row order", "GPU0 GPU1\nGPU1 X SYS\nGPU0 SYS X"},
		{"diagonal", "GPU0 GPU1\nGPU0 SYS SYS\nGPU1 SYS X"},
		{"asymmetric", "GPU0 GPU1\nGPU0 X NV2x\nGPU1 SYS X"},
		{"unknown link", "GPU0 GPU1\nGPU0 X WARP\nGPU1 WARP X"},
	}
	for _, tc := range cases {
		if _, err := ParseMatrix(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

func TestParseGPUName(t *testing.T) {
	if id, err := parseGPUName("GPU12"); err != nil || id != 12 {
		t.Fatalf("parseGPUName(GPU12) = %d, %v", id, err)
	}
	for _, bad := range []string{"gpu0", "GPU-1", "GPUx", "12"} {
		if _, err := parseGPUName(bad); err == nil {
			t.Errorf("%q should not parse", bad)
		}
	}
}
