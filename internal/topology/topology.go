package topology

import (
	"fmt"
	"sort"
	"strings"

	"mapa/internal/graph"
)

// Topology is a multi-accelerator server model. Graph is the fully
// connected hardware graph the pattern matcher mines (PCIe fallback
// edges included); Physical holds only the direct point-to-point links
// (no PCIe fallback), which is what NCCL-style ring construction uses;
// Sockets groups GPU IDs by CPU socket / PCIe tree, which the
// Topo-aware baseline policy partitions on.
type Topology struct {
	Name     string
	Graph    *graph.Graph
	Physical *graph.Graph
	Sockets  [][]int
}

// NumGPUs returns the accelerator count.
func (t *Topology) NumGPUs() int { return t.Graph.NumVertices() }

// GPUs returns all GPU IDs in ascending order.
func (t *Topology) GPUs() []int { return t.Graph.Vertices() }

// Link returns the best link type between two GPUs.
func (t *Topology) Link(u, v int) LinkType {
	e, ok := t.Graph.EdgeBetween(u, v)
	if !ok {
		panic(fmt.Sprintf("topology %s: no edge between %d and %d (graph must be complete)", t.Name, u, v))
	}
	return LinkType(e.Label)
}

// SocketOf returns the socket index of GPU v, or -1 if unknown.
func (t *Topology) SocketOf(v int) int {
	for i, s := range t.Sockets {
		for _, g := range s {
			if g == v {
				return i
			}
		}
	}
	return -1
}

// Validate checks the structural invariants every Topology must satisfy:
// a complete hardware graph, physical links being a subgraph of the
// hardware graph with matching labels on non-PCIe pairs, and sockets
// partitioning the GPU set.
func (t *Topology) Validate() error {
	n := t.Graph.NumVertices()
	if n == 0 {
		return fmt.Errorf("topology %s: empty", t.Name)
	}
	if want := n * (n - 1) / 2; t.Graph.NumEdges() != want {
		return fmt.Errorf("topology %s: hardware graph not complete: %d edges, want %d", t.Name, t.Graph.NumEdges(), want)
	}
	for _, e := range t.Graph.Edges() {
		if LinkType(e.Label).Bandwidth() != e.Weight {
			return fmt.Errorf("topology %s: edge (%d,%d) weight %g mismatches label %s", t.Name, e.U, e.V, e.Weight, LinkType(e.Label))
		}
	}
	for _, e := range t.Physical.Edges() {
		ge, ok := t.Graph.EdgeBetween(e.U, e.V)
		if !ok {
			return fmt.Errorf("topology %s: physical edge (%d,%d) missing from hardware graph", t.Name, e.U, e.V)
		}
		if ge.Label != e.Label {
			return fmt.Errorf("topology %s: physical edge (%d,%d) label %s differs from hardware graph %s",
				t.Name, e.U, e.V, LinkType(e.Label), LinkType(ge.Label))
		}
	}
	seen := make(map[int]bool)
	for _, s := range t.Sockets {
		for _, g := range s {
			if !t.Graph.HasVertex(g) {
				return fmt.Errorf("topology %s: socket GPU %d not in graph", t.Name, g)
			}
			if seen[g] {
				return fmt.Errorf("topology %s: GPU %d in multiple sockets", t.Name, g)
			}
			seen[g] = true
		}
	}
	if len(seen) != 0 && len(seen) != n {
		return fmt.Errorf("topology %s: sockets cover %d of %d GPUs", t.Name, len(seen), n)
	}
	return nil
}

// LinkMix counts the links of each type among the given edge set.
// Index the result by LinkType.
func LinkMix(edges []graph.Edge) [5]int {
	var mix [5]int
	for _, e := range edges {
		mix[e.Label]++
	}
	return mix
}

// builder assembles a Topology from a physical link list, then
// completes the hardware graph with PCIe fallback edges.
type builder struct {
	name     string
	n        int
	physical *graph.Graph
	sockets  [][]int
}

func newBuilder(name string, n int) *builder {
	b := &builder{name: name, n: n, physical: graph.New()}
	for v := 0; v < n; v++ {
		b.physical.AddVertex(v)
	}
	return b
}

// link adds a physical point-to-point link of the given type.
func (b *builder) link(u, v int, l LinkType) {
	b.physical.MustAddEdge(u, v, l.Bandwidth(), int(l))
}

func (b *builder) build() *Topology {
	g := b.physical.Clone()
	for u := 0; u < b.n; u++ {
		for v := u + 1; v < b.n; v++ {
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, LinkPCIe.Bandwidth(), int(LinkPCIe))
			}
		}
	}
	t := &Topology{Name: b.name, Graph: g, Physical: b.physical, Sockets: b.sockets}
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return t
}

// DGXV100 returns the NVIDIA DGX-1 with Volta GPUs (Fig. 1c): eight
// GPUs in a hybrid cube mesh with a mix of single and double NVLink-v2
// bricks. The link matrix reproduces the published nvidia-smi topology,
// which is consistent with every worked example in the paper: GPUs
// (1,5) 1-indexed share a double link, (1,2) a single link, (1,6) only
// PCIe; allocation {1,2,5} aggregates 87 GB/s and the ideal {1,3,4}
// aggregates 125 GB/s.
func DGXV100() *Topology {
	b := newBuilder("DGX-1-V100", 8)
	b.sockets = [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	// The canonical DGX-1V NVLink matrix:
	//      0    1    2    3    4    5    6    7
	// 0    X   NV1  NV1  NV2  NV2  SYS  SYS  SYS
	// 1   NV1   X   NV2  NV1  SYS  NV2  SYS  SYS
	// 2   NV1  NV2   X   NV2  SYS  SYS  NV1  SYS
	// 3   NV2  NV1  NV2   X   SYS  SYS  SYS  NV1
	// 4   NV2  SYS  SYS  SYS   X   NV1  NV1  NV2
	// 5   SYS  NV2  SYS  SYS  NV1   X   NV2  NV1
	// 6   SYS  SYS  NV1  SYS  NV1  NV2   X   NV2
	// 7   SYS  SYS  SYS  NV1  NV2  NV1  NV2   X
	single := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 6}, {3, 7}, {4, 5}, {4, 6}, {5, 7}}
	double := [][2]int{{0, 3}, {0, 4}, {1, 2}, {1, 5}, {2, 3}, {4, 7}, {5, 6}, {6, 7}}
	for _, p := range single {
		b.link(p[0], p[1], LinkNVLink2)
	}
	for _, p := range double {
		b.link(p[0], p[1], LinkNVLink2x2)
	}
	return b.build()
}

// DGXP100 returns the NVIDIA DGX-1 with Pascal GPUs (Fig. 1b): the same
// hybrid cube mesh but with four single NVLink-v1 bricks per GPU and no
// doubled links. Each quad {0..3} and {4..7} is fully connected and
// GPU i pairs with GPU i+4 across the quads.
func DGXP100() *Topology {
	b := newBuilder("DGX-1-P100", 8)
	b.sockets = [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	for _, q := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		for i := 0; i < len(q); i++ {
			for j := i + 1; j < len(q); j++ {
				b.link(q[i], q[j], LinkNVLink1)
			}
		}
	}
	for i := 0; i < 4; i++ {
		b.link(i, i+4, LinkNVLink1)
	}
	return b.build()
}

// Summit returns one node of ORNL Summit (Fig. 1a): six V100 GPUs split
// across two POWER9 sockets of three GPUs each. Within a socket the
// three GPUs are fully connected with double NVLink-v2 bricks; the
// sockets communicate over the X-bus, modeled as the PCIe-class
// fallback link.
func Summit() *Topology {
	b := newBuilder("Summit", 6)
	b.sockets = [][]int{{0, 1, 2}, {3, 4, 5}}
	for _, s := range b.sockets {
		for i := 0; i < len(s); i++ {
			for j := i + 1; j < len(s); j++ {
				b.link(s[i], s[j], LinkNVLink2x2)
			}
		}
	}
	return b.build()
}

// DGX2 returns an NVSwitch-connected 16-GPU system (DGX-2 class). All
// pairs communicate at NVSwitch bandwidth; the paper notes such systems
// still exhibit NUMA effects but evaluates only point-to-point
// topologies, so this is provided as an extension.
func DGX2() *Topology {
	b := newBuilder("DGX-2", 16)
	b.sockets = [][]int{{0, 1, 2, 3, 4, 5, 6, 7}, {8, 9, 10, 11, 12, 13, 14, 15}}
	for u := 0; u < 16; u++ {
		for v := u + 1; v < 16; v++ {
			b.link(u, v, LinkNVSwitch)
		}
	}
	return b.build()
}

// DGXA100 returns an NVIDIA DGX A100: eight GPUs joined through six
// NVSwitches, so every pair communicates at full NVSwitch bandwidth.
// Like the DGX-2 it is an all-to-all switch fabric rather than a
// point-to-point mesh — the post-paper generation of machines — and is
// used here as a golden-count reference topology whose embedding
// counts have closed forms.
func DGXA100() *Topology {
	b := newBuilder("DGX-A100", 8)
	b.sockets = [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			b.link(u, v, LinkNVSwitch)
		}
	}
	return b.build()
}

// Torus2D returns the paper's 16-GPU Torus-2d exploration topology
// (Fig. 17a): a 4x4 grid with wraparound links. Following the figure's
// mix of link classes, horizontal (row) links are double NVLink-v2 and
// vertical (column) links are single NVLink-v2; everything else falls
// back to PCIe. GPU (r,c) has ID 4r+c; sockets are the left and right
// board halves.
func Torus2D() *Topology {
	b := newBuilder("Torus-2d", 16)
	b.sockets = [][]int{{0, 1, 4, 5, 8, 9, 12, 13}, {2, 3, 6, 7, 10, 11, 14, 15}}
	id := func(r, c int) int { return 4*((r+4)%4) + (c+4)%4 }
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			b.link(id(r, c), id(r, c+1), LinkNVLink2x2) // horizontal ring
			b.link(id(r, c), id(r+1, c), LinkNVLink2)   // vertical ring
		}
	}
	return b.build()
}

// CubeMesh16 returns the paper's 16-GPU Cube-mesh exploration topology
// (Fig. 17b): two DGX-1-V100 hybrid cube meshes stacked and joined by a
// single NVLink-v2 brick between corresponding GPUs (i and i+8). This
// extends NVIDIA's published 8-GPU cube mesh to sixteen GPUs and is
// deliberately less uniform than the torus, which is the property the
// paper's exploration stresses.
func CubeMesh16() *Topology {
	b := newBuilder("CubeMesh-16", 16)
	b.sockets = [][]int{{0, 1, 2, 3, 8, 9, 10, 11}, {4, 5, 6, 7, 12, 13, 14, 15}}
	base := DGXV100()
	for _, e := range base.Physical.Edges() {
		b.link(e.U, e.V, LinkType(e.Label))
		b.link(e.U+8, e.V+8, LinkType(e.Label))
	}
	for i := 0; i < 8; i++ {
		b.link(i, i+8, LinkNVLink2)
	}
	return b.build()
}

// ClusterA100 returns a synthetic multi-node machine: `nodes` DGX-A100
// servers of eight GPUs each, every intra-node pair at NVSwitch
// bandwidth. The builder adds only those intra-node NVSwitch links;
// every inter-node pair gets its PCIe-class host/network fallback edge
// from build()'s complete-by-construction fill (the matcher's hardware
// graph is complete, Sec. 3.2), so inter-node links appear in Graph but
// never in Physical — the invariant the golden cluster test pins. GPU
// IDs are node-major — node i owns 8i..8i+7 — and each node is one
// socket, so the Topo-aware baseline packs jobs per node. With nine or
// more nodes the machine crosses 64 GPUs, which exercises the
// multi-word graph.Bitset paths end to end: availability masks,
// universe filtering, and cache keys all span multiple uint64 words.
// ClusterA100 is structurally the Flatten of NewFleet(DGXA100(), nodes)
// (pinned by test); the Fleet form is what the template match pipeline
// consumes at scale.
func ClusterA100(nodes int) *Topology {
	if nodes < 2 {
		panic("topology: cluster needs at least 2 nodes")
	}
	const perNode = 8
	n := nodes * perNode
	b := newBuilder(fmt.Sprintf("Cluster-A100-%d", nodes), n)
	b.sockets = make([][]int, nodes)
	for node := 0; node < nodes; node++ {
		base := node * perNode
		b.sockets[node] = intRange(base, base+perNode)
		for u := base; u < base+perNode; u++ {
			for v := u + 1; v < base+perNode; v++ {
				b.link(u, v, LinkNVSwitch)
			}
		}
	}
	return b.build()
}

// Ring returns a generic n-GPU ring with the given link type on ring
// edges, useful for synthetic experiments. Sockets split the ring in
// half.
func Ring(n int, l LinkType) *Topology {
	if n < 3 {
		panic("topology: ring needs at least 3 GPUs")
	}
	b := newBuilder(fmt.Sprintf("Ring-%d", n), n)
	half := make([]int, 0, n/2)
	rest := make([]int, 0, n-n/2)
	for v := 0; v < n; v++ {
		b.link(v, (v+1)%n, l)
		if v < n/2 {
			half = append(half, v)
		} else {
			rest = append(rest, v)
		}
	}
	b.sockets = [][]int{half, rest}
	return b.build()
}

// FullyConnected returns n GPUs all directly joined by the given link
// type.
func FullyConnected(n int, l LinkType) *Topology {
	if n < 2 {
		panic("topology: fully connected needs at least 2 GPUs")
	}
	b := newBuilder(fmt.Sprintf("Full-%d", n), n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.link(u, v, l)
		}
	}
	b.sockets = [][]int{b.physical.Vertices()}
	return b.build()
}

// Hypercube returns a 2^dim-GPU hypercube with the given link type on
// cube edges.
func Hypercube(dim int, l LinkType) *Topology {
	if dim < 1 || dim > 6 {
		panic("topology: hypercube dimension must be in [1,6]")
	}
	n := 1 << dim
	b := newBuilder(fmt.Sprintf("Hypercube-%d", dim), n)
	for v := 0; v < n; v++ {
		for d := 0; d < dim; d++ {
			u := v ^ (1 << d)
			if v < u {
				b.link(v, u, l)
			}
		}
	}
	b.sockets = [][]int{intRange(0, n/2), intRange(n/2, n)}
	return b.build()
}

func intRange(lo, hi int) []int {
	r := make([]int, 0, hi-lo)
	for v := lo; v < hi; v++ {
		r = append(r, v)
	}
	return r
}

// ByName returns the named paper topology. Recognized names:
// dgx-v100, dgx-p100, summit, dgx-2, dgx-a100, torus-2d, cubemesh-16.
func ByName(name string) (*Topology, error) {
	switch strings.ToLower(name) {
	case "dgx-v100", "dgxv100", "dgx-1-v100", "dgxv":
		return DGXV100(), nil
	case "dgx-p100", "dgxp100", "dgx-1-p100":
		return DGXP100(), nil
	case "summit":
		return Summit(), nil
	case "dgx-2", "dgx2":
		return DGX2(), nil
	case "dgx-a100", "dgxa100":
		return DGXA100(), nil
	case "torus-2d", "torus2d", "torus":
		return Torus2D(), nil
	case "cubemesh-16", "cubemesh16", "cube-mesh", "cubemesh":
		return CubeMesh16(), nil
	case "cluster-a100", "cluster":
		return ClusterA100(9), nil
	}
	return nil, fmt.Errorf("topology: unknown topology %q", name)
}

// Names lists the single-server topologies accepted by ByName, in
// canonical spelling. ByName additionally accepts "cluster-a100", the
// synthetic 9-node (72-GPU) multi-node machine, which is kept out of
// this list because the exhaustive cross-product studies (ideal-
// aggregate enumeration, Eq. 2 training-set collection) are
// combinatorial in machine size.
func Names() []string {
	return []string{"dgx-v100", "dgx-p100", "summit", "dgx-2", "dgx-a100", "torus-2d", "cubemesh-16"}
}

// Matrix renders the nvidia-smi-style link matrix of the topology.
func (t *Topology) Matrix() string {
	var b strings.Builder
	gpus := t.GPUs()
	fmt.Fprintf(&b, "%-6s", "")
	for _, v := range gpus {
		fmt.Fprintf(&b, "%-6s", fmt.Sprintf("GPU%d", v))
	}
	b.WriteString("\n")
	for _, u := range gpus {
		fmt.Fprintf(&b, "%-6s", fmt.Sprintf("GPU%d", u))
		for _, v := range gpus {
			if u == v {
				fmt.Fprintf(&b, "%-6s", "X")
				continue
			}
			fmt.Fprintf(&b, "%-6s", t.Link(u, v).String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PhysicalLinkCounts returns, per link type, how many direct physical
// links the topology has. Useful for validation and documentation.
func (t *Topology) PhysicalLinkCounts() map[LinkType]int {
	counts := make(map[LinkType]int)
	for _, e := range t.Physical.Edges() {
		counts[LinkType(e.Label)]++
	}
	return counts
}

// IdealAggregate returns the maximum aggregated bandwidth achievable by
// any k-GPU induced allocation on the full (idle) topology, considering
// all pairwise links among the chosen GPUs. This is BW_IdealAllocation
// in the paper's fragmentation study (Fig. 4). It enumerates all
// C(n, k) subsets, which is fine for the server sizes MAPA targets.
func (t *Topology) IdealAggregate(k int) float64 {
	gpus := t.GPUs()
	if k < 1 || k > len(gpus) {
		return 0
	}
	best := 0.0
	subset := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			w := t.Graph.InducedSubgraph(subset).TotalWeight()
			if w > best {
				best = w
			}
			return
		}
		for i := start; i <= len(gpus)-(k-depth); i++ {
			subset[depth] = gpus[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return best
}

// SortedSockets returns socket groups with ascending GPU IDs inside
// each group and groups ordered by their smallest member.
func (t *Topology) SortedSockets() [][]int {
	out := make([][]int, len(t.Sockets))
	for i, s := range t.Sockets {
		cp := append([]int(nil), s...)
		sort.Ints(cp)
		out[i] = cp
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) == 0 || len(out[j]) == 0 {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}
