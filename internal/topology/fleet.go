package topology

import "fmt"

// Fleet is a multi-node machine described symbolically: every node is
// an instance of a node-class Topology (today one class per fleet),
// and a node's GPUs are the class's GPU IDs shifted by the node's
// vertex offset. Nothing per-node is materialized — a 1,000-node fleet
// costs the same memory as a 2-node fleet plus one offset table — which
// is what lets the match pipeline build universes and score tables per
// (node class, shape) instead of per (node, shape).
//
// GPU IDs are node-major and offsets ascend with node index: node i
// owns [Offset(i), Offset(i)+class.NumGPUs()). That ordering is load-
// bearing for determinism — any GPU set inside node i is
// lexicographically smaller than any GPU set inside node j > i, so
// "lowest node index wins ties" at the inter-node level reproduces the
// flat path's lexicographic GPU-set tie-break exactly (see the fleet
// parity suites).
//
// Inter-node links are the PCIe-class host/network fallback edge, the
// same complete-by-construction fill every flat Topology gets from
// build(): Flatten materializes exactly that machine, and ClusterA100
// is the Flatten of a DGX-A100 fleet by construction.
type Fleet struct {
	// Name identifies the fleet in reports.
	Name string
	// Classes holds the distinct node-class topologies. Every class
	// topology has contiguous GPU IDs 0..n-1 (enforced by NewFleet).
	Classes []*Topology
	// NodeClass[i] indexes Classes for node i.
	NodeClass []int
	// Offsets[i] is node i's vertex offset: the fleet GPU ID of the
	// class's GPU 0. Strictly ascending.
	Offsets []int

	total int
}

// NewFleet returns a fleet of `nodes` identical instances of the node
// template — the symbolic generalization of ClusterA100. The template
// must have contiguous GPU IDs starting at 0 (every built-in server
// topology does) so that offset translation is pure integer addition.
func NewFleet(nodeTemplate *Topology, nodes int) *Fleet {
	if nodes < 2 {
		panic("topology: fleet needs at least 2 nodes")
	}
	per := nodeTemplate.NumGPUs()
	for i, g := range nodeTemplate.GPUs() {
		if g != i {
			panic(fmt.Sprintf("topology: fleet node template %s has non-contiguous GPU IDs", nodeTemplate.Name))
		}
	}
	f := &Fleet{
		Name:      fmt.Sprintf("Fleet-%s-%d", nodeTemplate.Name, nodes),
		Classes:   []*Topology{nodeTemplate},
		NodeClass: make([]int, nodes),
		Offsets:   make([]int, nodes),
		total:     nodes * per,
	}
	for i := 0; i < nodes; i++ {
		f.Offsets[i] = i * per
	}
	return f
}

// NumNodes returns the node count.
func (f *Fleet) NumNodes() int { return len(f.Offsets) }

// NumGPUs returns the total accelerator count across all nodes.
func (f *Fleet) NumGPUs() int { return f.total }

// Class returns node i's class topology.
func (f *Fleet) Class(i int) *Topology { return f.Classes[f.NodeClass[i]] }

// Offset returns node i's vertex offset.
func (f *Fleet) Offset(i int) int { return f.Offsets[i] }

// NodeOf returns the node index owning fleet GPU g, or -1 when g is
// out of range. Offsets ascend, so this is a linear scan kept simple —
// it sits on no hot path (hot paths work in per-node local IDs).
func (f *Fleet) NodeOf(g int) int {
	if g < 0 || g >= f.total {
		return -1
	}
	for i := len(f.Offsets) - 1; i >= 0; i-- {
		if g >= f.Offsets[i] {
			return i
		}
	}
	return -1
}

// MaxNodeGPUs returns the largest node-class size — the largest
// pattern the hierarchical (single-node) decision path can place.
func (f *Fleet) MaxNodeGPUs() int {
	max := 0
	for _, c := range f.Classes {
		if n := c.NumGPUs(); n > max {
			max = n
		}
	}
	return max
}

// Flatten materializes the fleet as a flat Topology: each node's
// physical links shifted by its offset, one socket per node, and the
// inter-node PCIe fallback supplied — like every built-in topology —
// by build()'s complete-by-construction fill. Flatten of a DGX-A100
// fleet is structurally identical to ClusterA100 (pinned by test).
//
// This is the parity/fallback path for small fleets; it is O(total²)
// in edges and deliberately not used by the template pipeline.
func (f *Fleet) Flatten() *Topology {
	b := newBuilder(f.Name, f.total)
	b.sockets = make([][]int, f.NumNodes())
	for i := range f.Offsets {
		c := f.Class(i)
		off := f.Offsets[i]
		b.sockets[i] = intRange(off, off+c.NumGPUs())
		for _, e := range c.Physical.Edges() {
			b.link(e.U+off, e.V+off, LinkType(e.Label))
		}
	}
	return b.build()
}
