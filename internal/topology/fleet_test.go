package topology

import "testing"

func TestFleetBasics(t *testing.T) {
	f := NewFleet(DGXA100(), 9)
	if got := f.NumNodes(); got != 9 {
		t.Fatalf("NumNodes = %d, want 9", got)
	}
	if got := f.NumGPUs(); got != 72 {
		t.Fatalf("NumGPUs = %d, want 72", got)
	}
	if got := f.MaxNodeGPUs(); got != 8 {
		t.Fatalf("MaxNodeGPUs = %d, want 8", got)
	}
	for i := 0; i < 9; i++ {
		if off := f.Offset(i); off != 8*i {
			t.Fatalf("Offset(%d) = %d, want %d", i, off, 8*i)
		}
		if c := f.Class(i); c.Name != "DGX-A100" {
			t.Fatalf("Class(%d) = %s, want DGX-A100", i, c.Name)
		}
	}
	for _, tc := range []struct{ gpu, node int }{
		{0, 0}, {7, 0}, {8, 1}, {17, 2}, {71, 8}, {-1, -1}, {72, -1},
	} {
		if got := f.NodeOf(tc.gpu); got != tc.node {
			t.Fatalf("NodeOf(%d) = %d, want %d", tc.gpu, got, tc.node)
		}
	}
}

// TestFleetFlattenMatchesClusterA100 pins that the symbolic fleet
// describes exactly the machine ClusterA100 materializes: same
// complete hardware graph (structural fingerprint covers vertices,
// edges, weights, and labels), same physical graph, same sockets. This
// is the ground the template-vs-flat parity suites stand on.
func TestFleetFlattenMatchesClusterA100(t *testing.T) {
	for _, nodes := range []int{2, 9} {
		flat := NewFleet(DGXA100(), nodes).Flatten()
		ref := ClusterA100(nodes)
		if err := flat.Validate(); err != nil {
			t.Fatal(err)
		}
		if got, want := flat.Graph.Fingerprint(), ref.Graph.Fingerprint(); got != want {
			t.Fatalf("nodes=%d: Flatten hardware graph differs from ClusterA100", nodes)
		}
		if got, want := flat.Physical.Fingerprint(), ref.Physical.Fingerprint(); got != want {
			t.Fatalf("nodes=%d: Flatten physical graph differs from ClusterA100", nodes)
		}
		if len(flat.Sockets) != len(ref.Sockets) {
			t.Fatalf("nodes=%d: sockets = %d, want %d", nodes, len(flat.Sockets), len(ref.Sockets))
		}
		for i := range flat.Sockets {
			if len(flat.Sockets[i]) != len(ref.Sockets[i]) {
				t.Fatalf("nodes=%d: socket %d size mismatch", nodes, i)
			}
			for j := range flat.Sockets[i] {
				if flat.Sockets[i][j] != ref.Sockets[i][j] {
					t.Fatalf("nodes=%d: socket %d member %d mismatch", nodes, i, j)
				}
			}
		}
	}
}

func TestFleetHeterogeneousTemplate(t *testing.T) {
	// A fleet of a non-switch template still flattens to a valid
	// complete machine with the template's physical links per node.
	f := NewFleet(DGXV100(), 3)
	flat := f.Flatten()
	if err := flat.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := flat.NumGPUs(); got != 24 {
		t.Fatalf("NumGPUs = %d, want 24", got)
	}
	// Node 1's copy of the template link (0,3) NV1x2.
	if l := flat.Link(8, 11); l != LinkNVLink2x2 {
		t.Fatalf("offset template link = %s, want %s", l, LinkNVLink2x2)
	}
	if l := flat.Link(3, 8); l != LinkPCIe {
		t.Fatalf("inter-node link = %s, want %s", l, LinkPCIe)
	}
}

func TestFleetTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFleet(_, 1) should panic")
		}
	}()
	NewFleet(DGXA100(), 1)
}
