package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseMatrix parses an nvidia-smi-style link matrix — the format
// Matrix renders and the format `nvidia-smi topo -m` reports — into a
// Topology. The first line is a header of GPU names; each following
// line is "GPU<i>" followed by one cell per GPU: "X" on the diagonal
// and a link abbreviation elsewhere (SYS, NV1, NV1x, NV2x, NVS, MIG).
// The matrix must be symmetric. Sockets default to the low/high halves
// of the ID space, matching the dual-root-complex layout of the
// machines the paper studies; callers may override Sockets afterwards.
func ParseMatrix(r io.Reader) (*Topology, error) {
	sc := bufio.NewScanner(r)
	var header []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		header = strings.Fields(line)
		break
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: reading matrix: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("topology: empty matrix")
	}
	ids := make([]int, len(header))
	for i, name := range header {
		id, err := parseGPUName(name)
		if err != nil {
			return nil, fmt.Errorf("topology: header column %d: %w", i, err)
		}
		ids[i] = id
	}

	n := len(ids)
	links := make([][]string, 0, n)
	rowIDs := make([]int, 0, n)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != n+1 {
			return nil, fmt.Errorf("topology: row %d has %d cells, want %d", len(links)+1, len(fields)-1, n)
		}
		id, err := parseGPUName(fields[0])
		if err != nil {
			return nil, fmt.Errorf("topology: row %d: %w", len(links)+1, err)
		}
		rowIDs = append(rowIDs, id)
		links = append(links, fields[1:])
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: reading matrix: %w", err)
	}
	if len(links) != n {
		return nil, fmt.Errorf("topology: %d rows for %d columns", len(links), n)
	}
	for i, id := range rowIDs {
		if id != ids[i] {
			return nil, fmt.Errorf("topology: row %d is GPU%d but column %d is GPU%d", i, id, i, ids[i])
		}
	}

	b := newBuilder("parsed", n)
	// Map external IDs to dense 0..n-1 in header order.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cell := links[i][j]
			if i == j {
				if cell != "X" {
					return nil, fmt.Errorf("topology: diagonal (%d,%d) is %q, want X", i, j, cell)
				}
				continue
			}
			if cell != links[j][i] {
				return nil, fmt.Errorf("topology: asymmetric matrix at (%d,%d): %q vs %q", i, j, cell, links[j][i])
			}
			if j < i {
				continue
			}
			lt, err := ParseLinkType(cell)
			if err != nil {
				return nil, fmt.Errorf("topology: cell (%d,%d): %w", i, j, err)
			}
			if lt != LinkPCIe { // the builder adds PCIe fallback itself
				b.link(i, j, lt)
			}
		}
	}
	b.sockets = [][]int{intRange(0, n/2), intRange(n/2, n)}
	return b.build(), nil
}

func parseGPUName(s string) (int, error) {
	if !strings.HasPrefix(s, "GPU") {
		return 0, fmt.Errorf("bad GPU name %q", s)
	}
	id, err := strconv.Atoi(strings.TrimPrefix(s, "GPU"))
	if err != nil || id < 0 {
		return 0, fmt.Errorf("bad GPU name %q", s)
	}
	return id, nil
}
