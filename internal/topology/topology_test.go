package topology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLinkBandwidthsTable1(t *testing.T) {
	// Table 1 of the paper.
	cases := map[LinkType]float64{
		LinkPCIe:      12,
		LinkNVLink1:   20,
		LinkNVLink2:   25,
		LinkNVLink2x2: 50,
	}
	for l, want := range cases {
		if got := l.Bandwidth(); got != want {
			t.Errorf("%s bandwidth = %g, want %g", l.Name(), got, want)
		}
	}
}

func TestLinkTypeRoundTrip(t *testing.T) {
	for _, l := range AllLinkTypes() {
		got, err := ParseLinkType(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLinkType(%q) = %v, %v", l.String(), got, err)
		}
		got, err = ParseLinkType(l.Name())
		if err != nil || got != l {
			t.Errorf("ParseLinkType(%q) = %v, %v", l.Name(), got, err)
		}
	}
	if _, err := ParseLinkType("bogus"); err == nil {
		t.Error("ParseLinkType should reject unknown names")
	}
}

func TestUnknownLinkTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bandwidth on invalid LinkType should panic")
		}
	}()
	LinkType(99).Bandwidth()
}

func TestAllTopologiesValidate(t *testing.T) {
	for _, name := range Names() {
		top, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if err := top.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nonsense"); err == nil {
		t.Fatal("ByName should reject unknown topologies")
	}
}

// TestDGXV100PaperExamples pins the DGX-1 V100 model to every worked
// example in the paper (all 1-indexed there, 0-indexed here).
func TestDGXV100PaperExamples(t *testing.T) {
	top := DGXV100()
	if top.NumGPUs() != 8 {
		t.Fatalf("NumGPUs = %d", top.NumGPUs())
	}
	// Sec. 2.1: GPUs (1,5) double NVLink, (1,2) single, (1,6) PCIe.
	if got := top.Link(0, 4); got != LinkNVLink2x2 {
		t.Errorf("link(0,4) = %s, want double NVLink", got)
	}
	if got := top.Link(0, 1); got != LinkNVLink2 {
		t.Errorf("link(0,1) = %s, want single NVLink", got)
	}
	if got := top.Link(0, 5); got != LinkPCIe {
		t.Errorf("link(0,5) = %s, want PCIe", got)
	}
	// Sec. 2.2: allocation {1,2,5} has aggregate 87 GB/s;
	// the ideal 3-GPU allocation {1,3,4} has 125 GB/s.
	if got := top.Graph.InducedSubgraph([]int{0, 1, 4}).TotalWeight(); got != 87 {
		t.Errorf("aggregate BW of {0,1,4} = %g, want 87", got)
	}
	if got := top.Graph.InducedSubgraph([]int{0, 2, 3}).TotalWeight(); got != 125 {
		t.Errorf("aggregate BW of {0,2,3} = %g, want 125", got)
	}
	if got := top.IdealAggregate(3); got != 125 {
		t.Errorf("IdealAggregate(3) = %g, want 125", got)
	}
}

func TestDGXV100LinkBudget(t *testing.T) {
	// Every V100 has exactly 6 NVLink bricks: singles count 1,
	// doubles count 2.
	top := DGXV100()
	for _, v := range top.GPUs() {
		bricks := 0
		for _, e := range top.Physical.IncidentEdges(v) {
			switch LinkType(e.Label) {
			case LinkNVLink2:
				bricks++
			case LinkNVLink2x2:
				bricks += 2
			default:
				t.Errorf("GPU %d has unexpected physical link %s", v, LinkType(e.Label))
			}
		}
		if bricks != 6 {
			t.Errorf("GPU %d uses %d NVLink bricks, want 6", v, bricks)
		}
	}
	counts := top.PhysicalLinkCounts()
	if counts[LinkNVLink2] != 8 || counts[LinkNVLink2x2] != 8 {
		t.Errorf("link counts = %v, want 8 single + 8 double", counts)
	}
}

func TestDGXP100LinkBudget(t *testing.T) {
	// Every P100 has exactly 4 NVLink-v1 bricks.
	top := DGXP100()
	if top.NumGPUs() != 8 {
		t.Fatalf("NumGPUs = %d", top.NumGPUs())
	}
	for _, v := range top.GPUs() {
		if got := top.Physical.Degree(v); got != 4 {
			t.Errorf("GPU %d physical degree = %d, want 4", v, got)
		}
		for _, e := range top.Physical.IncidentEdges(v) {
			if LinkType(e.Label) != LinkNVLink1 {
				t.Errorf("GPU %d has non-v1 link %s", v, LinkType(e.Label))
			}
		}
	}
}

func TestSummitStructure(t *testing.T) {
	top := Summit()
	if top.NumGPUs() != 6 {
		t.Fatalf("NumGPUs = %d", top.NumGPUs())
	}
	// Intra-socket pairs are double NVLink; inter-socket pairs fall
	// back to the PCIe-class X-bus path.
	if got := top.Link(0, 1); got != LinkNVLink2x2 {
		t.Errorf("link(0,1) = %s", got)
	}
	if got := top.Link(0, 3); got != LinkPCIe {
		t.Errorf("link(0,3) = %s", got)
	}
	if top.SocketOf(2) != 0 || top.SocketOf(3) != 1 {
		t.Errorf("sockets wrong: %v", top.Sockets)
	}
}

func TestTorus2DStructure(t *testing.T) {
	top := Torus2D()
	if top.NumGPUs() != 16 {
		t.Fatalf("NumGPUs = %d", top.NumGPUs())
	}
	// Every GPU has 4 physical links (2 horizontal double + 2 vertical
	// single).
	for _, v := range top.GPUs() {
		if got := top.Physical.Degree(v); got != 4 {
			t.Errorf("GPU %d degree = %d, want 4", v, got)
		}
	}
	if got := top.Link(0, 1); got != LinkNVLink2x2 {
		t.Errorf("horizontal link(0,1) = %s", got)
	}
	if got := top.Link(0, 3); got != LinkNVLink2x2 {
		t.Errorf("wraparound link(0,3) = %s", got)
	}
	if got := top.Link(0, 4); got != LinkNVLink2 {
		t.Errorf("vertical link(0,4) = %s", got)
	}
	if got := top.Link(0, 12); got != LinkNVLink2 {
		t.Errorf("vertical wraparound link(0,12) = %s", got)
	}
	if got := top.Link(0, 5); got != LinkPCIe {
		t.Errorf("diagonal link(0,5) = %s", got)
	}
	counts := top.PhysicalLinkCounts()
	if counts[LinkNVLink2x2] != 16 || counts[LinkNVLink2] != 16 {
		t.Errorf("torus link counts = %v", counts)
	}
}

func TestCubeMesh16Structure(t *testing.T) {
	top := CubeMesh16()
	if top.NumGPUs() != 16 {
		t.Fatalf("NumGPUs = %d", top.NumGPUs())
	}
	base := DGXV100()
	// Both 8-GPU halves replicate the DGX-V link matrix.
	for _, e := range base.Physical.Edges() {
		if got := top.Link(e.U, e.V); got != LinkType(e.Label) {
			t.Errorf("lower half link(%d,%d) = %s, want %s", e.U, e.V, got, LinkType(e.Label))
		}
		if got := top.Link(e.U+8, e.V+8); got != LinkType(e.Label) {
			t.Errorf("upper half link(%d,%d) = %s, want %s", e.U+8, e.V+8, got, LinkType(e.Label))
		}
	}
	for i := 0; i < 8; i++ {
		if got := top.Link(i, i+8); got != LinkNVLink2 {
			t.Errorf("vertical link(%d,%d) = %s, want single NVLink", i, i+8, got)
		}
	}
}

func TestDGX2AllNVSwitch(t *testing.T) {
	top := DGX2()
	for u := 0; u < 16; u++ {
		for v := u + 1; v < 16; v++ {
			if top.Link(u, v) != LinkNVSwitch {
				t.Fatalf("link(%d,%d) = %s", u, v, top.Link(u, v))
			}
		}
	}
}

func TestGenericGenerators(t *testing.T) {
	r := Ring(6, LinkNVLink2)
	if r.Physical.NumEdges() != 6 || !r.Physical.Connected() {
		t.Errorf("ring physical edges = %d", r.Physical.NumEdges())
	}
	f := FullyConnected(5, LinkNVLink2x2)
	if f.Physical.NumEdges() != 10 {
		t.Errorf("full physical edges = %d", f.Physical.NumEdges())
	}
	h := Hypercube(3, LinkNVLink1)
	if h.NumGPUs() != 8 || h.Physical.NumEdges() != 12 {
		t.Errorf("hypercube-3: V=%d E=%d", h.NumGPUs(), h.Physical.NumEdges())
	}
	for _, gen := range []func(){ // invalid parameter panics
		func() { Ring(2, LinkPCIe) },
		func() { FullyConnected(1, LinkPCIe) },
		func() { Hypercube(0, LinkPCIe) },
		func() { Hypercube(7, LinkPCIe) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("generator should panic on invalid size")
				}
			}()
			gen()
		}()
	}
}

func TestMatrixRender(t *testing.T) {
	m := DGXV100().Matrix()
	if !strings.Contains(m, "GPU0") || !strings.Contains(m, "GPU7") {
		t.Fatalf("matrix missing headers:\n%s", m)
	}
	if !strings.Contains(m, "NV2x") || !strings.Contains(m, "SYS") {
		t.Fatalf("matrix missing link classes:\n%s", m)
	}
	lines := strings.Split(strings.TrimSpace(m), "\n")
	if len(lines) != 9 {
		t.Fatalf("matrix has %d lines, want 9", len(lines))
	}
}

func TestSocketOfUnknown(t *testing.T) {
	if DGXV100().SocketOf(42) != -1 {
		t.Fatal("SocketOf(unknown) should be -1")
	}
}

func TestIdealAggregateEdges(t *testing.T) {
	top := DGXV100()
	if got := top.IdealAggregate(0); got != 0 {
		t.Errorf("IdealAggregate(0) = %g", got)
	}
	if got := top.IdealAggregate(99); got != 0 {
		t.Errorf("IdealAggregate(99) = %g", got)
	}
	// With k = 2 the ideal is a single double-NVLink pair.
	if got := top.IdealAggregate(2); got != 50 {
		t.Errorf("IdealAggregate(2) = %g, want 50", got)
	}
	// With all 8 GPUs the ideal is the whole graph.
	if got, want := top.IdealAggregate(8), top.Graph.TotalWeight(); got != want {
		t.Errorf("IdealAggregate(8) = %g, want %g", got, want)
	}
}

// Property: IdealAggregate is monotone in k and never below any random
// induced subset's aggregate.
func TestIdealAggregateProperty(t *testing.T) {
	top := DGXV100()
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%5) + 1
		r := rand.New(rand.NewSource(seed))
		perm := r.Perm(top.NumGPUs())[:k]
		w := top.Graph.InducedSubgraph(perm).TotalWeight()
		ideal := top.IdealAggregate(k)
		if w > ideal {
			return false
		}
		return k == 1 || top.IdealAggregate(k-1) <= ideal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedSockets(t *testing.T) {
	top := DGXV100()
	ss := top.SortedSockets()
	if len(ss) != 2 || ss[0][0] != 0 || ss[1][0] != 4 {
		t.Fatalf("SortedSockets = %v", ss)
	}
}

func TestLinkMix(t *testing.T) {
	top := DGXV100()
	mix := LinkMix(top.Graph.InducedSubgraph([]int{0, 1, 4}).Edges())
	if mix[LinkNVLink2] != 1 || mix[LinkNVLink2x2] != 1 || mix[LinkPCIe] != 1 {
		t.Fatalf("LinkMix = %v", mix)
	}
}
