package topology

import "testing"

func TestClusterA100Structure(t *testing.T) {
	top := ClusterA100(9)
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := top.NumGPUs(); got != 72 {
		t.Fatalf("NumGPUs = %d, want 72", got)
	}
	if len(top.Sockets) != 9 {
		t.Fatalf("sockets = %d, want one per node", len(top.Sockets))
	}
	// Intra-node pairs ride the NVSwitch fabric; inter-node pairs fall
	// back to the PCIe-class host/network path.
	if l := top.Link(0, 7); l != LinkNVSwitch {
		t.Fatalf("intra-node link = %s, want %s", l, LinkNVSwitch)
	}
	if l := top.Link(7, 8); l != LinkPCIe {
		t.Fatalf("inter-node link = %s, want %s", l, LinkPCIe)
	}
	if l := top.Link(0, 71); l != LinkPCIe {
		t.Fatalf("first-to-last link = %s, want %s", l, LinkPCIe)
	}
	// Physical link count: 9 nodes x C(8,2) NVSwitch pairs.
	counts := top.PhysicalLinkCounts()
	if counts[LinkNVSwitch] != 9*28 {
		t.Fatalf("NVSwitch links = %d, want %d", counts[LinkNVSwitch], 9*28)
	}
	// The builder contributes no PCIe links: every inter-node PCIe edge
	// comes from build()'s complete-by-construction fill, so it exists
	// in Graph (asserted above) but never in Physical.
	if counts[LinkPCIe] != 0 {
		t.Fatalf("physical PCIe links = %d, want 0 (inter-node PCIe comes from the completion fill, not the builder)", counts[LinkPCIe])
	}
	// All inter-node Graph edges are PCIe class: total edges minus
	// intra-node NVSwitch pairs.
	interNode := top.Graph.NumEdges() - 9*28
	if want := 72 * 71 / 2; top.Graph.NumEdges() != want {
		t.Fatalf("graph edges = %d, want complete %d", top.Graph.NumEdges(), want)
	}
	pcie := 0
	for _, e := range top.Graph.Edges() {
		if LinkType(e.Label) == LinkPCIe {
			pcie++
		}
	}
	if pcie != interNode {
		t.Fatalf("PCIe-class graph edges = %d, want every inter-node pair = %d", pcie, interNode)
	}
	// Node membership is ID-major.
	if s := top.SocketOf(17); s != 2 {
		t.Fatalf("GPU 17 in socket %d, want 2", s)
	}
}

func TestClusterA100ByName(t *testing.T) {
	top, err := ByName("cluster-a100")
	if err != nil {
		t.Fatal(err)
	}
	if top.NumGPUs() != 72 {
		t.Fatalf("cluster-a100 resolves to %d GPUs, want 72", top.NumGPUs())
	}
}

func TestClusterA100TooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ClusterA100(1) should panic")
		}
	}()
	ClusterA100(1)
}
