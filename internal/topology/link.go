// Package topology models multi-accelerator server hardware as weighted
// graphs. It provides the link-type taxonomy of Table 1 of the MAPA paper
// and builders for every hardware topology the paper evaluates: the
// DGX-1 P100 and DGX-1 V100 hybrid cube meshes (Fig. 1b/1c), a Summit
// node (Fig. 1a), and the 16-GPU Torus-2d and Cube-mesh exploration
// topologies (Fig. 17), plus generic generators.
//
// As in the paper (Sec. 3.2), the hardware graph handed to the pattern
// matcher is fully connected: every GPU pair without a direct NVLink is
// joined by a PCIe edge, because a host-routed path always exists. Each
// edge is labeled with the *highest* available link between the pair.
package topology

import "fmt"

// LinkType enumerates the inter-accelerator link classes of Table 1.
type LinkType int

const (
	// LinkPCIe is a 16-lane PCIe Gen3 path (possibly traversing the
	// host and QPI), 12 GB/s.
	LinkPCIe LinkType = iota
	// LinkNVLink1 is a single NVLink-v1 brick, 20 GB/s (P100).
	LinkNVLink1
	// LinkNVLink2 is a single NVLink-v2 brick, 25 GB/s (V100).
	LinkNVLink2
	// LinkNVLink2x2 is a double NVLink-v2 connection, 50 GB/s.
	LinkNVLink2x2
	// LinkNVSwitch is an NVSwitch-routed path (DGX-2 class). The paper
	// mentions but does not evaluate NVSwitch systems; it is included
	// as an extension topology.
	LinkNVSwitch
	// LinkIntraGPU is the on-die path between MIG slices of the same
	// physical GPU — the virtualized-accelerator extension the paper
	// sketches in Sec. 3.2/3.3.
	LinkIntraGPU

	numLinkTypes
)

// Bandwidth returns the peak bandwidth of the link type in GB/s
// (Table 1 of the paper).
func (l LinkType) Bandwidth() float64 {
	switch l {
	case LinkPCIe:
		return 12
	case LinkNVLink1:
		return 20
	case LinkNVLink2:
		return 25
	case LinkNVLink2x2:
		return 50
	case LinkNVSwitch:
		return 150
	case LinkIntraGPU:
		return 200
	}
	panic(fmt.Sprintf("topology: unknown link type %d", int(l)))
}

// String returns the nvidia-smi-style abbreviation for the link type.
func (l LinkType) String() string {
	switch l {
	case LinkPCIe:
		return "SYS"
	case LinkNVLink1:
		return "NV1"
	case LinkNVLink2:
		return "NV1x" // one NVLink-v2 brick
	case LinkNVLink2x2:
		return "NV2x" // two NVLink-v2 bricks
	case LinkNVSwitch:
		return "NVS"
	case LinkIntraGPU:
		return "MIG"
	}
	return fmt.Sprintf("LinkType(%d)", int(l))
}

// Name returns the human-readable link name used in the paper's Table 1.
func (l LinkType) Name() string {
	switch l {
	case LinkPCIe:
		return "16-lanes PCIe Gen 3"
	case LinkNVLink1:
		return "Single NVLink-v1"
	case LinkNVLink2:
		return "Single NVLink-v2"
	case LinkNVLink2x2:
		return "Double NVLink-v2"
	case LinkNVSwitch:
		return "NVSwitch"
	case LinkIntraGPU:
		return "MIG on-die"
	}
	return l.String()
}

// AllLinkTypes returns every defined link type, in ascending bandwidth
// order of the paper's evaluated links followed by the NVSwitch
// extension.
func AllLinkTypes() []LinkType {
	return []LinkType{LinkPCIe, LinkNVLink1, LinkNVLink2, LinkNVLink2x2, LinkNVSwitch, LinkIntraGPU}
}

// ParseLinkType parses both String and Name spellings of a link type.
func ParseLinkType(s string) (LinkType, error) {
	for _, l := range AllLinkTypes() {
		if s == l.String() || s == l.Name() {
			return l, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown link type %q", s)
}
