package sched

import (
	"fmt"
	"testing"

	"mapa/internal/matchcache"
	"mapa/internal/policy"
	"mapa/internal/topology"
)

// faultRun executes one engine run with the given fault plan and
// pipeline configuration, returning the records and view stats.
func faultRun(t *testing.T, plan *FaultPlan, disableViews bool) ([]Record, matchcache.ViewStats) {
	t.Helper()
	top := topology.DGXV100()
	p := policy.NewPreserve(nil)
	e := NewEngine(top, p)
	e.Faults = plan
	e.DisableLiveViews = disableViews
	res, err := e.Run(smallMix(60, 11))
	if err != nil {
		t.Fatal(err)
	}
	var vs matchcache.ViewStats
	if e.Views != nil {
		vs = e.Views.Stats()
	}
	return res.Records, vs
}

// TestFaultChurnParityAcrossPipeline: a fault plan injects the same
// failure/recovery churn whether decisions are served from the
// delta-maintained live views or by per-miss universe filtering, and
// every allocation decision must be byte-identical across the two —
// health events are topology deltas, not behavior changes.
func TestFaultChurnParityAcrossPipeline(t *testing.T) {
	plan := &FaultPlan{Seed: 7, FailProb: 0.35, Down: 400}
	fast, vs := faultRun(t, plan, false)
	slow, _ := faultRun(t, plan, true)
	if len(fast) != len(slow) {
		t.Fatalf("views-on completed %d jobs, views-off %d", len(fast), len(slow))
	}
	for i := range fast {
		a, b := fast[i], slow[i]
		if fmt.Sprint(a.GPUs) != fmt.Sprint(b.GPUs) || a.Start != b.Start || a.End != b.End ||
			a.PredictedEffBW != b.PredictedEffBW || a.AggBW != b.AggBW || a.PreservedBW != b.PreservedBW {
			t.Fatalf("job %d diverged under fault churn:\n  views-on  %v [%g,%g] eff=%g agg=%g pres=%g\n  views-off %v [%g,%g] eff=%g agg=%g pres=%g",
				a.Job.ID, a.GPUs, a.Start, a.End, a.PredictedEffBW, a.AggBW, a.PreservedBW,
				b.GPUs, b.Start, b.End, b.PredictedEffBW, b.AggBW, b.PreservedBW)
		}
	}
	if vs.Served == 0 {
		t.Fatal("fault churn run never served a decision from the live views")
	}
	if vs.Rejected != 0 {
		t.Fatalf("live views rejected %d decisions under fault churn — the health mask diverged from the availability stream", vs.Rejected)
	}
}

// TestFaultPlanIsReproducible: same plan, same jobs — same schedule,
// twice.
func TestFaultPlanIsReproducible(t *testing.T) {
	plan := &FaultPlan{Seed: 3, FailProb: 0.5, Down: 250}
	a, _ := faultRun(t, plan, false)
	b, _ := faultRun(t, plan, false)
	for i := range a {
		if fmt.Sprint(a[i].GPUs) != fmt.Sprint(b[i].GPUs) || a[i].End != b[i].End {
			t.Fatalf("job %d not reproducible across identical fault runs", a[i].Job.ID)
		}
	}
}

// TestFaultChurnChangesSchedule guards against the plan being silently
// ignored: heavy churn on a saturated machine must alter the schedule
// relative to the fault-free run.
func TestFaultChurnChangesSchedule(t *testing.T) {
	faulty, _ := faultRun(t, &FaultPlan{Seed: 1, FailProb: 0.9, Down: 600}, false)
	clean, _ := faultRun(t, nil, false)
	if len(faulty) != len(clean) {
		return // all jobs still complete in both, lengths match; defensive
	}
	for i := range faulty {
		if fmt.Sprint(faulty[i].GPUs) != fmt.Sprint(clean[i].GPUs) || faulty[i].End != clean[i].End {
			return
		}
	}
	t.Fatal("90% fault churn left the schedule identical to the fault-free run")
}

// TestFaultPlanValidation: malformed plans fail fast.
func TestFaultPlanValidation(t *testing.T) {
	top := topology.DGXV100()
	for _, plan := range []*FaultPlan{
		{FailProb: -0.1, Down: 10},
		{FailProb: 1.5, Down: 10},
		{FailProb: 0.5, Down: -1},
	} {
		e := NewEngine(top, policy.NewPreserve(nil))
		e.Faults = plan
		if _, err := e.Run(smallMix(5, 1)); err == nil {
			t.Errorf("plan %+v accepted", *plan)
		}
	}
}
