// Package sched implements the MAPA simulation execution framework of
// Fig. 14: a Dispatcher feeds a FIFO Job Queue; when GPUs are
// available the allocator (MAPA or a baseline policy) is invoked for
// the head job; the execution engine models hardware occupancy over
// time; completions free GPUs, update the allocator's hardware state,
// and are recorded in a log with the allocation, its predicted
// effective bandwidth, and execution time.
//
// The engine is discrete-event rather than literally cycle-stepped —
// an equivalent but exact formulation: time advances to the next job
// completion instead of ticking through idle cycles. FIFO semantics
// match the paper's real-run setup: the head job blocks the queue
// until it can be placed (no backfilling).
package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/jobs"
	"mapa/internal/matchcache"
	"mapa/internal/ncclsim"
	"mapa/internal/policy"
	"mapa/internal/topology"
	"mapa/internal/workload"
)

// Record is one job's log entry (the Log File of Fig. 14).
type Record struct {
	Job  jobs.Job
	GPUs []int
	// Start and End are seconds since simulation start.
	Start, End float64
	// ExecTime = End - Start.
	ExecTime float64
	// PredictedEffBW is the Eq. 2 prediction for the allocation, the
	// quantity Figs. 13c/d and 18 report.
	PredictedEffBW float64
	// MeasuredEffBW is the ncclsim microbenchmark value for the
	// allocation (the "real run" measurement used in Fig. 15).
	MeasuredEffBW float64
	// AggBW and PreservedBW are the other MAPA scores at allocation
	// time.
	AggBW, PreservedBW float64
}

// RunResult is a full simulation outcome.
type RunResult struct {
	Policy  string
	Records []Record
	// Makespan is the completion time of the last job.
	Makespan float64
	// Throughput is jobs completed per 1000 seconds.
	Throughput float64
}

// Engine simulates one machine under one allocation policy.
type Engine struct {
	Top   *topology.Topology
	Alloc policy.Allocator
	// Model predicts effective bandwidth for logging; nil uses the
	// paper's Table 2 model.
	Model *effbw.Model
	// Mode selects the execution-time source (see Mode constants).
	Mode Mode
	// Queue selects the job-queue discipline; the zero value is the
	// paper's FIFO.
	Queue Discipline
	// Cache is the tier-2 filtered-view cache attached to MAPA policies
	// for the engine's topology, so steady-state scheduling reuses
	// prior candidate lists: every allocate/free rotates the free-GPU
	// bitmask in the cache key, and recurring availability states hit.
	// NewEngine populates it; nil disables caching.
	Cache *matchcache.Cache
	// Universes is the tier-1 idle-state universe store: one complete
	// deduplicated enumeration per canonical job shape on the full
	// machine, built once (or prewarmed), from which any availability
	// state's candidate list is derived by bitmask filtering — cache
	// misses stop paying for subgraph-isomorphism searches. NewEngine
	// populates a private store; engines comparing policies on one
	// topology should share a store (ComparePoliciesConfig does). nil
	// disables universe filtering.
	Universes *matchcache.Store
	// Views is tier 0: per-shape live candidate views maintained
	// incrementally from the run's allocate/release deltas, serving
	// miss decisions without scanning the universe. Run creates a fresh
	// view set over Universes for each simulation (views track one
	// availability stream, so they are per-run even when the store is
	// shared) and leaves it here for inspection; set DisableLiveViews
	// to fall back to per-miss universe filtering.
	Views *matchcache.Views
	// DisableLiveViews turns tier 0 off: misses are answered by
	// mask-filtering the universe (the PR 2 behavior) instead of from
	// delta-maintained views.
	DisableLiveViews bool
	// Faults injects reproducible failure/recovery churn into the run;
	// nil runs fault-free (the paper's configuration).
	Faults *FaultPlan
}

// FaultPlan is a reproducible device failure/recovery process for a
// simulation run. After each job completion, a free GPU faults with
// probability FailProb; a faulted device stays visible but
// unallocatable (the health-mask semantics of the live views) for Down
// seconds of simulated time, then recovers. Leased devices never
// fault — the plan models the scheduler-facing churn of health events,
// not job kills. The process draws from its own seeded stream, so a
// plan produces the same fault schedule whenever the completion
// schedule is the same — in particular across match-pipeline
// configurations that decide identically.
type FaultPlan struct {
	// Seed initializes the fault stream.
	Seed int64
	// FailProb is the per-completion fault probability in [0,1].
	FailProb float64
	// Down is how long a faulted device stays out, in simulated
	// seconds.
	Down float64
}

// Mode selects how the engine derives job durations.
type Mode int

const (
	// ModeRealRun runs the full workload model against the chosen
	// allocation — the paper's real-machine evaluation (Sec. 4).
	ModeRealRun Mode = iota
	// ModeProxy derives duration from the predicted effective
	// bandwidth of the allocation.
	ModeProxy
	// ModeFixed gives every job its baseline duration regardless of
	// allocation, exactly like the paper's exploration simulator
	// (Sec. 5.1): the job file carries measured baseline execution
	// times, and effective bandwidth — not runtime — is the output
	// metric. Fixed durations make the admission schedule identical
	// across policies, isolating allocation quality.
	ModeFixed
)

// FixedReferenceBW is the effective bandwidth (GB/s) at which
// ModeFixed evaluates baseline durations.
const FixedReferenceBW = 25

// NewEngine returns an engine in real-run mode with an Eq. 2 model
// trained for the topology, an embedding cache, and an idle-state
// universe store for it.
func NewEngine(top *topology.Topology, alloc policy.Allocator) *Engine {
	return &Engine{
		Top:       top,
		Alloc:     alloc,
		Model:     effbw.TrainedFor(top),
		Mode:      ModeRealRun,
		Cache:     matchcache.New(top, matchcache.DefaultShardCapacity),
		Universes: matchcache.NewStore(top, matchcache.DefaultUniverseCapacity),
	}
}

// event is a scheduled job completion or device recovery.
type event struct {
	at      float64
	job     int // index into running bookkeeping
	gpus    []int
	recover bool // device recovery: gpus return to health, not from a job
}

// Run simulates the job list to completion and returns the log. Under
// the default FIFO discipline, jobs are admitted strictly in
// submission order: if the head job cannot be allocated, the queue
// waits for a completion even when later jobs would fit (the paper's
// configuration). SJF and Backfill reorder as documented on
// Discipline.
func (e *Engine) Run(jobList []jobs.Job) (RunResult, error) {
	if e.Top == nil || e.Alloc == nil {
		return RunResult{}, fmt.Errorf("sched: engine needs a topology and a policy")
	}
	model := e.Model
	if model == nil {
		model = effbw.PaperModel()
	}
	for _, j := range jobList {
		if err := j.Validate(); err != nil {
			return RunResult{}, err
		}
		if j.NumGPUs > e.Top.NumGPUs() {
			return RunResult{}, fmt.Errorf("sched: job %d needs %d GPUs but %s has %d",
				j.ID, j.NumGPUs, e.Top.Name, e.Top.NumGPUs())
		}
	}

	// Attach (or detach) the embedding cache and universe store so the
	// run's match-pipeline behavior follows the engine configuration
	// even when the allocator was used elsewhere before. A cache or
	// store bound to a different topology is never attached.
	if e.Cache.Bound(e.Top) {
		policy.AttachCache(e.Alloc, e.Cache)
	} else {
		policy.AttachCache(e.Alloc, nil)
	}
	if e.Universes.Bound(e.Top) {
		policy.AttachUniverses(e.Alloc, e.Universes)
	} else {
		policy.AttachUniverses(e.Alloc, nil)
	}
	// Live views track one availability stream, so every run gets a
	// fresh set over the (possibly shared) universe store, fed below
	// with exactly the deltas applied to avail.
	e.Views = nil
	if !e.DisableLiveViews && e.Universes.Bound(e.Top) {
		e.Views = e.Universes.NewViews()
	}
	policy.AttachViews(e.Alloc, e.Views)

	avail := e.Top.Graph.Clone()
	var pending []event // running jobs + recoveries, kept sorted by time
	records := make([]Record, 0, len(jobList))
	now := 0.0
	q, err := newQueue(e.Queue, jobList)
	if err != nil {
		return RunResult{}, err
	}
	var frng *rand.Rand
	if e.Faults != nil {
		if e.Faults.FailProb < 0 || e.Faults.FailProb > 1 || e.Faults.Down < 0 {
			return RunResult{}, fmt.Errorf("sched: invalid fault plan (prob %v, down %v)", e.Faults.FailProb, e.Faults.Down)
		}
		if e.Faults.FailProb > 0 {
			frng = rand.New(rand.NewSource(e.Faults.Seed))
		}
	}

	popNext := func() event {
		ev := pending[0]
		pending = pending[1:]
		return ev
	}
	push := func(ev event) {
		pending = append(pending, ev)
		sort.Slice(pending, func(i, j int) bool { return pending[i].at < pending[j].at })
	}

	// place tries to allocate and start job j now; it reports whether
	// placement succeeded, or a hard error.
	place := func(j jobs.Job) (bool, error) {
		pat, err := j.Pattern()
		if err != nil {
			return false, err
		}
		alloc, err := e.Alloc.Allocate(avail, e.Top, policy.Request{Pattern: pat, Sensitive: j.Sensitive})
		if err != nil {
			return false, nil // no room right now
		}
		w, err := workload.ByName(j.Workload)
		if err != nil {
			return false, err
		}
		res := ncclsim.Decompose(e.Top, alloc.GPUs)
		measured := res.PeakEffBW
		predicted := model.Predict(effbw.MixFromDecomposition(e.Top, res))
		var exec float64
		switch e.Mode {
		case ModeRealRun:
			exec = w.ExecTime(e.Top, alloc.GPUs, j.Iters)
		case ModeProxy:
			exec = w.ExecTimeAtBandwidth(predicted, len(alloc.GPUs), j.Iters)
		case ModeFixed:
			exec = w.ExecTimeAtBandwidth(FixedReferenceBW, len(alloc.GPUs), j.Iters)
		default:
			return false, fmt.Errorf("sched: unknown engine mode %d", e.Mode)
		}
		records = append(records, Record{
			Job:            j,
			GPUs:           alloc.GPUs,
			Start:          now,
			End:            now + exec,
			ExecTime:       exec,
			PredictedEffBW: predicted,
			MeasuredEffBW:  measured,
			AggBW:          alloc.Scores.AggBW,
			PreservedBW:    alloc.Scores.PreservedBW,
		})
		avail = avail.Without(alloc.GPUs)
		e.Views.Allocate(alloc.GPUs)
		push(event{at: now + exec, job: j.ID, gpus: alloc.GPUs})
		return true, nil
	}

	for !q.empty() || len(pending) > 0 {
		// Admit queued jobs in discipline order until nothing fits.
		for placed := true; placed && !q.empty(); {
			placed = false
			for _, idx := range q.candidates() {
				ok, err := place(q.jobs[idx])
				if err != nil {
					return RunResult{}, err
				}
				if ok {
					q.remove(idx)
					placed = true
					break
				}
			}
		}
		if len(pending) == 0 {
			if !q.empty() {
				j := q.jobs[q.candidates()[0]]
				return RunResult{}, fmt.Errorf("sched: job %d (%d GPUs) cannot be placed on an idle %s",
					j.ID, j.NumGPUs, e.Top.Name)
			}
			break
		}
		// Advance to the next completion or recovery and free its GPUs
		// — the deallocation state update of Sec. 3.6, or the health
		// restoration of a faulted device.
		ev := popNext()
		now = ev.at
		for _, g := range ev.gpus {
			restore(avail, e.Top, g)
		}
		if ev.recover {
			e.Views.RestoreHealth(ev.gpus)
			continue
		}
		e.Views.Release(ev.gpus)
		// Fault churn: after a completion, a free device may fault —
		// out of the availability graph, unhealthy in the views, back
		// after Down seconds. The draw happens on every completion so
		// the fault schedule depends only on the completion schedule.
		if frng != nil && frng.Float64() < e.Faults.FailProb {
			if free := avail.Vertices(); len(free) > 0 {
				victim := free[frng.Intn(len(free))]
				avail.RemoveVertex(victim)
				e.Views.MarkUnhealthy([]int{victim})
				push(event{at: now + e.Faults.Down, gpus: []int{victim}, recover: true})
			}
		}
	}

	result := RunResult{Policy: e.Alloc.Name(), Records: records}
	for _, r := range records {
		if r.End > result.Makespan {
			result.Makespan = r.End
		}
	}
	if result.Makespan > 0 {
		result.Throughput = float64(len(records)) / result.Makespan * 1000
	}
	return result, nil
}

// restore re-adds GPU g to the available graph along with its links to
// every currently-free GPU, undoing the removal done at allocation.
func restore(avail *graph.Graph, top *topology.Topology, g int) {
	avail.AddVertex(g)
	for _, v := range avail.Vertices() {
		if v == g {
			continue
		}
		e, ok := top.Graph.EdgeBetween(g, v)
		if !ok {
			panic(fmt.Sprintf("sched: topology %s missing edge (%d,%d)", top.Name, g, v))
		}
		avail.MustAddEdge(g, v, e.Weight, e.Label)
	}
}
