package sched

import (
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/jobs"
	"mapa/internal/policy"
	"mapa/internal/topology"
)

func TestDisciplineNamesRoundTrip(t *testing.T) {
	for _, d := range Disciplines() {
		got, err := ParseDiscipline(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDiscipline(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDiscipline("lifo"); err == nil {
		t.Error("unknown discipline should error")
	}
	if Discipline(42).String() == "" {
		t.Error("unknown discipline String should not be empty")
	}
}

func TestQueueCandidatesFIFO(t *testing.T) {
	q, err := newQueue(FIFO, smallMix(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := q.candidates(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("FIFO candidates = %v", got)
	}
	first := q.jobs[0].ID
	if got := q.remove(0); got.ID != first {
		t.Fatalf("remove(0) returned job %d", got.ID)
	}
	if q.len() != 4 {
		t.Fatalf("len = %d", q.len())
	}
}

func TestQueueCandidatesSJF(t *testing.T) {
	// Craft a queue where job 2 is clearly shortest (fewest iters).
	jl := []jobs.Job{
		{ID: 1, Workload: "vgg-16", NumGPUs: 2, Shape: appgraph.ShapeRing, Sensitive: true, Iters: 6500},
		{ID: 2, Workload: "vgg-16", NumGPUs: 2, Shape: appgraph.ShapeRing, Sensitive: true, Iters: 10},
		{ID: 3, Workload: "vgg-16", NumGPUs: 2, Shape: appgraph.ShapeRing, Sensitive: true, Iters: 6500},
	}
	q, err := newQueue(SJF, jl)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.candidates(); len(got) != 1 || q.jobs[got[0]].ID != 2 {
		t.Fatalf("SJF should pick job 2, got %v", got)
	}
}

func TestQueueCandidatesBackfill(t *testing.T) {
	q, err := newQueue(Backfill, smallMix(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	got := q.candidates()
	if len(got) != 4 || got[0] != 0 {
		t.Fatalf("backfill candidates = %v", got)
	}
}

func TestQueueEmpty(t *testing.T) {
	q, err := newQueue(FIFO, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !q.empty() || q.candidates() != nil {
		t.Fatal("empty queue misbehaves")
	}
}

func TestBackfillKeepsMachineBusier(t *testing.T) {
	// A 5-GPU head job blocking FIFO while 2-GPU jobs wait: backfill
	// should finish the stream no later than FIFO.
	big := jobs.Job{ID: 1, Workload: "inception-v3", NumGPUs: 5, Shape: appgraph.ShapeRing, Sensitive: true, Iters: 3500}
	jl := []jobs.Job{big, big} // two 5-GPU jobs cannot co-run on 8 GPUs
	for i := 0; i < 6; i++ {
		jl = append(jl, jobs.Job{ID: 3 + i, Workload: "alexnet", NumGPUs: 2, Shape: appgraph.ShapeRing, Sensitive: true, Iters: 9000})
	}
	top := topology.DGXV100()

	run := func(d Discipline) RunResult {
		e := NewEngine(top, policy.NewPreserve(nil))
		e.Queue = d
		res, err := e.Run(jl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fifo := run(FIFO)
	bf := run(Backfill)
	if len(fifo.Records) != len(jl) || len(bf.Records) != len(jl) {
		t.Fatalf("incomplete runs: %d, %d", len(fifo.Records), len(bf.Records))
	}
	if bf.Makespan > fifo.Makespan+1e-6 {
		t.Errorf("backfill makespan %.0f should not exceed FIFO %.0f", bf.Makespan, fifo.Makespan)
	}
	// While the second 5-GPU job waits under FIFO, 3 free GPUs idle;
	// backfill should start at least one 2-GPU job during that window.
	if bf.Throughput < fifo.Throughput {
		t.Errorf("backfill throughput %.3f below FIFO %.3f", bf.Throughput, fifo.Throughput)
	}
}

func TestSJFCompletesAllJobs(t *testing.T) {
	top := topology.DGXV100()
	e := NewEngine(top, policy.NewGreedy(nil))
	e.Queue = SJF
	res, err := e.Run(smallMix(40, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 40 {
		t.Fatalf("SJF completed %d of 40", len(res.Records))
	}
}

func TestDisciplinesNeverLoseJobs(t *testing.T) {
	top := topology.Summit()
	jl := smallMix(25, 13)
	for _, d := range Disciplines() {
		e := NewEngine(top, policy.NewPreserve(nil))
		e.Queue = d
		res, err := e.Run(jl)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if len(res.Records) != len(jl) {
			t.Fatalf("%s: completed %d of %d", d, len(res.Records), len(jl))
		}
		seen := make(map[int]bool)
		for _, r := range res.Records {
			if seen[r.Job.ID] {
				t.Fatalf("%s: job %d ran twice", d, r.Job.ID)
			}
			seen[r.Job.ID] = true
		}
	}
}
