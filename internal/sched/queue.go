package sched

import (
	"fmt"

	"mapa/internal/jobs"
	"mapa/internal/workload"
)

// Discipline selects the job-queue ordering. The paper evaluates FIFO
// ("we use First-in First-out for scheduling jobs from the queue") but
// notes MAPA is agnostic to scheduling policy and can employ
// reordering; the extra disciplines quantify that claim.
type Discipline int

const (
	// FIFO admits strictly in submission order; the head blocks the
	// queue (no backfill). This is the paper's configuration.
	FIFO Discipline = iota
	// SJF picks the queued job with the shortest estimated duration
	// whenever GPUs free up.
	SJF
	// Backfill is FIFO with EASY-style backfilling: when the head
	// cannot be placed, later jobs that fit the currently free GPUs
	// may run, keeping the machine busy without starving the head
	// indefinitely (smaller jobs drain quickly on a single node).
	Backfill
)

// String names the discipline for reports.
func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case SJF:
		return "sjf"
	case Backfill:
		return "backfill"
	}
	return fmt.Sprintf("Discipline(%d)", int(d))
}

// ParseDiscipline parses a discipline name.
func ParseDiscipline(s string) (Discipline, error) {
	switch s {
	case "fifo":
		return FIFO, nil
	case "sjf":
		return SJF, nil
	case "backfill":
		return Backfill, nil
	}
	return 0, fmt.Errorf("sched: unknown queue discipline %q", s)
}

// Disciplines lists the supported queue orderings.
func Disciplines() []Discipline { return []Discipline{FIFO, SJF, Backfill} }

// estimateDuration returns the queue's duration estimate for ordering
// purposes: the workload model at the reference bandwidth. Estimation
// never sees the eventual allocation (that would be clairvoyant).
func estimateDuration(j jobs.Job) (float64, error) {
	w, err := workload.ByName(j.Workload)
	if err != nil {
		return 0, err
	}
	return w.ExecTimeAtBandwidth(FixedReferenceBW, j.NumGPUs, j.Iters), nil
}

// queue holds pending jobs under one discipline.
type queue struct {
	discipline Discipline
	jobs       []jobs.Job
	estimates  []float64
}

func newQueue(d Discipline, jobList []jobs.Job) (*queue, error) {
	q := &queue{discipline: d}
	for _, j := range jobList {
		est, err := estimateDuration(j)
		if err != nil {
			return nil, err
		}
		q.jobs = append(q.jobs, j)
		q.estimates = append(q.estimates, est)
	}
	return q, nil
}

func (q *queue) empty() bool { return len(q.jobs) == 0 }
func (q *queue) len() int    { return len(q.jobs) }

// candidates returns the indices the engine may try to place next, in
// priority order. FIFO exposes only the head; SJF exposes only the
// shortest job; Backfill exposes the head first and then every later
// job as a backfill candidate.
func (q *queue) candidates() []int {
	if q.empty() {
		return nil
	}
	switch q.discipline {
	case FIFO:
		return []int{0}
	case SJF:
		best := 0
		for i := 1; i < len(q.jobs); i++ {
			if q.estimates[i] < q.estimates[best] {
				best = i
			}
		}
		return []int{best}
	case Backfill:
		idx := make([]int, len(q.jobs))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return []int{0}
}

// remove pops the job at index i, preserving submission order.
func (q *queue) remove(i int) jobs.Job {
	j := q.jobs[i]
	q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
	q.estimates = append(q.estimates[:i], q.estimates[i+1:]...)
	return j
}
