package sched

import (
	"math"
	"strings"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/jobs"
	"mapa/internal/policy"
	"mapa/internal/regress"
	"mapa/internal/topology"
)

func smallMix(n int, seed int64) []jobs.Job {
	js, err := jobs.Generate(jobs.GenerateConfig{N: n, MaxGPUs: 5, Seed: seed})
	if err != nil {
		panic(err)
	}
	return js
}

func TestRunCompletesAllJobs(t *testing.T) {
	top := topology.DGXV100()
	for _, name := range PaperPolicies() {
		p, err := policy.ByName(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewEngine(top, p).Run(smallMix(40, 3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Records) != 40 {
			t.Fatalf("%s: %d records, want 40", name, len(res.Records))
		}
		if res.Policy != name {
			t.Errorf("%s: result labeled %q", name, res.Policy)
		}
		if res.Makespan <= 0 || res.Throughput <= 0 {
			t.Errorf("%s: makespan %g, throughput %g", name, res.Makespan, res.Throughput)
		}
	}
}

func TestRunRecordsAreConsistent(t *testing.T) {
	top := topology.DGXV100()
	res, err := NewEngine(top, policy.NewPreserve(nil)).Run(smallMix(30, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if len(r.GPUs) != r.Job.NumGPUs {
			t.Errorf("job %d: %d GPUs assigned, want %d", r.Job.ID, len(r.GPUs), r.Job.NumGPUs)
		}
		if r.End < r.Start {
			t.Errorf("job %d: end %g before start %g", r.Job.ID, r.End, r.Start)
		}
		if math.Abs(r.End-r.Start-r.ExecTime) > 1e-9 {
			t.Errorf("job %d: time bookkeeping broken", r.Job.ID)
		}
		if r.ExecTime <= 0 {
			t.Errorf("job %d: non-positive exec time", r.Job.ID)
		}
		if r.PredictedEffBW < 0 || r.MeasuredEffBW < 0 {
			t.Errorf("job %d: negative bandwidth", r.Job.ID)
		}
		if r.End > res.Makespan {
			t.Errorf("job %d finishes after makespan", r.Job.ID)
		}
	}
}

func TestNoDoubleAllocation(t *testing.T) {
	// At every instant, no GPU may be assigned to two running jobs.
	top := topology.DGXV100()
	res, err := NewEngine(top, policy.NewGreedy(nil)).Run(smallMix(60, 11))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Records {
		for _, b := range res.Records[i+1:] {
			if a.Start < b.End && b.Start < a.End { // overlap in time
				for _, ga := range a.GPUs {
					for _, gb := range b.GPUs {
						if ga == gb {
							t.Fatalf("GPU %d shared by jobs %d and %d during overlap",
								ga, a.Job.ID, b.Job.ID)
						}
					}
				}
			}
		}
	}
}

func TestFIFOOrdering(t *testing.T) {
	// Jobs must start in submission order (head-of-line blocking, no
	// backfill).
	top := topology.DGXV100()
	res, err := NewEngine(top, policy.NewBaseline(nil)).Run(smallMix(50, 17))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Start < res.Records[i-1].Start-1e-9 {
			t.Fatalf("job %d started before its predecessor", res.Records[i].Job.ID)
		}
	}
}

func TestGPUCapacityNeverExceeded(t *testing.T) {
	top := topology.Summit() // 6 GPUs makes contention certain
	res, err := NewEngine(top, policy.NewPreserve(nil)).Run(smallMix(30, 23))
	if err != nil {
		t.Fatal(err)
	}
	// Sweep the timeline: at each record start, count GPUs in use.
	for _, probe := range res.Records {
		used := 0
		for _, r := range res.Records {
			if r.Start <= probe.Start && probe.Start < r.End {
				used += len(r.GPUs)
			}
		}
		if used > top.NumGPUs() {
			t.Fatalf("at t=%g, %d GPUs in use on a %d-GPU machine", probe.Start, used, top.NumGPUs())
		}
	}
}

func TestRunRejectsOversizedJob(t *testing.T) {
	top := topology.Summit()
	bad := []jobs.Job{{ID: 1, Workload: "vgg-16", NumGPUs: 7, Shape: appgraph.ShapeRing, Sensitive: true, Iters: 100}}
	if _, err := NewEngine(top, policy.NewBaseline(nil)).Run(bad); err == nil {
		t.Fatal("7-GPU job on 6-GPU Summit should fail")
	}
}

func TestRunRejectsInvalidJob(t *testing.T) {
	top := topology.DGXV100()
	bad := []jobs.Job{{ID: 1, Workload: "nope", NumGPUs: 2, Shape: appgraph.ShapeRing, Sensitive: true, Iters: 100}}
	if _, err := NewEngine(top, policy.NewBaseline(nil)).Run(bad); err == nil {
		t.Fatal("invalid workload should fail")
	}
}

func TestRunEmptyJobList(t *testing.T) {
	top := topology.DGXV100()
	res, err := NewEngine(top, policy.NewBaseline(nil)).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.Makespan != 0 {
		t.Fatalf("empty run: %+v", res)
	}
}

func TestEngineMissingPieces(t *testing.T) {
	if _, err := (&Engine{}).Run(nil); err == nil {
		t.Fatal("engine without topology/policy should fail")
	}
}

func TestProxyModeUsesPredictedBandwidth(t *testing.T) {
	// Sec. 5.1: the simulator uses effective bandwidth as the proxy
	// for execution time. Proxy-mode times must still distinguish good
	// from bad allocations.
	top := topology.DGXV100()
	e := NewEngine(top, policy.NewPreserve(nil))
	e.Mode = ModeProxy
	res, err := e.Run(smallMix(30, 31))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 30 {
		t.Fatalf("records = %d", len(res.Records))
	}
	for _, r := range res.Records {
		if r.ExecTime <= 0 {
			t.Fatalf("job %d: exec time %g", r.Job.ID, r.ExecTime)
		}
	}
}

func TestSimulatedVsMeasuredBandwidthCorrelate(t *testing.T) {
	// Fig. 15: predicted (model) and measured (microbenchmark)
	// effective bandwidths correlate across a run.
	top := topology.DGXV100()
	res, err := NewEngine(top, policy.NewPreserve(nil)).Run(smallMix(80, 37))
	if err != nil {
		t.Fatal(err)
	}
	multi := FilterMultiGPU(res.Records)
	r := regress.Pearson(PredictedEffBWs(multi), MeasuredEffBWs(multi))
	if r < 0.8 {
		t.Errorf("predicted vs measured correlation = %g, want > 0.8", r)
	}
}

func TestPreserveBeatsBaselineAtTail(t *testing.T) {
	// The paper's headline result (Table 3): Preserve improves the
	// upper tail of sensitive jobs' execution time over Baseline.
	top := topology.DGXV100()
	results, err := ComparePolicies(top, []string{"baseline", "preserve"}, jobs.PaperMix(1))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table3(results, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	var preserve SpeedupSummary
	for _, row := range rows {
		if row.Policy == "preserve" {
			preserve = row
		}
	}
	if preserve.P75 < 1.0 {
		t.Errorf("preserve 75th-pct speedup = %.3f, want >= 1", preserve.P75)
	}
	if preserve.Max < 1.0 {
		t.Errorf("preserve max-tail speedup = %.3f, want >= 1", preserve.Max)
	}
	t.Logf("Table 3 excerpt:\n%s", FormatTable3(rows))
}

// TestPipelineStatsSurfaceBuildTimings: a warmed comparison must
// surface the shared store's per-shape universe build records through
// every policy's PipelineStats, with the BuildWorkers floor applied.
func TestPipelineStatsSurfaceBuildTimings(t *testing.T) {
	top := topology.DGXV100()
	cfg := CompareConfig{
		Mode:         ModeFixed,
		BuildWorkers: 4,
		WarmPatterns: appgraph.AllShapes(4),
	}
	_, pipeStats, storeStats, err := ComparePoliciesInstrumented(top, []string{"baseline", "preserve"}, smallMix(20, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if storeStats == nil || len(storeStats.Builds) == 0 {
		t.Fatalf("store stats carry no builds: %+v", storeStats)
	}
	for _, b := range storeStats.Builds {
		// Warm splits the 4-worker budget between concurrent shape
		// builds and each build's pool; every build records its actual
		// (positive, within-budget) worker count.
		if b.Workers < 1 || b.Workers > 4 {
			t.Fatalf("build recorded %d workers, want within the 4-worker budget: %+v", b.Workers, b)
		}
		if b.Duration <= 0 {
			t.Fatalf("build without a duration: %+v", b)
		}
	}
	for name, ps := range pipeStats {
		if len(ps.Builds) == 0 || ps.BuildTime <= 0 {
			t.Fatalf("policy %s pipeline stats carry no build timings: %+v", name, ps)
		}
	}
}

func TestTable3Errors(t *testing.T) {
	if _, err := Table3(map[string]RunResult{}, "baseline"); err == nil {
		t.Error("missing baseline should error")
	}
	empty := map[string]RunResult{"baseline": {}}
	if _, err := Table3(empty, "baseline"); err == nil {
		t.Error("empty baseline records should error")
	}
}

func TestReportHelpers(t *testing.T) {
	top := topology.DGXV100()
	res, err := NewEngine(top, policy.NewBaseline(nil)).Run(smallMix(40, 41))
	if err != nil {
		t.Fatal(err)
	}
	rs := res.Records
	if len(ExecTimes(rs)) != len(rs) || len(PredictedEffBWs(rs)) != len(rs) || len(MeasuredEffBWs(rs)) != len(rs) {
		t.Fatal("extractors must be 1:1")
	}
	sens := FilterSensitive(rs, true)
	insens := FilterSensitive(rs, false)
	if len(sens)+len(insens) != len(rs) {
		t.Fatal("sensitivity filter must partition")
	}
	for _, r := range FilterWorkload(rs, "vgg-16") {
		if r.Job.Workload != "vgg-16" {
			t.Fatal("workload filter leaked")
		}
	}
	for _, r := range FilterMultiGPU(rs) {
		if r.Job.NumGPUs < 2 {
			t.Fatal("multi-GPU filter leaked")
		}
	}
	sums := WorkloadSummaries(rs, func(r Record) float64 { return r.ExecTime })
	if len(sums) == 0 {
		t.Fatal("no workload summaries")
	}
	if SensitivityLabel(true) != "BW-Sensitive" || SensitivityLabel(false) != "BW-Insensitive" {
		t.Fatal("labels wrong")
	}
}

func TestFragmentationQuality(t *testing.T) {
	top := topology.DGXV100()
	res, err := NewEngine(top, policy.NewBaseline(nil)).Run(smallMix(100, 43))
	if err != nil {
		t.Fatal(err)
	}
	frac := FragmentationQuality(top, res.Records)
	if len(frac) == 0 {
		t.Fatal("no fragmentation data")
	}
	for k, vals := range frac {
		if k < 2 || k > 5 {
			t.Errorf("unexpected group %d", k)
		}
		for _, v := range vals {
			if v <= 0 || v > 1+1e-9 {
				t.Errorf("quality %g outside (0,1]", v)
			}
		}
	}
}

func TestFormatTable3(t *testing.T) {
	out := FormatTable3([]SpeedupSummary{{Policy: "preserve", Min: 1, P25: 1.05, P50: 1.1, P75: 1.12, Max: 1.35, Throughput: 1.12}})
	if !strings.Contains(out, "preserve") || !strings.Contains(out, "Tput") {
		t.Fatalf("format = %q", out)
	}
}
