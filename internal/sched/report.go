package sched

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/jobs"
	"mapa/internal/matchcache"
	"mapa/internal/policy"
	"mapa/internal/score"
	"mapa/internal/stats"
	"mapa/internal/topology"
)

// ComparePolicies runs the same job list under each named policy on
// fresh engine state and returns the results keyed by policy name.
// Policies score candidate matches with an Eq. 2 model trained for the
// topology, exactly as MAPA deploys: train once per machine, then
// predict per allocation.
func ComparePolicies(top *topology.Topology, policyNames []string, jobList []jobs.Job) (map[string]RunResult, error) {
	return ComparePoliciesMode(top, policyNames, jobList, ModeRealRun)
}

// ComparePoliciesMode is ComparePolicies with an explicit engine mode.
// The paper's exploration study (Sec. 5, Fig. 18) uses ModeFixed:
// durations come from baseline measurements so the admission schedule
// is identical across policies and effective bandwidth isolates
// allocation quality.
func ComparePoliciesMode(top *topology.Topology, policyNames []string, jobList []jobs.Job, mode Mode) (map[string]RunResult, error) {
	return ComparePoliciesConfig(top, policyNames, jobList, CompareConfig{Mode: mode})
}

// CompareConfig tunes the engines ComparePoliciesConfig builds.
type CompareConfig struct {
	// Mode selects the execution-time source.
	Mode Mode
	// Workers configures MAPA policies to enumerate and score
	// candidate matches with this many goroutines (the first-vertex
	// search partitioning of match.FindAllParallel); < 2 keeps the
	// sequential matcher. Decisions are identical either way.
	Workers int
	// BuildWorkers floors the worker count of every idle-state
	// universe build the shared store runs (warmed or on demand),
	// independent of decision parallelism: the cost-estimated
	// work-stealing build is what keeps one-time cold enumerations off
	// the critical path on large machines. Unset, builds use Workers.
	// Built universes are byte-identical at any worker count.
	BuildWorkers int
	// DisableCache turns off the per-engine tier-2 filtered-view
	// cache, forcing a fresh candidate derivation for every decision.
	DisableCache bool
	// DisableUniverses turns off the tier-1 idle-state universe store,
	// so cache misses fall back to full subgraph-isomorphism searches
	// (the pre-universe behavior).
	DisableUniverses bool
	// DisableLiveViews turns off the tier-0 delta-maintained live
	// views, so misses are answered by mask-filtering the universe per
	// decision instead of from incrementally maintained candidate
	// lists. Table-served selection rides on the views, so this
	// disables it too.
	DisableLiveViews bool
	// DisableScoreTables turns off score-table precomputation on the
	// shared store: warmed decisions materialize candidate entries and
	// score them dynamically instead of running the table-served
	// streaming argmax. Decisions are byte-identical either way.
	DisableScoreTables bool
	// WarmPatterns are job shapes whose idle-state universes are
	// precomputed before any engine runs — the init-time enumeration
	// paid once for the whole comparison instead of on first use.
	WarmPatterns []*graph.Graph
	// Faults injects reproducible failure/recovery churn into every
	// engine's run (each engine replays the same plan); nil runs
	// fault-free.
	Faults *FaultPlan
}

// ComparePoliciesConfig is ComparePoliciesMode with explicit matcher
// parallelism and match-pipeline configuration. All engines share one
// idle-state universe store bound to the topology, so each canonical
// job shape is enumerated once for the whole comparison no matter how
// many policies run.
func ComparePoliciesConfig(top *topology.Topology, policyNames []string, jobList []jobs.Job, cfg CompareConfig) (map[string]RunResult, error) {
	out, _, _, err := ComparePoliciesInstrumented(top, policyNames, jobList, cfg)
	return out, err
}

// PipelineStats bundles one engine's per-policy match-pipeline
// counters: the tier-2 filtered-view cache, the tier-0 live views
// (disabled tiers report zeros), and the per-shape universe build
// timings of the tier-1 store as of this policy's run completing.
// Builds accumulate in the store shared across the comparison, so a
// later policy's snapshot includes shapes first built by an earlier
// one; BuildTime is their summed wall time.
type PipelineStats struct {
	Cache matchcache.Stats
	Views matchcache.ViewStats
	// Builds/BuildTime mirror the shared store's universe enumerations;
	// Tables/TableTime its score-table precomputations (zero with
	// tables disabled).
	Builds    []matchcache.ShapeBuild
	BuildTime time.Duration
	Tables    int
	TableTime time.Duration
}

// ComparePoliciesInstrumented is ComparePoliciesConfig returning the
// match-pipeline counters alongside the results: the per-policy tier-2
// cache and tier-0 view stats, and the stats of the shared tier-1
// universe store (nil when universes are disabled).
func ComparePoliciesInstrumented(top *topology.Topology, policyNames []string, jobList []jobs.Job, cfg CompareConfig) (map[string]RunResult, map[string]PipelineStats, *matchcache.StoreStats, error) {
	scorer := score.NewScorer(effbw.TrainedFor(top))
	var store *matchcache.Store
	if !cfg.DisableUniverses {
		store = matchcache.NewStore(top, matchcache.DefaultUniverseCapacity)
		if cfg.BuildWorkers > 1 {
			store.SetBuildWorkers(cfg.BuildWorkers)
		}
		if cfg.DisableScoreTables || cfg.DisableLiveViews {
			// Tables are served only through the live views, so with
			// views disabled warming them would be dead weight.
			store.SetScoreTables(false)
		}
		if len(cfg.WarmPatterns) > 0 {
			warmWorkers := cfg.Workers
			if cfg.BuildWorkers > warmWorkers {
				warmWorkers = cfg.BuildWorkers
			}
			store.Warm(warmWorkers, cfg.WarmPatterns...)
		}
	}
	out := make(map[string]RunResult, len(policyNames))
	pipeStats := make(map[string]PipelineStats, len(policyNames))
	for _, name := range policyNames {
		p, err := policy.ByName(name, scorer)
		if err != nil {
			return nil, nil, nil, err
		}
		if cfg.Workers > 1 {
			policy.SetParallelism(p, cfg.Workers)
		}
		e := NewEngine(top, p)
		e.Mode = cfg.Mode
		e.Universes = store
		e.DisableLiveViews = cfg.DisableLiveViews
		e.Faults = cfg.Faults
		if cfg.DisableCache {
			e.Cache = nil
		}
		res, err := e.Run(jobList)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("sched: policy %s: %w", name, err)
		}
		out[name] = res
		var ps PipelineStats
		if e.Cache != nil {
			ps.Cache = e.Cache.Stats()
		}
		ps.Views = e.Views.Stats()
		if store != nil {
			ss := store.Stats()
			ps.Builds = ss.Builds
			ps.BuildTime = ss.BuildTime
			ps.Tables = ss.Tables
			ps.TableTime = ss.TableTime
		}
		pipeStats[name] = ps
	}
	if store == nil {
		return out, pipeStats, nil, nil
	}
	st := store.Stats()
	return out, pipeStats, &st, nil
}

// PaperPolicies is the evaluation policy set of Sec. 4.
func PaperPolicies() []string {
	return []string{"baseline", "topo-aware", "greedy", "preserve"}
}

// ExecTimes extracts the execution times of the records.
func ExecTimes(records []Record) []float64 {
	out := make([]float64, len(records))
	for i, r := range records {
		out[i] = r.ExecTime
	}
	return out
}

// PredictedEffBWs extracts the predicted effective bandwidths.
func PredictedEffBWs(records []Record) []float64 {
	out := make([]float64, len(records))
	for i, r := range records {
		out[i] = r.PredictedEffBW
	}
	return out
}

// MeasuredEffBWs extracts the microbenchmark effective bandwidths.
func MeasuredEffBWs(records []Record) []float64 {
	out := make([]float64, len(records))
	for i, r := range records {
		out[i] = r.MeasuredEffBW
	}
	return out
}

// FilterSensitive splits records by the job's bandwidth sensitivity.
func FilterSensitive(records []Record, sensitive bool) []Record {
	var out []Record
	for _, r := range records {
		if r.Job.Sensitive == sensitive {
			out = append(out, r)
		}
	}
	return out
}

// FilterWorkload keeps records of one workload.
func FilterWorkload(records []Record, name string) []Record {
	var out []Record
	for _, r := range records {
		if r.Job.Workload == name {
			out = append(out, r)
		}
	}
	return out
}

// FilterMultiGPU keeps records of jobs that use at least two GPUs —
// the jobs for which allocation quality is defined.
func FilterMultiGPU(records []Record) []Record {
	var out []Record
	for _, r := range records {
		if r.Job.NumGPUs >= 2 {
			out = append(out, r)
		}
	}
	return out
}

// SpeedupSummary is one row of Table 3: quartiles of per-quantile
// execution-time speedup versus the baseline policy, plus normalized
// throughput.
type SpeedupSummary struct {
	Policy                  string
	Min, P25, P50, P75, Max float64
	Throughput              float64
}

// Table3 computes the paper's summary table: for each policy, the
// execution-time distribution quantiles of bandwidth-sensitive
// multi-GPU jobs normalized against the baseline's same quantile
// (higher = faster), and throughput normalized to baseline.
func Table3(results map[string]RunResult, baseline string) ([]SpeedupSummary, error) {
	base, ok := results[baseline]
	if !ok {
		return nil, fmt.Errorf("sched: baseline policy %q missing from results", baseline)
	}
	baseTimes := ExecTimes(FilterMultiGPU(FilterSensitive(base.Records, true)))
	if len(baseTimes) == 0 {
		return nil, fmt.Errorf("sched: baseline run has no sensitive multi-GPU jobs")
	}
	bs := stats.Summarize(baseTimes)

	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []SpeedupSummary
	for _, name := range names {
		res := results[name]
		times := ExecTimes(FilterMultiGPU(FilterSensitive(res.Records, true)))
		if len(times) == 0 {
			return nil, fmt.Errorf("sched: policy %q has no sensitive multi-GPU jobs", name)
		}
		s := stats.Summarize(times)
		row := SpeedupSummary{
			Policy: name,
			Min:    safeDiv(bs.Min, s.Min),
			P25:    safeDiv(bs.Q1, s.Q1),
			P50:    safeDiv(bs.Median, s.Median),
			P75:    safeDiv(bs.Q3, s.Q3),
			Max:    safeDiv(bs.Max, s.Max),
		}
		if base.Throughput > 0 {
			row.Throughput = res.Throughput / base.Throughput
		}
		out = append(out, row)
	}
	return out, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// FormatTable3 renders Table 3 rows in the paper's layout.
func FormatTable3(rows []SpeedupSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %6s %6s %6s %6s %6s %6s\n", "Policy", "MIN", "25th%", "50th%", "75th%", "MAX", "Tput")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %6.3f %6.3f %6.3f %6.3f %6.3f %6.2f\n",
			r.Policy, r.Min, r.P25, r.P50, r.P75, r.Max, r.Throughput)
	}
	return b.String()
}

// WorkloadSummaries returns, per workload present in the records, the
// five-number summary of the chosen metric — the data behind
// Figs. 13a-d.
func WorkloadSummaries(records []Record, metric func(Record) float64) map[string]stats.Summary {
	byWorkload := make(map[string][]float64)
	for _, r := range records {
		byWorkload[r.Job.Workload] = append(byWorkload[r.Job.Workload], metric(r))
	}
	out := make(map[string]stats.Summary, len(byWorkload))
	for name, vals := range byWorkload {
		out[name] = stats.Summarize(vals)
	}
	return out
}

// FragmentationQuality computes BW_allocated / BW_ideal per multi-GPU
// record (the x-axis of Fig. 4), grouped by requested GPU count. The
// aggregated bandwidth of the allocation's induced subgraph is
// compared to the best possible same-size allocation on an idle
// machine.
func FragmentationQuality(top *topology.Topology, records []Record) map[int][]float64 {
	ideal := make(map[int]float64)
	out := make(map[int][]float64)
	for _, r := range records {
		k := r.Job.NumGPUs
		if k < 2 {
			continue
		}
		if _, ok := ideal[k]; !ok {
			ideal[k] = top.IdealAggregate(k)
		}
		if ideal[k] <= 0 {
			continue
		}
		got := top.Graph.InducedSubgraph(r.GPUs).TotalWeight()
		out[k] = append(out[k], got/ideal[k])
	}
	return out
}

// SensitivityLabel mirrors the paper's grouping key.
func SensitivityLabel(sensitive bool) string {
	if sensitive {
		return "BW-Sensitive"
	}
	return "BW-Insensitive"
}
