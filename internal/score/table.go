package score

import (
	"sort"
	"sync"

	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/topology"
)

// Table is the precomputed static side of MAPA's selection metrics for
// one idle-state universe: per candidate, the Eq. 1 Aggregated
// Bandwidth, the Eq. 2 ring-channel link mix, the candidate's internal
// hardware-edge weight (the per-candidate constant of the Eq. 3 delta
// decomposition), and its ascending GPU set. Eq. 1 and Eq. 2 depend
// only on (topology, embedding); Eq. 3 decomposes into a per-decision
// state term — maintained by match.LiveView's bandwidth accounting —
// plus the internal-edge constant stored here:
//
//	PreservedBW(S) = totalFreeWeight − Σ_{g∈S} freeIncidentWeight(g) + internal(S)
//
// so a warmed steady-state decision evaluates every candidate with
// table lookups and O(k) arithmetic, never calling Scorer.Score (see
// Evaluations). All weights are integral link bandwidths, making every
// stored and derived value bit-identical to the dynamic evaluators.
//
// A Table is immutable under decision traffic and safe for concurrent
// use; the one sanctioned mutation is RepairEdge, which absorbs a
// link-degradation event and must be serialized with readers by the
// caller. Per-model artifacts (Eq. 2 predictions and the precomputed
// selection orders) hang off ForModel.
type Table struct {
	top     *topology.Topology
	pattern *graph.Graph
	u       *match.Universe

	agg      []float64
	internal []float64
	mix      []effbw.LinkCounts

	// gpusArena holds every candidate's ascending GPU set in one
	// backing array with fixed stride k (the pattern size): candidate
	// i occupies [i*k, (i+1)*k). Like the universe's arenas, this keeps
	// the per-table object count O(1) instead of O(candidates).
	gpusArena []int
	k         int

	mu     sync.Mutex
	models map[*effbw.Model]*ModelTable
}

// BuildTable computes the score table of a complete universe of pattern
// on top's hardware graph, fanning the per-candidate work over up to
// `workers` goroutines (the values are per-candidate pure functions, so
// the result is identical at any worker count). Link mixes go through
// the process-wide memo, so candidates sharing a GPU set — across
// shapes, stores, and dynamic decisions — decompose once per process.
// BuildTable panics on an incomplete universe, mirroring Filter.
func BuildTable(top *topology.Topology, pattern *graph.Graph, u *match.Universe, workers int) *Table {
	if !u.Complete() {
		panic("score: BuildTable over an incomplete universe")
	}
	n := u.Len()
	k := 0
	if n > 0 {
		k = len(u.Match(0).Data)
	}
	t := &Table{
		top:       top,
		pattern:   pattern,
		u:         u,
		agg:       make([]float64, n),
		internal:  make([]float64, n),
		mix:       make([]effbw.LinkCounts, n),
		gpusArena: make([]int, n*k),
		k:         k,
		models:    make(map[*effbw.Model]*ModelTable),
	}
	if workers > n {
		workers = n
	}
	if workers > 1 {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(start int) {
				defer wg.Done()
				for i := start; i < n; i += workers {
					t.fill(i)
				}
			}(w)
		}
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			t.fill(i)
		}
	}
	return t
}

// fill (re)derives candidate i's static metrics from the table's
// current topology graphs.
func (t *Table) fill(i int) {
	hw := t.top.Graph
	m := t.u.Match(i)
	gpus := t.gpusArena[i*t.k : (i+1)*t.k : (i+1)*t.k]
	copy(gpus, m.Data)
	sort.Ints(gpus)
	t.agg[i] = AggregatedBandwidth(t.pattern, hw, m)
	t.mix[i] = allocationMix(t.top, gpus)
	var internal float64
	for a, g := range gpus {
		for _, h := range gpus[a+1:] {
			internal += hw.Weight(g, h)
		}
	}
	t.internal[i] = internal
}

// RepairEdge re-derives the static metrics of every candidate whose
// GPU set contains both endpoints of machine edge (u,v) — called after
// the edge's weight changed — and returns how many were refreshed. The
// affected set is exact, not conservative: AggregatedBandwidth and the
// internal-edge constant read only weights between allocated GPUs, and
// the ring-channel decomposition behind the link mix keeps a physical
// link only when both endpoints are inside the allocation (PCIe hops
// are a global constant), so a candidate holding just one endpoint
// prices the old and new graph identically. Per-model artifacts
// (predictions and selection orders) are dropped wholesale and rebuilt
// lazily on the next decision. The caller must have already mutated
// the topology's graphs and invalidated its mix memo
// (InvalidateMixes), and must serialize RepairEdge with readers.
func (t *Table) RepairEdge(u, v int) int {
	repaired := 0
	for i := 0; i < t.Len(); i++ {
		s := t.u.Set(i)
		if s.Has(u) && s.Has(v) {
			t.fill(i)
			repaired++
		}
	}
	if repaired > 0 {
		t.mu.Lock()
		t.models = make(map[*effbw.Model]*ModelTable)
		t.mu.Unlock()
	}
	return repaired
}

// Universe returns the universe the table annotates.
func (t *Table) Universe() *match.Universe { return t.u }

// Len returns the candidate count.
func (t *Table) Len() int { return len(t.agg) }

// AggBW returns candidate i's Eq. 1 Aggregated Bandwidth.
func (t *Table) AggBW(i int) float64 { return t.agg[i] }

// Internal returns candidate i's internal hardware-edge weight — the
// static constant of the Eq. 3 delta decomposition.
func (t *Table) Internal(i int) float64 { return t.internal[i] }

// Mix returns candidate i's ring-channel link mix.
func (t *Table) Mix(i int) effbw.LinkCounts { return t.mix[i] }

// GPUs returns candidate i's ascending GPU set as a view into the
// table's arena. Read-only.
func (t *Table) GPUs(i int) []int {
	return t.gpusArena[i*t.k : (i+1)*t.k : (i+1)*t.k]
}

// ForModel returns the table's per-model artifacts — Eq. 2 predictions
// and lazily sorted selection orders — computing them on first use for
// each model. Keying by model identity mirrors Entry.Scores: swapping a
// policy's bandwidth model never serves another model's predictions.
func (t *Table) ForModel(m *effbw.Model) *ModelTable {
	t.mu.Lock()
	defer t.mu.Unlock()
	mt, ok := t.models[m]
	if !ok {
		eff := make([]float64, t.Len())
		for i, mix := range t.mix {
			eff[i] = m.Predict(mix)
		}
		mt = &ModelTable{t: t, eff: eff}
		t.models[m] = mt
	}
	return mt
}

// ModelTable is one model's view of a Table: the Eq. 2 prediction per
// candidate plus precomputed selection orders. Safe for concurrent use.
type ModelTable struct {
	t   *Table
	eff []float64

	aggOnce  sync.Once
	aggOrder []int32
	aggEnds  []int32
	effOnce  sync.Once
	effOrder []int32
	effEnds  []int32
}

// EffBW returns candidate i's Eq. 2 prediction under this model.
func (mt *ModelTable) EffBW(i int) float64 { return mt.eff[i] }

// AggOrder returns the candidates sorted under the Greedy total order —
// Aggregated Bandwidth descending, Effective Bandwidth descending, GPU
// set lexicographic ascending, canonical key ascending. Distinct
// candidates always differ in their keys, so the order is total: the
// first live candidate in it IS the Greedy winner, and the contiguous
// equal-AggBW runs serve as the candidate groups of any
// AggBW-primary comparator. Computed on first use; read-only.
func (mt *ModelTable) AggOrder() []int32 {
	mt.aggOnce.Do(func() {
		t := mt.t
		mt.aggOrder = newOrder(t.Len())
		sort.Slice(mt.aggOrder, func(a, b int) bool {
			i, j := int(mt.aggOrder[a]), int(mt.aggOrder[b])
			if t.agg[i] != t.agg[j] {
				return t.agg[i] > t.agg[j]
			}
			if mt.eff[i] != mt.eff[j] {
				return mt.eff[i] > mt.eff[j]
			}
			if c := compareInts(t.GPUs(i), t.GPUs(j)); c != 0 {
				return c < 0
			}
			return t.u.Key(i) < t.u.Key(j)
		})
		mt.aggEnds = groupEnds(mt.aggOrder, t.agg)
	})
	return mt.aggOrder
}

// AggGroups returns the Greedy-order permutation together with its
// group-boundary index: ends[j] is the exclusive end of the contiguous
// equal-AggBW run containing position j. Any AggBW-primary comparator's
// winner lies in the order's first live group — positions
// [j0, ends[j0]) for the first live j0 — so a selection scans one group
// with no per-group temporary slices. Computed on first use; read-only.
func (mt *ModelTable) AggGroups() (ord, ends []int32) {
	mt.AggOrder()
	return mt.aggOrder, mt.aggEnds
}

// EffOrder returns the candidates sorted by Effective Bandwidth
// descending (ties by ascending candidate index, keeping the order
// deterministic): the contiguous equal-EffBW runs are the candidate
// groups of any EffBW-primary comparator. Computed on first use;
// read-only.
func (mt *ModelTable) EffOrder() []int32 {
	mt.effOnce.Do(func() {
		mt.effOrder = newOrder(mt.t.Len())
		sort.SliceStable(mt.effOrder, func(a, b int) bool {
			return mt.eff[mt.effOrder[a]] > mt.eff[mt.effOrder[b]]
		})
		mt.effEnds = groupEnds(mt.effOrder, mt.eff)
	})
	return mt.effOrder
}

// EffGroups returns the EffBW-order permutation together with its
// group-boundary index: ends[j] is the exclusive end of the contiguous
// equal-EffBW run containing position j (see AggGroups). Computed on
// first use; read-only.
func (mt *ModelTable) EffGroups() (ord, ends []int32) {
	mt.EffOrder()
	return mt.effOrder, mt.effEnds
}

// groupEnds computes, for every position j of a sorted permutation, the
// exclusive end of the contiguous run of positions whose primary value
// equals ord[j]'s — one pass over the order.
func groupEnds(ord []int32, vals []float64) []int32 {
	ends := make([]int32, len(ord))
	for s := 0; s < len(ord); {
		e := s + 1
		for e < len(ord) && vals[ord[e]] == vals[ord[s]] {
			e++
		}
		for j := s; j < e; j++ {
			ends[j] = int32(e)
		}
		s = e
	}
	return ends
}

// newOrder returns the identity permutation 0..n-1 as int32 indices.
func newOrder(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// compareInts orders int slices lexicographically (shorter prefixes
// first), mirroring the policy layer's GPU-set tie-break.
func compareInts(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
