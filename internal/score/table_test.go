package score

import (
	"testing"

	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/topology"
)

// TestTableMatchesDynamicScorer pins the table's static columns against
// the dynamic evaluators, candidate by candidate, on the idle machine:
// AggBW, the ring-channel mix, the Eq. 2 prediction, and the Eq. 3
// decomposition (idle total − incident sum + internal == the dynamic
// PreservedBandwidth) must agree exactly.
func TestTableMatchesDynamicScorer(t *testing.T) {
	top := topology.DGXV100()
	pattern := ringPattern(3)
	u := match.BuildUniverse(pattern, top.Graph, 0, 1)
	if !u.Complete() {
		t.Fatal("universe must be complete")
	}
	for _, workers := range []int{1, 4} {
		tbl := BuildTable(top, pattern, u, workers)
		if tbl.Len() != u.Len() {
			t.Fatalf("table holds %d rows, universe %d", tbl.Len(), u.Len())
		}
		s := NewScorer(nil)
		mt := tbl.ForModel(s.Model)
		idle := top.Graph.TotalWeight()
		for i := 0; i < u.Len(); i++ {
			m := u.Match(i)
			want := s.Score(top, pattern, top.Graph, m)
			if tbl.AggBW(i) != want.AggBW {
				t.Fatalf("candidate %d: AggBW %g, dynamic %g", i, tbl.AggBW(i), want.AggBW)
			}
			if tbl.Mix(i) != want.Mix {
				t.Fatalf("candidate %d: mix %+v, dynamic %+v", i, tbl.Mix(i), want.Mix)
			}
			if mt.EffBW(i) != want.EffBW {
				t.Fatalf("candidate %d: EffBW %g, dynamic %g", i, mt.EffBW(i), want.EffBW)
			}
			// Eq. 3 decomposition on the idle machine: the state terms
			// are the full graph's totals.
			var incident float64
			for _, g := range tbl.GPUs(i) {
				for _, e := range top.Graph.IncidentEdges(g) {
					incident += e.Weight
				}
			}
			if got := idle - incident + tbl.Internal(i); got != want.PreservedBW {
				t.Fatalf("candidate %d: delta-decomposed PreservedBW %g, dynamic %g", i, got, want.PreservedBW)
			}
		}
	}
}

// TestTableOrders pins the precomputed selection orders: AggOrder must
// be sorted under the full Greedy total order (AggBW desc, EffBW desc,
// GPU set, key — a strict total order), EffOrder by EffBW descending.
func TestTableOrders(t *testing.T) {
	top := topology.DGXV100()
	pattern := ringPattern(3)
	u := match.BuildUniverse(pattern, top.Graph, 0, 1)
	tbl := BuildTable(top, pattern, u, 1)
	model := effbw.PaperModel()
	mt := tbl.ForModel(model)

	agg := mt.AggOrder()
	if len(agg) != tbl.Len() {
		t.Fatalf("AggOrder has %d entries, want %d", len(agg), tbl.Len())
	}
	for n := 1; n < len(agg); n++ {
		i, j := int(agg[n-1]), int(agg[n])
		switch {
		case tbl.AggBW(i) > tbl.AggBW(j):
		case tbl.AggBW(i) < tbl.AggBW(j):
			t.Fatalf("AggOrder[%d..]: AggBW ascends (%g < %g)", n-1, tbl.AggBW(i), tbl.AggBW(j))
		case mt.EffBW(i) > mt.EffBW(j):
		case mt.EffBW(i) < mt.EffBW(j):
			t.Fatalf("AggOrder[%d..]: EffBW tie-break ascends", n-1)
		case compareInts(tbl.GPUs(i), tbl.GPUs(j)) < 0:
		case compareInts(tbl.GPUs(i), tbl.GPUs(j)) > 0:
			t.Fatalf("AggOrder[%d..]: GPU tie-break out of order", n-1)
		case u.Key(i) >= u.Key(j):
			t.Fatalf("AggOrder[%d..]: key tie-break out of order (total order violated)", n-1)
		}
	}
	eff := mt.EffOrder()
	for n := 1; n < len(eff); n++ {
		if mt.EffBW(int(eff[n-1])) < mt.EffBW(int(eff[n])) {
			t.Fatalf("EffOrder[%d..]: EffBW ascends", n-1)
		}
	}
	// Per-model artifacts are memoized by model identity.
	if tbl.ForModel(model) != mt {
		t.Fatal("ForModel must memoize per model")
	}
	if tbl.ForModel(effbw.PaperModel()) == mt {
		t.Fatal("distinct model values must get distinct views")
	}
}

// TestMixMemoKeyedByTopologyInstance is the regression test for the
// process-wide mix memo's key: distinct topology values sharing a Name
// (e.g. different MIG splits of one machine both render as
// "name+MIG") must not serve each other's ring-channel decompositions.
func TestMixMemoKeyedByTopologyInstance(t *testing.T) {
	base := topology.DGXV100()
	a := topology.DGXV100()
	// Same name, different link structure: drop every NVLink so only
	// PCIe remains — any shared {0,1} decomposition would differ.
	pcie := graphAllPCIe(base)
	b := &topology.Topology{Name: a.Name, Graph: pcie, Physical: pcie, Sockets: base.Sockets}
	s := NewScorer(nil)
	mixA := s.AllocationMix(a, []int{0, 1})
	mixB := s.AllocationMix(b, []int{0, 1})
	if mixA == mixB {
		t.Fatalf("same-name topologies with different links got one memoized mix: %+v", mixA)
	}
	if mixA.Y != 1 || mixB.Z != 1 {
		t.Fatalf("mixes wrong: NVLink pair %+v, PCIe-only pair %+v", mixA, mixB)
	}
}

// graphAllPCIe rebuilds a topology's graph with every link demoted to
// PCIe.
func graphAllPCIe(top *topology.Topology) *graph.Graph {
	g := graph.New()
	for _, e := range top.Graph.Edges() {
		g.MustAddEdge(e.U, e.V, topology.LinkPCIe.Bandwidth(), int(topology.LinkPCIe))
	}
	return g
}

// TestLedgerMatchesPreservedBandwidth pins the per-decision ledger
// against the reference Eq. 3 evaluator.
func TestLedgerMatchesPreservedBandwidth(t *testing.T) {
	top := topology.DGXV100()
	avail := top.Graph.Without([]int{2, 5})
	led := NewLedger(avail)
	for _, set := range [][]int{nil, {0}, {0, 1}, {0, 3, 4}, {1, 6, 7}} {
		if got, want := led.Preserved(set), PreservedBandwidth(avail, set); got != want {
			t.Fatalf("Preserved(%v) = %g, reference %g", set, got, want)
		}
	}
}
