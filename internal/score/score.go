// Package score implements MAPA's pattern-scoring metrics (Sec. 3.4 and
// 3.5.1 of the paper):
//
//   - Aggregated Bandwidth (Eq. 1): total bandwidth of the hardware
//     links the application pattern actually uses in a match.
//   - Predicted Effective Bandwidth (Eq. 2, via internal/effbw): the
//     learned estimate of the bandwidth the allocation will achieve.
//   - Preserved Bandwidth (Eq. 3): the aggregate bandwidth remaining in
//     the hardware graph if the match is allocated, i.e. the bandwidth
//     left for future jobs.
//
// The (x, y, z) link mix fed to the Eq. 2 predictor is derived from the
// ring channels NCCL would construct over the allocation — a
// deterministic topology analysis (ncclsim.Decompose), not a
// benchmark run. This matches how the collective library actually uses
// links and makes the predictor's inputs consistent with its training
// distribution; scoring by the raw pattern-edge mix is available as
// UsedLinkMix for the paper-literal ablation.
//
// Beyond the per-match evaluators, the package provides the static side
// of the warmed fast path: Table precomputes every state-independent
// metric of an idle-state universe (Eq. 1, the Eq. 2 link mix and
// prediction, and the Eq. 3 internal-edge constant) so that steady-state
// selection needs no dynamic Score calls at all — see Table and the
// Evaluations counter.
package score

import (
	"container/list"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/ncclsim"
	"mapa/internal/topology"
)

// evaluations counts every dynamic metric evaluation (Scorer.Score /
// Scorer.ScoreLedger call) — the telemetry behind Evaluations().
var evaluations atomic.Uint64

// Evaluations returns the cumulative number of dynamic score
// evaluations (Scorer.Score and Scorer.ScoreLedger calls) this process
// has run. Like match.Searches and match.Filters it exists so tests can
// prove a decision path's cost class: a table-served warmed decision
// performs zero dynamic evaluations — every metric is either a
// precomputed lookup or O(k) delta arithmetic.
func Evaluations() uint64 { return evaluations.Load() }

// AggregatedBandwidth computes Eq. 1: the sum of the weights of the
// data-graph edges that are images of pattern edges, Σ w(e) for
// e ∈ E(P) ∩ E(M).
func AggregatedBandwidth(pattern, hw *graph.Graph, m match.Match) float64 {
	var sum float64
	for _, e := range m.UsedEdges(pattern, hw) {
		sum += e.Weight
	}
	return sum
}

// UsedLinkMix returns the (x, y, z) link mix of the hardware links the
// match's pattern edges map onto — the literal E(P) ∩ E(M) reading of
// the paper's Eq. 2 input.
func UsedLinkMix(pattern, hw *graph.Graph, m match.Match) effbw.LinkCounts {
	return effbw.CountLinks(m.UsedEdges(pattern, hw))
}

// PreservedBandwidth computes Eq. 3: the total weight of the subgraph
// of hw induced by the vertices not in the allocation. allocated may
// be any vertex set; vertices absent from hw are ignored. The value is
// computed by a single edge sweep (graph.WeightWithout) instead of
// materializing hw.Without(allocated) — identical to the materializing
// form bit for bit, since link bandwidths are integral.
func PreservedBandwidth(hw *graph.Graph, allocated []int) float64 {
	return hw.WeightWithout(allocated)
}

// Ledger is the per-decision bandwidth accounting of one availability
// graph: its total free weight and each vertex's incident free weight,
// computed once per decision so Eq. 3 for every candidate costs O(k²)
// arithmetic instead of an O(V+E) graph sweep per candidate.
//
// For an allocation S of the availability graph F:
//
//	PreservedBW(S) = W(F) − Σ_{g∈S} incident(g) + internal(S)
//
// where incident(g) sums g's edges into F (counting S–S edges twice
// across the Σ) and internal(S) adds them back once. All weights are
// integral link bandwidths, so the result is bit-identical to
// PreservedBandwidth. A Ledger is immutable after construction and safe
// for concurrent use — except one obtained from BorrowLedger, which the
// borrowing decision owns exclusively until Recycle.
type Ledger struct {
	hw       *graph.Graph
	total    float64
	incident map[int]float64
}

// NewLedger sweeps hw's edges once and returns its bandwidth ledger.
func NewLedger(hw *graph.Graph) *Ledger {
	l := &Ledger{
		hw:       hw,
		incident: make(map[int]float64, hw.NumVertices()),
	}
	l.fill(hw)
	return l
}

// fill populates the ledger from hw's edges. Edge iteration order is
// irrelevant: all weights are integral link bandwidths, so the float64
// sums are exact regardless of accumulation order.
func (l *Ledger) fill(hw *graph.Graph) {
	hw.ForEachEdge(func(e graph.Edge) bool {
		l.total += e.Weight
		l.incident[e.U] += e.Weight
		l.incident[e.V] += e.Weight
		return true
	})
}

// ledgerPool recycles per-decision Ledgers: the incident map is the
// dominant allocation of a dynamic (non-table) decision, and clearing a
// map is far cheaper than growing a fresh one to ~|V| entries.
var ledgerPool = sync.Pool{
	New: func() any { return &Ledger{incident: make(map[int]float64)} },
}

// BorrowLedger is NewLedger backed by a process-wide pool: the returned
// ledger is owned exclusively by the caller until Recycle, after which
// it must not be used. Per-decision paths borrow and recycle instead of
// allocating a fresh incident map per decision.
func BorrowLedger(hw *graph.Graph) *Ledger {
	l := ledgerPool.Get().(*Ledger)
	l.hw = hw
	l.total = 0
	clear(l.incident)
	l.fill(hw)
	return l
}

// Recycle returns a borrowed ledger to the pool. The caller must not
// retain it — nor any value derived from its identity — afterwards.
func (l *Ledger) Recycle() {
	l.hw = nil
	ledgerPool.Put(l)
}

// Preserved computes Eq. 3 for an allocation of the ledger's graph.
func (l *Ledger) Preserved(gpus []int) float64 {
	var drop, internal float64
	for i, g := range gpus {
		drop += l.incident[g]
		for _, h := range gpus[i+1:] {
			internal += l.hw.Weight(g, h)
		}
	}
	return l.total - drop + internal
}

// mixShards is the shard count of the process-wide allocation-mix memo.
// Power of two so the hash folds with a mask.
const mixShards = 64

// maxMixEntriesPerShard bounds each shard of a topology's mix memo, so
// sustained churn over many distinct GPU sets (long-running daemons,
// adversarial request mixes) holds memory flat instead of growing
// without bound. 4096 entries × 64 shards ≈ 262k sets per topology —
// comfortably above the 59,640-class cluster universe, so steady-state
// table builds and decisions never evict. Past the bound, insertion
// evicts an arbitrary resident entry (one map-range step — cheap, and
// an evicted mix is merely recomputed on next sight).
const maxMixEntriesPerShard = 4096

// mixShard is one lock-striped slice of a topology's mix memo. Keys
// pack the GPU set into bitset words (8 raw bytes per uint64) instead
// of the former per-GPU decimal rendering, and lock striping replaces
// the former single global mutex.
type mixShard struct {
	mu sync.Mutex
	m  map[string]effbw.LinkCounts
}

// topoMixes is one topology instance's sharded mix memo.
type topoMixes struct {
	top    *topology.Topology
	shards [mixShards]mixShard
}

// maxMixTopologies bounds how many topology instances the process-wide
// mix registry tracks at once. Topologies are keyed by *instance*, not
// by name — distinct graphs can share a name (e.g. different MIG
// splits of one machine all render as "name+MIG"), and a name-keyed
// memo would serve one split's ring channels to another — and
// constructors mint fresh instances per call, so the registry evicts
// least-recently-used instances past the bound: a long-running process
// creating Systems forever stays bounded, while every live System
// (whose topology pointer it keeps touching) stays memoized. Evicted
// mixes are merely recomputed.
const maxMixTopologies = 16

// mixRegistry is the process-wide per-topology-instance mix registry.
var mixRegistry struct {
	mu  sync.Mutex
	m   map[*topology.Topology]*list.Element // -> element holding *topoMixes
	lru *list.List                           // front = most recently used
}

// mixesOf returns the topology instance's mix memo, creating it on
// first sight and evicting the least recently used instance past the
// registry bound.
func mixesOf(top *topology.Topology) *topoMixes {
	r := &mixRegistry
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[*topology.Topology]*list.Element)
		r.lru = list.New()
	}
	if el, ok := r.m[top]; ok {
		r.lru.MoveToFront(el)
		return el.Value.(*topoMixes)
	}
	tm := &topoMixes{top: top}
	r.m[top] = r.lru.PushFront(tm)
	for r.lru.Len() > maxMixTopologies {
		last := r.lru.Back()
		r.lru.Remove(last)
		delete(r.m, last.Value.(*topoMixes).top)
	}
	return tm
}

// InvalidateMixes drops every memoized link mix of the topology
// instance. Call it after mutating the instance's graphs in place
// (link degradation, fault-driven reweighting): the memo is keyed by
// GPU set only, so stale mixes would otherwise serve the old weights
// forever. Dropping the whole instance is safe — evicted mixes are
// merely recomputed — and costs one map reset per shard. A topology
// the registry has never seen is a no-op.
func InvalidateMixes(top *topology.Topology) {
	r := &mixRegistry
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.m[top]
	if !ok {
		return
	}
	tm := el.Value.(*topoMixes)
	for i := range tm.shards {
		sh := &tm.shards[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
	}
}

// mixSetKey renders a GPU set as a compact byte-string key and returns
// it with its FNV-1a hash for shard selection.
func mixSetKey(gpus []int) (string, uint64) {
	maxID := 0
	for _, g := range gpus {
		if g > maxID {
			maxID = g
		}
	}
	words := make([]uint64, maxID/64+1)
	for _, g := range gpus {
		if g >= 0 {
			words[g/64] |= 1 << (uint(g) % 64)
		}
	}
	buf := make([]byte, 0, 8*len(words))
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for _, b := range buf {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return string(buf), h
}

// allocationMix returns the memoized ring-channel link mix of the GPU
// set on the topology, decomposing it on first sight. The mix is a
// pure function of (topology, GPU set) — independent of any scorer,
// model, or availability state — so the memo is shared by every Scorer
// and every Table build on a topology instance: a mix decomposed while
// warming a score table is never decomposed again by a dynamic
// decision, and vice versa.
func allocationMix(top *topology.Topology, gpus []int) effbw.LinkCounts {
	set, h := mixSetKey(gpus)
	sh := &mixesOf(top).shards[h%mixShards]
	sh.mu.Lock()
	if mix, ok := sh.m[set]; ok {
		sh.mu.Unlock()
		return mix
	}
	sh.mu.Unlock()
	mix := effbw.MixFromDecomposition(top, ncclsim.Decompose(top, gpus))
	sh.mu.Lock()
	sh.put(set, mix)
	sh.mu.Unlock()
	return mix
}

// put inserts a mix under the shard's size bound, evicting an arbitrary
// resident entry when full. Caller holds sh.mu.
func (sh *mixShard) put(set string, mix effbw.LinkCounts) {
	if sh.m == nil {
		sh.m = make(map[string]effbw.LinkCounts)
	}
	if len(sh.m) >= maxMixEntriesPerShard {
		for k := range sh.m {
			delete(sh.m, k)
			break
		}
	}
	sh.m[set] = mix
}

// Scorer evaluates all three MAPA metrics for candidate matches
// against one effective-bandwidth model. The per-subset ring-channel
// analysis — a function of (topology, GPU set) only — is memoized in a
// process-wide sharded cache. Scorer is safe for concurrent use.
type Scorer struct {
	Model *effbw.Model
}

// NewScorer returns a Scorer using the given Eq. 2 model. A nil model
// defaults to the paper's published Table 2 coefficients.
func NewScorer(m *effbw.Model) *Scorer {
	if m == nil {
		m = effbw.PaperModel()
	}
	return &Scorer{Model: m}
}

// Scores bundles every metric MAPA considers for one match.
type Scores struct {
	AggBW       float64
	EffBW       float64
	PreservedBW float64
	Mix         effbw.LinkCounts
}

// AllocationMix returns the (x, y, z) mix of the links the collective
// library's ring channels would traverse on the given allocation,
// memoized per (topology instance, GPU set) across the whole process.
func (s *Scorer) AllocationMix(top *topology.Topology, gpus []int) effbw.LinkCounts {
	return allocationMix(top, gpus)
}

// Score evaluates the match of pattern into hw on the given machine.
// top supplies the physical link structure for the ring-channel
// analysis; if nil, the EffBW prediction falls back to the literal
// pattern-edge mix.
func (s *Scorer) Score(top *topology.Topology, pattern, hw *graph.Graph, m match.Match) Scores {
	return s.score(top, pattern, hw, m, nil)
}

// ScoreLedger is Score with Eq. 3 answered from a precomputed Ledger of
// hw — the per-decision fast path when many candidates share one
// availability graph. The ledger must have been built from hw.
func (s *Scorer) ScoreLedger(top *topology.Topology, pattern, hw *graph.Graph, m match.Match, led *Ledger) Scores {
	return s.score(top, pattern, hw, m, led)
}

func (s *Scorer) score(top *topology.Topology, pattern, hw *graph.Graph, m match.Match, led *Ledger) Scores {
	evaluations.Add(1)
	var mix effbw.LinkCounts
	if top != nil {
		mix = s.AllocationMix(top, m.DataVertices())
	} else {
		mix = UsedLinkMix(pattern, hw, m)
	}
	var preserved float64
	if led != nil {
		preserved = led.Preserved(m.DataVertices())
	} else {
		preserved = PreservedBandwidth(hw, m.DataVertices())
	}
	return Scores{
		AggBW:       AggregatedBandwidth(pattern, hw, m),
		EffBW:       s.Model.Predict(mix),
		PreservedBW: preserved,
		Mix:         mix,
	}
}

// EffectiveBandwidth returns only the Eq. 2 prediction for the match.
func (s *Scorer) EffectiveBandwidth(top *topology.Topology, pattern, hw *graph.Graph, m match.Match) float64 {
	return s.Score(top, pattern, hw, m).EffBW
}
