// Package score implements MAPA's pattern-scoring metrics (Sec. 3.4 and
// 3.5.1 of the paper):
//
//   - Aggregated Bandwidth (Eq. 1): total bandwidth of the hardware
//     links the application pattern actually uses in a match.
//   - Predicted Effective Bandwidth (Eq. 2, via internal/effbw): the
//     learned estimate of the bandwidth the allocation will achieve.
//   - Preserved Bandwidth (Eq. 3): the aggregate bandwidth remaining in
//     the hardware graph if the match is allocated, i.e. the bandwidth
//     left for future jobs.
//
// The (x, y, z) link mix fed to the Eq. 2 predictor is derived from the
// ring channels NCCL would construct over the allocation — a
// deterministic topology analysis (ncclsim.Decompose), not a
// benchmark run. This matches how the collective library actually uses
// links and makes the predictor's inputs consistent with its training
// distribution; scoring by the raw pattern-edge mix is available as
// UsedLinkMix for the paper-literal ablation.
package score

import (
	"strconv"
	"strings"
	"sync"

	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/ncclsim"
	"mapa/internal/topology"
)

// AggregatedBandwidth computes Eq. 1: the sum of the weights of the
// data-graph edges that are images of pattern edges, Σ w(e) for
// e ∈ E(P) ∩ E(M).
func AggregatedBandwidth(pattern, hw *graph.Graph, m match.Match) float64 {
	var sum float64
	for _, e := range m.UsedEdges(pattern, hw) {
		sum += e.Weight
	}
	return sum
}

// UsedLinkMix returns the (x, y, z) link mix of the hardware links the
// match's pattern edges map onto — the literal E(P) ∩ E(M) reading of
// the paper's Eq. 2 input.
func UsedLinkMix(pattern, hw *graph.Graph, m match.Match) effbw.LinkCounts {
	return effbw.CountLinks(m.UsedEdges(pattern, hw))
}

// PreservedBandwidth computes Eq. 3: the total weight of the subgraph
// of hw induced by the vertices not in the allocation. allocated may
// be any vertex set; vertices absent from hw are ignored.
func PreservedBandwidth(hw *graph.Graph, allocated []int) float64 {
	return hw.Without(allocated).TotalWeight()
}

// Scorer evaluates all three MAPA metrics for candidate matches
// against one effective-bandwidth model. It memoizes the per-subset
// ring-channel analysis, which depends only on (topology, GPU set).
// Scorer is safe for concurrent use.
type Scorer struct {
	Model *effbw.Model

	mu       sync.Mutex
	mixCache map[string]effbw.LinkCounts
}

// NewScorer returns a Scorer using the given Eq. 2 model. A nil model
// defaults to the paper's published Table 2 coefficients.
func NewScorer(m *effbw.Model) *Scorer {
	if m == nil {
		m = effbw.PaperModel()
	}
	return &Scorer{Model: m, mixCache: make(map[string]effbw.LinkCounts)}
}

// Scores bundles every metric MAPA considers for one match.
type Scores struct {
	AggBW       float64
	EffBW       float64
	PreservedBW float64
	Mix         effbw.LinkCounts
}

// AllocationMix returns the (x, y, z) mix of the links the collective
// library's ring channels would traverse on the given allocation,
// memoized per GPU set.
func (s *Scorer) AllocationMix(top *topology.Topology, gpus []int) effbw.LinkCounts {
	key := mixKey(top.Name, gpus)
	s.mu.Lock()
	if mix, ok := s.mixCache[key]; ok {
		s.mu.Unlock()
		return mix
	}
	s.mu.Unlock()
	mix := effbw.MixFromDecomposition(top, ncclsim.Decompose(top, gpus))
	s.mu.Lock()
	s.mixCache[key] = mix
	s.mu.Unlock()
	return mix
}

func mixKey(name string, gpus []int) string {
	var b strings.Builder
	b.WriteString(name)
	for _, g := range gpus {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(g))
	}
	return b.String()
}

// Score evaluates the match of pattern into hw on the given machine.
// top supplies the physical link structure for the ring-channel
// analysis; if nil, the EffBW prediction falls back to the literal
// pattern-edge mix.
func (s *Scorer) Score(top *topology.Topology, pattern, hw *graph.Graph, m match.Match) Scores {
	var mix effbw.LinkCounts
	if top != nil {
		mix = s.AllocationMix(top, m.DataVertices())
	} else {
		mix = UsedLinkMix(pattern, hw, m)
	}
	return Scores{
		AggBW:       AggregatedBandwidth(pattern, hw, m),
		EffBW:       s.Model.Predict(mix),
		PreservedBW: PreservedBandwidth(hw, m.DataVertices()),
		Mix:         mix,
	}
}

// EffectiveBandwidth returns only the Eq. 2 prediction for the match.
func (s *Scorer) EffectiveBandwidth(top *topology.Topology, pattern, hw *graph.Graph, m match.Match) float64 {
	return s.Score(top, pattern, hw, m).EffBW
}
