package score

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/topology"
)

func ringPattern(k int) *graph.Graph {
	g := graph.New()
	for v := 0; v < k; v++ {
		g.MustAddEdge(v, (v+1)%k, 1, 0)
	}
	return g
}

func mustMatch(t *testing.T, pattern, hw *graph.Graph, data []int) match.Match {
	t.Helper()
	m := match.Match{Pattern: pattern.Vertices(), Data: data}
	if !match.IsEmbedding(pattern, hw, m) {
		t.Fatalf("test setup: %v is not an embedding", data)
	}
	return m
}

func TestAggregatedBandwidthPaperExample(t *testing.T) {
	// Fig. 10 / Sec. 2.2: the 3-GPU allocation {1,2,5} (0-indexed
	// {0,1,4}) of a triangle pattern aggregates 87 GB/s; the ideal
	// {1,3,4} ({0,2,3}) aggregates 125 GB/s.
	top := topology.DGXV100()
	tri := ringPattern(3)
	m := mustMatch(t, tri, top.Graph, []int{0, 1, 4})
	if got := AggregatedBandwidth(tri, top.Graph, m); got != 87 {
		t.Errorf("AggBW({0,1,4}) = %g, want 87", got)
	}
	m = mustMatch(t, tri, top.Graph, []int{0, 2, 3})
	if got := AggregatedBandwidth(tri, top.Graph, m); got != 125 {
		t.Errorf("AggBW({0,2,3}) = %g, want 125", got)
	}
}

func TestAggregatedBandwidthUsesOnlyPatternEdges(t *testing.T) {
	// A chain pattern over 3 GPUs uses 2 links, not the full triangle.
	top := topology.DGXV100()
	chain := graph.New()
	chain.MustAddEdge(0, 1, 1, 0)
	chain.MustAddEdge(1, 2, 1, 0)
	m := mustMatch(t, chain, top.Graph, []int{0, 2, 3})
	// Mapping is positional: pattern 0->0, 1->2, 2->3.
	// Links used: (0,2) single 25 + (2,3) double 50 = 75.
	if got := AggregatedBandwidth(chain, top.Graph, m); got != 75 {
		t.Errorf("chain AggBW = %g, want 75", got)
	}
}

func TestPreservedBandwidthPaperFigure(t *testing.T) {
	// Fig. 10 (right): allocating {1,2,4} (0-indexed {0,1,3}) preserves
	// the aggregate bandwidth of the remaining 5 GPUs.
	top := topology.DGXV100()
	preserved := PreservedBandwidth(top.Graph, []int{0, 1, 3})
	want := top.Graph.InducedSubgraph([]int{2, 4, 5, 6, 7}).TotalWeight()
	if preserved != want {
		t.Errorf("PreservedBW = %g, want %g", preserved, want)
	}
	// Sanity: preserving after allocating nothing = whole graph.
	if got := PreservedBandwidth(top.Graph, nil); got != top.Graph.TotalWeight() {
		t.Errorf("PreservedBW(nil) = %g", got)
	}
	// Allocating everything preserves nothing.
	if got := PreservedBandwidth(top.Graph, top.GPUs()); got != 0 {
		t.Errorf("PreservedBW(all) = %g", got)
	}
}

func TestUsedLinkMix(t *testing.T) {
	top := topology.DGXV100()
	tri := ringPattern(3)
	m := mustMatch(t, tri, top.Graph, []int{0, 1, 4})
	mix := UsedLinkMix(tri, top.Graph, m)
	if mix != (effbw.LinkCounts{X: 1, Y: 1, Z: 1}) {
		t.Errorf("mix = %+v", mix)
	}
}

func TestScorerDefaultsToPaperModel(t *testing.T) {
	s := NewScorer(nil)
	if s.Model == nil || len(s.Model.Theta) != effbw.NumFeatures {
		t.Fatal("nil model should default to the paper model")
	}
	if s.Model.Theta[0] != 16.396 {
		t.Fatal("default model is not Table 2")
	}
}

func TestScoreBundlesAllMetrics(t *testing.T) {
	top := topology.DGXV100()
	tri := ringPattern(3)
	s := NewScorer(nil)
	m := mustMatch(t, tri, top.Graph, []int{0, 2, 3})
	sc := s.Score(nil, tri, top.Graph, m)
	if sc.AggBW != 125 {
		t.Errorf("AggBW = %g", sc.AggBW)
	}
	if sc.Mix != (effbw.LinkCounts{X: 2, Y: 1, Z: 0}) {
		t.Errorf("Mix = %+v", sc.Mix)
	}
	if sc.EffBW != s.Model.Predict(sc.Mix) {
		t.Errorf("EffBW = %g", sc.EffBW)
	}
	if sc.PreservedBW != PreservedBandwidth(top.Graph, []int{0, 2, 3}) {
		t.Errorf("PreservedBW = %g", sc.PreservedBW)
	}
	if sc.EffBW != s.EffectiveBandwidth(nil, tri, top.Graph, m) {
		t.Error("EffectiveBandwidth disagrees with Score")
	}
}

func TestBetterMixScoresHigherEffBW(t *testing.T) {
	// The core of MAPA: the ideal allocation must out-score the
	// fragmented one under the learned model too.
	top := topology.DGXV100()
	tri := ringPattern(3)
	model, _, err := effbw.Train(top, effbw.DefaultSizes())
	if err != nil {
		t.Fatal(err)
	}
	s := NewScorer(model)
	frag := s.Score(top, tri, top.Graph, mustMatch(t, tri, top.Graph, []int{0, 1, 4}))
	ideal := s.Score(top, tri, top.Graph, mustMatch(t, tri, top.Graph, []int{0, 2, 3}))
	if ideal.EffBW <= frag.EffBW {
		t.Errorf("ideal EffBW %g should beat fragmented %g", ideal.EffBW, frag.EffBW)
	}
	if ideal.AggBW <= frag.AggBW {
		t.Errorf("ideal AggBW %g should beat fragmented %g", ideal.AggBW, frag.AggBW)
	}
}

// Property: for every deduped match of a ring pattern, AggBW is at
// most the total weight of the induced subgraph, and PreservedBW +
// allocated induced weight + cut weight = total graph weight.
func TestScoreConservationProperty(t *testing.T) {
	top := topology.DGXV100()
	total := top.Graph.TotalWeight()
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%4) + 2
		r := rand.New(rand.NewSource(seed))
		p := ringPattern(k)
		ms := match.FindAllDeduped(p, top.Graph)
		if len(ms) == 0 {
			return false
		}
		m := ms[r.Intn(len(ms))]
		vs := m.DataVertices()
		induced := top.Graph.InducedSubgraph(vs).TotalWeight()
		agg := AggregatedBandwidth(p, top.Graph, m)
		if agg > induced+1e-9 {
			return false
		}
		preserved := PreservedBandwidth(top.Graph, vs)
		// Cut edges: one endpoint in, one out.
		var cut float64
		in := make(map[int]bool)
		for _, v := range vs {
			in[v] = true
		}
		for _, e := range top.Graph.Edges() {
			if in[e.U] != in[e.V] {
				cut += e.Weight
			}
		}
		return math.Abs(preserved+induced+cut-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: PreservedBandwidth is antitone — allocating more vertices
// never preserves more bandwidth.
func TestPreservedAntitoneProperty(t *testing.T) {
	top := topology.DGXV100()
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%6) + 1
		r := rand.New(rand.NewSource(seed))
		perm := r.Perm(top.NumGPUs())
		small := perm[:k]
		big := perm[:k+1]
		return PreservedBandwidth(top.Graph, big) <= PreservedBandwidth(top.Graph, small)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
