package score

import (
	"fmt"
	"testing"

	"mapa/internal/effbw"
	"mapa/internal/topology"
)

// TestMixShardBoundHoldsMemoryFlat churns far more distinct GPU-set
// keys through one shard than its bound admits and checks the resident
// count never exceeds the bound — the memo must hold memory flat under
// sustained churn (long-running daemons, adversarial request mixes)
// instead of growing without bound.
func TestMixShardBoundHoldsMemoryFlat(t *testing.T) {
	var sh mixShard
	const churn = 4 * maxMixEntriesPerShard
	for i := 0; i < churn; i++ {
		sh.mu.Lock()
		sh.put(fmt.Sprintf("set-%d", i), effbw.LinkCounts{X: i})
		if n := len(sh.m); n > maxMixEntriesPerShard {
			sh.mu.Unlock()
			t.Fatalf("after %d inserts: shard holds %d entries, bound %d", i+1, n, maxMixEntriesPerShard)
		}
		sh.mu.Unlock()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n := len(sh.m); n != maxMixEntriesPerShard {
		t.Fatalf("steady-state shard size %d, want exactly the bound %d", n, maxMixEntriesPerShard)
	}
}

// TestMixShardEvictionRecomputes checks an evicted mix is merely
// recomputed, not lost: re-requesting a set that was evicted returns
// the same decomposition a cold memo would.
func TestMixShardEvictionRecomputes(t *testing.T) {
	top := topology.DGXA100()
	gpus := []int{0, 1, 2}
	want := allocationMix(top, gpus)
	// Force the set's shard over its bound with synthetic keys so the
	// real entry is eventually evicted.
	_, h := mixSetKey(gpus)
	sh := &mixesOf(top).shards[h%mixShards]
	sh.mu.Lock()
	for i := 0; i < maxMixEntriesPerShard+1; i++ {
		sh.put(fmt.Sprintf("churn-%d", i), effbw.LinkCounts{})
	}
	sh.mu.Unlock()
	if got := allocationMix(top, gpus); got != want {
		t.Fatalf("recomputed mix %+v differs from original %+v", got, want)
	}
}

// TestMixMemoStaysBoundedAcrossShards drives real allocationMix calls
// with many distinct GPU sets and asserts every shard of the topology's
// memo respects the per-shard bound.
func TestMixMemoStaysBoundedAcrossShards(t *testing.T) {
	top := topology.DGXA100()
	sets := 0
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			for c := b + 1; c < 8; c++ {
				allocationMix(top, []int{a, b, c})
				sets++
			}
		}
	}
	tm := mixesOf(top)
	total := 0
	for i := range tm.shards {
		sh := &tm.shards[i]
		sh.mu.Lock()
		n := len(sh.m)
		sh.mu.Unlock()
		if n > maxMixEntriesPerShard {
			t.Fatalf("shard %d holds %d entries, bound %d", i, n, maxMixEntriesPerShard)
		}
		total += n
	}
	if total == 0 {
		t.Fatalf("memo empty after %d distinct sets", sets)
	}
}
