package graph

import (
	"math/bits"
	"strconv"
	"strings"
)

// Bitset is a fixed-capacity set of small non-negative integers packed
// into uint64 words. It is the dense-set substrate of the pattern
// matcher's hot path: candidate filtering during subgraph-isomorphism
// search is expressed as AND / AND-NOT over words instead of per-vertex
// map lookups, and availability states are summarized as one mask for
// cache keying.
//
// A Bitset's capacity is fixed at creation; Set panics beyond it.
// Binary operations require operands of equal word length.
type Bitset []uint64

const wordBits = 64

// NewBitset returns an empty bitset able to hold members in [0, n).
func NewBitset(n int) Bitset {
	if n < 0 {
		n = 0
	}
	return make(Bitset, (n+wordBits-1)/wordBits)
}

// Set inserts i.
func (b Bitset) Set(i int) { b[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Unset removes i.
func (b Bitset) Unset(i int) { b[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Has reports whether i is a member. Out-of-capacity values are
// reported absent rather than panicking, so callers can probe with
// arbitrary vertex IDs.
func (b Bitset) Has(i int) bool {
	w := i / wordBits
	if i < 0 || w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of members.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether the set is non-empty.
func (b Bitset) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of b.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// CopyFrom overwrites b with x. The sets must have equal word length.
func (b Bitset) CopyFrom(x Bitset) { copy(b, x) }

// And intersects b with x in place.
func (b Bitset) And(x Bitset) {
	for i := range b {
		b[i] &= x[i]
	}
}

// AndNot removes the members of x from b in place.
func (b Bitset) AndNot(x Bitset) {
	for i := range b {
		b[i] &^= x[i]
	}
}

// Or unions x into b in place.
func (b Bitset) Or(x Bitset) {
	for i := range b {
		b[i] |= x[i]
	}
}

// Reset removes every member.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Fill sets exactly the members [0, n).
func (b Bitset) Fill(n int) {
	b.Reset()
	i := 0
	for ; n >= wordBits; i, n = i+1, n-wordBits {
		b[i] = ^uint64(0)
	}
	if n > 0 {
		b[i] = (1 << uint(n)) - 1
	}
}

// SubsetOf reports whether every member of b is a member of x. Unlike
// the binary operators it tolerates operands of different word lengths
// (members beyond x's capacity are simply not in x), so a bitset sized
// for a full machine can be tested against a mask sized for an
// availability subgraph with fewer (or lower-numbered) vertices.
func (b Bitset) SubsetOf(x Bitset) bool {
	for i, w := range b {
		if i >= len(x) {
			if w != 0 {
				return false
			}
			continue
		}
		if w&^x[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether b and x have identical members and capacity.
func (b Bitset) Equal(x Bitset) bool {
	if len(b) != len(x) {
		return false
	}
	for i := range b {
		if b[i] != x[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every member in ascending order. Return false
// from fn to stop early.
func (b Bitset) ForEach(fn func(i int) bool) {
	for wi, w := range b {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(base + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the set's members in ascending order.
func (b Bitset) Members() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set as fixed-width hexadecimal words, most
// significant first — a compact canonical form suitable for map keys.
func (b Bitset) String() string {
	var sb strings.Builder
	sb.Grow(len(b) * 16)
	for i := len(b) - 1; i >= 0; i-- {
		w := strconv.FormatUint(b[i], 16)
		sb.WriteString(strings.Repeat("0", 16-len(w)))
		sb.WriteString(w)
	}
	return sb.String()
}

// Capacity returns the bitset capacity needed to index g's vertices by
// ID: the maximum vertex ID plus one (zero for an empty graph). Vertex
// IDs may be sparse — physical GPU IDs survive removal — so capacity is
// a property of the largest ID, not the vertex count.
func Capacity(g *Graph) int {
	max := -1
	for v := range g.adj {
		if v > max {
			max = v
		}
	}
	return max + 1
}

// VertexBitset returns the graph's vertex set as a bitset indexed by
// vertex ID. For an availability subgraph of a hardware topology this
// is the available-GPU bitmask used to key the embedding cache.
func (g *Graph) VertexBitset() Bitset {
	b := NewBitset(Capacity(g))
	for v := range g.adj {
		b.Set(v)
	}
	return b
}

// VertexBitsetView returns the same set as VertexBitset but memoized on
// the graph: repeated calls between mutations return one shared bitset
// without allocating. The returned bitset is READ-ONLY — callers that
// need to mutate the set must use VertexBitset (or Clone the view).
func (g *Graph) VertexBitsetView() Bitset {
	if p := g.vsetMemo.Load(); p != nil {
		return *p
	}
	b := g.VertexBitset()
	g.vsetMemo.Store(&b)
	return b
}

// fingerprint is the uncached canonical encoding behind Fingerprint.
func (g *Graph) fingerprint() string {
	var sb strings.Builder
	for _, v := range g.Vertices() {
		sb.WriteString(strconv.Itoa(v))
		sb.WriteByte(',')
	}
	sb.WriteByte(';')
	for _, e := range g.Edges() {
		sb.WriteString(strconv.Itoa(e.U))
		sb.WriteByte('-')
		sb.WriteString(strconv.Itoa(e.V))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatFloat(e.Weight, 'g', -1, 64))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(e.Label))
		sb.WriteByte(',')
	}
	return sb.String()
}

// Fingerprint returns a canonical string encoding of g's exact
// structure: sorted vertices, then sorted edges with weights and
// labels. Equal fingerprints mean structurally equal graphs (the Equal
// relation), so the fingerprint is a sound cache key for pattern
// graphs. It is not an isomorphism invariant.
//
// The string is memoized on the graph and recomputed only after a
// mutation, so steady-state decision paths that key caches by
// fingerprint pay no per-call allocation.
func (g *Graph) Fingerprint() string {
	if p := g.fpMemo.Load(); p != nil {
		return *p
	}
	s := g.fingerprint()
	g.fpMemo.Store(&s)
	return s
}

// Index is a compact adjacency-bitset view of a Graph. Vertex IDs may
// be sparse (physical GPU IDs survive removal), so the index maps them
// onto dense positions 0..n-1 and precomputes one adjacency bitset and
// degree per position. Building the index costs O(V + E); afterwards
// the matcher's candidate filtering is pure word arithmetic.
//
// The index is a snapshot: mutating the underlying graph does not
// update it. It is safe for concurrent readers.
type Index struct {
	verts []int       // position -> vertex ID, ascending
	pos   map[int]int // vertex ID -> position
	adj   []Bitset    // position -> neighbor positions
	deg   []int       // position -> degree
	all   Bitset      // every position
}

// NewIndex builds the adjacency-bitset index of g.
func NewIndex(g *Graph) *Index {
	verts := g.Vertices()
	n := len(verts)
	ix := &Index{
		verts: verts,
		pos:   make(map[int]int, n),
		adj:   make([]Bitset, n),
		deg:   make([]int, n),
		all:   NewBitset(n),
	}
	for i, v := range verts {
		ix.pos[v] = i
		ix.all.Set(i)
	}
	for i, v := range verts {
		b := NewBitset(n)
		d := 0
		for u := range g.adj[v] {
			b.Set(ix.pos[u])
			d++
		}
		ix.adj[i] = b
		ix.deg[i] = d
	}
	return ix
}

// Len returns the number of indexed vertices.
func (ix *Index) Len() int { return len(ix.verts) }

// Vertex returns the vertex ID at position i.
func (ix *Index) Vertex(i int) int { return ix.verts[i] }

// PosOf returns the position of vertex v.
func (ix *Index) PosOf(v int) (int, bool) {
	i, ok := ix.pos[v]
	return i, ok
}

// Adj returns the adjacency bitset of position i. Treat it as
// read-only.
func (ix *Index) Adj(i int) Bitset { return ix.adj[i] }

// Degree returns the degree of position i.
func (ix *Index) Degree(i int) int { return ix.deg[i] }

// All returns the bitset of every position. Treat it as read-only.
func (ix *Index) All() Bitset { return ix.all }

// NewSet returns an empty bitset sized for this index's positions.
func (ix *Index) NewSet() Bitset { return NewBitset(len(ix.verts)) }
