package graph

import (
	"sort"
	"strconv"
	"strings"
)

// CanonMaxVertices bounds the exact canonicalization: graphs with more
// vertices fall back to the structural Fingerprint (still a sound cache
// key, just not isomorphism-invariant). Application patterns are small
// — the paper's jobs request at most a handful of GPUs — so the exact
// form covers the shapes that matter; the bound keeps the worst-case
// permutation search (product of orbit-class factorials) trivial.
const CanonMaxVertices = 8

// CanonicalForm returns a fingerprint of g that is invariant under
// isomorphism (for graphs of at most CanonMaxVertices vertices)
// together with the canonical labeling that produced it: a map from
// vertex ID to canonical index in [0, n).
//
// Two graphs receive equal canonical fingerprints exactly when an
// edge-, weight-, and label-preserving bijection exists between them —
// so a Ring(4) request built as 0-1-2-3-0 and one built as 0-2-1-3-0
// share the fingerprint. Composing one graph's labeling with the
// inverse of the other's yields such an isomorphism, which is how the
// match pipeline re-expresses cached embeddings in a requester's own
// vertex IDs.
//
// Beyond CanonMaxVertices the fingerprint degrades to a prefixed
// Fingerprint(): only structurally equal graphs share it, and the
// labeling is the rank in ascending vertex order (the identity
// isomorphism between structurally equal graphs).
func (g *Graph) CanonicalForm() (string, map[int]int) {
	vs := g.Vertices()
	n := len(vs)
	labeling := make(map[int]int, n)
	if n > CanonMaxVertices {
		for i, v := range vs {
			labeling[v] = i
		}
		return "x!" + g.Fingerprint(), labeling
	}

	// Partition vertices into classes by an isomorphism-invariant
	// signature (degree + sorted incident (weight, label) profile +
	// sorted neighbor degrees). Vertices in different classes can never
	// map onto each other, so the canonical search only permutes within
	// classes, with classes ordered by their signature.
	sig := make(map[int]string, n)
	for _, v := range vs {
		var parts []string
		for _, e := range g.IncidentEdges(v) {
			parts = append(parts, strconv.FormatFloat(e.Weight, 'g', -1, 64)+"/"+strconv.Itoa(e.Label)+"/"+strconv.Itoa(g.Degree(e.Other(v))))
		}
		sort.Strings(parts)
		sig[v] = strconv.Itoa(g.Degree(v)) + "#" + strings.Join(parts, ",")
	}
	classOf := make(map[string][]int)
	for _, v := range vs {
		classOf[sig[v]] = append(classOf[sig[v]], v)
	}
	sigs := make([]string, 0, len(classOf))
	for s := range classOf {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	classes := make([][]int, len(sigs))
	for i, s := range sigs {
		classes[i] = classOf[s] // ascending (Vertices() order preserved)
	}

	// Enumerate every class-respecting assignment of canonical indices
	// and keep the lexicographically smallest adjacency encoding.
	perm := make([]int, 0, n)    // canonical index -> vertex ID
	var best []byte              // smallest encoding so far
	bestPerm := make([]int, n)   // the permutation that produced it
	used := make([]bool, n)      // per-class usage marks, reused
	var rec func(ci, offset int) // class index, canonical offset
	encode := func(p []int) []byte {
		buf := make([]byte, 0, n*n*4)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if e, ok := g.EdgeBetween(p[i], p[j]); ok {
					buf = append(buf, '1')
					buf = strconv.AppendFloat(buf, e.Weight, 'g', -1, 64)
					buf = append(buf, ':')
					buf = strconv.AppendInt(buf, int64(e.Label), 10)
				} else {
					buf = append(buf, '0')
				}
				buf = append(buf, ';')
			}
		}
		return buf
	}
	rec = func(ci, offset int) {
		if ci == len(classes) {
			enc := encode(perm)
			if best == nil || string(enc) < string(best) {
				best = enc
				copy(bestPerm, perm)
			}
			return
		}
		class := classes[ci]
		var place func(k int)
		place = func(k int) {
			if k == len(class) {
				rec(ci+1, offset+len(class))
				return
			}
			for i, v := range class {
				if used[offset+i] {
					continue
				}
				used[offset+i] = true
				perm = append(perm, v)
				place(k + 1)
				perm = perm[:len(perm)-1]
				used[offset+i] = false
			}
		}
		place(0)
	}
	rec(0, 0)

	for ci, v := range bestPerm {
		labeling[v] = ci
	}
	// Class sizes and signatures are isomorphism-invariant, so the
	// encoding of the canonical adjacency plus the vertex count is a
	// complete invariant.
	return "c!" + strconv.Itoa(n) + "!" + strings.Join(sigs, "|") + "!" + string(best), labeling
}
