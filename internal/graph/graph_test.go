package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddVertexAndEdgeBasics(t *testing.T) {
	g := New()
	g.AddVertex(0)
	g.AddVertex(3)
	g.AddVertex(3) // duplicate is a no-op
	if got := g.NumVertices(); got != 2 {
		t.Fatalf("NumVertices = %d, want 2", got)
	}
	if err := g.AddEdge(0, 3, 50, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasEdge(0, 3) || !g.HasEdge(3, 0) {
		t.Fatal("edge should be visible from both endpoints")
	}
	e, ok := g.EdgeBetween(3, 0)
	if !ok {
		t.Fatal("EdgeBetween(3,0) not found")
	}
	if e.U != 0 || e.V != 3 {
		t.Fatalf("edge not normalized: %+v", e)
	}
	if e.Weight != 50 || e.Label != 1 {
		t.Fatalf("edge attrs wrong: %+v", e)
	}
}

func TestAddEdgeImplicitVertices(t *testing.T) {
	g := New()
	g.MustAddEdge(5, 7, 12, 0)
	if !g.HasVertex(5) || !g.HasVertex(7) {
		t.Fatal("AddEdge should create endpoints")
	}
}

func TestAddEdgeSelfLoopRejected(t *testing.T) {
	g := New()
	if err := g.AddEdge(1, 1, 10, 0); err == nil {
		t.Fatal("self-loop should be rejected")
	}
}

func TestAddEdgeNegativeWeightRejected(t *testing.T) {
	g := New()
	if err := g.AddEdge(1, 2, -1, 0); err == nil {
		t.Fatal("negative weight should be rejected")
	}
}

func TestAddVertexNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative vertex")
		}
	}()
	New().AddVertex(-1)
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 2, V: 5}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint should panic")
		}
	}()
	e.Other(9)
}

func TestReAddEdgeOverwrites(t *testing.T) {
	g := New()
	g.MustAddEdge(0, 1, 25, 2)
	g.MustAddEdge(1, 0, 50, 1)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	e, _ := g.EdgeBetween(0, 1)
	if e.Weight != 50 || e.Label != 1 {
		t.Fatalf("overwrite failed: %+v", e)
	}
}

func TestRemoveEdgeAndVertex(t *testing.T) {
	g := triangle()
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("RemoveEdge failed")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	g.RemoveVertex(2)
	if g.HasVertex(2) || g.NumEdges() != 0 {
		t.Fatalf("RemoveVertex left state: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	// Removing absent vertex / edge must be safe.
	g.RemoveVertex(99)
	g.RemoveEdge(42, 43)
}

func triangle() *Graph {
	g := New()
	g.MustAddEdge(0, 1, 50, 1)
	g.MustAddEdge(1, 2, 25, 2)
	g.MustAddEdge(0, 2, 12, 0)
	return g
}

func TestVerticesSorted(t *testing.T) {
	g := New()
	for _, v := range []int{9, 1, 4, 0} {
		g.AddVertex(v)
	}
	want := []int{0, 1, 4, 9}
	if got := g.Vertices(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Vertices = %v, want %v", got, want)
	}
}

func TestEdgesSortedNormalized(t *testing.T) {
	g := New()
	g.MustAddEdge(3, 1, 10, 0)
	g.MustAddEdge(2, 0, 20, 0)
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("len(Edges) = %d", len(es))
	}
	if es[0].U != 0 || es[0].V != 2 || es[1].U != 1 || es[1].V != 3 {
		t.Fatalf("Edges order/normalization wrong: %+v", es)
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := triangle()
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d", g.Degree(1))
	}
	if g.Degree(99) != 0 {
		t.Fatalf("Degree of absent vertex should be 0")
	}
}

func TestIncidentEdges(t *testing.T) {
	g := triangle()
	es := g.IncidentEdges(1)
	if len(es) != 2 {
		t.Fatalf("IncidentEdges(1) len = %d", len(es))
	}
	if es[0].Other(1) != 0 || es[1].Other(1) != 2 {
		t.Fatalf("IncidentEdges not sorted by far endpoint: %+v", es)
	}
}

func TestDegreeSequence(t *testing.T) {
	g := New()
	g.MustAddEdge(0, 1, 1, 0)
	g.MustAddEdge(0, 2, 1, 0)
	g.MustAddEdge(0, 3, 1, 0)
	want := []int{3, 1, 1, 1}
	if got := g.DegreeSequence(); !reflect.DeepEqual(got, want) {
		t.Fatalf("DegreeSequence = %v, want %v", got, want)
	}
}

func TestTotalWeight(t *testing.T) {
	g := triangle()
	if w := g.TotalWeight(); w != 87 {
		t.Fatalf("TotalWeight = %g, want 87", w)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := triangle()
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.RemoveVertex(0)
	if !g.HasVertex(0) || g.NumEdges() != 3 {
		t.Fatal("mutating clone affected original")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := triangle()
	g.MustAddEdge(2, 3, 5, 0)
	s := g.InducedSubgraph([]int{0, 1, 3, 42})
	if s.NumVertices() != 3 {
		t.Fatalf("induced V = %d, want 3 (unknown vertex ignored)", s.NumVertices())
	}
	if s.NumEdges() != 1 || !s.HasEdge(0, 1) {
		t.Fatalf("induced edges wrong: %v", s.Edges())
	}
}

func TestWithout(t *testing.T) {
	g := triangle()
	r := g.Without([]int{0})
	if r.HasVertex(0) || r.NumVertices() != 2 || r.NumEdges() != 1 {
		t.Fatalf("Without wrong: V=%d E=%d", r.NumVertices(), r.NumEdges())
	}
	if g.NumVertices() != 3 {
		t.Fatal("Without must not mutate receiver")
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := New()
	if !g.Connected() {
		t.Fatal("empty graph should be connected")
	}
	g.MustAddEdge(0, 1, 1, 0)
	g.MustAddEdge(2, 3, 1, 0)
	if g.Connected() {
		t.Fatal("two components should not be connected")
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("Components = %v", comps)
	}
	if !reflect.DeepEqual(comps[0], []int{0, 1}) || !reflect.DeepEqual(comps[1], []int{2, 3}) {
		t.Fatalf("Components content wrong: %v", comps)
	}
	g.MustAddEdge(1, 2, 1, 0)
	if !g.Connected() {
		t.Fatal("bridged graph should be connected")
	}
}

func TestEqual(t *testing.T) {
	a, b := triangle(), triangle()
	if !a.Equal(b) {
		t.Fatal("identical graphs should be Equal")
	}
	b.RemoveEdge(0, 1)
	b.MustAddEdge(0, 1, 99, 1)
	if a.Equal(b) {
		t.Fatal("different weights should not be Equal")
	}
	c := New()
	c.AddVertex(7)
	if a.Equal(c) {
		t.Fatal("different vertex sets should not be Equal")
	}
}

func TestDOTOutput(t *testing.T) {
	d := triangle().DOT("tri")
	for _, want := range []string{`graph "tri"`, "0 -- 1", "1 -- 2", "0 -- 2"} {
		if !strings.Contains(d, want) {
			t.Fatalf("DOT missing %q in:\n%s", want, d)
		}
	}
}

func TestStringer(t *testing.T) {
	s := triangle().String()
	if !strings.Contains(s, "V=3") || !strings.Contains(s, "E=3") {
		t.Fatalf("String = %q", s)
	}
}

// randomGraph builds a reproducible random graph for property tests.
func randomGraph(r *rand.Rand, n int) *Graph {
	g := New()
	for v := 0; v < n; v++ {
		g.AddVertex(v)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Intn(2) == 0 {
				g.MustAddEdge(u, v, float64(r.Intn(5))*12.5, r.Intn(3))
			}
		}
	}
	return g
}

// Property: an induced subgraph's edges are exactly the original edges
// with both endpoints inside the chosen set.
func TestInducedSubgraphProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 2
		g := randomGraph(r, n)
		var vs []int
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				vs = append(vs, v)
			}
		}
		s := g.InducedSubgraph(vs)
		in := make(map[int]bool)
		for _, v := range vs {
			in[v] = true
		}
		for _, e := range g.Edges() {
			want := in[e.U] && in[e.V]
			if s.HasEdge(e.U, e.V) != want {
				return false
			}
		}
		for _, e := range s.Edges() {
			if !g.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Without(vs) and InducedSubgraph(complement) agree.
func TestWithoutComplementProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 2
		g := randomGraph(r, n)
		var rm, keep []int
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				rm = append(rm, v)
			} else {
				keep = append(keep, v)
			}
		}
		return g.Without(rm).Equal(g.InducedSubgraph(keep))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: adjacency is symmetric and degree equals neighbor count.
func TestAdjacencySymmetryProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%12) + 2
		g := randomGraph(r, n)
		for _, v := range g.Vertices() {
			ns := g.Neighbors(v)
			if len(ns) != g.Degree(v) {
				return false
			}
			if !sort.IntsAreSorted(ns) {
				return false
			}
			for _, u := range ns {
				if !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is equal and independent; TotalWeight matches the sum
// of Edges().
func TestCloneAndWeightProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 2
		g := randomGraph(r, n)
		c := g.Clone()
		if !g.Equal(c) || !c.Equal(g) {
			return false
		}
		var sum float64
		for _, e := range g.Edges() {
			sum += e.Weight
		}
		return sum == g.TotalWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
