// Package graph provides the undirected, weighted, edge-labeled graph
// substrate used throughout MAPA. Application communication patterns and
// server hardware topologies are both represented as Graph values.
//
// Vertices are identified by arbitrary non-negative integers (physical GPU
// IDs survive vertex removal, so a graph may have "holes" in its ID space).
// Every edge carries a float64 weight (link bandwidth in GB/s) and an
// integer label (link type). Edges are undirected: AddEdge(u, v) and
// AddEdge(v, u) are the same edge.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Edge is an undirected edge between U and V with a bandwidth Weight
// (GB/s) and an integer Label identifying the link type. Edges returned
// by accessor methods are normalized so that U < V.
type Edge struct {
	U, V   int
	Weight float64
	Label  int
}

// normalize returns e with endpoints ordered so that U < V.
func (e Edge) normalize() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Other returns the endpoint of e that is not v.
// It panics if v is not an endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge (%d,%d)", v, e.U, e.V))
}

// Graph is an undirected weighted graph. The zero value is not usable;
// call New.
//
// Graphs memoize derived read-only artifacts (Fingerprint,
// VertexBitsetView) lazily; every mutator drops the memo, so a graph
// mutated between decisions recomputes them at most once per state.
// The memo is maintained with atomics, so concurrent readers are safe;
// mutation itself is not safe to interleave with readers (unchanged
// from the map-backed representation).
type Graph struct {
	adj map[int]map[int]Edge

	fpMemo   atomic.Pointer[string]
	vsetMemo atomic.Pointer[Bitset]
}

// invalidate drops the memoized derived artifacts after a structural
// mutation.
func (g *Graph) invalidate() {
	g.fpMemo.Store(nil)
	g.vsetMemo.Store(nil)
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[int]map[int]Edge)}
}

// AddVertex inserts vertex v. Adding an existing vertex is a no-op.
// It panics if v is negative.
func (g *Graph) AddVertex(v int) {
	if v < 0 {
		panic(fmt.Sprintf("graph: negative vertex id %d", v))
	}
	if _, ok := g.adj[v]; !ok {
		g.adj[v] = make(map[int]Edge)
		g.invalidate()
	}
}

// AddEdge inserts an undirected edge between u and v with the given
// weight and label, implicitly adding missing endpoints. Re-adding an
// existing edge overwrites its weight and label. It returns an error for
// self-loops or negative weights.
func (g *Graph) AddEdge(u, v int, weight float64, label int) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	if weight < 0 {
		return fmt.Errorf("graph: negative weight %g on edge (%d,%d)", weight, u, v)
	}
	g.AddVertex(u)
	g.AddVertex(v)
	e := Edge{U: u, V: v, Weight: weight, Label: label}.normalize()
	g.adj[u][v] = e
	g.adj[v][u] = e
	g.invalidate()
	return nil
}

// MustAddEdge is AddEdge but panics on error. It is intended for
// statically-known topology construction.
func (g *Graph) MustAddEdge(u, v int, weight float64, label int) {
	if err := g.AddEdge(u, v, weight, label); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the edge between u and v if present.
func (g *Graph) RemoveEdge(u, v int) {
	if _, ok := g.adj[u][v]; ok {
		delete(g.adj[u], v)
		delete(g.adj[v], u)
		g.invalidate()
	}
}

// RemoveVertex deletes v and all incident edges. Removing an absent
// vertex is a no-op.
func (g *Graph) RemoveVertex(v int) {
	if _, ok := g.adj[v]; !ok {
		return
	}
	for u := range g.adj[v] {
		delete(g.adj[u], v)
	}
	delete(g.adj, v)
	g.invalidate()
}

// HasVertex reports whether v is present.
func (g *Graph) HasVertex(v int) bool {
	_, ok := g.adj[v]
	return ok
}

// HasEdge reports whether an edge between u and v is present.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.adj[u][v]
	return ok
}

// EdgeBetween returns the edge between u and v.
func (g *Graph) EdgeBetween(u, v int) (Edge, bool) {
	e, ok := g.adj[u][v]
	return e, ok
}

// Weight returns the weight of the edge between u and v, or 0 if absent.
func (g *Graph) Weight(u, v int) float64 {
	return g.adj[u][v].Weight
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, nbrs := range g.adj {
		n += len(nbrs)
	}
	return n / 2
}

// Vertices returns all vertex IDs in ascending order.
func (g *Graph) Vertices() []int {
	vs := make([]int, 0, len(g.adj))
	for v := range g.adj {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Edges returns all edges, normalized (U < V) and sorted by (U, V).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.NumEdges())
	for u, nbrs := range g.adj {
		for v, e := range nbrs {
			if u < v {
				es = append(es, e)
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// ForEachEdge calls fn for every edge (normalized, U < V) in
// unspecified order, stopping early if fn returns false. Unlike Edges
// it allocates nothing; use it when the caller's accumulation is
// order-independent (e.g. exact integral-bandwidth sums).
func (g *Graph) ForEachEdge(fn func(Edge) bool) {
	for u, nbrs := range g.adj {
		for v, e := range nbrs {
			if u < v && !fn(e) {
				return
			}
		}
	}
}

// Neighbors returns the neighbors of v in ascending order.
func (g *Graph) Neighbors(v int) []int {
	ns := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		ns = append(ns, u)
	}
	sort.Ints(ns)
	return ns
}

// IncidentEdges returns the edges incident to v, sorted by the far
// endpoint.
func (g *Graph) IncidentEdges(v int) []Edge {
	es := make([]Edge, 0, len(g.adj[v]))
	for _, e := range g.adj[v] {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Other(v) < es[j].Other(v) })
	return es
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// DegreeSequence returns the multiset of vertex degrees in descending
// order. Two isomorphic graphs have identical degree sequences.
func (g *Graph) DegreeSequence() []int {
	ds := make([]int, 0, len(g.adj))
	for _, nbrs := range g.adj {
		ds = append(ds, len(nbrs))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var w float64
	for u, nbrs := range g.adj {
		for v, e := range nbrs {
			if u < v {
				w += e.Weight
			}
		}
	}
	return w
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	for v := range g.adj {
		c.AddVertex(v)
	}
	for u, nbrs := range g.adj {
		for v, e := range nbrs {
			if u < v {
				c.adj[u][v] = e
				c.adj[v][u] = e
			}
		}
	}
	return c
}

// InducedSubgraph returns the subgraph induced by the given vertex set:
// the vertices in vs that exist in g, and every edge of g whose both
// endpoints are in vs. Unknown vertices are ignored.
func (g *Graph) InducedSubgraph(vs []int) *Graph {
	in := make(map[int]bool, len(vs))
	for _, v := range vs {
		if g.HasVertex(v) {
			in[v] = true
		}
	}
	s := New()
	for v := range in {
		s.AddVertex(v)
	}
	for u := range in {
		for v, e := range g.adj[u] {
			if u < v && in[v] {
				s.adj[u][v] = e
				s.adj[v][u] = e
			}
		}
	}
	return s
}

// WeightWithout returns the total edge weight of the subgraph obtained
// by removing the given vertices — Without(vs).TotalWeight() without
// materializing the copy. All edge weights in this repository are
// integral link bandwidths (see topology.LinkType.Bandwidth), so the
// float64 sum is exact and independent of iteration order, making the
// value bit-identical to the materializing form.
func (g *Graph) WeightWithout(vs []int) float64 {
	if len(vs) == 0 {
		return g.TotalWeight()
	}
	gone := make(map[int]bool, len(vs))
	for _, v := range vs {
		gone[v] = true
	}
	var w float64
	for u, nbrs := range g.adj {
		if gone[u] {
			continue
		}
		for v, e := range nbrs {
			if u < v && !gone[v] {
				w += e.Weight
			}
		}
	}
	return w
}

// Without returns a copy of g with the given vertices (and their
// incident edges) removed. It is the remainder graph G \ M used for
// Preserved Bandwidth (Eq. 3 in the paper).
func (g *Graph) Without(vs []int) *Graph {
	c := g.Clone()
	for _, v := range vs {
		c.RemoveVertex(v)
	}
	return c
}

// Connected reports whether g is connected. The empty graph is
// considered connected.
func (g *Graph) Connected() bool {
	if len(g.adj) == 0 {
		return true
	}
	var start int
	for v := range g.adj {
		start = v
		break
	}
	seen := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return len(seen) == len(g.adj)
}

// Components returns the connected components of g as sorted vertex
// slices, ordered by their smallest vertex.
func (g *Graph) Components() [][]int {
	seen := make(map[int]bool, len(g.adj))
	var comps [][]int
	for _, start := range g.Vertices() {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Equal reports whether g and h have identical vertex sets and edges
// (weights and labels included). This is structural equality of the
// representation, not isomorphism.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumVertices() != h.NumVertices() || g.NumEdges() != h.NumEdges() {
		return false
	}
	for v := range g.adj {
		if !h.HasVertex(v) {
			return false
		}
	}
	for u, nbrs := range g.adj {
		for v, e := range nbrs {
			if u < v {
				he, ok := h.EdgeBetween(u, v)
				if !ok || he != e {
					return false
				}
			}
		}
	}
	return true
}

// DOT renders g in Graphviz DOT format with edge weights as labels.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	for _, v := range g.Vertices() {
		fmt.Fprintf(&b, "  %d;\n", v)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %d -- %d [label=%q];\n", e.U, e.V, fmt.Sprintf("%g", e.Weight))
	}
	b.WriteString("}\n")
	return b.String()
}

// String returns a compact human-readable description of g.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{V=%d E=%d W=%g}", g.NumVertices(), g.NumEdges(), g.TotalWeight())
}
