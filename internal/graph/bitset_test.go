package graph

import (
	"math/rand"
	"testing"
)

func TestBitsetBasicOps(t *testing.T) {
	b := NewBitset(130)
	if b.Any() || b.Count() != 0 {
		t.Fatalf("new bitset not empty: count=%d", b.Count())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 129} {
		b.Set(i)
		if !b.Has(i) {
			t.Fatalf("Set(%d) then Has(%d)=false", i, i)
		}
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count=%d want 7", got)
	}
	b.Unset(64)
	if b.Has(64) {
		t.Fatal("Unset(64) left the bit set")
	}
	if b.Has(-1) || b.Has(1000) {
		t.Fatal("out-of-range Has must report false")
	}
	want := []int{0, 1, 63, 65, 127, 129}
	got := b.Members()
	if len(got) != len(want) {
		t.Fatalf("Members=%v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members=%v want %v", got, want)
		}
	}
}

func TestBitsetForEachEarlyStop(t *testing.T) {
	b := NewBitset(10)
	for i := 0; i < 10; i++ {
		b.Set(i)
	}
	var seen []int
	b.ForEach(func(i int) bool {
		seen = append(seen, i)
		return i < 3
	})
	if len(seen) != 4 || seen[3] != 3 {
		t.Fatalf("ForEach visited %v, want [0 1 2 3]", seen)
	}
}

func TestBitsetWordOps(t *testing.T) {
	a, b := NewBitset(100), NewBitset(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	inter := a.Clone()
	inter.And(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 == 0
		if inter.Has(i) != want {
			t.Fatalf("And: bit %d = %v, want %v", i, inter.Has(i), want)
		}
	}
	diff := a.Clone()
	diff.AndNot(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 != 0
		if diff.Has(i) != want {
			t.Fatalf("AndNot: bit %d = %v, want %v", i, diff.Has(i), want)
		}
	}
	uni := a.Clone()
	uni.Or(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 || i%3 == 0
		if uni.Has(i) != want {
			t.Fatalf("Or: bit %d = %v, want %v", i, uni.Has(i), want)
		}
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("Equal(clone) = false")
	}
	if a.Equal(b) {
		t.Fatal("Equal across different sets = true")
	}
	a.Reset()
	if a.Any() {
		t.Fatal("Reset left members")
	}
}

func TestBitsetFill(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		b := NewBitset(130)
		b.Fill(n)
		if got := b.Count(); got != n {
			t.Fatalf("Fill(%d): Count=%d", n, got)
		}
		if n > 0 && (!b.Has(0) || !b.Has(n-1) || b.Has(n)) {
			t.Fatalf("Fill(%d): wrong boundary bits", n)
		}
	}
}

func TestBitsetStringCanonical(t *testing.T) {
	a, b := NewBitset(70), NewBitset(70)
	a.Set(1)
	a.Set(69)
	b.Set(69)
	b.Set(1)
	if a.String() != b.String() {
		t.Fatalf("same members, different strings: %q vs %q", a.String(), b.String())
	}
	b.Unset(69)
	if a.String() == b.String() {
		t.Fatal("different members, same string")
	}
	if len(a.String()) != 2*16 {
		t.Fatalf("string length %d, want fixed-width 32", len(a.String()))
	}
}

func TestVertexBitsetSparseIDs(t *testing.T) {
	g := New()
	g.AddVertex(0)
	g.AddVertex(7)
	g.AddVertex(70)
	b := g.VertexBitset()
	if b.Count() != 3 || !b.Has(0) || !b.Has(7) || !b.Has(70) {
		t.Fatalf("VertexBitset members=%v", b.Members())
	}
	if got := New().VertexBitset(); got.Any() {
		t.Fatalf("empty graph VertexBitset has members %v", got.Members())
	}
}

// TestCapacitySparseIDs pins the Capacity helper the universe and
// live-view layers size their ID-indexed structures with: it must
// track the maximum vertex ID, not the vertex count, and survive
// removal of the maximum.
func TestCapacitySparseIDs(t *testing.T) {
	g := New()
	if got := Capacity(g); got != 0 {
		t.Fatalf("empty graph capacity = %d, want 0", got)
	}
	g.AddVertex(3)
	g.AddVertex(130)
	g.AddVertex(64)
	if got := Capacity(g); got != 131 {
		t.Fatalf("capacity = %d, want 131 (max ID + 1, not count)", got)
	}
	g.RemoveVertex(130)
	if got := Capacity(g); got != 65 {
		t.Fatalf("capacity after removing max = %d, want 65", got)
	}
	if b := g.VertexBitset(); len(b) != (65+63)/64 || !b.Has(64) || !b.Has(3) {
		t.Fatalf("VertexBitset inconsistent with capacity: words=%d members=%v", len(b), b.Members())
	}
}

func TestFingerprintDistinguishesStructure(t *testing.T) {
	g := New()
	g.MustAddEdge(0, 1, 25, 2)
	g.MustAddEdge(1, 2, 50, 3)

	same := New()
	same.MustAddEdge(1, 2, 50, 3)
	same.MustAddEdge(0, 1, 25, 2)
	if g.Fingerprint() != same.Fingerprint() {
		t.Fatal("equal graphs, different fingerprints")
	}

	weight := g.Clone()
	weight.MustAddEdge(0, 1, 12, 2)
	label := g.Clone()
	label.MustAddEdge(0, 1, 25, 0)
	vertex := g.Clone()
	vertex.AddVertex(9)
	for name, h := range map[string]*Graph{"weight": weight, "label": label, "vertex": vertex} {
		if g.Fingerprint() == h.Fingerprint() {
			t.Fatalf("%s change not reflected in fingerprint", name)
		}
	}
}

func TestIndexMirrorsGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New()
	ids := []int{2, 3, 5, 8, 13, 21, 34}
	for _, v := range ids {
		g.AddVertex(v)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if rng.Intn(2) == 0 {
				g.MustAddEdge(ids[i], ids[j], 1, 0)
			}
		}
	}
	ix := NewIndex(g)
	if ix.Len() != len(ids) {
		t.Fatalf("Len=%d want %d", ix.Len(), len(ids))
	}
	if ix.All().Count() != len(ids) {
		t.Fatalf("All has %d members", ix.All().Count())
	}
	for i, v := range g.Vertices() {
		if ix.Vertex(i) != v {
			t.Fatalf("Vertex(%d)=%d want %d (ascending order)", i, ix.Vertex(i), v)
		}
		p, ok := ix.PosOf(v)
		if !ok || p != i {
			t.Fatalf("PosOf(%d)=(%d,%v) want (%d,true)", v, p, ok, i)
		}
		if ix.Degree(i) != g.Degree(v) {
			t.Fatalf("Degree(%d)=%d want %d", i, ix.Degree(i), g.Degree(v))
		}
		for j, u := range g.Vertices() {
			if ix.Adj(i).Has(j) != g.HasEdge(v, u) {
				t.Fatalf("Adj mismatch between %d and %d", v, u)
			}
		}
	}
	if _, ok := ix.PosOf(99); ok {
		t.Fatal("PosOf(absent) = ok")
	}
	if ix.NewSet().Any() {
		t.Fatal("NewSet not empty")
	}
}
