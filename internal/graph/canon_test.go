package graph

import (
	"math/rand"
	"testing"
)

// ring builds a k-cycle over the given vertex sequence.
func ring(order []int) *Graph {
	g := New()
	for i, v := range order {
		g.MustAddEdge(v, order[(i+1)%len(order)], 1, 0)
	}
	return g
}

func TestCanonicalFormSharedAcrossIsomorphicBuilds(t *testing.T) {
	// The same 4-cycle assembled in different vertex orders: 0-1-2-3-0
	// versus 0-2-1-3-0 (structurally different edge sets, isomorphic).
	a := ring([]int{0, 1, 2, 3})
	b := ring([]int{0, 2, 1, 3})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("test premise broken: builds should differ structurally")
	}
	fa, _ := a.CanonicalForm()
	fb, _ := b.CanonicalForm()
	if fa != fb {
		t.Fatalf("isomorphic rings got different canonical forms:\n a: %s\n b: %s", fa, fb)
	}
}

func TestCanonicalFormDistinguishesNonIsomorphic(t *testing.T) {
	cases := map[string]*Graph{}
	cases["ring4"] = ring([]int{0, 1, 2, 3})
	star := New()
	for v := 1; v <= 3; v++ {
		star.MustAddEdge(0, v, 1, 0)
	}
	star.AddVertex(4)
	chain := New()
	for v := 1; v <= 4; v++ {
		chain.MustAddEdge(v-1, v, 1, 0)
	}
	cases["star3+isolated"] = star
	cases["chain5"] = chain
	seen := map[string]string{}
	for name, g := range cases {
		fp, _ := g.CanonicalForm()
		if prev, ok := seen[fp]; ok {
			t.Fatalf("%s and %s share a canonical form", name, prev)
		}
		seen[fp] = name
	}
}

func TestCanonicalFormRespectsWeightsAndLabels(t *testing.T) {
	a := ring([]int{0, 1, 2, 3})
	b := ring([]int{0, 1, 2, 3})
	b.MustAddEdge(0, 1, 2, 0) // overwrite one edge weight
	fa, _ := a.CanonicalForm()
	fb, _ := b.CanonicalForm()
	if fa == fb {
		t.Fatal("weight change must change the canonical form")
	}
	c := ring([]int{0, 1, 2, 3})
	c.MustAddEdge(0, 1, 1, 2) // overwrite one edge label
	fc, _ := c.CanonicalForm()
	if fa == fc {
		t.Fatal("label change must change the canonical form")
	}
}

// isIso verifies that f is an edge-, weight-, and label-preserving
// bijection from g onto h.
func isIso(g, h *Graph, f map[int]int) bool {
	if len(f) != g.NumVertices() || g.NumVertices() != h.NumVertices() || g.NumEdges() != h.NumEdges() {
		return false
	}
	img := map[int]bool{}
	for _, v := range f {
		if !h.HasVertex(v) || img[v] {
			return false
		}
		img[v] = true
	}
	for _, e := range g.Edges() {
		he, ok := h.EdgeBetween(f[e.U], f[e.V])
		if !ok || he.Weight != e.Weight || he.Label != e.Label {
			return false
		}
	}
	return true
}

func TestCanonicalLabelingComposesToIsomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		g := New()
		for v := 0; v < n; v++ {
			g.AddVertex(v)
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(2) == 0 {
					g.MustAddEdge(u, v, float64(1+rng.Intn(3)), rng.Intn(2))
				}
			}
		}
		// h = g relabeled by a random permutation.
		perm := rng.Perm(n)
		h := New()
		for v := 0; v < n; v++ {
			h.AddVertex(perm[v])
		}
		for _, e := range g.Edges() {
			h.MustAddEdge(perm[e.U], perm[e.V], e.Weight, e.Label)
		}
		fg, lg := g.CanonicalForm()
		fh, lh := h.CanonicalForm()
		if fg != fh {
			t.Fatalf("trial %d: relabeled graph got a different canonical form", trial)
		}
		// Compose g's labeling with the inverse of h's: an isomorphism.
		inv := make([]int, n)
		for v, ci := range lh {
			inv[ci] = v
		}
		f := make(map[int]int, n)
		for v, ci := range lg {
			f[v] = inv[ci]
		}
		if !isIso(g, h, f) {
			t.Fatalf("trial %d: composed labelings are not an isomorphism", trial)
		}
	}
}

func TestCanonicalFormLargeGraphFallback(t *testing.T) {
	big := New()
	for v := 0; v < CanonMaxVertices+2; v++ {
		big.MustAddEdge(v, (v+1)%(CanonMaxVertices+2), 1, 0)
	}
	fp, labeling := big.CanonicalForm()
	if fp != "x!"+big.Fingerprint() {
		t.Fatalf("large graph must fall back to the structural fingerprint, got %q", fp)
	}
	for i, v := range big.Vertices() {
		if labeling[v] != i {
			t.Fatalf("fallback labeling must be ascending rank: vertex %d -> %d", v, labeling[v])
		}
	}
}

func TestBitsetSubsetOf(t *testing.T) {
	a := NewBitset(130)
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		a.Set(i)
		b.Set(i)
	}
	b.Set(70)
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊄ a expected")
	}
	// Differing word lengths: members beyond the mask's capacity.
	short := NewBitset(64)
	short.Set(0)
	short.Set(63)
	if !short.SubsetOf(a) {
		t.Fatal("short ⊆ a expected")
	}
	if a.SubsetOf(short) {
		t.Fatal("a has members beyond short's capacity")
	}
	aLow := NewBitset(130)
	aLow.Set(0)
	aLow.Set(63)
	if !aLow.SubsetOf(short) {
		t.Fatal("low members only: aLow ⊆ short expected")
	}
}
