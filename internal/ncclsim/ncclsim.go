// Package ncclsim simulates NCCL-style ring all-reduce over an
// allocation of GPUs on a hardware topology. It substitutes for the
// NCCL all-reduce microbenchmark the paper runs on a real DGX-1 V100 to
// measure the Effective Bandwidth of an allocation (Sec. 3.4.1).
//
// Mechanism (mirroring NCCL's documented behaviour): the collective
// library builds one or more communication rings over the allocated
// GPUs. A ring's throughput is limited by its slowest link, and
// additional rings can be layered on leftover link capacity. The
// effective (bus) bandwidth of the allocation is the sum of the ring
// bottlenecks. NVLink rings are preferred; the PCIe/host path is a
// shared resource used only when no all-NVLink ring exists.
//
// Simplifications (documented in DESIGN.md): capacities are continuous
// rather than integral channel counts, and link duplex is not modeled.
// Neither affects the property MAPA relies on — effective bandwidth is
// a monotone function of the link-type mix of the allocation.
package ncclsim

import (
	"fmt"
	"sort"

	"mapa/internal/linkmodel"
	"mapa/internal/topology"
)

const (
	// maxRings bounds the greedy ring decomposition; real NCCL builds
	// at most a dozen channels.
	maxRings = 8
	// minBottleneck is the smallest ring bandwidth (GB/s) worth
	// layering; below this NCCL would not add a channel.
	minBottleneck = 1.0
)

// Ring is one communication ring over an allocation.
type Ring struct {
	// Order lists the GPUs in ring order. For a 2-GPU "ring" it has
	// both endpoints.
	Order []int
	// Bottleneck is the ring's limiting bandwidth in GB/s.
	Bottleneck float64
	// BottleneckLink is the link type of the limiting hop, which
	// controls how fast the ring saturates with message size.
	BottleneckLink topology.LinkType
	// UsesPCIe marks rings that traverse the shared host path.
	UsesPCIe bool
}

// Result is a ring decomposition of an allocation.
type Result struct {
	Rings []Ring
	// PeakEffBW is the sum of ring bottlenecks in GB/s: the effective
	// bandwidth achieved by saturating transfers.
	PeakEffBW float64
}

// edgeKey identifies an undirected GPU pair.
type edgeKey struct{ u, v int }

func key(u, v int) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// capacityState tracks remaining NVLink capacity per pair plus the
// shared PCIe pool.
type capacityState struct {
	nvlink   map[edgeKey]float64
	nvType   map[edgeKey]topology.LinkType
	pcie     float64
	vertices []int
}

func newCapacityState(top *topology.Topology, gpus []int) *capacityState {
	in := make(map[int]bool, len(gpus))
	for _, g := range gpus {
		if !top.Graph.HasVertex(g) {
			panic(fmt.Sprintf("ncclsim: GPU %d not in topology %s", g, top.Name))
		}
		in[g] = true
	}
	st := &capacityState{
		nvlink: make(map[edgeKey]float64),
		nvType: make(map[edgeKey]topology.LinkType),
		pcie:   topology.LinkPCIe.Bandwidth(),
	}
	st.vertices = append(st.vertices, gpus...)
	sort.Ints(st.vertices)
	for _, e := range top.Physical.Edges() {
		if in[e.U] && in[e.V] && topology.LinkType(e.Label) != topology.LinkPCIe {
			k := key(e.U, e.V)
			st.nvlink[k] = e.Weight
			st.nvType[k] = topology.LinkType(e.Label)
		}
	}
	return st
}

// capacity returns the usable bandwidth between u and v and the link
// type providing it. allowPCIe enables the shared host path fallback.
func (st *capacityState) capacity(u, v int, allowPCIe bool) (float64, topology.LinkType, bool) {
	k := key(u, v)
	if c, ok := st.nvlink[k]; ok && c >= minBottleneck {
		return c, st.nvType[k], true
	}
	if allowPCIe && st.pcie >= minBottleneck {
		return st.pcie, topology.LinkPCIe, true
	}
	return 0, topology.LinkPCIe, false
}

// bestRing finds the Hamiltonian cycle over st.vertices maximizing the
// minimum hop capacity. It returns ok=false when no cycle exists under
// the current capacities.
func (st *capacityState) bestRing(allowPCIe bool) (Ring, bool) {
	vs := st.vertices
	n := len(vs)
	if n < 2 {
		return Ring{}, false
	}
	if n == 2 {
		c, lt, ok := st.capacity(vs[0], vs[1], allowPCIe)
		if !ok {
			return Ring{}, false
		}
		return Ring{
			Order:          []int{vs[0], vs[1]},
			Bottleneck:     c,
			BottleneckLink: lt,
			UsesPCIe:       lt == topology.LinkPCIe,
		}, true
	}

	best := Ring{}
	bestBottleneck := 0.0
	order := make([]int, n)
	used := make([]bool, n)
	order[0] = vs[0]
	used[0] = true

	var rec func(depth int, minCap float64, minType topology.LinkType, pcieUsed bool)
	rec = func(depth int, minCap float64, minType topology.LinkType, pcieUsed bool) {
		if depth == n {
			c, lt, ok := st.capacity(order[n-1], order[0], allowPCIe)
			if !ok {
				return
			}
			b, bt, pu := minCap, minType, pcieUsed
			if c < b {
				b, bt = c, lt
			}
			pu = pu || lt == topology.LinkPCIe
			if b > bestBottleneck {
				bestBottleneck = b
				best = Ring{
					Order:          append([]int(nil), order...),
					Bottleneck:     b,
					BottleneckLink: bt,
					UsesPCIe:       pu,
				}
			}
			return
		}
		for i := 1; i < n; i++ {
			if used[i] {
				continue
			}
			c, lt, ok := st.capacity(order[depth-1], vs[i], allowPCIe)
			if !ok {
				continue
			}
			b, bt := minCap, minType
			if c < b {
				b, bt = c, lt
			}
			if b <= bestBottleneck { // cannot improve; prune
				continue
			}
			used[i] = true
			order[depth] = vs[i]
			rec(depth+1, b, bt, pcieUsed || lt == topology.LinkPCIe)
			used[i] = false
		}
	}
	const inf = 1e18
	rec(1, inf, topology.LinkNVSwitch, false)
	if bestBottleneck < minBottleneck {
		return Ring{}, false
	}
	return best, true
}

// consume subtracts the ring's bottleneck bandwidth from every hop it
// uses; PCIe hops draw from the shared pool once per hop.
func (st *capacityState) consume(r Ring) {
	n := len(r.Order)
	hops := n
	if n == 2 {
		hops = 1
	}
	for i := 0; i < hops; i++ {
		u, v := r.Order[i], r.Order[(i+1)%n]
		k := key(u, v)
		if c, ok := st.nvlink[k]; ok && c >= r.Bottleneck {
			st.nvlink[k] = c - r.Bottleneck
		} else {
			st.pcie -= r.Bottleneck
		}
	}
	if st.pcie < 0 {
		st.pcie = 0
	}
}

// Decompose computes the ring decomposition of an allocation: NVLink
// rings are layered greedily (largest bottleneck first); if no all-
// NVLink ring exists, a single ring using the shared host path is
// built instead.
func Decompose(top *topology.Topology, gpus []int) Result {
	if len(gpus) < 2 {
		return Result{}
	}
	st := newCapacityState(top, gpus)
	var res Result
	for len(res.Rings) < maxRings {
		r, ok := st.bestRing(false)
		if !ok {
			break
		}
		st.consume(r)
		res.Rings = append(res.Rings, r)
		res.PeakEffBW += r.Bottleneck
	}
	if len(res.Rings) == 0 {
		if r, ok := st.bestRing(true); ok {
			st.consume(r)
			res.Rings = append(res.Rings, r)
			res.PeakEffBW += r.Bottleneck
		}
	}
	return res
}

// PeakEffectiveBandwidth returns the saturating-transfer effective
// bandwidth (GB/s) of the allocation: the quantity the paper's
// microbenchmark measures and Eq. 2 predicts.
func PeakEffectiveBandwidth(top *topology.Topology, gpus []int) float64 {
	return Decompose(top, gpus).PeakEffBW
}

// EffectiveBandwidth returns the effective bandwidth (GB/s) achieved by
// all-reducing messages of msgBytes over the allocation, including the
// small-transfer ramp of Fig. 2a.
func EffectiveBandwidth(top *topology.Topology, gpus []int, msgBytes float64) float64 {
	res := Decompose(top, gpus)
	var bw float64
	for _, r := range res.Rings {
		bw += r.Bottleneck * linkmodel.Ramp(r.BottleneckLink, msgBytes)
	}
	return bw
}

// AllReduceTime returns the seconds one ring all-reduce of msgBytes
// takes on the allocation: t = 2(k-1)/k * S / effBW(S), plus per-step
// startup latency. Allocations of fewer than two GPUs take no
// communication time.
func AllReduceTime(top *topology.Topology, gpus []int, msgBytes float64) float64 {
	k := len(gpus)
	if k < 2 || msgBytes <= 0 {
		return 0
	}
	bw := EffectiveBandwidth(top, gpus, msgBytes)
	if bw <= 0 {
		// No usable path even over PCIe; should not happen on complete
		// hardware graphs, but avoid dividing by zero.
		bw = minBottleneck
	}
	steps := float64(2 * (k - 1))
	factor := steps / float64(k)
	return factor*msgBytes/(bw*1e9) + steps*linkmodel.StartupLatency
}

// EdgeCapacities reports the NVLink capacity (GB/s) between every GPU
// pair of the allocation before any rings are built. Primarily a
// debugging and test aid.
func EdgeCapacities(top *topology.Topology, gpus []int) map[[2]int]float64 {
	st := newCapacityState(top, gpus)
	out := make(map[[2]int]float64, len(st.nvlink))
	for k, c := range st.nvlink {
		out[[2]int{k.u, k.v}] = c
	}
	return out
}

// UsedLinks converts a decomposition back to the multiset of hops per
// link type, useful for cross-checking against score.LinkMix.
func UsedLinks(top *topology.Topology, res Result) map[topology.LinkType]int {
	counts := make(map[topology.LinkType]int)
	for _, r := range res.Rings {
		n := len(r.Order)
		hops := n
		if n == 2 {
			hops = 1
		}
		for i := 0; i < hops; i++ {
			u, v := r.Order[i], r.Order[(i+1)%n]
			e, ok := top.Physical.EdgeBetween(u, v)
			if ok {
				counts[topology.LinkType(e.Label)]++
			} else {
				counts[topology.LinkPCIe]++
			}
		}
	}
	return counts
}
