package ncclsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mapa/internal/topology"
)

func TestTwoGPUEffBWMatchesLinkClass(t *testing.T) {
	top := topology.DGXV100()
	cases := []struct {
		gpus []int
		want float64
	}{
		{[]int{0, 4}, 50}, // double NVLink pair (paper's GPUs 1 and 5)
		{[]int{0, 1}, 25}, // single NVLink pair (GPUs 1 and 2)
		{[]int{0, 5}, 12}, // PCIe-only pair (GPUs 1 and 6)
	}
	for _, tc := range cases {
		if got := PeakEffectiveBandwidth(top, tc.gpus); got != tc.want {
			t.Errorf("PeakEffBW(%v) = %g, want %g", tc.gpus, got, tc.want)
		}
	}
}

func TestPCIeRingIsMarked(t *testing.T) {
	top := topology.DGXV100()
	res := Decompose(top, []int{0, 5})
	if len(res.Rings) != 1 || !res.Rings[0].UsesPCIe {
		t.Fatalf("PCIe pair decomposition = %+v", res)
	}
	if res.Rings[0].BottleneckLink != topology.LinkPCIe {
		t.Errorf("bottleneck link = %s", res.Rings[0].BottleneckLink)
	}
}

func TestFullDGXVDoubleAndSingleRings(t *testing.T) {
	// DGX-1V is designed so the 8 double links form one Hamiltonian
	// ring and the 8 single links another; an 8-GPU allocation should
	// find both: 50 + 25 = 75 GB/s.
	top := topology.DGXV100()
	res := Decompose(top, top.GPUs())
	if res.PeakEffBW != 75 {
		t.Fatalf("8-GPU PeakEffBW = %g, want 75 (rings: %+v)", res.PeakEffBW, res.Rings)
	}
	if len(res.Rings) != 2 {
		t.Fatalf("ring count = %d, want 2", len(res.Rings))
	}
	if res.Rings[0].Bottleneck != 50 || res.Rings[1].Bottleneck != 25 {
		t.Errorf("ring bottlenecks = %g, %g", res.Rings[0].Bottleneck, res.Rings[1].Bottleneck)
	}
	for _, r := range res.Rings {
		if r.UsesPCIe {
			t.Error("full-machine rings should be NVLink-only")
		}
	}
}

func TestTriangleBottleneck(t *testing.T) {
	// The paper's ideal 3-GPU allocation {0,2,3} is one single plus two
	// double links; the NVLink triangle bottlenecks at the single: 25.
	top := topology.DGXV100()
	if got := PeakEffectiveBandwidth(top, []int{0, 2, 3}); got != 25 {
		t.Errorf("PeakEffBW({0,2,3}) = %g, want 25", got)
	}
}

func TestFragmentedAllocationFallsBackToPCIe(t *testing.T) {
	// {0,1,4}: 0-1 single, 0-4 double, but 1-4 has no NVLink, so no
	// NVLink-only triangle exists; one host-path ring is built and the
	// bottleneck is PCIe class.
	top := topology.DGXV100()
	res := Decompose(top, []int{0, 1, 4})
	if len(res.Rings) != 1 || !res.Rings[0].UsesPCIe {
		t.Fatalf("fragmented decomposition = %+v", res)
	}
	if res.PeakEffBW != 12 {
		t.Errorf("PeakEffBW = %g, want 12", res.PeakEffBW)
	}
}

func TestBetterAllocationsGetMoreBandwidth(t *testing.T) {
	// The core premise of the paper: allocation choice changes
	// effective bandwidth.
	top := topology.DGXV100()
	good := PeakEffectiveBandwidth(top, []int{0, 2, 3})  // NVLink triangle
	bad := PeakEffectiveBandwidth(top, []int{0, 1, 4})   // fragmented
	worse := PeakEffectiveBandwidth(top, []int{0, 5, 7}) // no NVLink at all
	if !(good > bad && bad >= worse) {
		t.Errorf("ordering violated: good=%g bad=%g worse=%g", good, bad, worse)
	}
}

func TestFourGPUQuad(t *testing.T) {
	// Quad {0,1,2,3}: NVLink-complete. Greedy ring layering achieves
	// two 25 GB/s rings (the 4-cycles must traverse at least one
	// single link or split doubles).
	top := topology.DGXV100()
	got := PeakEffectiveBandwidth(top, []int{0, 1, 2, 3})
	if got < 50 {
		t.Errorf("PeakEffBW(quad) = %g, want >= 50", got)
	}
}

func TestSingleAndEmptyAllocations(t *testing.T) {
	top := topology.DGXV100()
	if got := PeakEffectiveBandwidth(top, []int{3}); got != 0 {
		t.Errorf("1-GPU EffBW = %g, want 0", got)
	}
	if got := PeakEffectiveBandwidth(top, nil); got != 0 {
		t.Errorf("0-GPU EffBW = %g, want 0", got)
	}
	if got := AllReduceTime(top, []int{3}, 1e6); got != 0 {
		t.Errorf("1-GPU AllReduceTime = %g, want 0", got)
	}
}

func TestUnknownGPUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown GPU should panic")
		}
	}()
	PeakEffectiveBandwidth(topology.DGXV100(), []int{0, 42})
}

func TestEffectiveBandwidthRampsWithSize(t *testing.T) {
	// Fig. 2a behaviour at the allocation level.
	top := topology.DGXV100()
	gpus := []int{0, 4}
	small := EffectiveBandwidth(top, gpus, 1e4)
	mid := EffectiveBandwidth(top, gpus, 1e6)
	big := EffectiveBandwidth(top, gpus, 1e9)
	if !(small < mid && mid < big) {
		t.Errorf("ramp violated: %g, %g, %g", small, mid, big)
	}
	if big > PeakEffectiveBandwidth(top, gpus) {
		t.Errorf("sized EffBW %g exceeds peak", big)
	}
	if small > 0.1*big {
		t.Errorf("10 KB messages should be far from peak: %g vs %g", small, big)
	}
}

func TestAllReduceTimeScalesWithBytesAndLinks(t *testing.T) {
	top := topology.DGXV100()
	fast := AllReduceTime(top, []int{0, 4}, 1e8) // double NVLink
	slow := AllReduceTime(top, []int{0, 5}, 1e8) // PCIe
	if fast >= slow {
		t.Errorf("double NVLink all-reduce (%g s) should beat PCIe (%g s)", fast, slow)
	}
	small := AllReduceTime(top, []int{0, 4}, 1e4)
	if small >= fast {
		t.Errorf("smaller message should be faster: %g vs %g", small, fast)
	}
	if AllReduceTime(top, []int{0, 4}, 0) != 0 {
		t.Error("zero bytes should take zero time")
	}
}

func TestSummitSocketAllocation(t *testing.T) {
	top := topology.Summit()
	// In-socket triple: double-NVLink triangle, bottleneck 50. The
	// decomposition should find the 50 ring (and nothing more, since
	// the triangle is exhausted after one layer).
	if got := PeakEffectiveBandwidth(top, []int{0, 1, 2}); got != 50 {
		t.Errorf("Summit socket EffBW = %g, want 50", got)
	}
	// Cross-socket pair only has the X-bus.
	if got := PeakEffectiveBandwidth(top, []int{0, 3}); got != 12 {
		t.Errorf("Summit cross-socket EffBW = %g, want 12", got)
	}
}

func TestTorusRowRing(t *testing.T) {
	top := topology.Torus2D()
	// A full row {0,1,2,3} is a double-NVLink ring: 50, then exhausted.
	if got := PeakEffectiveBandwidth(top, []int{0, 1, 2, 3}); got != 50 {
		t.Errorf("torus row EffBW = %g, want 50", got)
	}
	// A column is a single-NVLink ring: 25.
	if got := PeakEffectiveBandwidth(top, []int{0, 4, 8, 12}); got != 25 {
		t.Errorf("torus column EffBW = %g, want 25", got)
	}
}

func TestEdgeCapacities(t *testing.T) {
	top := topology.DGXV100()
	caps := EdgeCapacities(top, []int{0, 2, 3})
	if len(caps) != 3 {
		t.Fatalf("capacities = %v", caps)
	}
	if caps[[2]int{0, 2}] != 25 || caps[[2]int{0, 3}] != 50 || caps[[2]int{2, 3}] != 50 {
		t.Errorf("capacities = %v", caps)
	}
}

func TestUsedLinksAccounting(t *testing.T) {
	top := topology.DGXV100()
	res := Decompose(top, top.GPUs())
	used := UsedLinks(top, res)
	if used[topology.LinkNVLink2x2] != 8 || used[topology.LinkNVLink2] != 8 {
		t.Errorf("used links = %v", used)
	}
}

// Property: peak effective bandwidth is non-negative, bounded by the
// total allocated NVLink capacity plus the PCIe pool, and rings are
// valid Hamiltonian cycles over the allocation.
func TestDecomposeInvariants(t *testing.T) {
	tops := []*topology.Topology{
		topology.DGXV100(), topology.DGXP100(), topology.Summit(),
		topology.Torus2D(), topology.CubeMesh16(),
	}
	f := func(seed int64, topIdx, kRaw uint8) bool {
		top := tops[int(topIdx)%len(tops)]
		k := int(kRaw%5) + 2
		if k > top.NumGPUs() {
			k = top.NumGPUs()
		}
		r := rand.New(rand.NewSource(seed))
		gpus := r.Perm(top.NumGPUs())[:k]
		res := Decompose(top, gpus)
		if res.PeakEffBW < 0 {
			return false
		}
		var capTotal float64
		for _, c := range EdgeCapacities(top, gpus) {
			capTotal += c
		}
		capTotal += topology.LinkPCIe.Bandwidth() * float64(k) // generous PCIe bound
		if res.PeakEffBW > capTotal+1e-9 {
			return false
		}
		for _, ring := range res.Rings {
			if len(ring.Order) != k {
				return false
			}
			seen := make(map[int]bool)
			for _, v := range ring.Order {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
			for _, g := range gpus {
				if !seen[g] {
					return false
				}
			}
			if ring.Bottleneck < minBottleneck {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: effective bandwidth at any size never exceeds peak and is
// monotone in message size.
func TestEffBWRampProperty(t *testing.T) {
	top := topology.DGXV100()
	f := func(seed int64, kRaw uint8, aRaw, bRaw uint32) bool {
		k := int(kRaw%4) + 2
		r := rand.New(rand.NewSource(seed))
		gpus := r.Perm(top.NumGPUs())[:k]
		a, b := float64(aRaw), float64(bRaw)
		if a > b {
			a, b = b, a
		}
		peak := PeakEffectiveBandwidth(top, gpus)
		ea, eb := EffectiveBandwidth(top, gpus, a), EffectiveBandwidth(top, gpus, b)
		return ea <= eb+1e-9 && eb <= peak+1e-9 && ea >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceFactorApproachesTwo(t *testing.T) {
	// The ring all-reduce moves 2(k-1)/k of the data per GPU; check the
	// time formula uses it by comparing 2-GPU and 8-GPU transfers over
	// equivalent bandwidth.
	top := topology.FullyConnected(8, topology.LinkNVLink2x2)
	t2 := AllReduceTime(top, []int{0, 1}, 1e9)
	t8 := AllReduceTime(top, top.GPUs(), 1e9)
	// t ~ 2(k-1)/k / effBW; with layered rings the 8-GPU case has much
	// more bandwidth, but per unit bandwidth the factor ratio is
	// (2*7/8)/(2*1/2) = 1.75. Just check both are sane and positive.
	if t2 <= 0 || t8 <= 0 {
		t.Fatalf("times must be positive: %g, %g", t2, t8)
	}
	if math.IsInf(t8, 0) || math.IsNaN(t8) {
		t.Fatal("invalid time")
	}
}
