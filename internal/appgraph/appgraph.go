// Package appgraph builds application topology graphs: the small
// pattern graphs MAPA mines for (Sec. 3.1, Fig. 8 of the paper).
// Vertices 0..k-1 stand for the accelerators a job requests; edges mark
// inter-accelerator communication. NCCL-backed workloads communicate
// over rings or trees depending on transfer size; other workloads may
// be all-to-all, star, or chain shaped.
package appgraph

import (
	"fmt"
	"strings"

	"mapa/internal/graph"
)

// Shape names an application communication pattern.
type Shape string

const (
	ShapeRing     Shape = "Ring"
	ShapeTree     Shape = "Tree"
	ShapeRingTree Shape = "RingTree" // union of ring and tree (Fig. 8 right)
	ShapeAllToAll Shape = "AllToAll"
	ShapeStar     Shape = "Star"
	ShapeChain    Shape = "Chain"
)

// Shapes lists every supported pattern shape.
func Shapes() []Shape {
	return []Shape{ShapeRing, ShapeTree, ShapeRingTree, ShapeAllToAll, ShapeStar, ShapeChain}
}

// ParseShape parses a shape name case-insensitively.
func ParseShape(s string) (Shape, error) {
	for _, sh := range Shapes() {
		if strings.EqualFold(string(sh), s) {
			return sh, nil
		}
	}
	return "", fmt.Errorf("appgraph: unknown shape %q", s)
}

// appEdge adds an unweighted application edge (weight 1, label 0).
func appEdge(g *graph.Graph, u, v int) { g.MustAddEdge(u, v, 1, 0) }

// Ring returns the k-GPU NCCL ring pattern (Fig. 8 left). k = 1 yields
// a single vertex, k = 2 a single edge.
func Ring(k int) *graph.Graph {
	mustPositive(k)
	g := graph.New()
	if k == 1 {
		g.AddVertex(0)
		return g
	}
	if k == 2 {
		appEdge(g, 0, 1)
		return g
	}
	for v := 0; v < k; v++ {
		appEdge(g, v, (v+1)%k)
	}
	return g
}

// Tree returns the k-GPU NCCL binary-tree pattern (Fig. 8 middle):
// vertex 0 is the root and vertex v's parent is (v-1)/2.
func Tree(k int) *graph.Graph {
	mustPositive(k)
	g := graph.New()
	g.AddVertex(0)
	for v := 1; v < k; v++ {
		appEdge(g, (v-1)/2, v)
	}
	return g
}

// RingTree returns the union of the ring and tree patterns over the
// same k vertices (Fig. 8 right): a workload that uses both collectives
// communicates over both edge sets.
func RingTree(k int) *graph.Graph {
	mustPositive(k)
	g := Ring(k)
	for _, e := range Tree(k).Edges() {
		if !g.HasEdge(e.U, e.V) {
			appEdge(g, e.U, e.V)
		}
	}
	return g
}

// AllToAll returns the fully connected k-GPU pattern, the conservative
// assumption for workloads with implicit communication (Sec. 3.1).
func AllToAll(k int) *graph.Graph {
	mustPositive(k)
	g := graph.New()
	g.AddVertex(0)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			appEdge(g, u, v)
		}
	}
	return g
}

// Star returns the k-GPU parameter-server pattern: vertex 0 talks to
// every other vertex.
func Star(k int) *graph.Graph {
	mustPositive(k)
	g := graph.New()
	g.AddVertex(0)
	for v := 1; v < k; v++ {
		appEdge(g, 0, v)
	}
	return g
}

// Chain returns the k-GPU pipeline-parallel pattern: 0-1-2-...-k-1.
func Chain(k int) *graph.Graph {
	mustPositive(k)
	g := graph.New()
	g.AddVertex(0)
	for v := 1; v < k; v++ {
		appEdge(g, v-1, v)
	}
	return g
}

// Build constructs the pattern of the given shape and size.
func Build(s Shape, k int) (*graph.Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("appgraph: job must request at least 1 GPU, got %d", k)
	}
	switch s {
	case ShapeRing:
		return Ring(k), nil
	case ShapeTree:
		return Tree(k), nil
	case ShapeRingTree:
		return RingTree(k), nil
	case ShapeAllToAll:
		return AllToAll(k), nil
	case ShapeStar:
		return Star(k), nil
	case ShapeChain:
		return Chain(k), nil
	}
	return nil, fmt.Errorf("appgraph: unknown shape %q", s)
}

// AllShapes returns every built-in shape at sizes 2..maxGPUs — the
// canonical warm set for precomputing idle-state match universes.
// Isomorphic duplicates across shapes (e.g. Chain(2) vs Ring(2)) are
// left in; canonical pattern keying collapses them downstream.
func AllShapes(maxGPUs int) []*graph.Graph {
	var out []*graph.Graph
	for _, s := range Shapes() {
		for k := 2; k <= maxGPUs; k++ {
			if p, err := Build(s, k); err == nil {
				out = append(out, p)
			}
		}
	}
	return out
}

// ForCollective mirrors NCCL's protocol selection (Sec. 3.1): large
// transfers all-reduce over rings, small transfers over trees.
func ForCollective(k int, msgBytes float64) *graph.Graph {
	const treeThreshold = 1 << 16 // NCCL switches to trees for small messages
	if msgBytes < treeThreshold {
		return Tree(k)
	}
	return Ring(k)
}

func mustPositive(k int) {
	if k < 1 {
		panic(fmt.Sprintf("appgraph: pattern size must be positive, got %d", k))
	}
}
