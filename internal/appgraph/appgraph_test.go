package appgraph

import (
	"testing"
	"testing/quick"
)

func TestRingStructure(t *testing.T) {
	for _, k := range []int{3, 4, 5, 8} {
		g := Ring(k)
		if g.NumVertices() != k || g.NumEdges() != k {
			t.Errorf("Ring(%d): V=%d E=%d", k, g.NumVertices(), g.NumEdges())
		}
		for _, v := range g.Vertices() {
			if g.Degree(v) != 2 {
				t.Errorf("Ring(%d): vertex %d degree %d", k, v, g.Degree(v))
			}
		}
		if !g.Connected() {
			t.Errorf("Ring(%d) disconnected", k)
		}
	}
}

func TestRingSmallSizes(t *testing.T) {
	if g := Ring(1); g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Error("Ring(1) should be a lone vertex")
	}
	if g := Ring(2); g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Error("Ring(2) should be a single edge")
	}
}

func TestTreeStructure(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 10} {
		g := Tree(k)
		if g.NumVertices() != k || g.NumEdges() != k-1 {
			t.Errorf("Tree(%d): V=%d E=%d", k, g.NumVertices(), g.NumEdges())
		}
		if !g.Connected() {
			t.Errorf("Tree(%d) disconnected", k)
		}
	}
	// Binary: no vertex has more than 3 neighbors (parent + 2 kids).
	g := Tree(15)
	for _, v := range g.Vertices() {
		if g.Degree(v) > 3 {
			t.Errorf("Tree(15): vertex %d degree %d", v, g.Degree(v))
		}
	}
}

func TestRingTreeIsUnion(t *testing.T) {
	k := 6
	g := RingTree(k)
	r, tr := Ring(k), Tree(k)
	for _, e := range r.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("RingTree missing ring edge (%d,%d)", e.U, e.V)
		}
	}
	for _, e := range tr.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("RingTree missing tree edge (%d,%d)", e.U, e.V)
		}
	}
	for _, e := range g.Edges() {
		if !r.HasEdge(e.U, e.V) && !tr.HasEdge(e.U, e.V) {
			t.Errorf("RingTree has extra edge (%d,%d)", e.U, e.V)
		}
	}
}

func TestAllToAllStructure(t *testing.T) {
	g := AllToAll(5)
	if g.NumEdges() != 10 {
		t.Errorf("AllToAll(5) edges = %d", g.NumEdges())
	}
	if g1 := AllToAll(1); g1.NumVertices() != 1 {
		t.Error("AllToAll(1) should be a lone vertex")
	}
}

func TestStarAndChain(t *testing.T) {
	s := Star(5)
	if s.Degree(0) != 4 || s.NumEdges() != 4 {
		t.Errorf("Star(5): degree(0)=%d E=%d", s.Degree(0), s.NumEdges())
	}
	c := Chain(5)
	if c.NumEdges() != 4 || c.Degree(0) != 1 || c.Degree(2) != 2 {
		t.Errorf("Chain(5) malformed")
	}
	if g := Star(1); g.NumVertices() != 1 {
		t.Error("Star(1) should be a lone vertex")
	}
	if g := Chain(1); g.NumVertices() != 1 {
		t.Error("Chain(1) should be a lone vertex")
	}
}

func TestBuildAllShapes(t *testing.T) {
	for _, sh := range Shapes() {
		g, err := Build(sh, 4)
		if err != nil {
			t.Errorf("Build(%s, 4): %v", sh, err)
			continue
		}
		if g.NumVertices() != 4 {
			t.Errorf("Build(%s, 4) has %d vertices", sh, g.NumVertices())
		}
		if !g.Connected() {
			t.Errorf("Build(%s, 4) disconnected", sh)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(ShapeRing, 0); err == nil {
		t.Error("Build with 0 GPUs should error")
	}
	if _, err := Build(Shape("bogus"), 3); err == nil {
		t.Error("Build with unknown shape should error")
	}
}

func TestParseShape(t *testing.T) {
	for _, sh := range Shapes() {
		got, err := ParseShape(string(sh))
		if err != nil || got != sh {
			t.Errorf("ParseShape(%q) = %v, %v", sh, got, err)
		}
	}
	if got, err := ParseShape("ring"); err != nil || got != ShapeRing {
		t.Errorf("case-insensitive parse failed: %v, %v", got, err)
	}
	if _, err := ParseShape("mesh-of-trees"); err == nil {
		t.Error("unknown shape should error")
	}
}

func TestForCollective(t *testing.T) {
	// Small messages → tree, large → ring (NCCL protocol selection).
	small := ForCollective(5, 1<<10)
	if small.NumEdges() != 4 {
		t.Errorf("small-message pattern should be a tree, E=%d", small.NumEdges())
	}
	large := ForCollective(5, 1<<24)
	if large.NumEdges() != 5 {
		t.Errorf("large-message pattern should be a ring, E=%d", large.NumEdges())
	}
}

func TestNonPositivePanics(t *testing.T) {
	builders := []func(){
		func() { Ring(0) }, func() { Tree(0) }, func() { RingTree(-1) },
		func() { AllToAll(0) }, func() { Star(0) }, func() { Chain(0) },
	}
	for i, b := range builders {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("builder %d should panic on non-positive size", i)
				}
			}()
			b()
		}()
	}
}

// Property: every shape at every size 1..8 yields a connected graph on
// vertices 0..k-1.
func TestShapesConnectedProperty(t *testing.T) {
	f := func(shapeIdx, kRaw uint8) bool {
		shapes := Shapes()
		sh := shapes[int(shapeIdx)%len(shapes)]
		k := int(kRaw%8) + 1
		g, err := Build(sh, k)
		if err != nil {
			return false
		}
		if g.NumVertices() != k || !g.Connected() {
			return false
		}
		for _, v := range g.Vertices() {
			if v < 0 || v >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
