package policy

import (
	"fmt"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/matchcache"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// allocString renders the decision fields that must be invariant
// across match-pipeline configurations.
func allocString(a Allocation) string {
	return fmt.Sprintf("gpus=%v agg=%.6f eff=%.6f pres=%.6f", a.GPUs, a.Scores.AggBW, a.Scores.EffBW, a.Scores.PreservedBW)
}

// TestWarmedShapeAllocatesNewStateWithoutSearch is the acceptance
// check for the two-tier pipeline: with a warmed idle-state universe,
// a Preserve decision on a previously-unseen availability state must
// be served by mask filtering — zero calls into the match package's
// backtracking search — and still equal the plain sequential decision.
func TestWarmedShapeAllocatesNewStateWithoutSearch(t *testing.T) {
	top := topology.DGXV100()
	scorer := score.NewScorer(nil)
	pattern := appgraph.Ring(3)

	warmed := NewPreserve(scorer)
	AttachCache(warmed, matchcache.New(top, 0))
	store := matchcache.NewStore(top, 0)
	store.Warm(1, pattern)
	AttachUniverses(warmed, store)

	vanilla := NewPreserve(score.NewScorer(nil))

	for _, busy := range [][]int{{0, 5}, {1, 6}, {2, 3, 7}} {
		avail := top.Graph.Without(busy)
		req := Request{Pattern: pattern, Sensitive: true}

		before := match.Searches()
		got, err := warmed.Allocate(avail, top, req)
		if err != nil {
			t.Fatal(err)
		}
		if after := match.Searches(); after != before {
			t.Fatalf("busy=%v: unseen availability state ran %d searches, want 0 (filter-served)", busy, after-before)
		}
		want, err := vanilla.Allocate(avail, top, req)
		if err != nil {
			t.Fatal(err)
		}
		if allocString(got) != allocString(want) {
			t.Fatalf("busy=%v: filtered decision diverged:\n got %s\nwant %s", busy, allocString(got), allocString(want))
		}
		if !match.IsEmbedding(pattern, avail, got.Match) {
			t.Fatalf("busy=%v: filtered decision returned an invalid embedding", busy)
		}
	}
	if st := store.Stats(); st.FilterServed != 3 {
		t.Fatalf("want 3 filter-served decisions, store stats %+v", st)
	}
}

// TestTruncatedCacheEntryNotServedAcrossBuilds is the regression test
// for cap-truncated entries under canonical keying: a truncated
// candidate list is the enumeration-order prefix of the build that
// filled it, so an isomorphic-but-structurally-different build must
// not be served it — its own sequential prefix differs. With a binding
// cap, the cached decision for the second build must still equal that
// build's plain sequential decision.
func TestTruncatedCacheEntryNotServedAcrossBuilds(t *testing.T) {
	top := topology.DGXV100()
	patA := graph.New()
	patA.MustAddEdge(0, 1, 1, 0)
	patA.MustAddEdge(0, 2, 2, 0)
	patA.MustAddEdge(1, 3, 1, 0)
	// The same weighted tree relabeled by 2<->3: isomorphic, different
	// structural fingerprint — and the leaf-ID swap flips the match
	// order's tie-break, so B's enumeration emits classes in a
	// genuinely different order than A's.
	patB := graph.New()
	patB.MustAddEdge(0, 1, 1, 0)
	patB.MustAddEdge(0, 3, 2, 0)
	patB.MustAddEdge(1, 2, 1, 0)

	cached := NewPreserve(score.NewScorer(nil))
	SetMaxCandidates(cached, 2)
	AttachCache(cached, matchcache.New(top, 0))
	// Build A fills the (canonical shape, idle mask) view with its own
	// truncated prefix…
	if _, err := cached.Allocate(top.Graph, top, Request{Pattern: patA, Sensitive: true}); err != nil {
		t.Fatal(err)
	}
	// …which must NOT be served to build B.
	got, err := cached.Allocate(top.Graph, top, Request{Pattern: patB, Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	vanilla := NewPreserve(score.NewScorer(nil))
	SetMaxCandidates(vanilla, 2)
	want, err := vanilla.Allocate(top.Graph, top, Request{Pattern: patB, Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if allocString(got) != allocString(want) {
		t.Fatalf("truncated entry leaked across builds:\n got %s\nwant %s", allocString(got), allocString(want))
	}
	if !match.IsEmbedding(patB, top.Graph, got.Match) {
		t.Fatal("cached decision is not a valid embedding of build B")
	}
	// Build A must still hit its own truncated entry afterwards.
	c := CacheOf(cached)
	before := c.Stats()
	if _, err := cached.Allocate(top.Graph, top, Request{Pattern: patA, Sensitive: true}); err != nil {
		t.Fatal(err)
	}
	// (A's entry was replaced by B's; A re-fills, then hits again.)
	if _, err := cached.Allocate(top.Graph, top, Request{Pattern: patA, Sensitive: true}); err != nil {
		t.Fatal(err)
	}
	if after := c.Stats(); after.Hits == before.Hits {
		t.Fatalf("same-build truncated entries must still hit: before %+v after %+v", before, after)
	}
}

// TestStoreOnlyPathMatchesSequential exercises allocateFiltered (a
// universe store without a tier-2 cache): every decision is a cold
// miss served by filtering, and must equal the sequential decision.
func TestStoreOnlyPathMatchesSequential(t *testing.T) {
	top := topology.Torus2D()
	scorer := score.NewScorer(nil)
	pattern := appgraph.Ring(4)

	filtered := NewGreedy(scorer)
	AttachUniverses(filtered, matchcache.NewStore(top, 0))
	vanilla := NewGreedy(score.NewScorer(nil))

	for _, busy := range [][]int{nil, {0, 1}, {3, 7, 11, 15}, {2, 5, 8}} {
		avail := top.Graph.Without(busy)
		req := Request{Pattern: pattern, Sensitive: false}
		got, err := filtered.Allocate(avail, top, req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := vanilla.Allocate(avail, top, req)
		if err != nil {
			t.Fatal(err)
		}
		if allocString(got) != allocString(want) {
			t.Fatalf("busy=%v: store-only decision diverged:\n got %s\nwant %s", busy, allocString(got), allocString(want))
		}
	}
}

// TestIsomorphicRequestSharesPipeline: a structurally different build
// of the same ring must reuse the first build's universe and cached
// views, and still produce the same decision as its own sequential
// enumeration, with a valid embedding in its own vertex IDs.
func TestIsomorphicRequestSharesPipeline(t *testing.T) {
	top := topology.DGXV100()
	scorer := score.NewScorer(nil)
	ringA := appgraph.Ring(4) // 0-1-2-3-0
	ringB := graph.New()      // 0-2-1-3-0
	ringB.MustAddEdge(0, 2, 1, 0)
	ringB.MustAddEdge(2, 1, 1, 0)
	ringB.MustAddEdge(1, 3, 1, 0)
	ringB.MustAddEdge(3, 0, 1, 0)

	p := NewPreserve(scorer)
	cache := matchcache.New(top, 0)
	AttachCache(p, cache)
	store := matchcache.NewStore(top, 0)
	store.Warm(1, ringA)
	AttachUniverses(p, store)

	avail := top.Graph.Without([]int{1})
	// First build fills the (canonical shape, mask) view…
	if _, err := p.Allocate(avail, top, Request{Pattern: ringA, Sensitive: true}); err != nil {
		t.Fatal(err)
	}
	// …and the isomorphic build must hit it: no search, one tier-2 hit.
	before := match.Searches()
	got, err := p.Allocate(avail, top, Request{Pattern: ringB, Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if match.Searches() != before {
		t.Fatal("isomorphic request ran a search despite the shared pipeline")
	}
	if st := cache.Stats(); st.Hits == 0 || st.Shards != 1 {
		t.Fatalf("isomorphic request must hit the shared shard, cache stats %+v", st)
	}
	vanilla := NewPreserve(score.NewScorer(nil))
	want, err := vanilla.Allocate(avail, top, Request{Pattern: ringB, Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if allocString(got) != allocString(want) {
		t.Fatalf("isomorphic decision diverged:\n got %s\nwant %s", allocString(got), allocString(want))
	}
	if !match.IsEmbedding(ringB, avail, got.Match) {
		t.Fatal("isomorphic decision returned an embedding not valid for the requester's pattern")
	}
}
