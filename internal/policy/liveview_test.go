package policy

import (
	"math/rand"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/match"
	"mapa/internal/matchcache"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// TestWarmedShapeChurnServedByLiveViewOnly is the acceptance check for
// the tier-0 live views: with a warmed idle-state universe and a view
// set fed the allocate/release deltas, *every* Preserve decision under
// sustained churn must be served from the delta-maintained candidate
// list — zero backtracking searches (match.Searches) AND zero
// full-universe mask scans (match.Filters) — while remaining
// byte-identical to the plain sequential search trace. The tier-2
// cache is left detached so no decision can hide behind a cache hit.
func TestWarmedShapeChurnServedByLiveViewOnly(t *testing.T) {
	top := topology.DGXA100()
	pattern := appgraph.Ring(3)

	live := NewPreserve(score.NewScorer(nil))
	store := matchcache.NewStore(top, 0)
	store.Warm(1, pattern)
	AttachUniverses(live, store)
	views := store.NewViews()
	AttachViews(live, views)

	vanilla := NewPreserve(score.NewScorer(nil))

	avail := top.Graph.Clone()
	free := func() []int { return avail.Vertices() }
	var leases [][]int
	rng := rand.New(rand.NewSource(7))
	req := Request{Pattern: pattern, Sensitive: true}

	decisions := 0
	for step := 0; step < 120; step++ {
		if len(leases) > 0 && (len(free()) < 3 || rng.Intn(2) == 0) {
			i := rng.Intn(len(leases))
			for _, g := range leases[i] {
				avail.AddVertex(g)
				for _, v := range avail.Vertices() {
					if v != g {
						e, _ := top.Graph.EdgeBetween(g, v)
						avail.MustAddEdge(g, v, e.Weight, e.Label)
					}
				}
			}
			views.Release(leases[i])
			leases[i] = leases[len(leases)-1]
			leases = leases[:len(leases)-1]
			continue
		}
		// The counters are pinned around the live decision alone — the
		// vanilla comparator below legitimately searches.
		searches, filters := match.Searches(), match.Filters()
		got, err := live.Allocate(avail, top, req)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if d := match.Searches() - searches; d != 0 {
			t.Fatalf("step %d: live-view decision ran %d searches, want 0", step, d)
		}
		if d := match.Filters() - filters; d != 0 {
			t.Fatalf("step %d: live-view decision ran %d full-universe scans, want 0", step, d)
		}
		want, err := vanilla.Allocate(avail, top, req)
		if err != nil {
			t.Fatal(err)
		}
		if allocString(got) != allocString(want) {
			t.Fatalf("step %d: live-view decision diverged:\n got %s\nwant %s",
				step, allocString(got), allocString(want))
		}
		if !match.IsEmbedding(pattern, avail, got.Match) {
			t.Fatalf("step %d: live-view decision returned an invalid embedding", step)
		}
		for _, g := range got.GPUs {
			avail.RemoveVertex(g)
		}
		views.Allocate(got.GPUs)
		leases = append(leases, got.GPUs)
		decisions++
	}
	if vs := views.Stats(); decisions == 0 || uint64(decisions) != vs.Served || vs.Rejected != 0 {
		t.Fatalf("%d decisions but view stats %+v — every churn decision must be view-served", decisions, vs)
	}
	if st := store.Stats(); st.FilterServed != 0 {
		t.Fatalf("store filter path served %d decisions, want 0: %+v", st.FilterServed, st)
	}
}
