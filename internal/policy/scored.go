// Table-served selection: the warmed fast path of the MAPA policies.
//
// With a live view (tier 0) and the shape's precomputed score table in
// place, a steady-state decision never materializes a candidate entry
// and never calls score.Scorer dynamically. Eq. 1 (AggBW) and Eq. 2
// (EffBW) are state-independent — pure table lookups — and Eq. 3
// decomposes into the view's delta-maintained state terms plus the
// candidate's static internal-edge constant, O(k) arithmetic:
//
//	PreservedBW(S) = totalFreeWeight − Σ_{g∈S} freeIncidentWeight(g) + internal(S)
//
// Selection exploits how much of each policy's total order is static:
//
//   - Greedy's entire order (AggBW, EffBW, GPU set, key) is
//     state-independent, so its winner is the first LIVE candidate in
//     the precomputed sorted order — no arithmetic at all.
//   - EffBW- and AggBW-primary orders (sensitive Preserve and the
//     ablations) have a static primary: the first live candidate in the
//     primary-sorted order pins the winning score group, and only that
//     group's members need the O(k) Eq. 3 tie-break.
//   - PreservedBW-primary orders (insensitive Preserve) stream an
//     argmax over the live set with O(k) arithmetic per candidate.
//
// Every strategy applies the same total order as the dynamic comparator
// — primary, secondary, lexicographic GPU set, canonical key — so
// decisions are byte-identical to the scoring paths (all link
// bandwidths are integral, making the delta-maintained sums exact).
package policy

import (
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// allocateScored serves the decision from the shape's live view and
// score table. served is false when the view layer cannot answer —
// tables disabled, stream out of sync, incomplete universe, or a
// truncating cap for a foreign build of the shape — and the caller
// falls through to the entry-materializing tiers.
func (p *mapaPolicy) allocateScored(avail *graph.Graph, top *topology.Topology, req Request) (alloc Allocation, err error, served bool) {
	served = p.views.SelectLive(req.Pattern, avail, p.maxCandidates, p.workers,
		func(lv *match.LiveView, bw *match.BandwidthAccounting, tbl *score.Table, order []int, truncated bool) {
			best, ok := p.pickScored(lv, bw, tbl, req, truncated)
			if !ok {
				err = ErrNoAllocation
				return
			}
			alloc = p.scoredAllocation(bw, tbl, order, best)
		})
	return alloc, err, served
}

// pickScored selects the winning universe index among the live
// candidates, dispatching on how static the request's selection order
// is. ok is false when no candidate is live.
func (p *mapaPolicy) pickScored(lv *match.LiveView, bw *match.BandwidthAccounting, tbl *score.Table, req Request, truncated bool) (int, bool) {
	if lv.Len() == 0 {
		return 0, false
	}
	mt := tbl.ForModel(p.scorer.Model)
	if truncated {
		// A binding cap admits only the first maxCandidates live
		// candidates in enumeration order — the exact prefix the entry
		// paths would materialize — so the static orders (which ignore
		// enumeration order) do not apply; stream the capped prefix.
		return p.scoredArgmax(lv, bw, tbl, mt, req, p.maxCandidates), true
	}
	r := p.rank(req)
	switch r[0] {
	case metricAggBW:
		ord := mt.AggOrder()
		if r[1] == metricEffBW {
			// Greedy: AggOrder embodies the full total order, so the
			// first live candidate is the winner outright.
			return firstLive(lv, ord), true
		}
		return p.scoredGroupArgmax(lv, bw, tbl, mt, req, ord, tbl.AggBW), true
	case metricEffBW:
		return p.scoredGroupArgmax(lv, bw, tbl, mt, req, mt.EffOrder(), mt.EffBW), true
	default:
		return p.scoredArgmax(lv, bw, tbl, mt, req, 0), true
	}
}

// firstLive returns the first live candidate in the given order. The
// caller guarantees at least one candidate is live.
func firstLive(lv *match.LiveView, ord []int32) int {
	for _, i := range ord {
		if lv.Live(int(i)) {
			return int(i)
		}
	}
	panic("policy: no live candidate despite non-empty live view")
}

// scoredScores assembles the full score bundle of candidate i from the
// table and the stream's bandwidth accounting.
func scoredScores(bw *match.BandwidthAccounting, tbl *score.Table, mt *score.ModelTable, i int) score.Scores {
	return score.Scores{
		AggBW:       tbl.AggBW(i),
		EffBW:       mt.EffBW(i),
		PreservedBW: bw.PreservedBW(tbl.Internal(i), tbl.GPUs(i)),
		Mix:         tbl.Mix(i),
	}
}

// scoredBeats reports whether candidate j strictly precedes candidate i
// (with score bundle si) in the policy's total order — the exact
// comparator of mapaPolicy.beats over table-derived values.
func (p *mapaPolicy) scoredBeats(bw *match.BandwidthAccounting, tbl *score.Table, mt *score.ModelTable, req Request, i int, si score.Scores, j int) (bool, score.Scores) {
	sj := scoredScores(bw, tbl, mt, j)
	if p.better(req, si, sj) {
		return true, sj
	}
	if p.better(req, sj, si) {
		return false, sj
	}
	if lexLess(tbl.GPUs(j), tbl.GPUs(i)) {
		return true, sj
	}
	if lexLess(tbl.GPUs(i), tbl.GPUs(j)) {
		return false, sj
	}
	u := tbl.Universe()
	return u.Key(j) < u.Key(i), sj
}

// scoredArgmax streams the live candidates in enumeration order —
// truncated to the first max when max > 0, matching the entry paths'
// capped prefix — and returns the argmax under the policy's total
// order, O(k) arithmetic per candidate.
func (p *mapaPolicy) scoredArgmax(lv *match.LiveView, bw *match.BandwidthAccounting, tbl *score.Table, mt *score.ModelTable, req Request, max int) int {
	best := -1
	var bestScores score.Scores
	n := 0
	lv.ForEachLive(func(i int) bool {
		if best < 0 {
			best, bestScores = i, scoredScores(bw, tbl, mt, i)
		} else if wins, si := p.scoredBeats(bw, tbl, mt, req, best, bestScores, i); wins {
			best, bestScores = i, si
		}
		n++
		return max <= 0 || n < max
	})
	return best
}

// scoredGroupArgmax serves a static-primary order: ord is sorted by the
// primary metric descending, so the first live candidate in it pins the
// winning primary value, and the winner is the argmax — under the full
// total order — among the live members of that contiguous equal-primary
// run. Only the run's members pay the O(k) Eq. 3 arithmetic.
func (p *mapaPolicy) scoredGroupArgmax(lv *match.LiveView, bw *match.BandwidthAccounting, tbl *score.Table, mt *score.ModelTable, req Request, ord []int32, primary func(i int) float64) int {
	j0 := 0
	for ; j0 < len(ord); j0++ {
		if lv.Live(int(ord[j0])) {
			break
		}
	}
	if j0 == len(ord) {
		panic("policy: no live candidate despite non-empty live view")
	}
	best := int(ord[j0])
	bestScores := scoredScores(bw, tbl, mt, best)
	v0 := primary(best)
	for j := j0 + 1; j < len(ord) && primary(int(ord[j])) == v0; j++ {
		i := int(ord[j])
		if !lv.Live(i) {
			continue
		}
		if wins, si := p.scoredBeats(bw, tbl, mt, req, best, bestScores, i); wins {
			best, bestScores = i, si
		}
	}
	return best
}

// scoredAllocation packages the winning candidate exactly like
// selectFromEntry: GPU set cloned, match re-expressed through the
// isomorphic order remap when present, scores assembled from the table
// and the view's bandwidth accounting.
func (p *mapaPolicy) scoredAllocation(bw *match.BandwidthAccounting, tbl *score.Table, order []int, best int) Allocation {
	u := tbl.Universe()
	m := u.Match(best)
	if order != nil {
		m = match.Match{Pattern: order, Data: m.Data}
	}
	mt := tbl.ForModel(p.scorer.Model)
	return Allocation{
		GPUs:   append([]int(nil), tbl.GPUs(best)...),
		Match:  m.Clone(),
		Scores: scoredScores(bw, tbl, mt, best),
		key:    u.Key(best),
	}
}
