// Table-served selection: the warmed fast path of the MAPA policies.
//
// With a live view (tier 0) and the shape's precomputed score table in
// place, a steady-state decision never materializes a candidate entry
// and never calls score.Scorer dynamically. Eq. 1 (AggBW) and Eq. 2
// (EffBW) are state-independent — pure table lookups — and Eq. 3
// decomposes into the view's delta-maintained state terms plus the
// candidate's static internal-edge constant, O(k) arithmetic:
//
//	PreservedBW(S) = totalFreeWeight − Σ_{g∈S} freeIncidentWeight(g) + internal(S)
//
// Selection exploits how much of each policy's total order is static:
//
//   - Greedy's entire order (AggBW, EffBW, GPU set, key) is
//     state-independent, so its winner is the first LIVE candidate in
//     the precomputed sorted order — no arithmetic at all.
//   - EffBW- and AggBW-primary orders (sensitive Preserve and the
//     ablations) have a static primary: the first live candidate in the
//     primary-sorted order pins the winning score group — whose extent
//     is precomputed alongside the order (score.ModelTable.AggGroups/
//     EffGroups) — and only that group's live members pay the O(k)
//     Eq. 3 tie-break, with no per-group temporary slices.
//   - PreservedBW-primary orders (insensitive Preserve) stream an
//     argmax over the live bitset with O(k) arithmetic per candidate,
//     resolving the selection order once per decision and computing the
//     secondary metric only on primary ties.
//
// Every strategy applies the same total order as the dynamic comparator
// — primary, secondary, lexicographic GPU set, canonical key — so
// decisions are byte-identical to the scoring paths (all link
// bandwidths are integral, making the delta-maintained sums exact).
//
// The whole path allocates nothing: candidates are table lookups,
// comparisons are plain float/slice reads, and the winner lands in a
// caller-supplied Allocation buffer (AllocateInto) via in-place
// appends. testing.AllocsPerRun gates in decision_alloc_test.go pin 0
// allocs/op for all four policies.
package policy

import (
	"math/bits"

	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// allocateScored serves the decision from the shape's live view and
// score table. served is false when the view layer cannot answer —
// tables disabled, stream out of sync, incomplete universe, or a
// truncating cap for a foreign build of the shape — and the caller
// falls through to the entry-materializing tiers.
func (p *mapaPolicy) allocateScored(avail *graph.Graph, top *topology.Topology, req Request) (alloc Allocation, err error, served bool) {
	err, served = p.allocateScoredInto(&alloc, avail, top, req)
	return alloc, err, served
}

// allocateScoredInto is allocateScored writing the winner into a
// caller-supplied buffer: buf's slices are truncated and refilled in
// place, so a caller reusing one buffer across decisions allocates
// nothing once the slices have grown to the request size.
func (p *mapaPolicy) allocateScoredInto(buf *Allocation, avail *graph.Graph, top *topology.Topology, req Request) (err error, served bool) {
	served = p.views.SelectLive(req.Pattern, avail, p.maxCandidates, p.workers,
		func(lv *match.LiveView, bw *match.BandwidthAccounting, tbl *score.Table, order []int, truncated bool) {
			best, ok := p.pickScored(lv, bw, tbl, req, truncated)
			if !ok {
				err = ErrNoAllocation
				return
			}
			p.scoredAllocationInto(buf, bw, tbl, order, best)
		})
	return err, served
}

// pickScored selects the winning universe index among the live
// candidates, dispatching on how static the request's selection order
// is. ok is false when no candidate is live.
func (p *mapaPolicy) pickScored(lv *match.LiveView, bw *match.BandwidthAccounting, tbl *score.Table, req Request, truncated bool) (int, bool) {
	if lv.Len() == 0 {
		return 0, false
	}
	mt := tbl.ForModel(p.scorer.Model)
	if truncated {
		// A binding cap admits only the first maxCandidates live
		// candidates in enumeration order — the exact prefix the entry
		// paths would materialize — so the static orders (which ignore
		// enumeration order) do not apply; stream the capped prefix.
		return p.scoredArgmax(lv, bw, tbl, mt, req, p.maxCandidates), true
	}
	r := p.rank(req)
	switch r[0] {
	case metricAggBW:
		if r[1] == metricEffBW {
			// Greedy: AggOrder embodies the full total order, so the
			// first live candidate is the winner outright.
			return firstLive(lv, mt.AggOrder()), true
		}
		ord, ends := mt.AggGroups()
		return p.scoredGroupArgmax(lv, bw, tbl, mt, req, ord, ends), true
	case metricEffBW:
		ord, ends := mt.EffGroups()
		return p.scoredGroupArgmax(lv, bw, tbl, mt, req, ord, ends), true
	default:
		return p.scoredArgmax(lv, bw, tbl, mt, req, 0), true
	}
}

// firstLive returns the first live candidate in the given order. The
// caller guarantees at least one candidate is live.
func firstLive(lv *match.LiveView, ord []int32) int {
	for _, i := range ord {
		if lv.Live(int(i)) {
			return int(i)
		}
	}
	panic("policy: no live candidate despite non-empty live view")
}

// scoredScores assembles the full score bundle of candidate i from the
// table and the stream's bandwidth accounting.
func scoredScores(bw *match.BandwidthAccounting, tbl *score.Table, mt *score.ModelTable, i int) score.Scores {
	return score.Scores{
		AggBW:       tbl.AggBW(i),
		EffBW:       mt.EffBW(i),
		PreservedBW: bw.PreservedBW(tbl.Internal(i), tbl.GPUs(i)),
		Mix:         tbl.Mix(i),
	}
}

// scoredMetric evaluates one selection-order dimension of candidate i —
// a table lookup for the static metrics, Eq. 3 delta arithmetic for
// PreservedBW. Direct dispatch on the metric tag keeps the comparison
// loops free of method values and closures (both of which allocate).
func scoredMetric(bw *match.BandwidthAccounting, tbl *score.Table, mt *score.ModelTable, m metric, i int) float64 {
	switch m {
	case metricAggBW:
		return tbl.AggBW(i)
	case metricEffBW:
		return mt.EffBW(i)
	default:
		return bw.PreservedBW(tbl.Internal(i), tbl.GPUs(i))
	}
}

// scoredTieBreak reports whether candidate i strictly precedes the
// current best under the order's static tail: lexicographic GPU set,
// then canonical key. The caller has already established equal primary
// and secondary metrics.
func scoredTieBreak(tbl *score.Table, i, best int) bool {
	gi, gb := tbl.GPUs(i), tbl.GPUs(best)
	if lexLess(gi, gb) {
		return true
	}
	if lexLess(gb, gi) {
		return false
	}
	u := tbl.Universe()
	return u.Key(i) < u.Key(best)
}

// scoredArgmax streams the live candidates in enumeration order —
// truncated to the first max when max > 0, matching the entry paths'
// capped prefix — and returns the argmax under the policy's total
// order. The selection order is resolved once, the live bitset is
// walked word-wise, and each candidate pays one primary-metric
// evaluation; the secondary metric is computed only on primary ties
// (lazily for the incumbent, memoized while it stands). This is the
// profile-guided fix for the insensitive-Preserve outlier: the former
// per-candidate full score assembly and per-comparison rank resolution
// dominated the 2.98 ms group-scan decision.
func (p *mapaPolicy) scoredArgmax(lv *match.LiveView, bw *match.BandwidthAccounting, tbl *score.Table, mt *score.ModelTable, req Request, max int) int {
	r := p.rank(req)
	if r[0] == metricPreservedBW {
		return p.scoredArgmaxPreserved(lv, bw, tbl, mt, r[1], max)
	}
	best := -1
	var bestP, bestS float64
	hasBestS := false
	n := 0
	for wi, w := range lv.LiveSet() {
		base := wi * 64
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			w &= w - 1
			if best < 0 {
				best = i
				bestP = scoredMetric(bw, tbl, mt, r[0], i)
			} else if pi := scoredMetric(bw, tbl, mt, r[0], i); pi > bestP {
				best, bestP, hasBestS = i, pi, false
			} else if pi == bestP {
				if !hasBestS {
					bestS = scoredMetric(bw, tbl, mt, r[1], best)
					hasBestS = true
				}
				si := scoredMetric(bw, tbl, mt, r[1], i)
				if si > bestS || (si == bestS && scoredTieBreak(tbl, i, best)) {
					best, bestS = i, si
				}
			}
			n++
			if max > 0 && n == max {
				return best
			}
		}
	}
	return best
}

// scoredArgmaxPreserved is scoredArgmax specialized for a PreservedBW
// primary — the insensitive-Preserve hot loop over the full ~57k-strong
// live set. Eq. 3 is evaluated inline against the accounting's incident
// view with the exact operand order of BandwidthAccounting.PreservedBW
// (all weights integral, so the sums are exact and the values bit-equal),
// eliminating the per-candidate dispatch and method-call chain the
// generic loop pays. The secondary metric is a static table lookup
// computed only on primary ties.
func (p *mapaPolicy) scoredArgmaxPreserved(lv *match.LiveView, bw *match.BandwidthAccounting, tbl *score.Table, mt *score.ModelTable, sec metric, max int) int {
	inc := bw.IncidentView()
	tot := bw.FreeWeight()
	best := -1
	var bestP, bestS float64
	hasBestS := false
	n := 0
	for wi, w := range lv.LiveSet() {
		base := wi * 64
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			w &= w - 1
			var drop float64
			for _, g := range tbl.GPUs(i) {
				drop += inc[g]
			}
			pi := tot - drop + tbl.Internal(i)
			if pi > bestP || best < 0 {
				best, bestP, hasBestS = i, pi, false
			} else if pi == bestP {
				if !hasBestS {
					bestS = scoredMetric(bw, tbl, mt, sec, best)
					hasBestS = true
				}
				si := scoredMetric(bw, tbl, mt, sec, i)
				if si > bestS || (si == bestS && scoredTieBreak(tbl, i, best)) {
					best, bestS = i, si
				}
			}
			n++
			if max > 0 && n == max {
				return best
			}
		}
	}
	return best
}

// scoredGroupArgmax serves a static-primary order: ord is sorted by the
// primary metric descending with ends its precomputed group-boundary
// index (ends[j] = exclusive end of position j's equal-primary run), so
// the first live candidate pins the winning group and the winner is the
// argmax — under the full total order — among the group's live members.
// Primary values inside the group are exactly equal by construction, so
// only the secondary metric's O(k) arithmetic and the static tie-breaks
// run, over one precomputed index range with no temporary slices.
func (p *mapaPolicy) scoredGroupArgmax(lv *match.LiveView, bw *match.BandwidthAccounting, tbl *score.Table, mt *score.ModelTable, req Request, ord, ends []int32) int {
	j0 := 0
	for ; j0 < len(ord); j0++ {
		if lv.Live(int(ord[j0])) {
			break
		}
	}
	if j0 == len(ord) {
		panic("policy: no live candidate despite non-empty live view")
	}
	r := p.rank(req)
	best := int(ord[j0])
	bestS := scoredMetric(bw, tbl, mt, r[1], best)
	for j := j0 + 1; j < int(ends[j0]); j++ {
		i := int(ord[j])
		if !lv.Live(i) {
			continue
		}
		si := scoredMetric(bw, tbl, mt, r[1], i)
		if si > bestS || (si == bestS && scoredTieBreak(tbl, i, best)) {
			best, bestS = i, si
		}
	}
	return best
}

// scoredAllocation packages the winning candidate exactly like
// selectFromEntry, into a fresh caller-owned Allocation.
func (p *mapaPolicy) scoredAllocation(bw *match.BandwidthAccounting, tbl *score.Table, order []int, best int) Allocation {
	var out Allocation
	p.scoredAllocationInto(&out, bw, tbl, order, best)
	return out
}

// scoredAllocationInto packages the winning candidate into buf by
// truncate-and-append: GPU set, match pattern (re-expressed through the
// isomorphic order remap when present), and match data land in buf's
// reused backing arrays, scores are assembled from the table and the
// view's bandwidth accounting. The values written are identical to
// selectFromEntry's clone-and-return packaging.
func (p *mapaPolicy) scoredAllocationInto(buf *Allocation, bw *match.BandwidthAccounting, tbl *score.Table, order []int, best int) {
	u := tbl.Universe()
	m := u.Match(best)
	pat := m.Pattern
	if order != nil {
		pat = order
	}
	mt := tbl.ForModel(p.scorer.Model)
	buf.GPUs = append(buf.GPUs[:0], tbl.GPUs(best)...)
	buf.Match.Pattern = append(buf.Match.Pattern[:0], pat...)
	buf.Match.Data = append(buf.Match.Data[:0], m.Data...)
	buf.Scores = scoredScores(bw, tbl, mt, best)
	buf.key = u.Key(best)
}
