package policy

import (
	"errors"
	"reflect"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/effbw"
	"mapa/internal/score"
	"mapa/internal/topology"
)

func TestParallelMatchesSequential(t *testing.T) {
	// The parallel scorer must pick exactly the same allocation as the
	// sequential path on every machine, size, and sensitivity.
	for _, topoName := range []string{"dgx-v100", "summit", "torus-2d"} {
		top, err := topology.ByName(topoName)
		if err != nil {
			t.Fatal(err)
		}
		scorer := score.NewScorer(effbw.TrainedFor(top))
		for _, policyName := range []string{"greedy", "preserve"} {
			for k := 2; k <= 4; k++ {
				for _, sensitive := range []bool{true, false} {
					req := Request{Pattern: appgraph.Ring(k), Sensitive: sensitive}

					seq, err := ByName(policyName, scorer)
					if err != nil {
						t.Fatal(err)
					}
					par, err := ByName(policyName, scorer)
					if err != nil {
						t.Fatal(err)
					}
					SetParallelism(par, 4)

					a, err := seq.Allocate(top.Graph, top, req)
					if err != nil {
						t.Fatal(err)
					}
					b, err := par.Allocate(top.Graph, top, req)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(a.GPUs, b.GPUs) {
						t.Errorf("%s/%s k=%d sensitive=%v: sequential %v vs parallel %v",
							topoName, policyName, k, sensitive, a.GPUs, b.GPUs)
					}
				}
			}
		}
	}
}

func TestParallelDeterministicAcrossRuns(t *testing.T) {
	top := topology.DGXV100()
	p := NewPreserve(nil)
	SetParallelism(p, 8)
	req := ringReq(4, true)
	first, err := p.Allocate(top.Graph, top, req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := p.Allocate(top.Graph, top, req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.GPUs, again.GPUs) {
			t.Fatalf("run %d: %v vs %v", i, again.GPUs, first.GPUs)
		}
	}
}

func TestParallelNoAllocation(t *testing.T) {
	top := topology.DGXV100()
	p := NewPreserve(nil)
	SetParallelism(p, 4)
	avail := top.Graph.Without([]int{0, 1, 2, 3, 4, 5, 6})
	if _, err := p.Allocate(avail, top, ringReq(3, true)); !errors.Is(err, ErrNoAllocation) {
		t.Fatalf("err = %v", err)
	}
}

func TestSetParallelismIgnoredByBaselines(t *testing.T) {
	b := NewBaseline(nil)
	ta := NewTopoAware(nil)
	SetParallelism(b, 8) // must not panic or change behaviour
	SetParallelism(ta, 8)
	top := topology.DGXV100()
	if _, err := b.Allocate(top.Graph, top, ringReq(2, true)); err != nil {
		t.Fatal(err)
	}
	if _, err := ta.Allocate(top.Graph, top, ringReq(2, true)); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultParallelismPositive(t *testing.T) {
	if DefaultParallelism() < 1 {
		t.Fatal("DefaultParallelism must be positive")
	}
}

func TestParallelismBelowTwoIsSequential(t *testing.T) {
	top := topology.DGXV100()
	p := NewGreedy(nil)
	SetParallelism(p, 1)
	a, err := p.Allocate(top.Graph, top, ringReq(3, true))
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(p, 0)
	b, err := p.Allocate(top.Graph, top, ringReq(3, true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.GPUs, b.GPUs) {
		t.Fatal("n<2 should behave sequentially")
	}
}
