// Hierarchical fleet selection: the two-level decision path over a
// topology.Fleet's node-symmetric templates.
//
// For a pattern that fits inside one node, the decision runs in two
// levels. The inter-node level (matchcache.FleetViews.SelectNodes)
// ranks candidate nodes over the quotient graph of node classes using
// cheap per-node aggregates — the usable-GPU count prunes nodes that
// cannot host the pattern, and the per-node free-weight aggregate
// yields the exact Eq. 3 translation constant. The intra-node level is
// the ordinary table-served selection (pickScored) against the node's
// shared class template: within one node the fleet-global PreservedBW
// is the node-local value plus a candidate-independent constant, so
// the local argmax IS the global argmax restricted to that node, and
// the local GPU-set tie-break order is the global one (offset addition
// preserves lexicographic order). Node winners are then compared on
// exact fleet-global metric values; ties resolve to the lowest node
// index, which — GPU IDs being node-major — reproduces the flat
// selection order's lexicographic GPU-set tie-break (the documented
// deterministic node-ordering rule).
//
// The node-local placement rule: the hierarchical path considers only
// single-node candidates. For AggBW-primary selection on
// switch-uniform node classes (every intra-node link strictly faster
// than the inter-node PCIe fallback) the best single-node candidate
// strictly dominates every node-spanning one whenever a node can host
// the pattern, so the winner is byte-identical to the flat matcher's —
// pinned by the greedy churn-parity suite. PreservedBW-primary
// selection may flat-prefer spreading an insensitive job across
// drained nodes; at fleet scale the node-local rule is the documented
// placement semantic, and its winners are pinned against a flat-build
// node-local oracle instead.
//
// Like the flat table-served path, a warmed hierarchical decision
// allocates nothing: the sweep reuses the policy's buffers, metric
// reads are table lookups plus O(k) arithmetic, and the winner lands
// in a caller-supplied Allocation via in-place appends
// (decision gates in fleet_alloc_test.go pin 0 allocs/op).
package policy

import (
	"mapa/internal/matchcache"
	"mapa/internal/score"
)

// AttachFleet binds a fleet view set to the policy (nil detaches).
// Policies that do not pattern-match ignore the call.
func AttachFleet(a Allocator, fv *matchcache.FleetViews) {
	if mp, ok := a.(*mapaPolicy); ok {
		mp.fleet = fv
	}
}

// FleetOf returns the policy's attached fleet view set, nil when none.
func FleetOf(a Allocator) *matchcache.FleetViews {
	if mp, ok := a.(*mapaPolicy); ok {
		return mp.fleet
	}
	return nil
}

// AllocateFleetInto runs the hierarchical two-level fleet decision
// into a caller-supplied buffer. served is false when a's policy does
// not support the fleet path or the fleet layer declined (tables
// disabled, incomplete class universe, binding candidate cap) — the
// caller falls back to its flat path. With served true, err is either
// nil (buf holds the winner) or ErrNoAllocation (no node can host the
// pattern; a flat fallback may still find a node-spanning placement).
func AllocateFleetInto(a Allocator, buf *Allocation, req Request) (served bool, err error) {
	mp, ok := a.(*mapaPolicy)
	if !ok {
		return false, nil
	}
	return mp.allocateFleetInto(buf, req)
}

// fleetMetric is scoredMetric translated to fleet-global values: the
// state-independent metrics are already global; PreservedBW gains the
// node's exact translation constant.
func fleetMetric(nd *matchcache.NodeDecision, mt *score.ModelTable, m metric, i int) float64 {
	if m == metricPreservedBW {
		return nd.BW.PreservedBW(nd.Tbl.Internal(i), nd.Tbl.GPUs(i)) + nd.PreservedShift
	}
	return scoredMetric(nd.BW, nd.Tbl, mt, m, i)
}

// allocateFleetInto sweeps the hosting nodes in ascending order,
// running the intra-node table-served selection per node and keeping
// the best node winner under the policy's total order on exact global
// metric values. buf is refilled in place on every improvement, so the
// warmed path allocates nothing.
func (p *mapaPolicy) allocateFleetInto(buf *Allocation, req Request) (served bool, err error) {
	if p.fleet == nil {
		return false, nil
	}
	if req.NumGPUs() < 1 {
		return false, nil
	}
	found := false
	var bestP, bestS float64
	served = p.fleet.SelectNodes(req.Pattern, p.maxCandidates, p.workers,
		func(nd *matchcache.NodeDecision) {
			best, ok := p.pickScored(nd.LV, nd.BW, nd.Tbl, req, false)
			if !ok {
				return
			}
			mt := nd.Tbl.ForModel(p.scorer.Model)
			r := p.rank(req)
			prim := fleetMetric(nd, mt, r[0], best)
			if found && prim < bestP {
				return
			}
			sec := fleetMetric(nd, mt, r[1], best)
			if found && prim == bestP && sec <= bestS {
				// Equal scores resolve to the earliest node: node-major
				// IDs make that the flat lexicographic GPU-set winner.
				return
			}
			found, bestP, bestS = true, prim, sec
			p.fleetAllocationInto(buf, nd, mt, best)
		})
	if !served {
		return false, nil
	}
	if !found {
		return true, ErrNoAllocation
	}
	return true, nil
}

// fleetAllocationInto packages a node winner into buf, translating
// node-local GPU IDs through the node's offset. The GPU set, match
// data, and scores are exactly what the flat table-served packaging
// would produce for the same embedding on the flattened machine; the
// match key stays in template-local IDs (it never leaves the policy).
func (p *mapaPolicy) fleetAllocationInto(buf *Allocation, nd *matchcache.NodeDecision, mt *score.ModelTable, best int) {
	u := nd.Tbl.Universe()
	m := u.Match(best)
	pat := m.Pattern
	if nd.Order != nil {
		pat = nd.Order
	}
	buf.GPUs = buf.GPUs[:0]
	for _, g := range nd.Tbl.GPUs(best) {
		buf.GPUs = append(buf.GPUs, g+nd.Offset)
	}
	buf.Match.Pattern = append(buf.Match.Pattern[:0], pat...)
	buf.Match.Data = buf.Match.Data[:0]
	for _, g := range m.Data {
		buf.Match.Data = append(buf.Match.Data, g+nd.Offset)
	}
	buf.Scores = score.Scores{
		AggBW:       nd.Tbl.AggBW(best),
		EffBW:       mt.EffBW(best),
		PreservedBW: nd.BW.PreservedBW(nd.Tbl.Internal(best), nd.Tbl.GPUs(best)) + nd.PreservedShift,
		Mix:         nd.Tbl.Mix(best),
	}
	buf.key = u.Key(best)
}
