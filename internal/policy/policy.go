// Package policy implements the four allocation policies the paper
// evaluates (Sec. 4) plus ablation variants:
//
//   - Baseline: lowest available GPU IDs, as nvidia-docker assigns.
//   - TopoAware: recursive bi-partitioning (Amaral et al.), packing
//     jobs under one PCIe tree / CPU socket where possible.
//   - Greedy: MAPA pattern matching, selecting the match with maximum
//     Aggregated Bandwidth (Eq. 1).
//   - Preserve: MAPA's Algorithm 1 — bandwidth-sensitive jobs get the
//     match with the highest Predicted Effective Bandwidth (Eq. 2);
//     insensitive jobs get the match preserving the most remaining
//     bandwidth (Eq. 3) for future sensitive jobs.
//
// Policies operate on the *available* hardware graph: the induced
// subgraph of the machine's complete hardware graph over currently
// free GPUs. They return the chosen GPU IDs together with the match
// and scores that justified the choice.
package policy

import (
	"errors"
	"fmt"
	"sort"

	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/matchcache"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// ErrNoAllocation is returned when the request cannot be satisfied on
// the available hardware (not enough free GPUs, or no embedding).
var ErrNoAllocation = errors.New("policy: no feasible allocation")

// Request describes one job's allocation needs.
type Request struct {
	// Pattern is the application communication graph; its vertex count
	// is the number of GPUs requested.
	Pattern *graph.Graph
	// Sensitive is the job's bandwidth-sensitivity annotation
	// (Algorithm 1 input).
	Sensitive bool
}

// NumGPUs returns the GPU count the request asks for.
func (r Request) NumGPUs() int { return r.Pattern.NumVertices() }

// Allocation is a policy decision.
type Allocation struct {
	// GPUs are the chosen device IDs, ascending.
	GPUs []int
	// Match is the pattern embedding behind the choice. Policies that
	// do not pattern-match (Baseline, TopoAware) synthesize an
	// identity-order embedding for reporting.
	Match match.Match
	// Scores are the MAPA metrics of the chosen match.
	Scores score.Scores

	// key is the candidate's canonical match key (vertex set + used
	// edge set). It is the final tie-break of the selection order, so
	// every enumeration strategy — sequential, cached, parallel —
	// resolves equally scored same-GPU candidates identically.
	key string
}

// Allocator is an allocation policy.
type Allocator interface {
	// Name identifies the policy in reports.
	Name() string
	// Allocate chooses GPUs for the request on the available graph.
	// avail must be an induced subgraph of top.Graph over free GPUs.
	Allocate(avail *graph.Graph, top *topology.Topology, req Request) (Allocation, error)
}

// DefaultMaxCandidates bounds how many deduplicated matches a MAPA
// policy scores per decision, protecting against combinatorial blow-up
// on large machines with large jobs (the regime Fig. 19 quantifies).
// Zero means unlimited.
const DefaultMaxCandidates = 250000

func validate(avail *graph.Graph, req Request) error {
	k := req.NumGPUs()
	if k < 1 {
		return fmt.Errorf("policy: request for %d GPUs: %w", k, ErrNoAllocation)
	}
	if k > avail.NumVertices() {
		return ErrNoAllocation
	}
	return nil
}

// identityMatch embeds the pattern onto the chosen GPUs in sorted-ID
// order, the way rank-ordered frameworks map devices when no matcher
// is involved.
func identityMatch(req Request, gpus []int) match.Match {
	pv := req.Pattern.Vertices()
	data := append([]int(nil), gpus...)
	sort.Ints(data)
	return match.Match{Pattern: pv, Data: data}
}

// scoreAllocation evaluates the MAPA metrics for a chosen embedding.
func scoreAllocation(s *score.Scorer, avail *graph.Graph, top *topology.Topology, req Request, m match.Match) Allocation {
	return Allocation{
		GPUs:   m.DataVertices(),
		Match:  m,
		Scores: s.Score(top, req.Pattern, avail, m),
	}
}

// Baseline allocates the lowest free GPU IDs, mirroring default GPU
// assignment in container runtimes.
type Baseline struct {
	scorer *score.Scorer
}

// NewBaseline returns the baseline policy. scorer may be nil (paper
// model) and is used only for reporting scores.
func NewBaseline(s *score.Scorer) *Baseline {
	return &Baseline{scorer: orDefault(s)}
}

func (b *Baseline) Name() string { return "baseline" }

func (b *Baseline) Allocate(avail *graph.Graph, top *topology.Topology, req Request) (Allocation, error) {
	if err := validate(avail, req); err != nil {
		return Allocation{}, err
	}
	gpus := avail.Vertices()[:req.NumGPUs()]
	return scoreAllocation(b.scorer, avail, top, req, identityMatch(req, gpus)), nil
}

// TopoAware implements the recursive bi-partitioning scheduler of
// Amaral et al.: the machine is split into a partition tree (machine →
// sockets → halves → ...); the job goes to the smallest partition that
// still has enough free GPUs, which keeps allocations under one PCIe
// tree when possible.
type TopoAware struct {
	scorer *score.Scorer
}

// NewTopoAware returns the topology-aware baseline policy.
func NewTopoAware(s *score.Scorer) *TopoAware {
	return &TopoAware{scorer: orDefault(s)}
}

func (t *TopoAware) Name() string { return "topo-aware" }

// partitions returns the partition tree of the topology as a list of
// GPU sets, smallest first: recursive halves of each socket, sockets,
// then the whole machine.
func partitions(top *topology.Topology) [][]int {
	var out [][]int
	var split func(set []int)
	split = func(set []int) {
		if len(set) == 0 {
			return
		}
		out = append(out, set)
		if len(set) <= 2 {
			return
		}
		mid := len(set) / 2
		split(set[:mid])
		split(set[mid:])
	}
	sockets := top.SortedSockets()
	if len(sockets) == 0 {
		sockets = [][]int{top.GPUs()}
	}
	for _, s := range sockets {
		split(s)
	}
	out = append(out, top.GPUs())
	sort.Slice(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}

func (t *TopoAware) Allocate(avail *graph.Graph, top *topology.Topology, req Request) (Allocation, error) {
	if err := validate(avail, req); err != nil {
		return Allocation{}, err
	}
	k := req.NumGPUs()
	for _, part := range partitions(top) {
		var free []int
		for _, g := range part {
			if avail.HasVertex(g) {
				free = append(free, g)
			}
		}
		if len(free) >= k {
			sort.Ints(free)
			return scoreAllocation(t.scorer, avail, top, req, identityMatch(req, free[:k])), nil
		}
	}
	// Partition tree always ends with the whole machine, so reaching
	// here means not enough free GPUs anywhere.
	return Allocation{}, ErrNoAllocation
}

// metric identifies one MAPA score dimension inside a policy's
// selection order.
type metric int

const (
	metricAggBW metric = iota
	metricEffBW
	metricPreservedBW
)

// metricOf extracts the named dimension from a score bundle.
func metricOf(s score.Scores, m metric) float64 {
	switch m {
	case metricAggBW:
		return s.AggBW
	case metricEffBW:
		return s.EffBW
	default:
		return s.PreservedBW
	}
}

// mapaPolicy is the shared pattern-match-then-select skeleton of the
// MAPA policies (Fig. 7). rank names the request's selection order —
// primary metric, then secondary — from which both the dynamic
// comparator (better) and the table-served selection derive, so the
// two paths apply one definition of the total order. AggBW and EffBW
// are state-independent (precomputable per candidate at universe build
// time); PreservedBW is the one state-dependent dimension.
type mapaPolicy struct {
	name          string
	scorer        *score.Scorer
	maxCandidates int
	workers       int
	cache         *matchcache.Cache
	store         *matchcache.Store
	views         *matchcache.Views
	fleet         *matchcache.FleetViews
	rank          func(req Request) [2]metric
}

// better reports whether score bundle b strictly precedes a under the
// request's selection order: primary metric descending, then secondary
// metric descending.
func (p *mapaPolicy) better(req Request, a, b score.Scores) bool {
	r := p.rank(req)
	if av, bv := metricOf(a, r[0]), metricOf(b, r[0]); bv != av {
		return bv > av
	}
	return metricOf(b, r[1]) > metricOf(a, r[1])
}

func (p *mapaPolicy) Name() string { return p.name }

func (p *mapaPolicy) Allocate(avail *graph.Graph, top *topology.Topology, req Request) (Allocation, error) {
	if err := validate(avail, req); err != nil {
		return Allocation{}, err
	}
	// Warmed fast path: the shape's live view plus its precomputed
	// score table answer the decision with table lookups and O(k)
	// arithmetic — no entry materialization, no dynamic score
	// evaluations — byte-identical to every path below.
	if p.views.Bound(top) {
		if alloc, err, served := p.allocateScored(avail, top, req); served {
			return alloc, err
		}
	}
	return p.allocateSlow(avail, top, req)
}

// AllocateInto is Allocate writing the decision into a caller-supplied
// buffer: buf's slices are truncated and refilled in place, so a caller
// reusing one buffer across decisions pays zero allocations on the
// table-served fast path (the entry-materializing fallbacks still
// allocate and are copied into buf). On error buf's contents are
// unspecified.
func (p *mapaPolicy) AllocateInto(buf *Allocation, avail *graph.Graph, top *topology.Topology, req Request) error {
	if err := validate(avail, req); err != nil {
		return err
	}
	if p.views.Bound(top) {
		if err, served := p.allocateScoredInto(buf, avail, top, req); served {
			return err
		}
	}
	al, err := p.allocateSlow(avail, top, req)
	if err != nil {
		return err
	}
	*buf = al
	return nil
}

// AllocateInto runs a's decision into a caller-supplied buffer when the
// policy supports buffer reuse (the MAPA policies' table-served path is
// zero-allocation through it), and falls back to Allocate plus a copy
// into buf otherwise. On error buf's contents are unspecified.
func AllocateInto(a Allocator, buf *Allocation, avail *graph.Graph, top *topology.Topology, req Request) error {
	if mp, ok := a.(*mapaPolicy); ok {
		return mp.AllocateInto(buf, avail, top, req)
	}
	al, err := a.Allocate(avail, top, req)
	if err != nil {
		return err
	}
	*buf = al
	return nil
}

// allocateSlow is every decision tier below the table-served fast
// path, in cost order: tier-2 cached entries, tier-0/1 filtered
// entries, parallel enumeration, sequential enumeration.
func (p *mapaPolicy) allocateSlow(avail *graph.Graph, top *topology.Topology, req Request) (Allocation, error) {
	if p.cache.Bound(top) {
		return p.allocateCached(avail, top, req)
	}
	if p.views.Bound(top) || p.store.Bound(top) {
		return p.allocateFiltered(avail, top, req)
	}
	if p.workers > 1 {
		return p.allocateParallel(avail, top, req)
	}
	sr := match.NewSearcher(req.Pattern, avail)
	ky := match.NewKeyer(req.Pattern, sr.Order())
	led := score.BorrowLedger(avail)
	defer led.Recycle()
	seen := make(map[string]bool)
	var best Allocation
	found := false
	candidates := 0
	sr.Enumerate(func(m match.Match) bool {
		key := ky.KeyOf(m)
		if seen[key] {
			return true
		}
		seen[key] = true
		mc := m.Clone()
		cand := Allocation{
			GPUs:   mc.DataVertices(),
			Match:  mc,
			Scores: p.scorer.ScoreLedger(top, req.Pattern, avail, mc, led),
			key:    key,
		}
		if !found || p.beats(req, best, cand) {
			best = cand
			found = true
		}
		candidates++
		return p.maxCandidates == 0 || candidates < p.maxCandidates
	})
	if !found {
		return Allocation{}, ErrNoAllocation
	}
	return best, nil
}

// allocateCached serves the decision from the two-tier pipeline: on a
// tier-2 hit the prior candidate list (and its scores) are reused and
// only the comparator runs. On a miss the list is derived by
// mask-filtering the shape's idle-state universe when one is usable —
// no search at all — and only otherwise enumerated afresh (in parallel
// when workers are configured); either way it is stored for the next
// time this (pattern, free-GPU) state recurs. The selected allocation
// is identical to the sequential path's: every fill strategy
// materializes the sequential candidate prefix and the comparator is a
// strict total order.
func (p *mapaPolicy) allocateCached(avail *graph.Graph, top *topology.Topology, req Request) (Allocation, error) {
	ent, order, ok := p.cache.GetFor(req.Pattern, avail)
	if !ok {
		ent, order = p.cache.PutFor(req.Pattern, avail, p.missEntry(avail, top, req))
	}
	return p.selectFromEntry(ent, order, avail, top, req)
}

// allocateFiltered is the store-without-cache path: every decision is
// a cold miss answered in cost order — from the shape's delta-
// maintained live view when one can serve (tier 0, no universe scan),
// by mask-filtering the idle-state universe otherwise (tier 1), and
// only as a last resort by a fresh enumeration.
func (p *mapaPolicy) allocateFiltered(avail *graph.Graph, top *topology.Topology, req Request) (Allocation, error) {
	if p.views.Bound(top) {
		if ent, order, ok := p.views.Entry(req.Pattern, avail, p.maxCandidates, p.workers); ok {
			return p.selectFromEntry(ent, order, avail, top, req)
		}
	}
	var ent *matchcache.Entry
	var order []int
	ok := false
	if p.store.Bound(top) {
		ent, order, ok = p.store.FilteredEntry(req.Pattern, avail, p.maxCandidates, p.workers)
	}
	if !ok {
		ent, order = p.enumerateEntry(avail, req), nil
	}
	return p.selectFromEntry(ent, order, avail, top, req)
}

// missEntry fills a tier-2 miss in the same cost order as
// allocateFiltered: live view, then universe filter, then enumeration.
// The entry carries its origin pattern's fingerprint, so the cache
// recomputes the order remap on lookups from isomorphic builds.
func (p *mapaPolicy) missEntry(avail *graph.Graph, top *topology.Topology, req Request) *matchcache.Entry {
	if p.views.Bound(top) {
		if ent, _, ok := p.views.Entry(req.Pattern, avail, p.maxCandidates, p.workers); ok {
			return ent
		}
	}
	if p.store.Bound(top) {
		if ent, _, ok := p.store.FilteredEntry(req.Pattern, avail, p.maxCandidates, p.workers); ok {
			return ent
		}
	}
	return p.enumerateEntry(avail, req)
}

// enumerateEntry runs the deduplicated (capped) enumeration — in
// parallel when workers are configured — and packages it as a cache
// entry. Both strategies materialize the exact sequential candidate
// prefix, so entries are byte-identical however they were built. An
// entry that reached the candidate cap is marked truncated: it is a
// prefix of *this* pattern's enumeration order, and the cache must not
// serve it to an isomorphic build that enumerates in a different
// order. (Reaching the cap exactly is conservatively treated as
// truncated.)
func (p *mapaPolicy) enumerateEntry(avail *graph.Graph, req Request) *matchcache.Entry {
	var ms []match.Match
	var keys []string
	if p.workers > 1 {
		ms, keys = match.FindAllDedupedParallelKeys(req.Pattern, avail, p.workers, p.maxCandidates)
	} else {
		ms, keys = match.FindAllDedupedCappedKeys(req.Pattern, avail, p.maxCandidates)
	}
	ent := matchcache.NewEntry(ms, keys)
	if p.maxCandidates > 0 && len(ms) >= p.maxCandidates {
		ent.MarkTruncated()
	}
	return ent
}

// selectFromEntry scores an entry's candidates (reusing cached scores
// when the entry came from the cache) and picks the winner under the
// policy's total order. order, when non-nil, re-expresses the entry's
// matches in the request pattern's vertex IDs — the case where the
// entry was enumerated for an isomorphic-but-not-identical build of
// the shape. The entry's matches are shared; the winning match is
// cloned so the caller owns its Allocation.
func (p *mapaPolicy) selectFromEntry(ent *matchcache.Entry, order []int, avail *graph.Graph, top *topology.Topology, req Request) (Allocation, error) {
	if ent.Len() == 0 {
		return Allocation{}, ErrNoAllocation
	}
	// One pooled bandwidth ledger prices Eq. 3 for the whole fill:
	// candidates share the availability graph, so each one costs O(k²)
	// arithmetic instead of an O(V+E) graph sweep, and the ledger's
	// incident map is recycled across decisions.
	led := score.BorrowLedger(avail)
	defer led.Recycle()
	scores := ent.Scores(p.scorer, p.workers, func(_ int, m match.Match) score.Scores {
		if order != nil {
			m = match.Match{Pattern: order, Data: m.Data}
		}
		return p.scorer.ScoreLedger(top, req.Pattern, avail, m, led)
	})
	best := 0
	for i := 1; i < ent.Len(); i++ {
		a := Allocation{GPUs: ent.GPUs(best), Scores: scores[best], key: ent.Key(best)}
		b := Allocation{GPUs: ent.GPUs(i), Scores: scores[i], key: ent.Key(i)}
		if p.beats(req, a, b) {
			best = i
		}
	}
	m := ent.Matches()[best]
	if order != nil {
		m = match.Match{Pattern: order, Data: m.Data}
	}
	return Allocation{
		GPUs:   append([]int(nil), ent.GPUs(best)...),
		Match:  m.Clone(),
		Scores: scores[best],
		key:    ent.Key(best),
	}, nil
}

// lexLess orders GPU sets for deterministic tie-breaking.
func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// NewGreedy returns MAPA with the Greedy selection policy: maximum
// Aggregated Bandwidth (Eq. 1), ignoring sensitivity. Both selection
// metrics are state-independent, so the table-served path answers
// Greedy decisions from a precomputed selection order alone.
func NewGreedy(s *score.Scorer) Allocator {
	sc := orDefault(s)
	return &mapaPolicy{
		name:          "greedy",
		scorer:        sc,
		maxCandidates: DefaultMaxCandidates,
		rank: func(Request) [2]metric {
			return [2]metric{metricAggBW, metricEffBW}
		},
	}
}

// NewPreserve returns MAPA with the Preserve selection policy
// (Algorithm 1): sensitive jobs maximize Predicted Effective
// Bandwidth; insensitive jobs maximize Preserved Bandwidth.
func NewPreserve(s *score.Scorer) Allocator {
	sc := orDefault(s)
	return &mapaPolicy{
		name:          "preserve",
		scorer:        sc,
		maxCandidates: DefaultMaxCandidates,
		rank: func(req Request) [2]metric {
			if req.Sensitive {
				return [2]metric{metricEffBW, metricPreservedBW}
			}
			return [2]metric{metricPreservedBW, metricEffBW}
		},
	}
}

// NewEffBWOnly returns an ablation policy that maximizes Predicted
// Effective Bandwidth for every job regardless of sensitivity —
// isolating the contribution of the preservation rule.
func NewEffBWOnly(s *score.Scorer) Allocator {
	sc := orDefault(s)
	return &mapaPolicy{
		name:          "effbw-only",
		scorer:        sc,
		maxCandidates: DefaultMaxCandidates,
		rank: func(Request) [2]metric {
			return [2]metric{metricEffBW, metricPreservedBW}
		},
	}
}

// NewPreserveAggBW returns an ablation of Preserve that scores
// sensitive jobs with Aggregated instead of Effective Bandwidth —
// quantifying how much the Eq. 2 model matters (the paper's Fig. 11
// argument).
func NewPreserveAggBW(s *score.Scorer) Allocator {
	sc := orDefault(s)
	return &mapaPolicy{
		name:          "preserve-aggbw",
		scorer:        sc,
		maxCandidates: DefaultMaxCandidates,
		rank: func(req Request) [2]metric {
			if req.Sensitive {
				return [2]metric{metricAggBW, metricPreservedBW}
			}
			return [2]metric{metricPreservedBW, metricAggBW}
		},
	}
}

func orDefault(s *score.Scorer) *score.Scorer {
	if s == nil {
		return score.NewScorer(nil)
	}
	return s
}

// ByName constructs a policy by its report name. A nil scorer uses the
// paper's Table 2 model.
func ByName(name string, s *score.Scorer) (Allocator, error) {
	switch name {
	case "baseline":
		return NewBaseline(s), nil
	case "topo-aware":
		return NewTopoAware(s), nil
	case "greedy":
		return NewGreedy(s), nil
	case "preserve":
		return NewPreserve(s), nil
	case "effbw-only":
		return NewEffBWOnly(s), nil
	case "preserve-aggbw":
		return NewPreserveAggBW(s), nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q", name)
}

// Names lists the policies accepted by ByName; the first four are the
// paper's evaluation set.
func Names() []string {
	return []string{"baseline", "topo-aware", "greedy", "preserve", "effbw-only", "preserve-aggbw"}
}
