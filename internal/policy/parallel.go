package policy

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/topology"
)

// SetParallelism configures a MAPA policy (greedy, preserve, and the
// ablations) to score candidate matches with n worker goroutines.
// The paper notes the scoring stage "is a data parallel problem"
// (Sec. 5.4) whose parallelization reins in the overhead of Fig. 19;
// this is that optimization. n < 2 restores single-threaded scoring.
// Baseline and Topo-aware do not score candidate sets and ignore the
// setting.
//
// The selected allocation is identical to the sequential one whenever
// the candidate cap is not reached (the comparator is a strict total
// order over the full deduplicated candidate set); under the cap, the
// scanned subset may differ run to run.
func SetParallelism(a Allocator, n int) {
	if mp, ok := a.(*mapaPolicy); ok {
		mp.workers = n
	}
}

// DefaultParallelism is a reasonable worker count for parallel
// scoring.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// beats reports whether candidate b strictly precedes candidate a in
// the policy's total order: primary metric first, lexicographic GPU
// set as the final tie-break.
func (p *mapaPolicy) beats(req Request, a, b Allocation) bool {
	if p.better(req, a.Scores, b.Scores) {
		return true
	}
	if p.better(req, b.Scores, a.Scores) {
		return false
	}
	return lexLess(b.GPUs, a.GPUs)
}

// allocateParallel is the worker-pool variant of Allocate: one
// goroutine enumerates raw embeddings; w workers deduplicate (via a
// shared concurrent set), score, and track local bests; a
// deterministic reduction picks the winner. Deduplication and scoring
// — the expensive stages — run in the workers.
func (p *mapaPolicy) allocateParallel(avail *graph.Graph, top *topology.Topology, req Request, w int) (Allocation, error) {
	const batchSize = 256
	work := make(chan []match.Match, 4*w)
	var stop atomic.Bool
	go func() {
		defer close(work)
		batch := make([]match.Match, 0, batchSize)
		match.Enumerate(req.Pattern, avail, func(m match.Match) bool {
			if stop.Load() {
				return false
			}
			batch = append(batch, m.Clone())
			if len(batch) == batchSize {
				work <- batch
				batch = make([]match.Match, 0, batchSize)
			}
			return true
		})
		if len(batch) > 0 {
			work <- batch
		}
	}()

	var (
		seen       sync.Map
		candidates atomic.Int64
	)
	locals := make([]Allocation, w)
	found := make([]bool, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for batch := range work {
				if stop.Load() {
					continue // drain so the producer can exit
				}
				for _, m := range batch {
					key := m.Key(req.Pattern, avail)
					if _, dup := seen.LoadOrStore(key, struct{}{}); dup {
						continue
					}
					cand := scoreAllocation(p.scorer, avail, top, req, m)
					if !found[slot] || p.beats(req, locals[slot], cand) {
						locals[slot] = cand
						found[slot] = true
					}
					if p.maxCandidates > 0 && candidates.Add(1) >= int64(p.maxCandidates) {
						stop.Store(true)
					}
				}
			}
		}(i)
	}
	wg.Wait()

	var best Allocation
	haveBest := false
	for i := 0; i < w; i++ {
		if !found[i] {
			continue
		}
		if !haveBest || p.beats(req, best, locals[i]) {
			best = locals[i]
			haveBest = true
		}
	}
	if !haveBest {
		return Allocation{}, ErrNoAllocation
	}
	return best, nil
}
