package policy

import (
	"runtime"

	"mapa/internal/graph"
	"mapa/internal/matchcache"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// SetParallelism configures a MAPA policy (greedy, preserve, and the
// ablations) to enumerate and score candidate matches with n worker
// goroutines. The paper notes the scoring stage "is a data parallel
// problem" (Sec. 5.4) whose parallelization reins in the overhead of
// Fig. 19; this is that optimization. n < 2 restores single-threaded
// matching. Baseline and Topo-aware do not score candidate sets and
// ignore the setting.
//
// The selected allocation is byte-identical to the sequential one,
// candidate cap included: parallel enumeration materializes the exact
// sequential candidate prefix and the comparator is a strict total
// order over it.
func SetParallelism(a Allocator, n int) {
	if mp, ok := a.(*mapaPolicy); ok {
		mp.workers = n
	}
}

// AttachCache wires an embedding cache into a MAPA policy: decisions
// on a (pattern, free-GPU bitmask) state the cache has seen reuse the
// prior enumeration and scores. The cache must be bound to the
// topology the policy allocates on; it is bypassed for any other
// topology. Baseline and Topo-aware do not enumerate and ignore it.
// Pass nil to detach.
//
// Cached decisions rely on the Allocator.Allocate contract that avail
// is the induced subgraph of top.Graph over the free GPUs: the cache
// key carries only the free vertex set, so callers that hand-craft
// availability graphs with missing or altered links must not attach a
// cache.
func AttachCache(a Allocator, c *matchcache.Cache) {
	if mp, ok := a.(*mapaPolicy); ok {
		mp.cache = c
	}
}

// CacheOf returns the embedding cache attached to a MAPA policy, or
// nil.
func CacheOf(a Allocator) *matchcache.Cache {
	if mp, ok := a.(*mapaPolicy); ok {
		return mp.cache
	}
	return nil
}

// AttachUniverses wires an idle-state universe store (tier 1 of the
// match pipeline) into a MAPA policy: cache misses — and, when no
// cache is attached, every decision — are answered by mask-filtering
// the shape's precomputed idle-machine enumeration instead of running
// a fresh subgraph-isomorphism search. The store must be bound to the
// topology the policy allocates on; it is bypassed for any other
// topology. A store is designed to be shared: engines comparing
// policies on one machine should attach the same store so each shape's
// universe is enumerated once in total. Baseline and Topo-aware do not
// enumerate and ignore it. Pass nil to detach.
//
// Filtering relies on the same Allocator.Allocate contract as the
// cache key: avail must be the induced subgraph of top.Graph over the
// free GPUs.
func AttachUniverses(a Allocator, s *matchcache.Store) {
	if mp, ok := a.(*mapaPolicy); ok {
		mp.store = s
	}
}

// UniversesOf returns the universe store attached to a MAPA policy, or
// nil.
func UniversesOf(a Allocator) *matchcache.Store {
	if mp, ok := a.(*mapaPolicy); ok {
		return mp.store
	}
	return nil
}

// AttachViews wires a live-view set (tier 0 of the match pipeline)
// into a MAPA policy: miss decisions are answered from delta-maintained
// per-shape candidate views before any universe filtering is tried, so
// steady-state decisions for warmed shapes run zero full-universe
// scans. The view set must be bound to the topology the policy
// allocates on and must be fed the exact GPU-set deltas of the
// availability stream the policy decides over (mapa.System and
// sched.Engine publish them); a view set whose stream diverges from
// avail declines to serve and the decision falls back to the filter
// path. Baseline and Topo-aware do not enumerate and ignore it. Pass
// nil to detach.
func AttachViews(a Allocator, v *matchcache.Views) {
	if mp, ok := a.(*mapaPolicy); ok {
		mp.views = v
	}
}

// ViewsOf returns the live-view set attached to a MAPA policy, or nil.
func ViewsOf(a Allocator) *matchcache.Views {
	if mp, ok := a.(*mapaPolicy); ok {
		return mp.views
	}
	return nil
}

// SetScorer swaps the policy's scoring model. Every built-in policy
// carries a scorer (MAPA policies score candidates with it; baseline
// and topo-aware score their fixed pick for reporting), and all of
// them are rebound — a nil scorer restores the default, as ByName
// does. The swap exists for live topology mutation (mapa.System's MIG
// repartitioning retrains the Eq. 2 model for the new virtual machine
// and rebinds it in place); callers must not swap mid-decision.
func SetScorer(a Allocator, s *score.Scorer) {
	switch p := a.(type) {
	case *mapaPolicy:
		p.scorer = orDefault(s)
	case *Baseline:
		p.scorer = orDefault(s)
	case *TopoAware:
		p.scorer = orDefault(s)
	}
}

// SetMaxCandidates overrides how many deduplicated matches a MAPA
// policy scores per decision (DefaultMaxCandidates at construction;
// <= 0 means unlimited). Large multi-node machines need a tighter
// bound: candidate sets grow combinatorially with free GPUs while the
// score separation between good matches does not. Baseline and
// Topo-aware ignore it.
func SetMaxCandidates(a Allocator, n int) {
	if mp, ok := a.(*mapaPolicy); ok {
		if n < 0 {
			n = 0
		}
		mp.maxCandidates = n
	}
}

// DefaultParallelism is a reasonable worker count for parallel
// matching and scoring.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// beats reports whether candidate b strictly precedes candidate a in
// the policy's total order: primary metric first, then lexicographic
// GPU set, then the canonical match key. Distinct deduplicated
// candidates always differ in their keys, so the order is total and
// the selected winner is independent of enumeration strategy.
func (p *mapaPolicy) beats(req Request, a, b Allocation) bool {
	if p.better(req, a.Scores, b.Scores) {
		return true
	}
	if p.better(req, b.Scores, a.Scores) {
		return false
	}
	if lexLess(b.GPUs, a.GPUs) {
		return true
	}
	if lexLess(a.GPUs, b.GPUs) {
		return false
	}
	return b.key < a.key
}

// allocateParallel is the worker-pool variant of Allocate. The search
// is partitioned on the candidates of the first pattern vertex (the
// match.FindAllParallel scheme): workers enumerate and deduplicate
// disjoint subtrees, the in-root-order merge reproduces the exact
// sequential candidate prefix (cap included), and scoring fans out
// over the same pool. Every output field — GPUs, scores, and the
// Match representative — is byte-identical to the sequential path.
func (p *mapaPolicy) allocateParallel(avail *graph.Graph, top *topology.Topology, req Request) (Allocation, error) {
	return p.selectFromEntry(p.enumerateEntry(avail, req), nil, avail, top, req)
}
