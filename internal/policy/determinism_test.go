package policy

import (
	"reflect"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/matchcache"
	"mapa/internal/topology"
)

// TestAllocationMatchRepresentativeDeterministic pins the full
// Allocation — including the Match's exact pattern-to-GPU assignment,
// which rank-placement consumers read — across the sequential,
// parallel, cached, and cached+parallel strategies. Equivalence
// classes with identical GPU sets and scores differ only in their
// representative embedding, so this catches any strategy that claims
// a class at a different raw occurrence than the sequential scan.
func TestAllocationMatchRepresentativeDeterministic(t *testing.T) {
	tops := []*topology.Topology{topology.DGXV100(), topology.Torus2D()}
	for _, top := range tops {
		for _, k := range []int{3, 4} {
			req := Request{Pattern: appgraph.Ring(k), Sensitive: true}
			avail := top.Graph.Without([]int{1})

			seq := NewPreserve(nil)
			ref, err := seq.Allocate(avail, top, req)
			if err != nil {
				t.Fatal(err)
			}

			for name, mk := range map[string]func() Allocator{
				"parallel": func() Allocator {
					p := NewPreserve(nil)
					SetParallelism(p, 4)
					return p
				},
				"cached": func() Allocator {
					p := NewPreserve(nil)
					AttachCache(p, matchcache.New(top, 0))
					return p
				},
				"cached+parallel": func() Allocator {
					p := NewPreserve(nil)
					SetParallelism(p, 4)
					AttachCache(p, matchcache.New(top, 0))
					return p
				},
			} {
				p := mk()
				for rep := 0; rep < 3; rep++ {
					got, err := p.Allocate(avail, top, req)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.GPUs, ref.GPUs) ||
						!reflect.DeepEqual(got.Match.Pattern, ref.Match.Pattern) ||
						!reflect.DeepEqual(got.Match.Data, ref.Match.Data) ||
						got.Scores != ref.Scores {
						t.Fatalf("%s %s Ring(%d) rep %d: allocation diverged from sequential\n seq: %+v\n got: %+v",
							top.Name, name, k, rep, ref, got)
					}
				}
			}
		}
	}
}
