package policy

import (
	"fmt"
	"math/rand"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/matchcache"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// fourPolicies builds the four MAPA selection orders — greedy (fully
// static), preserve (EffBW-primary sensitive / PreservedBW-primary
// insensitive), effbw-only, preserve-aggbw (AggBW-primary sensitive) —
// so together they exercise every table-served selection strategy.
func fourPolicies(s *score.Scorer) map[string]func() Allocator {
	return map[string]func() Allocator{
		"greedy":         func() Allocator { return NewGreedy(s) },
		"preserve":       func() Allocator { return NewPreserve(s) },
		"effbw-only":     func() Allocator { return NewEffBWOnly(s) },
		"preserve-aggbw": func() Allocator { return NewPreserveAggBW(s) },
	}
}

// fullAllocString renders every decision field that must match byte for
// byte across the table-served and dynamic-scoring paths, including the
// representative embedding.
func fullAllocString(a Allocation) string {
	return fmt.Sprintf("gpus=%v agg=%v eff=%v pres=%v mix=%+v match=%v->%v",
		a.GPUs, a.Scores.AggBW, a.Scores.EffBW, a.Scores.PreservedBW, a.Scores.Mix,
		a.Match.Pattern, a.Match.Data)
}

// TestTableServedChurnParityAllPolicies is the acceptance suite for the
// score-annotated universes: on the DGX-A100 and the 72-GPU
// cluster-a100 (multi-word masks, 59,640-class Ring(3) universe), all
// four MAPA selection orders run a seeded allocate/release churn twice
// — once table-served, once with score tables disabled so every
// decision materializes candidates and scores them dynamically — and
// every decision must agree byte for byte while the table-served side
// performs ZERO dynamic score evaluations, zero searches, and zero
// full-universe scans.
func TestTableServedChurnParityAllPolicies(t *testing.T) {
	cases := []struct {
		name              string
		top               *topology.Topology
		steps             int
		freeLow, freeHigh int
	}{
		// The DGX churns across its whole range; the cluster churns in a
		// mostly-busy window so the dynamic-scoring oracle stays
		// tractable while masks straddle the 64-bit word boundary.
		{"dgx-a100", topology.DGXA100(), 120, 3, 8},
		{"cluster-a100", topology.ClusterA100(9), 60, 8, 14},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pattern := appgraph.Ring(3)
			scorer := score.NewScorer(nil)

			// One warmed store per path, shared across the four
			// policies: tables on for the fast side, off for the
			// dynamic-scoring oracle.
			tabledStore := matchcache.NewStore(tc.top, 0)
			tabledStore.Warm(2, pattern)
			dynStore := matchcache.NewStore(tc.top, 0)
			dynStore.SetScoreTables(false)
			dynStore.Warm(2, pattern)

			for name, mk := range fourPolicies(scorer) {
				t.Run(name, func(t *testing.T) {
					fast := mk()
					AttachUniverses(fast, tabledStore)
					fastViews := tabledStore.NewViews()
					AttachViews(fast, fastViews)

					slow := mk()
					AttachUniverses(slow, dynStore)
					slowViews := dynStore.NewViews()
					AttachViews(slow, slowViews)

					rng := rand.New(rand.NewSource(321))
					avail := tc.top.Graph.Clone()
					free := func() []int { return avail.Vertices() }
					release := func(gpus []int) {
						for _, g := range gpus {
							avail.AddVertex(g)
							for _, v := range avail.Vertices() {
								if v != g {
									e, _ := tc.top.Graph.EdgeBetween(g, v)
									avail.MustAddEdge(g, v, e.Weight, e.Label)
								}
							}
						}
						fastViews.Release(gpus)
						slowViews.Release(gpus)
					}
					var leases [][]int
					// Drain into the churn window first.
					for len(free()) > tc.freeHigh {
						k := 1 + rng.Intn(4)
						if len(free())-k < tc.freeLow {
							k = len(free()) - tc.freeLow
						}
						fs := free()
						take := make([]int, 0, k)
						for len(take) < k {
							i := rng.Intn(len(fs))
							take = append(take, fs[i])
							fs[i] = fs[len(fs)-1]
							fs = fs[:len(fs)-1]
						}
						for _, g := range take {
							avail.RemoveVertex(g)
						}
						fastViews.Allocate(take)
						slowViews.Allocate(take)
						leases = append(leases, take)
					}

					decisions := 0
					for step := 0; step < tc.steps; step++ {
						if len(leases) > 0 && (len(free()) < 3 || rng.Intn(2) == 0) {
							i := rng.Intn(len(leases))
							release(leases[i])
							leases[i] = leases[len(leases)-1]
							leases = leases[:len(leases)-1]
							continue
						}
						req := Request{Pattern: pattern, Sensitive: rng.Intn(2) == 0}
						evals, searches, filters := score.Evaluations(), match.Searches(), match.Filters()
						got, err := fast.Allocate(avail, tc.top, req)
						if err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
						if d := score.Evaluations() - evals; d != 0 {
							t.Fatalf("step %d: table-served decision ran %d dynamic score evaluations, want 0", step, d)
						}
						if d := match.Searches() - searches; d != 0 {
							t.Fatalf("step %d: table-served decision ran %d searches, want 0", step, d)
						}
						if d := match.Filters() - filters; d != 0 {
							t.Fatalf("step %d: table-served decision ran %d universe scans, want 0", step, d)
						}
						want, err := slow.Allocate(avail, tc.top, req)
						if err != nil {
							t.Fatal(err)
						}
						if fullAllocString(got) != fullAllocString(want) {
							t.Fatalf("step %d (sensitive=%v): table-served decision diverged from dynamic scoring:\n got %s\nwant %s",
								step, req.Sensitive, fullAllocString(got), fullAllocString(want))
						}
						if !match.IsEmbedding(pattern, avail, got.Match) {
							t.Fatalf("step %d: invalid embedding", step)
						}
						for _, g := range got.GPUs {
							avail.RemoveVertex(g)
						}
						fastViews.Allocate(got.GPUs)
						slowViews.Allocate(got.GPUs)
						leases = append(leases, got.GPUs)
						decisions++
					}
					vs := fastViews.Stats()
					if decisions == 0 || vs.TableServed != uint64(decisions) || vs.TableServed != vs.Served {
						t.Fatalf("%d decisions but fast view stats %+v — every decision must be table-served", decisions, vs)
					}
					if svs := slowViews.Stats(); svs.TableServed != 0 {
						t.Fatalf("dynamic oracle was table-served: %+v", svs)
					}
				})
			}
			if st := tabledStore.Stats(); st.Tables == 0 || st.TableTime <= 0 {
				t.Fatalf("warmed store built no score tables: %+v", st)
			}
			if st := dynStore.Stats(); st.Tables != 0 {
				t.Fatalf("tables-disabled store built score tables: %+v", st)
			}
		})
	}
}

// TestScoredTruncationParity pins the capped regime: with a binding
// candidate cap the table path may only consider the first
// maxCandidates live candidates in enumeration order — the exact prefix
// the entry paths materialize — so the capped streaming argmax must
// match the plain sequential capped decision.
func TestScoredTruncationParity(t *testing.T) {
	top := topology.DGXA100()
	pattern := appgraph.Ring(3)
	store := matchcache.NewStore(top, 0)
	store.Warm(1, pattern)

	fast := NewPreserve(nil)
	SetMaxCandidates(fast, 5)
	AttachUniverses(fast, store)
	views := store.NewViews()
	AttachViews(fast, views)

	vanilla := NewPreserve(nil)
	SetMaxCandidates(vanilla, 5)

	for _, busy := range [][]int{nil, {0}, {1, 6}, {2, 3, 7}} {
		avail := top.Graph.Clone()
		var delta []int
		for _, g := range busy {
			avail.RemoveVertex(g)
			delta = append(delta, g)
		}
		views.Allocate(delta)
		for _, sensitive := range []bool{true, false} {
			req := Request{Pattern: pattern, Sensitive: sensitive}
			got, err := fast.Allocate(avail, top, req)
			if err != nil {
				t.Fatal(err)
			}
			want, err := vanilla.Allocate(avail, top, req)
			if err != nil {
				t.Fatal(err)
			}
			if fullAllocString(got) != fullAllocString(want) {
				t.Fatalf("busy=%v sensitive=%v: capped table decision diverged:\n got %s\nwant %s",
					busy, sensitive, fullAllocString(got), fullAllocString(want))
			}
		}
		views.Release(delta)
	}
	if vs := views.Stats(); vs.TableServed == 0 {
		t.Fatalf("capped same-shape decisions must still be table-served: %+v", vs)
	}
}

// TestScoredIsomorphicBuild: a structurally different build of a warmed
// ring must be table-served through the canonical order remap — and
// with a binding cap it must NOT be served a foreign truncated prefix,
// falling back to paths that enumerate its own order.
func TestScoredIsomorphicBuild(t *testing.T) {
	top := topology.DGXV100()
	ringA := appgraph.Ring(4) // 0-1-2-3-0
	ringB := graph.New()      // 0-2-1-3-0: isomorphic, different fingerprint
	ringB.MustAddEdge(0, 2, 1, 0)
	ringB.MustAddEdge(2, 1, 1, 0)
	ringB.MustAddEdge(1, 3, 1, 0)
	ringB.MustAddEdge(3, 0, 1, 0)

	store := matchcache.NewStore(top, 0)
	store.Warm(1, ringA)
	p := NewPreserve(nil)
	AttachUniverses(p, store)
	views := store.NewViews()
	AttachViews(p, views)

	avail := top.Graph.Clone()
	got, err := p.Allocate(avail, top, Request{Pattern: ringB, Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if vs := views.Stats(); vs.TableServed != 1 {
		t.Fatalf("isomorphic build was not table-served: %+v", vs)
	}
	want, err := NewPreserve(nil).Allocate(avail, top, Request{Pattern: ringB, Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if fullAllocString(got) != fullAllocString(want) {
		t.Fatalf("isomorphic table-served decision diverged:\n got %s\nwant %s",
			fullAllocString(got), fullAllocString(want))
	}
	if !match.IsEmbedding(ringB, avail, got.Match) {
		t.Fatal("table-served embedding not valid in the requester's vertex IDs")
	}

	// With a binding cap, the truncated live prefix belongs to ringA's
	// enumeration order: ringB must be declined by the table path (and
	// every other truncating tier) and still match its own sequential
	// decision.
	capped := NewPreserve(nil)
	SetMaxCandidates(capped, 2)
	AttachUniverses(capped, store)
	cviews := store.NewViews()
	AttachViews(capped, cviews)
	got, err = capped.Allocate(avail, top, Request{Pattern: ringB, Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if vs := cviews.Stats(); vs.TableServed != 0 {
		t.Fatalf("foreign truncated prefix was table-served: %+v", vs)
	}
	cv := NewPreserve(nil)
	SetMaxCandidates(cv, 2)
	want, err = cv.Allocate(avail, top, Request{Pattern: ringB, Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if fullAllocString(got) != fullAllocString(want) {
		t.Fatalf("capped isomorphic decision diverged:\n got %s\nwant %s",
			fullAllocString(got), fullAllocString(want))
	}
}

// TestScoredPathExhaustion: undersized availability is rejected by
// validation before any tier runs — the table path never sees the
// request and its counters stay clean. (An empty live set with k ≤
// free cannot occur on the paper's topologies: their hardware graphs
// are fully connected, so pickScored's no-candidate branch is purely
// defensive.)
func TestScoredPathExhaustion(t *testing.T) {
	top := topology.DGXV100()
	pattern := appgraph.Ring(3)
	store := matchcache.NewStore(top, 0)
	store.Warm(1, pattern)
	p := NewPreserve(nil)
	AttachUniverses(p, store)
	views := store.NewViews()
	AttachViews(p, views)

	avail := top.Graph.Clone()
	busy := []int{0, 1, 2, 3, 4, 5}
	for _, g := range busy {
		avail.RemoveVertex(g)
	}
	views.Allocate(busy)
	if _, err := p.Allocate(avail, top, Request{Pattern: pattern, Sensitive: true}); err == nil {
		t.Fatal("expected ErrNoAllocation with only 2 free GPUs")
	}
	if vs := views.Stats(); vs.Served != 0 || vs.TableServed != 0 {
		t.Fatalf("undersized request must not reach the view tiers: %+v", vs)
	}
}
