package policy

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/score"
	"mapa/internal/topology"
)

func ringReq(k int, sensitive bool) Request {
	return Request{Pattern: appgraph.Ring(k), Sensitive: sensitive}
}

func allPolicies() []Allocator {
	var out []Allocator
	for _, name := range Names() {
		p, err := ByName(name, nil)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name, nil)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := ByName("random", nil); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestBaselinePicksLowestIDs(t *testing.T) {
	top := topology.DGXV100()
	b := NewBaseline(nil)
	alloc, err := b.Allocate(top.Graph, top, ringReq(3, true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(alloc.GPUs, []int{0, 1, 2}) {
		t.Fatalf("baseline chose %v, want lowest IDs", alloc.GPUs)
	}
	// With 0 and 1 gone, it picks the next lowest.
	avail := top.Graph.Without([]int{0, 1})
	alloc, err = b.Allocate(avail, top, ringReq(3, true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(alloc.GPUs, []int{2, 3, 4}) {
		t.Fatalf("baseline chose %v, want {2,3,4}", alloc.GPUs)
	}
}

func TestTopoAwareStaysInSocket(t *testing.T) {
	top := topology.DGXV100()
	ta := NewTopoAware(nil)
	// With GPUs 0..2 busy, a 4-GPU job fits entirely in socket 1
	// {4..7}; baseline would fragment across {3,4,5,6}.
	avail := top.Graph.Without([]int{0, 1, 2})
	alloc, err := ta.Allocate(avail, top, ringReq(4, true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(alloc.GPUs, []int{4, 5, 6, 7}) {
		t.Fatalf("topo-aware chose %v, want socket {4,5,6,7}", alloc.GPUs)
	}
}

func TestTopoAwarePrefersSmallestFittingPartition(t *testing.T) {
	top := topology.DGXV100()
	ta := NewTopoAware(nil)
	// A 2-GPU job on an idle machine should go to a half-socket
	// {0,1}, not spread out.
	alloc, err := ta.Allocate(top.Graph, top, ringReq(2, true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(alloc.GPUs, []int{0, 1}) {
		t.Fatalf("topo-aware chose %v, want {0,1}", alloc.GPUs)
	}
}

func TestTopoAwareSpansWhenNeeded(t *testing.T) {
	top := topology.DGXV100()
	ta := NewTopoAware(nil)
	// 3 free in socket 0, 2 free in socket 1; a 5-GPU job must span.
	avail := top.Graph.Without([]int{3, 6, 7})
	alloc, err := ta.Allocate(avail, top, ringReq(5, true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(alloc.GPUs, []int{0, 1, 2, 4, 5}) {
		t.Fatalf("topo-aware chose %v", alloc.GPUs)
	}
}

func TestGreedyMaximizesAggBW(t *testing.T) {
	top := topology.DGXV100()
	g := NewGreedy(nil)
	alloc, err := g.Allocate(top.Graph, top, ringReq(3, true))
	if err != nil {
		t.Fatal(err)
	}
	// The ideal 3-GPU triangle on an idle DGX-V aggregates 125 GB/s
	// (paper Sec. 2.2); greedy must find one of the equally-best sets.
	if alloc.Scores.AggBW != 125 {
		t.Fatalf("greedy AggBW = %g, want 125 (chose %v)", alloc.Scores.AggBW, alloc.GPUs)
	}
}

func TestPreserveSensitiveMaximizesEffBW(t *testing.T) {
	top := topology.DGXV100()
	p := NewPreserve(nil)
	alloc, err := p.Allocate(top.Graph, top, ringReq(3, true))
	if err != nil {
		t.Fatal(err)
	}
	// Verify no other deduped match predicts higher EffBW.
	s := score.NewScorer(nil)
	req := ringReq(3, true)
	for _, m := range match.FindAllDeduped(req.Pattern, top.Graph) {
		if got := s.EffectiveBandwidth(top, req.Pattern, top.Graph, m); got > alloc.Scores.EffBW+1e-9 {
			t.Fatalf("match %v has EffBW %g > chosen %g", m.DataVertices(), got, alloc.Scores.EffBW)
		}
	}
}

func TestPreserveInsensitiveMaximizesPreserved(t *testing.T) {
	top := topology.DGXV100()
	p := NewPreserve(nil)
	alloc, err := p.Allocate(top.Graph, top, ringReq(3, false))
	if err != nil {
		t.Fatal(err)
	}
	s := score.NewScorer(nil)
	req := ringReq(3, false)
	for _, m := range match.FindAllDeduped(req.Pattern, top.Graph) {
		if got := score.PreservedBandwidth(top.Graph, m.DataVertices()); got > alloc.Scores.PreservedBW+1e-9 {
			t.Fatalf("match %v preserves %g > chosen %g", m.DataVertices(), got, alloc.Scores.PreservedBW)
		}
	}
	_ = s
}

func TestPreserveLeavesRoomForSensitiveJobs(t *testing.T) {
	// The paper's headline mechanism: after an insensitive job,
	// Preserve leaves a better allocation for a following sensitive
	// job than Greedy does.
	top := topology.DGXV100()
	preserve := NewPreserve(nil)
	greedy := NewGreedy(nil)

	insens := ringReq(3, false)
	sens := ringReq(3, true)

	availP := top.Graph.Clone()
	a1, err := preserve.Allocate(availP, top, insens)
	if err != nil {
		t.Fatal(err)
	}
	availP = availP.Without(a1.GPUs)
	p2, err := preserve.Allocate(availP, top, sens)
	if err != nil {
		t.Fatal(err)
	}

	availG := top.Graph.Clone()
	g1, err := greedy.Allocate(availG, top, insens)
	if err != nil {
		t.Fatal(err)
	}
	availG = availG.Without(g1.GPUs)
	g2, err := greedy.Allocate(availG, top, sens)
	if err != nil {
		t.Fatal(err)
	}

	if p2.Scores.EffBW < g2.Scores.EffBW {
		t.Errorf("preserve left sensitive job EffBW %g < greedy's %g",
			p2.Scores.EffBW, g2.Scores.EffBW)
	}
}

func TestAllPoliciesRejectInfeasible(t *testing.T) {
	top := topology.DGXV100()
	for _, p := range allPolicies() {
		// More GPUs than the machine has.
		if _, err := p.Allocate(top.Graph, top, ringReq(9, true)); !errors.Is(err, ErrNoAllocation) {
			t.Errorf("%s: 9-GPU request on 8-GPU machine: err = %v", p.Name(), err)
		}
		// Not enough free GPUs.
		avail := top.Graph.Without([]int{0, 1, 2, 3, 4, 5})
		if _, err := p.Allocate(avail, top, ringReq(3, true)); !errors.Is(err, ErrNoAllocation) {
			t.Errorf("%s: 3-GPU request with 2 free: err = %v", p.Name(), err)
		}
		// Degenerate request.
		empty := Request{Pattern: graph.New()}
		if _, err := p.Allocate(top.Graph, top, empty); !errors.Is(err, ErrNoAllocation) {
			t.Errorf("%s: empty request: err = %v", p.Name(), err)
		}
	}
}

func TestAllPoliciesSatisfyBasicContract(t *testing.T) {
	top := topology.DGXV100()
	for _, p := range allPolicies() {
		for k := 1; k <= 5; k++ {
			for _, sensitive := range []bool{true, false} {
				req := ringReq(k, sensitive)
				alloc, err := p.Allocate(top.Graph, top, req)
				if err != nil {
					t.Errorf("%s k=%d: %v", p.Name(), k, err)
					continue
				}
				if len(alloc.GPUs) != k {
					t.Errorf("%s k=%d: returned %d GPUs", p.Name(), k, len(alloc.GPUs))
				}
				seen := make(map[int]bool)
				for _, g := range alloc.GPUs {
					if seen[g] || !top.Graph.HasVertex(g) {
						t.Errorf("%s k=%d: invalid GPU set %v", p.Name(), k, alloc.GPUs)
					}
					seen[g] = true
				}
				if !match.IsEmbedding(req.Pattern, top.Graph, alloc.Match) {
					t.Errorf("%s k=%d: reported match is not an embedding", p.Name(), k)
				}
			}
		}
	}
}

func TestSingleGPURequests(t *testing.T) {
	top := topology.DGXV100()
	for _, p := range allPolicies() {
		alloc, err := p.Allocate(top.Graph, top, ringReq(1, false))
		if err != nil {
			t.Errorf("%s: 1-GPU request failed: %v", p.Name(), err)
			continue
		}
		if len(alloc.GPUs) != 1 {
			t.Errorf("%s: got %v", p.Name(), alloc.GPUs)
		}
	}
}

func TestMAPAPoliciesHonorNonRingPatterns(t *testing.T) {
	top := topology.DGXV100()
	p := NewPreserve(nil)
	for _, shape := range appgraph.Shapes() {
		g, err := appgraph.Build(shape, 4)
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := p.Allocate(top.Graph, top, Request{Pattern: g, Sensitive: true})
		if err != nil {
			t.Errorf("shape %s: %v", shape, err)
			continue
		}
		if !match.IsEmbedding(g, top.Graph, alloc.Match) {
			t.Errorf("shape %s: invalid embedding", shape)
		}
	}
}

func TestGreedyBeatsBaselineOnFragmentedMachine(t *testing.T) {
	// Make low IDs a bad choice: free set {0, 1, 4, 6, 7} — baseline
	// takes {0,1,4} (AggBW 87), greedy should find something better or
	// equal among free triangles.
	top := topology.DGXV100()
	avail := top.Graph.Without([]int{2, 3, 5})
	b, err := NewBaseline(nil).Allocate(avail, top, ringReq(3, true))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGreedy(nil).Allocate(avail, top, ringReq(3, true))
	if err != nil {
		t.Fatal(err)
	}
	if g.Scores.AggBW < b.Scores.AggBW {
		t.Errorf("greedy AggBW %g < baseline %g", g.Scores.AggBW, b.Scores.AggBW)
	}
	if g.Scores.AggBW <= 87 {
		t.Errorf("greedy should beat the fragmented 87 GB/s, got %g (%v)", g.Scores.AggBW, g.GPUs)
	}
}

// Property: on a random available subgraph, every policy returns
// either ErrNoAllocation or a valid allocation drawn from free GPUs.
func TestPolicyContractProperty(t *testing.T) {
	top := topology.DGXV100()
	policies := allPolicies()
	f := func(seed int64, kRaw, polRaw uint8, sensitive bool) bool {
		r := rand.New(rand.NewSource(seed))
		busyCount := r.Intn(6)
		busy := r.Perm(8)[:busyCount]
		avail := top.Graph.Without(busy)
		k := int(kRaw%5) + 1
		p := policies[int(polRaw)%len(policies)]
		alloc, err := p.Allocate(avail, top, ringReq(k, sensitive))
		if err != nil {
			return errors.Is(err, ErrNoAllocation) && k > avail.NumVertices() || errors.Is(err, ErrNoAllocation)
		}
		if len(alloc.GPUs) != k {
			return false
		}
		for _, g := range alloc.GPUs {
			if !avail.HasVertex(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionsCoverMachine(t *testing.T) {
	for _, name := range topology.Names() {
		top, err := topology.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		parts := partitions(top)
		if len(parts) == 0 {
			t.Fatalf("%s: no partitions", name)
		}
		last := parts[len(parts)-1]
		if len(last) != top.NumGPUs() {
			t.Errorf("%s: largest partition has %d GPUs, want %d", name, len(last), top.NumGPUs())
		}
		for i := 1; i < len(parts); i++ {
			if len(parts[i-1]) > len(parts[i]) {
				t.Errorf("%s: partitions not sorted by size", name)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	// Same inputs must give the same allocation (deterministic
	// tie-breaking).
	top := topology.DGXV100()
	for _, p := range allPolicies() {
		first, err := p.Allocate(top.Graph, top, ringReq(4, true))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			again, err := p.Allocate(top.Graph, top, ringReq(4, true))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first.GPUs, again.GPUs) {
				t.Errorf("%s: nondeterministic: %v vs %v", p.Name(), first.GPUs, again.GPUs)
			}
		}
	}
}
