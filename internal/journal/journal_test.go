package journal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// sampleRecords exercises every kind and every field.
func sampleRecords() []Record {
	return []Record{
		{Kind: KindAllocate, ID: 1, NumGPUs: 2, Shape: "Clique", Sensitive: true,
			Owner: "tenant-a", Deadline: 1_700_000_000_000_000_000, GPUs: []int{3, 5}},
		{Kind: KindAllocate, ID: 2, NumGPUs: 1, Shape: "", GPUs: []int{0}},
		{Kind: KindMark, GPUs: []int{4, 6, 7}},
		{Kind: KindDegrade, U: 2, V: 9, BW: 12.5},
		{Kind: KindRelease, ID: 1, Expired: true, GPUs: []int{3, 5}},
		{Kind: KindRestore, GPUs: []int{4}},
		{Kind: KindRepartition, Slices: []Slice{{GPU: 0, Instances: 7}, {GPU: 3, Instances: 2}}},
		{Kind: KindRenew, ID: 2, Deadline: 1_700_000_001_000_000_000},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for i, want := range sampleRecords() {
		want.Seq = uint64(i + 1)
		payload := appendPayload(nil, &want)
		got, err := decodePayload(payload)
		if err != nil {
			t.Fatalf("record %d (%s): decode: %v", i, want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("record %d (%s): round trip mismatch:\n got  %+v\n want %+v", i, want.Kind, got, want)
		}
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	rec := Record{Seq: 1, Kind: KindAllocate, ID: 1, NumGPUs: 2, Shape: "Ring", Owner: "t", GPUs: []int{1, 2}}
	payload := appendPayload(nil, &rec)
	if _, err := decodePayload(payload[:len(payload)-1]); err == nil {
		t.Error("truncated payload decoded without error")
	}
	if _, err := decodePayload(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Error("payload with trailing byte decoded without error")
	}
	bad := append([]byte(nil), payload...)
	bad[1] = 99 // unknown kind
	if _, err := decodePayload(bad); err == nil {
		t.Error("unknown kind decoded without error")
	}
}

// appendAll writes recs to a fresh journal in dir and closes it.
func appendAll(t *testing.T, dir string, recs []Record, opts Options) {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := range recs {
		if err := j.Append(&recs[i]); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()
	appendAll(t, dir, recs, Options{})

	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j.Close()
	snap, live := j.Recovered()
	if snap != nil {
		t.Errorf("unexpected snapshot: %+v", snap)
	}
	if len(live) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(live), len(recs))
	}
	for i, got := range live {
		want := recs[i]
		want.Seq = uint64(i + 1)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("record %d mismatch:\n got  %+v\n want %+v", i, got, want)
		}
	}
	if j.LastSeq() != uint64(len(recs)) {
		t.Errorf("LastSeq = %d, want %d", j.LastSeq(), len(recs))
	}
}

func TestSnapshotCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	recs := sampleRecords()
	for i := range recs[:4] {
		if err := j.Append(&recs[i]); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	snap := &Snapshot{LSN: 4, Topology: "dgx-a100", Policy: "greedy", NextID: 3,
		Leases: []LeaseState{{ID: 2, GPUs: []int{0}}}}
	if err := j.WriteSnapshot(snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if st := j.Stats(); st.SnapshotLSN != 4 || st.RecordsSinceSnapshot != 0 {
		t.Errorf("post-snapshot stats: %+v", st)
	}
	for i := range recs[4:] {
		if err := j.Append(&recs[4+i]); err != nil {
			t.Fatalf("Append after snapshot: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	gotSnap, live := j2.Recovered()
	if gotSnap == nil || !reflect.DeepEqual(gotSnap, snap) {
		t.Errorf("snapshot mismatch:\n got  %+v\n want %+v", gotSnap, snap)
	}
	if len(live) != len(recs)-4 {
		t.Fatalf("recovered %d live records, want %d", len(live), len(recs)-4)
	}
	if live[0].Seq != 5 {
		t.Errorf("first live seq = %d, want 5", live[0].Seq)
	}
	if j2.LastSeq() != uint64(len(recs)) {
		t.Errorf("LastSeq = %d, want %d", j2.LastSeq(), len(recs))
	}
}

func TestWriteSnapshotRejectsStaleLSN(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	r := Record{Kind: KindMark, GPUs: []int{1}}
	if err := j.Append(&r); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.WriteSnapshot(&Snapshot{LSN: 0}); err == nil {
		t.Error("snapshot at LSN 0 accepted with log at seq 1")
	}
	if err := j.WriteSnapshot(&Snapshot{LSN: 2}); err == nil {
		t.Error("snapshot beyond log end accepted")
	}
}

// TestRecoverAtEveryBytePrefix is the core crash-injection sweep at the
// file level: however many bytes of the wal survive, recovery must
// come back with exactly the fully-framed records and no error.
func TestRecoverAtEveryBytePrefix(t *testing.T) {
	src := t.TempDir()
	recs := sampleRecords()
	appendAll(t, src, recs, Options{})
	data, err := os.ReadFile(filepath.Join(src, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	_, ends, torn, err := ScanFile(filepath.Join(src, "wal"))
	if err != nil || torn {
		t.Fatalf("ScanFile on intact wal: torn=%v err=%v", torn, err)
	}
	if len(ends) != len(recs) {
		t.Fatalf("ScanFile found %d records, want %d", len(ends), len(recs))
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal"), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecs := 0
		for _, end := range ends {
			if int64(cut) >= end {
				wantRecs++
			}
		}
		j, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		_, live := j.Recovered()
		if len(live) != wantRecs {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(live), wantRecs)
		}
		// Open must have truncated the torn tail in place.
		if fi, err := os.Stat(filepath.Join(dir, "wal")); err != nil {
			t.Fatal(err)
		} else if wantRecs > 0 && fi.Size() != ends[wantRecs-1] {
			t.Fatalf("cut=%d: wal is %d bytes after Open, want %d", cut, fi.Size(), ends[wantRecs-1])
		}
		// And appending must continue the sequence without a gap.
		r := Record{Kind: KindRestore, GPUs: []int{0}}
		if err := j.Append(&r); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if r.Seq != uint64(wantRecs+1) {
			t.Fatalf("cut=%d: post-recovery seq = %d, want %d", cut, r.Seq, wantRecs+1)
		}
		j.Close()
	}
}

func TestBitFlipFinalFrameIsTorn(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()
	appendAll(t, dir, recs, Options{})
	path := filepath.Join(dir, "wal")
	data, _ := os.ReadFile(path)
	flip := append([]byte(nil), data...)
	flip[len(flip)-1] ^= 0x40 // damage the last record's payload
	if err := os.WriteFile(path, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with damaged final frame: %v", err)
	}
	defer j.Close()
	_, live := j.Recovered()
	if len(live) != len(recs)-1 {
		t.Errorf("recovered %d records, want %d (final discarded)", len(live), len(recs)-1)
	}
}

func TestBitFlipMidFileIsHardError(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()
	appendAll(t, dir, recs, Options{})
	path := filepath.Join(dir, "wal")
	data, _ := os.ReadFile(path)
	_, ends, _, _ := ScanFile(path)
	// Flip a payload byte of the first record: checksum mismatch with
	// more data after it can only be real corruption.
	flip := append([]byte(nil), data...)
	flip[ends[0]-1] ^= 0x01
	if err := os.WriteFile(path, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("Open = %v, want mid-file checksum hard error", err)
	}
	if _, _, err := Recover(dir); err == nil {
		t.Error("Recover accepted mid-file corruption")
	}
}

func TestZeroLengthFrameIsHardError(t *testing.T) {
	dir := t.TempDir()
	// A zero-length frame whose CRC happens to validate (CRC of empty
	// is 0) must still be rejected: the encoder never writes one.
	frame := make([]byte, frameHeaderSize)
	if err := os.WriteFile(filepath.Join(dir, "wal"), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "zero-length") {
		t.Errorf("Open = %v, want zero-length frame hard error", err)
	}
}

// writeFrame appends one raw frame for a record with the given seq.
func writeFrame(t *testing.T, path string, rec Record) {
	t.Helper()
	payload := appendPayload(nil, &rec)
	frame := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestDuplicateSequenceIsHardError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	writeFrame(t, path, Record{Seq: 1, Kind: KindMark, GPUs: []int{1}})
	writeFrame(t, path, Record{Seq: 1, Kind: KindMark, GPUs: []int{2}})
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("Open = %v, want duplicate-sequence hard error", err)
	}
}

func TestSequenceGapIsHardError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	writeFrame(t, path, Record{Seq: 1, Kind: KindMark, GPUs: []int{1}})
	writeFrame(t, path, Record{Seq: 3, Kind: KindMark, GPUs: []int{2}})
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("Open = %v, want sequence-gap hard error", err)
	}
	// A first record that doesn't connect to the (absent) snapshot is
	// the same class of damage.
	dir2 := t.TempDir()
	writeFrame(t, filepath.Join(dir2, "wal"), Record{Seq: 2, Kind: KindMark, GPUs: []int{1}})
	if _, err := Open(dir2, Options{}); err == nil {
		t.Error("Open accepted a journal starting at seq 2 with no snapshot")
	}
}

func TestIntervalFsyncAppendsAreImmediatelyOnDisk(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Fsync: FsyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	r := Record{Kind: KindMark, GPUs: []int{1, 2}}
	if err := j.Append(&r); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// No userspace buffering: the frame must be visible to an
	// independent reader before any fsync runs — this is what makes
	// acked records survive SIGKILL in interval mode.
	recs, _, torn, err := ScanFile(filepath.Join(dir, "wal"))
	if err != nil || torn {
		t.Fatalf("ScanFile: torn=%v err=%v", torn, err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("read-back saw %d records (%+v), want the appended one", len(recs), recs)
	}
}

func TestAppendAllocBudget(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Fsync: FsyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	rec := Record{Kind: KindAllocate, ID: 1, NumGPUs: 2, Shape: "Clique",
		Owner: "tenant-a", GPUs: []int{3, 5}}
	// Warm the reused buffer once.
	if err := j.Append(&rec); err != nil {
		t.Fatalf("Append: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := j.Append(&rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	})
	if avg != 0 {
		t.Errorf("Append allocates %.1f objects/op, want 0", avg)
	}
}

func TestParseFsyncMode(t *testing.T) {
	if m, err := ParseFsyncMode("always"); err != nil || m != FsyncAlways {
		t.Errorf("ParseFsyncMode(always) = %v, %v", m, err)
	}
	if m, err := ParseFsyncMode("interval"); err != nil || m != FsyncInterval {
		t.Errorf("ParseFsyncMode(interval) = %v, %v", m, err)
	}
	if _, err := ParseFsyncMode("never"); err == nil {
		t.Error("ParseFsyncMode(never) accepted")
	}
}

func TestSnapshotFileCorruptionIsHardError(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := Record{Kind: KindMark, GPUs: []int{1}}
	if err := j.Append(&r); err != nil {
		t.Fatal(err)
	}
	if err := j.WriteSnapshot(&Snapshot{LSN: 1, Topology: "dgx-a100", Policy: "greedy", NextID: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	path := filepath.Join(dir, "snapshot")
	data, _ := os.ReadFile(path)
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Error("Open accepted a corrupted snapshot")
	}
}

func TestLeftoverSnapshotTmpIsIgnored(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, dir, sampleRecords()[:2], Options{})
	if err := os.WriteFile(filepath.Join(dir, "snapshot.tmp"), []byte("garbage from a crashed snapshot write"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with leftover snapshot.tmp: %v", err)
	}
	defer j.Close()
	if _, err := os.Stat(filepath.Join(dir, "snapshot.tmp")); !os.IsNotExist(err) {
		t.Error("snapshot.tmp not cleaned up")
	}
	if _, live := j.Recovered(); len(live) != 2 {
		t.Errorf("recovered %d records, want 2", len(live))
	}
}
