// Package journal is mapad's durability layer: an append-only,
// checksummed, length-framed write-ahead log of committed System
// mutations, plus atomically-written snapshots that bound replay
// length. The owning System appends one record per committed mutation
// under its state lock, so the journal order *is* the observed
// linearization; recovery replays snapshot + journal and reconstructs
// the pre-crash state exactly.
//
// On-disk layout (one directory per daemon):
//
//	snapshot      latest durable snapshot (magic, length, CRC, JSON)
//	wal           journal records; those with Seq beyond the snapshot's
//	              LSN are live, older ones are skipped on recovery
//	snapshot.tmp  in-flight snapshot write, ignored by recovery
//
// Each journal record is framed as
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// with the payload carrying a strictly-increasing sequence number
// (LSN), the operation kind, and the kind's fields in varint/LE
// encoding. Recovery tolerates exactly one failure shape — a torn
// final record (partial frame, or a checksum mismatch on the last
// frame of the active segment), which a crash mid-append produces and
// which is discarded — and treats everything else (zero-length frames,
// checksum mismatches followed by more data, sequence gaps or
// duplicates, undecodable payloads) as a hard error: those can only
// come from real corruption, and silently dropping acknowledged
// mutations would be worse than refusing to start.
package journal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Kind identifies one journaled mutation type.
type Kind uint8

// The journaled System mutations. Values are part of the on-disk
// format; never renumber.
const (
	KindAllocate    Kind = 1 // a committed allocation decision
	KindRelease     Kind = 2 // a lease release (Expired marks reaper expiry)
	KindMark        Kind = 3 // GPUs marked unhealthy
	KindRestore     Kind = 4 // GPUs restored to service
	KindDegrade     Kind = 5 // a link re-weighted
	KindRepartition Kind = 6 // a MIG re-slice
	KindRenew       Kind = 7 // a lease deadline extension
)

// String names the kind for errors and tooling.
func (k Kind) String() string {
	switch k {
	case KindAllocate:
		return "allocate"
	case KindRelease:
		return "release"
	case KindMark:
		return "mark-unhealthy"
	case KindRestore:
		return "restore"
	case KindDegrade:
		return "degrade-link"
	case KindRepartition:
		return "repartition"
	case KindRenew:
		return "renew"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Slice is one repartition directive: a physical GPU and its new
// instance count.
type Slice struct {
	GPU, Instances int
}

// Record is one journaled mutation. Only the fields of its Kind are
// encoded:
//
//	allocate:     ID, NumGPUs, Shape, Sensitive, Owner, Deadline, GPUs
//	release:      ID, Expired, GPUs
//	mark/restore: GPUs
//	degrade:      U, V, BW
//	repartition:  Slices
//	renew:        ID, Deadline
type Record struct {
	// Seq is the record's log sequence number: strictly increasing by
	// one, assigned by Append. Replay verifies contiguity, so a
	// duplicated or dropped record is detected, not silently applied.
	Seq uint64
	// Kind selects which fields below are meaningful.
	Kind Kind

	// ID is the lease ID (allocate: assigned; release/renew: target).
	ID int
	// GPUs is the allocation result, the released set, or the
	// mark/restore argument.
	GPUs []int
	// NumGPUs, Shape, Sensitive echo the allocate request, so recovery
	// tooling can audit what was asked, not just what was granted.
	NumGPUs   int
	Shape     string
	Sensitive bool
	// Owner is the opaque owner label recorded with a lease (the
	// daemon stores the owning tenant name here).
	Owner string
	// Deadline is the lease expiry in Unix nanoseconds; 0 means no
	// TTL. Used by allocate and renew.
	Deadline int64
	// Expired marks a release produced by the expiry reaper rather
	// than a client.
	Expired bool
	// U, V, BW are the degrade-link endpoints and new bandwidth.
	U, V int
	BW   float64
	// Slices is the repartition directive, ascending by GPU.
	Slices []Slice
}

// appendPayload encodes r's payload (everything inside the frame) onto
// buf and returns the extended slice. The inverse is decodePayload.
func appendPayload(buf []byte, r *Record) []byte {
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = append(buf, byte(r.Kind))
	switch r.Kind {
	case KindAllocate:
		buf = binary.AppendUvarint(buf, uint64(r.ID))
		buf = binary.AppendUvarint(buf, uint64(r.NumGPUs))
		buf = appendString(buf, r.Shape)
		buf = appendBool(buf, r.Sensitive)
		buf = appendString(buf, r.Owner)
		buf = binary.AppendVarint(buf, r.Deadline)
		buf = appendInts(buf, r.GPUs)
	case KindRelease:
		buf = binary.AppendUvarint(buf, uint64(r.ID))
		buf = appendBool(buf, r.Expired)
		buf = appendInts(buf, r.GPUs)
	case KindMark, KindRestore:
		buf = appendInts(buf, r.GPUs)
	case KindDegrade:
		buf = binary.AppendUvarint(buf, uint64(r.U))
		buf = binary.AppendUvarint(buf, uint64(r.V))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.BW))
	case KindRepartition:
		buf = binary.AppendUvarint(buf, uint64(len(r.Slices)))
		for _, sl := range r.Slices {
			buf = binary.AppendUvarint(buf, uint64(sl.GPU))
			buf = binary.AppendUvarint(buf, uint64(sl.Instances))
		}
	case KindRenew:
		buf = binary.AppendUvarint(buf, uint64(r.ID))
		buf = binary.AppendVarint(buf, r.Deadline)
	default:
		panic(fmt.Sprintf("journal: encoding unknown kind %d", r.Kind))
	}
	return buf
}

// decodePayload parses one CRC-validated payload into a Record. Any
// failure here means the frame passed its checksum but cannot be the
// product of this encoder — real corruption — so callers treat errors
// as hard.
func decodePayload(p []byte) (Record, error) {
	d := decoder{buf: p}
	var r Record
	r.Seq = d.uvarint()
	r.Kind = Kind(d.byte())
	switch r.Kind {
	case KindAllocate:
		r.ID = int(d.uvarint())
		r.NumGPUs = int(d.uvarint())
		r.Shape = d.str()
		r.Sensitive = d.bool()
		r.Owner = d.str()
		r.Deadline = d.varint()
		r.GPUs = d.ints()
	case KindRelease:
		r.ID = int(d.uvarint())
		r.Expired = d.bool()
		r.GPUs = d.ints()
	case KindMark, KindRestore:
		r.GPUs = d.ints()
	case KindDegrade:
		r.U = int(d.uvarint())
		r.V = int(d.uvarint())
		r.BW = math.Float64frombits(d.u64())
	case KindRepartition:
		n := int(d.uvarint())
		if d.err == nil && n > 0 {
			r.Slices = make([]Slice, n)
			for i := range r.Slices {
				r.Slices[i] = Slice{GPU: int(d.uvarint()), Instances: int(d.uvarint())}
			}
		}
	case KindRenew:
		r.ID = int(d.uvarint())
		r.Deadline = d.varint()
	default:
		return Record{}, fmt.Errorf("journal: unknown record kind %d", uint8(r.Kind))
	}
	if d.err != nil {
		return Record{}, fmt.Errorf("journal: decoding %s record: %w", r.Kind, d.err)
	}
	if len(d.buf) != 0 {
		return Record{}, fmt.Errorf("journal: %s record has %d trailing bytes", r.Kind, len(d.buf))
	}
	return r, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendInts(buf []byte, xs []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = binary.AppendUvarint(buf, uint64(x))
	}
	return buf
}

// decoder consumes a payload left to right, latching the first error.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated payload")
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.buf)) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) ints() []int {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if uint64(len(d.buf)) < n { // each element is at least one byte
		d.fail()
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.uvarint())
	}
	return out
}
