package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// snapMagic versions the snapshot file format.
var snapMagic = []byte("MAPASNP1")

// LeaseState is one live lease in a Snapshot.
type LeaseState struct {
	ID       int    `json:"id"`
	Owner    string `json:"owner,omitempty"`
	GPUs     []int  `json:"gpus"`
	Deadline int64  `json:"deadline,omitempty"` // Unix nanoseconds; 0 = no TTL
}

// Link is one edge whose weight differs from the pristine topology
// (or, for virtual machines, from a fresh re-compose).
type Link struct {
	U  int     `json:"u"`
	V  int     `json:"v"`
	BW float64 `json:"bw"`
}

// InstanceSet records the virtual instances currently hosted by one
// physical GPU — the repartition map.
type InstanceSet struct {
	GPU  int   `json:"gpu"`
	VIDs []int `json:"vids"`
}

// Snapshot is a full, directly-installable System state at one log
// position: replaying the journal records with Seq > LSN on top of it
// reconstructs the live state exactly.
type Snapshot struct {
	// LSN is the sequence number of the last journal record the
	// snapshot covers (0 = none).
	LSN uint64 `json:"lsn"`
	// Topology and Policy identify the System the state belongs to;
	// recovery refuses a mismatch rather than install leases onto the
	// wrong machine.
	Topology string `json:"topology"`
	Policy   string `json:"policy"`
	NextID   int    `json:"next_id"`
	// Leases (ascending ID) and Unhealthy (ascending) are the live
	// allocation and health state.
	Leases    []LeaseState `json:"leases,omitempty"`
	Unhealthy []int        `json:"unhealthy,omitempty"`
	// Links / PhysLinks are the serving machine's degraded edges:
	// weights differing from the pristine catalog topology (or, when
	// repartitioned, from a fresh compose of Instances over the
	// recovered base machine). BaseLinks / BasePhysLinks are the
	// physical machine's degraded edges, meaningful only when
	// repartitioned.
	Links         []Link `json:"links,omitempty"`
	PhysLinks     []Link `json:"phys_links,omitempty"`
	BaseLinks     []Link `json:"base_links,omitempty"`
	BasePhysLinks []Link `json:"base_phys_links,omitempty"`
	// Instances (ascending GPU) and NextVID capture the MIG
	// repartition state; empty Instances means the machine is uncut.
	Instances []InstanceSet `json:"instances,omitempty"`
	NextVID   int           `json:"next_vid,omitempty"`
}

// writeSnapshotFile atomically writes snap to dir/snapshot: marshal,
// frame (magic + length + CRC), write to snapshot.tmp, fsync, rename
// over snapshot, fsync the directory. A crash at any point leaves
// either the old snapshot or the new one, never a torn file that
// parses.
func writeSnapshotFile(dir string, snap *Snapshot) (int64, error) {
	payload, err := json.MarshalIndent(snap, "", "\t")
	if err != nil {
		return 0, fmt.Errorf("journal: marshaling snapshot: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(snapMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf.Write(hdr[:])
	buf.Write(payload)

	tmp := filepath.Join(dir, "snapshot.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "snapshot")); err != nil {
		return 0, err
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return int64(buf.Len()), nil
}

// readSnapshotFile loads and validates dir/snapshot. A missing file
// returns (nil, 0, nil); any parse or checksum failure is a hard error
// — the snapshot was fsynced before rename, so damage here is real.
func readSnapshotFile(dir string) (*Snapshot, int64, error) {
	path := filepath.Join(dir, "snapshot")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	if len(data) < len(snapMagic)+8 || !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return nil, 0, fmt.Errorf("journal: %s: not a snapshot file", path)
	}
	rest := data[len(snapMagic):]
	ln := binary.LittleEndian.Uint32(rest[0:4])
	crc := binary.LittleEndian.Uint32(rest[4:8])
	payload := rest[8:]
	if uint32(len(payload)) != ln {
		return nil, 0, fmt.Errorf("journal: %s: payload is %d bytes, header says %d", path, len(payload), ln)
	}
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return nil, 0, fmt.Errorf("journal: %s: checksum mismatch (%08x, want %08x)", path, got, crc)
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, 0, fmt.Errorf("journal: %s: %w", path, err)
	}
	return &snap, int64(len(data)), nil
}

// syncDir fsyncs a directory so a just-renamed file survives a power
// cut. Some filesystems reject directory fsync; that degrades
// durability, not correctness, so those errors are ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		// EINVAL from filesystems that don't support directory fsync is
		// not actionable; real write errors surfaced on the file sync.
		return nil
	}
	return nil
}
