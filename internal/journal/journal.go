package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is the per-record framing overhead: u32 payload
// length + u32 CRC-32C.
const frameHeaderSize = 8

// maxFrame bounds a single record payload. Real records are tens to
// hundreds of bytes; a length beyond this can only be corruption.
const maxFrame = 1 << 24

// FsyncMode selects when appends reach stable storage.
type FsyncMode string

const (
	// FsyncAlways syncs after every append: an acknowledged mutation
	// survives power loss, at ~one disk flush per operation.
	FsyncAlways FsyncMode = "always"
	// FsyncInterval syncs on a background ticker. Appends still go
	// straight to the kernel via write(2) — no userspace buffering — so
	// a process crash (SIGKILL) loses nothing; only a whole-machine
	// power cut can lose the last interval's worth.
	FsyncInterval FsyncMode = "interval"
)

// ParseFsyncMode validates a -fsync flag value.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch FsyncMode(s) {
	case FsyncAlways, FsyncInterval:
		return FsyncMode(s), nil
	}
	return "", fmt.Errorf("journal: unknown fsync mode %q (want %q or %q)", s, FsyncAlways, FsyncInterval)
}

// Options configure a Journal.
type Options struct {
	// Fsync is the append durability policy; empty defaults to
	// FsyncAlways.
	Fsync FsyncMode
	// Interval is the background sync period under FsyncInterval;
	// zero defaults to 100ms.
	Interval time.Duration
}

// Stats is a point-in-time snapshot of journal counters, all scoped to
// the current process (recovery totals live in Recovered).
type Stats struct {
	Records              uint64 // records appended
	Bytes                uint64 // frame bytes appended
	Fsyncs               uint64 // File.Sync calls issued
	LastSeq              uint64 // highest sequence number on disk
	SnapshotLSN          uint64 // LSN covered by the latest durable snapshot
	SnapshotBytes        int64  // size of that snapshot file
	SnapshotUnixNano     int64  // wall time the latest snapshot landed (0 = none this process)
	RecordsSinceSnapshot uint64 // journal records not yet covered by a snapshot
}

// Journal is an append-only write-ahead log in one directory:
//
//	snapshot      latest durable snapshot (magic, length, CRC, JSON)
//	wal           records; those with Seq > snapshot LSN are live
//	snapshot.tmp  in-flight snapshot write, ignored by recovery
//
// WriteSnapshot persists the snapshot first and truncates wal after,
// so every crash window leaves either the old state (snapshot + full
// wal) or the new (snapshot covering everything, wal empty or stale
// and skipped by LSN) — never a gap.
//
// Appends go straight to the kernel with one write(2) per record from
// a reused buffer: zero allocations in steady state, and no userspace
// buffer for a SIGKILL to tear.
type Journal struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	buf     []byte
	nextSeq uint64
	dirty   bool // unsynced appends outstanding
	closed  bool
	err     error // sticky write/sync failure; journal refuses further appends

	stats Stats

	// Recovery results from Open, for the owning System to replay.
	recSnap *Snapshot
	recRecs []Record

	stop chan struct{} // closes the interval-sync goroutine
	done chan struct{}
}

// Open loads (or creates) the journal directory, recovers its
// contents, and opens the log for appending. A torn final record —
// the one failure a crash mid-append produces — is discarded and
// truncated away; any other inconsistency (zero-length frame, checksum
// mismatch mid-file, sequence gap or duplicate, undecodable payload)
// is a hard error, because silently dropping acknowledged mutations is
// worse than refusing to start. Recovered state is available from
// Recovered until the first Append.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.Fsync == "" {
		opts.Fsync = FsyncAlways
	}
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A leftover snapshot.tmp is an abandoned write; the rename never
	// happened, so the durable snapshot (if any) is still authoritative.
	os.Remove(filepath.Join(dir, "snapshot.tmp"))

	snap, snapBytes, err := readSnapshotFile(dir)
	if err != nil {
		return nil, err
	}
	var snapLSN uint64
	if snap != nil {
		snapLSN = snap.LSN
	}

	walPath := filepath.Join(dir, "wal")
	recs, goodLen, torn, err := scanWAL(walPath)
	if err != nil {
		return nil, err
	}
	if torn {
		if err := os.Truncate(walPath, goodLen); err != nil {
			return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", walPath, err)
		}
	}
	live, lastSeq, err := cutBySnapshot(recs, snapLSN, walPath)
	if err != nil {
		return nil, err
	}

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}

	j := &Journal{
		dir:     dir,
		opts:    opts,
		f:       f,
		nextSeq: lastSeq + 1,
		recSnap: snap,
		recRecs: live,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	j.stats.LastSeq = lastSeq
	j.stats.SnapshotLSN = snapLSN
	j.stats.SnapshotBytes = snapBytes
	j.stats.RecordsSinceSnapshot = uint64(len(live))
	if opts.Fsync == FsyncInterval {
		go j.syncLoop()
	} else {
		close(j.done)
	}
	return j, nil
}

// Recover is the read-only half of Open: it loads the snapshot and
// live records from dir without truncating anything or taking an
// append handle. Tooling and tests use it to inspect a journal a
// (possibly crashed) daemon left behind.
func Recover(dir string) (*Snapshot, []Record, error) {
	snap, _, err := readSnapshotFile(dir)
	if err != nil {
		return nil, nil, err
	}
	var snapLSN uint64
	if snap != nil {
		snapLSN = snap.LSN
	}
	walPath := filepath.Join(dir, "wal")
	recs, _, _, err := scanWAL(walPath)
	if err != nil {
		return nil, nil, err
	}
	live, _, err := cutBySnapshot(recs, snapLSN, walPath)
	if err != nil {
		return nil, nil, err
	}
	return snap, live, nil
}

// Recovered returns what Open found on disk: the latest snapshot (nil
// if none) and the journal records newer than it, in log order. The
// slices are owned by the caller.
func (j *Journal) Recovered() (*Snapshot, []Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recSnap, j.recRecs
}

// Append assigns r the next sequence number and writes its frame with
// a single write(2), syncing per the fsync policy. The caller is the
// owning System, already holding its state lock, so journal order is
// the observed linearization order. On error the record is not
// considered durable and the error is sticky: the journal refuses
// further appends rather than let a gap form.
func (j *Journal) Append(r *Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: append after Close")
	}
	if j.err != nil {
		return fmt.Errorf("journal: log is failed: %w", j.err)
	}
	r.Seq = j.nextSeq

	j.buf = j.buf[:0]
	j.buf = append(j.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	j.buf = appendPayload(j.buf, r)
	payload := j.buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(j.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(j.buf[4:8], crc32.Checksum(payload, crcTable))

	if _, err := j.f.Write(j.buf); err != nil {
		j.err = err
		return fmt.Errorf("journal: append: %w", err)
	}
	if j.opts.Fsync == FsyncAlways {
		if err := j.f.Sync(); err != nil {
			j.err = err
			return fmt.Errorf("journal: fsync: %w", err)
		}
		j.stats.Fsyncs++
	} else {
		j.dirty = true
	}
	j.nextSeq++
	j.stats.Records++
	j.stats.Bytes += uint64(len(j.buf))
	j.stats.LastSeq = r.Seq
	j.stats.RecordsSinceSnapshot++
	return nil
}

// WriteSnapshot persists snap and compacts the log. The caller must
// hold the owning System's state lock and pass a snapshot capturing
// exactly the state after the last appended record — snap.LSN must
// equal LastSeq — so that nothing can commit between capture and
// write. The snapshot is fully durable (fsynced, renamed, directory
// synced) before the wal is truncated; a crash at any point leaves a
// recoverable pair.
func (j *Journal) WriteSnapshot(snap *Snapshot) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: snapshot after Close")
	}
	if j.err != nil {
		return fmt.Errorf("journal: log is failed: %w", j.err)
	}
	if last := j.nextSeq - 1; snap.LSN != last {
		return fmt.Errorf("journal: snapshot LSN %d does not cover log end %d", snap.LSN, last)
	}
	// Records the snapshot covers must not outlive it only in the page
	// cache: sync the wal first so the snapshot can never be the sole
	// durable witness of a half-synced log, then write the snapshot,
	// then drop the covered records.
	if j.dirty {
		if err := j.f.Sync(); err != nil {
			j.err = err
			return fmt.Errorf("journal: fsync before snapshot: %w", err)
		}
		j.dirty = false
		j.stats.Fsyncs++
	}
	size, err := writeSnapshotFile(j.dir, snap)
	if err != nil {
		j.err = err
		return err
	}
	if err := j.f.Truncate(0); err != nil {
		// The snapshot is durable and covers everything; a failed
		// truncate only means recovery will skip the stale records.
		// Still, refuse further appends: the append offset is O_APPEND
		// so writes stay consistent, but treat the volume as suspect.
		j.err = err
		return fmt.Errorf("journal: truncating wal after snapshot: %w", err)
	}
	j.stats.SnapshotLSN = snap.LSN
	j.stats.SnapshotBytes = size
	j.stats.SnapshotUnixNano = time.Now().UnixNano()
	j.stats.RecordsSinceSnapshot = 0
	// Recovery data has served its purpose; free it.
	j.recSnap, j.recRecs = nil, nil
	return nil
}

// LastSeq returns the sequence number of the last appended (or
// recovered) record; 0 means the log is empty.
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq - 1
}

// Stats returns current counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Close syncs outstanding appends and closes the log.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	close(j.stop)
	var err error
	if j.dirty && j.err == nil {
		err = j.f.Sync()
		j.dirty = false
		j.stats.Fsyncs++
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.mu.Unlock()
	<-j.done
	return err
}

// syncLoop flushes dirty appends every opts.Interval under
// FsyncInterval.
func (j *Journal) syncLoop() {
	defer close(j.done)
	t := time.NewTicker(j.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			j.mu.Lock()
			if j.dirty && !j.closed && j.err == nil {
				if err := j.f.Sync(); err != nil {
					j.err = err
				} else {
					j.dirty = false
					j.stats.Fsyncs++
				}
			}
			j.mu.Unlock()
		}
	}
}

// ScanFile parses one wal file, returning its records in order plus
// each record's end offset in the file (so tests can truncate to an
// exact record boundary). Tolerates a torn final record, reported via
// torn; all other damage is an error.
func ScanFile(path string) (recs []Record, ends []int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false, err
	}
	return scanFrames(path, data)
}

// scanWAL reads path (absent = empty) and parses its frames, returning
// the records, the byte length of the intact prefix, and whether a
// torn final record was discarded.
func scanWAL(path string) (recs []Record, goodLen int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	recs, ends, torn, err := scanFrames(path, data)
	if err != nil {
		return nil, 0, false, err
	}
	if n := len(ends); n > 0 {
		goodLen = ends[n-1]
	}
	return recs, goodLen, torn, nil
}

// scanFrames walks data frame by frame. The tolerance contract lives
// here: a partial frame at end-of-file, or a checksum mismatch on the
// very last frame, is a torn append and is dropped; a zero-length
// frame, a mid-file checksum mismatch, or an undecodable payload is a
// hard error.
func scanFrames(path string, data []byte) (recs []Record, ends []int64, torn bool, err error) {
	off := int64(0)
	n := int64(len(data))
	for off < n {
		if n-off < frameHeaderSize {
			return recs, ends, true, nil // partial header: torn append
		}
		ln := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if ln == 0 {
			return nil, nil, false, fmt.Errorf("journal: %s: zero-length frame at offset %d", path, off)
		}
		if ln > maxFrame {
			return nil, nil, false, fmt.Errorf("journal: %s: implausible frame length %d at offset %d", path, ln, off)
		}
		if n-off-frameHeaderSize < ln {
			return recs, ends, true, nil // partial payload: torn append
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+ln]
		if got := crc32.Checksum(payload, crcTable); got != crc {
			if off+frameHeaderSize+ln == n {
				return recs, ends, true, nil // damaged final frame: torn append
			}
			return nil, nil, false, fmt.Errorf("journal: %s: checksum mismatch at offset %d followed by more data", path, off)
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			return nil, nil, false, fmt.Errorf("journal: %s: offset %d: %w", path, off, derr)
		}
		recs = append(recs, rec)
		off += frameHeaderSize + ln
		ends = append(ends, off)
	}
	return recs, ends, false, nil
}

// cutBySnapshot validates sequence contiguity across recs, checks they
// connect to the snapshot at snapLSN, and returns the live suffix
// (records with Seq > snapLSN) plus the log's end sequence.
func cutBySnapshot(recs []Record, snapLSN uint64, path string) (live []Record, lastSeq uint64, err error) {
	lastSeq = snapLSN
	if len(recs) == 0 {
		return nil, lastSeq, nil
	}
	for i, r := range recs {
		if r.Seq == 0 {
			return nil, 0, fmt.Errorf("journal: %s: record %d has sequence 0", path, i)
		}
		if i > 0 && r.Seq != recs[i-1].Seq+1 {
			if r.Seq <= recs[i-1].Seq {
				return nil, 0, fmt.Errorf("journal: %s: duplicate or regressing sequence %d after %d", path, r.Seq, recs[i-1].Seq)
			}
			return nil, 0, fmt.Errorf("journal: %s: sequence gap: %d after %d", path, r.Seq, recs[i-1].Seq)
		}
	}
	first, end := recs[0].Seq, recs[len(recs)-1].Seq
	if first > snapLSN+1 {
		return nil, 0, fmt.Errorf("journal: %s: first record sequence %d leaves a gap after snapshot LSN %d", path, first, snapLSN)
	}
	if end > snapLSN {
		lastSeq = end
		live = recs[snapLSN+1-first:]
	}
	return live, lastSeq, nil
}
