// Package stats provides the descriptive statistics the paper's
// evaluation reports: quartile summaries for box plots (Figs. 4, 13,
// 18), CDFs (Fig. 5a), and correlation plots (Figs. 11, 12, 15).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary is a five-number summary plus mean, matching the box plots
// in the paper.
type Summary struct {
	N               int
	Min, Q1, Median float64
	Q3, Max, Mean   float64
}

// Summarize computes the five-number summary of the values. It panics
// on an empty slice — callers summarize experiment outputs that must
// be non-empty.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		panic("stats: cannot summarize empty data")
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     Percentile(s, 25),
		Median: Percentile(s, 50),
		Q3:     Percentile(s, 75),
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
	}
}

// Percentile returns the p-th percentile (0..100) of sorted values
// using linear interpolation between closest ranks. The input must be
// sorted ascending and non-empty.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty data")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PercentileOf sorts a copy of values and returns the p-th percentile.
func PercentileOf(values []float64, p float64) float64 {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return Percentile(s, p)
}

// String renders the summary in one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// CDF returns the empirical cumulative distribution of values at the
// given probe points: fraction of values ≤ probe.
func CDF(values, probes []float64) []float64 {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	out := make([]float64, len(probes))
	for i, p := range probes {
		out[i] = float64(sort.SearchFloat64s(s, math.Nextafter(p, math.Inf(1)))) / float64(len(s))
	}
	return out
}

// Histogram buckets values into n equal-width bins over [min, max] and
// returns the counts. Values outside the range clamp to the end bins.
func Histogram(values []float64, min, max float64, n int) []int {
	if n <= 0 || max <= min {
		panic(fmt.Sprintf("stats: invalid histogram spec [%g,%g) x %d", min, max, n))
	}
	counts := make([]int, n)
	width := (max - min) / float64(n)
	for _, v := range values {
		b := int((v - min) / width)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts
}

// BoxPlotRow renders a labeled summary as a fixed-width table row, the
// textual stand-in for the paper's box plots.
func BoxPlotRow(label string, s Summary) string {
	return fmt.Sprintf("%-14s min=%8.2f q1=%8.2f med=%8.2f q3=%8.2f max=%8.2f",
		label, s.Min, s.Q1, s.Median, s.Q3, s.Max)
}

// Table renders aligned rows of label → summary for experiment output.
func Table(rows []string) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}
