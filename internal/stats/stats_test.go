package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles = %g, %g", s.Q1, s.Q3)
	}
}

func TestSummarizeSingleValue(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Q1 != 7 || s.Median != 7 || s.Q3 != 7 || s.Max != 7 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeUnsortedInputUnchanged(t *testing.T) {
	in := []float64{5, 1, 3}
	_ = Summarize(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Fatal("Summarize must not mutate its input")
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty input should panic")
		}
	}()
	Summarize(nil)
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {75, 32.5},
		{-5, 10}, {150, 40},
	}
	for _, tc := range cases {
		if got := Percentile(sorted, tc.p); got != tc.want {
			t.Errorf("P%g = %g, want %g", tc.p, got, tc.want)
		}
	}
}

func TestPercentileOfUnsorted(t *testing.T) {
	if got := PercentileOf([]float64{40, 10, 30, 20}, 50); got != 25 {
		t.Fatalf("PercentileOf = %g", got)
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty input should panic")
		}
	}()
	Percentile(nil, 50)
}

func TestCDF(t *testing.T) {
	values := []float64{1, 2, 2, 3}
	got := CDF(values, []float64{0, 1, 2, 3, 4})
	want := []float64{0, 0.25, 0.75, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CDF = %v, want %v", got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	values := []float64{0.1, 0.2, 0.55, 0.9, -1, 2}
	counts := Histogram(values, 0, 1, 2)
	// -1 clamps into bin 0; 2 clamps into bin 1.
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("histogram = %v", counts)
	}
}

func TestHistogramInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec should panic")
		}
	}()
	Histogram([]float64{1}, 1, 1, 3)
}

func TestStringAndRows(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if !strings.Contains(s.String(), "med=2.000") {
		t.Fatalf("String = %q", s.String())
	}
	row := BoxPlotRow("vgg-16", s)
	if !strings.Contains(row, "vgg-16") || !strings.Contains(row, "med=") {
		t.Fatalf("row = %q", row)
	}
	tbl := Table([]string{"a", "b"})
	if tbl != "a\nb\n" {
		t.Fatalf("table = %q", tbl)
	}
}

// Property: min ≤ q1 ≤ median ≤ q3 ≤ max and mean within [min, max].
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := rand.New(rand.NewSource(seed))
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = r.NormFloat64() * 100
		}
		s := Summarize(vs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 &&
			s.Q3 <= s.Max && s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF is monotone non-decreasing and hits 1 above the max.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		r := rand.New(rand.NewSource(seed))
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = r.Float64() * 50
		}
		probes := []float64{-1, 10, 20, 30, 40, 51}
		cdf := CDF(vs, probes)
		if !sort.Float64sAreSorted(cdf) {
			return false
		}
		return cdf[len(cdf)-1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile matches direct definition at data points.
func TestPercentileBoundsProperty(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint8) bool {
		n := int(nRaw%40) + 1
		p := float64(pRaw % 101)
		r := rand.New(rand.NewSource(seed))
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = r.Float64() * 100
		}
		sort.Float64s(vs)
		v := Percentile(vs, p)
		return v >= vs[0] && v <= vs[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
