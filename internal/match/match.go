// Package match implements subgraph isomorphism search: finding every
// embedding of a small application pattern graph inside a larger
// hardware graph. It stands in for the Peregrine pattern-aware graph
// mining engine the paper builds MAPA on (the paper explicitly treats
// the matcher as an interchangeable component).
//
// The enumerator is a VF2-style backtracking search: pattern vertices
// are matched one at a time in a connectivity-aware order, and a data
// vertex is a candidate only if it is unused and adjacent (in the data
// graph) to the images of every already-matched pattern neighbor.
//
// Because MAPA scores matches by the *links they use*, two embeddings
// that use the same set of data edges are equivalent; Deduped collapses
// them (this is exactly "matches up to pattern automorphism").
package match

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mapa/internal/graph"
)

// Match is one embedding of a pattern into a data graph. Pattern[i]
// maps to Data[i]; Pattern lists the pattern's vertices in the
// enumeration order used by the search.
type Match struct {
	Pattern []int
	Data    []int
}

// DataVertices returns the match's data vertices in ascending order.
func (m Match) DataVertices() []int {
	vs := append([]int(nil), m.Data...)
	sort.Ints(vs)
	return vs
}

// MappingOf returns the data vertex the given pattern vertex maps to.
func (m Match) MappingOf(patternVertex int) (int, bool) {
	for i, p := range m.Pattern {
		if p == patternVertex {
			return m.Data[i], true
		}
	}
	return 0, false
}

// UsedEdges returns the data-graph edges that are images of pattern
// edges — the set E(P) ∩ E(M) of Eq. 1 — normalized and sorted.
func (m Match) UsedEdges(pattern, data *graph.Graph) []graph.Edge {
	toData := make(map[int]int, len(m.Pattern))
	for i, p := range m.Pattern {
		toData[p] = m.Data[i]
	}
	var es []graph.Edge
	for _, pe := range pattern.Edges() {
		du, dv := toData[pe.U], toData[pe.V]
		de, ok := data.EdgeBetween(du, dv)
		if !ok {
			panic(fmt.Sprintf("match: invalid embedding, data edge (%d,%d) missing", du, dv))
		}
		es = append(es, de)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// Key returns a canonical string identifying the set of data edges the
// match uses plus its vertex set. Matches with equal keys are
// interchangeable for scoring.
func (m Match) Key(pattern, data *graph.Graph) string {
	var b strings.Builder
	for _, v := range m.DataVertices() {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, e := range m.UsedEdges(pattern, data) {
		b.WriteString(strconv.Itoa(e.U))
		b.WriteByte('-')
		b.WriteString(strconv.Itoa(e.V))
		b.WriteByte(',')
	}
	return b.String()
}

// IsEmbedding verifies that m is a valid (injective, edge-preserving)
// embedding of pattern into data.
func IsEmbedding(pattern, data *graph.Graph, m Match) bool {
	if len(m.Pattern) != pattern.NumVertices() || len(m.Data) != len(m.Pattern) {
		return false
	}
	toData := make(map[int]int, len(m.Pattern))
	used := make(map[int]bool, len(m.Data))
	for i, p := range m.Pattern {
		d := m.Data[i]
		if !pattern.HasVertex(p) || !data.HasVertex(d) {
			return false
		}
		if _, dup := toData[p]; dup || used[d] {
			return false
		}
		toData[p] = d
		used[d] = true
	}
	for _, pe := range pattern.Edges() {
		if !data.HasEdge(toData[pe.U], toData[pe.V]) {
			return false
		}
	}
	return true
}

// matchOrder returns the pattern vertices in a connectivity-aware
// search order: the highest-degree vertex first, then always a vertex
// with the most already-ordered neighbors (ties broken by degree then
// ID). This keeps the backtracking frontier connected, which is the
// core VF2 pruning idea.
func matchOrder(p *graph.Graph) []int {
	vs := p.Vertices()
	if len(vs) == 0 {
		return nil
	}
	ordered := make([]int, 0, len(vs))
	inOrder := make(map[int]bool, len(vs))
	pick := vs[0]
	for _, v := range vs {
		if p.Degree(v) > p.Degree(pick) {
			pick = v
		}
	}
	ordered = append(ordered, pick)
	inOrder[pick] = true
	for len(ordered) < len(vs) {
		best, bestConn := -1, -1
		for _, v := range vs {
			if inOrder[v] {
				continue
			}
			conn := 0
			for _, u := range p.Neighbors(v) {
				if inOrder[u] {
					conn++
				}
			}
			if conn > bestConn ||
				(conn == bestConn && (p.Degree(v) > p.Degree(best) ||
					(p.Degree(v) == p.Degree(best) && v < best))) {
				best, bestConn = v, conn
			}
		}
		ordered = append(ordered, best)
		inOrder[best] = true
	}
	return ordered
}

// Enumerate finds every embedding of pattern into data and invokes fn
// for each. Return false from fn to stop the search early. The Match
// passed to fn reuses internal buffers; copy it (e.g. via Clone) if it
// must outlive the callback.
//
// The enumeration runs over an adjacency-bitset index of the data
// graph (see graph.Index): candidate filtering is word-wise AND /
// AND-NOT instead of per-vertex map lookups. Embeddings are emitted in
// a deterministic order — candidates ascend by data-vertex ID at every
// depth.
func Enumerate(pattern, data *graph.Graph, fn func(Match) bool) {
	if s := newSearch(pattern, data, nil); s != nil {
		s.run(fn)
	}
}

// Clone returns a deep copy of m safe to retain after Enumerate's
// callback returns.
func (m Match) Clone() Match {
	return Match{
		Pattern: append([]int(nil), m.Pattern...),
		Data:    append([]int(nil), m.Data...),
	}
}

// FindAll returns every embedding of pattern into data.
func FindAll(pattern, data *graph.Graph) []Match {
	var out []Match
	Enumerate(pattern, data, func(m Match) bool {
		out = append(out, m.Clone())
		return true
	})
	return out
}

// FindAllDeduped returns one representative per equivalence class of
// embeddings, where two embeddings are equivalent when they use the
// same data vertices and the same data edges (i.e. they differ by a
// pattern automorphism). These classes are exactly the distinct
// "matching patterns" MAPA scores.
func FindAllDeduped(pattern, data *graph.Graph) []Match {
	return FindAllDedupedCapped(pattern, data, 0)
}

// FindAllDedupedCapped is FindAllDeduped truncated to the first max
// representatives in enumeration order; max <= 0 means unlimited. The
// cap bounds the candidate sets MAPA policies score on large machines.
func FindAllDedupedCapped(pattern, data *graph.Graph, max int) []Match {
	ms, _ := FindAllDedupedCappedKeys(pattern, data, max)
	return ms
}

// FindAllDedupedCappedKeys is FindAllDedupedCapped returning each
// representative's canonical key (its equivalence-class identity)
// alongside it.
func FindAllDedupedCappedKeys(pattern, data *graph.Graph, max int) ([]Match, []string) {
	return dedupedCappedKeys(compile(pattern, data, nil), pattern, max)
}

// dedupedCappedKeys is the sequential dedup body over an
// already-compiled program, so callers holding one (the parallel
// fallbacks) do not pay compilation twice.
func dedupedCappedKeys(pg *program, pattern *graph.Graph, max int) ([]Match, []string) {
	if pg == nil {
		return nil, nil
	}
	ky := NewKeyer(pattern, pg.order)
	seen := make(map[string]bool)
	var out []Match
	var keys []string
	pg.newSearch().run(func(m Match) bool {
		key := ky.KeyOf(m)
		if seen[key] {
			return true
		}
		seen[key] = true
		out = append(out, m.Clone())
		keys = append(keys, key)
		return max <= 0 || len(out) < max
	})
	return out, keys
}

// CountEmbeddings returns the number of raw embeddings of pattern into
// data without materializing them.
func CountEmbeddings(pattern, data *graph.Graph) int {
	n := 0
	Enumerate(pattern, data, func(Match) bool {
		n++
		return true
	})
	return n
}

// Automorphisms returns |Aut(P)|: the number of self-embeddings of the
// pattern. FindAll(p, data) emits |Aut(P)| raw embeddings per deduped
// match on a complete data graph.
func Automorphisms(p *graph.Graph) int {
	return CountEmbeddings(p, p)
}

// HasMatch reports whether at least one embedding exists.
func HasMatch(pattern, data *graph.Graph) bool {
	found := false
	Enumerate(pattern, data, func(Match) bool {
		found = true
		return false
	})
	return found
}
