// Adaptive cost calibration for the work-stealing universe builds. The
// static per-root estimate (cost.go) is pure arithmetic over degree
// data — good enough to kill the dense-root straggler, but blind to
// how pruning actually plays out on a given (topology, shape) pair.
// Every instrumented parallel build already measures each root
// subtree's enumeration wall time (BuildStats.RootSeconds); the
// calibration folds those measurements into a per-key EWMA and hands
// them back as the plan costs of the next build of the same key, so
// repeated builds on one machine tighten the chunk plan toward the
// true work distribution. Only the plan changes — enumeration output is
// byte-identical under any cost vector.
package match

import (
	"sync"

	"mapa/internal/graph"
)

// DefaultCalibrationAlpha is the EWMA weight of the newest observation.
const DefaultCalibrationAlpha = 0.5

// CostCalibration accumulates measured per-root build costs per key (a
// (topology, canonical shape) pair in the store's usage) and serves the
// calibrated cost vector for the next build. Safe for concurrent use.
type CostCalibration struct {
	mu    sync.Mutex
	alpha float64
	byKey map[string][]float64
}

// NewCostCalibration returns a calibration with the given EWMA weight
// for new observations; out-of-range alphas fall back to
// DefaultCalibrationAlpha.
func NewCostCalibration(alpha float64) *CostCalibration {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultCalibrationAlpha
	}
	return &CostCalibration{alpha: alpha, byKey: make(map[string][]float64)}
}

// defaultCalibration is the process-wide calibration the universe
// stores feed: measured timings from any store's build of a (topology,
// shape) pair tighten every later build of that pair in the process.
var defaultCalibration = NewCostCalibration(DefaultCalibrationAlpha)

// DefaultCostCalibration returns the process-wide build calibration.
func DefaultCostCalibration() *CostCalibration { return defaultCalibration }

// Observe folds one build's measured per-root costs into the key's
// EWMA. A measurement whose length disagrees with the stored vector
// (the root set changed) replaces it outright.
func (c *CostCalibration) Observe(key string, measured []float64) {
	if c == nil || len(measured) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ewma, ok := c.byKey[key]
	if !ok || len(ewma) != len(measured) {
		c.byKey[key] = append([]float64(nil), measured...)
		return
	}
	for i, m := range measured {
		ewma[i] = (1-c.alpha)*ewma[i] + c.alpha*m
	}
}

// Calibrated returns the key's calibrated cost vector when one exists
// and is aligned with static (same root count); otherwise it returns
// static unchanged with ok=false. The returned slice is a copy — the
// planner may keep it past later Observes.
func (c *CostCalibration) Calibrated(key string, static []float64) (costs []float64, ok bool) {
	if c == nil {
		return static, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ewma, found := c.byKey[key]
	if !found || len(ewma) != len(static) {
		return static, false
	}
	return append([]float64(nil), ewma...), true
}

// BuildUniverseCalibrated is BuildUniverseStats with the chunk plan
// drawn from the calibration's measured per-root costs for key (static
// estimate on first sight), and the build's own measurements folded
// back in afterwards. The universe is byte-identical to BuildUniverse
// at any calibration state; only the work-stealing plan tightens.
// Sequential builds (workers < 2) neither use nor feed the calibration.
func BuildUniverseCalibrated(pattern, data *graph.Graph, max, workers int, cal *CostCalibration, key string) (*Universe, *BuildStats) {
	probe := 0
	if max > 0 {
		probe = max + 1 // one extra to detect truncation
	}
	var ms []Match
	var keys []string
	var bs *BuildStats
	if workers > 1 {
		sr := NewSearcher(pattern, data)
		if cal != nil {
			if costs, ok := cal.Calibrated(key, sr.RootCosts()); ok {
				sr.SetCosts(costs)
			}
		}
		ms, keys, bs = dedupedParallelOn(sr, pattern, workers, probe, true)
		// Only complete builds feed the calibration: a cap-stopped
		// enumeration leaves zero RootSeconds for every root it never
		// ran, and adopting those zeros would teach the planner that
		// genuinely expensive roots are free.
		if cal != nil && bs != nil && len(bs.RootSeconds) > 0 && !(max > 0 && len(ms) > max) {
			cal.Observe(key, bs.RootSeconds)
		}
	} else {
		ms, keys = FindAllDedupedCappedKeys(pattern, data, probe)
	}
	return assembleUniverse(data, ms, keys, max), bs
}
