package match

import (
	"testing"

	"mapa/internal/topology"
)

func TestEnumerateLabeledNilPredicate(t *testing.T) {
	data := complete(5)
	p := ring(3)
	raw := CountEmbeddings(p, data)
	n := 0
	EnumerateLabeled(p, data, nil, func(Match) bool {
		n++
		return true
	})
	if n != raw {
		t.Fatalf("nil predicate: %d vs %d", n, raw)
	}
}

func TestEnumerateLabeledFiltersVertices(t *testing.T) {
	data := complete(5)
	p := chain(2)
	// Only even data vertices may host anything.
	even := func(_, d int) bool { return d%2 == 0 }
	var got [][]int
	EnumerateLabeled(p, data, even, func(m Match) bool {
		got = append(got, m.DataVertices())
		return true
	})
	// Even vertices of K5: {0, 2, 4}; ordered pairs: 3*2 = 6.
	if len(got) != 6 {
		t.Fatalf("matches = %d, want 6", len(got))
	}
	for _, vs := range got {
		for _, v := range vs {
			if v%2 != 0 {
				t.Fatalf("odd vertex %d matched", v)
			}
		}
	}
}

func TestEnumerateLabeledPerVertexConstraint(t *testing.T) {
	// Pattern vertex 0 is "the root" and may only map to data vertex 3.
	data := complete(4)
	p := chain(3) // vertices 0-1-2
	rootOnly3 := func(pv, dv int) bool {
		if pv == 0 {
			return dv == 3
		}
		return true
	}
	EnumerateLabeled(p, data, rootOnly3, func(m Match) bool {
		if d, _ := m.MappingOf(0); d != 3 {
			t.Fatalf("pattern 0 mapped to %d", d)
		}
		return true
	})
}

func TestFindAllLabeledDeduped(t *testing.T) {
	top := topology.DGXV100()
	p := ring(3)
	// Restrict to socket 0 GPUs {0..3}: triangles C(4,3) = 4 on the
	// complete hardware graph.
	socket0 := func(_, d int) bool { return d < 4 }
	ms := FindAllLabeledDeduped(p, top.Graph, socket0)
	if len(ms) != 4 {
		t.Fatalf("deduped socket-0 triangles = %d, want 4", len(ms))
	}
	for _, m := range ms {
		for _, v := range m.DataVertices() {
			if v >= 4 {
				t.Fatalf("match escaped socket 0: %v", m.DataVertices())
			}
		}
	}
}

func TestHasLabeledMatch(t *testing.T) {
	data := complete(4)
	p := ring(3)
	if !HasLabeledMatch(p, data, nil) {
		t.Fatal("unrestricted match should exist")
	}
	none := func(_, _ int) bool { return false }
	if HasLabeledMatch(p, data, none) {
		t.Fatal("all-false predicate should block every match")
	}
	onlyTwo := func(_, d int) bool { return d < 2 }
	if HasLabeledMatch(p, data, onlyTwo) {
		t.Fatal("two compatible vertices cannot host a triangle")
	}
}
