package match

import (
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
	"mapa/internal/topology"
)

// TestGoldenEmbeddingCounts pins CountEmbeddings and the deduplicated
// match counts for the canonical application patterns on the DGX-V
// (hardware and physical link graphs) and DGX-A100 topologies. The
// complete-graph rows have closed forms — raw = 8!/(8-k)! injective
// mappings, deduped = C(8,k) x (distinct pattern edge-sets per vertex
// set) — so any matcher refactor that silently changes semantics
// breaks loudly here.
func TestGoldenEmbeddingCounts(t *testing.T) {
	dgxv := topology.DGXV100()
	dgxa := topology.DGXA100()
	type pat struct {
		name string
		g    *graph.Graph
	}
	pats := []pat{
		{"Ring(3)", appgraph.Ring(3)},
		{"Ring(4)", appgraph.Ring(4)},
		{"Ring(5)", appgraph.Ring(5)},
		{"Chain(3)", appgraph.Chain(3)},
		{"Chain(4)", appgraph.Chain(4)},
		{"Star(4)", appgraph.Star(4)},
		{"AllToAll(4)", appgraph.AllToAll(4)},
		{"Tree(4)", appgraph.Tree(4)},
	}
	golden := []struct {
		topo    string
		data    *graph.Graph
		raw     []int
		deduped []int
	}{
		{
			// Complete 8-vertex hardware graph: raw counts are P(8,k).
			topo:    "DGX-V/hardware",
			data:    dgxv.Graph,
			raw:     []int{336, 1680, 6720, 336, 1680, 1680, 1680, 1680},
			deduped: []int{56, 210, 672, 168, 840, 280, 70, 840},
		},
		{
			// Sparse NVLink-only graph of the hybrid cube mesh: 8
			// triangles, 12 four-cycles, 24 five-cycles.
			topo:    "DGX-V/physical",
			data:    dgxv.Physical,
			raw:     []int{48, 96, 240, 96, 240, 192, 48, 240},
			deduped: []int{8, 12, 24, 48, 120, 32, 2, 120},
		},
		{
			// NVSwitch all-to-all fabric: complete graph, so counts
			// equal the DGX-V hardware-graph rows.
			topo:    "DGX-A100/hardware",
			data:    dgxa.Graph,
			raw:     []int{336, 1680, 6720, 336, 1680, 1680, 1680, 1680},
			deduped: []int{56, 210, 672, 168, 840, 280, 70, 840},
		},
	}
	for _, g := range golden {
		for i, p := range pats {
			if got := CountEmbeddings(p.g, g.data); got != g.raw[i] {
				t.Errorf("%s %s: CountEmbeddings=%d, golden %d", g.topo, p.name, got, g.raw[i])
			}
			if got := len(FindAllDeduped(p.g, g.data)); got != g.deduped[i] {
				t.Errorf("%s %s: deduped=%d, golden %d", g.topo, p.name, got, g.deduped[i])
			}
			if got := CountEmbeddingsParallel(p.g, g.data, 4); got != g.raw[i] {
				t.Errorf("%s %s: CountEmbeddingsParallel=%d, golden %d", g.topo, p.name, got, g.raw[i])
			}
			if got := len(FindAllDedupedParallel(p.g, g.data, 4)); got != g.deduped[i] {
				t.Errorf("%s %s: parallel deduped=%d, golden %d", g.topo, p.name, got, g.deduped[i])
			}
		}
	}
}

// TestGoldenAutomorphismConsistency cross-checks the golden rows'
// closed form: on a complete data graph every raw count equals
// deduped x |Aut(pattern)|.
func TestGoldenAutomorphismConsistency(t *testing.T) {
	data := topology.DGXA100().Graph
	for _, p := range []*graph.Graph{
		appgraph.Ring(3), appgraph.Ring(4), appgraph.Ring(5),
		appgraph.Chain(3), appgraph.Chain(4),
		appgraph.Star(4), appgraph.AllToAll(4), appgraph.Tree(4),
	} {
		raw := CountEmbeddings(p, data)
		ded := len(FindAllDeduped(p, data))
		aut := Automorphisms(p)
		if raw != ded*aut {
			t.Errorf("pattern %v: raw=%d deduped=%d aut=%d — raw != deduped*aut", p, raw, ded, aut)
		}
	}
}
