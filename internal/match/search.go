package match

import (
	"sync/atomic"

	"mapa/internal/graph"
)

// searches counts every backtracking enumeration started, full or
// rooted — the telemetry behind Searches().
var searches atomic.Uint64

// Searches returns the cumulative number of backtracking enumerations
// this process has started (full runs and per-root subtree runs both
// count). It exists so tests can prove a code path was served without
// entering the search at all — e.g. that a warmed idle-state universe
// answers a new availability state purely by mask filtering.
func Searches() uint64 { return searches.Load() }

// search is one backtracking enumeration over a (pattern, data) pair,
// compiled onto the data graph's adjacency-bitset index. Candidate
// filtering — "unused and adjacent to the images of every matched
// pattern neighbor" — is AND-masks over uint64 words instead of map
// lookups, which is the matcher's hot path.
//
// A search owns its scratch buffers, so one search must not be used
// from multiple goroutines; parallel enumeration gives each worker its
// own search over a shared read-only index. Embeddings are emitted in
// the same deterministic order as the original map-based enumerator:
// depth by depth, candidates in ascending data-vertex order.
type search struct {
	k       int
	order   []int   // pattern vertices in match order
	earlier [][]int // earlier[i]: indices j < i with pattern edge order[j]~order[i]
	pdeg    []int   // pattern degree per order position
	ix      *graph.Index
	cand    []graph.Bitset // per-depth candidate scratch
	used    graph.Bitset   // data positions already assigned
	posAt   []int          // data position per depth
	data    []int          // data vertex ID per depth (the Match.Data buffer)
	m       Match
	fn      func(Match) bool
}

// program is the compiled, immutable plan of one (pattern, data)
// enumeration: match order, per-depth earlier-neighbor lists and
// degree bounds, and the data graph's adjacency-bitset index. One
// program can spawn many searches (one per worker) without paying the
// compilation again.
type program struct {
	k       int
	order   []int
	earlier [][]int
	pdeg    []int
	ix      *graph.Index
}

// compile builds the enumeration plan, reusing a prebuilt data index
// when ix is non-nil. It returns nil if no embedding can exist for
// trivial size reasons.
func compile(pattern, data *graph.Graph, ix *graph.Index) *program {
	k := pattern.NumVertices()
	if k == 0 || k > data.NumVertices() {
		return nil
	}
	if ix == nil {
		ix = graph.NewIndex(data)
	}
	order := matchOrder(pattern)
	pos := make(map[int]int, k)
	for i, v := range order {
		pos[v] = i
	}
	earlier := make([][]int, k)
	pdeg := make([]int, k)
	for i, v := range order {
		pdeg[i] = pattern.Degree(v)
		for _, u := range pattern.Neighbors(v) {
			if j := pos[u]; j < i {
				earlier[i] = append(earlier[i], j)
			}
		}
	}
	return &program{k: k, order: order, earlier: earlier, pdeg: pdeg, ix: ix}
}

// newSearch allocates the mutable scratch state for one enumeration
// of the program.
func (pg *program) newSearch() *search {
	s := &search{
		k:       pg.k,
		order:   pg.order,
		earlier: pg.earlier,
		pdeg:    pg.pdeg,
		ix:      pg.ix,
		cand:    make([]graph.Bitset, pg.k),
		used:    pg.ix.NewSet(),
		posAt:   make([]int, pg.k),
		data:    make([]int, pg.k),
	}
	for i := range s.cand {
		s.cand[i] = pg.ix.NewSet()
	}
	s.m = Match{Pattern: pg.order, Data: s.data}
	return s
}

// newSearch compiles pattern against data and allocates scratch state
// in one step. It returns nil if no embedding can exist for trivial
// size reasons.
func newSearch(pattern, data *graph.Graph, ix *graph.Index) *search {
	pg := compile(pattern, data, ix)
	if pg == nil {
		return nil
	}
	return pg.newSearch()
}

// run enumerates every embedding, invoking fn for each; fn's Match
// reuses buffers exactly as Enumerate documents. It returns false when
// fn stopped the search early.
func (s *search) run(fn func(Match) bool) bool {
	searches.Add(1)
	s.fn = fn
	ok := true
	for p := 0; p < s.ix.Len() && ok; p++ {
		ok = s.root(p)
	}
	return ok
}

// runRoot enumerates the embeddings whose first match-order vertex is
// pinned to data position root. The root's degree-pruning check still
// applies, so running runRoot over every position reproduces run,
// emission order included.
func (s *search) runRoot(root int, fn func(Match) bool) bool {
	searches.Add(1)
	s.fn = fn
	return s.root(root)
}

func (s *search) root(p int) bool {
	if s.ix.Degree(p) < s.pdeg[0] {
		return true
	}
	s.posAt[0] = p
	s.data[0] = s.ix.Vertex(p)
	if s.k == 1 {
		return s.fn(s.m)
	}
	s.used.Set(p)
	ok := s.rec(1)
	s.used.Unset(p)
	return ok
}

func (s *search) rec(depth int) bool {
	if depth == s.k {
		return s.fn(s.m)
	}
	// Candidates = ∩ adj(images of earlier pattern neighbors) \ used.
	// Every match-order position after the first has at least one
	// earlier neighbor on a connected pattern; disconnected patterns
	// fall back to the full vertex set.
	c := s.cand[depth]
	if e := s.earlier[depth]; len(e) > 0 {
		c.CopyFrom(s.ix.Adj(s.posAt[e[0]]))
		for _, j := range e[1:] {
			c.And(s.ix.Adj(s.posAt[j]))
		}
	} else {
		c.CopyFrom(s.ix.All())
	}
	c.AndNot(s.used)
	ok := true
	c.ForEach(func(p int) bool {
		if s.ix.Degree(p) < s.pdeg[depth] {
			return true
		}
		s.posAt[depth] = p
		s.data[depth] = s.ix.Vertex(p)
		s.used.Set(p)
		ok = s.rec(depth + 1)
		s.used.Unset(p)
		return ok
	})
	return ok
}
