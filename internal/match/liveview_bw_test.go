package match

import (
	"math/rand"
	"testing"

	"mapa/internal/graph"
)

// ringPatternBW builds a k-ring pattern for the bandwidth tests.
func ringPatternBW(k int) *graph.Graph {
	g := graph.New()
	for v := 0; v < k; v++ {
		g.MustAddEdge(v, (v+1)%k, 1, 0)
	}
	return g
}

// checkBWOracle asserts the weighted view's delta-maintained accounting
// against a from-scratch recomputation on the induced free subgraph:
// FreeWeight must equal the induced subgraph's total weight, every
// vertex's FreeIncidentWeight its summed edges into the free set, and
// PreservedBW the exact remainder weight after removing a candidate.
// All weights are integral, so every comparison is exact equality.
func checkBWOracle(t *testing.T, lv *LiveView, data *graph.Graph, free []int, step string) {
	t.Helper()
	avail := data.InducedSubgraph(free)
	if got, want := lv.FreeWeight(), avail.TotalWeight(); got != want {
		t.Fatalf("%s: FreeWeight = %g, induced subgraph weighs %g", step, got, want)
	}
	inFree := make(map[int]bool, len(free))
	for _, g := range free {
		inFree[g] = true
	}
	for _, v := range data.Vertices() {
		var want float64
		for _, e := range data.IncidentEdges(v) {
			if inFree[e.Other(v)] {
				want += e.Weight
			}
		}
		if got := lv.FreeIncidentWeight(v); got != want {
			t.Fatalf("%s: FreeIncidentWeight(%d) = %g, want %g", step, v, got, want)
		}
	}
	// Every live candidate's Eq. 3 must equal the remainder weight.
	lv.ForEachLive(func(i int) bool {
		gpus := lv.Universe().Match(i).DataVertices()
		var internal float64
		for a, g := range gpus {
			for _, h := range gpus[a+1:] {
				internal += data.Weight(g, h)
			}
		}
		if got, want := lv.PreservedBW(internal, gpus), avail.WeightWithout(gpus); got != want {
			t.Fatalf("%s: PreservedBW(%v) = %g, want %g", step, gpus, got, want)
		}
		return true
	})
}

// TestWeightedLiveViewChurnOracle churns a weighted view through seeded
// allocate/release interleavings and cross-checks the bandwidth
// accounting against the from-scratch oracle after every step,
// finishing with a drain that must restore the idle sums bit for bit.
func TestWeightedLiveViewChurnOracle(t *testing.T) {
	data := graph.New()
	// An irregular weighted graph: ring + chords with mixed integral
	// weights.
	for v := 0; v < 10; v++ {
		data.MustAddEdge(v, (v+1)%10, float64(12+(v%3)*13), 0)
	}
	data.MustAddEdge(0, 5, 50, 0)
	data.MustAddEdge(2, 7, 25, 0)
	data.MustAddEdge(3, 8, 20, 0)
	pattern := ringPatternBW(3)
	u := BuildUniverse(pattern, data, 0, 1)
	lv := NewWeightedLiveView(u, data.VertexBitset(), data)

	idleTotal := lv.FreeWeight()
	if idleTotal != data.TotalWeight() {
		t.Fatalf("idle FreeWeight = %g, want %g", idleTotal, data.TotalWeight())
	}
	rng := rand.New(rand.NewSource(17))
	free := append([]int(nil), data.Vertices()...)
	var deltas [][]int
	for step := 0; step < 300; step++ {
		if len(free) >= 3 && (len(deltas) == 0 || rng.Intn(2) == 0) {
			k := 1 + rng.Intn(3)
			d := make([]int, 0, k)
			for len(d) < k && len(free) > 0 {
				i := rng.Intn(len(free))
				d = append(d, free[i])
				free[i] = free[len(free)-1]
				free = free[:len(free)-1]
			}
			deltas = append(deltas, d)
			lv.Allocate(d)
		} else if len(deltas) > 0 {
			i := rng.Intn(len(deltas))
			d := deltas[i]
			deltas[i] = deltas[len(deltas)-1]
			deltas = deltas[:len(deltas)-1]
			lv.Release(d)
			free = append(free, d...)
		}
		checkBWOracle(t, lv, data, free, "churn step")
	}
	for _, d := range deltas {
		lv.Release(d)
		free = append(free, d...)
	}
	if lv.FreeWeight() != idleTotal {
		t.Fatalf("drained FreeWeight = %g, want idle %g (delta accounting must invert exactly)",
			lv.FreeWeight(), idleTotal)
	}
	checkBWOracle(t, lv, data, free, "after drain")
}

// TestUnweightedLiveViewReportsUnweighted pins the constructor split:
// NewLiveView maintains no bandwidth accounting.
func TestUnweightedLiveViewReportsUnweighted(t *testing.T) {
	data := graph.New()
	data.MustAddEdge(0, 1, 25, 0)
	data.MustAddEdge(1, 2, 12, 0)
	u := BuildUniverse(ringPatternBW(3), data, 0, 1)
	if lv := NewLiveView(u, data.VertexBitset()); lv.Weighted() {
		t.Fatal("NewLiveView must not enable bandwidth accounting")
	}
	if lv := NewWeightedLiveView(u, data.VertexBitset(), data); !lv.Weighted() {
		t.Fatal("NewWeightedLiveView must enable bandwidth accounting")
	}
}

// FuzzLiveViewBandwidth fuzzes the freeIncidentWeight delta accounting
// against the recompute-from-scratch oracle: a random sparse-ID
// weighted graph, a random allocate/revert/release stream, and after
// every operation the maintained totals must equal the induced
// subgraph's, exactly (integral weights).
func FuzzLiveViewBandwidth(f *testing.F) {
	f.Add(int64(1), uint8(3), []byte{1, 2, 3, 4, 5, 6})
	f.Add(int64(7), uint8(4), []byte{0, 0, 1, 9, 200, 3, 17})
	f.Add(int64(42), uint8(2), []byte{255, 128, 64, 32, 16, 8})
	f.Fuzz(func(t *testing.T, seed int64, kRaw uint8, ops []byte) {
		rng := rand.New(rand.NewSource(seed))
		// Sparse vertex IDs with random integral weights.
		data := graph.New()
		ids := rng.Perm(40)[:12]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if rng.Intn(3) == 0 {
					data.MustAddEdge(ids[i], ids[j], float64(1+rng.Intn(50)), 0)
				}
			}
		}
		if data.NumVertices() < 4 {
			t.Skip("too sparse")
		}
		k := int(kRaw%3) + 2
		pattern := ringPatternBW(k)
		u := BuildUniverse(pattern, data, 0, 1)
		lv := NewWeightedLiveView(u, data.VertexBitset(), data)

		verts := data.Vertices()
		freeSet := make(map[int]bool, len(verts))
		for _, v := range verts {
			freeSet[v] = true
		}
		freeList := func() []int {
			var out []int
			for _, v := range verts {
				if freeSet[v] {
					out = append(out, v)
				}
			}
			return out
		}
		check := func(step string) {
			avail := data.InducedSubgraph(freeList())
			if got, want := lv.FreeWeight(), avail.TotalWeight(); got != want {
				t.Fatalf("%s: FreeWeight = %g, want %g", step, got, want)
			}
			for _, v := range verts {
				var want float64
				for _, e := range data.IncidentEdges(v) {
					if freeSet[e.Other(v)] {
						want += e.Weight
					}
				}
				if got := lv.FreeIncidentWeight(v); got != want {
					t.Fatalf("%s: FreeIncidentWeight(%d) = %g, want %g", step, v, got, want)
				}
			}
		}
		for _, op := range ops {
			v := verts[int(op)%len(verts)]
			if freeSet[v] {
				lv.Allocate([]int{v})
				freeSet[v] = false
			} else {
				lv.Release([]int{v})
				freeSet[v] = true
			}
			check("after op")
		}
	})
}
