package match

import "mapa/internal/graph"

// Compatible decides whether data vertex d may host pattern vertex p.
// It is the vertex-label predicate of label-aware matching: the paper
// (Sec. 3.3) proposes labeling application vertices with resource
// requirements and hardware vertices with availability (threads,
// memory, MIG slices) and restricting matches to compatible pairs.
type Compatible func(patternVertex, dataVertex int) bool

// EnumerateLabeled is Enumerate restricted to embeddings where every
// pattern vertex maps to a compatible data vertex. A nil predicate
// admits every pair (plain Enumerate).
func EnumerateLabeled(pattern, data *graph.Graph, ok Compatible, fn func(Match) bool) {
	if ok == nil {
		Enumerate(pattern, data, fn)
		return
	}
	Enumerate(pattern, data, func(m Match) bool {
		for i, p := range m.Pattern {
			if !ok(p, m.Data[i]) {
				return true // skip incompatible embedding, keep searching
			}
		}
		return fn(m)
	})
}

// FindAllLabeledDeduped returns one representative per match
// equivalence class among label-compatible embeddings.
func FindAllLabeledDeduped(pattern, data *graph.Graph, ok Compatible) []Match {
	seen := make(map[string]bool)
	var out []Match
	EnumerateLabeled(pattern, data, ok, func(m Match) bool {
		key := m.Key(pattern, data)
		if !seen[key] {
			seen[key] = true
			out = append(out, m.Clone())
		}
		return true
	})
	return out
}

// HasLabeledMatch reports whether any label-compatible embedding
// exists.
func HasLabeledMatch(pattern, data *graph.Graph, ok Compatible) bool {
	found := false
	EnumerateLabeled(pattern, data, ok, func(Match) bool {
		found = true
		return false
	})
	return found
}
