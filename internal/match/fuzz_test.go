package match

import (
	"math/rand"
	"testing"

	"mapa/internal/graph"
)

// FuzzEnumerate drives the enumerator over randomized pattern/data
// graph pairs derived from the fuzz input and asserts the matcher
// invariants: every emitted match is a valid embedding, raw counts
// match the brute-force oracle, and the parallel enumeration is
// byte-identical to the sequential one.
func FuzzEnumerate(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(6), uint8(128), uint8(128))
	f.Add(int64(2), uint8(2), uint8(5), uint8(255), uint8(64))
	f.Add(int64(3), uint8(4), uint8(7), uint8(200), uint8(180))
	f.Add(int64(4), uint8(1), uint8(1), uint8(0), uint8(0))
	f.Add(int64(5), uint8(5), uint8(5), uint8(90), uint8(240))
	f.Add(int64(6), uint8(3), uint8(8), uint8(30), uint8(220))
	f.Fuzz(func(t *testing.T, seed int64, pn, dn, pp, dp uint8) {
		// Bound sizes so the brute-force oracle stays fast.
		patternN := 1 + int(pn)%5 // 1..5
		dataN := 1 + int(dn)%8    // 1..8
		rng := rand.New(rand.NewSource(seed))
		pattern := fuzzGraph(rng, patternN, float64(pp)/255)
		data := fuzzGraph(rng, dataN, float64(dp)/255)

		var emitted int
		Enumerate(pattern, data, func(m Match) bool {
			emitted++
			if !IsEmbedding(pattern, data, m) {
				t.Fatalf("Enumerate emitted invalid embedding: pattern=%v data=%v match=%+v",
					pattern, data, m)
			}
			return true
		})
		oracle := bruteForce(pattern, data)
		if emitted != len(oracle) {
			t.Fatalf("Enumerate emitted %d embeddings, oracle %d (pattern=%v data=%v)",
				emitted, len(oracle), pattern, data)
		}
		seq := FindAll(pattern, data)
		par := FindAllParallel(pattern, data, 4)
		if !sameMatches(seq, par) {
			t.Fatalf("parallel enumeration diverged from sequential (pattern=%v data=%v)", pattern, data)
		}
		for _, m := range FindAllDeduped(pattern, data) {
			if !IsEmbedding(pattern, data, m) {
				t.Fatalf("FindAllDeduped emitted invalid embedding %+v", m)
			}
		}
	})
}

func fuzzGraph(rng *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New()
	for v := 0; v < n; v++ {
		g.AddVertex(v)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v, 1, 0)
			}
		}
	}
	return g
}
