package match

import (
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
	"mapa/internal/topology"
)

// TestClusterGoldenEmbeddingCounts pins embedding counts for small
// patterns on the synthetic 9-node (72-GPU) DGX-A100 cluster — the
// first topology whose vertex bitsets span multiple uint64 words. The
// hardware graph is complete (intra-node NVSwitch + inter-node PCIe
// fallback), so every count has a closed form on K_72:
//
//	Ring(2):  deduped = C(72,2),   raw = 2 per class (|Aut| = 2)
//	Ring(3):  deduped = C(72,3),   raw = 6 per class (|Aut| = 6)
//	Chain(3): deduped = 3*C(72,3), raw = 2 per class (|Aut| = 2)
func TestClusterGoldenEmbeddingCounts(t *testing.T) {
	top := topology.ClusterA100(9)
	if got := top.NumGPUs(); got != 72 {
		t.Fatalf("9-node cluster has %d GPUs, want 72", got)
	}
	const (
		c72x2 = 72 * 71 / 2
		c72x3 = 72 * 71 * 70 / 6
	)
	cases := []struct {
		name    string
		pattern *graph.Graph
		raw     int
		deduped int
	}{
		{"Ring(2)", appgraph.Ring(2), 2 * c72x2, c72x2},
		{"Ring(3)", appgraph.Ring(3), 6 * c72x3, c72x3},
		{"Chain(3)", appgraph.Chain(3), 2 * 3 * c72x3, 3 * c72x3},
	}
	for _, tc := range cases {
		if got := CountEmbeddings(tc.pattern, top.Graph); got != tc.raw {
			t.Errorf("%s raw count = %d, want %d", tc.name, got, tc.raw)
		}
		ms, _ := FindAllDedupedCappedKeys(tc.pattern, top.Graph, 0)
		if got := len(ms); got != tc.deduped {
			t.Errorf("%s deduped count = %d, want %d", tc.name, got, tc.deduped)
		}
		if aut := Automorphisms(tc.pattern); tc.raw != tc.deduped*aut {
			t.Errorf("%s closed-form cross-check: raw %d != deduped %d x |Aut| %d", tc.name, tc.raw, tc.deduped, aut)
		}
	}
}

// TestClusterUniverseFiltersAcrossWordBoundary builds the idle-state
// universe of the triangle on the 72-GPU cluster and filters it with
// free-GPU masks that live in the second bitset word, straddle the
// 64-bit boundary, and span both words — each must reproduce the
// sequential enumeration on the induced subgraph exactly.
func TestClusterUniverseFiltersAcrossWordBoundary(t *testing.T) {
	top := topology.ClusterA100(9)
	pattern := appgraph.Ring(3)
	u := BuildUniverse(pattern, top.Graph, 0, 1)
	if !u.Complete() {
		t.Fatal("triangle universe on the cluster must be complete")
	}
	const c72x3 = 72 * 71 * 70 / 6
	if u.Len() != c72x3 {
		t.Fatalf("universe holds %d classes, want %d", u.Len(), c72x3)
	}

	choose3 := func(n int) int { return n * (n - 1) * (n - 2) / 6 }
	frees := []struct {
		name string
		gpus []int
		want int
	}{
		{"word1-only", intsRange(64, 72), choose3(8)},
		{"straddling", intsRange(56, 72), choose3(16)},
		{"both-words-sparse", []int{0, 1, 8, 40, 63, 64, 65, 71}, choose3(8)},
	}
	for _, tc := range frees {
		avail := top.Graph.InducedSubgraph(tc.gpus)
		idx, truncated := u.Filter(avail.VertexBitset(), 0)
		if truncated {
			t.Fatalf("%s: unlimited filter truncated", tc.name)
		}
		if len(idx) != tc.want {
			t.Fatalf("%s: filter kept %d classes, want %d", tc.name, len(idx), tc.want)
		}
		_, wantKeys := FindAllDedupedCappedKeys(pattern, avail, 0)
		if len(wantKeys) != len(idx) {
			t.Fatalf("%s: sequential enumeration found %d classes, filter %d", tc.name, len(wantKeys), len(idx))
		}
		for j, i := range idx {
			if u.Key(i) != wantKeys[j] {
				t.Fatalf("%s class %d: key %q, want %q", tc.name, j, u.Key(i), wantKeys[j])
			}
		}
	}
}

func intsRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for v := lo; v < hi; v++ {
		out = append(out, v)
	}
	return out
}
