package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mapa/internal/graph"
	"mapa/internal/topology"
)

func ring(k int) *graph.Graph {
	g := graph.New()
	for v := 0; v < k; v++ {
		g.MustAddEdge(v, (v+1)%k, 1, 0)
	}
	return g
}

func chain(k int) *graph.Graph {
	g := graph.New()
	if k == 1 {
		g.AddVertex(0)
		return g
	}
	for v := 0; v+1 < k; v++ {
		g.MustAddEdge(v, v+1, 1, 0)
	}
	return g
}

func complete(n int) *graph.Graph {
	g := graph.New()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v, 1, 0)
		}
	}
	return g
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

func TestFindAllCountsOnCompleteGraph(t *testing.T) {
	// On K_n, the number of raw embeddings of any k-vertex pattern is
	// n!/(n-k)! (every injection works).
	for _, tc := range []struct{ k, n int }{{2, 4}, {3, 5}, {4, 6}} {
		p := ring(tc.k)
		if tc.k == 2 {
			p = chain(2)
		}
		got := CountEmbeddings(p, complete(tc.n))
		want := factorial(tc.n) / factorial(tc.n-tc.k)
		if got != want {
			t.Errorf("k=%d n=%d: embeddings = %d, want %d", tc.k, tc.n, got, want)
		}
	}
}

func TestAutomorphismCounts(t *testing.T) {
	cases := []struct {
		name string
		p    *graph.Graph
		want int
	}{
		{"ring3", ring(3), 6},   // dihedral group D3
		{"ring4", ring(4), 8},   // D4
		{"ring5", ring(5), 10},  // D5
		{"chain2", chain(2), 2}, // swap
		{"chain3", chain(3), 2}, // reflection
		{"chain4", chain(4), 2},
		{"K4", complete(4), 24}, // S4
	}
	for _, tc := range cases {
		if got := Automorphisms(tc.p); got != tc.want {
			t.Errorf("%s: Aut = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestStar(t *testing.T) {
	star := graph.New()
	for leaf := 1; leaf <= 3; leaf++ {
		star.MustAddEdge(0, leaf, 1, 0)
	}
	if got := Automorphisms(star); got != 6 { // 3! leaf permutations
		t.Errorf("star Aut = %d, want 6", got)
	}
	// A star cannot embed into a ring (no vertex of degree 3).
	if HasMatch(star, ring(6)) {
		t.Error("star should not match a ring")
	}
	if !HasMatch(star, complete(4)) {
		t.Error("star should match K4")
	}
}

func TestDedupedCountsOnCompleteGraph(t *testing.T) {
	// On K_n each equivalence class has exactly |Aut(P)| raw
	// embeddings, so deduped = raw / |Aut|.
	for _, k := range []int{3, 4, 5} {
		p := ring(k)
		data := complete(6)
		raw := CountEmbeddings(p, data)
		ded := len(FindAllDeduped(p, data))
		if aut := Automorphisms(p); ded*aut != raw {
			t.Errorf("ring%d on K6: deduped %d * aut %d != raw %d", k, ded, aut, raw)
		}
	}
}

func TestDedupedRing3OnDGXV(t *testing.T) {
	// The DGX-V hardware graph is complete on 8 vertices, so a 3-ring
	// has C(8,3) = 56 distinct matches (triangle edge set is determined
	// by the vertex set).
	top := topology.DGXV100()
	got := len(FindAllDeduped(ring(3), top.Graph))
	if got != 56 {
		t.Errorf("deduped 3-ring matches on DGX-V = %d, want 56", got)
	}
}

func TestDedupedRing4OnDGXV(t *testing.T) {
	// For a 4-ring on a complete graph, each 4-subset supports
	// 4!/|D4| = 3 distinct edge sets, so C(8,4)*3 = 210.
	top := topology.DGXV100()
	got := len(FindAllDeduped(ring(4), top.Graph))
	if got != 210 {
		t.Errorf("deduped 4-ring matches on DGX-V = %d, want 210", got)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	n := 0
	Enumerate(ring(3), complete(5), func(Match) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Errorf("early stop saw %d matches, want 4", n)
	}
}

func TestPatternLargerThanDataHasNoMatch(t *testing.T) {
	if HasMatch(ring(5), complete(4)) {
		t.Error("5-ring cannot embed into K4")
	}
	if got := FindAll(ring(5), complete(4)); got != nil {
		t.Errorf("FindAll should be empty, got %d", len(got))
	}
}

func TestEmptyPattern(t *testing.T) {
	if HasMatch(graph.New(), complete(3)) {
		t.Error("empty pattern should produce no matches")
	}
}

func TestSingleVertexPattern(t *testing.T) {
	p := graph.New()
	p.AddVertex(7)
	ms := FindAll(p, complete(3))
	if len(ms) != 3 {
		t.Fatalf("single-vertex pattern matches = %d, want 3", len(ms))
	}
	for _, m := range ms {
		if !IsEmbedding(p, complete(3), m) {
			t.Errorf("invalid embedding %+v", m)
		}
	}
}

func TestRingDoesNotMatchSparseGraph(t *testing.T) {
	// A 4-ring cannot embed into a 4-chain.
	if HasMatch(ring(4), chain(4)) {
		t.Error("4-ring should not match 4-chain")
	}
	// But a 3-chain embeds into a 4-ring.
	if !HasMatch(chain(3), ring(4)) {
		t.Error("3-chain should match 4-ring")
	}
}

func TestMatchAccessors(t *testing.T) {
	p := chain(2)
	data := complete(3)
	ms := FindAll(p, data)
	if len(ms) != 6 {
		t.Fatalf("matches = %d, want 6", len(ms))
	}
	m := ms[0]
	if vs := m.DataVertices(); len(vs) != 2 || vs[0] > vs[1] {
		t.Errorf("DataVertices not sorted: %v", vs)
	}
	if _, ok := m.MappingOf(0); !ok {
		t.Error("MappingOf(0) missing")
	}
	if _, ok := m.MappingOf(42); ok {
		t.Error("MappingOf(42) should be absent")
	}
	if es := m.UsedEdges(p, data); len(es) != 1 {
		t.Errorf("UsedEdges = %v, want one edge", es)
	}
}

func TestIsEmbeddingRejectsBadMappings(t *testing.T) {
	p := chain(2)
	data := complete(3)
	bad := []Match{
		{Pattern: []int{0, 1}, Data: []int{0, 0}},    // not injective
		{Pattern: []int{0, 1}, Data: []int{0, 99}},   // unknown data vertex
		{Pattern: []int{0, 0}, Data: []int{0, 1}},    // duplicate pattern vertex
		{Pattern: []int{0}, Data: []int{0}},          // wrong arity
		{Pattern: []int{0, 1}, Data: []int{0, 1, 2}}, // mismatched lengths
	}
	for i, m := range bad {
		if IsEmbedding(p, data, m) {
			t.Errorf("case %d: IsEmbedding accepted invalid mapping %+v", i, m)
		}
	}
}

func TestIsEmbeddingRejectsMissingEdge(t *testing.T) {
	p := ring(3)
	data := chain(3) // has only 2 edges
	m := Match{Pattern: []int{0, 1, 2}, Data: []int{0, 1, 2}}
	if IsEmbedding(p, data, m) {
		t.Error("embedding with missing data edge accepted")
	}
}

func TestUsedEdgesPanicsOnInvalidEmbedding(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UsedEdges on invalid embedding should panic")
		}
	}()
	m := Match{Pattern: []int{0, 1, 2}, Data: []int{0, 1, 2}}
	m.UsedEdges(ring(3), chain(3))
}

func TestKeyStableAcrossAutomorphicMatches(t *testing.T) {
	p := ring(3)
	data := complete(3)
	ms := FindAll(p, data)
	if len(ms) != 6 {
		t.Fatalf("matches = %d", len(ms))
	}
	key := ms[0].Key(p, data)
	for _, m := range ms[1:] {
		if m.Key(p, data) != key {
			t.Errorf("automorphic match has different key: %q vs %q", m.Key(p, data), key)
		}
	}
}

func TestMatchOrderConnected(t *testing.T) {
	p := ring(5)
	order := matchOrder(p)
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
	seen := map[int]bool{order[0]: true}
	for _, v := range order[1:] {
		connected := false
		for _, u := range p.Neighbors(v) {
			if seen[u] {
				connected = true
			}
		}
		if !connected {
			t.Errorf("order %v disconnects at %d", order, v)
		}
		seen[v] = true
	}
}

// Property: every match returned by FindAll is a valid embedding, and
// deduped matches have pairwise-distinct keys.
func TestAllMatchesValidProperty(t *testing.T) {
	top := topology.DGXV100()
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%4) + 2
		r := rand.New(rand.NewSource(seed))
		var p *graph.Graph
		if r.Intn(2) == 0 {
			p = ring(k)
		} else {
			p = chain(k)
		}
		ms := FindAllDeduped(p, top.Graph)
		keys := make(map[string]bool)
		for _, m := range ms {
			if !IsEmbedding(p, top.Graph, m) {
				return false
			}
			key := m.Key(p, top.Graph)
			if keys[key] {
				return false
			}
			keys[key] = true
		}
		return len(ms) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: raw count equals deduped count times |Aut| on complete data
// graphs.
func TestOrbitSizeProperty(t *testing.T) {
	f := func(kRaw, nRaw uint8) bool {
		k := int(kRaw%3) + 3 // 3..5
		n := int(nRaw%2) + 6 // 6..7
		p := ring(k)
		data := complete(n)
		return CountEmbeddings(p, data) == len(FindAllDeduped(p, data))*Automorphisms(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFindAllMatchesAgainstBruteForce(t *testing.T) {
	// Verify the VF2-style search against exhaustive permutation
	// checking on a sparse data graph where pruning actually matters.
	data := graph.New()
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}, {3, 4}}
	for _, e := range edges {
		data.MustAddEdge(e[0], e[1], 1, 0)
	}
	p := ring(3)
	got := CountEmbeddings(p, data)

	// Brute force: try all ordered triples.
	want := 0
	vs := data.Vertices()
	for _, a := range vs {
		for _, b := range vs {
			for _, c := range vs {
				if a == b || b == c || a == c {
					continue
				}
				if data.HasEdge(a, b) && data.HasEdge(b, c) && data.HasEdge(c, a) {
					want++
				}
			}
		}
	}
	if got != want {
		t.Errorf("embeddings = %d, brute force = %d", got, want)
	}
}
