// Worker-pool parallel enumeration. The search space is partitioned on
// the candidates of the first match-order pattern vertex: each root
// candidate spans an independent subtree of the backtracking search, so
// workers enumerate disjoint subtrees with no shared mutable state and
// results are stitched back together in root order — byte-identical to
// the sequential enumeration, just faster.
//
// Dispatch is cost-estimated work stealing (see cost.go): roots are
// packed into cost-descending chunks and claimed from a shared queue,
// so a dense root starts first instead of serializing the tail of the
// build. Claim order never affects output — the stitch walks roots in
// ascending order regardless of who enumerated them when.
package match

import (
	"sync"
	"sync/atomic"
	"time"

	"mapa/internal/graph"
)

// Searcher is a compiled enumeration of one (pattern, data) pair whose
// per-root searches can run concurrently: the match order, pruning
// tables, and the adjacency-bitset index are compiled once and shared
// read-only, while every Session gets private scratch state.
type Searcher struct {
	pg    *program
	roots []int
	costs []float64 // optional plan-cost override (SetCosts); nil = static estimate
}

// SetCosts overrides the static per-root cost estimate the
// work-stealing planner chunks by — the hook the EWMA calibration uses
// to feed measured enumeration times back into the plan. costs must be
// aligned with Roots(); a mismatched length is ignored. Only the chunk
// plan changes: enumeration output is byte-identical under any costs.
func (sr *Searcher) SetCosts(costs []float64) {
	if len(costs) == len(sr.roots) {
		sr.costs = costs
	}
}

// planCosts returns the per-root costs the dispatcher plans with: the
// SetCosts override when present, the static estimate otherwise.
func (sr *Searcher) planCosts() []float64 {
	if sr.costs != nil {
		return sr.costs
	}
	return sr.rootCosts()
}

// NewSearcher compiles pattern against data. The result is never nil;
// if no embedding can exist for size reasons, Roots is empty.
func NewSearcher(pattern, data *graph.Graph) *Searcher {
	sr := &Searcher{pg: compile(pattern, data, nil)}
	if sr.pg == nil {
		return sr
	}
	for p := 0; p < sr.pg.ix.Len(); p++ {
		if sr.pg.ix.Degree(p) >= sr.pg.pdeg[0] {
			sr.roots = append(sr.roots, sr.pg.ix.Vertex(p))
		}
	}
	return sr
}

// Roots returns the data vertices eligible as the image of the first
// match-order pattern vertex, in ascending order. Enumerating every
// root reproduces the sequential enumeration exactly.
func (sr *Searcher) Roots() []int { return sr.roots }

// Order returns the pattern's match order (the Pattern slice of every
// emitted Match).
func (sr *Searcher) Order() []int {
	if sr.pg == nil {
		return nil
	}
	return sr.pg.order
}

// Session is one worker's scratch state over a Searcher. Sessions of
// the same Searcher may run concurrently; a single Session may not.
type Session struct {
	s  *search
	ky *Keyer
}

// keyer returns the session's lazily built Keyer for the searcher's
// pattern, amortizing its buffers across the worker's roots.
func (se *Session) keyer(pattern *graph.Graph) *Keyer {
	if se.ky == nil {
		se.ky = NewKeyer(pattern, se.s.order)
	}
	return se.ky
}

// Session allocates enumeration scratch state. Root may be called any
// number of times on it, amortizing the allocation across roots.
func (sr *Searcher) Session() *Session {
	if sr.pg == nil {
		return &Session{}
	}
	return &Session{s: sr.pg.newSearch()}
}

// Root enumerates the embeddings that map the first match-order
// pattern vertex to the data vertex root, in the sequential emission
// order. The Match passed to fn reuses buffers, exactly like
// Enumerate.
func (se *Session) Root(root int, fn func(Match) bool) {
	if se.s == nil {
		return
	}
	p, ok := se.s.ix.PosOf(root)
	if !ok {
		return
	}
	se.s.runRoot(p, fn)
}

// Enumerate runs the full sequential enumeration — every root in
// ascending order. Identical to the package-level Enumerate.
func (sr *Searcher) Enumerate(fn func(Match) bool) {
	if sr.pg == nil {
		return
	}
	sr.pg.newSearch().run(fn)
}

// EnumerateRoot is Session().Root for one-shot use. Calls with
// distinct roots may run concurrently.
func (sr *Searcher) EnumerateRoot(root int, fn func(Match) bool) {
	sr.Session().Root(root, fn)
}

// capTracker decides when a capped parallel enumeration may stop
// dispatching roots. With cost-ordered claiming, completed roots no
// longer form a contiguous prefix of enumeration order, so the PR 1
// "dispatched prefix holds k*max classes" argument is replaced by an
// explicit one: the tracker records per-root class counts as roots
// finish and advances the boundary of the *contiguous completed
// prefix* in root order. A class's raw embeddings map the first
// match-order vertex to at most k distinct data vertices, so it
// appears under at most k roots; once the contiguous prefix holds at
// least k*max per-root classes it must contain the first max global
// classes, and the in-order stitch is guaranteed to reach the cap
// before any undispatched hole — the truncated output stays the exact
// deterministic sequential prefix.
type capTracker struct {
	mu       sync.Mutex
	stopAt   int64
	classes  []int64
	done     []bool
	boundary int   // first root index not yet completed
	prefix   int64 // summed classes of roots [0, boundary)
	stopped  atomic.Bool
}

func newCapTracker(roots int, stopAt int64) *capTracker {
	return &capTracker{
		stopAt:  stopAt,
		classes: make([]int64, roots),
		done:    make([]bool, roots),
	}
}

func (t *capTracker) stop() bool { return t.stopped.Load() }

// complete records that root i finished with the given class count and
// advances the contiguous-prefix boundary.
func (t *capTracker) complete(i, classes int) {
	t.mu.Lock()
	t.done[i] = true
	t.classes[i] = int64(classes)
	for t.boundary < len(t.done) && t.done[t.boundary] {
		t.prefix += t.classes[t.boundary]
		t.boundary++
	}
	if t.prefix >= t.stopAt {
		t.stopped.Store(true)
	}
	t.mu.Unlock()
}

// forEachRoot runs fn(session, rootIndex, root) over all roots with up
// to `workers` goroutines — the single dispatch loop every parallel
// entry point shares. Roots are claimed as cost-descending chunks from
// a shared queue (see cost.go), each worker owning one Session for all
// its roots. fn returns the root's class count for cap accounting. A
// non-nil tracker is polled before each root; once it stops, no
// further roots start (in-flight roots finish and are recorded). A
// non-nil stats receives the dispatch accounting.
func (sr *Searcher) forEachRoot(workers int, tr *capTracker, stats *BuildStats, fn func(se *Session, i int, root int) int) {
	costs := sr.planCosts()
	chunks := planChunks(costs, workers)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if stats != nil {
		stats.Workers = workers
		stats.Roots = len(sr.roots)
		stats.Chunks = len(chunks)
		for _, c := range costs {
			stats.TotalCost += c
		}
		stats.Plan = PlanImbalance(costs, chunks, workers)
		stats.WorkerCost = make([]float64, workers)
		stats.WorkerRoots = make([]int, workers)
		stats.RootSeconds = make([]float64, len(sr.roots))
		stats.Calibrated = sr.costs != nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			se := sr.Session()
			for {
				if tr != nil && tr.stop() {
					return
				}
				c := int(next.Add(1)) - 1
				if c >= len(chunks) {
					return
				}
				for _, i := range chunks[c] {
					if tr != nil && tr.stop() {
						return
					}
					var start time.Time
					if stats != nil {
						start = time.Now()
					}
					n := fn(se, i, sr.roots[i])
					if stats != nil {
						// Per-root wall time feeds the EWMA cost
						// calibration; each RootSeconds slot is written
						// by exactly one worker.
						stats.RootSeconds[i] = time.Since(start).Seconds()
					}
					if tr != nil {
						tr.complete(i, n)
					}
					if stats != nil {
						stats.WorkerCost[w] += costs[i]
						stats.WorkerRoots[w]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// FindAllParallel returns every embedding of pattern into data using a
// pool of `workers` goroutines, one search subtree per first-vertex
// candidate. The result is identical to FindAll, ordering included.
// workers < 2 (or a trivially small search) falls back to the
// sequential path.
func FindAllParallel(pattern, data *graph.Graph, workers int) []Match {
	sr := NewSearcher(pattern, data)
	if workers < 2 || len(sr.roots) < 2 {
		var out []Match
		sr.Enumerate(func(m Match) bool {
			out = append(out, m.Clone())
			return true
		})
		return out
	}
	perRoot := make([][]Match, len(sr.roots))
	sr.forEachRoot(workers, nil, nil, func(se *Session, i, root int) int {
		var out []Match
		se.Root(root, func(m Match) bool {
			out = append(out, m.Clone())
			return true
		})
		perRoot[i] = out
		return 0
	})
	var all []Match
	for _, ms := range perRoot {
		all = append(all, ms...)
	}
	return all
}

// FindAllDedupedParallel is FindAllParallel followed by the
// FindAllDeduped equivalence-class collapse. Workers compute canonical
// keys for their subtrees; the dedup merge walks roots in order, so the
// representatives (and their order) are identical to FindAllDeduped.
func FindAllDedupedParallel(pattern, data *graph.Graph, workers int) []Match {
	ms, _ := FindAllDedupedParallelKeys(pattern, data, workers, 0)
	return ms
}

// FindAllDedupedParallelKeys is the parallel FindAllDedupedCappedKeys:
// it returns the first max (<= 0: all) deduplicated representatives in
// sequential enumeration order with their canonical keys. Workers
// deduplicate within each root subtree before cloning, and the merge
// walks roots in order, so the output is identical to the sequential
// capped enumeration.
func FindAllDedupedParallelKeys(pattern, data *graph.Graph, workers, max int) ([]Match, []string) {
	ms, keys, _ := FindAllDedupedParallelKeysStats(pattern, data, workers, max, false)
	return ms, keys
}

// FindAllDedupedParallelKeysStats is FindAllDedupedParallelKeys that
// additionally returns the dispatch accounting of the work-stealing
// partitioner when withStats is set (nil on the sequential fallback or
// when withStats is false) — the instrumentation behind the
// universe-build benchmarks and Store build timings.
func FindAllDedupedParallelKeysStats(pattern, data *graph.Graph, workers, max int, withStats bool) ([]Match, []string, *BuildStats) {
	return dedupedParallelOn(NewSearcher(pattern, data), pattern, workers, max, withStats)
}

// dedupedParallelOn is the FindAllDedupedParallelKeysStats body over an
// already-compiled (and possibly cost-calibrated) Searcher.
func dedupedParallelOn(sr *Searcher, pattern *graph.Graph, workers, max int, withStats bool) ([]Match, []string, *BuildStats) {
	if workers < 2 || len(sr.roots) < 2 {
		ms, keys := dedupedCappedKeys(sr.pg, pattern, max)
		return ms, keys, nil
	}
	type keyed struct {
		m   Match
		key string
	}
	var stats *BuildStats
	if withStats {
		stats = &BuildStats{}
	}
	perRoot := make([][]keyed, len(sr.roots))
	// A capped enumeration may stop dispatching once the contiguous
	// completed prefix of roots holds k*max per-root classes — see
	// capTracker for why that pins the exact sequential prefix.
	var tr *capTracker
	if max > 0 {
		tr = newCapTracker(len(sr.roots), int64(max)*int64(pattern.NumVertices()))
	}
	sr.forEachRoot(workers, tr, stats, func(se *Session, i, root int) int {
		ky := se.keyer(pattern)
		local := make(map[string]bool)
		var out []keyed
		se.Root(root, func(m Match) bool {
			key := ky.KeyOf(m)
			if local[key] {
				return true
			}
			local[key] = true
			out = append(out, keyed{m: m.Clone(), key: key})
			return true
		})
		perRoot[i] = out
		return len(out)
	})
	seen := make(map[string]bool)
	var all []Match
	var keys []string
	for _, ms := range perRoot {
		for _, km := range ms {
			if seen[km.key] {
				continue
			}
			seen[km.key] = true
			all = append(all, km.m)
			keys = append(keys, km.key)
			if max > 0 && len(all) == max {
				return all, keys, stats
			}
		}
	}
	return all, keys, stats
}

// CountEmbeddingsParallel is CountEmbeddings over the worker pool.
func CountEmbeddingsParallel(pattern, data *graph.Graph, workers int) int {
	sr := NewSearcher(pattern, data)
	if workers < 2 || len(sr.roots) < 2 {
		n := 0
		sr.Enumerate(func(Match) bool {
			n++
			return true
		})
		return n
	}
	var total atomic.Int64
	sr.forEachRoot(workers, nil, nil, func(se *Session, _, root int) int {
		n := 0
		se.Root(root, func(Match) bool {
			n++
			return true
		})
		total.Add(int64(n))
		return 0
	})
	return int(total.Load())
}
