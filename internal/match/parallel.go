// Worker-pool parallel enumeration. The search space is partitioned on
// the candidates of the first match-order pattern vertex: each root
// candidate spans an independent subtree of the backtracking search, so
// workers enumerate disjoint subtrees with no shared mutable state and
// results are stitched back together in root order — byte-identical to
// the sequential enumeration, just faster.
package match

import (
	"sync"
	"sync/atomic"

	"mapa/internal/graph"
)

// Searcher is a compiled enumeration of one (pattern, data) pair whose
// per-root searches can run concurrently: the match order, pruning
// tables, and the adjacency-bitset index are compiled once and shared
// read-only, while every Session gets private scratch state.
type Searcher struct {
	pg    *program
	roots []int
}

// NewSearcher compiles pattern against data. The result is never nil;
// if no embedding can exist for size reasons, Roots is empty.
func NewSearcher(pattern, data *graph.Graph) *Searcher {
	sr := &Searcher{pg: compile(pattern, data, nil)}
	if sr.pg == nil {
		return sr
	}
	for p := 0; p < sr.pg.ix.Len(); p++ {
		if sr.pg.ix.Degree(p) >= sr.pg.pdeg[0] {
			sr.roots = append(sr.roots, sr.pg.ix.Vertex(p))
		}
	}
	return sr
}

// Roots returns the data vertices eligible as the image of the first
// match-order pattern vertex, in ascending order. Enumerating every
// root reproduces the sequential enumeration exactly.
func (sr *Searcher) Roots() []int { return sr.roots }

// Order returns the pattern's match order (the Pattern slice of every
// emitted Match).
func (sr *Searcher) Order() []int {
	if sr.pg == nil {
		return nil
	}
	return sr.pg.order
}

// Session is one worker's scratch state over a Searcher. Sessions of
// the same Searcher may run concurrently; a single Session may not.
type Session struct {
	s  *search
	ky *Keyer
}

// keyer returns the session's lazily built Keyer for the searcher's
// pattern, amortizing its buffers across the worker's roots.
func (se *Session) keyer(pattern *graph.Graph) *Keyer {
	if se.ky == nil {
		se.ky = NewKeyer(pattern, se.s.order)
	}
	return se.ky
}

// Session allocates enumeration scratch state. Root may be called any
// number of times on it, amortizing the allocation across roots.
func (sr *Searcher) Session() *Session {
	if sr.pg == nil {
		return &Session{}
	}
	return &Session{s: sr.pg.newSearch()}
}

// Root enumerates the embeddings that map the first match-order
// pattern vertex to the data vertex root, in the sequential emission
// order. The Match passed to fn reuses buffers, exactly like
// Enumerate.
func (se *Session) Root(root int, fn func(Match) bool) {
	if se.s == nil {
		return
	}
	p, ok := se.s.ix.PosOf(root)
	if !ok {
		return
	}
	se.s.runRoot(p, fn)
}

// Enumerate runs the full sequential enumeration — every root in
// ascending order. Identical to the package-level Enumerate.
func (sr *Searcher) Enumerate(fn func(Match) bool) {
	if sr.pg == nil {
		return
	}
	sr.pg.newSearch().run(fn)
}

// EnumerateRoot is Session().Root for one-shot use. Calls with
// distinct roots may run concurrently.
func (sr *Searcher) EnumerateRoot(root int, fn func(Match) bool) {
	sr.Session().Root(root, fn)
}

// forEachRoot runs fn(session, rootIndex, root) over all roots with
// up to `workers` goroutines, handing out roots in ascending order —
// the single dispatch loop every parallel entry point shares. Each
// worker owns one Session for all its roots. A non-nil stop predicate
// is polled before each claim; once it reports true, no further roots
// are dispatched (in-flight roots finish), so dispatched roots always
// form a contiguous prefix.
func (sr *Searcher) forEachRoot(workers int, stop func() bool, fn func(se *Session, i int, root int)) {
	n := len(sr.roots)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			se := sr.Session()
			for {
				if stop != nil && stop() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(se, i, sr.roots[i])
			}
		}()
	}
	wg.Wait()
}

// FindAllParallel returns every embedding of pattern into data using a
// pool of `workers` goroutines, one search subtree per first-vertex
// candidate. The result is identical to FindAll, ordering included.
// workers < 2 (or a trivially small search) falls back to the
// sequential path.
func FindAllParallel(pattern, data *graph.Graph, workers int) []Match {
	sr := NewSearcher(pattern, data)
	if workers < 2 || len(sr.roots) < 2 {
		var out []Match
		sr.Enumerate(func(m Match) bool {
			out = append(out, m.Clone())
			return true
		})
		return out
	}
	perRoot := make([][]Match, len(sr.roots))
	sr.forEachRoot(workers, nil, func(se *Session, i, root int) {
		var out []Match
		se.Root(root, func(m Match) bool {
			out = append(out, m.Clone())
			return true
		})
		perRoot[i] = out
	})
	var all []Match
	for _, ms := range perRoot {
		all = append(all, ms...)
	}
	return all
}

// FindAllDedupedParallel is FindAllParallel followed by the
// FindAllDeduped equivalence-class collapse. Workers compute canonical
// keys for their subtrees; the dedup merge walks roots in order, so the
// representatives (and their order) are identical to FindAllDeduped.
func FindAllDedupedParallel(pattern, data *graph.Graph, workers int) []Match {
	ms, _ := FindAllDedupedParallelKeys(pattern, data, workers, 0)
	return ms
}

// FindAllDedupedParallelKeys is the parallel FindAllDedupedCappedKeys:
// it returns the first max (<= 0: all) deduplicated representatives in
// sequential enumeration order with their canonical keys. Workers
// deduplicate within each root subtree before cloning, and the merge
// walks roots in order, so the output is identical to the sequential
// capped enumeration.
func FindAllDedupedParallelKeys(pattern, data *graph.Graph, workers, max int) ([]Match, []string) {
	sr := NewSearcher(pattern, data)
	if workers < 2 || len(sr.roots) < 2 {
		return dedupedCappedKeys(sr.pg, pattern, max)
	}
	type keyed struct {
		m   Match
		key string
	}
	perRoot := make([][]keyed, len(sr.roots))
	// classes over-counts distinct classes across roots by at most the
	// pattern size k (a class's raw embeddings map the first match-
	// order vertex to at most its k data vertices, so it appears under
	// at most k roots). Once classes >= k*max, the already-dispatched
	// roots — always a contiguous prefix — are guaranteed to contain
	// the first max global classes, so dispatching further roots cannot
	// change the truncated result: a deterministic early stop for the
	// capped case.
	var classes atomic.Int64
	var stop func() bool
	if max > 0 {
		stopAt := int64(max) * int64(pattern.NumVertices())
		stop = func() bool { return classes.Load() >= stopAt }
	}
	sr.forEachRoot(workers, stop, func(se *Session, i, root int) {
		ky := se.keyer(pattern)
		local := make(map[string]bool)
		var out []keyed
		se.Root(root, func(m Match) bool {
			key := ky.KeyOf(m)
			if local[key] {
				return true
			}
			local[key] = true
			out = append(out, keyed{m: m.Clone(), key: key})
			return true
		})
		perRoot[i] = out
		classes.Add(int64(len(out)))
	})
	seen := make(map[string]bool)
	var all []Match
	var keys []string
	for _, ms := range perRoot {
		for _, km := range ms {
			if seen[km.key] {
				continue
			}
			seen[km.key] = true
			all = append(all, km.m)
			keys = append(keys, km.key)
			if max > 0 && len(all) == max {
				return all, keys
			}
		}
	}
	return all, keys
}

// CountEmbeddingsParallel is CountEmbeddings over the worker pool.
func CountEmbeddingsParallel(pattern, data *graph.Graph, workers int) int {
	sr := NewSearcher(pattern, data)
	if workers < 2 || len(sr.roots) < 2 {
		n := 0
		sr.Enumerate(func(Match) bool {
			n++
			return true
		})
		return n
	}
	var total atomic.Int64
	sr.forEachRoot(workers, nil, func(se *Session, _, root int) {
		n := 0
		se.Root(root, func(Match) bool {
			n++
			return true
		})
		total.Add(int64(n))
	})
	return int(total.Load())
}
