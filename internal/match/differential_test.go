package match

import (
	"math/rand"
	"testing"

	"mapa/internal/graph"
)

// bruteForce enumerates every embedding of pattern into data by trying
// all injective vertex mappings and checking every pattern edge — the
// O(n^k) oracle the optimized enumerator is verified against.
func bruteForce(pattern, data *graph.Graph) []Match {
	pv := pattern.Vertices()
	dv := data.Vertices()
	if len(pv) == 0 || len(pv) > len(dv) {
		return nil
	}
	var out []Match
	assigned := make([]int, len(pv))
	used := make(map[int]bool, len(dv))
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(pv) {
			toData := make(map[int]int, len(pv))
			for i, p := range pv {
				toData[p] = assigned[i]
			}
			for _, e := range pattern.Edges() {
				if !data.HasEdge(toData[e.U], toData[e.V]) {
					return
				}
			}
			out = append(out, Match{
				Pattern: append([]int(nil), pv...),
				Data:    append([]int(nil), assigned...),
			})
			return
		}
		for _, d := range dv {
			if used[d] {
				continue
			}
			assigned[depth] = d
			used[d] = true
			rec(depth + 1)
			used[d] = false
		}
	}
	rec(0)
	return out
}

// randomGraph builds an n-vertex graph with the given vertex IDs and
// independent edge probability p.
func randomGraph(rng *rand.Rand, ids []int, p float64) *graph.Graph {
	g := graph.New()
	for _, v := range ids {
		g.AddVertex(v)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if rng.Float64() < p {
				g.MustAddEdge(ids[i], ids[j], 1, 0)
			}
		}
	}
	return g
}

func seqIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func sparseIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = 3*i + 1
	}
	return ids
}

func keySet(t *testing.T, pattern, data *graph.Graph, ms []Match) map[string]bool {
	t.Helper()
	set := make(map[string]bool, len(ms))
	for _, m := range ms {
		set[m.Key(pattern, data)] = true
	}
	return set
}

// TestDifferentialAgainstBruteForce cross-checks the bitset enumerator,
// the worker-pool parallel enumerator, and deduplication against the
// brute-force permutation oracle on a table of seeded random graph
// pairs, including sparse (non-contiguous) vertex IDs.
func TestDifferentialAgainstBruteForce(t *testing.T) {
	cases := []struct {
		name            string
		seed            int64
		patternN        int
		dataN           int
		patternP        float64
		dataP           float64
		sparsePattern   bool
		sparseData      bool
		parallelWorkers int
	}{
		{name: "tiny-dense", seed: 1, patternN: 2, dataN: 4, patternP: 1.0, dataP: 0.9, parallelWorkers: 2},
		{name: "triangle-hunt", seed: 2, patternN: 3, dataN: 6, patternP: 1.0, dataP: 0.6, parallelWorkers: 3},
		{name: "sparse-pattern", seed: 3, patternN: 3, dataN: 7, patternP: 0.5, dataP: 0.5, parallelWorkers: 4},
		{name: "mid-density", seed: 4, patternN: 4, dataN: 7, patternP: 0.7, dataP: 0.6, parallelWorkers: 2},
		{name: "dense-4", seed: 5, patternN: 4, dataN: 8, patternP: 0.9, dataP: 0.8, parallelWorkers: 8},
		{name: "sparse-data", seed: 6, patternN: 3, dataN: 8, patternP: 1.0, dataP: 0.3, parallelWorkers: 3},
		{name: "sparse-ids", seed: 7, patternN: 4, dataN: 7, patternP: 0.8, dataP: 0.6, sparsePattern: true, sparseData: true, parallelWorkers: 4},
		{name: "disconnected-pattern", seed: 8, patternN: 4, dataN: 6, patternP: 0.25, dataP: 0.7, parallelWorkers: 2},
		{name: "no-edges-pattern", seed: 9, patternN: 3, dataN: 5, patternP: 0, dataP: 0.5, parallelWorkers: 2},
		{name: "equal-size", seed: 10, patternN: 5, dataN: 5, patternP: 0.6, dataP: 0.9, parallelWorkers: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			pids, dids := seqIDs(tc.patternN), seqIDs(tc.dataN)
			if tc.sparsePattern {
				pids = sparseIDs(tc.patternN)
			}
			if tc.sparseData {
				dids = sparseIDs(tc.dataN)
			}
			pattern := randomGraph(rng, pids, tc.patternP)
			data := randomGraph(rng, dids, tc.dataP)

			oracle := bruteForce(pattern, data)
			got := FindAll(pattern, data)
			if len(got) != len(oracle) {
				t.Fatalf("FindAll found %d embeddings, oracle %d", len(got), len(oracle))
			}
			for _, m := range got {
				if !IsEmbedding(pattern, data, m) {
					t.Fatalf("FindAll emitted invalid embedding %v", m)
				}
			}
			if n := CountEmbeddings(pattern, data); n != len(oracle) {
				t.Fatalf("CountEmbeddings=%d, oracle %d", n, len(oracle))
			}
			if n := CountEmbeddingsParallel(pattern, data, tc.parallelWorkers); n != len(oracle) {
				t.Fatalf("CountEmbeddingsParallel=%d, oracle %d", n, len(oracle))
			}

			// The raw embedding sets must agree as sets of keys over
			// (vertex set, edge set) refined by the exact assignment.
			oracleSet := make(map[string]bool, len(oracle))
			for _, m := range oracle {
				oracleSet[assignmentKey(m)] = true
			}
			for _, m := range got {
				if !oracleSet[assignmentKey(m)] {
					t.Fatalf("FindAll emitted embedding missing from oracle: %v", m)
				}
			}

			par := FindAllParallel(pattern, data, tc.parallelWorkers)
			if !sameMatches(got, par) {
				t.Fatalf("FindAllParallel differs from FindAll:\n seq=%v\n par=%v", got, par)
			}

			ded := FindAllDeduped(pattern, data)
			dedPar := FindAllDedupedParallel(pattern, data, tc.parallelWorkers)
			if !sameMatches(ded, dedPar) {
				t.Fatalf("FindAllDedupedParallel differs from FindAllDeduped")
			}
			wantKeys := keySet(t, pattern, data, oracle)
			gotKeys := keySet(t, pattern, data, ded)
			if len(gotKeys) != len(ded) {
				t.Fatalf("FindAllDeduped returned %d matches but %d distinct keys", len(ded), len(gotKeys))
			}
			if len(gotKeys) != len(wantKeys) {
				t.Fatalf("deduped key count %d, oracle %d", len(gotKeys), len(wantKeys))
			}
			for k := range gotKeys {
				if !wantKeys[k] {
					t.Fatalf("deduped key %q not produced by oracle", k)
				}
			}
		})
	}
}

// assignmentKey identifies a raw embedding by its exact pattern→data
// assignment, independent of enumeration order.
func assignmentKey(m Match) string {
	type pair struct{ p, d int }
	pairs := make([]pair, len(m.Pattern))
	for i := range m.Pattern {
		pairs[i] = pair{m.Pattern[i], m.Data[i]}
	}
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j-1].p > pairs[j].p; j-- {
			pairs[j-1], pairs[j] = pairs[j], pairs[j-1]
		}
	}
	b := make([]byte, 0, 8*len(pairs))
	for _, pr := range pairs {
		b = appendInt(b, pr.p)
		b = append(b, ':')
		b = appendInt(b, pr.d)
		b = append(b, ',')
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

func sameMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Pattern) != len(b[i].Pattern) {
			return false
		}
		for j := range a[i].Pattern {
			if a[i].Pattern[j] != b[i].Pattern[j] || a[i].Data[j] != b[i].Data[j] {
				return false
			}
		}
	}
	return true
}

// TestCappedParallelMatchesSequential pins the deterministic
// early-stop of the capped parallel dedup: for every cap, the
// parallel enumeration must return exactly the sequential capped
// prefix, matches and keys alike.
func TestCappedParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		pattern := randomGraph(rng, seqIDs(4), 0.9)
		data := randomGraph(rng, seqIDs(8), 0.8)
		total, _ := FindAllDedupedCappedKeys(pattern, data, 0)
		for _, max := range []int{0, 1, 2, 5, len(total) - 1, len(total), len(total) + 10} {
			if max < 0 {
				continue
			}
			seqM, seqK := FindAllDedupedCappedKeys(pattern, data, max)
			parM, parK := FindAllDedupedParallelKeys(pattern, data, 4, max)
			if !sameMatches(seqM, parM) {
				t.Fatalf("seed %d cap %d: capped parallel matches differ (%d vs %d)", seed, max, len(parM), len(seqM))
			}
			for i := range seqK {
				if seqK[i] != parK[i] {
					t.Fatalf("seed %d cap %d: key %d differs: %q vs %q", seed, max, i, parK[i], seqK[i])
				}
			}
		}
	}
}

// TestKeyerMatchesMatchKey pins the fast-path Keyer to the reference
// Match.Key implementation across random graphs.
func TestKeyerMatchesMatchKey(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		pattern := randomGraph(rng, seqIDs(4), 0.8)
		data := randomGraph(rng, seqIDs(7), 0.7)
		sr := NewSearcher(pattern, data)
		var ky *Keyer
		Enumerate(pattern, data, func(m Match) bool {
			if ky == nil {
				ky = NewKeyer(pattern, sr.Order())
			}
			if got, want := ky.KeyOf(m), m.Key(pattern, data); got != want {
				t.Fatalf("Keyer.KeyOf=%q, Match.Key=%q", got, want)
			}
			return true
		})
	}
}
