package match

import (
	"sort"
	"strconv"

	"mapa/internal/graph"
)

// Keyer computes Match.Key-identical canonical keys for the stream of
// matches emitted by one enumeration. All matches of one enumeration
// share the same Pattern order, so the pattern's edges can be compiled
// once into order positions; each key is then built from the match's
// Data slice alone — no maps, no graph lookups, one reused buffer.
//
// A Keyer is not safe for concurrent use; give each worker its own.
type Keyer struct {
	epos  [][2]int // pattern edges as (match-order position) pairs
	verts []int
	edges [][2]int
	buf   []byte
}

// NewKeyer compiles a keyer for matches whose Pattern slice equals
// order (as produced by Enumerate for this pattern).
func NewKeyer(pattern *graph.Graph, order []int) *Keyer {
	pos := make(map[int]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	pe := pattern.Edges()
	epos := make([][2]int, len(pe))
	for i, e := range pe {
		epos[i] = [2]int{pos[e.U], pos[e.V]}
	}
	return &Keyer{
		epos:  epos,
		verts: make([]int, len(order)),
		edges: make([][2]int, len(pe)),
		buf:   make([]byte, 0, 8*(len(order)+2*len(pe))),
	}
}

// KeyOf returns the canonical key of m: its data vertices ascending,
// then the normalized data edges its pattern edges map onto, sorted.
// The string equals m.Key(pattern, data) for valid embeddings.
func (ky *Keyer) KeyOf(m Match) string {
	copy(ky.verts, m.Data)
	sort.Ints(ky.verts)
	for i, p := range ky.epos {
		u, v := m.Data[p[0]], m.Data[p[1]]
		if u > v {
			u, v = v, u
		}
		ky.edges[i] = [2]int{u, v}
	}
	sort.Slice(ky.edges, func(i, j int) bool {
		if ky.edges[i][0] != ky.edges[j][0] {
			return ky.edges[i][0] < ky.edges[j][0]
		}
		return ky.edges[i][1] < ky.edges[j][1]
	})
	b := ky.buf[:0]
	for _, v := range ky.verts {
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, ',')
	}
	b = append(b, '|')
	for _, e := range ky.edges {
		b = strconv.AppendInt(b, int64(e[0]), 10)
		b = append(b, '-')
		b = strconv.AppendInt(b, int64(e[1]), 10)
		b = append(b, ',')
	}
	ky.buf = b
	return string(b)
}
