package match

import (
	"math/rand"
	"testing"

	"mapa/internal/graph"
)

// liveViewEqualsFilter asserts the core LiveView contract: the live
// candidate list equals Universe.Filter on the equivalent mask —
// indices, order, and truncation behavior — for unlimited and capped
// serves.
func liveViewEqualsFilter(t *testing.T, lv *LiveView, u *Universe, mask graph.Bitset, step string) {
	t.Helper()
	for _, max := range []int{0, 1, 7} {
		want, wantTrunc := u.Filter(mask, max)
		got, gotTrunc := lv.Candidates(max)
		if gotTrunc != wantTrunc {
			t.Fatalf("%s max=%d: truncated=%v, Filter %v", step, max, gotTrunc, wantTrunc)
		}
		if len(got) != len(want) {
			t.Fatalf("%s max=%d: live view kept %d, Filter %d", step, max, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s max=%d index %d: live view %d, Filter %d", step, max, j, got[j], want[j])
			}
		}
	}
}

// TestLiveViewMatchesFilterUnderDeltas drives multi-GPU allocate and
// release deltas through a live view and checks equality with Filter
// after every operation, including full drain back to idle.
func TestLiveViewMatchesFilterUnderDeltas(t *testing.T) {
	pattern := ringPattern(3)
	data := completeData(10)
	data.RemoveEdge(0, 4)
	data.RemoveEdge(2, 9)
	u := BuildUniverse(pattern, data, 0, 1)
	free := data.VertexBitset()
	lv := NewLiveView(u, free)
	liveViewEqualsFilter(t, lv, u, free, "idle")
	if lv.Len() != u.Len() {
		t.Fatalf("idle view has %d live embeddings, universe %d", lv.Len(), u.Len())
	}

	deltas := [][]int{{0, 3}, {7}, {1, 8, 9}}
	for _, d := range deltas {
		lv.Allocate(d)
		for _, g := range d {
			free.Unset(g)
		}
		liveViewEqualsFilter(t, lv, u, free, "allocate")
	}
	// Release out of allocation order.
	for _, d := range [][]int{{7}, {1, 8, 9}, {0, 3}} {
		lv.Release(d)
		for _, g := range d {
			free.Set(g)
		}
		liveViewEqualsFilter(t, lv, u, free, "release")
	}
	if lv.Len() != u.Len() {
		t.Fatalf("drained view has %d live embeddings, universe %d", lv.Len(), u.Len())
	}
}

// TestLiveViewInitialMask checks mid-stream construction: a view built
// over a partially allocated machine must equal Filter immediately —
// the "shape first warmed mid-trace" case.
func TestLiveViewInitialMask(t *testing.T) {
	pattern := ringPattern(4)
	data := completeData(9)
	u := BuildUniverse(pattern, data, 0, 1)
	free := data.VertexBitset()
	for _, g := range []int{2, 5, 6} {
		free.Unset(g)
	}
	lv := NewLiveView(u, free)
	liveViewEqualsFilter(t, lv, u, free, "mid-stream build")
}

// TestLiveViewIncompleteUniversePanics pins the soundness rule: an
// incomplete universe cannot back a live view, exactly as it cannot
// serve Filter.
func TestLiveViewIncompleteUniversePanics(t *testing.T) {
	pattern := ringPattern(3)
	data := completeData(8)
	full := BuildUniverse(pattern, data, 0, 1)
	capped := BuildUniverse(pattern, data, full.Len()-1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("NewLiveView over an incomplete universe must panic")
		}
	}()
	NewLiveView(capped, data.VertexBitset())
}

// TestLiveViewInconsistentDeltaPanics pins the stream-divergence
// guard: double-allocating or double-releasing a vertex means the
// publisher's availability stream drifted and must fail loudly.
func TestLiveViewInconsistentDeltaPanics(t *testing.T) {
	u := BuildUniverse(ringPattern(3), completeData(6), 0, 1)
	lv := NewLiveView(u, u.Set(0).Clone()) // only match 0's vertices free
	t.Run("double-allocate", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("allocating an unavailable vertex must panic")
			}
		}()
		lv2 := NewLiveView(u, completeData(6).VertexBitset())
		lv2.Allocate([]int{1})
		lv2.Allocate([]int{1})
	})
	t.Run("double-release", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("releasing an available vertex must panic")
			}
		}()
		lv.Release([]int{u.Set(0).Members()[0]})
	})
}

// TestLiveViewSparseVertexIDs is the regression test for sparse and
// non-contiguous data-vertex IDs (graph.Capacity): posting lists,
// blocked counters, and candidate lists must be keyed by ID, not by
// dense position, and IDs beyond the universe's capacity must be
// ignored by deltas.
func TestLiveViewSparseVertexIDs(t *testing.T) {
	pattern := ringPattern(3)
	data := graph.New()
	// A sparse clique spanning two bitset words: IDs 3, 40, 63, 64, 70, 130.
	ids := []int{3, 40, 63, 64, 70, 130}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			data.MustAddEdge(ids[i], ids[j], 1, 0)
		}
	}
	if got, want := graph.Capacity(data), 131; got != want {
		t.Fatalf("graph.Capacity = %d, want %d", got, want)
	}
	u := BuildUniverse(pattern, data, 0, 1)
	if u.Capacity() != 131 {
		t.Fatalf("universe capacity = %d, want 131", u.Capacity())
	}
	if want := 6 * 5 * 4 / 6; u.Len() != want {
		t.Fatalf("universe holds %d classes, want %d", u.Len(), want)
	}
	free := data.VertexBitset()
	lv := NewLiveView(u, free)
	liveViewEqualsFilter(t, lv, u, free, "sparse idle")
	for _, g := range []int{63, 130} {
		lv.Allocate([]int{g})
		free.Unset(g)
		liveViewEqualsFilter(t, lv, u, free, "sparse allocate")
	}
	// Out-of-capacity IDs cannot be in any embedding and are ignored.
	lv.Allocate([]int{500})
	liveViewEqualsFilter(t, lv, u, free, "out-of-capacity delta")
	lv.Release([]int{130})
	free.Set(130)
	liveViewEqualsFilter(t, lv, u, free, "sparse release")
	// Cross-check against the enumeration on the induced subgraph.
	avail := data.InducedSubgraph(free.Members())
	_, wantKeys := FindAllDedupedCappedKeys(pattern, avail, 0)
	idx, _ := lv.Candidates(0)
	if len(idx) != len(wantKeys) {
		t.Fatalf("live view kept %d classes, sequential %d", len(idx), len(wantKeys))
	}
	for j, i := range idx {
		if u.Key(i) != wantKeys[j] {
			t.Fatalf("class %d: key %q, want %q", j, u.Key(i), wantKeys[j])
		}
	}
}

// FuzzLiveViewDelta fuzzes arbitrary single-vertex apply/revert delta
// sequences against two oracles: a LiveView recomputed from scratch at
// the current mask, and Universe.Filter. After every delta the
// incrementally maintained candidate list must equal both, unlimited
// and capped.
func FuzzLiveViewDelta(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(8), uint8(200), uint8(1), []byte{0, 3, 5, 0, 3})
	f.Add(int64(2), uint8(4), uint8(9), uint8(255), uint8(2), []byte{1, 1, 2, 2, 7, 7})
	f.Add(int64(3), uint8(2), uint8(6), uint8(128), uint8(1), []byte{5, 4, 3, 2, 1, 0})
	f.Add(int64(4), uint8(5), uint8(10), uint8(230), uint8(3), []byte{9, 9, 8, 0, 8, 9})
	f.Fuzz(func(t *testing.T, seed int64, pn, dn, dp, stride uint8, ops []byte) {
		patternN := 2 + int(pn)%4 // 2..5
		dataN := 4 + int(dn)%8    // 4..11
		step := 1 + int(stride)%3 // vertex IDs 0, step, 2*step, ... (sparse when > 1)
		rng := rand.New(rand.NewSource(seed))
		pattern := fuzzGraph(rng, patternN, 0.9)
		data := graph.New()
		for i := 0; i < dataN; i++ {
			data.AddVertex(i * step)
			for j := 0; j < i; j++ {
				if rng.Float64() < float64(dp)/255 {
					data.MustAddEdge(i*step, j*step, 1, 0)
				}
			}
		}
		u := BuildUniverse(pattern, data, 0, 1)
		free := data.VertexBitset()
		lv := NewLiveView(u, free)
		if len(ops) > 64 {
			ops = ops[:64]
		}
		for _, op := range ops {
			v := (int(op) % dataN) * step
			if free.Has(v) {
				free.Unset(v)
				lv.Allocate([]int{v})
			} else {
				free.Set(v)
				lv.Release([]int{v})
			}
			oracle := NewLiveView(u, free)
			for _, max := range []int{0, u.Len() / 2} {
				got, gotTrunc := lv.Candidates(max)
				want, wantTrunc := oracle.Candidates(max)
				fwant, fTrunc := u.Filter(free, max)
				if gotTrunc != wantTrunc || gotTrunc != fTrunc {
					t.Fatalf("truncated: delta=%v oracle=%v filter=%v (max=%d)", gotTrunc, wantTrunc, fTrunc, max)
				}
				if len(got) != len(want) || len(got) != len(fwant) {
					t.Fatalf("lengths: delta=%d oracle=%d filter=%d (max=%d)", len(got), len(want), len(fwant), max)
				}
				for j := range got {
					if got[j] != want[j] || got[j] != fwant[j] {
						t.Fatalf("index %d: delta=%d oracle=%d filter=%d (max=%d)", j, got[j], want[j], fwant[j], max)
					}
				}
			}
		}
		// Reverting every outstanding delta must restore the idle view.
		for _, v := range data.Vertices() {
			if !free.Has(v) {
				lv.Release([]int{v})
				free.Set(v)
			}
		}
		if lv.Len() != u.Len() {
			t.Fatalf("drained view has %d live embeddings, universe %d", lv.Len(), u.Len())
		}
	})
}
