package match

import (
	"fmt"

	"mapa/internal/graph"
)

// LiveView is a delta-maintained candidate view over one complete
// idle-state Universe: the set of embeddings valid on the *current*
// availability state, updated incrementally as GPUs are allocated and
// released instead of rescanned per decision.
//
// The structure inverts the universe: for every data vertex it holds a
// posting list of the embedding indices whose vertex set contains it,
// and for every embedding a counter of how many of its vertices are
// currently unusable. Allocating k GPUs walks exactly k posting
// lists incrementing counters (and vice versa for a release), so the
// maintenance cost scales with the allocate/release delta — the sum of
// the touched posting lists — not with |universe| the way
// Universe.Filter does. An embedding is live exactly when its blocked
// counter is zero; live indices are additionally mirrored in a bitset
// so Candidates serves the list with a word-wise scan.
//
// Health is a second mask layered on the same machinery: a GPU marked
// unhealthy (MarkUnhealthy) stays visible in the view but becomes
// unusable — a topology delta, processed as one posting-list walk just
// like an allocation delta — and RestoreHealth reverses it. A vertex
// is usable exactly when it is free AND healthy, and the blocked
// counters track unusable vertices, so allocation deltas on an
// unhealthy GPU (allocating it is impossible, but a lease taken before
// the failure may still release it) adjust only the free mask, never
// the counters: the two masks commute and every interleaving of
// allocation and health events lands in the same state.
//
// Order is preserved by construction: posting-list maintenance never
// reorders anything, and the live bitset iterates in ascending
// embedding index — the universe's enumeration order. Candidates is
// therefore byte-identical to Universe.Filter on the equivalent mask,
// which is itself byte-identical to a fresh sequential search on the
// induced subgraph.
//
// A LiveView tracks one availability-state stream and is not safe for
// concurrent use; callers (matchcache.Views) serialize access.
//
// A weighted view (NewWeightedLiveView) additionally maintains the
// state side of the Eq. 3 delta decomposition on the same deltas: the
// total edge weight of the current free set and, per GPU, the weight of
// its edges into the free set, so
//
//	PreservedBW(S) = totalFree − Σ_{g∈S} incident[g] + internal(S)
//
// is O(k) arithmetic per candidate with zero graph walks (internal(S)
// is the candidate's static constant, precomputed in score.Table). All
// link bandwidths are integral, so the incrementally maintained sums
// are exact and allocate/release are exact inverses.
type LiveView struct {
	u        *Universe
	postings [][]int32    // data vertex ID -> ascending embedding indices containing it
	blocked  []int32      // embedding index -> count of its vertices currently unusable
	avail    graph.Bitset // free set (allocation state)
	healthy  graph.Bitset // health mask (topology state); usable = avail AND healthy
	live     graph.Bitset // embedding indices with blocked == 0
	liveLen  int

	// bw is the view's own bandwidth accounting (weighted views only).
	// The accounting is shape-independent, so callers maintaining many
	// views over one availability stream (matchcache.Views) keep ONE
	// shared BandwidthAccounting beside unweighted views instead.
	bw *BandwidthAccounting
}

// wedge is one weighted adjacency entry of the bandwidth accounting.
type wedge struct {
	to int32
	w  float64
}

// BandwidthAccounting is the state side of the Eq. 3 delta
// decomposition for one availability stream: the total edge weight of
// the current usable set and, per GPU, the weight of its edges into
// the usable set, maintained incrementally on the same
// allocate/release GPU-set deltas the posting lists consume. It
// depends only on the machine graph and the usable set — not on any
// shape — so one instance can price candidates for every pattern
// tracked on the stream. All link bandwidths are integral, so the
// incrementally maintained sums are exact and Allocate/Release are
// exact inverses. Not safe for concurrent use; callers serialize
// access.
//
// Like LiveView, the accounting layers a health mask over the free
// mask: a vertex contributes to the sums exactly when it is free AND
// healthy, so MarkUnhealthy on a free GPU applies the same O(degree)
// delta an allocation would, and the Eq. 3 terms price exactly the
// bandwidth a new job could still draw on. UpdateEdge additionally
// absorbs link-degradation events — a weight-only topology delta —
// in O(degree), keeping the sums byte-identical to an accounting
// rebuilt from the mutated graph.
type BandwidthAccounting struct {
	totalFree float64      // summed weight of edges with both endpoints usable
	incident  []float64    // vertex -> summed weight of its edges into the usable set
	wadj      [][]wedge    // vertex -> weighted adjacency, for delta updates
	avail     graph.Bitset // free set
	healthy   graph.Bitset // health mask; usable = avail AND healthy
}

// NewBandwidthAccounting sweeps data's edges once and returns the
// accounting for the given initial free set. Vertices at or beyond
// capacity are ignored (mirroring LiveView's posting lists); capacity
// is normally graph.Capacity(data) — the universes' convention.
func NewBandwidthAccounting(data *graph.Graph, free graph.Bitset, capacity int) *BandwidthAccounting {
	a := &BandwidthAccounting{
		incident: make([]float64, capacity),
		wadj:     make([][]wedge, capacity),
		avail:    graph.NewBitset(capacity),
		healthy:  graph.NewBitset(capacity),
	}
	a.healthy.Fill(capacity)
	for v := 0; v < capacity; v++ {
		if free.Has(v) {
			a.avail.Set(v)
		}
	}
	for _, e := range data.Edges() {
		if e.U >= capacity || e.V >= capacity {
			continue
		}
		a.wadj[e.U] = append(a.wadj[e.U], wedge{to: int32(e.V), w: e.Weight})
		a.wadj[e.V] = append(a.wadj[e.V], wedge{to: int32(e.U), w: e.Weight})
		if a.avail.Has(e.U) {
			a.incident[e.V] += e.Weight
		}
		if a.avail.Has(e.V) {
			a.incident[e.U] += e.Weight
		}
		if a.avail.Has(e.U) && a.avail.Has(e.V) {
			a.totalFree += e.Weight
		}
	}
	return a
}

// Allocate marks the given vertices unavailable. Each vertex g leaving
// the free set subtracts its incident-to-free weight from the total
// (incident[g] never includes g itself — graphs have no self-loops)
// and removes g from its neighbors' incident sums. Out-of-capacity
// vertices are ignored; allocating an already-unavailable vertex
// panics, mirroring LiveView.
func (a *BandwidthAccounting) Allocate(gpus []int) {
	for _, g := range gpus {
		if g < 0 || g >= len(a.wadj) {
			continue
		}
		if !a.avail.Has(g) {
			panic(fmt.Sprintf("match: BandwidthAccounting.Allocate(%d): vertex already unavailable", g))
		}
		a.allocateOne(g)
	}
}

// allocateOne applies one vertex's allocation delta; the caller has
// already validated g's range and availability. The weight delta fires
// only when g was usable — an unhealthy vertex already left the sums
// when it failed.
func (a *BandwidthAccounting) allocateOne(g int) {
	a.avail.Unset(g)
	if a.healthy.Has(g) {
		a.dropUsable(g)
	}
}

// dropUsable removes a vertex leaving the usable set from the sums:
// incident[g] never includes g itself — graphs have no self-loops —
// and every vertex's incident sum loses g's edge weight.
func (a *BandwidthAccounting) dropUsable(g int) {
	a.totalFree -= a.incident[g]
	for _, e := range a.wadj[g] {
		a.incident[e.to] -= e.w
	}
}

// addUsable is the exact inverse of dropUsable: incident[g] was
// maintained all along, so adding it back restores the total bit for
// bit before the neighbors regain g.
func (a *BandwidthAccounting) addUsable(g int) {
	a.totalFree += a.incident[g]
	for _, e := range a.wadj[g] {
		a.incident[e.to] += e.w
	}
}

// Release marks the given vertices available again — the exact inverse
// of Allocate: incident[g] was maintained all along, so adding it back
// restores the total bit for bit before the neighbors regain g.
func (a *BandwidthAccounting) Release(gpus []int) {
	for _, g := range gpus {
		if g < 0 || g >= len(a.wadj) {
			continue
		}
		if a.avail.Has(g) {
			panic(fmt.Sprintf("match: BandwidthAccounting.Release(%d): vertex already available", g))
		}
		a.releaseOne(g)
	}
}

// releaseOne applies one vertex's release delta — the exact inverse of
// allocateOne; the caller has already validated g's range and
// unavailability. A released-but-unhealthy vertex rejoins only the
// free mask, not the sums.
func (a *BandwidthAccounting) releaseOne(g int) {
	a.avail.Set(g)
	if a.healthy.Has(g) {
		a.addUsable(g)
	}
}

// MarkUnhealthy marks the given vertices unhealthy: each one leaves
// the usable set (and the Eq. 3 sums, if it was free) but keeps its
// free/allocated state, so a later Release of a lease holding it, or a
// RestoreHealth, lands in the exact state a rebuild would produce.
// Out-of-capacity vertices are ignored; marking an already-unhealthy
// vertex panics — a diverged health stream would corrupt the sums.
func (a *BandwidthAccounting) MarkUnhealthy(gpus []int) {
	for _, g := range gpus {
		if g < 0 || g >= len(a.wadj) {
			continue
		}
		if !a.healthy.Has(g) {
			panic(fmt.Sprintf("match: BandwidthAccounting.MarkUnhealthy(%d): vertex already unhealthy", g))
		}
		a.markUnhealthyOne(g)
	}
}

// markUnhealthyOne applies one vertex's failure delta; the caller has
// already validated g's range and health.
func (a *BandwidthAccounting) markUnhealthyOne(g int) {
	a.healthy.Unset(g)
	if a.avail.Has(g) {
		a.dropUsable(g)
	}
}

// RestoreHealth marks the given vertices healthy again — the exact
// inverse of MarkUnhealthy. Restoring an already-healthy vertex
// panics, like MarkUnhealthy.
func (a *BandwidthAccounting) RestoreHealth(gpus []int) {
	for _, g := range gpus {
		if g < 0 || g >= len(a.wadj) {
			continue
		}
		if a.healthy.Has(g) {
			panic(fmt.Sprintf("match: BandwidthAccounting.RestoreHealth(%d): vertex already healthy", g))
		}
		a.restoreOne(g)
	}
}

// restoreOne applies one vertex's recovery delta; the caller has
// already validated g's range and unhealthiness.
func (a *BandwidthAccounting) restoreOne(g int) {
	a.healthy.Set(g)
	if a.avail.Has(g) {
		a.addUsable(g)
	}
}

// UpdateEdge rewrites the weight of edge (u,v) — a link-degradation
// (or recovery) topology delta. The adjacency entries mutate
// unconditionally; the incident sums and total absorb the weight
// difference gated on each endpoint's usability, exactly as a fresh
// accounting over the mutated graph would have counted the edge.
// O(degree(u) + degree(v)). Updating an edge the accounting's graph
// does not carry panics — the publisher's topology has diverged.
func (a *BandwidthAccounting) UpdateEdge(u, v int, w float64) {
	if u < 0 || v < 0 || u >= len(a.wadj) || v >= len(a.wadj) {
		panic(fmt.Sprintf("match: BandwidthAccounting.UpdateEdge(%d,%d): vertex out of range", u, v))
	}
	var old float64
	found := false
	for i := range a.wadj[u] {
		if int(a.wadj[u][i].to) == v {
			old = a.wadj[u][i].w
			a.wadj[u][i].w = w
			found = true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("match: BandwidthAccounting.UpdateEdge(%d,%d): edge not tracked", u, v))
	}
	for i := range a.wadj[v] {
		if int(a.wadj[v][i].to) == u {
			a.wadj[v][i].w = w
			break
		}
	}
	delta := w - old
	uUsable := a.avail.Has(u) && a.healthy.Has(u)
	vUsable := a.avail.Has(v) && a.healthy.Has(v)
	if uUsable {
		a.incident[v] += delta
	}
	if vUsable {
		a.incident[u] += delta
	}
	if uUsable && vUsable {
		a.totalFree += delta
	}
}

// Healthy reports whether vertex g is currently healthy.
// Out-of-capacity vertices report true (no embedding contains them).
func (a *BandwidthAccounting) Healthy(g int) bool {
	if g < 0 || g >= len(a.wadj) {
		return true
	}
	return a.healthy.Has(g)
}

// FreeWeight returns the total edge weight of the tracked usable set —
// the availability graph's TotalWeight (the free set induced over
// healthy GPUs), maintained incrementally.
func (a *BandwidthAccounting) FreeWeight() float64 { return a.totalFree }

// IncidentView returns the per-vertex incident-to-usable weight array,
// indexed by vertex ID. READ-ONLY, and only valid until the next
// delta; selection loops evaluating Eq. 3 for many candidates index it
// directly instead of paying a method call per candidate (summing
// entries in GPU-set order and computing totalFree − drop + internal
// reproduces PreservedBW bit for bit — all weights are integral).
func (a *BandwidthAccounting) IncidentView() []float64 { return a.incident }

// FreeIncidentWeight returns the summed weight of GPU g's edges into
// the tracked usable set. Out-of-capacity vertices report zero.
func (a *BandwidthAccounting) FreeIncidentWeight(g int) float64 {
	if g < 0 || g >= len(a.incident) {
		return 0
	}
	return a.incident[g]
}

// PreservedBW evaluates Eq. 3 for allocating the given GPU set out of
// the tracked free state: the candidate's static internal-edge weight
// plus the delta-maintained state terms, O(k) arithmetic in total. The
// GPU set must lie inside the free set (candidates served from a live
// set always do).
func (a *BandwidthAccounting) PreservedBW(internal float64, gpus []int) float64 {
	var drop float64
	for _, g := range gpus {
		drop += a.incident[g]
	}
	return a.totalFree - drop + internal
}

// NewLiveView builds the live view of u on an initial availability
// state: free holds the currently available data vertices (vertices
// beyond the universe's capacity are irrelevant — no embedding can
// contain them). Building costs one pass over the universe's vertex
// sets; afterwards maintenance is delta-proportional. The universe
// must be complete — an incomplete universe cannot soundly answer any
// availability state — and NewLiveView panics otherwise, mirroring
// Filter.
func NewLiveView(u *Universe, free graph.Bitset) *LiveView {
	if !u.Complete() {
		panic("match: LiveView over an incomplete universe")
	}
	lv := &LiveView{
		u:        u,
		postings: make([][]int32, u.Capacity()),
		blocked:  make([]int32, u.Len()),
		avail:    graph.NewBitset(u.Capacity()),
		healthy:  graph.NewBitset(u.Capacity()),
		live:     graph.NewBitset(u.Len()),
	}
	lv.healthy.Fill(u.Capacity())
	for v := 0; v < u.Capacity(); v++ {
		if free.Has(v) {
			lv.avail.Set(v)
		}
	}
	for i := 0; i < u.Len(); i++ {
		u.Set(i).ForEach(func(v int) bool {
			lv.postings[v] = append(lv.postings[v], int32(i))
			if !lv.avail.Has(v) {
				lv.blocked[i]++
			}
			return true
		})
		if lv.blocked[i] == 0 {
			lv.live.Set(i)
			lv.liveLen++
		}
	}
	return lv
}

// NewWeightedLiveView is NewLiveView with its own bandwidth
// accounting: data must be the graph the universe was built on (the
// full machine's hardware graph), supplying the edge weights the view
// maintains incrementally. Building additionally costs one pass over
// data's edges. Callers tracking many shapes on one availability
// stream should instead keep one shared NewBandwidthAccounting beside
// unweighted views — the accounting is shape-independent.
func NewWeightedLiveView(u *Universe, free graph.Bitset, data *graph.Graph) *LiveView {
	lv := NewLiveView(u, free)
	lv.bw = NewBandwidthAccounting(data, free, u.Capacity())
	return lv
}

// Universe returns the universe the view is maintained over.
func (lv *LiveView) Universe() *Universe { return lv.u }

// Len returns the number of currently live embeddings.
func (lv *LiveView) Len() int { return lv.liveLen }

// Available reports whether data vertex v is currently available in
// the view's tracked state.
func (lv *LiveView) Available(v int) bool { return lv.avail.Has(v) }

// Healthy reports whether data vertex v is currently healthy in the
// view's tracked state. Out-of-capacity vertices report true.
func (lv *LiveView) Healthy(v int) bool {
	if v < 0 || v >= len(lv.postings) {
		return true
	}
	return lv.healthy.Has(v)
}

// Allocate marks the given data vertices unavailable, deactivating
// exactly the embeddings on their posting lists. Vertices outside the
// universe's capacity are ignored (no embedding contains them).
// Allocating an already-unavailable vertex panics: it means the
// publisher's availability stream has diverged from the view's, which
// would silently corrupt the blocked counters.
func (lv *LiveView) Allocate(gpus []int) {
	for _, g := range gpus {
		if g < 0 || g >= len(lv.postings) {
			continue
		}
		if !lv.avail.Has(g) {
			panic(fmt.Sprintf("match: LiveView.Allocate(%d): vertex already unavailable", g))
		}
		lv.avail.Unset(g)
		if lv.bw != nil {
			lv.bw.allocateOne(g)
		}
		if lv.healthy.Has(g) {
			lv.block(g)
		}
	}
}

// Release marks the given data vertices available again, reactivating
// every embedding whose last blocker they were. Releasing an
// already-available vertex panics, like Allocate. An unhealthy vertex
// rejoins only the free mask — its embeddings stay blocked until
// RestoreHealth.
func (lv *LiveView) Release(gpus []int) {
	for _, g := range gpus {
		if g < 0 || g >= len(lv.postings) {
			continue
		}
		if lv.avail.Has(g) {
			panic(fmt.Sprintf("match: LiveView.Release(%d): vertex already available", g))
		}
		lv.avail.Set(g)
		if lv.bw != nil {
			lv.bw.releaseOne(g)
		}
		if lv.healthy.Has(g) {
			lv.unblock(g)
		}
	}
}

// MarkUnhealthy marks the given data vertices unhealthy — a topology
// delta, deactivating exactly the embeddings on their posting lists
// when the vertex was free (an allocated vertex's embeddings are
// already blocked). Vertices outside the universe's capacity are
// ignored; marking an already-unhealthy vertex panics, mirroring
// Allocate's stream-divergence check.
func (lv *LiveView) MarkUnhealthy(gpus []int) {
	for _, g := range gpus {
		if g < 0 || g >= len(lv.postings) {
			continue
		}
		if !lv.healthy.Has(g) {
			panic(fmt.Sprintf("match: LiveView.MarkUnhealthy(%d): vertex already unhealthy", g))
		}
		lv.healthy.Unset(g)
		if lv.bw != nil {
			lv.bw.markUnhealthyOne(g)
		}
		if lv.avail.Has(g) {
			lv.block(g)
		}
	}
}

// RestoreHealth marks the given data vertices healthy again — the
// exact inverse of MarkUnhealthy. Restoring an already-healthy vertex
// panics, like MarkUnhealthy.
func (lv *LiveView) RestoreHealth(gpus []int) {
	for _, g := range gpus {
		if g < 0 || g >= len(lv.postings) {
			continue
		}
		if lv.healthy.Has(g) {
			panic(fmt.Sprintf("match: LiveView.RestoreHealth(%d): vertex already healthy", g))
		}
		lv.healthy.Set(g)
		if lv.bw != nil {
			lv.bw.restoreOne(g)
		}
		if lv.avail.Has(g) {
			lv.unblock(g)
		}
	}
}

// block walks g's posting list for a usable→unusable transition.
func (lv *LiveView) block(g int) {
	for _, i := range lv.postings[g] {
		lv.blocked[i]++
		if lv.blocked[i] == 1 {
			lv.live.Unset(int(i))
			lv.liveLen--
		}
	}
}

// unblock walks g's posting list for an unusable→usable transition.
func (lv *LiveView) unblock(g int) {
	for _, i := range lv.postings[g] {
		lv.blocked[i]--
		if lv.blocked[i] == 0 {
			lv.live.Set(int(i))
			lv.liveLen++
		}
	}
}

// Candidates returns the live embedding indices in enumeration order,
// truncated to the first max (max <= 0: unlimited); truncated reports
// whether further live embeddings exist beyond the cap. The result is
// byte-identical to Universe.Filter with the tracked availability
// mask — same indices, same order, same truncation behavior — without
// the O(|universe|) subset scan.
func (lv *LiveView) Candidates(max int) (idx []int, truncated bool) {
	n := lv.liveLen
	if max > 0 && n > max {
		n, truncated = max, true
	}
	if n == 0 {
		return nil, truncated
	}
	idx = make([]int, 0, n)
	lv.live.ForEach(func(i int) bool {
		idx = append(idx, i)
		return len(idx) < n
	})
	return idx, truncated
}

// AppendLive appends the live embedding indices to dst in enumeration
// order, truncated to the first max (max <= 0: unlimited); truncated
// reports whether further live embeddings exist beyond the cap. It is
// Candidates with a caller-supplied buffer — pass dst[:0] to reuse
// scratch across decisions without allocating (beyond buffer growth).
func (lv *LiveView) AppendLive(dst []int, max int) (idx []int, truncated bool) {
	n := lv.liveLen
	if max > 0 && n > max {
		n, truncated = max, true
	}
	if n == 0 {
		return dst, truncated
	}
	start := len(dst)
	lv.live.ForEach(func(i int) bool {
		dst = append(dst, i)
		return len(dst)-start < n
	})
	return dst, truncated
}

// ForEachLive invokes fn for every live embedding index in enumeration
// order. Return false from fn to stop early.
func (lv *LiveView) ForEachLive(fn func(i int) bool) {
	lv.live.ForEach(fn)
}

// LiveSet returns the bitset of live embedding indices. READ-ONLY, and
// only valid until the next delta; callers iterate it directly to walk
// live candidates without closure dispatch.
func (lv *LiveView) LiveSet() graph.Bitset { return lv.live }

// Live reports whether embedding index i is currently live.
func (lv *LiveView) Live(i int) bool { return lv.live.Has(i) }

// Weighted reports whether the view maintains its own bandwidth
// accounting.
func (lv *LiveView) Weighted() bool { return lv.bw != nil }

// FreeWeight returns the total edge weight of the tracked free set —
// the availability graph's TotalWeight, maintained incrementally.
// Weighted views only.
func (lv *LiveView) FreeWeight() float64 { return lv.bw.FreeWeight() }

// FreeIncidentWeight returns the summed weight of GPU g's hardware
// edges into the tracked free set. Weighted views only; out-of-capacity
// vertices report zero.
func (lv *LiveView) FreeIncidentWeight(g int) float64 {
	return lv.bw.FreeIncidentWeight(g)
}

// PreservedBW evaluates Eq. 3 for allocating the given GPU set out of
// the tracked free state: the candidate's static internal-edge weight
// plus the view's delta-maintained state terms, O(k) arithmetic in
// total. The GPU set must lie inside the free set (candidates served
// from the live set always do). Weighted views only.
func (lv *LiveView) PreservedBW(internal float64, gpus []int) float64 {
	return lv.bw.PreservedBW(internal, gpus)
}
