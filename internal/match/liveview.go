package match

import (
	"fmt"

	"mapa/internal/graph"
)

// LiveView is a delta-maintained candidate view over one complete
// idle-state Universe: the set of embeddings valid on the *current*
// availability state, updated incrementally as GPUs are allocated and
// released instead of rescanned per decision.
//
// The structure inverts the universe: for every data vertex it holds a
// posting list of the embedding indices whose vertex set contains it,
// and for every embedding a counter of how many of its vertices are
// currently unavailable. Allocating k GPUs walks exactly k posting
// lists incrementing counters (and vice versa for a release), so the
// maintenance cost scales with the allocate/release delta — the sum of
// the touched posting lists — not with |universe| the way
// Universe.Filter does. An embedding is live exactly when its blocked
// counter is zero; live indices are additionally mirrored in a bitset
// so Candidates serves the list with a word-wise scan.
//
// Order is preserved by construction: posting-list maintenance never
// reorders anything, and the live bitset iterates in ascending
// embedding index — the universe's enumeration order. Candidates is
// therefore byte-identical to Universe.Filter on the equivalent mask,
// which is itself byte-identical to a fresh sequential search on the
// induced subgraph.
//
// A LiveView tracks one availability-state stream and is not safe for
// concurrent use; callers (matchcache.Views) serialize access.
type LiveView struct {
	u        *Universe
	postings [][]int32 // data vertex ID -> ascending embedding indices containing it
	blocked  []int32   // embedding index -> count of its vertices currently unavailable
	avail    graph.Bitset
	live     graph.Bitset // embedding indices with blocked == 0
	liveLen  int
}

// NewLiveView builds the live view of u on an initial availability
// state: free holds the currently available data vertices (vertices
// beyond the universe's capacity are irrelevant — no embedding can
// contain them). Building costs one pass over the universe's vertex
// sets; afterwards maintenance is delta-proportional. The universe
// must be complete — an incomplete universe cannot soundly answer any
// availability state — and NewLiveView panics otherwise, mirroring
// Filter.
func NewLiveView(u *Universe, free graph.Bitset) *LiveView {
	if !u.Complete() {
		panic("match: LiveView over an incomplete universe")
	}
	lv := &LiveView{
		u:        u,
		postings: make([][]int32, u.Capacity()),
		blocked:  make([]int32, u.Len()),
		avail:    graph.NewBitset(u.Capacity()),
		live:     graph.NewBitset(u.Len()),
	}
	for v := 0; v < u.Capacity(); v++ {
		if free.Has(v) {
			lv.avail.Set(v)
		}
	}
	for i := 0; i < u.Len(); i++ {
		u.Set(i).ForEach(func(v int) bool {
			lv.postings[v] = append(lv.postings[v], int32(i))
			if !lv.avail.Has(v) {
				lv.blocked[i]++
			}
			return true
		})
		if lv.blocked[i] == 0 {
			lv.live.Set(i)
			lv.liveLen++
		}
	}
	return lv
}

// Universe returns the universe the view is maintained over.
func (lv *LiveView) Universe() *Universe { return lv.u }

// Len returns the number of currently live embeddings.
func (lv *LiveView) Len() int { return lv.liveLen }

// Available reports whether data vertex v is currently available in
// the view's tracked state.
func (lv *LiveView) Available(v int) bool { return lv.avail.Has(v) }

// Allocate marks the given data vertices unavailable, deactivating
// exactly the embeddings on their posting lists. Vertices outside the
// universe's capacity are ignored (no embedding contains them).
// Allocating an already-unavailable vertex panics: it means the
// publisher's availability stream has diverged from the view's, which
// would silently corrupt the blocked counters.
func (lv *LiveView) Allocate(gpus []int) {
	for _, g := range gpus {
		if g < 0 || g >= len(lv.postings) {
			continue
		}
		if !lv.avail.Has(g) {
			panic(fmt.Sprintf("match: LiveView.Allocate(%d): vertex already unavailable", g))
		}
		lv.avail.Unset(g)
		for _, i := range lv.postings[g] {
			lv.blocked[i]++
			if lv.blocked[i] == 1 {
				lv.live.Unset(int(i))
				lv.liveLen--
			}
		}
	}
}

// Release marks the given data vertices available again, reactivating
// every embedding whose last blocker they were. Releasing an
// already-available vertex panics, like Allocate.
func (lv *LiveView) Release(gpus []int) {
	for _, g := range gpus {
		if g < 0 || g >= len(lv.postings) {
			continue
		}
		if lv.avail.Has(g) {
			panic(fmt.Sprintf("match: LiveView.Release(%d): vertex already available", g))
		}
		lv.avail.Set(g)
		for _, i := range lv.postings[g] {
			lv.blocked[i]--
			if lv.blocked[i] == 0 {
				lv.live.Set(int(i))
				lv.liveLen++
			}
		}
	}
}

// Candidates returns the live embedding indices in enumeration order,
// truncated to the first max (max <= 0: unlimited); truncated reports
// whether further live embeddings exist beyond the cap. The result is
// byte-identical to Universe.Filter with the tracked availability
// mask — same indices, same order, same truncation behavior — without
// the O(|universe|) subset scan.
func (lv *LiveView) Candidates(max int) (idx []int, truncated bool) {
	n := lv.liveLen
	if max > 0 && n > max {
		n, truncated = max, true
	}
	if n == 0 {
		return nil, truncated
	}
	idx = make([]int, 0, n)
	lv.live.ForEach(func(i int) bool {
		idx = append(idx, i)
		return len(idx) < n
	})
	return idx, truncated
}
