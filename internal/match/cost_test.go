package match

import (
	"fmt"
	"math"
	"testing"

	"mapa/internal/graph"
)

// skewedGraph builds a data graph with one dense region and a sparse
// tail: vertices 0..5 form a clique (the "fully connected intra-node
// region"), and vertices 6..6+tail-1 hang off it in a chain, each also
// linked to clique vertex 0. Root subtree sizes differ by orders of
// magnitude between clique and tail roots.
func skewedGraph(tail int) *graph.Graph {
	g := graph.New()
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			g.MustAddEdge(u, v, 1, 0)
		}
	}
	prev := 5
	for i := 0; i < tail; i++ {
		v := 6 + i
		g.MustAddEdge(prev, v, 1, 0)
		g.MustAddEdge(0, v, 1, 0)
		prev = v
	}
	return g
}

// TestRootCostsRankDenseRoots pins the estimator's one job: a dense
// root must cost more than a sparse one, so the work-stealing plan
// claims it first instead of letting it serialize the tail of a build.
func TestRootCostsRankDenseRoots(t *testing.T) {
	data := skewedGraph(24)
	sr := NewSearcher(ring(3), data)
	costs := sr.RootCosts()
	if len(costs) != len(sr.Roots()) {
		t.Fatalf("costs len %d != roots len %d", len(costs), len(sr.Roots()))
	}
	byRoot := make(map[int]float64, len(costs))
	for i, r := range sr.Roots() {
		byRoot[r] = costs[i]
	}
	// Vertex 1 sits in the clique; vertex 10 is deep in the sparse
	// tail. (Vertex 0 is denser still, but 1 suffices and avoids the
	// hub's tail links.)
	if byRoot[1] <= byRoot[10] {
		t.Errorf("clique root cost %.1f should exceed tail root cost %.1f", byRoot[1], byRoot[10])
	}
	// The cost-descending chunk plan must beat one-contiguous-slice-
	// per-worker on this skew — the dense-root straggler the refactor
	// removes.
	for _, workers := range []int{2, 4, 8} {
		plan := PlanImbalance(costs, planChunks(costs, workers), workers)
		slice := SliceImbalance(costs, workers)
		if plan >= slice {
			t.Errorf("workers=%d: plan imbalance %.3f not better than slice imbalance %.3f", workers, plan, slice)
		}
	}
}

// TestPlanChunksPartitionRoots checks the chunk plan is a true
// partition — every root exactly once — is deterministic, and orders
// chunks by descending cost.
func TestPlanChunksPartitionRoots(t *testing.T) {
	data := skewedGraph(24)
	sr := NewSearcher(ring(3), data)
	costs := sr.RootCosts()
	for _, workers := range []int{1, 2, 4, 8} {
		chunks := planChunks(costs, workers)
		seen := make(map[int]bool)
		prevMax := math.Inf(1)
		for _, ch := range chunks {
			if len(ch) == 0 {
				t.Fatalf("workers=%d: empty chunk", workers)
			}
			chunkMax := 0.0
			for _, i := range ch {
				if seen[i] {
					t.Fatalf("workers=%d: root index %d in two chunks", workers, i)
				}
				seen[i] = true
				if costs[i] > chunkMax {
					chunkMax = costs[i]
				}
			}
			if chunkMax > prevMax {
				t.Fatalf("workers=%d: chunk max cost %.1f after cheaper chunk %.1f", workers, chunkMax, prevMax)
			}
			prevMax = chunkMax
		}
		if len(seen) != len(costs) {
			t.Fatalf("workers=%d: chunks cover %d roots, want %d", workers, len(seen), len(costs))
		}
		again := planChunks(costs, workers)
		if fmt.Sprint(again) != fmt.Sprint(chunks) {
			t.Fatalf("workers=%d: plan is not deterministic", workers)
		}
	}
}

// matchesEqual compares two match slices byte-for-byte (order,
// Pattern, and Data all included).
func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if fmt.Sprint(a[i].Pattern) != fmt.Sprint(b[i].Pattern) ||
			fmt.Sprint(a[i].Data) != fmt.Sprint(b[i].Data) {
			return false
		}
	}
	return true
}

// TestParallelSparseVertexIDs drives the cost partitioner over a data
// graph whose vertex IDs are sparse and non-contiguous (physical GPU
// IDs survive removal, and multi-node IDs jump across bitset words):
// Searcher.Roots must report real vertex IDs and the parallel output
// must stay byte-identical to sequential at every worker count.
func TestParallelSparseVertexIDs(t *testing.T) {
	ids := []int{3, 7, 64, 65, 66, 130, 131, 200}
	data := graph.New()
	for a := 0; a < len(ids); a++ {
		for b := a + 1; b < len(ids); b++ {
			if (a+b)%3 != 0 { // drop some edges so degrees differ
				data.MustAddEdge(ids[a], ids[b], 1, 0)
			}
		}
	}
	pattern := ring(3)
	sr := NewSearcher(pattern, data)
	prev := -1
	for _, r := range sr.Roots() {
		if !data.HasVertex(r) {
			t.Fatalf("root %d is not a data vertex", r)
		}
		if r <= prev {
			t.Fatalf("roots not ascending: %v", sr.Roots())
		}
		prev = r
	}
	wantM, wantK := FindAllDedupedCappedKeys(pattern, data, 0)
	if len(wantM) == 0 {
		t.Fatal("test graph has no matches — pick denser edges")
	}
	for _, workers := range []int{2, 4, 8} {
		gotM, gotK := FindAllDedupedParallelKeys(pattern, data, workers, 0)
		if !matchesEqual(gotM, wantM) || fmt.Sprint(gotK) != fmt.Sprint(wantK) {
			t.Fatalf("workers=%d: parallel output differs from sequential on sparse IDs", workers)
		}
	}
}

// TestZeroCandidateRoots covers roots whose candidate frontier is
// empty: vertices that pass the first-position degree bound but whose
// neighborhoods cannot extend to a full embedding. They must get a
// cost, be dispatched, produce nothing, and leave the stitched output
// byte-identical to sequential.
func TestZeroCandidateRoots(t *testing.T) {
	// Triangle {0,1,2}; vertex 3 bridges to 4 and 5 (degree 2 passes
	// the triangle's degree bound) but no triangle goes through 3, 4,
	// or 5.
	data := graph.New()
	data.MustAddEdge(0, 1, 1, 0)
	data.MustAddEdge(1, 2, 1, 0)
	data.MustAddEdge(0, 2, 1, 0)
	data.MustAddEdge(3, 4, 1, 0)
	data.MustAddEdge(3, 5, 1, 0)
	data.MustAddEdge(4, 0, 1, 0)
	data.MustAddEdge(5, 1, 1, 0)
	pattern := ring(3)
	sr := NewSearcher(pattern, data)
	if len(sr.Roots()) < 4 {
		t.Fatalf("want several eligible roots, got %v", sr.Roots())
	}
	if len(sr.RootCosts()) != len(sr.Roots()) {
		t.Fatal("cost per root missing")
	}
	wantM, wantK := FindAllDedupedCappedKeys(pattern, data, 0)
	if len(wantM) != 1 {
		t.Fatalf("graph holds %d triangles, want 1", len(wantM))
	}
	for _, workers := range []int{2, 4} {
		gotM, gotK := FindAllDedupedParallelKeys(pattern, data, workers, 0)
		if !matchesEqual(gotM, wantM) || fmt.Sprint(gotK) != fmt.Sprint(wantK) {
			t.Fatalf("workers=%d: zero-candidate roots broke parity", workers)
		}
	}
}

// TestCapTruncationMidChunk pins the capped parallel enumeration on a
// graph large enough that chunks hold several roots (40 roots vs
// 8-per-worker chunking), with caps chosen to land inside a chunk: the
// truncated output must be the exact sequential prefix — the
// completeness-cap guarantee the universe store relies on.
func TestCapTruncationMidChunk(t *testing.T) {
	data := complete(40)
	pattern := ring(3)
	sr := NewSearcher(pattern, data)
	if n := len(sr.Roots()); n != 40 {
		t.Fatalf("roots = %d, want 40", n)
	}
	for _, workers := range []int{2, 3, 4} {
		if chunks := planChunks(sr.RootCosts(), workers); len(chunks) >= len(sr.Roots()) {
			t.Fatalf("workers=%d: all chunks are singletons — cap cannot land mid-chunk", workers)
		}
	}
	for _, max := range []int{1, 7, 53, 509, 2000} {
		wantM, wantK := FindAllDedupedCappedKeys(pattern, data, max)
		if len(wantM) != max {
			t.Fatalf("max=%d: sequential returned %d", max, len(wantM))
		}
		for _, workers := range []int{2, 3, 4, 8} {
			gotM, gotK := FindAllDedupedParallelKeys(pattern, data, workers, max)
			if !matchesEqual(gotM, wantM) || fmt.Sprint(gotK) != fmt.Sprint(wantK) {
				t.Fatalf("workers=%d max=%d: truncated prefix differs from sequential", workers, max)
			}
		}
	}
}

// TestBuildStatsAccounting checks the dispatch accounting: every root
// claimed exactly once across workers, claimed cost sums to the total,
// and the plan metric is populated.
func TestBuildStatsAccounting(t *testing.T) {
	data := skewedGraph(24)
	pattern := ring(3)
	_, _, bs := FindAllDedupedParallelKeysStats(pattern, data, 4, 0, true)
	if bs == nil {
		t.Fatal("stats requested but nil")
	}
	sr := NewSearcher(pattern, data)
	if bs.Roots != len(sr.Roots()) {
		t.Fatalf("stats.Roots = %d, want %d", bs.Roots, len(sr.Roots()))
	}
	claimedRoots := 0
	claimedCost := 0.0
	for w := range bs.WorkerCost {
		claimedRoots += bs.WorkerRoots[w]
		claimedCost += bs.WorkerCost[w]
	}
	if claimedRoots != bs.Roots {
		t.Fatalf("workers claimed %d roots, want %d", claimedRoots, bs.Roots)
	}
	if math.Abs(claimedCost-bs.TotalCost) > 1e-6*bs.TotalCost {
		t.Fatalf("claimed cost %.3f != total %.3f", claimedCost, bs.TotalCost)
	}
	if bs.Plan < 1 {
		t.Fatalf("plan imbalance %.3f < 1", bs.Plan)
	}
	if bs.Chunks < bs.Workers {
		t.Fatalf("chunks %d < workers %d", bs.Chunks, bs.Workers)
	}
}
