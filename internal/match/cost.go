// Per-root subtree cost estimation and chunk planning for the parallel
// enumeration. The PR 1 dispatcher handed out roots one at a time in
// ascending vertex order, which balances *counts* but not *work*: a
// dense root (say, a fully connected intra-node region of a multi-node
// machine) spans a combinatorially larger search subtree than a sparse
// one, so whichever worker claims it last becomes the straggler of the
// whole universe build. The cost model below ranks roots by estimated
// subtree size using only the adjacency-bitset index the Searcher
// already holds, and the planner packs them into cost-descending chunks
// that workers claim from a shared queue: expensive subtrees start
// first (and alone), cheap ones are batched to keep claim contention
// low.
package match

import (
	"math"
	"sort"

	"mapa/internal/graph"
)

// chunksPerWorker sets the chunk granularity of the work-stealing
// plan: more chunks per worker means finer rebalancing when estimates
// are off, at the price of more claims on the shared queue. Claims are
// one atomic increment each, so the granularity is cheap.
const chunksPerWorker = 8

// rootCosts estimates, for every eligible root (aligned with
// Searcher.Roots), the size of the backtracking subtree anchored at
// that root: the product of the candidate-frontier cardinalities along
// the match order. Only the root's image is known before searching, so
// frontiers are estimated from the index's degree data: a depth whose
// earlier-neighbor set includes the root contributes the root's
// degree, every additional earlier neighbor scales the frontier by the
// mean-degree selectivity of one more adjacency mask, and depths with
// no earlier neighbors (disconnected patterns) fall back to the whole
// vertex set. Already-bound vertices are subtracted from each
// frontier. The estimate is deterministic — pure arithmetic over the
// immutable index — so every build of a (pattern, data) pair plans the
// same chunks.
func (sr *Searcher) rootCosts() []float64 {
	pg := sr.pg
	costs := make([]float64, len(sr.roots))
	if pg == nil {
		return costs
	}
	n := float64(pg.ix.Len())
	degSum := 0
	for p := 0; p < pg.ix.Len(); p++ {
		degSum += pg.ix.Degree(p)
	}
	meanDeg := 1.0
	if n > 0 {
		meanDeg = float64(degSum) / n
	}
	for i, root := range sr.roots {
		p, _ := pg.ix.PosOf(root)
		rootDeg := float64(pg.ix.Degree(p))
		cost := 1.0
		for d := 1; d < pg.k; d++ {
			frontier := n // no earlier neighbors: full vertex set
			masks := len(pg.earlier[d])
			if masks > 0 {
				// The frontier is an intersection of adjacency masks;
				// the root's own mask has known cardinality, each
				// further mask keeps a meanDeg/n fraction under the
				// independence approximation.
				rooted := false
				for _, j := range pg.earlier[d] {
					if j == 0 {
						rooted = true
					}
				}
				if rooted {
					frontier = rootDeg
					masks--
				} else {
					frontier = meanDeg
					masks--
				}
				for ; masks > 0; masks-- {
					frontier *= meanDeg / n
				}
			}
			frontier -= float64(d) // vertices already bound are unusable
			if frontier < 1 {
				frontier = 1
			}
			cost *= frontier
		}
		costs[i] = cost
	}
	return costs
}

// RootCosts returns the estimated enumeration cost of each root
// subtree, aligned with Roots(). Exposed for partitioning tests and
// the universe-build benchmarks.
func (sr *Searcher) RootCosts() []float64 { return sr.rootCosts() }

// EstimateBuildCost returns the estimated total enumeration cost of
// pattern on data — the summed root subtree estimates. It compiles
// only the adjacency index (no enumeration), so warm planners can
// order shapes by expected build cost before paying for any build.
func EstimateBuildCost(pattern, data *graph.Graph) float64 {
	total := 0.0
	for _, c := range NewSearcher(pattern, data).rootCosts() {
		total += c
	}
	return total
}

// planChunks packs root indices into the work-stealing claim order:
// indices sorted by estimated cost descending (ties by ascending index,
// keeping the plan deterministic), then grouped into consecutive chunks
// of roughly total/(workers*chunksPerWorker) cost each. Expensive roots
// land in small (often singleton) chunks at the front of the queue so
// they are claimed first; cheap roots are batched at the back. Every
// root appears in exactly one chunk.
func planChunks(costs []float64, workers int) [][]int {
	n := len(costs)
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	total := 0.0
	for i, c := range costs {
		order[i] = i
		total += c
	}
	sort.SliceStable(order, func(a, b int) bool {
		if costs[order[a]] != costs[order[b]] {
			return costs[order[a]] > costs[order[b]]
		}
		return order[a] < order[b]
	})
	if workers < 1 {
		workers = 1
	}
	nChunks := workers * chunksPerWorker
	if nChunks > n {
		nChunks = n
	}
	// Close each chunk at the next cumulative-cost quantile boundary
	// (k+1)/nChunks of the total, rather than at a fixed per-chunk
	// budget: quantiles spread float rounding across chunks, so a
	// uniform-cost root set splits into equal-count chunks instead of
	// drifting by one root per chunk. The epsilon absorbs accumulation
	// error on exact boundaries.
	var chunks [][]int
	var cur []int
	cum := 0.0
	for _, i := range order {
		cur = append(cur, i)
		cum += costs[i]
		if cum*float64(nChunks) >= total*float64(len(chunks)+1)*(1-1e-9) {
			chunks = append(chunks, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks
}

// BuildStats is the dispatch accounting of one parallel enumeration:
// how the estimated root costs were chunked and how much estimated
// work each worker actually claimed. It exists so benchmarks can
// report partitioner balance (the straggler metric) next to wall
// time.
type BuildStats struct {
	// Workers is the goroutine count the dispatch ran with; Roots and
	// Chunks describe the plan it claimed from.
	Workers, Roots, Chunks int
	// TotalCost is the summed estimated cost of every root.
	TotalCost float64
	// Plan is the chunk plan's idealized claimed-cost imbalance (see
	// PlanImbalance) — the partitioner-quality metric, independent of
	// how the host actually scheduled the goroutines.
	Plan float64
	// WorkerCost and WorkerRoots record, per worker, the estimated
	// cost and root count actually claimed at runtime.
	WorkerCost  []float64
	WorkerRoots []int
	// RootSeconds records each root subtree's measured enumeration wall
	// time, aligned with Roots() — the feedback signal of the EWMA cost
	// calibration. Roots skipped by a cap stop keep zero.
	RootSeconds []float64
	// Calibrated reports whether the plan was chunked from calibrated
	// (measured) costs rather than the static degree-product estimate.
	Calibrated bool
}

// CostImbalance returns max/min of the per-worker claimed estimated
// cost — 1.0 is a perfectly balanced build. A worker that claimed
// nothing (possible when another drained the queue first, e.g. on a
// single-core host) makes the ratio +Inf; callers report it as-is.
func (bs *BuildStats) CostImbalance() float64 {
	if bs == nil || len(bs.WorkerCost) == 0 {
		return 1
	}
	return imbalance(bs.WorkerCost)
}

// imbalance returns max/min over per-worker loads, 1 for an all-zero
// or empty load vector, +Inf when some but not all workers idled.
func imbalance(load []float64) float64 {
	if len(load) == 0 {
		return 1
	}
	min, max := load[0], load[0]
	for _, l := range load[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min == 0 {
		if max == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return max / min
}

// PlanImbalance simulates claiming the given chunk plan with `workers`
// workers that each grab the next chunk the moment they go idle — the
// idealized outcome of the shared-queue dispatch, independent of
// runtime scheduling — and returns max/min of the per-worker claimed
// cost. Deterministic, so benchmarks can compare partitioning
// strategies on any host (the live WorkerCost degenerates on a
// single-core container where one goroutine can drain the queue).
func PlanImbalance(costs []float64, chunks [][]int, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	load := make([]float64, workers)
	for _, ch := range chunks {
		// Next claimant = the least-loaded worker (first such index),
		// matching "grabs the next chunk the moment it goes idle".
		w := 0
		for i := 1; i < workers; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		for _, i := range ch {
			load[w] += costs[i]
		}
	}
	return imbalance(load)
}

// SliceImbalance is PlanImbalance for the strategy the cost planner
// replaced: one contiguous root slice per worker in ascending vertex
// order, no stealing. Benchmarks report both to show the dense-root
// straggler gone.
func SliceImbalance(costs []float64, workers int) float64 {
	n := len(costs)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return 1
	}
	load := make([]float64, workers)
	for i, c := range costs {
		load[i*workers/n] += c
	}
	return imbalance(load)
}
