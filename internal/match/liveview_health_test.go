package match

import (
	"math"
	"math/rand"
	"testing"

	"mapa/internal/graph"
)

// rebuildOracle constructs the state a LiveView should be in from
// scratch: a fresh view on the free mask, then the unhealthy set
// replayed as one health event.
func rebuildOracle(u *Universe, free, healthy graph.Bitset) *LiveView {
	lv := NewLiveView(u, free)
	var down []int
	for v := 0; v < u.Capacity(); v++ {
		if !healthy.Has(v) {
			down = append(down, v)
		}
	}
	lv.MarkUnhealthy(down)
	return lv
}

// TestLiveViewHealthMatchesFilterUsable drives a random interleaving of
// allocation and health deltas through one live view and checks, after
// every event, that the live candidate list equals both
// Universe.FilterUsable on the tracked masks and a view rebuilt from
// scratch — the delta machinery must be history-independent.
func TestLiveViewHealthMatchesFilterUsable(t *testing.T) {
	pattern := ringPattern(3)
	data := completeData(10)
	data.RemoveEdge(1, 6)
	data.RemoveEdge(3, 8)
	u := BuildUniverse(pattern, data, 0, 1)
	free := data.VertexBitset()
	healthy := graph.NewBitset(u.Capacity())
	healthy.Fill(u.Capacity())
	lv := NewLiveView(u, free)

	check := func(step string) {
		t.Helper()
		for _, max := range []int{0, 1, 5} {
			want, wantTrunc := u.FilterUsable(free, healthy, max)
			got, gotTrunc := lv.Candidates(max)
			if gotTrunc != wantTrunc || len(got) != len(want) {
				t.Fatalf("%s max=%d: live %d/%v, FilterUsable %d/%v", step, max, len(got), gotTrunc, len(want), wantTrunc)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s max=%d index %d: live %d, FilterUsable %d", step, max, j, got[j], want[j])
				}
			}
		}
		oracle := rebuildOracle(u, free, healthy)
		if oracle.Len() != lv.Len() {
			t.Fatalf("%s: live view has %d embeddings, rebuilt oracle %d", step, lv.Len(), oracle.Len())
		}
	}

	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 400; step++ {
		v := rng.Intn(10)
		switch rng.Intn(4) {
		case 0: // flip allocation state
			if free.Has(v) {
				lv.Allocate([]int{v})
				free.Unset(v)
			} else {
				lv.Release([]int{v})
				free.Set(v)
			}
			check("allocation delta")
		case 1: // flip health state
			if healthy.Has(v) {
				lv.MarkUnhealthy([]int{v})
				healthy.Unset(v)
			} else {
				lv.RestoreHealth([]int{v})
				healthy.Set(v)
			}
			check("health delta")
		case 2: // multi-GPU health event
			var down []int
			for g := 0; g < 10 && len(down) < 3; g++ {
				if healthy.Has(g) && rng.Intn(2) == 0 {
					down = append(down, g)
				}
			}
			lv.MarkUnhealthy(down)
			for _, g := range down {
				healthy.Unset(g)
			}
			check("multi-GPU failure")
		case 3: // full recovery
			var down []int
			for g := 0; g < 10; g++ {
				if !healthy.Has(g) {
					down = append(down, g)
				}
			}
			lv.RestoreHealth(down)
			for _, g := range down {
				healthy.Set(g)
			}
			check("full recovery")
		}
	}
}

// TestLiveViewHealthCommutes pins the mask-commutation property: the
// four interleavings of (allocate, fail) then (release, recover) on one
// vertex all pass through consistent states and land back at idle.
func TestLiveViewHealthCommutes(t *testing.T) {
	u := BuildUniverse(ringPattern(3), completeData(6), 0, 1)
	idle := u.Len()
	orders := [][]func(lv *LiveView){
		{func(lv *LiveView) { lv.Allocate([]int{2}) }, func(lv *LiveView) { lv.MarkUnhealthy([]int{2}) },
			func(lv *LiveView) { lv.Release([]int{2}) }, func(lv *LiveView) { lv.RestoreHealth([]int{2}) }},
		{func(lv *LiveView) { lv.Allocate([]int{2}) }, func(lv *LiveView) { lv.MarkUnhealthy([]int{2}) },
			func(lv *LiveView) { lv.RestoreHealth([]int{2}) }, func(lv *LiveView) { lv.Release([]int{2}) }},
		{func(lv *LiveView) { lv.MarkUnhealthy([]int{2}) }, func(lv *LiveView) { lv.Allocate([]int{2}) },
			func(lv *LiveView) { lv.Release([]int{2}) }, func(lv *LiveView) { lv.RestoreHealth([]int{2}) }},
		{func(lv *LiveView) { lv.MarkUnhealthy([]int{2}) }, func(lv *LiveView) { lv.Allocate([]int{2}) },
			func(lv *LiveView) { lv.RestoreHealth([]int{2}) }, func(lv *LiveView) { lv.Release([]int{2}) }},
	}
	for oi, ops := range orders {
		lv := NewWeightedLiveView(u, completeData(6).VertexBitset(), completeData(6))
		want := lv.FreeWeight()
		for _, op := range ops {
			op(lv)
		}
		if lv.Len() != idle {
			t.Fatalf("order %d: %d live embeddings after round trip, want %d", oi, lv.Len(), idle)
		}
		if got := lv.FreeWeight(); got != want {
			t.Fatalf("order %d: free weight %v after round trip, want %v", oi, got, want)
		}
	}
}

// TestBandwidthAccountingHealthOracle drives random allocation and
// health deltas through one accounting and checks every maintained sum
// against an accounting rebuilt from scratch on the equivalent state.
func TestBandwidthAccountingHealthOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := graph.New()
	const n = 9
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(5) > 0 {
				data.MustAddEdge(i, j, float64(1+rng.Intn(50)), 0)
			}
		}
	}
	capacity := graph.Capacity(data)
	free := data.VertexBitset()
	healthy := graph.NewBitset(capacity)
	healthy.Fill(capacity)
	a := NewBandwidthAccounting(data, free, capacity)

	check := func(step int) {
		t.Helper()
		// The oracle: a fresh accounting whose free set is the usable
		// set (free AND healthy) — health folded in at construction.
		usable := free.Clone()
		usable.And(healthy)
		fresh := NewBandwidthAccounting(data, usable, capacity)
		if got, want := a.FreeWeight(), fresh.FreeWeight(); got != want {
			t.Fatalf("step %d: FreeWeight %v, rebuilt %v", step, got, want)
		}
		for v := 0; v < capacity; v++ {
			if got, want := a.FreeIncidentWeight(v), fresh.FreeIncidentWeight(v); got != want {
				t.Fatalf("step %d: FreeIncidentWeight(%d) %v, rebuilt %v", step, v, got, want)
			}
		}
	}

	for step := 0; step < 500; step++ {
		v := rng.Intn(n)
		if rng.Intn(2) == 0 {
			if free.Has(v) {
				a.Allocate([]int{v})
				free.Unset(v)
			} else {
				a.Release([]int{v})
				free.Set(v)
			}
		} else {
			if healthy.Has(v) {
				a.MarkUnhealthy([]int{v})
				healthy.Unset(v)
			} else {
				a.RestoreHealth([]int{v})
				healthy.Set(v)
			}
		}
		check(step)
	}
}

// TestBandwidthAccountingUpdateEdge degrades link weights under mixed
// allocation/health state and checks the absorbed deltas against an
// accounting rebuilt from the mutated graph.
func TestBandwidthAccountingUpdateEdge(t *testing.T) {
	data := completeData(7)
	capacity := graph.Capacity(data)
	free := data.VertexBitset()
	a := NewBandwidthAccounting(data, free, capacity)
	a.Allocate([]int{1, 4})
	free.Unset(1)
	free.Unset(4)
	a.MarkUnhealthy([]int{2})
	healthyDown := []int{2}

	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 100; step++ {
		u := rng.Intn(7)
		v := rng.Intn(7)
		if u == v {
			continue
		}
		w := float64(rng.Intn(40))   // degradation to zero is legal
		data.MustAddEdge(u, v, w, 0) // overwrite weight in the graph
		a.UpdateEdge(u, v, w)

		usable := free.Clone()
		for _, g := range healthyDown {
			usable.Unset(g)
		}
		fresh := NewBandwidthAccounting(data, usable, capacity)
		if got, want := a.FreeWeight(), fresh.FreeWeight(); math.Abs(got-want) != 0 {
			t.Fatalf("step %d: FreeWeight %v after UpdateEdge(%d,%d,%v), rebuilt %v", step, got, u, v, w, want)
		}
		for g := 0; g < capacity; g++ {
			if got, want := a.FreeIncidentWeight(g), fresh.FreeIncidentWeight(g); got != want {
				t.Fatalf("step %d: FreeIncidentWeight(%d) %v, rebuilt %v", step, g, got, want)
			}
		}
	}
}

// TestHealthDivergencePanics pins the stream-divergence guards of the
// health mask: double failures, double recoveries, and edge updates the
// accounting does not track must fail loudly, never corrupt sums.
func TestHealthDivergencePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		fn()
	}
	u := BuildUniverse(ringPattern(3), completeData(6), 0, 1)
	mustPanic("LiveView double MarkUnhealthy", func() {
		lv := NewLiveView(u, completeData(6).VertexBitset())
		lv.MarkUnhealthy([]int{3})
		lv.MarkUnhealthy([]int{3})
	})
	mustPanic("LiveView RestoreHealth of healthy vertex", func() {
		lv := NewLiveView(u, completeData(6).VertexBitset())
		lv.RestoreHealth([]int{0})
	})
	mustPanic("BandwidthAccounting double MarkUnhealthy", func() {
		a := NewBandwidthAccounting(completeData(6), completeData(6).VertexBitset(), 6)
		a.MarkUnhealthy([]int{5})
		a.MarkUnhealthy([]int{5})
	})
	mustPanic("BandwidthAccounting UpdateEdge of untracked edge", func() {
		data := completeData(6)
		data.RemoveEdge(0, 1)
		a := NewBandwidthAccounting(data, data.VertexBitset(), 6)
		a.UpdateEdge(0, 1, 10)
	})
}
