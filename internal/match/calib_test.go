package match

import (
	"testing"

	"mapa/internal/graph"
)

func TestCostCalibrationEWMA(t *testing.T) {
	c := NewCostCalibration(0.5)
	c.Observe("k", []float64{8, 2})
	got, ok := c.Calibrated("k", []float64{1, 1})
	if !ok || got[0] != 8 || got[1] != 2 {
		t.Fatalf("first observation should be adopted outright, got %v ok=%v", got, ok)
	}
	c.Observe("k", []float64{4, 4})
	got, ok = c.Calibrated("k", []float64{1, 1})
	if !ok || got[0] != 6 || got[1] != 3 {
		t.Fatalf("EWMA(0.5) after {8,2},{4,4} = %v, want {6,3}", got)
	}
	// Length change (root set changed): replace, don't blend.
	c.Observe("k", []float64{1, 2, 3})
	if got, ok = c.Calibrated("k", []float64{0, 0, 0}); !ok || got[1] != 2 {
		t.Fatalf("resized observation should replace, got %v ok=%v", got, ok)
	}
	// Unknown key or mismatched length falls back to the static costs.
	static := []float64{5, 5}
	if got, ok = c.Calibrated("other", static); ok || &got[0] != &static[0] {
		t.Fatal("unknown key must return the static slice with ok=false")
	}
	if got, ok = c.Calibrated("k", static); ok {
		t.Fatalf("length mismatch must fall back to static, got %v", got)
	}
	// The returned calibrated vector is a copy: mutating it must not
	// corrupt the stored EWMA.
	got, _ = c.Calibrated("k", []float64{0, 0, 0})
	got[0] = -1
	if again, _ := c.Calibrated("k", []float64{0, 0, 0}); again[0] == -1 {
		t.Fatal("Calibrated must return a copy")
	}
}

// TestCalibratedPlanNoWorseThanStatic is the acceptance check for the
// adaptive calibration: when the measured per-root costs diverge from
// the static estimate, planning from the calibrated costs must yield a
// work-stealing plan whose imbalance — evaluated against the measured
// truth — is no worse than the static plan's.
func TestCalibratedPlanNoWorseThanStatic(t *testing.T) {
	// Static estimate: uniform. Measured truth: one dominant root (the
	// dense-subtree case the estimator can misjudge).
	static := make([]float64, 16)
	measured := make([]float64, 16)
	for i := range static {
		static[i] = 1
		measured[i] = 1
	}
	measured[3] = 10
	measured[11] = 8

	c := NewCostCalibration(1)
	c.Observe("k", measured)
	calibrated, ok := c.Calibrated("k", static)
	if !ok {
		t.Fatal("calibration not served")
	}
	const workers = 4
	staticPlan := PlanImbalance(measured, planChunks(static, workers), workers)
	calibratedPlan := PlanImbalance(measured, planChunks(calibrated, workers), workers)
	if calibratedPlan > staticPlan {
		t.Fatalf("calibrated plan imbalance %.3f worse than static %.3f", calibratedPlan, staticPlan)
	}
	// With the dominant roots isolated into their own chunks the
	// idealized claim spreads the uniform tail across the other
	// workers: loads {10, 8, 7, 7}, imbalance 10/7.
	if calibratedPlan > 10.0/7+1e-9 {
		t.Fatalf("calibrated plan imbalance %.3f: dominant roots not isolated", calibratedPlan)
	}
}

// TestBuildUniverseCalibratedByteIdentical pins that calibration only
// moves the chunk plan: a calibrated rebuild emits the exact universe
// of the uncalibrated build, and the second build reports Calibrated.
func TestBuildUniverseCalibratedByteIdentical(t *testing.T) {
	data := graph.New()
	for v := 0; v < 12; v++ {
		for u := v + 1; u < 12; u++ {
			if (v+u)%3 != 0 {
				data.MustAddEdge(v, u, float64(12+(v+u)%4), 0)
			}
		}
	}
	pattern := ringPatternBW(4)
	want := BuildUniverse(pattern, data, 0, 1)

	cal := NewCostCalibration(0.5)
	first, bs1 := BuildUniverseCalibrated(pattern, data, 0, 4, cal, "k")
	if bs1 == nil || bs1.Calibrated {
		t.Fatalf("first build must plan from the static estimate, stats %+v", bs1)
	}
	if len(bs1.RootSeconds) == 0 {
		t.Fatal("instrumented build must record per-root timings")
	}
	second, bs2 := BuildUniverseCalibrated(pattern, data, 0, 4, cal, "k")
	if bs2 == nil || !bs2.Calibrated {
		t.Fatalf("second build must plan from calibrated costs, stats %+v", bs2)
	}
	for _, u := range []*Universe{first, second} {
		if u.Len() != want.Len() {
			t.Fatalf("calibrated build holds %d classes, want %d", u.Len(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			if u.Key(i) != want.Key(i) {
				t.Fatalf("class %d: key %q, want %q — calibration must not reorder output", i, u.Key(i), want.Key(i))
			}
		}
	}
}
