package match

import (
	"testing"

	"mapa/internal/graph"
)

// ringPattern builds a k-cycle pattern 0-1-...-k-1-0.
func ringPattern(k int) *graph.Graph {
	g := graph.New()
	for v := 0; v < k; v++ {
		g.MustAddEdge(v, (v+1)%k, 1, 0)
	}
	return g
}

// completeData builds a complete data graph on n vertices.
func completeData(n int) *graph.Graph {
	g := graph.New()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v, 1, 0)
		}
	}
	return g
}

func TestUniverseFullMaskEqualsSequential(t *testing.T) {
	pattern := ringPattern(4)
	data := completeData(8)
	u := BuildUniverse(pattern, data, 0, 1)
	if !u.Complete() {
		t.Fatal("uncapped universe must be complete")
	}
	wantMs, wantKeys := FindAllDedupedCappedKeys(pattern, data, 0)
	idx, truncated := u.Filter(data.VertexBitset(), 0)
	if truncated {
		t.Fatal("unlimited filter cannot truncate")
	}
	if len(idx) != len(wantMs) {
		t.Fatalf("full-mask filter kept %d matches, sequential found %d", len(idx), len(wantMs))
	}
	for j, i := range idx {
		if u.Key(i) != wantKeys[j] {
			t.Fatalf("match %d: key %q, want %q", j, u.Key(i), wantKeys[j])
		}
	}
}

// TestUniverseFilterEqualsInducedEnumeration is the order-preservation
// contract: filtering the idle-state universe by a free-vertex mask
// must reproduce the sequential deduplicated enumeration on the
// induced subgraph byte-for-byte — matches, keys, order, and cap
// behavior included.
func TestUniverseFilterEqualsInducedEnumeration(t *testing.T) {
	pattern := ringPattern(3)
	data := completeData(9)
	// Perturb the data graph so it is not vertex-transitive.
	data.RemoveEdge(0, 5)
	data.RemoveEdge(2, 7)
	data.RemoveEdge(3, 4)
	u := BuildUniverse(pattern, data, 0, 1)

	frees := [][]int{
		{0, 1, 2, 3, 4},
		{1, 3, 5, 7, 8},
		{0, 2, 4, 6, 8},
		{4, 5, 6, 7, 8},
		{0, 1, 2, 3, 4, 5, 6, 7, 8},
	}
	for _, free := range frees {
		avail := data.InducedSubgraph(free)
		for _, max := range []int{0, 3} {
			wantMs, wantKeys := FindAllDedupedCappedKeys(pattern, avail, max)
			idx, _ := u.Filter(avail.VertexBitset(), max)
			if len(idx) != len(wantMs) {
				t.Fatalf("free=%v max=%d: filter kept %d, sequential %d", free, max, len(idx), len(wantMs))
			}
			for j, i := range idx {
				if u.Key(i) != wantKeys[j] {
					t.Fatalf("free=%v max=%d match %d: key %q, want %q", free, max, j, u.Key(i), wantKeys[j])
				}
				got := u.Match(i)
				want := wantMs[j]
				for d := range want.Data {
					if got.Data[d] != want.Data[d] || got.Pattern[d] != want.Pattern[d] {
						t.Fatalf("free=%v max=%d match %d: representative differs:\n got %v->%v\nwant %v->%v",
							free, max, j, got.Pattern, got.Data, want.Pattern, want.Data)
					}
				}
			}
		}
	}
}

func TestUniverseIncompleteWhenCapped(t *testing.T) {
	pattern := ringPattern(3)
	data := completeData(8)
	full := BuildUniverse(pattern, data, 0, 1)
	capped := BuildUniverse(pattern, data, full.Len()-1, 1)
	if capped.Complete() {
		t.Fatal("capped below the class count must be incomplete")
	}
	if capped.Len() != 0 {
		t.Fatalf("incomplete universe should retain no matches, has %d", capped.Len())
	}
	exact := BuildUniverse(pattern, data, full.Len(), 1)
	if !exact.Complete() || exact.Len() != full.Len() {
		t.Fatalf("cap equal to the class count must stay complete: complete=%v len=%d want %d",
			exact.Complete(), exact.Len(), full.Len())
	}
}

// TestUniverseFilterIncompletePanics pins the documented contract that
// callers must check Complete before filtering: an incomplete universe
// holds no matches and silently returning nothing would masquerade as
// "no feasible allocation".
func TestUniverseFilterIncompletePanics(t *testing.T) {
	pattern := ringPattern(3)
	data := completeData(8)
	full := BuildUniverse(pattern, data, 0, 1)
	capped := BuildUniverse(pattern, data, full.Len()-1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Filter on an incomplete universe must panic")
		}
	}()
	capped.Filter(data.VertexBitset(), 0)
}

// TestUniverseFilterTruncationBoundary pins the cap semantics at the
// boundary: a cap equal to the surviving count returns everything with
// truncated=false; one below returns the exact prefix with
// truncated=true; and the truncation decision must account only for
// *surviving* representatives, not universe positions.
func TestUniverseFilterTruncationBoundary(t *testing.T) {
	pattern := ringPattern(3)
	data := completeData(9)
	u := BuildUniverse(pattern, data, 0, 1)
	free := []int{0, 2, 3, 5, 8}
	mask := data.InducedSubgraph(free).VertexBitset()
	all, truncated := u.Filter(mask, 0)
	if truncated {
		t.Fatal("unlimited filter cannot truncate")
	}
	if want := 5 * 4 * 3 / 6; len(all) != want {
		t.Fatalf("mask keeps %d classes, want %d", len(all), want)
	}
	n := len(all)
	for _, tc := range []struct {
		max       int
		wantLen   int
		wantTrunc bool
	}{
		{n + 1, n, false},
		{n, n, false},
		{n - 1, n - 1, true},
		{1, 1, true},
	} {
		idx, trunc := u.Filter(mask, tc.max)
		if trunc != tc.wantTrunc || len(idx) != tc.wantLen {
			t.Fatalf("max=%d: got %d classes truncated=%v, want %d truncated=%v",
				tc.max, len(idx), trunc, tc.wantLen, tc.wantTrunc)
		}
		for j := range idx {
			if idx[j] != all[j] {
				t.Fatalf("max=%d: capped filter is not a prefix at %d", tc.max, j)
			}
		}
	}
}

func TestUniverseParallelBuildIdentical(t *testing.T) {
	pattern := ringPattern(4)
	data := completeData(9)
	data.RemoveEdge(1, 6)
	seq := BuildUniverse(pattern, data, 0, 1)
	par := BuildUniverse(pattern, data, 0, 4)
	if seq.Len() != par.Len() {
		t.Fatalf("parallel build found %d classes, sequential %d", par.Len(), seq.Len())
	}
	for i := 0; i < seq.Len(); i++ {
		if seq.Key(i) != par.Key(i) {
			t.Fatalf("class %d: parallel key %q, sequential %q", i, par.Key(i), seq.Key(i))
		}
		if !seq.Set(i).Equal(par.Set(i)) {
			t.Fatalf("class %d: vertex bitsets differ", i)
		}
	}
}

func TestSearchesCounterAdvancesOnEnumerationOnly(t *testing.T) {
	pattern := ringPattern(3)
	data := completeData(6)
	before := Searches()
	FindAllDeduped(pattern, data)
	mid := Searches()
	if mid == before {
		t.Fatal("an enumeration must advance the Searches counter")
	}
	u := BuildUniverse(pattern, data, 0, 1)
	after := Searches()
	if after == mid {
		t.Fatal("building a universe enumerates and must advance the counter")
	}
	u.Filter(data.VertexBitset(), 0)
	if Searches() != after {
		t.Fatal("mask filtering must not enter the search")
	}
}

// TestFiltersCounterAdvancesOnFullScansOnly pins the Filters telemetry
// the live-view tests build on: Universe.Filter is a full-universe
// scan and counts; serving a live view's candidate list does not.
func TestFiltersCounterAdvancesOnFullScansOnly(t *testing.T) {
	pattern := ringPattern(3)
	data := completeData(6)
	u := BuildUniverse(pattern, data, 0, 1)
	before := Filters()
	u.Filter(data.VertexBitset(), 0)
	mid := Filters()
	if mid == before {
		t.Fatal("a mask filter must advance the Filters counter")
	}
	lv := NewLiveView(u, data.VertexBitset())
	lv.Allocate([]int{1})
	lv.Candidates(0)
	if Filters() != mid {
		t.Fatal("live-view maintenance and candidate serving must not scan the universe")
	}
}
