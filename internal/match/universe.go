package match

import (
	"sync/atomic"

	"mapa/internal/graph"
)

// filters counts every full-universe mask scan (Universe.Filter call) —
// the telemetry behind Filters().
var filters atomic.Uint64

// Filters returns the cumulative number of full-universe mask scans
// (Universe.Filter calls) this process has run. Together with
// Searches it lets tests prove a decision path's cost class: a
// live-view-served decision advances neither counter, a filter-served
// miss advances only Filters, and a cold search advances Searches.
func Filters() uint64 { return filters.Load() }

// Universe is the complete deduplicated enumeration of one pattern on
// one data graph — in MAPA's deployment, the idle-state enumeration of
// a job shape on the full machine. Each representative is stored with
// the bitset of data vertices it occupies, so the matches valid on any
// availability state (an induced subgraph over a free-vertex subset)
// can be derived by word-wise mask tests instead of a fresh search:
// an embedding survives exactly when its vertex set is a subset of the
// free set, because induced subgraphs preserve all edges among the
// surviving vertices.
//
// Filtering preserves the sequential enumeration order. An embedding's
// emission position is determined by its own assignment sequence alone
// (candidates ascend by data-vertex ID at every depth), so restricting
// the data graph to a subset deletes rows without reordering the rest —
// Filter over the idle-state universe reproduces FindAllDedupedCapped
// on the induced subgraph byte-for-byte, representatives included.
//
// A Universe is immutable after construction and safe for concurrent
// readers.
//
// Storage is arena-style: embeddings are immutable after build, so all
// embedding vertex lists live in one backing []int (fixed stride k =
// pattern size) and all per-embedding bitset words in one backing
// []uint64 (fixed stride wp = words per bitset). The per-universe heap
// object count is O(1) instead of O(candidates) — for the 59,640-class
// cluster universe this removes ~120k small objects from GC scan work
// — and Match/Set return subslices of the arenas without allocating.
type Universe struct {
	order    []int    // match order: the Pattern slice shared by all matches
	keys     []string // per-match canonical keys
	data     []int    // vertex-list arena: match i occupies [i*k, (i+1)*k)
	setWords []uint64 // bitset arena: match i occupies [i*wp, (i+1)*wp)
	n        int      // number of matches
	k        int      // pattern size: vertices per match
	wp       int      // words per bitset: (capacity+63)/64
	capacity int      // bitset capacity: max data-vertex ID + 1
	complete bool
}

// BuildUniverse enumerates every deduplicated embedding of pattern
// into data (in parallel when workers > 1; the output is identical).
// max bounds the enumeration: if more than max equivalence classes
// exist, the universe is marked incomplete and retains no matches —
// an incomplete universe cannot soundly answer mask filters, so
// callers must fall back to searching. max <= 0 means unlimited.
func BuildUniverse(pattern, data *graph.Graph, max, workers int) *Universe {
	u, _ := BuildUniverseStats(pattern, data, max, workers)
	return u
}

// BuildUniverseStats is BuildUniverse returning the parallel build's
// work-stealing dispatch accounting alongside the universe (nil when
// the build ran sequentially).
func BuildUniverseStats(pattern, data *graph.Graph, max, workers int) (*Universe, *BuildStats) {
	probe := 0
	if max > 0 {
		probe = max + 1 // one extra to detect truncation
	}
	var ms []Match
	var keys []string
	var bs *BuildStats
	if workers > 1 {
		ms, keys, bs = FindAllDedupedParallelKeysStats(pattern, data, workers, probe, true)
	} else {
		ms, keys = FindAllDedupedCappedKeys(pattern, data, probe)
	}
	return assembleUniverse(data, ms, keys, max), bs
}

// assembleUniverse packages an enumeration (probed one past max) into a
// Universe, marking it incomplete when the cap overflowed.
func assembleUniverse(data *graph.Graph, ms []Match, keys []string, max int) *Universe {
	capacity := graph.Capacity(data)
	if max > 0 && len(ms) > max {
		return &Universe{capacity: capacity, complete: false}
	}
	u := &Universe{
		keys:     keys,
		n:        len(ms),
		wp:       (capacity + 63) / 64,
		capacity: capacity,
		complete: true,
	}
	if len(ms) > 0 {
		u.order = ms[0].Pattern
		u.k = len(ms[0].Data)
	}
	u.data = make([]int, u.n*u.k)
	u.setWords = make([]uint64, u.n*u.wp)
	for i, m := range ms {
		copy(u.data[i*u.k:(i+1)*u.k], m.Data)
		b := graph.Bitset(u.setWords[i*u.wp : (i+1)*u.wp])
		for _, v := range m.Data {
			b.Set(v)
		}
	}
	return u
}

// Complete reports whether the universe holds every equivalence class.
// Only complete universes may serve mask filters.
func (u *Universe) Complete() bool { return u.complete }

// Len returns the number of stored representatives.
func (u *Universe) Len() int { return u.n }

// Capacity returns the bitset capacity the universe's per-match vertex
// sets were built with: the data graph's maximum vertex ID plus one
// (see graph.Capacity). LiveView sizes its posting lists with it.
func (u *Universe) Capacity() int { return u.capacity }

// Order returns the pattern's match order — the Pattern slice shared
// by every stored match. Read-only.
func (u *Universe) Order() []int { return u.order }

// Match returns representative i as a view into the arena. Its slices
// are shared (Pattern with every match, Data with the arena); clone
// before mutating or retaining with a different Pattern.
func (u *Universe) Match(i int) Match {
	return Match{Pattern: u.order, Data: u.data[i*u.k : (i+1)*u.k : (i+1)*u.k]}
}

// Key returns the canonical key (vertex set + used-edge set) of
// representative i.
func (u *Universe) Key(i int) string { return u.keys[i] }

// Set returns the data-vertex bitset of representative i as a view
// into the arena. Read-only.
func (u *Universe) Set(i int) graph.Bitset {
	return graph.Bitset(u.setWords[i*u.wp : (i+1)*u.wp : (i+1)*u.wp])
}

// Filter returns the indices of the representatives whose data
// vertices all lie in mask, in enumeration order, truncated to the
// first max (max <= 0: unlimited). truncated reports whether further
// surviving representatives exist beyond the cap. Filtering an
// incomplete universe panics — callers must check Complete first.
func (u *Universe) Filter(mask graph.Bitset, max int) (idx []int, truncated bool) {
	if !u.complete {
		panic("match: Filter on an incomplete universe")
	}
	filters.Add(1)
	for i := 0; i < u.n; i++ {
		if !u.Set(i).SubsetOf(mask) {
			continue
		}
		if max > 0 && len(idx) == max {
			return idx, true
		}
		idx = append(idx, i)
	}
	return idx, false
}

// FilterUsable is Filter against the intersection of two masks — the
// free set and the health mask — without materializing the combined
// bitset: a representative survives exactly when its vertices all lie
// in both. It answers the degraded-mode serving question (which
// idle-state embeddings avoid every unhealthy GPU on the current free
// set) in one scan and is byte-identical to Filter on the ANDed mask.
func (u *Universe) FilterUsable(free, healthy graph.Bitset, max int) (idx []int, truncated bool) {
	if !u.complete {
		panic("match: FilterUsable on an incomplete universe")
	}
	filters.Add(1)
	for i := 0; i < u.n; i++ {
		s := u.Set(i)
		if !s.SubsetOf(free) || !s.SubsetOf(healthy) {
			continue
		}
		if max > 0 && len(idx) == max {
			return idx, true
		}
		idx = append(idx, i)
	}
	return idx, false
}
