package mig

import (
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/topology"
)

func TestSplitNoSlicesIsIdentityShape(t *testing.T) {
	top := topology.DGXV100()
	vt, err := Split(top, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vt.NumGPUs() != 8 {
		t.Fatalf("virtual GPUs = %d", vt.NumGPUs())
	}
	for v := 0; v < 8; v++ {
		if vt.PhysicalOf[v] != v || vt.Fraction[v] != 1 {
			t.Fatalf("vertex %d: physical %d fraction %g", v, vt.PhysicalOf[v], vt.Fraction[v])
		}
	}
	// Links preserved.
	if vt.Link(0, 4) != topology.LinkNVLink2x2 {
		t.Errorf("link(0,4) = %s", vt.Link(0, 4))
	}
}

func TestSplitCreatesInstances(t *testing.T) {
	top := topology.DGXV100()
	vt, err := Split(top, map[int]int{0: 2, 3: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 8 physical - 2 split + 2 + 3 = 11 virtual.
	if vt.NumGPUs() != 11 {
		t.Fatalf("virtual GPUs = %d, want 11", vt.NumGPUs())
	}
	if err := vt.Validate(); err != nil {
		t.Fatal(err)
	}
	// GPU 0 -> virtual {0,1}, GPU 1 -> {2}, GPU 2 -> {3}, GPU 3 -> {4,5,6}.
	if got := vt.Instances(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("instances(0) = %v", got)
	}
	if got := vt.Instances(3); len(got) != 3 || got[0] != 4 {
		t.Fatalf("instances(3) = %v", got)
	}
	// Fractions.
	if vt.Fraction[0] != 0.5 || vt.Fraction[4] != 1.0/3 || vt.Fraction[2] != 1 {
		t.Fatalf("fractions = %v", vt.Fraction)
	}
	// Siblings ride the on-die path.
	if vt.Link(0, 1) != topology.LinkIntraGPU {
		t.Errorf("sibling link = %s", vt.Link(0, 1))
	}
	// Physical NVLink stays with instance 0: physical 0-3 was double
	// NVLink; virtual 0 (first of GPU 0) to virtual 4 (first of GPU 3).
	if vt.Link(0, 4) != topology.LinkNVLink2x2 {
		t.Errorf("inherited link = %s", vt.Link(0, 4))
	}
	// Non-first instances fall back to the host path externally.
	if vt.Link(1, 4) != topology.LinkPCIe {
		t.Errorf("secondary instance link = %s", vt.Link(1, 4))
	}
}

func TestSplitValidation(t *testing.T) {
	top := topology.DGXV100()
	if _, err := Split(top, map[int]int{42: 2}); err == nil {
		t.Error("unknown GPU should error")
	}
	if _, err := Split(top, map[int]int{0: 0}); err == nil {
		t.Error("zero instances should error")
	}
	if _, err := Split(top, map[int]int{0: 8}); err == nil {
		t.Error("8 instances exceeds the MIG limit")
	}
}

func TestSocketsInherited(t *testing.T) {
	top := topology.DGXV100()
	vt, err := Split(top, map[int]int{0: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Virtual 0 and 1 (physical 0) are in socket 0.
	if vt.SocketOf(0) != vt.SocketOf(1) {
		t.Error("siblings must share a socket")
	}
}

func TestCompatiblePredicate(t *testing.T) {
	top := topology.DGXV100()
	vt, err := Split(top, map[int]int{0: 4})
	if err != nil {
		t.Fatal(err)
	}
	whole := vt.Compatible(1.0)
	quarter := vt.Compatible(0.25)
	if whole(0, 0) { // virtual 0 is a quarter slice
		t.Error("quarter slice should not satisfy whole-GPU demand")
	}
	if !whole(0, 4) { // virtual 4 is the unsplit GPU 1
		t.Error("whole GPU should satisfy whole-GPU demand")
	}
	if !quarter(0, 0) {
		t.Error("quarter slice should satisfy quarter demand")
	}
}

func TestAllocateWholeGPUsAvoidsSlices(t *testing.T) {
	top := topology.DGXV100()
	vt, err := Split(top, map[int]int{0: 2, 1: 2})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := vt.Allocate(vt.Graph.Clone(), nil, Request{
		Pattern: appgraph.Ring(3), Sensitive: true, MinFraction: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range alloc.GPUs {
		if vt.Fraction[v] < 1 {
			t.Fatalf("whole-GPU job landed on slice %d (fraction %g)", v, vt.Fraction[v])
		}
	}
	if len(alloc.Physical) != 3 {
		t.Fatalf("physical devices = %v", alloc.Physical)
	}
}

func TestAllocateSlicesPackOntoOneDevice(t *testing.T) {
	// A 3-accelerator job content with quarter slices should exploit
	// the on-die links of a single split device — the many-to-one
	// mapping the paper describes.
	top := topology.DGXV100()
	vt, err := Split(top, map[int]int{0: 4})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := vt.Allocate(vt.Graph.Clone(), nil, Request{
		Pattern: appgraph.Ring(3), Sensitive: true, MinFraction: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Physical) != 1 || alloc.Physical[0] != 0 {
		t.Fatalf("expected the job to pack onto split GPU 0, got physical %v (virtual %v)",
			alloc.Physical, alloc.GPUs)
	}
}

func TestAllocateErrors(t *testing.T) {
	top := topology.Summit()
	vt, err := Split(top, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vt.Allocate(vt.Graph.Clone(), nil, Request{}); err == nil {
		t.Error("empty request should error")
	}
	if _, err := vt.Allocate(vt.Graph.Clone(), nil, Request{Pattern: appgraph.Ring(7)}); err == nil {
		t.Error("oversized request should error")
	}
	// Demand whole GPUs on a fully split machine: impossible.
	vt2, err := Split(top, map[int]int{0: 2, 1: 2, 2: 2, 3: 2, 4: 2, 5: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vt2.Allocate(vt2.Graph.Clone(), nil, Request{
		Pattern: appgraph.Ring(2), Sensitive: true, MinFraction: 1.0,
	}); err == nil {
		t.Error("whole-GPU demand on fully split machine should error")
	}
}

func TestInsensitiveAllocatePreserves(t *testing.T) {
	top := topology.DGXV100()
	vt, err := Split(top, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := vt.Allocate(vt.Graph.Clone(), nil, Request{
		Pattern: appgraph.Ring(3), Sensitive: false, MinFraction: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Scores.PreservedBW <= 0 {
		t.Fatalf("preserved BW = %g", alloc.Scores.PreservedBW)
	}
}
