package mig

import (
	"reflect"
	"testing"

	"mapa/internal/topology"
)

// TestComposeMatchesSplitOnContiguousIDs: Compose with Split's own
// contiguous numbering must reproduce Split exactly — same graphs,
// same maps, same sockets.
func TestComposeMatchesSplitOnContiguousIDs(t *testing.T) {
	top := topology.DGXV100()
	slices := map[int]int{1: 2, 6: 3}
	want, err := Split(top, slices)
	if err != nil {
		t.Fatal(err)
	}
	instances := make(map[int][]int)
	for v, p := range want.PhysicalOf {
		instances[p] = append(instances[p], v)
	}
	got, err := Compose(top, instances)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.PhysicalOf, want.PhysicalOf) || !reflect.DeepEqual(got.Fraction, want.Fraction) {
		t.Fatal("Compose on Split's numbering diverged in PhysicalOf/Fraction")
	}
	if !reflect.DeepEqual(got.Sockets, want.Sockets) {
		t.Fatalf("sockets: Compose %v, Split %v", got.Sockets, want.Sockets)
	}
	for _, e := range want.Graph.Edges() {
		ge, ok := got.Graph.EdgeBetween(e.U, e.V)
		if !ok || ge.Weight != e.Weight || ge.Label != e.Label {
			t.Fatalf("edge (%d,%d): Compose %+v ok=%v, Split %+v", e.U, e.V, ge, ok, e)
		}
	}
	if got.Graph.NumEdges() != want.Graph.NumEdges() {
		t.Fatalf("edge count: Compose %d, Split %d", got.Graph.NumEdges(), want.Graph.NumEdges())
	}
}

// TestComposePinsIDs is the property live repartitioning rides on:
// unchanged physical GPUs keep their exact virtual IDs (and NVLink
// attachment) no matter what IDs the re-cut GPUs take.
func TestComposePinsIDs(t *testing.T) {
	top := topology.DGXV100()
	instances := map[int][]int{
		0: {0}, 1: {1}, 2: {2}, 3: {3}, 4: {4}, 5: {5}, 6: {6},
		7: {100, 42, 77}, // re-cut GPU takes fresh, unordered IDs
	}
	vt, err := Compose(top, instances)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 7; v++ {
		if vt.PhysicalOf[v] != v || vt.Fraction[v] != 1 {
			t.Fatalf("unchanged GPU %d: physical %d fraction %g", v, vt.PhysicalOf[v], vt.Fraction[v])
		}
	}
	if got := vt.Instances(7); !reflect.DeepEqual(got, []int{42, 77, 100}) {
		t.Fatalf("Instances(7) = %v, want ascending {42,77,100}", got)
	}
	// NVLink ports follow the lowest ID; siblings ride the on-die path;
	// the others fall back to PCIe.
	if vt.Link(6, 42) == topology.LinkPCIe {
		t.Fatalf("lowest instance lost GPU 7's NVLink: link(6,42) = %s", vt.Link(6, 42))
	}
	if got := vt.Link(42, 77); got != topology.LinkIntraGPU {
		t.Fatalf("sibling link = %s, want intra-GPU", got)
	}
	if got := vt.Link(6, 100); got != topology.LinkPCIe {
		t.Fatalf("non-first instance link = %s, want PCIe", got)
	}
}

// TestComposeValidation: missing GPUs, over-split GPUs, duplicate and
// negative IDs are all rejected.
func TestComposeValidation(t *testing.T) {
	top := topology.DGXV100()
	whole := func() map[int][]int {
		m := make(map[int][]int)
		for g := 0; g < 8; g++ {
			m[g] = []int{g}
		}
		return m
	}
	cases := map[string]map[int][]int{
		"unknown physical GPU": func() map[int][]int { m := whole(); m[99] = []int{99}; return m }(),
		"missing instances":    func() map[int][]int { m := whole(); delete(m, 3); return m }(),
		"over MaxInstances":    func() map[int][]int { m := whole(); m[0] = []int{0, 8, 9, 10, 11, 12, 13, 14}; return m }(),
		"duplicate virtual ID": func() map[int][]int { m := whole(); m[1] = []int{2}; return m }(),
		"negative virtual ID":  func() map[int][]int { m := whole(); m[1] = []int{-1}; return m }(),
	}
	for name, instances := range cases {
		if _, err := Compose(top, instances); err == nil {
			t.Errorf("%s: Compose accepted invalid numbering", name)
		}
	}
}

// TestInstancesIndex: the per-struct index serves every physical GPU
// directly and unknown GPUs return nil.
func TestInstancesIndex(t *testing.T) {
	top := topology.DGXV100()
	vt, err := Split(top, map[int]int{2: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, p := range top.GPUs() {
		vs := vt.Instances(p)
		want := 1
		if p == 2 {
			want = 4
		}
		if len(vs) != want {
			t.Fatalf("Instances(%d) = %v, want %d instances", p, vs, want)
		}
		for i, v := range vs {
			if vt.PhysicalOf[v] != p {
				t.Fatalf("Instances(%d)[%d] = %d maps back to %d", p, i, v, vt.PhysicalOf[v])
			}
			if i > 0 && vs[i-1] >= v {
				t.Fatalf("Instances(%d) not ascending: %v", p, vs)
			}
		}
		seen += len(vs)
	}
	if seen != vt.NumGPUs() {
		t.Fatalf("index covers %d instances, machine has %d", seen, vt.NumGPUs())
	}
	if vt.Instances(123) != nil {
		t.Fatal("Instances of an unknown physical GPU must be nil")
	}
}
