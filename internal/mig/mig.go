// Package mig implements the virtualized-accelerator extension the
// paper sketches (Sec. 3.2/3.3): NVIDIA Multi-Instance GPU partitions
// one physical GPU into up to seven isolated instances, so jobs map
// many-to-one onto hardware. Following the paper's proposal, virtual
// GPUs become separate vertices of the hardware graph, vertices are
// labeled with the fraction of physical resources they carry, and
// allocation uses label-aware pattern matching (a job may demand a
// minimum compute fraction per accelerator).
//
// Link model for a split GPU (conservative, interference-aware per the
// paper's note): sibling instances communicate over the on-die path
// (LinkIntraGPU); the physical GPU's NVLink ports remain attached to
// its first instance; the remaining instances reach other devices over
// the PCIe/host path.
package mig

import (
	"fmt"
	"sort"

	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// MaxInstances is the MIG hardware limit per physical GPU.
const MaxInstances = 7

// VirtualTopology is a machine whose physical GPUs may be split into
// MIG instances.
type VirtualTopology struct {
	// Topology is the virtual machine: one vertex per instance.
	*topology.Topology
	// PhysicalOf maps virtual GPU ID to its physical GPU ID.
	PhysicalOf map[int]int
	// Fraction maps virtual GPU ID to its share of the physical
	// device's compute resources (1.0 for unsplit GPUs).
	Fraction map[int]float64
	// byPhysical is the inverse index of PhysicalOf: physical GPU ->
	// its virtual instance IDs in ascending order, built once at
	// construction and served directly by Instances.
	byPhysical map[int][]int
}

// Split partitions the given physical GPUs into MIG instances.
// slices maps physical GPU ID to instance count (1..MaxInstances);
// GPUs not listed remain whole. Virtual IDs are assigned contiguously
// in ascending physical-GPU order, so an unsplit machine keeps its
// numbering.
func Split(top *topology.Topology, slices map[int]int) (*VirtualTopology, error) {
	for g, n := range slices {
		if !top.Graph.HasVertex(g) {
			return nil, fmt.Errorf("mig: physical GPU %d not in topology %s", g, top.Name)
		}
		if n < 1 || n > MaxInstances {
			return nil, fmt.Errorf("mig: GPU %d split into %d instances; MIG supports 1..%d", g, n, MaxInstances)
		}
	}

	instances := make(map[int][]int) // physical -> all virtual ids
	next := 0
	for _, g := range top.GPUs() {
		n := slices[g]
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			instances[g] = append(instances[g], next)
			next++
		}
	}
	return Compose(top, instances)
}

// Compose builds the virtual machine for an explicit instance
// numbering: instances maps every physical GPU of base to the virtual
// IDs it hosts (1..MaxInstances each, globally unique, any
// non-negative values). Where Split renumbers the whole machine
// contiguously, Compose lets the caller pin virtual IDs — the
// primitive behind live repartitioning, where instances of unchanged
// physical GPUs must keep their IDs so leases, health marks, and
// availability streams survive the topology swap, and only the re-cut
// GPUs take fresh IDs.
//
// The link model matches Split: sibling instances communicate over the
// on-die path, each physical GPU's NVLink ports attach to its
// lowest-ID instance, everything else reaches other devices over the
// PCIe/host fallback, and instances inherit their physical GPU's
// socket.
func Compose(base *topology.Topology, instances map[int][]int) (*VirtualTopology, error) {
	physical := base.GPUs()
	for g := range instances {
		if !base.Graph.HasVertex(g) {
			return nil, fmt.Errorf("mig: physical GPU %d not in topology %s", g, base.Name)
		}
	}
	physOf := make(map[int]int)
	fraction := make(map[int]float64)
	firstInstance := make(map[int]int) // physical -> lowest virtual id
	byPhysical := make(map[int][]int)
	var all []int
	for _, g := range physical {
		vs, ok := instances[g]
		if !ok || len(vs) == 0 {
			return nil, fmt.Errorf("mig: physical GPU %d has no instances", g)
		}
		if len(vs) > MaxInstances {
			return nil, fmt.Errorf("mig: GPU %d split into %d instances; MIG supports 1..%d", g, len(vs), MaxInstances)
		}
		sorted := append([]int(nil), vs...)
		sort.Ints(sorted)
		for _, v := range sorted {
			if v < 0 {
				return nil, fmt.Errorf("mig: negative virtual GPU ID %d on physical GPU %d", v, g)
			}
			if _, dup := physOf[v]; dup {
				return nil, fmt.Errorf("mig: virtual GPU ID %d assigned twice", v)
			}
			physOf[v] = g
			fraction[v] = 1 / float64(len(sorted))
		}
		firstInstance[g] = sorted[0]
		byPhysical[g] = sorted
		all = append(all, sorted...)
	}
	sort.Ints(all)

	phys := graph.New()
	for _, v := range all {
		phys.AddVertex(v)
	}
	// Sibling instances: on-die path.
	for _, vs := range byPhysical {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				phys.MustAddEdge(vs[i], vs[j], topology.LinkIntraGPU.Bandwidth(), int(topology.LinkIntraGPU))
			}
		}
	}
	// Physical NVLink ports stay with the lowest-ID instance of each
	// device.
	for _, e := range base.Physical.Edges() {
		phys.MustAddEdge(firstInstance[e.U], firstInstance[e.V], e.Weight, e.Label)
	}
	// Complete the hardware graph with the PCIe/host fallback.
	full := phys.Clone()
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if !full.HasEdge(all[i], all[j]) {
				full.MustAddEdge(all[i], all[j], topology.LinkPCIe.Bandwidth(), int(topology.LinkPCIe))
			}
		}
	}

	// Sockets: instances inherit their physical GPU's socket.
	var sockets [][]int
	for _, s := range base.SortedSockets() {
		var vs []int
		for _, g := range s {
			vs = append(vs, byPhysical[g]...)
		}
		sort.Ints(vs)
		sockets = append(sockets, vs)
	}

	vt := &VirtualTopology{
		Topology: &topology.Topology{
			Name:     base.Name + "+MIG",
			Graph:    full,
			Physical: phys,
			Sockets:  sockets,
		},
		PhysicalOf: physOf,
		Fraction:   fraction,
		byPhysical: byPhysical,
	}
	if err := vt.Validate(); err != nil {
		return nil, err
	}
	return vt, nil
}

// Instances returns the virtual IDs hosted by the physical GPU, in
// ascending order — served directly from the index built at
// construction. The slice is read-only; callers must not mutate it.
func (vt *VirtualTopology) Instances(physical int) []int {
	return vt.byPhysical[physical]
}

// Compatible returns the label-aware matching predicate for a job that
// needs at least minFraction of a physical GPU per requested
// accelerator.
func (vt *VirtualTopology) Compatible(minFraction float64) match.Compatible {
	return func(_, dataVertex int) bool {
		return vt.Fraction[dataVertex] >= minFraction-1e-12
	}
}

// Request is a MIG-aware allocation request.
type Request struct {
	// Pattern is the application communication graph.
	Pattern *graph.Graph
	// Sensitive is the bandwidth-sensitivity annotation.
	Sensitive bool
	// MinFraction is the minimum compute fraction each accelerator
	// must provide (0 accepts any slice; 1 demands whole GPUs).
	MinFraction float64
}

// Allocation is a MIG-aware decision.
type Allocation struct {
	// GPUs are virtual IDs.
	GPUs []int
	// Physical are the distinct physical devices touched.
	Physical []int
	Scores   score.Scores
}

// Allocate runs the Preserve selection (Algorithm 1) over
// label-compatible matches on the available virtual graph: sensitive
// jobs maximize predicted effective bandwidth, insensitive jobs
// maximize preserved bandwidth. avail must be an induced subgraph of
// the virtual hardware graph. A nil scorer trains/defaults as
// score.NewScorer does.
func (vt *VirtualTopology) Allocate(avail *graph.Graph, s *score.Scorer, req Request) (Allocation, error) {
	if req.Pattern == nil || req.Pattern.NumVertices() < 1 {
		return Allocation{}, fmt.Errorf("mig: empty request")
	}
	if req.Pattern.NumVertices() > avail.NumVertices() {
		return Allocation{}, fmt.Errorf("mig: %d accelerators requested, %d available", req.Pattern.NumVertices(), avail.NumVertices())
	}
	if s == nil {
		s = score.NewScorer(effbw.PaperModel())
	}
	seen := make(map[string]bool)
	var best Allocation
	found := false
	better := func(a, b score.Scores) bool {
		if req.Sensitive {
			if b.EffBW != a.EffBW {
				return b.EffBW > a.EffBW
			}
			return b.PreservedBW > a.PreservedBW
		}
		if b.PreservedBW != a.PreservedBW {
			return b.PreservedBW > a.PreservedBW
		}
		return b.EffBW > a.EffBW
	}
	match.EnumerateLabeled(req.Pattern, avail, vt.Compatible(req.MinFraction), func(m match.Match) bool {
		key := m.Key(req.Pattern, avail)
		if seen[key] {
			return true
		}
		seen[key] = true
		sc := s.Score(vt.Topology, req.Pattern, avail, m)
		if !found || better(best.Scores, sc) {
			physSet := make(map[int]bool)
			for _, v := range m.DataVertices() {
				physSet[vt.PhysicalOf[v]] = true
			}
			phys := make([]int, 0, len(physSet))
			for p := range physSet {
				phys = append(phys, p)
			}
			sort.Ints(phys)
			best = Allocation{GPUs: m.DataVertices(), Physical: phys, Scores: sc}
			found = true
		}
		return true
	})
	if !found {
		return Allocation{}, fmt.Errorf("mig: no allocation satisfies min fraction %.2f", req.MinFraction)
	}
	return best, nil
}
