package matchcache

import (
	"fmt"
	"sync"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/match"
	"mapa/internal/score"
	"mapa/internal/topology"
)

func TestKeyDistinguishesPatternAndMask(t *testing.T) {
	top := topology.DGXV100()
	ring := appgraph.Ring(3)
	chain := appgraph.Chain(3)
	full := top.Graph
	partial := top.Graph.Without([]int{1, 6})

	keys := map[string]bool{
		Key(ring, full):     true,
		Key(ring, partial):  true,
		Key(chain, full):    true,
		Key(chain, partial): true,
	}
	if len(keys) != 4 {
		t.Fatalf("expected 4 distinct keys, got %d", len(keys))
	}
	if Key(ring, full) != Key(appgraph.Ring(3), top.Graph.Clone()) {
		t.Fatal("same pattern and availability must produce the same key")
	}
}

func TestKeyReflectsAllocateAndFree(t *testing.T) {
	top := topology.DGXV100()
	ring := appgraph.Ring(3)
	avail := top.Graph.Clone()
	idle := Key(ring, avail)

	// Allocate GPUs 0 and 3: the mask rotates, so the key must change —
	// this is the cache's invalidation-by-construction on allocate.
	busy := avail.Without([]int{0, 3})
	if Key(ring, busy) == idle {
		t.Fatal("allocation did not rotate the cache key")
	}
	// Free them again: the key returns to the idle-state key, so prior
	// enumerations for this state are reusable, not stale.
	restored := top.Graph.InducedSubgraph(top.Graph.Vertices())
	if Key(ring, restored) != idle {
		t.Fatal("freeing all GPUs must restore the idle-state key")
	}
}

func TestCacheHitReturnsSameEntry(t *testing.T) {
	top := topology.DGXV100()
	c := New(top, 0)
	ring := appgraph.Ring(3)
	key := Key(ring, top.Graph)

	if _, ok := c.Get(key); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	ent := c.Put(key, NewEntry(match.FindAllDedupedCappedKeys(ring, top.Graph, 0)))
	got, ok := c.Get(key)
	if !ok || got != ent {
		t.Fatal("Get after Put must return the stored entry")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestPutKeepsFirstEntry(t *testing.T) {
	top := topology.DGXV100()
	c := New(top, 0)
	ring := appgraph.Ring(3)
	key := Key(ring, top.Graph)
	first := c.Put(key, NewEntry(nil, nil))
	second := c.Put(key, NewEntry(nil, nil))
	if first != second {
		t.Fatal("second Put must return the canonical first entry")
	}
}

func TestLRUEviction(t *testing.T) {
	top := topology.DGXV100()
	c := New(top, 2)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), NewEntry(nil, nil))
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	for _, k := range []string{"k1", "k2"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %s should have survived", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
	// Touching k1 makes k2 the LRU victim.
	c.Put("k3", NewEntry(nil, nil))
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 was the LRU entry and should have been evicted")
	}
}

func TestClear(t *testing.T) {
	c := New(topology.DGXV100(), 0)
	c.Put("k", NewEntry(nil, nil))
	c.Clear()
	if _, ok := c.Get("k"); ok {
		t.Fatal("Clear left an entry behind")
	}
}

func TestBound(t *testing.T) {
	top := topology.DGXV100()
	c := New(top, 0)
	if !c.Bound(top) {
		t.Fatal("cache not bound to its own topology")
	}
	if c.Bound(topology.DGXV100()) {
		t.Fatal("cache bound to a different topology value")
	}
	var nilCache *Cache
	if nilCache.Bound(top) {
		t.Fatal("nil cache reported bound")
	}
}

func TestEntryScoresComputedOnceAndConcurrently(t *testing.T) {
	top := topology.DGXV100()
	ring := appgraph.Ring(3)
	ent := NewEntry(match.FindAllDedupedCappedKeys(ring, top.Graph, 0))
	scorer := score.NewScorer(nil)

	var calls sync.Map
	var wg sync.WaitGroup
	results := make([][]score.Scores, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = ent.Scores(scorer, 2, func(i int, m match.Match) score.Scores {
				calls.Store(fmt.Sprintf("%d-%d", g, i), true)
				return scorer.Score(top, ring, top.Graph, m)
			})
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		if &results[g][0] != &results[0][0] {
			t.Fatal("concurrent Scores calls returned different slices")
		}
	}
	n := 0
	calls.Range(func(_, _ any) bool { n++; return true })
	if n != ent.Len() {
		t.Fatalf("compute invoked %d times, want exactly %d (one goroutine fills)", n, ent.Len())
	}
}

func TestEntryScoresRecomputedForDifferentScorer(t *testing.T) {
	top := topology.DGXV100()
	ring := appgraph.Ring(3)
	ent := NewEntry(match.FindAllDedupedCappedKeys(ring, top.Graph, 0))
	scorerA, scorerB := score.NewScorer(nil), score.NewScorer(nil)

	countWith := func(s *score.Scorer) int {
		calls := 0
		ent.Scores(s, 1, func(_ int, m match.Match) score.Scores {
			calls++
			return s.Score(top, ring, top.Graph, m)
		})
		return calls
	}
	if got := countWith(scorerA); got != ent.Len() {
		t.Fatalf("first scorer computed %d scores, want %d", got, ent.Len())
	}
	if got := countWith(scorerA); got != 0 {
		t.Fatalf("same scorer recomputed %d scores, want cached", got)
	}
	if got := countWith(scorerB); got != ent.Len() {
		t.Fatalf("different scorer reused stale scores (computed %d, want %d)", got, ent.Len())
	}
}

func TestEntryGPUSetsMatchMatches(t *testing.T) {
	top := topology.DGXV100()
	ring := appgraph.Ring(4)
	ms, keys := match.FindAllDedupedCappedKeys(ring, top.Graph, 0)
	ent := NewEntry(ms, keys)
	for i := range ms {
		if ent.Key(i) != keys[i] {
			t.Fatalf("Key(%d)=%q want %q", i, ent.Key(i), keys[i])
		}
	}
	if ent.Len() != len(ms) {
		t.Fatalf("Len=%d want %d", ent.Len(), len(ms))
	}
	for i, m := range ent.Matches() {
		want := m.DataVertices()
		got := ent.GPUs(i)
		if len(got) != len(want) {
			t.Fatalf("GPUs(%d)=%v want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("GPUs(%d)=%v want %v", i, got, want)
			}
		}
	}
}

func TestConcurrentGetPut(t *testing.T) {
	top := topology.DGXV100()
	c := New(top, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				if _, ok := c.Get(key); !ok {
					c.Put(key, NewEntry(nil, nil))
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries > 8 {
		t.Fatalf("capacity exceeded: %+v", st)
	}
}
