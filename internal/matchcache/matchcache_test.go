package matchcache

import (
	"fmt"
	"sync"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/score"
	"mapa/internal/topology"
)

func TestKeyDistinguishesPatternAndMask(t *testing.T) {
	top := topology.DGXV100()
	ring := appgraph.Ring(3)
	chain := appgraph.Chain(3)
	full := top.Graph
	partial := top.Graph.Without([]int{1, 6})

	keys := map[string]bool{
		Key(ring, full):     true,
		Key(ring, partial):  true,
		Key(chain, full):    true,
		Key(chain, partial): true,
	}
	if len(keys) != 4 {
		t.Fatalf("expected 4 distinct keys, got %d", len(keys))
	}
	if Key(ring, full) != Key(appgraph.Ring(3), top.Graph.Clone()) {
		t.Fatal("same pattern and availability must produce the same key")
	}
}

func TestKeyReflectsAllocateAndFree(t *testing.T) {
	top := topology.DGXV100()
	ring := appgraph.Ring(3)
	avail := top.Graph.Clone()
	idle := Key(ring, avail)

	// Allocate GPUs 0 and 3: the mask rotates, so the key must change —
	// this is the cache's invalidation-by-construction on allocate.
	busy := avail.Without([]int{0, 3})
	if Key(ring, busy) == idle {
		t.Fatal("allocation did not rotate the cache key")
	}
	// Free them again: the key returns to the idle-state key, so prior
	// enumerations for this state are reusable, not stale.
	restored := top.Graph.InducedSubgraph(top.Graph.Vertices())
	if Key(ring, restored) != idle {
		t.Fatal("freeing all GPUs must restore the idle-state key")
	}
}

func TestCacheHitReturnsSameEntry(t *testing.T) {
	top := topology.DGXV100()
	c := New(top, 0)
	ring := appgraph.Ring(3)

	if _, _, ok := c.GetFor(ring, top.Graph); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	ent, _ := c.PutFor(ring, top.Graph, NewEntry(match.FindAllDedupedCappedKeys(ring, top.Graph, 0)))
	got, order, ok := c.GetFor(ring, top.Graph)
	if !ok || got != ent {
		t.Fatal("GetFor after PutFor must return the stored entry")
	}
	if order != nil {
		t.Fatal("structurally identical request needs no order remap")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Shards != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry, 1 shard", st)
	}
}

func TestPutKeepsFirstEntry(t *testing.T) {
	top := topology.DGXV100()
	c := New(top, 0)
	ring := appgraph.Ring(3)
	first, _ := c.PutFor(ring, top.Graph, NewEntry(nil, nil))
	second, _ := c.PutFor(ring, top.Graph, NewEntry(nil, nil))
	if first != second {
		t.Fatal("second PutFor must return the canonical first entry")
	}
}

// avState returns the availability graph with the given GPUs busy.
func avState(top *topology.Topology, busy ...int) *graph.Graph {
	return top.Graph.Without(busy)
}

func TestLRUEvictionWithinShard(t *testing.T) {
	top := topology.DGXV100()
	c := New(top, 2)
	ring := appgraph.Ring(3)
	states := []*graph.Graph{avState(top, 0), avState(top, 1), avState(top, 2)}
	for _, av := range states {
		c.PutFor(ring, av, NewEntry(nil, nil))
	}
	if _, _, ok := c.GetFor(ring, states[0]); ok {
		t.Fatal("oldest state should have been evicted")
	}
	for i := 1; i < 3; i++ {
		if _, _, ok := c.GetFor(ring, states[i]); !ok {
			t.Fatalf("state %d should have survived", i)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
	// Touching state 1 above made state 2 the LRU victim.
	c.PutFor(ring, avState(top, 3), NewEntry(nil, nil))
	if _, _, ok := c.GetFor(ring, states[1]); ok {
		t.Fatal("the LRU state should have been evicted")
	}
}

// TestShardingIsolatesEviction is the sharding contract: churning
// availability states for one shape past its shard capacity must not
// evict another shape's entries.
func TestShardingIsolatesEviction(t *testing.T) {
	top := topology.DGXV100()
	c := New(top, 2)
	ring := appgraph.Ring(3)
	chain := appgraph.Chain(4)
	chainState := avState(top, 7)
	c.PutFor(chain, chainState, NewEntry(nil, nil))
	for i := 0; i < 6; i++ {
		c.PutFor(ring, avState(top, i), NewEntry(nil, nil))
	}
	if _, _, ok := c.GetFor(chain, chainState); !ok {
		t.Fatal("mask churn on Ring evicted a Chain entry across shards")
	}
	st := c.Stats()
	if st.Shards != 2 {
		t.Fatalf("want 2 shards, got %+v", st)
	}
	if st.Evictions != 4 {
		t.Fatalf("want 4 evictions inside the ring shard, got %+v", st)
	}
}

// TestCanonicalKeysShareEntriesAcrossIsomorphicBuilds: two structurally
// different builds of the 4-ring must land in one shard and share
// entries, with the second build's lookups remapped into its own
// vertex IDs.
func TestCanonicalKeysShareEntriesAcrossIsomorphicBuilds(t *testing.T) {
	top := topology.DGXV100()
	c := New(top, 0)
	ringA := appgraph.Ring(4) // 0-1-2-3-0
	ringB := graph.New()      // 0-2-1-3-0: isomorphic, different edges
	ringB.MustAddEdge(0, 2, 1, 0)
	ringB.MustAddEdge(2, 1, 1, 0)
	ringB.MustAddEdge(1, 3, 1, 0)
	ringB.MustAddEdge(3, 0, 1, 0)

	ent, _ := c.PutFor(ringA, top.Graph, NewEntry(match.FindAllDedupedCappedKeys(ringA, top.Graph, 0)))
	got, order, ok := c.GetFor(ringB, top.Graph)
	if !ok {
		t.Fatal("isomorphic build must hit the shared entry")
	}
	if got != ent {
		t.Fatal("isomorphic build must share the same entry value")
	}
	if order == nil {
		t.Fatal("structurally different build needs an order remap")
	}
	// The remapped order must make every stored match a valid embedding
	// of ringB.
	for _, m := range got.Matches() {
		rm := match.Match{Pattern: order, Data: m.Data}
		if !match.IsEmbedding(ringB, top.Graph, rm) {
			t.Fatalf("remapped match %v->%v is not an embedding of the second build", rm.Pattern, rm.Data)
		}
	}
	if st := c.Stats(); st.Shards != 1 {
		t.Fatalf("isomorphic builds must share a shard, got %+v", st)
	}
}

func TestClear(t *testing.T) {
	top := topology.DGXV100()
	c := New(top, 0)
	ring := appgraph.Ring(3)
	c.PutFor(ring, top.Graph, NewEntry(nil, nil))
	c.Clear()
	if _, _, ok := c.GetFor(ring, top.Graph); ok {
		t.Fatal("Clear left an entry behind")
	}
}

func TestBound(t *testing.T) {
	top := topology.DGXV100()
	c := New(top, 0)
	if !c.Bound(top) {
		t.Fatal("cache not bound to its own topology")
	}
	if c.Bound(topology.DGXV100()) {
		t.Fatal("cache bound to a different topology value")
	}
	var nilCache *Cache
	if nilCache.Bound(top) {
		t.Fatal("nil cache reported bound")
	}
}

func TestEntryScoresComputedOnceAndConcurrently(t *testing.T) {
	top := topology.DGXV100()
	ring := appgraph.Ring(3)
	ent := NewEntry(match.FindAllDedupedCappedKeys(ring, top.Graph, 0))
	scorer := score.NewScorer(nil)

	var calls sync.Map
	var wg sync.WaitGroup
	results := make([][]score.Scores, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = ent.Scores(scorer, 2, func(i int, m match.Match) score.Scores {
				calls.Store(fmt.Sprintf("%d-%d", g, i), true)
				return scorer.Score(top, ring, top.Graph, m)
			})
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		if &results[g][0] != &results[0][0] {
			t.Fatal("concurrent Scores calls returned different slices")
		}
	}
	n := 0
	calls.Range(func(_, _ any) bool { n++; return true })
	if n != ent.Len() {
		t.Fatalf("compute invoked %d times, want exactly %d (one goroutine fills)", n, ent.Len())
	}
}

func TestEntryScoresRecomputedForDifferentScorer(t *testing.T) {
	top := topology.DGXV100()
	ring := appgraph.Ring(3)
	ent := NewEntry(match.FindAllDedupedCappedKeys(ring, top.Graph, 0))
	scorerA, scorerB := score.NewScorer(nil), score.NewScorer(nil)

	countWith := func(s *score.Scorer) int {
		calls := 0
		ent.Scores(s, 1, func(_ int, m match.Match) score.Scores {
			calls++
			return s.Score(top, ring, top.Graph, m)
		})
		return calls
	}
	if got := countWith(scorerA); got != ent.Len() {
		t.Fatalf("first scorer computed %d scores, want %d", got, ent.Len())
	}
	if got := countWith(scorerA); got != 0 {
		t.Fatalf("same scorer recomputed %d scores, want cached", got)
	}
	if got := countWith(scorerB); got != ent.Len() {
		t.Fatalf("different scorer reused stale scores (computed %d, want %d)", got, ent.Len())
	}
}

func TestEntryGPUSetsMatchMatches(t *testing.T) {
	top := topology.DGXV100()
	ring := appgraph.Ring(4)
	ms, keys := match.FindAllDedupedCappedKeys(ring, top.Graph, 0)
	ent := NewEntry(ms, keys)
	for i := range ms {
		if ent.Key(i) != keys[i] {
			t.Fatalf("Key(%d)=%q want %q", i, ent.Key(i), keys[i])
		}
	}
	if ent.Len() != len(ms) {
		t.Fatalf("Len=%d want %d", ent.Len(), len(ms))
	}
	for i, m := range ent.Matches() {
		want := m.DataVertices()
		got := ent.GPUs(i)
		if len(got) != len(want) {
			t.Fatalf("GPUs(%d)=%v want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("GPUs(%d)=%v want %v", i, got, want)
			}
		}
	}
}

func TestConcurrentGetPut(t *testing.T) {
	top := topology.DGXV100()
	c := New(top, 8)
	ring := appgraph.Ring(3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				av := avState(top, i%7)
				if _, _, ok := c.GetFor(ring, av); !ok {
					c.PutFor(ring, av, NewEntry(nil, nil))
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries > 8 {
		t.Fatalf("capacity exceeded: %+v", st)
	}
}
