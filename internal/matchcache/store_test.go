package matchcache

import (
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/topology"
)

// ring0213 is a 4-ring assembled in a different vertex order than
// appgraph.Ring(4): isomorphic but structurally different.
func ring0213() *graph.Graph {
	g := graph.New()
	g.MustAddEdge(0, 2, 1, 0)
	g.MustAddEdge(2, 1, 1, 0)
	g.MustAddEdge(1, 3, 1, 0)
	g.MustAddEdge(3, 0, 1, 0)
	return g
}

// TestFilteredEntryMatchesSequentialEnumeration is the tier-1
// soundness contract: for any availability state and candidate cap,
// the filter-derived entry must be byte-identical to a fresh capped
// sequential enumeration on the induced subgraph.
func TestFilteredEntryMatchesSequentialEnumeration(t *testing.T) {
	top := topology.DGXV100()
	s := NewStore(top, 0)
	pattern := appgraph.Ring(3)
	states := [][]int{nil, {0}, {1, 6}, {0, 2, 4}, {1, 3, 5, 7}, {0, 1, 2, 3, 4}}
	for _, busy := range states {
		avail := top.Graph.Without(busy)
		for _, cap := range []int{0, 5} {
			ent, order, ok := s.FilteredEntry(pattern, avail, cap, 1)
			if !ok {
				t.Fatalf("busy=%v cap=%d: store declined a complete universe", busy, cap)
			}
			if order != nil {
				t.Fatalf("busy=%v: identical shape needs no remap", busy)
			}
			wantMs, wantKeys := match.FindAllDedupedCappedKeys(pattern, avail, cap)
			if ent.Len() != len(wantMs) {
				t.Fatalf("busy=%v cap=%d: filtered %d candidates, sequential %d", busy, cap, ent.Len(), len(wantMs))
			}
			for i := range wantMs {
				if ent.Key(i) != wantKeys[i] {
					t.Fatalf("busy=%v cap=%d cand %d: key %q want %q", busy, cap, i, ent.Key(i), wantKeys[i])
				}
			}
		}
	}
	if st := s.Stats(); st.Universes != 1 {
		t.Fatalf("one shape must build exactly one universe, stats %+v", st)
	}
}

// TestWarmedShapeFiltersWithoutSearching is the zero-search proof: for
// a warmed shape, a previously-unseen availability state is served by
// mask filtering with zero calls into the subgraph-isomorphism search.
func TestWarmedShapeFiltersWithoutSearching(t *testing.T) {
	top := topology.DGXV100()
	s := NewStore(top, 0)
	pattern := appgraph.Ring(4)
	if n := s.Warm(1, pattern); n != 1 {
		t.Fatalf("Warm built %d universes, want 1", n)
	}
	before := match.Searches()
	for _, busy := range [][]int{{0}, {3, 5}, {1, 2, 6}} {
		avail := top.Graph.Without(busy)
		ent, _, ok := s.FilteredEntry(pattern, avail, 0, 1)
		if !ok || ent.Len() == 0 {
			t.Fatalf("busy=%v: warmed shape must filter-serve a non-empty entry", busy)
		}
	}
	if after := match.Searches(); after != before {
		t.Fatalf("filter-served states ran %d searches, want 0", after-before)
	}
	if st := s.Stats(); st.FilterServed != 3 {
		t.Fatalf("want 3 filter-served decisions, stats %+v", st)
	}
}

func TestIncompleteUniverseFallsBack(t *testing.T) {
	top := topology.DGXV100()
	full := match.BuildUniverse(appgraph.Ring(3), top.Graph, 0, 1)
	s := NewStore(top, full.Len()-1) // capacity below the class count
	if n := s.Warm(1, appgraph.Ring(3)); n != 0 {
		t.Fatalf("Warm claimed %d complete universes under an overflowing cap", n)
	}
	_, _, ok := s.FilteredEntry(appgraph.Ring(3), top.Graph, 0, 1)
	if ok {
		t.Fatal("an incomplete universe must not serve filters")
	}
	st := s.Stats()
	if st.Incomplete != 1 || st.FilterRejected != 1 || st.FilterServed != 0 {
		t.Fatalf("stats %+v, want 1 incomplete, 1 rejected, 0 served", st)
	}
}

// TestIsomorphicBuildsShareUniverse: a universe built for one
// construction of the 4-ring serves an isomorphic construction, with
// matches re-expressed as valid embeddings of the requester's pattern.
func TestIsomorphicBuildsShareUniverse(t *testing.T) {
	top := topology.DGXV100()
	s := NewStore(top, 0)
	ringA := appgraph.Ring(4)
	ringB := ring0213()
	s.Warm(1, ringA)

	avail := top.Graph.Without([]int{2})
	before := match.Searches()
	ent, order, ok := s.FilteredEntry(ringB, avail, 0, 1)
	if !ok {
		t.Fatal("isomorphic shape must share the warmed universe")
	}
	if match.Searches() != before {
		t.Fatal("isomorphic lookup must not search")
	}
	if order == nil {
		t.Fatal("structurally different build needs an order remap")
	}
	if st := s.Stats(); st.Universes != 1 {
		t.Fatalf("isomorphic shapes must share one universe, stats %+v", st)
	}
	// Every served match, re-expressed through order, must be a valid
	// embedding of ringB into the availability graph, and the candidate
	// *set* must equal ringB's own enumeration (same canonical keys).
	wantKeys := map[string]bool{}
	_, keys := match.FindAllDedupedCappedKeys(ringB, avail, 0)
	for _, k := range keys {
		wantKeys[k] = true
	}
	if ent.Len() != len(keys) {
		t.Fatalf("filtered %d candidates, direct enumeration %d", ent.Len(), len(keys))
	}
	for i, m := range ent.Matches() {
		rm := match.Match{Pattern: order, Data: m.Data}
		if !match.IsEmbedding(ringB, avail, rm) {
			t.Fatalf("candidate %d is not a valid embedding of the requester's pattern", i)
		}
		if !wantKeys[ent.Key(i)] {
			t.Fatalf("candidate %d key %q not in the direct enumeration", i, ent.Key(i))
		}
	}
}

// TestTruncatedFilterRejectedForRemappedShape: cap truncation is only
// safe when the request shape is structurally identical to the
// universe's — a remapped shape enumerates in a different order, so
// the store must decline and let the policy search.
func TestTruncatedFilterRejectedForRemappedShape(t *testing.T) {
	top := topology.DGXV100()
	s := NewStore(top, 0)
	ringA := appgraph.Ring(4)
	ringB := ring0213()
	s.Warm(1, ringA)

	// Identical shape: truncation is fine (sequential prefix).
	if _, _, ok := s.FilteredEntry(ringA, top.Graph, 2, 1); !ok {
		t.Fatal("truncated filter for the identical shape must be served")
	}
	// Isomorphic-but-different shape: must be declined under a cap that
	// truncates…
	if _, _, ok := s.FilteredEntry(ringB, top.Graph, 2, 1); ok {
		t.Fatal("truncated filter for a remapped shape must be declined")
	}
	// …but served when the cap does not bind.
	if _, _, ok := s.FilteredEntry(ringB, top.Graph, 0, 1); !ok {
		t.Fatal("uncapped filter for a remapped shape must be served")
	}
}

// TestWarmConcurrentShapesMatchSequential pins the concurrent Warm
// semantics: building distinct shapes in parallel under one worker
// budget must produce exactly the universes a sequential warm builds,
// count included.
func TestWarmConcurrentShapesMatchSequential(t *testing.T) {
	top := topology.DGXV100()
	shapes := appgraph.AllShapes(5)
	seq := NewStore(top, 0)
	wantN := seq.Warm(1, shapes...)
	con := NewStore(top, 0)
	if gotN := con.Warm(4, shapes...); gotN != wantN {
		t.Fatalf("concurrent Warm built %d complete universes, sequential %d", gotN, wantN)
	}
	seqStats, conStats := seq.Stats(), con.Stats()
	if conStats.Universes != seqStats.Universes || conStats.Incomplete != seqStats.Incomplete {
		t.Fatalf("concurrent stats %+v, sequential %+v", conStats, seqStats)
	}
	if len(conStats.Builds) != len(seqStats.Builds) {
		t.Fatalf("concurrent ran %d builds, sequential %d", len(conStats.Builds), len(seqStats.Builds))
	}
	// Every shape must serve the same candidate prefix from both
	// stores on a common availability state.
	avail := top.Graph.Without([]int{1, 6})
	for _, p := range shapes {
		if p.NumVertices() > avail.NumVertices() {
			continue
		}
		a, _, okA := seq.FilteredEntry(p, avail, 0, 1)
		b, _, okB := con.FilteredEntry(p, avail, 0, 1)
		if okA != okB {
			t.Fatalf("shape %dv: serve disagreement seq=%v con=%v", p.NumVertices(), okA, okB)
		}
		if !okA {
			continue
		}
		if a.Len() != b.Len() {
			t.Fatalf("shape %dv: %d vs %d candidates", p.NumVertices(), a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if a.Key(i) != b.Key(i) {
				t.Fatalf("shape %dv candidate %d: keys diverge", p.NumVertices(), i)
			}
		}
	}
}

// TestWarmRacesWithReaders interleaves a concurrent Warm with
// FilteredEntry and NewViews/Entry readers on the same store — the
// new concurrent-warm contract: the store serves soundly at every
// point while warming is in flight (a reader needing a shape mid-build
// blocks on that shape only), and Warm's return still means every
// requested universe is resident. Run under -race in CI.
func TestWarmRacesWithReaders(t *testing.T) {
	top := topology.DGXV100()
	s := NewStore(top, 0)
	shapes := appgraph.AllShapes(5)
	pattern := appgraph.Ring(3)
	avail := top.Graph.Without([]int{0, 5})
	wantMs, wantKeys := match.FindAllDedupedCappedKeys(pattern, avail, 0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Warm(4, shapes...)
	}()
	for i := 0; i < 20; i++ {
		ent, _, ok := s.FilteredEntry(pattern, avail, 0, 1)
		if !ok {
			t.Errorf("iter %d: FilteredEntry declined during warm", i)
			break
		}
		if ent.Len() != len(wantMs) {
			t.Errorf("iter %d: %d candidates, want %d", i, ent.Len(), len(wantMs))
			break
		}
		views := s.NewViews()
		vent, _, ok := views.Entry(pattern, top.Graph, 0, 1)
		if !ok {
			t.Errorf("iter %d: Views.Entry declined during warm", i)
			break
		}
		if vent.Len() == 0 {
			t.Errorf("iter %d: empty view entry", i)
			break
		}
		if i%5 == 0 {
			s.Stats()
		}
	}
	<-done
	// After Warm returns every requested shape is resident: no new
	// builds for any of them.
	universes := s.Stats().Universes
	for _, p := range shapes {
		s.FilteredEntry(p, top.Graph, 0, 1)
	}
	if got := s.Stats().Universes; got != universes {
		t.Fatalf("post-warm reads built %d more universes", got-universes)
	}
	for i, k := range wantKeys {
		ent, _, _ := s.FilteredEntry(pattern, avail, 0, 1)
		if ent.Key(i) != k {
			t.Fatalf("candidate %d key diverged after warm", i)
		}
		break
	}
}

// TestSetBuildWorkersFloorsOnDemandBuilds: a store with a build-worker
// floor must run even sequential-caller builds with the parallel
// work-stealing enumeration — and record so in the build stats.
func TestSetBuildWorkersFloorsOnDemandBuilds(t *testing.T) {
	top := topology.DGXV100()
	s := NewStore(top, 0)
	s.SetBuildWorkers(4)
	pattern := appgraph.Ring(3)
	// workers=1 caller (a sequential decision path) triggers the build.
	if _, _, ok := s.FilteredEntry(pattern, top.Graph, 0, 1); !ok {
		t.Fatal("store declined")
	}
	st := s.Stats()
	if len(st.Builds) != 1 {
		t.Fatalf("builds = %d, want 1", len(st.Builds))
	}
	if st.Builds[0].Workers != 4 {
		t.Fatalf("build ran with %d workers, want floor of 4", st.Builds[0].Workers)
	}
	if st.BuildTime <= 0 {
		t.Fatal("build time not recorded")
	}
	if st.Builds[0].PlanImbalance < 1 {
		t.Fatalf("plan imbalance %.3f < 1", st.Builds[0].PlanImbalance)
	}
	// The floored build must stay byte-identical to sequential.
	wantMs, wantKeys := match.FindAllDedupedCappedKeys(pattern, top.Graph, 0)
	ent, _, _ := s.FilteredEntry(pattern, top.Graph, 0, 1)
	if ent.Len() != len(wantMs) {
		t.Fatalf("%d candidates, want %d", ent.Len(), len(wantMs))
	}
	for i := range wantKeys {
		if ent.Key(i) != wantKeys[i] {
			t.Fatalf("candidate %d key diverged", i)
		}
	}
}

func TestStoreBound(t *testing.T) {
	top := topology.DGXV100()
	s := NewStore(top, 0)
	if !s.Bound(top) {
		t.Fatal("store not bound to its own topology")
	}
	if s.Bound(topology.DGXV100()) {
		t.Fatal("store bound to a different topology value")
	}
	var nilStore *Store
	if nilStore.Bound(top) {
		t.Fatal("nil store reported bound")
	}
}
