package matchcache

import (
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/topology"
)

// ring0213 is a 4-ring assembled in a different vertex order than
// appgraph.Ring(4): isomorphic but structurally different.
func ring0213() *graph.Graph {
	g := graph.New()
	g.MustAddEdge(0, 2, 1, 0)
	g.MustAddEdge(2, 1, 1, 0)
	g.MustAddEdge(1, 3, 1, 0)
	g.MustAddEdge(3, 0, 1, 0)
	return g
}

// TestFilteredEntryMatchesSequentialEnumeration is the tier-1
// soundness contract: for any availability state and candidate cap,
// the filter-derived entry must be byte-identical to a fresh capped
// sequential enumeration on the induced subgraph.
func TestFilteredEntryMatchesSequentialEnumeration(t *testing.T) {
	top := topology.DGXV100()
	s := NewStore(top, 0)
	pattern := appgraph.Ring(3)
	states := [][]int{nil, {0}, {1, 6}, {0, 2, 4}, {1, 3, 5, 7}, {0, 1, 2, 3, 4}}
	for _, busy := range states {
		avail := top.Graph.Without(busy)
		for _, cap := range []int{0, 5} {
			ent, order, ok := s.FilteredEntry(pattern, avail, cap, 1)
			if !ok {
				t.Fatalf("busy=%v cap=%d: store declined a complete universe", busy, cap)
			}
			if order != nil {
				t.Fatalf("busy=%v: identical shape needs no remap", busy)
			}
			wantMs, wantKeys := match.FindAllDedupedCappedKeys(pattern, avail, cap)
			if ent.Len() != len(wantMs) {
				t.Fatalf("busy=%v cap=%d: filtered %d candidates, sequential %d", busy, cap, ent.Len(), len(wantMs))
			}
			for i := range wantMs {
				if ent.Key(i) != wantKeys[i] {
					t.Fatalf("busy=%v cap=%d cand %d: key %q want %q", busy, cap, i, ent.Key(i), wantKeys[i])
				}
			}
		}
	}
	if st := s.Stats(); st.Universes != 1 {
		t.Fatalf("one shape must build exactly one universe, stats %+v", st)
	}
}

// TestWarmedShapeFiltersWithoutSearching is the zero-search proof: for
// a warmed shape, a previously-unseen availability state is served by
// mask filtering with zero calls into the subgraph-isomorphism search.
func TestWarmedShapeFiltersWithoutSearching(t *testing.T) {
	top := topology.DGXV100()
	s := NewStore(top, 0)
	pattern := appgraph.Ring(4)
	if n := s.Warm(1, pattern); n != 1 {
		t.Fatalf("Warm built %d universes, want 1", n)
	}
	before := match.Searches()
	for _, busy := range [][]int{{0}, {3, 5}, {1, 2, 6}} {
		avail := top.Graph.Without(busy)
		ent, _, ok := s.FilteredEntry(pattern, avail, 0, 1)
		if !ok || ent.Len() == 0 {
			t.Fatalf("busy=%v: warmed shape must filter-serve a non-empty entry", busy)
		}
	}
	if after := match.Searches(); after != before {
		t.Fatalf("filter-served states ran %d searches, want 0", after-before)
	}
	if st := s.Stats(); st.FilterServed != 3 {
		t.Fatalf("want 3 filter-served decisions, stats %+v", st)
	}
}

func TestIncompleteUniverseFallsBack(t *testing.T) {
	top := topology.DGXV100()
	full := match.BuildUniverse(appgraph.Ring(3), top.Graph, 0, 1)
	s := NewStore(top, full.Len()-1) // capacity below the class count
	if n := s.Warm(1, appgraph.Ring(3)); n != 0 {
		t.Fatalf("Warm claimed %d complete universes under an overflowing cap", n)
	}
	_, _, ok := s.FilteredEntry(appgraph.Ring(3), top.Graph, 0, 1)
	if ok {
		t.Fatal("an incomplete universe must not serve filters")
	}
	st := s.Stats()
	if st.Incomplete != 1 || st.FilterRejected != 1 || st.FilterServed != 0 {
		t.Fatalf("stats %+v, want 1 incomplete, 1 rejected, 0 served", st)
	}
}

// TestIsomorphicBuildsShareUniverse: a universe built for one
// construction of the 4-ring serves an isomorphic construction, with
// matches re-expressed as valid embeddings of the requester's pattern.
func TestIsomorphicBuildsShareUniverse(t *testing.T) {
	top := topology.DGXV100()
	s := NewStore(top, 0)
	ringA := appgraph.Ring(4)
	ringB := ring0213()
	s.Warm(1, ringA)

	avail := top.Graph.Without([]int{2})
	before := match.Searches()
	ent, order, ok := s.FilteredEntry(ringB, avail, 0, 1)
	if !ok {
		t.Fatal("isomorphic shape must share the warmed universe")
	}
	if match.Searches() != before {
		t.Fatal("isomorphic lookup must not search")
	}
	if order == nil {
		t.Fatal("structurally different build needs an order remap")
	}
	if st := s.Stats(); st.Universes != 1 {
		t.Fatalf("isomorphic shapes must share one universe, stats %+v", st)
	}
	// Every served match, re-expressed through order, must be a valid
	// embedding of ringB into the availability graph, and the candidate
	// *set* must equal ringB's own enumeration (same canonical keys).
	wantKeys := map[string]bool{}
	_, keys := match.FindAllDedupedCappedKeys(ringB, avail, 0)
	for _, k := range keys {
		wantKeys[k] = true
	}
	if ent.Len() != len(keys) {
		t.Fatalf("filtered %d candidates, direct enumeration %d", ent.Len(), len(keys))
	}
	for i, m := range ent.Matches() {
		rm := match.Match{Pattern: order, Data: m.Data}
		if !match.IsEmbedding(ringB, avail, rm) {
			t.Fatalf("candidate %d is not a valid embedding of the requester's pattern", i)
		}
		if !wantKeys[ent.Key(i)] {
			t.Fatalf("candidate %d key %q not in the direct enumeration", i, ent.Key(i))
		}
	}
}

// TestTruncatedFilterRejectedForRemappedShape: cap truncation is only
// safe when the request shape is structurally identical to the
// universe's — a remapped shape enumerates in a different order, so
// the store must decline and let the policy search.
func TestTruncatedFilterRejectedForRemappedShape(t *testing.T) {
	top := topology.DGXV100()
	s := NewStore(top, 0)
	ringA := appgraph.Ring(4)
	ringB := ring0213()
	s.Warm(1, ringA)

	// Identical shape: truncation is fine (sequential prefix).
	if _, _, ok := s.FilteredEntry(ringA, top.Graph, 2, 1); !ok {
		t.Fatal("truncated filter for the identical shape must be served")
	}
	// Isomorphic-but-different shape: must be declined under a cap that
	// truncates…
	if _, _, ok := s.FilteredEntry(ringB, top.Graph, 2, 1); ok {
		t.Fatal("truncated filter for a remapped shape must be declined")
	}
	// …but served when the cap does not bind.
	if _, _, ok := s.FilteredEntry(ringB, top.Graph, 0, 1); !ok {
		t.Fatal("uncapped filter for a remapped shape must be served")
	}
}

func TestStoreBound(t *testing.T) {
	top := topology.DGXV100()
	s := NewStore(top, 0)
	if !s.Bound(top) {
		t.Fatal("store not bound to its own topology")
	}
	if s.Bound(topology.DGXV100()) {
		t.Fatal("store bound to a different topology value")
	}
	var nilStore *Store
	if nilStore.Bound(top) {
		t.Fatal("nil store reported bound")
	}
}
