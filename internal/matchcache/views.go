package matchcache

import (
	"sync"

	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/topology"
)

// ViewStats is a snapshot of a view set's counters.
type ViewStats struct {
	// Views counts live views materialized: one per canonical shape
	// actually served on this availability stream.
	Views int
	// Served counts miss decisions answered from a delta-maintained
	// live candidate list — zero full-universe scans and zero searches.
	// Rejected counts decisions the view layer declined (availability
	// stream out of sync, incomplete universe, or a cap-truncated list
	// for a structurally different build of the shape) and handed down
	// to the filter path.
	Served, Rejected uint64
}

// viewSlot is one canonical shape's live view, tagged with the
// structural fingerprint of the pattern its universe was built from so
// truncated candidate lists obey the same serving rule as Filter.
type viewSlot struct {
	lv        *match.LiveView
	patternFP string
}

// Views is tier 0 of the match pipeline: per-shape live candidate
// views over one availability-state stream, maintained incrementally
// from the GPU-set deltas of each Allocate and Release. Where tier 1
// answers a miss by mask-filtering the idle-state universe — an
// O(|universe|) subset scan — a live view already holds the surviving
// candidate list and only pays the delta on each state change, so
// steady-state decisions for warmed shapes run zero full-universe
// scans (pinned by the match.Filters counter).
//
// A Views is bound to one availability stream (one mapa.System, or one
// sched.Engine run): the publisher calls Allocate/Release with exactly
// the GPU-set deltas it applies to its availability graph. Entry
// cross-checks the request's free mask against the tracked stream and
// declines to serve on any mismatch, so a mis-published stream degrades
// to the filter path instead of corrupting decisions. The shared Store
// stays stream-agnostic — engines comparing policies on one topology
// share universes while each keeps its own view set.
//
// Views built for a shape that is first warmed mid-stream initialize
// from the current mask, not the idle machine, so late-warmed shapes
// serve correctly. Incomplete (capacity-overflowed) universes are
// never viewed, and cap-truncated candidate lists are served only to
// the exact pattern build they were enumerated for — the same
// soundness rules as Universe.Filter and Store.FilteredEntry.
//
// Views is safe for concurrent use.
type Views struct {
	mu    sync.Mutex
	store *Store
	free  graph.Bitset // tracked free mask, capacity = full machine
	slots map[string]*viewSlot
	stats ViewStats
}

// NewViews returns a live-view set over the store's universes,
// tracking a fresh availability stream that starts with the whole
// machine free.
func (s *Store) NewViews() *Views {
	return &Views{
		store: s,
		free:  s.top.Graph.VertexBitset(),
		slots: make(map[string]*viewSlot),
	}
}

// Bound reports whether the view set serves exactly this topology
// value; policies bypass unbound view sets, mirroring Cache.Bound.
func (v *Views) Bound(top *topology.Topology) bool {
	return v != nil && v.store.Bound(top)
}

// Allocate publishes an allocation delta: the given GPUs left the free
// set. Each live view deactivates exactly the embeddings on the
// GPUs' posting lists. Nil view sets ignore the call, so publishers
// need no nil checks.
func (v *Views) Allocate(gpus []int) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, g := range gpus {
		v.free.Unset(g)
	}
	for _, sl := range v.slots {
		sl.lv.Allocate(gpus)
	}
}

// Release publishes a release delta: the given GPUs returned to the
// free set. Nil view sets ignore the call.
func (v *Views) Release(gpus []int) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, g := range gpus {
		v.free.Set(g)
	}
	for _, sl := range v.slots {
		sl.lv.Release(gpus)
	}
}

// Entry serves the candidate entry for (pattern, avail) from the
// shape's live view: byte-identical to Store.FilteredEntry — and so to
// a fresh sequential search on avail — but derived without scanning
// the universe. The shape's view (and, on first sight, its universe)
// is built on demand, so a shape first requested mid-stream still
// serves correctly from its next decision on.
//
// ok is false when the view layer cannot answer soundly — avail's free
// mask does not match the tracked stream, the universe overflowed its
// capacity, or the candidate cap truncated the list for a structurally
// different build of the shape — and the caller falls back to the
// filter path.
func (v *Views) Entry(pattern, avail *graph.Graph, maxCandidates, workers int) (ent *Entry, order []int, ok bool) {
	if v == nil {
		return nil, nil, false
	}
	ci := canon.info(pattern)
	mask := avail.VertexBitset()
	v.mu.Lock()
	defer v.mu.Unlock()
	reject := func() (*Entry, []int, bool) {
		v.stats.Rejected++
		return nil, nil, false
	}
	// Mutual subset = equal membership; the masks may differ in word
	// length when the highest-numbered GPUs are busy.
	if !mask.SubsetOf(v.free) || !v.free.SubsetOf(mask) {
		return reject()
	}
	sl, seen := v.slots[ci.canon]
	if !seen {
		usl := v.store.universe(ci, pattern, workers)
		if !usl.u.Complete() {
			return reject()
		}
		sl = &viewSlot{lv: match.NewLiveView(usl.u, v.free), patternFP: usl.patternFP}
		v.slots[ci.canon] = sl
		v.stats.Views++
	}
	idx, truncated := sl.lv.Candidates(maxCandidates)
	if truncated && sl.patternFP != ci.exact {
		return reject()
	}
	u := sl.lv.Universe()
	ms := make([]match.Match, len(idx))
	keys := make([]string, len(idx))
	for j, i := range idx {
		ms[j] = u.Match(i)
		keys[j] = u.Key(i)
	}
	ent = NewEntry(ms, keys)
	ent.patternFP = sl.patternFP
	if truncated {
		ent.MarkTruncated()
	}
	order = canon.remap(sl.patternFP, ci, u.Order())
	v.stats.Served++
	return ent, order, true
}

// Stats returns a snapshot of the view set's counters. A nil view set
// reports zeros.
func (v *Views) Stats() ViewStats {
	if v == nil {
		return ViewStats{}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}
