package matchcache

import (
	"sync"

	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// ViewStats is a snapshot of a view set's counters.
type ViewStats struct {
	// Views counts live views materialized: one per canonical shape
	// actually served on this availability stream.
	Views int
	// Served counts miss decisions answered from a delta-maintained
	// live candidate list — zero full-universe scans and zero searches.
	// Rejected counts decisions the view layer declined (availability
	// stream out of sync, incomplete universe, or a cap-truncated list
	// for a structurally different build of the shape) and handed down
	// to the filter path.
	Served, Rejected uint64
	// TableServed counts the subset of Served decisions answered by the
	// table-served selection path (SelectLive): candidate scores read
	// from the shape's precomputed score table plus O(k) delta
	// arithmetic, with zero dynamic score.Scorer evaluations.
	TableServed uint64
}

// viewSlot is one canonical shape's live view, tagged with the
// structural fingerprint of the pattern its universe was built from so
// truncated candidate lists obey the same serving rule as Filter, and
// carrying its universe slot so the table path can reach the shape's
// score table.
type viewSlot struct {
	lv        *match.LiveView
	patternFP string
	usl       *universeSlot
	// scratch is the slot's reusable live-candidate index buffer,
	// refilled under the view lock by Entry; it never escapes the lock's
	// critical section.
	scratch []int
}

// Views is tier 0 of the match pipeline: per-shape live candidate
// views over one availability-state stream, maintained incrementally
// from the GPU-set deltas of each Allocate and Release. Where tier 1
// answers a miss by mask-filtering the idle-state universe — an
// O(|universe|) subset scan — a live view already holds the surviving
// candidate list and only pays the delta on each state change, so
// steady-state decisions for warmed shapes run zero full-universe
// scans (pinned by the match.Filters counter).
//
// A Views is bound to one availability stream (one mapa.System, or one
// sched.Engine run): the publisher calls Allocate/Release with exactly
// the GPU-set deltas it applies to its availability graph. Entry
// cross-checks the request's free mask against the tracked stream and
// declines to serve on any mismatch, so a mis-published stream degrades
// to the filter path instead of corrupting decisions. The shared Store
// stays stream-agnostic — engines comparing policies on one topology
// share universes while each keeps its own view set.
//
// Views built for a shape that is first warmed mid-stream initialize
// from the current mask, not the idle machine, so late-warmed shapes
// serve correctly. Incomplete (capacity-overflowed) universes are
// never viewed, and cap-truncated candidate lists are served only to
// the exact pattern build they were enumerated for — the same
// soundness rules as Universe.Filter and Store.FilteredEntry.
//
// Views is safe for concurrent use.
type Views struct {
	mu        sync.Mutex
	store     *Store
	free      graph.Bitset // tracked free mask, capacity = full machine
	unhealthy graph.Bitset // tracked health mask (set bit = unhealthy)
	usable    graph.Bitset // free AND healthy, maintained incrementally
	slots     map[string]*viewSlot
	stats     ViewStats

	// bw is the stream's shared Eq. 3 bandwidth accounting, maintained
	// once per delta and read by every shape's table-served selection —
	// the accounting is shape-independent, so it lives here rather than
	// inside each slot's view. nil when the store was created with
	// score tables disabled (nothing would read it).
	bw *match.BandwidthAccounting
}

// NewViews returns a live-view set over the store's universes,
// tracking a fresh availability stream that starts with the whole
// machine free.
func (s *Store) NewViews() *Views {
	free := s.top.Graph.VertexBitset()
	v := &Views{
		store:     s,
		free:      free,
		unhealthy: graph.NewBitset(graph.Capacity(s.top.Graph)),
		usable:    free.Clone(),
		slots:     make(map[string]*viewSlot),
	}
	if s.scoreTablesEnabled() {
		v.bw = match.NewBandwidthAccounting(s.top.Graph, free, graph.Capacity(s.top.Graph))
	}
	return v
}

// Bound reports whether the view set serves exactly this topology
// value; policies bypass unbound view sets, mirroring Cache.Bound.
func (v *Views) Bound(top *topology.Topology) bool {
	return v != nil && v.store.Bound(top)
}

// Allocate publishes an allocation delta: the given GPUs left the free
// set. Each live view deactivates exactly the embeddings on the
// GPUs' posting lists. Nil view sets ignore the call, so publishers
// need no nil checks.
func (v *Views) Allocate(gpus []int) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, g := range gpus {
		v.free.Unset(g)
		v.usable.Unset(g)
	}
	if v.bw != nil {
		v.bw.Allocate(gpus)
	}
	for _, sl := range v.slots {
		sl.lv.Allocate(gpus)
	}
}

// Release publishes a release delta: the given GPUs returned to the
// free set. Nil view sets ignore the call.
func (v *Views) Release(gpus []int) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, g := range gpus {
		v.free.Set(g)
		if !v.unhealthy.Has(g) {
			v.usable.Set(g)
		}
	}
	if v.bw != nil {
		v.bw.Release(gpus)
	}
	for _, sl := range v.slots {
		sl.lv.Release(gpus)
	}
}

// MarkUnhealthy publishes a health delta: the given GPUs failed. They
// keep their free/allocated state — unhealthy GPUs stay visible but
// unallocatable — and every live view blocks their posting lists, the
// same O(posting list) walk an allocation delta pays. Nil view sets
// ignore the call.
func (v *Views) MarkUnhealthy(gpus []int) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, g := range gpus {
		v.unhealthy.Set(g)
		v.usable.Unset(g)
	}
	if v.bw != nil {
		v.bw.MarkUnhealthy(gpus)
	}
	for _, sl := range v.slots {
		sl.lv.MarkUnhealthy(gpus)
	}
}

// RestoreHealth publishes a recovery delta: the given GPUs are healthy
// again, and those that are also free rejoin the usable set. Nil view
// sets ignore the call.
func (v *Views) RestoreHealth(gpus []int) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, g := range gpus {
		v.unhealthy.Unset(g)
		if v.free.Has(g) {
			v.usable.Set(g)
		}
	}
	if v.bw != nil {
		v.bw.RestoreHealth(gpus)
	}
	for _, sl := range v.slots {
		sl.lv.RestoreHealth(gpus)
	}
}

// UpdateEdge publishes a link-degradation delta: edge (u,g) of the
// machine graph now has weight w. Candidate structure is untouched —
// hardware graphs are complete, so a weight change never invalidates
// an embedding and the posting lists stand — only the stream's Eq. 3
// bandwidth accounting absorbs the weight difference. The caller
// separately repairs the store's score tables (Store.RepairEdge). Nil
// view sets ignore the call.
func (v *Views) UpdateEdge(u, g int, w float64) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.bw != nil {
		v.bw.UpdateEdge(u, g, w)
	}
}

// Entry serves the candidate entry for (pattern, avail) from the
// shape's live view: byte-identical to Store.FilteredEntry — and so to
// a fresh sequential search on avail — but derived without scanning
// the universe. The shape's view (and, on first sight, its universe)
// is built on demand, so a shape first requested mid-stream still
// serves correctly from its next decision on.
//
// ok is false when the view layer cannot answer soundly — avail's free
// mask does not match the tracked stream, the universe overflowed its
// capacity, or the candidate cap truncated the list for a structurally
// different build of the shape — and the caller falls back to the
// filter path.
func (v *Views) Entry(pattern, avail *graph.Graph, maxCandidates, workers int) (ent *Entry, order []int, ok bool) {
	if v == nil {
		return nil, nil, false
	}
	ci := canon.info(pattern)
	mask := avail.VertexBitsetView()
	v.mu.Lock()
	defer v.mu.Unlock()
	reject := func() (*Entry, []int, bool) {
		v.stats.Rejected++
		return nil, nil, false
	}
	// Mutual subset = equal membership; the masks may differ in word
	// length when the highest-numbered GPUs are busy. The request mask
	// is compared against the usable set (free AND healthy): the
	// publisher's availability graph excludes unhealthy GPUs, so in
	// degraded mode the usable set is exactly what a decision sees.
	if !mask.SubsetOf(v.usable) || !v.usable.SubsetOf(mask) {
		return reject()
	}
	sl, ok2 := v.ensureSlot(ci, pattern, workers)
	if !ok2 {
		return reject()
	}
	idx, truncated := sl.lv.AppendLive(sl.scratch[:0], maxCandidates)
	sl.scratch = idx
	if truncated && sl.patternFP != ci.exact {
		return reject()
	}
	u := sl.lv.Universe()
	ms := make([]match.Match, len(idx))
	keys := make([]string, len(idx))
	for j, i := range idx {
		ms[j] = u.Match(i)
		keys[j] = u.Key(i)
	}
	ent = NewEntry(ms, keys)
	ent.patternFP = sl.patternFP
	if truncated {
		ent.MarkTruncated()
	}
	order = canon.remap(sl.patternFP, ci, u.Order())
	v.stats.Served++
	return ent, order, true
}

// ensureSlot returns the canonical shape's live view slot, creating it
// (and, on first sight, building the shape's universe) under the view
// lock. ok is false when the universe overflowed its capacity. Slots
// are unweighted: the stream's Eq. 3 bandwidth accounting is
// shape-independent and lives once on the Views (v.bw), not per slot.
func (v *Views) ensureSlot(ci *canonInfo, pattern *graph.Graph, workers int) (*viewSlot, bool) {
	sl, seen := v.slots[ci.canon]
	if seen {
		return sl, true
	}
	usl := v.store.universe(ci, pattern, workers)
	if !usl.u.Complete() {
		return nil, false
	}
	lv := match.NewLiveView(usl.u, v.free)
	if v.unhealthy.Any() {
		// A shape first served mid-stream inherits the current health
		// state, not just the current free mask.
		lv.MarkUnhealthy(v.unhealthy.Members())
	}
	sl = &viewSlot{
		lv:        lv,
		patternFP: usl.patternFP,
		usl:       usl,
	}
	v.slots[ci.canon] = sl
	v.stats.Views++
	return sl, true
}

// SelectLive serves a decision straight off the shape's live view and
// precomputed score table, without materializing a candidate entry: sel
// runs under the view lock with the delta-maintained live view, the
// stream's shared Eq. 3 bandwidth accounting (current for the tracked
// state), the shape's score table, the order remap for isomorphic
// builds (nil when the request shape is structurally identical), and
// whether the candidate cap truncates the live set — everything a
// policy needs to run its selection as table lookups plus O(k)
// arithmetic.
//
// SelectLive returns false — without invoking sel, and without counting
// a rejection, since the caller falls through to Entry which applies
// (and counts) the same rules — when the view layer cannot answer:
// score tables disabled, availability stream out of sync, incomplete
// universe, or a truncating cap for a structurally different build of
// the shape (a foreign enumeration-order prefix, the same soundness
// rule as Entry and Filter). On true, the decision is counted as
// Served and TableServed.
func (v *Views) SelectLive(pattern, avail *graph.Graph, maxCandidates, workers int, sel func(lv *match.LiveView, bw *match.BandwidthAccounting, tbl *score.Table, order []int, truncated bool)) bool {
	if v == nil || v.bw == nil || !v.store.scoreTablesEnabled() {
		return false
	}
	ci := canon.info(pattern)
	mask := avail.VertexBitsetView()
	v.mu.Lock()
	defer v.mu.Unlock()
	if !mask.SubsetOf(v.usable) || !v.usable.SubsetOf(mask) {
		return false
	}
	sl, ok := v.ensureSlot(ci, pattern, workers)
	if !ok {
		return false
	}
	truncated := maxCandidates > 0 && sl.lv.Len() > maxCandidates
	if truncated && sl.patternFP != ci.exact {
		return false
	}
	tbl := v.store.ensureTable(sl.usl, workers)
	if tbl == nil {
		return false
	}
	order := canon.remap(sl.patternFP, ci, sl.lv.Universe().Order())
	v.stats.Served++
	v.stats.TableServed++
	sel(sl.lv, v.bw, tbl, order, truncated)
	return true
}

// Stats returns a snapshot of the view set's counters. A nil view set
// reports zeros.
func (v *Views) Stats() ViewStats {
	if v == nil {
		return ViewStats{}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}
