// Package matchcache caches pattern-embedding enumerations for the
// MAPA allocation hot path. Like an allocator that precomputes pair
// scores at init so each placement request is cheap, MAPA can reuse a
// prior subgraph-isomorphism enumeration whenever the same job pattern
// is matched against the same set of free GPUs — which is the common
// steady-state of a scheduler cycling through a small set of
// availability states.
//
// Entries are keyed by (pattern canonical key, available-GPU bitmask).
// Allocate and free events rotate the availability bitmask, so a state
// change invalidates by construction: the next lookup misses and
// re-enumerates, while entries for recurring states stay warm. The
// cache is bound to one topology; rebinding or reconfiguring hardware
// requires Clear (or a fresh cache). Capacity is bounded with LRU
// eviction.
package matchcache

import (
	"container/list"
	"sync"

	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// DefaultCapacity is the default bound on cached (pattern, mask)
// entries. An 8-GPU machine has at most 256 availability states; 512
// comfortably covers several concurrent pattern shapes on 16-GPU
// machines under LRU.
const DefaultCapacity = 512

// Key returns the cache key for matching pattern against the avail
// induced subgraph: the pattern's canonical fingerprint plus the
// available-GPU bitmask.
//
// The key encodes only the free vertex set, not avail's edges: it is
// sound precisely because Allocator.Allocate requires avail to be the
// induced subgraph of the bound topology's hardware graph over the
// free GPUs, which makes the edge set a function of the vertex set.
// An availability graph that violates that contract (e.g. links
// removed by hand) must not share a cache with conforming callers.
func Key(pattern, avail *graph.Graph) string {
	return pattern.Fingerprint() + "@" + avail.VertexBitset().String()
}

// Entry is one cached enumeration: the deduplicated matches of a
// pattern on one availability state, in sequential enumeration order,
// with their canonical keys, GPU sets, and (lazily computed) MAPA
// scores. Matches, keys, and GPU sets are shared across lookups —
// treat them as read-only.
type Entry struct {
	matches []match.Match
	keys    []string
	gpus    [][]int

	mu       sync.Mutex
	scores   []score.Scores
	scored   bool
	scoredBy any
}

// NewEntry builds an entry from deduplicated matches (already capped
// and in enumeration order) and their canonical keys, as returned by
// match.FindAllDedupedCappedKeys. keys may be nil when no caller
// needs per-match identities.
func NewEntry(matches []match.Match, keys []string) *Entry {
	e := &Entry{matches: matches, keys: keys, gpus: make([][]int, len(matches))}
	if keys == nil {
		e.keys = make([]string, len(matches))
	}
	for i, m := range matches {
		e.gpus[i] = m.DataVertices()
	}
	return e
}

// Matches returns the cached matches in enumeration order. Read-only.
func (e *Entry) Matches() []match.Match { return e.matches }

// Key returns the canonical key of match i — its equivalence-class
// identity, used as the final deterministic tie-break when selecting
// among equally scored candidates.
func (e *Entry) Key(i int) string { return e.keys[i] }

// GPUs returns the ascending GPU set of match i. Read-only.
func (e *Entry) GPUs(i int) []int { return e.gpus[i] }

// Len returns the number of cached matches.
func (e *Entry) Len() int { return len(e.matches) }

// Scores returns the per-match MAPA scores, computing them with
// compute on first use; workers > 1 parallelizes the fill. scorer
// identifies the scoring model the values come from (the policy's
// *score.Scorer): calls with the scorer that filled the entry return
// the cached slice, while a different scorer recomputes, so swapping
// a policy's bandwidth model under a warm cache never serves another
// model's scores. Safe for concurrent use; the returned slice is
// read-only.
func (e *Entry) Scores(scorer any, workers int, compute func(i int, m match.Match) score.Scores) []score.Scores {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.scored && e.scoredBy == scorer {
		return e.scores
	}
	out := make([]score.Scores, len(e.matches))
	if workers > len(e.matches) {
		workers = len(e.matches)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(start int) {
				defer wg.Done()
				for i := start; i < len(e.matches); i += workers {
					out[i] = compute(i, e.matches[i])
				}
			}(w)
		}
		wg.Wait()
	} else {
		for i, m := range e.matches {
			out[i] = compute(i, m)
		}
	}
	e.scores = out
	e.scored = true
	e.scoredBy = scorer
	return out
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

type item struct {
	key string
	ent *Entry
}

// Cache is a bounded LRU embedding cache bound to one topology. It is
// safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	top      *topology.Topology
	capacity int
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	stats    Stats
}

// New returns a cache for the given topology. capacity <= 0 uses
// DefaultCapacity.
func New(top *topology.Topology, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		top:      top,
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// Bound reports whether the cache was built for exactly this topology
// value. Policies bypass the cache on a mismatch, so a policy attached
// to one machine never serves another machine's embeddings.
func (c *Cache) Bound(top *topology.Topology) bool {
	return c != nil && c.top == top
}

// Get returns the entry for key, if cached.
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*item).ent, true
}

// Put stores ent under key and returns the canonical entry for that
// key: if another goroutine stored one first, the existing entry wins
// so every caller scores and selects over the same slice.
func (c *Cache) Put(key string, ent *Entry) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*item).ent
	}
	c.entries[key] = c.lru.PushFront(&item{key: key, ent: ent})
	for c.lru.Len() > c.capacity {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*item).key)
		c.stats.Evictions++
	}
	return ent
}

// Clear drops every entry (topology reconfiguration, tests). Counters
// survive.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}
