// Package matchcache is the incremental match pipeline behind the
// MAPA allocation hot path.
//
// Tier 0 (Views) holds per-shape live candidate views over one
// availability-state stream: per-GPU posting lists and per-embedding
// blocked counters maintained incrementally from each Allocate and
// Release delta, so a miss decision reads an already-current candidate
// list instead of scanning the universe (see match.LiveView).
//
// Tier 1 (Store) holds one idle-state universe per (topology,
// canonical pattern): the complete deduplicated enumeration of the
// shape on the full machine, each embedding paired with its GPU
// bitset. It is computed once — optionally warmed at construction,
// like an allocator precomputing pair scores at init — and shared by
// every engine bound to the topology.
//
// Tier 2 (Cache) holds filtered views: the candidate list of one
// (canonical pattern, free-GPU bitmask) availability state, with
// lazily computed scores. A recurring state hits and runs only the
// selection comparator. A new state misses, but the miss is served by
// word-wise AND-filtering the universe against the free-GPU mask — an
// O(|universe|) bitset scan instead of a fresh subgraph-isomorphism
// search. Entries are sharded per canonical pattern with one LRU per
// shard, so mask churn on one shape cannot evict another shape's
// warm entries.
//
// Patterns are keyed canonically (up to isomorphism, via
// graph.CanonicalForm), so structurally different builds of the same
// shape — a Ring(4) assembled 0-1-2-3-0 by one frontend and 0-2-1-3-0
// by another — share universes and cached views; embeddings are
// re-expressed in each requester's own vertex IDs through the
// composed canonical labelings.
//
// Allocate and free events rotate the availability bitmask, so a state
// change invalidates by construction: the next lookup misses (and is
// filter-served), while entries for recurring states stay warm. Both
// tiers are bound to one topology; rebinding or reconfiguring hardware
// requires fresh instances.
package matchcache

import (
	"container/list"
	"sort"
	"sync"

	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// DefaultShardCapacity is the default bound on cached availability
// states per pattern shard. An 8-GPU machine has at most 256
// availability states, so the default keeps every state of every
// concurrently active shape warm on the paper's machines; larger
// machines churn within a shape without touching other shapes.
const DefaultShardCapacity = 256

// Key returns the exact-shape cache key for matching pattern against
// the avail induced subgraph: the pattern's structural fingerprint
// plus the available-GPU bitmask. The sharded cache keys shapes
// canonically instead, but the soundness contract is the same and this
// form remains for diagnostics and tests.
//
// The key encodes only the free vertex set, not avail's edges: it is
// sound precisely because Allocator.Allocate requires avail to be the
// induced subgraph of the bound topology's hardware graph over the
// free GPUs, which makes the edge set a function of the vertex set.
// An availability graph that violates that contract (e.g. links
// removed by hand) must not share a cache with conforming callers.
func Key(pattern, avail *graph.Graph) string {
	return pattern.Fingerprint() + "@" + avail.VertexBitsetView().String()
}

// Entry is one cached candidate list: the deduplicated matches of a
// pattern on one availability state, in sequential enumeration order,
// with their canonical keys, GPU sets, and (lazily computed) MAPA
// scores. Matches, keys, and GPU sets are shared across lookups —
// treat them as read-only.
type Entry struct {
	matches []match.Match
	keys    []string

	// gpusArena holds every match's ascending GPU set in one backing
	// array with fixed stride k (the pattern size): match i occupies
	// [i*k, (i+1)*k). One allocation per entry instead of one per
	// match.
	gpusArena []int
	k         int

	// order is the Pattern slice the matches are expressed in;
	// patternFP is the structural fingerprint of the pattern they were
	// enumerated for. Lookups for an isomorphic-but-not-identical
	// request shape use both to translate matches into the requester's
	// vertex IDs.
	order     []int
	patternFP string
	// truncated records that a candidate cap cut the list off. A
	// truncated list is the *enumeration-order prefix of the pattern it
	// was enumerated for*; an isomorphic-but-structurally-different
	// shape enumerates in a different order, so serving it a foreign
	// truncated prefix would break sequential parity — the cache treats
	// such lookups as misses.
	truncated bool

	mu       sync.Mutex
	scores   []score.Scores
	scored   bool
	scoredBy any
}

// NewEntry builds an entry from deduplicated matches (already capped
// and in enumeration order) and their canonical keys, as returned by
// match.FindAllDedupedCappedKeys. keys may be nil when no caller
// needs per-match identities.
func NewEntry(matches []match.Match, keys []string) *Entry {
	e := &Entry{matches: matches, keys: keys}
	if keys == nil {
		e.keys = make([]string, len(matches))
	}
	if len(matches) > 0 {
		e.order = matches[0].Pattern
		e.k = len(matches[0].Data)
	}
	e.gpusArena = make([]int, len(matches)*e.k)
	for i, m := range matches {
		g := e.gpusArena[i*e.k : (i+1)*e.k]
		copy(g, m.Data)
		sort.Ints(g)
	}
	return e
}

// MarkTruncated records that the entry's candidate list was cut off by
// a candidate cap. Truncated entries are served only to requests whose
// pattern is structurally identical to the one they were enumerated
// for (see Cache.GetFor).
func (e *Entry) MarkTruncated() { e.truncated = true }

// Matches returns the cached matches in enumeration order. Read-only.
func (e *Entry) Matches() []match.Match { return e.matches }

// Key returns the canonical key of match i — its equivalence-class
// identity, used as the final deterministic tie-break when selecting
// among equally scored candidates.
func (e *Entry) Key(i int) string { return e.keys[i] }

// GPUs returns the ascending GPU set of match i as a view into the
// entry's arena. Read-only.
func (e *Entry) GPUs(i int) []int {
	return e.gpusArena[i*e.k : (i+1)*e.k : (i+1)*e.k]
}

// Len returns the number of cached matches.
func (e *Entry) Len() int { return len(e.matches) }

// Scores returns the per-match MAPA scores, computing them with
// compute on first use; workers > 1 parallelizes the fill. scorer
// identifies the scoring model the values come from (the policy's
// *score.Scorer): calls with the scorer that filled the entry return
// the cached slice, while a different scorer recomputes, so swapping
// a policy's bandwidth model under a warm cache never serves another
// model's scores. Safe for concurrent use; the returned slice is
// read-only.
//
// The scores of a match are functions of its data-side image (GPU set
// and used links), which isomorphic request shapes agree on, so a
// fill by one build of a shape is valid for every isomorphic build.
func (e *Entry) Scores(scorer any, workers int, compute func(i int, m match.Match) score.Scores) []score.Scores {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.scored && e.scoredBy == scorer {
		return e.scores
	}
	out := make([]score.Scores, len(e.matches))
	if workers > len(e.matches) {
		workers = len(e.matches)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(start int) {
				defer wg.Done()
				for i := start; i < len(e.matches); i += workers {
					out[i] = compute(i, e.matches[i])
				}
			}(w)
		}
		wg.Wait()
	} else {
		for i, m := range e.matches {
			out[i] = compute(i, m)
		}
	}
	e.scores = out
	e.scored = true
	e.scoredBy = scorer
	return out
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits, Misses, Evictions uint64
	// Entries is the total cached view count across shards; Shards is
	// the number of distinct canonical pattern shapes with a shard.
	Entries, Shards int
}

type item struct {
	mask string
	ent  *Entry
}

// shard is one canonical pattern's LRU of availability-state views.
type shard struct {
	entries map[string]*list.Element // free-GPU mask -> element
	lru     *list.List               // front = most recently used
}

// Cache is the tier-2 filtered-view cache, bound to one topology:
// candidate lists keyed by (canonical pattern, free-GPU bitmask),
// sharded per pattern with an independent LRU per shard. It is safe
// for concurrent use.
type Cache struct {
	mu       sync.Mutex
	top      *topology.Topology
	shardCap int
	shards   map[string]*shard // canonical fingerprint -> shard
	stats    Stats
}

// New returns a cache for the given topology. capacity bounds each
// pattern shard's entry count; <= 0 uses DefaultShardCapacity.
func New(top *topology.Topology, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultShardCapacity
	}
	return &Cache{
		top:      top,
		shardCap: capacity,
		shards:   make(map[string]*shard),
	}
}

// Bound reports whether the cache was built for exactly this topology
// value. Policies bypass the cache on a mismatch, so a policy attached
// to one machine never serves another machine's embeddings.
func (c *Cache) Bound(top *topology.Topology) bool {
	return c != nil && c.top == top
}

// GetFor returns the cached entry for the request pattern on the given
// availability state, along with the Pattern order that expresses the
// entry's matches in the request's vertex IDs (nil when the entry was
// enumerated for a structurally identical shape). The lookup is
// canonical: isomorphic builds of one shape share entries — except
// cap-truncated ones, which are valid only for the exact shape they
// were enumerated for (a truncated prefix of another build's
// enumeration order is not this build's prefix) and so miss for any
// other build.
func (c *Cache) GetFor(pattern, avail *graph.Graph) (*Entry, []int, bool) {
	ci := canon.info(pattern)
	mask := avail.VertexBitsetView().String()
	c.mu.Lock()
	sh, ok := c.shards[ci.canon]
	if !ok {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, nil, false
	}
	el, ok := sh.entries[mask]
	if !ok {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, nil, false
	}
	ent := el.Value.(*item).ent
	if ent.truncated && ent.patternFP != ci.exact {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, nil, false
	}
	sh.lru.MoveToFront(el)
	c.stats.Hits++
	c.mu.Unlock()
	return ent, canon.remap(ent.patternFP, ci, ent.order), true
}

// PutFor stores ent as the view for (pattern, avail) and returns the
// canonical entry for that state with its order remap, exactly like
// GetFor: if another goroutine stored an entry first, the existing one
// wins so every caller scores and selects over the same slice.
// Insertion may evict the shard's least recently used view; other
// shards are untouched.
func (c *Cache) PutFor(pattern, avail *graph.Graph, ent *Entry) (*Entry, []int) {
	ci := canon.info(pattern)
	if ent.patternFP == "" {
		ent.patternFP = ci.exact
	}
	mask := avail.VertexBitsetView().String()
	c.mu.Lock()
	sh, ok := c.shards[ci.canon]
	if !ok {
		sh = &shard{entries: make(map[string]*list.Element), lru: list.New()}
		c.shards[ci.canon] = sh
	}
	if el, ok := sh.entries[mask]; ok {
		existing := el.Value.(*item).ent
		if !(existing.truncated && existing.patternFP != ci.exact) {
			sh.lru.MoveToFront(el)
			c.mu.Unlock()
			return existing, canon.remap(existing.patternFP, ci, existing.order)
		}
		// The stored entry is another build's truncated prefix —
		// unusable for this shape (see GetFor) — so the caller's freshly
		// derived entry replaces it.
		sh.lru.MoveToFront(el)
		el.Value.(*item).ent = ent
		c.mu.Unlock()
		return ent, canon.remap(ent.patternFP, ci, ent.order)
	}
	sh.entries[mask] = sh.lru.PushFront(&item{mask: mask, ent: ent})
	for sh.lru.Len() > c.shardCap {
		last := sh.lru.Back()
		sh.lru.Remove(last)
		delete(sh.entries, last.Value.(*item).mask)
		c.stats.Evictions++
	}
	c.mu.Unlock()
	return ent, canon.remap(ent.patternFP, ci, ent.order)
}

// Clear drops every entry (topology reconfiguration, tests). Counters
// survive.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shards = make(map[string]*shard)
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Shards = len(c.shards)
	for _, sh := range c.shards {
		s.Entries += sh.lru.Len()
	}
	return s
}
