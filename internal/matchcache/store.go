package matchcache

import (
	"sync"

	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/topology"
)

// DefaultUniverseCapacity bounds how many equivalence classes an
// idle-state universe may hold. A shape whose idle enumeration exceeds
// the bound is marked incomplete and never filtered — decisions for it
// fall back to searching, exactly the pre-universe behavior — so the
// bound caps both the one-time build cost and resident memory on large
// machines.
const DefaultUniverseCapacity = 200000

// StoreStats is a snapshot of the universe store's counters.
type StoreStats struct {
	// Universes counts complete idle-state universes built (warmed or
	// on demand); Incomplete counts shapes whose enumeration overflowed
	// the capacity and were marked unusable.
	Universes, Incomplete int
	// FilterServed counts miss decisions answered by mask-filtering a
	// universe — each one a subgraph-isomorphism search avoided.
	// FilterRejected counts miss decisions the store declined
	// (incomplete universe, or a cap-truncated filter for a pattern
	// that is isomorphic but not structurally identical to the
	// universe's — the one case where filtering could reorder the
	// truncated candidate prefix).
	FilterServed, FilterRejected uint64
}

// universeSlot holds one canonical shape's universe, built at most
// once. pattern and patternFP record the shape the universe's matches
// are expressed in; isomorphic requests remap through the canonizer.
type universeSlot struct {
	once      sync.Once
	u         *match.Universe
	pattern   *graph.Graph
	patternFP string
}

// Store is the tier-1 idle-state universe store: one complete
// deduplicated enumeration per (topology, canonical pattern), computed
// once — optionally warmed at construction time — and shared by every
// cache and policy bound to the topology. It is safe for concurrent
// use and is designed to be shared across engines comparing policies
// on the same machine.
type Store struct {
	mu        sync.Mutex
	top       *topology.Topology
	capacity  int
	universes map[string]*universeSlot // canonical fingerprint -> slot
	stats     StoreStats
}

// NewStore returns a universe store for the topology. capacity bounds
// each universe's class count; <= 0 uses DefaultUniverseCapacity.
func NewStore(top *topology.Topology, capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultUniverseCapacity
	}
	return &Store{
		top:       top,
		capacity:  capacity,
		universes: make(map[string]*universeSlot),
	}
}

// Bound reports whether the store was built for exactly this topology
// value, mirroring Cache.Bound: policies bypass an unbound store.
func (s *Store) Bound(top *topology.Topology) bool {
	return s != nil && s.top == top
}

// slot returns the canonical shape's slot, creating it (unbuilt) on
// first sight. The universe itself is built outside the store lock.
func (s *Store) slot(ci *canonInfo, pattern *graph.Graph) *universeSlot {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl, ok := s.universes[ci.canon]
	if !ok {
		sl = &universeSlot{pattern: pattern, patternFP: ci.exact}
		s.universes[ci.canon] = sl
	}
	return sl
}

// universe returns the built universe for the canonical shape,
// building it on first use with the given worker count.
func (s *Store) universe(ci *canonInfo, pattern *graph.Graph, workers int) *universeSlot {
	sl := s.slot(ci, pattern)
	sl.once.Do(func() {
		sl.u = match.BuildUniverse(sl.pattern, s.top.Graph, s.capacity, workers)
		s.mu.Lock()
		if sl.u.Complete() {
			s.stats.Universes++
		} else {
			s.stats.Incomplete++
		}
		s.mu.Unlock()
	})
	return sl
}

// Warm precomputes idle-state universes for the given patterns — the
// init-time enumeration MAPA pays once per shape instead of on the
// first decision. It returns how many complete universes the store now
// holds for the requested shapes (already-warm shapes count).
func (s *Store) Warm(workers int, patterns ...*graph.Graph) int {
	n := 0
	for _, p := range patterns {
		if sl := s.universe(canon.info(p), p, workers); sl.u.Complete() {
			n++
		}
	}
	return n
}

// FilteredEntry derives the candidate entry for (pattern, avail) by
// mask-filtering the shape's idle-state universe: each stored
// embedding survives exactly when its GPU bitset is a subset of the
// free-GPU mask. The returned entry is byte-identical to a fresh
// capped sequential enumeration on avail (see match.Universe), and
// order carries the request pattern's vertex IDs for the entry's
// matches when the universe was built from an isomorphic-but-not-
// identical shape (nil otherwise).
//
// ok is false when the store cannot answer soundly — the universe
// overflowed its capacity, or the filter was truncated by maxCandidates
// for a structurally different request shape — and the caller must
// fall back to searching. The universe is built on first use for the
// shape, so even unwarmed shapes pay the idle enumeration once, not
// per availability state.
//
// Like the cache key, filtering relies on the Allocator.Allocate
// contract that avail is the induced subgraph of the bound topology
// over the free GPUs.
func (s *Store) FilteredEntry(pattern, avail *graph.Graph, maxCandidates, workers int) (ent *Entry, order []int, ok bool) {
	ci := canon.info(pattern)
	sl := s.universe(ci, pattern, workers)
	reject := func() (*Entry, []int, bool) {
		s.mu.Lock()
		s.stats.FilterRejected++
		s.mu.Unlock()
		return nil, nil, false
	}
	if !sl.u.Complete() {
		return reject()
	}
	idx, truncated := sl.u.Filter(avail.VertexBitset(), maxCandidates)
	if truncated && sl.patternFP != ci.exact {
		return reject()
	}
	ms := make([]match.Match, len(idx))
	keys := make([]string, len(idx))
	for j, i := range idx {
		ms[j] = sl.u.Match(i)
		keys[j] = sl.u.Key(i)
	}
	ent = NewEntry(ms, keys)
	ent.patternFP = sl.patternFP
	if truncated {
		ent.MarkTruncated()
	}
	order = canon.remap(sl.patternFP, ci, sl.u.Order())
	s.mu.Lock()
	s.stats.FilterServed++
	s.mu.Unlock()
	return ent, order, true
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
