package matchcache

import (
	"sort"
	"sync"
	"time"

	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// DefaultUniverseCapacity bounds how many equivalence classes an
// idle-state universe may hold. A shape whose idle enumeration exceeds
// the bound is marked incomplete and never filtered — decisions for it
// fall back to searching, exactly the pre-universe behavior — so the
// bound caps both the one-time build cost and resident memory on large
// machines.
const DefaultUniverseCapacity = 200000

// ShapeBuild records one universe build: the shape's size, the
// resulting class count, which worker count built it, how long the
// enumeration took, and the work-stealing partitioner's claimed-cost
// imbalance (1 for sequential builds). Build timings sit on the
// serving path of every cold start — a topology-aware allocator must
// come up on daemon start before it can place anything — so the store
// keeps them as first-class stats.
type ShapeBuild struct {
	// Vertices and Edges describe the canonical pattern built.
	Vertices, Edges int
	// Classes is the universe's deduplicated class count; Complete is
	// false when the enumeration overflowed the store capacity.
	Classes  int
	Complete bool
	// Workers is the worker count the build ran with; Duration the
	// wall time of the enumeration.
	Workers  int
	Duration time.Duration
	// CostImbalance is max/min of the per-worker claimed estimated
	// cost (see match.BuildStats); 1 for sequential builds. On hosts
	// with fewer cores than workers one goroutine can drain the queue
	// (+Inf); PlanImbalance is the host-independent plan metric.
	CostImbalance float64
	// PlanImbalance is the chunk plan's idealized claimed-cost
	// imbalance (match.PlanImbalance); 1 for sequential builds.
	PlanImbalance float64
	// Calibrated reports whether the build's chunk plan came from
	// measured per-root timings of an earlier build of this (topology,
	// shape) pair (the process-wide EWMA calibration) rather than the
	// static degree-product estimate. Always false for sequential
	// builds.
	Calibrated bool
}

// StoreStats is a snapshot of the universe store's counters.
type StoreStats struct {
	// Universes counts complete idle-state universes built (warmed or
	// on demand); Incomplete counts shapes whose enumeration overflowed
	// the capacity and were marked unusable.
	Universes, Incomplete int
	// FilterServed counts miss decisions answered by mask-filtering a
	// universe — each one a subgraph-isomorphism search avoided.
	// FilterRejected counts miss decisions the store declined
	// (incomplete universe, or a cap-truncated filter for a pattern
	// that is isomorphic but not structurally identical to the
	// universe's — the one case where filtering could reorder the
	// truncated candidate prefix).
	FilterServed, FilterRejected uint64
	// Builds records every universe enumeration in completion order;
	// BuildTime is their summed wall time.
	Builds    []ShapeBuild
	BuildTime time.Duration
	// Tables counts score tables built (the static-metric
	// precomputation behind the table-served selection path);
	// TableTime is their summed build wall time.
	Tables    int
	TableTime time.Duration
	// Repairs counts RepairEdge calls (one per link-degradation event);
	// RepairedCandidates the table entries they re-derived — the
	// embeddings touching the changed edge, not the whole universe —
	// and RepairTime their summed wall time.
	Repairs            int
	RepairedCandidates int
	RepairTime         time.Duration
}

// universeSlot holds one canonical shape's universe, built at most
// once, and its lazily built score table. pattern and patternFP record
// the shape the universe's matches are expressed in; isomorphic
// requests remap through the canonizer.
type universeSlot struct {
	once      sync.Once
	u         *match.Universe
	pattern   *graph.Graph
	patternFP string

	// table is the shape's precomputed static score table, built at
	// most once — during Warm, or on first use by the table-served
	// selection path — and only for complete universes with tables
	// enabled. nil otherwise.
	tableOnce sync.Once
	table     *score.Table
}

// Store is the tier-1 idle-state universe store: one complete
// deduplicated enumeration per (topology, canonical pattern), computed
// once — optionally warmed at construction time — and shared by every
// cache and policy bound to the topology. It is safe for concurrent
// use and is designed to be shared across engines comparing policies
// on the same machine.
type Store struct {
	mu           sync.Mutex
	top          *topology.Topology
	graphFP      string // structural fingerprint of top.Graph, for calibration keys
	capacity     int
	buildWorkers int
	tablesOff    bool
	universes    map[string]*universeSlot // canonical fingerprint -> slot
	builtTables  []*universeSlot          // slots whose score table is built, for RepairEdge
	stats        StoreStats
}

// NewStore returns a universe store for the topology. capacity bounds
// each universe's class count; <= 0 uses DefaultUniverseCapacity.
func NewStore(top *topology.Topology, capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultUniverseCapacity
	}
	return &Store{
		top: top,
		// Measured root costs are a function of the data graph's
		// structure, so the calibration keys by graph content — not by
		// topology name, which distinct graphs can share (e.g.
		// different MIG splits of one machine).
		graphFP:   top.Graph.Fingerprint(),
		capacity:  capacity,
		universes: make(map[string]*universeSlot),
	}
}

// Bound reports whether the store was built for exactly this topology
// value, mirroring Cache.Bound: policies bypass an unbound store.
func (s *Store) Bound(top *topology.Topology) bool {
	return s != nil && s.top == top
}

// SetBuildWorkers sets a floor on the worker count of every universe
// build this store runs, whichever layer triggers it: an on-demand
// build from a sequential decision path still enumerates with n
// workers. n < 2 restores caller-supplied worker counts only. Safe to
// call concurrently with builds; it affects builds that start after
// the call.
func (s *Store) SetBuildWorkers(n int) {
	s.mu.Lock()
	s.buildWorkers = n
	s.mu.Unlock()
}

// effectiveWorkers resolves a caller-supplied worker count against the
// store's build-worker floor.
func (s *Store) effectiveWorkers(workers int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.buildWorkers > workers {
		return s.buildWorkers
	}
	return workers
}

// SetScoreTables enables or disables score-table precomputation (on by
// default). With tables off, no slot ever builds one and the
// table-served selection path declines, so policies fall back to the
// entry-materializing tiers — the knob behind mapa.WithoutScoreTables
// and the table-vs-dynamic benchmarks. Intended to be set before the
// store serves decisions; a table already built stays built but is no
// longer handed out.
func (s *Store) SetScoreTables(enabled bool) {
	s.mu.Lock()
	s.tablesOff = !enabled
	s.mu.Unlock()
}

// scoreTablesEnabled reports whether the store may build and serve
// score tables.
func (s *Store) scoreTablesEnabled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.tablesOff
}

// ensureTable returns the slot's score table, building it on first use
// with up to `workers` goroutines. It returns nil — and the table-served
// path falls back — when tables are disabled or the slot's universe is
// incomplete. The build runs outside the store lock; concurrent callers
// for one shape converge on a single build via the slot's once.
func (s *Store) ensureTable(sl *universeSlot, workers int) *score.Table {
	if !s.scoreTablesEnabled() {
		return nil
	}
	sl.tableOnce.Do(func() {
		if !sl.u.Complete() {
			return
		}
		start := time.Now()
		sl.table = score.BuildTable(s.top, sl.pattern, sl.u, workers)
		elapsed := time.Since(start)
		s.mu.Lock()
		s.stats.Tables++
		s.stats.TableTime += elapsed
		s.builtTables = append(s.builtTables, sl)
		s.mu.Unlock()
	})
	return sl.table
}

// RepairEdge absorbs a link-degradation event — the weight of machine
// edge (u,v) changed — into every score table the store has built, and
// returns how many table entries were re-derived. Hardware graphs are
// complete, so a weight change never alters which embeddings exist:
// the universes and their enumeration order stand untouched, and only
// the precomputed per-candidate metrics of the embeddings that
// actually price the edge go stale. Those are exactly the candidates
// whose GPU set contains BOTH endpoints (the ring-channel
// decomposition reads only intra-allocation links; see
// score.Table.RepairEdge), so repair is one bit-probe pass per table
// plus a refill of the affected entries — no enumeration, no rebuild.
//
// Tables built after the event need no repair: BuildTable reads the
// mutated graph. The caller must have already updated the topology's
// graphs and invalidated the process-wide mix memo
// (score.InvalidateMixes), and must serialize RepairEdge with
// decisions on this store, as mapa.System does under its lock.
func (s *Store) RepairEdge(u, v int) int {
	start := time.Now()
	s.mu.Lock()
	tables := append([]*universeSlot(nil), s.builtTables...)
	s.mu.Unlock()
	repaired := 0
	for _, sl := range tables {
		repaired += sl.table.RepairEdge(u, v)
	}
	elapsed := time.Since(start)
	s.mu.Lock()
	s.stats.Repairs++
	s.stats.RepairedCandidates += repaired
	s.stats.RepairTime += elapsed
	s.mu.Unlock()
	return repaired
}

// slot returns the canonical shape's slot, creating it (unbuilt) on
// first sight. The universe itself is built outside the store lock.
func (s *Store) slot(ci *canonInfo, pattern *graph.Graph) *universeSlot {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl, ok := s.universes[ci.canon]
	if !ok {
		sl = &universeSlot{pattern: pattern, patternFP: ci.exact}
		s.universes[ci.canon] = sl
	}
	return sl
}

// universe returns the built universe for the canonical shape,
// building it on first use with the given worker count subject to the
// store's build-worker floor. Decision paths (FilteredEntry,
// Views.Entry) come through here; Warm resolves the floor once for its
// whole budget and uses universeWith directly.
func (s *Store) universe(ci *canonInfo, pattern *graph.Graph, workers int) *universeSlot {
	return s.universeWith(ci, pattern, s.effectiveWorkers(workers))
}

// universeWith builds the canonical shape's universe on first use with
// exactly the given worker count, recording the build's timing and
// partitioner balance. Parallel builds plan their chunks from the
// process-wide EWMA cost calibration — measured per-root timings of any
// earlier build of this (topology, shape) pair — and feed their own
// timings back, so repeated builds tighten the work-stealing plan.
// Concurrent callers for the same shape converge on one build via the
// slot's once; callers for distinct shapes build independently — the
// concurrency Warm exploits.
func (s *Store) universeWith(ci *canonInfo, pattern *graph.Graph, workers int) *universeSlot {
	sl := s.slot(ci, pattern)
	sl.once.Do(func() {
		start := time.Now()
		calKey := s.graphFP + "|" + ci.canon
		u, bs := match.BuildUniverseCalibrated(sl.pattern, s.top.Graph, s.capacity, workers,
			match.DefaultCostCalibration(), calKey)
		build := ShapeBuild{
			Vertices:      sl.pattern.NumVertices(),
			Edges:         sl.pattern.NumEdges(),
			Classes:       u.Len(),
			Complete:      u.Complete(),
			Workers:       workers,
			Duration:      time.Since(start),
			CostImbalance: bs.CostImbalance(), // nil-safe: 1 for sequential builds
			PlanImbalance: 1,
		}
		if bs != nil {
			build.PlanImbalance = bs.Plan
			build.Calibrated = bs.Calibrated
		}
		sl.u = u
		s.mu.Lock()
		if u.Complete() {
			s.stats.Universes++
		} else {
			s.stats.Incomplete++
		}
		s.stats.Builds = append(s.stats.Builds, build)
		s.stats.BuildTime += build.Duration
		s.mu.Unlock()
	})
	return sl
}

// Warm precomputes idle-state universes for the given patterns — the
// init-time enumeration MAPA pays once per shape instead of on the
// first decision. It returns how many complete universes the store now
// holds for the requested shapes (already-warm shapes count).
//
// With workers > 1 (after applying the SetBuildWorkers floor) distinct
// shapes build concurrently under one bounded worker budget: up to
// `workers` enumeration goroutines in total, split statically between
// concurrent shape builds and each build's internal work-stealing
// pool. Shapes are queued in descending estimated build cost (the same
// root cost model the partitioner plans with, summed — no enumeration
// needed), so the dominant shape starts at t=0 instead of landing on
// the tail after the budget has drained to a single sequential worker.
// The store stays fully usable while warming runs — a concurrent
// FilteredEntry or Views.Entry for a shape being warmed blocks only on
// that shape's build (sync.Once), and any other shape is unaffected —
// so callers may serve decisions before Warm returns.
func (s *Store) Warm(workers int, patterns ...*graph.Graph) int {
	workers = s.effectiveWorkers(workers)
	// The budget splits over *distinct* universes, so collapse the
	// request to one representative per canonical shape first — warm
	// sets routinely carry isomorphic duplicates (Ring(3) and
	// AllToAll(3) are the same canonical triangle), and counting them
	// as separate builds would starve every real build's pool.
	infos := make([]*canonInfo, len(patterns))
	var uniq []int
	seen := make(map[string]bool, len(patterns))
	for i, p := range patterns {
		infos[i] = canon.info(p)
		if !seen[infos[i].canon] {
			seen[infos[i].canon] = true
			uniq = append(uniq, i)
		}
	}
	if workers < 2 || len(uniq) < 2 {
		for _, i := range uniq {
			s.universeWith(infos[i], patterns[i], workers)
		}
	} else {
		// Order the queue by estimated build cost, most expensive
		// first.
		type costed struct {
			idx  int
			cost float64
		}
		queue := make([]costed, len(uniq))
		for j, i := range uniq {
			queue[j] = costed{idx: i, cost: match.EstimateBuildCost(patterns[i], s.top.Graph)}
		}
		sort.SliceStable(queue, func(a, b int) bool { return queue[a].cost > queue[b].cost })
		uniq = uniq[:0]
		for _, q := range queue {
			uniq = append(uniq, q.idx)
		}
		// Split the worker budget: `builds` shapes in flight, each
		// enumerating with workers/builds goroutines — the first
		// workers%builds warm workers take one extra, so the whole
		// requested budget is in use (universeWith applies no further
		// floor).
		builds := workers
		if builds > len(uniq) {
			builds = len(uniq)
		}
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < builds; w++ {
			inner := workers / builds
			if w < workers%builds {
				inner++
			}
			wg.Add(1)
			go func(inner int) {
				defer wg.Done()
				for i := range next {
					s.universeWith(infos[i], patterns[i], inner)
				}
			}(inner)
		}
		for _, i := range uniq {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	// Warm the score tables of the complete universes just built, under
	// the same worker budget: tables are per-candidate pure functions,
	// so one shape at a time with the full budget utilizes it best, and
	// link mixes shared across shapes (same GPU sets) are decomposed
	// once via the process-wide memo.
	if s.scoreTablesEnabled() {
		for _, i := range uniq {
			if sl := s.universeWith(infos[i], patterns[i], 1); sl.u.Complete() {
				s.ensureTable(sl, workers)
			}
		}
	}
	// Count per requested pattern (duplicates included), preserving the
	// sequential Warm's return semantics; every universe is already
	// built, so these lookups only read slots.
	n := 0
	for i, p := range patterns {
		if sl := s.universeWith(infos[i], p, 1); sl.u.Complete() {
			n++
		}
	}
	return n
}

// Ensure builds the pattern's idle-state universe — and, when score
// tables are enabled and the universe is complete, its score table —
// if either is missing, with up to `workers` goroutines (subject to
// the SetBuildWorkers floor). Already-built shapes return immediately
// after a memoized fingerprint lookup, so Ensure is cheap enough to
// call per request: it is the prewarm hook mapa.System runs *outside*
// its state lock, so a cold shape's enumeration never stalls
// concurrent decisions, releases, or health events. Concurrent Ensure
// calls for one shape converge on a single build via the slot's once.
func (s *Store) Ensure(pattern *graph.Graph, workers int) {
	ci := canon.info(pattern)
	sl := s.universe(ci, pattern, workers)
	if sl.u.Complete() {
		s.ensureTable(sl, workers)
	}
}

// FilteredEntry derives the candidate entry for (pattern, avail) by
// mask-filtering the shape's idle-state universe: each stored
// embedding survives exactly when its GPU bitset is a subset of the
// free-GPU mask. The returned entry is byte-identical to a fresh
// capped sequential enumeration on avail (see match.Universe), and
// order carries the request pattern's vertex IDs for the entry's
// matches when the universe was built from an isomorphic-but-not-
// identical shape (nil otherwise).
//
// ok is false when the store cannot answer soundly — the universe
// overflowed its capacity, or the filter was truncated by maxCandidates
// for a structurally different request shape — and the caller must
// fall back to searching. The universe is built on first use for the
// shape, so even unwarmed shapes pay the idle enumeration once, not
// per availability state.
//
// Like the cache key, filtering relies on the Allocator.Allocate
// contract that avail is the induced subgraph of the bound topology
// over the free GPUs.
func (s *Store) FilteredEntry(pattern, avail *graph.Graph, maxCandidates, workers int) (ent *Entry, order []int, ok bool) {
	ci := canon.info(pattern)
	sl := s.universe(ci, pattern, workers)
	reject := func() (*Entry, []int, bool) {
		s.mu.Lock()
		s.stats.FilterRejected++
		s.mu.Unlock()
		return nil, nil, false
	}
	if !sl.u.Complete() {
		return reject()
	}
	idx, truncated := sl.u.Filter(avail.VertexBitsetView(), maxCandidates)
	if truncated && sl.patternFP != ci.exact {
		return reject()
	}
	ms := make([]match.Match, len(idx))
	keys := make([]string, len(idx))
	for j, i := range idx {
		ms[j] = sl.u.Match(i)
		keys[j] = sl.u.Key(i)
	}
	ent = NewEntry(ms, keys)
	ent.patternFP = sl.patternFP
	if truncated {
		ent.MarkTruncated()
	}
	order = canon.remap(sl.patternFP, ci, sl.u.Order())
	s.mu.Lock()
	s.stats.FilterServed++
	s.mu.Unlock()
	return ent, order, true
}

// Stats returns a snapshot of the store's counters. The Builds slice
// is copied, so the snapshot stays stable while builds continue.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.Builds = append([]ShapeBuild(nil), s.stats.Builds...)
	return out
}
