package matchcache

import (
	"testing"

	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/topology"
)

// ringN builds a k-cycle pattern 0-1-...-k-1-0.
func ringN(k int) *graph.Graph {
	g := graph.New()
	for v := 0; v < k; v++ {
		g.MustAddEdge(v, (v+1)%k, 1, 0)
	}
	return g
}

// entriesEqual compares two entries' candidate lists byte-wise:
// matches (pattern and data slices), keys, and GPU sets.
func entriesEqual(t *testing.T, got, want *Entry, step string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: entry has %d candidates, want %d", step, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Key(i) != want.Key(i) {
			t.Fatalf("%s candidate %d: key %q, want %q", step, i, got.Key(i), want.Key(i))
		}
		g, w := got.Matches()[i], want.Matches()[i]
		for j := range w.Data {
			if g.Data[j] != w.Data[j] || g.Pattern[j] != w.Pattern[j] {
				t.Fatalf("%s candidate %d: match %v->%v, want %v->%v",
					step, i, g.Pattern, g.Data, w.Pattern, w.Data)
			}
		}
	}
}

// TestViewsEntryMatchesFilteredEntryUnderChurn drives allocate/release
// deltas through a view set and checks every serve against the store's
// filter path (itself pinned byte-identical to a fresh search).
func TestViewsEntryMatchesFilteredEntryUnderChurn(t *testing.T) {
	top := topology.DGXV100()
	pattern := ringN(3)
	store := NewStore(top, 0)
	views := store.NewViews()

	free := append([]int(nil), top.GPUs()...)
	remove := func(gpus ...int) {
		views.Allocate(gpus)
		next := free[:0]
		for _, g := range free {
			busy := false
			for _, b := range gpus {
				busy = busy || b == g
			}
			if !busy {
				next = append(next, g)
			}
		}
		free = next
	}
	check := func(step string) {
		t.Helper()
		avail := top.Graph.InducedSubgraph(free)
		got, gotOrder, ok := views.Entry(pattern, avail, 0, 1)
		if !ok {
			t.Fatalf("%s: view entry rejected", step)
		}
		want, wantOrder, ok := store.FilteredEntry(pattern, avail, 0, 1)
		if !ok {
			t.Fatalf("%s: filtered entry rejected", step)
		}
		entriesEqual(t, got, want, step)
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("%s: order %v, want %v", step, gotOrder, wantOrder)
		}
	}

	check("idle")
	remove(0, 3)
	check("allocate {0,3}")
	remove(5)
	check("allocate {5}")
	views.Release([]int{3})
	free = append(free, 3)
	check("release {3}")
	if vs := views.Stats(); vs.Views != 1 || vs.Served != 4 || vs.Rejected != 0 {
		t.Fatalf("view stats = %+v, want 1 view, 4 served, 0 rejected", vs)
	}
}

// TestViewsRejectsOutOfSyncStream pins the stream cross-check: an
// availability graph whose free mask differs from the published deltas
// must be declined, not served stale candidates.
func TestViewsRejectsOutOfSyncStream(t *testing.T) {
	top := topology.DGXV100()
	pattern := ringN(3)
	views := NewStore(top, 0).NewViews()
	views.Allocate([]int{0, 1})
	// Caller presents the idle machine although the stream says 0 and 1
	// are busy.
	if _, _, ok := views.Entry(pattern, top.Graph, 0, 1); ok {
		t.Fatal("out-of-sync avail was served from the live view")
	}
	if vs := views.Stats(); vs.Rejected != 1 || vs.Served != 0 {
		t.Fatalf("view stats = %+v, want the mismatch rejected", vs)
	}
	// The matching state must serve.
	if _, _, ok := views.Entry(pattern, top.Graph.Without([]int{0, 1}), 0, 1); !ok {
		t.Fatal("in-sync avail was rejected")
	}
}

// TestViewsRejectsIncompleteUniverse: a shape whose idle enumeration
// overflows the store capacity can never be viewed.
func TestViewsRejectsIncompleteUniverse(t *testing.T) {
	top := topology.DGXV100()
	store := NewStore(top, 2) // triangle universe on a DGX-V is far larger
	views := store.NewViews()
	if _, _, ok := views.Entry(ringN(3), top.Graph, 0, 1); ok {
		t.Fatal("incomplete universe was served from a live view")
	}
	if vs := views.Stats(); vs.Views != 0 || vs.Rejected != 1 {
		t.Fatalf("view stats = %+v, want no view built and 1 rejection", vs)
	}
}

// TestViewsTruncatedNotServedToIsomorphicBuild mirrors the cache and
// store rule: a cap-truncated candidate list is the enumeration-order
// prefix of the build it was derived for, so a structurally different
// isomorphic build must be declined.
func TestViewsTruncatedNotServedToIsomorphicBuild(t *testing.T) {
	top := topology.DGXV100()
	ringA := ringN(4)    // 0-1-2-3-0
	ringB := graph.New() // 0-2-1-3-0: isomorphic, different fingerprint
	ringB.MustAddEdge(0, 2, 1, 0)
	ringB.MustAddEdge(2, 1, 1, 0)
	ringB.MustAddEdge(1, 3, 1, 0)
	ringB.MustAddEdge(3, 0, 1, 0)
	views := NewStore(top, 0).NewViews()

	ent, _, ok := views.Entry(ringA, top.Graph, 2, 1)
	if !ok || !ent.truncated {
		t.Fatalf("build A must be served its own truncated prefix (ok=%v)", ok)
	}
	if _, _, ok := views.Entry(ringB, top.Graph, 2, 1); ok {
		t.Fatal("foreign truncated prefix was served to an isomorphic build")
	}
	// Untruncated serves cross builds fine, remapped.
	entB, orderB, ok := views.Entry(ringB, top.Graph, 0, 1)
	if !ok {
		t.Fatal("untruncated view must serve the isomorphic build")
	}
	if orderB == nil {
		t.Fatal("isomorphic build must receive an order remap")
	}
	m := match.Match{Pattern: orderB, Data: entB.Matches()[0].Data}
	if !match.IsEmbedding(ringB, top.Graph, m) {
		t.Fatal("remapped live-view match is not an embedding of the requester's build")
	}
}

// TestViewsBuildsMidStream pins the late-warm case: a shape first
// requested after deltas have been published initializes its view from
// the current mask, not the idle machine.
func TestViewsBuildsMidStream(t *testing.T) {
	top := topology.DGXV100()
	store := NewStore(top, 0)
	views := store.NewViews()
	views.Allocate([]int{2, 6, 7})
	avail := top.Graph.Without([]int{2, 6, 7})
	got, _, ok := views.Entry(ringN(3), avail, 0, 1)
	if !ok {
		t.Fatal("mid-stream first request was rejected")
	}
	want, _, ok := store.FilteredEntry(ringN(3), avail, 0, 1)
	if !ok {
		t.Fatal("filtered entry rejected")
	}
	entriesEqual(t, got, want, "mid-stream build")
}
