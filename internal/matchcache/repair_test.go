package matchcache

import (
	"testing"

	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// degrade mutates machine link (u,v) to weight w the way mapa.System
// does: both topology graphs plus the process-wide mix memo.
func degrade(t *testing.T, top *topology.Topology, u, v int, w float64) {
	t.Helper()
	e, ok := top.Graph.EdgeBetween(u, v)
	if !ok {
		t.Fatalf("topology %s has no edge (%d,%d)", top.Name, u, v)
	}
	top.Graph.MustAddEdge(u, v, w, e.Label)
	if pe, ok := top.Physical.EdgeBetween(u, v); ok {
		top.Physical.MustAddEdge(u, v, w, pe.Label)
	}
	score.InvalidateMixes(top)
}

// tableOf serves the warmed score table for a shape through the live
// path.
func tableOf(t *testing.T, s *Store, pattern *graph.Graph, top *topology.Topology) *score.Table {
	t.Helper()
	var out *score.Table
	ok := s.NewViews().SelectLive(pattern, top.Graph, 0, 1, func(_ *match.LiveView, _ *match.BandwidthAccounting, tbl *score.Table, _ []int, _ bool) {
		out = tbl
	})
	if !ok || out == nil {
		t.Fatalf("warmed shape %dv not table-served", pattern.NumVertices())
	}
	return out
}

// TestStoreRepairEdgeMatchesRebuild degrades a machine link, repairs
// the warmed store in place, and checks every candidate of every shape
// against a store rebuilt from scratch on the mutated topology: AggBW,
// the Eq. 3 internal constant, and the model predictions must be
// byte-identical — the repair is exact, not approximate.
func TestStoreRepairEdgeMatchesRebuild(t *testing.T) {
	top := topology.DGXV100()
	shapes := []*graph.Graph{tableRing(2), tableRing(3), tableRing(4)}
	s := NewStore(top, 0)
	s.Warm(2, shapes...)

	// Degrade NVLink (0,3) to PCIe-grade bandwidth, then repair.
	degrade(t, top, 0, 3, 10)
	repaired := s.RepairEdge(0, 3)
	if repaired == 0 {
		t.Fatal("RepairEdge repaired no candidates; ring universes contain {0,3} pairs")
	}
	st := s.Stats()
	if st.Repairs != 1 || st.RepairedCandidates != repaired || st.RepairTime <= 0 {
		t.Fatalf("repair stats %+v, want 1 repair, %d candidates, > 0 time", st, repaired)
	}

	// The oracle: a fresh store warmed on the already-mutated machine.
	oracle := NewStore(top, 0)
	oracle.Warm(2, shapes...)
	model := effbw.TrainedFor(top)
	for _, shape := range shapes {
		got := tableOf(t, s, shape, top)
		want := tableOf(t, oracle, shape, top)
		if got.Len() != want.Len() {
			t.Fatalf("%dv: repaired table has %d candidates, rebuilt %d", shape.NumVertices(), got.Len(), want.Len())
		}
		gm, wm := got.ForModel(model), want.ForModel(model)
		for i := 0; i < got.Len(); i++ {
			if got.AggBW(i) != want.AggBW(i) {
				t.Fatalf("%dv candidate %d %v: repaired AggBW %v, rebuilt %v", shape.NumVertices(), i, got.GPUs(i), got.AggBW(i), want.AggBW(i))
			}
			if got.Internal(i) != want.Internal(i) {
				t.Fatalf("%dv candidate %d %v: repaired Internal %v, rebuilt %v", shape.NumVertices(), i, got.GPUs(i), got.Internal(i), want.Internal(i))
			}
			if gm.EffBW(i) != wm.EffBW(i) {
				t.Fatalf("%dv candidate %d %v: repaired EffBW %v, rebuilt %v", shape.NumVertices(), i, got.GPUs(i), gm.EffBW(i), wm.EffBW(i))
			}
		}
	}
}

// TestRepairEdgeAffectedSetIsExact pins the targeting claim: repairing
// an edge re-derives exactly the candidates containing both endpoints,
// and a candidate holding one endpoint keeps its old values (they price
// identically on the old and new graph).
func TestRepairEdgeAffectedSetIsExact(t *testing.T) {
	top := topology.DGXV100()
	ring := tableRing(3)
	s := NewStore(top, 0)
	s.Warm(1, ring)
	tbl := tableOf(t, s, ring, top)
	want := 0
	for i := 0; i < tbl.Len(); i++ {
		set := tbl.Universe().Set(i)
		if set.Has(1) && set.Has(5) {
			want++
		}
	}
	degrade(t, top, 1, 5, 2)
	if got := s.RepairEdge(1, 5); got != want {
		t.Fatalf("RepairEdge(1,5) re-derived %d candidates, want exactly the %d containing both endpoints", got, want)
	}
}

// TestViewsUpdateEdgePreservedBW checks the tier-0 half of a
// degradation event: after Views.UpdateEdge the stream's bandwidth
// accounting must price Eq. 3 exactly as a fresh accounting over the
// mutated graph.
func TestViewsUpdateEdgePreservedBW(t *testing.T) {
	top := topology.DGXV100()
	ring := tableRing(3)
	s := NewStore(top, 0)
	s.Warm(1, ring)
	v := s.NewViews()
	v.Allocate([]int{2, 6})

	degrade(t, top, 0, 3, 5)
	v.UpdateEdge(0, 3, 5)

	free := top.Graph.VertexBitset()
	free.Unset(2)
	free.Unset(6)
	fresh := match.NewBandwidthAccounting(top.Graph, free, graph.Capacity(top.Graph))
	served := v.SelectLive(ring, top.Graph.InducedSubgraph(free.Members()), 0, 1, func(_ *match.LiveView, bw *match.BandwidthAccounting, _ *score.Table, _ []int, _ bool) {
		if bw.FreeWeight() != fresh.FreeWeight() {
			t.Errorf("FreeWeight %v after UpdateEdge, rebuilt %v", bw.FreeWeight(), fresh.FreeWeight())
		}
		for g := 0; g < graph.Capacity(top.Graph); g++ {
			if bw.FreeIncidentWeight(g) != fresh.FreeIncidentWeight(g) {
				t.Errorf("FreeIncidentWeight(%d) %v, rebuilt %v", g, bw.FreeIncidentWeight(g), fresh.FreeIncidentWeight(g))
			}
		}
	})
	if !served {
		t.Fatal("SelectLive declined the warmed shape after UpdateEdge")
	}
}
