// Fleet-scale template store and views: the node-symmetric
// generalization of the Store/Views pipeline.
//
// A topology.Fleet describes N nodes as instances of a handful of
// node-class topologies. Identical nodes are graph-isomorphic, so the
// idle-state universe and score table of a (node class, canonical
// shape) pair are built exactly once — on the class template, in
// node-local vertex IDs — and instantiated per node by vertex
// relabeling: a node's candidates are the template's candidates with
// the node's offset added. FleetStore holds those templates (memory
// and build time O(distinct node classes × shapes), not
// O(nodes × shapes)); FleetViews layers per-node live state on top —
// free/health masks, a node-local Eq. 3 bandwidth accounting, and
// lazy per-shape live views over the *shared* class universe — all
// maintained from the same tier-0 deltas the flat pipeline publishes.
//
// The decision path is hierarchical: the inter-node level works on the
// quotient graph of node classes using cheap per-node aggregates (the
// usable-GPU count prunes nodes that cannot host the pattern; the
// node's free-weight aggregate feeds the Eq. 3 translation below), and
// the intra-node level runs the ordinary table-served selection
// against the class template. Node-local scores translate to exact
// fleet-global values:
//
//   - AggBW and the Eq. 2 link mix read only intra-allocation edges,
//     which a single-node allocation draws entirely from the class
//     template — local values ARE global values.
//
//   - PreservedBW decomposes across the node boundary. Every
//     inter-node edge is the PCIe-class fallback (weight pcie), so
//     with F = Σ_j f_j usable GPUs fleet-wide, f_j usable in node j,
//     FW_j node j's local free weight, and k the pattern size:
//
//     totalFree  = Σ_j FW_j + pcie·(C(F,2) − Σ_j C(f_j,2))
//     global(S)  = local_j(S) + totalFree − FW_j − k·pcie·(F − f_j)
//
//     for any candidate S inside node j. All link bandwidths are
//     integral and far below 2^53, so these float sums are exact and
//     the translated values are bit-identical to the flat
//     accounting's.
//
// Determinism: GPU IDs are node-major with offsets ascending by node
// index, so any GPU set inside node i is lexicographically smaller
// than any inside node j > i — resolving equal-scored node winners to
// the lowest node index reproduces the flat selection order's
// lexicographic GPU-set tie-break exactly (the documented node-order
// rule the parity suites pin).
package matchcache

import (
	"sort"
	"sync"

	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// FleetStore is the tier-1 template store of a fleet: one ordinary
// Store per distinct node class, each building universes and score
// tables on its class template in node-local IDs. It is safe for
// concurrent use.
type FleetStore struct {
	fleet  *topology.Fleet
	stores []*Store // one per fleet.Classes entry
}

// NewFleetStore returns a template store for the fleet. capacity
// bounds each class universe's class count; <= 0 uses
// DefaultUniverseCapacity.
func NewFleetStore(f *topology.Fleet, capacity int) *FleetStore {
	fs := &FleetStore{fleet: f, stores: make([]*Store, len(f.Classes))}
	for i, c := range f.Classes {
		fs.stores[i] = NewStore(c, capacity)
	}
	return fs
}

// Fleet returns the fleet the store was built for.
func (fs *FleetStore) Fleet() *topology.Fleet { return fs.fleet }

// Bound reports whether the store serves exactly this fleet value.
func (fs *FleetStore) Bound(f *topology.Fleet) bool {
	return fs != nil && fs.fleet == f
}

// SetBuildWorkers sets the build-worker floor on every class store.
func (fs *FleetStore) SetBuildWorkers(n int) {
	for _, s := range fs.stores {
		s.SetBuildWorkers(n)
	}
}

// SetScoreTables enables or disables score-table precomputation on
// every class store. The hierarchical decision path requires tables;
// with them off FleetViews.SelectNodes declines every decision.
func (fs *FleetStore) SetScoreTables(enabled bool) {
	for _, s := range fs.stores {
		s.SetScoreTables(enabled)
	}
}

// Warm precomputes each class template's universes (and score tables)
// for the given patterns, skipping patterns larger than a class. The
// cost is per class, not per node: warming a 1,000-node single-class
// fleet builds exactly as much as warming a 2-node one. Returns the
// number of complete class universes now held for the requested
// patterns, summed over classes.
func (fs *FleetStore) Warm(workers int, patterns ...*graph.Graph) int {
	n := 0
	for i, s := range fs.stores {
		max := fs.fleet.Classes[i].NumGPUs()
		fit := make([]*graph.Graph, 0, len(patterns))
		for _, p := range patterns {
			if p.NumVertices() <= max {
				fit = append(fit, p)
			}
		}
		n += s.Warm(workers, fit...)
	}
	return n
}

// Ensure builds the pattern's class-template universe and score table
// on every class that can host it, if missing — the unlocked prewarm
// hook of the fleet decision path, mirroring Store.Ensure. Already-
// built shapes return after a memoized fingerprint lookup.
func (fs *FleetStore) Ensure(pattern *graph.Graph, workers int) {
	for i, s := range fs.stores {
		if pattern.NumVertices() <= fs.fleet.Classes[i].NumGPUs() {
			s.Ensure(pattern, workers)
		}
	}
}

// Stats merges the per-class store snapshots: universe, table, and
// build counters sum over node classes — the fleet's whole template
// footprint, independent of node count.
func (fs *FleetStore) Stats() StoreStats {
	var out StoreStats
	for _, s := range fs.stores {
		ss := s.Stats()
		out.Universes += ss.Universes
		out.Incomplete += ss.Incomplete
		out.FilterServed += ss.FilterServed
		out.FilterRejected += ss.FilterRejected
		out.Builds = append(out.Builds, ss.Builds...)
		out.BuildTime += ss.BuildTime
		out.Tables += ss.Tables
		out.TableTime += ss.TableTime
		out.Repairs += ss.Repairs
		out.RepairedCandidates += ss.RepairedCandidates
		out.RepairTime += ss.RepairTime
	}
	return out
}

// FleetViewStats is a snapshot of a fleet view set's counters.
type FleetViewStats struct {
	// Nodes is the fleet's node count; NodeViews counts per-node live
	// views actually materialized (lazy: only nodes that served a shape
	// pay one).
	Nodes, NodeViews int
	// Served counts decisions answered hierarchically (template path);
	// every one of them is table-served by construction. Rejected
	// counts decisions the fleet layer declined (incomplete universe,
	// tables disabled, or a binding candidate cap) and handed to the
	// caller's fallback.
	Served, Rejected uint64
}

// fleetSlot is one (node, canonical shape) live view over the shared
// class universe, plus the class score table resolved at ensure time.
type fleetSlot struct {
	lv        *match.LiveView
	patternFP string
	usl       *universeSlot
	tbl       *score.Table
}

// fleetNode is one node's live state, all in node-local vertex IDs.
type fleetNode struct {
	class     int
	off       int
	size      int
	free      graph.Bitset
	unhealthy graph.Bitset
	usable    graph.Bitset
	usableCnt int
	bw        *match.BandwidthAccounting
	slots     map[string]*fleetSlot
}

// FleetViews is the tier-0 layer of the fleet pipeline: per-node live
// state over one availability-state stream, fed the same global-ID
// GPU-set deltas a flat Views receives and split internally into
// node-local deltas. It is bound to one stream, like Views, and is
// safe for concurrent use.
type FleetViews struct {
	mu      sync.Mutex
	fs      *FleetStore
	nodes   []*fleetNode
	offsets []int // ascending node offsets, for locate
	stats   FleetViewStats

	one          [1]int       // reusable single-GPU delta buffer
	scratchNodes []int        // reusable eligible-node index buffer
	nd           NodeDecision // reusable callback argument (&nd escapes via sel)
}

// NewFleetViews returns a fleet view set tracking a fresh availability
// stream that starts with every node fully free and healthy.
func (fs *FleetStore) NewFleetViews() *FleetViews {
	fv := &FleetViews{
		fs:      fs,
		nodes:   make([]*fleetNode, fs.fleet.NumNodes()),
		offsets: fs.fleet.Offsets,
	}
	fv.stats.Nodes = fs.fleet.NumNodes()
	for j := range fv.nodes {
		c := fs.fleet.Class(j)
		cap := graph.Capacity(c.Graph)
		free := c.Graph.VertexBitset()
		fv.nodes[j] = &fleetNode{
			class:     fs.fleet.NodeClass[j],
			off:       fs.fleet.Offset(j),
			size:      c.NumGPUs(),
			free:      free,
			unhealthy: graph.NewBitset(cap),
			usable:    free.Clone(),
			usableCnt: c.NumGPUs(),
			bw:        match.NewBandwidthAccounting(c.Graph, free, cap),
			slots:     make(map[string]*fleetSlot),
		}
	}
	return fv
}

// Bound reports whether the view set serves exactly this fleet value.
func (fv *FleetViews) Bound(f *topology.Fleet) bool {
	return fv != nil && fv.fs.Bound(f)
}

// locate resolves a global GPU ID to its node and node-local ID.
// Offsets ascend, so this is one binary search; out-of-range IDs
// return a nil node (ignored, mirroring the flat layers' tolerance of
// out-of-capacity vertices).
func (fv *FleetViews) locate(g int) (*fleetNode, int) {
	if g < 0 {
		return nil, 0
	}
	j := sort.SearchInts(fv.offsets, g+1) - 1
	if j < 0 {
		return nil, 0
	}
	nd := fv.nodes[j]
	local := g - nd.off
	if local >= nd.size {
		return nil, 0
	}
	return nd, local
}

// Allocate publishes an allocation delta in global GPU IDs: each GPU
// leaves its node's free set, and the node's bandwidth accounting and
// live views absorb the node-local delta. Nil view sets ignore the
// call.
func (fv *FleetViews) Allocate(gpus []int) {
	if fv == nil {
		return
	}
	fv.mu.Lock()
	defer fv.mu.Unlock()
	for _, g := range gpus {
		nd, local := fv.locate(g)
		if nd == nil {
			continue
		}
		nd.free.Unset(local)
		if nd.usable.Has(local) {
			nd.usable.Unset(local)
			nd.usableCnt--
		}
		fv.one[0] = local
		nd.bw.Allocate(fv.one[:])
		for _, sl := range nd.slots {
			sl.lv.Allocate(fv.one[:])
		}
	}
}

// Release publishes a release delta in global GPU IDs. Nil view sets
// ignore the call.
func (fv *FleetViews) Release(gpus []int) {
	if fv == nil {
		return
	}
	fv.mu.Lock()
	defer fv.mu.Unlock()
	for _, g := range gpus {
		nd, local := fv.locate(g)
		if nd == nil {
			continue
		}
		nd.free.Set(local)
		if !nd.unhealthy.Has(local) && !nd.usable.Has(local) {
			nd.usable.Set(local)
			nd.usableCnt++
		}
		fv.one[0] = local
		nd.bw.Release(fv.one[:])
		for _, sl := range nd.slots {
			sl.lv.Release(fv.one[:])
		}
	}
}

// MarkUnhealthy publishes a health delta in global GPU IDs: the GPUs
// keep their free/allocated state but leave their node's usable set.
// Nil view sets ignore the call.
func (fv *FleetViews) MarkUnhealthy(gpus []int) {
	if fv == nil {
		return
	}
	fv.mu.Lock()
	defer fv.mu.Unlock()
	for _, g := range gpus {
		nd, local := fv.locate(g)
		if nd == nil {
			continue
		}
		nd.unhealthy.Set(local)
		if nd.usable.Has(local) {
			nd.usable.Unset(local)
			nd.usableCnt--
		}
		fv.one[0] = local
		nd.bw.MarkUnhealthy(fv.one[:])
		for _, sl := range nd.slots {
			sl.lv.MarkUnhealthy(fv.one[:])
		}
	}
}

// RestoreHealth publishes a recovery delta in global GPU IDs. Nil view
// sets ignore the call.
func (fv *FleetViews) RestoreHealth(gpus []int) {
	if fv == nil {
		return
	}
	fv.mu.Lock()
	defer fv.mu.Unlock()
	for _, g := range gpus {
		nd, local := fv.locate(g)
		if nd == nil {
			continue
		}
		nd.unhealthy.Unset(local)
		if nd.free.Has(local) && !nd.usable.Has(local) {
			nd.usable.Set(local)
			nd.usableCnt++
		}
		fv.one[0] = local
		nd.bw.RestoreHealth(fv.one[:])
		for _, sl := range nd.slots {
			sl.lv.RestoreHealth(fv.one[:])
		}
	}
}

// NodeDecision hands one node's intra-node selection context to a
// SelectNodes callback: the node's live view and Eq. 3 accounting
// (node-local IDs), the shared class score table, the order remap
// into the request pattern's vertex IDs (nil when structurally
// identical to the template build), and the exact constant translating
// node-local PreservedBW to the fleet-global value. Offset translates
// node-local GPU IDs to global ones.
type NodeDecision struct {
	Node, Offset   int
	LV             *match.LiveView
	BW             *match.BandwidthAccounting
	Tbl            *score.Table
	Order          []int
	PreservedShift float64
}

// SelectNodes runs the hierarchical decision's node sweep for a
// pattern: the inter-node level prunes nodes by the cheap usable-count
// aggregate (f_j < k cannot host the pattern) and computes the Eq. 3
// translation constants from the per-node free-weight aggregates; the
// intra-node level is the caller's — sel runs under the view lock once
// per node that holds at least one live candidate, in ascending node
// order (the documented deterministic node-ordering rule: node-major
// GPU IDs make ascending node order coincide with the flat
// lexicographic GPU-set tie-break). The caller compares node winners
// on exact global scores and resolves ties to the first node seen.
//
// SelectNodes returns false — without counting a decision — when the
// fleet layer cannot answer soundly: score tables disabled, a class
// universe incomplete or overflowed, or a candidate cap that would
// truncate some node's live list (class universes are tiny, so a
// binding cap means a misconfigured caller; declining keeps the same
// soundness rule as the flat tiers). On true the decision counts as
// Served even when no node could host the pattern (sel ran zero
// times): the hierarchy answered "no feasible single-node placement".
func (fv *FleetViews) SelectNodes(pattern *graph.Graph, maxCandidates, workers int, sel func(nd *NodeDecision)) bool {
	if fv == nil {
		return false
	}
	ci := canon.info(pattern)
	k := pattern.NumVertices()
	fv.mu.Lock()
	defer fv.mu.Unlock()
	// Pass 1: inter-node pruning on the quotient-level aggregates, slot
	// and table residency for the surviving nodes, and the fleet-wide
	// Eq. 3 terms. All sums are over integral link bandwidths, so every
	// float value below is exact.
	eligible := fv.scratchNodes[:0]
	F := 0
	sumFW := 0.0
	sumPairs := 0.0
	for j, nd := range fv.nodes {
		f := nd.usableCnt
		F += f
		sumFW += nd.bw.FreeWeight()
		sumPairs += float64(f * (f - 1) / 2)
		if f < k || k > nd.size {
			continue
		}
		sl, ok := fv.ensureSlot(nd, ci, pattern, workers)
		if !ok {
			fv.scratchNodes = eligible
			fv.stats.Rejected++
			return false
		}
		if maxCandidates > 0 && sl.lv.Len() > maxCandidates {
			fv.scratchNodes = eligible
			fv.stats.Rejected++
			return false
		}
		eligible = append(eligible, j)
	}
	fv.scratchNodes = eligible
	pcie := topology.LinkPCIe.Bandwidth()
	totalFree := sumFW + pcie*(float64(F*(F-1)/2)-sumPairs)
	// Pass 2: intra-node selection per hosting node, ascending node
	// order. The callback argument lives on fv: its address escapes
	// into sel, and a stack home would cost one heap allocation per
	// decision.
	for _, j := range eligible {
		n := fv.nodes[j]
		sl := n.slots[ci.canon]
		if sl.lv.Len() == 0 {
			continue
		}
		fv.nd = NodeDecision{
			Node:   j,
			Offset: n.off,
			LV:     sl.lv,
			BW:     n.bw,
			Tbl:    sl.tbl,
			Order:  canon.remap(sl.patternFP, ci, sl.lv.Universe().Order()),
			PreservedShift: totalFree - n.bw.FreeWeight() -
				float64(k)*pcie*float64(F-n.usableCnt),
		}
		sel(&fv.nd)
	}
	fv.stats.Served++
	return true
}

// ensureSlot returns the node's live-view slot for the canonical
// shape, creating it — and, on first sight fleet-wide, building the
// class universe and score table — under the view lock. ok is false
// when the universe is incomplete or tables are unavailable. A slot
// created mid-stream initializes from the node's current free mask and
// inherits its health state, like Views.ensureSlot.
func (fv *FleetViews) ensureSlot(nd *fleetNode, ci *canonInfo, pattern *graph.Graph, workers int) (*fleetSlot, bool) {
	sl, seen := nd.slots[ci.canon]
	if seen {
		return sl, sl.tbl != nil
	}
	st := fv.fs.stores[nd.class]
	usl := st.universe(ci, pattern, workers)
	if !usl.u.Complete() {
		return nil, false
	}
	tbl := st.ensureTable(usl, workers)
	if tbl == nil {
		return nil, false
	}
	lv := match.NewLiveView(usl.u, nd.free)
	if nd.unhealthy.Any() {
		lv.MarkUnhealthy(nd.unhealthy.Members())
	}
	sl = &fleetSlot{lv: lv, patternFP: usl.patternFP, usl: usl, tbl: tbl}
	nd.slots[ci.canon] = sl
	fv.stats.NodeViews++
	return sl, true
}

// Stats returns a snapshot of the fleet view set's counters. A nil
// view set reports zeros.
func (fv *FleetViews) Stats() FleetViewStats {
	if fv == nil {
		return FleetViewStats{}
	}
	fv.mu.Lock()
	defer fv.mu.Unlock()
	return fv.stats
}
