package matchcache

import (
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
)

// ringOn builds a ring pattern over an explicit vertex-ID set — the
// shape appgraph.Ring(k) would produce, relabeled. Non-contiguous and
// offset IDs exercise the canonizer the way fleet templates do: the
// stored template order speaks one ID space, the request another.
func ringOn(ids []int) *graph.Graph {
	g := graph.New()
	for _, v := range ids {
		g.AddVertex(v)
	}
	if len(ids) == 2 {
		g.MustAddEdge(ids[0], ids[1], 1, 0)
		return g
	}
	for i := range ids {
		g.MustAddEdge(ids[i], ids[(i+1)%len(ids)], 1, 0)
	}
	return g
}

// TestCanonRemapRoundTrip pins the isomorphism algebra the fleet path
// leans on: remapping a match order from shape A's IDs to shape B's
// and back is the identity, for patterns with contiguous, offset, and
// sparse vertex IDs.
func TestCanonRemapRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		a, b []int
	}{
		{"contiguous-vs-offset", []int{0, 1, 2}, []int{8, 9, 10}},
		{"sparse", []int{0, 1, 2, 3}, []int{5, 17, 40, 63}},
		{"pair", []int{0, 1}, []int{70, 71}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := ringOn(tc.a), ringOn(tc.b)
			ia, ib := canon.info(a), canon.info(b)
			if ia.canon != ib.canon {
				t.Fatal("isomorphic rings canonicalize differently")
			}
			order := append([]int(nil), tc.a...) // a match order in A's IDs
			ab := canon.remap(ia.exact, ib, order)
			if ab == nil {
				t.Fatal("remap between distinct ID spaces returned nil")
			}
			for _, v := range ab {
				if !b.HasVertex(v) {
					t.Fatalf("remapped order %v leaves B's vertex set %v", ab, tc.b)
				}
			}
			back := canon.remap(ib.exact, ia, ab)
			if back == nil {
				t.Fatal("inverse remap returned nil")
			}
			for i := range order {
				if back[i] != order[i] {
					t.Fatalf("round trip diverged: %v -> %v -> %v", order, ab, back)
				}
			}
		})
	}
}

// TestCanonRemapIdentity pins the nil fast path: a shape remapped onto
// itself needs no translation.
func TestCanonRemapIdentity(t *testing.T) {
	p := appgraph.Ring(3)
	ci := canon.info(p)
	if out := canon.remap(ci.exact, ci, []int{0, 1, 2}); out != nil {
		t.Fatalf("self-remap = %v, want nil", out)
	}
}

// TestCanonRemapPanicsOnNonIsomorphic pins the divergence guard.
func TestCanonRemapPanicsOnNonIsomorphic(t *testing.T) {
	ring := canon.info(appgraph.Ring(4))
	star := canon.info(appgraph.Star(4))
	defer func() {
		if recover() == nil {
			t.Fatal("remap between non-isomorphic shapes should panic")
		}
	}()
	canon.remap(ring.exact, star, []int{0, 1, 2, 3})
}
