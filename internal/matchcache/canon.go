package matchcache

import (
	"fmt"
	"sync"

	"mapa/internal/graph"
)

// canonInfo is the memoized canonicalization of one exact pattern
// shape: its structural fingerprint, its canonical (isomorphism-
// invariant) fingerprint, and the labeling in both directions.
type canonInfo struct {
	exact     string
	canon     string
	toCanon   map[int]int // vertex ID -> canonical index
	fromCanon []int       // canonical index -> vertex ID
}

// canonizer memoizes pattern canonicalization and order remaps. The
// exact canonical labeling is a permutation search, far too expensive
// per decision — but the number of distinct exact shapes a scheduler
// sees is tiny, so each is canonicalized once (keyed by the cheap
// structural fingerprint) and every later decision is a map lookup.
//
// Canonicalization is a pure function of the pattern — independent of
// any topology, cache, or store — so one process-wide canonizer is
// shared by every Cache and Store: an entry minted by any store can be
// remapped by any cache, and each shape pays the permutation search
// once per process.
type canonizer struct {
	mu      sync.Mutex
	byExact map[string]*canonInfo
	remaps  map[[2]string][]int
}

// canon is the shared process-wide canonizer.
var canon canonizer

// info returns the canonicalization of p, computing and memoizing it
// on first sight of p's structural fingerprint.
func (cz *canonizer) info(p *graph.Graph) *canonInfo {
	exact := p.Fingerprint()
	cz.mu.Lock()
	defer cz.mu.Unlock()
	if cz.byExact == nil {
		cz.byExact = make(map[string]*canonInfo)
		cz.remaps = make(map[[2]string][]int)
	}
	if ci, ok := cz.byExact[exact]; ok {
		return ci
	}
	canon, toCanon := p.CanonicalForm()
	ci := &canonInfo{
		exact:     exact,
		canon:     canon,
		toCanon:   toCanon,
		fromCanon: make([]int, len(toCanon)),
	}
	for v, i := range toCanon {
		ci.fromCanon[i] = v
	}
	cz.byExact[exact] = ci
	return ci
}

// remap translates a match order expressed in the vertex IDs of the
// pattern with structural fingerprint fromFP into the vertex IDs of
// the (isomorphic) request pattern to. It returns nil when the shapes
// are structurally identical — the order already speaks the request's
// vertex IDs. The translation composes the stored shape's canonical
// labeling with the inverse of the request's, which is an edge-,
// weight-, and label-preserving isomorphism whenever the two canonical
// fingerprints agree; remaps are memoized per shape pair since the
// match order is a deterministic function of the shape.
func (cz *canonizer) remap(fromFP string, to *canonInfo, order []int) []int {
	if fromFP == to.exact || len(order) == 0 {
		return nil
	}
	key := [2]string{fromFP, to.exact}
	cz.mu.Lock()
	defer cz.mu.Unlock()
	if out, ok := cz.remaps[key]; ok {
		return out
	}
	from, ok := cz.byExact[fromFP]
	if !ok || from.canon != to.canon {
		panic(fmt.Sprintf("matchcache: remap between non-isomorphic shapes (%q known=%v)", fromFP, ok))
	}
	out := make([]int, len(order))
	for i, v := range order {
		out[i] = to.fromCanon[from.toCanon[v]]
	}
	cz.remaps[key] = out
	return out
}
