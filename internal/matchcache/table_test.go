package matchcache

import (
	"testing"

	"mapa/internal/graph"
	"mapa/internal/match"
	"mapa/internal/score"
	"mapa/internal/topology"
)

func tableRing(k int) *graph.Graph {
	g := graph.New()
	for v := 0; v < k; v++ {
		g.MustAddEdge(v, (v+1)%k, 1, 0)
	}
	return g
}

// TestWarmBuildsScoreTables: Warm must leave each complete shape with a
// built score table (counted in the stats), and SelectLive must serve
// from it with the counters advancing.
func TestWarmBuildsScoreTables(t *testing.T) {
	top := topology.DGXV100()
	s := NewStore(top, 0)
	ring := tableRing(3)
	s.Warm(2, ring, tableRing(4))
	st := s.Stats()
	if st.Tables != 2 || st.TableTime <= 0 {
		t.Fatalf("Warm built %d tables in %v, want 2 in > 0", st.Tables, st.TableTime)
	}

	v := s.NewViews()
	called := false
	ok := v.SelectLive(ring, top.Graph, 0, 1, func(lv *match.LiveView, bw *match.BandwidthAccounting, tbl *score.Table, order []int, truncated bool) {
		called = true
		if bw == nil {
			t.Error("SelectLive must hand out the stream's bandwidth accounting")
		} else if bw.FreeWeight() != top.Graph.TotalWeight() {
			t.Errorf("idle FreeWeight = %g, want %g", bw.FreeWeight(), top.Graph.TotalWeight())
		}
		if tbl == nil || tbl.Len() != lv.Universe().Len() {
			t.Errorf("table misaligned with universe")
		}
		if order != nil {
			t.Errorf("structurally identical request needs no remap, got %v", order)
		}
		if truncated {
			t.Error("unlimited cap cannot truncate")
		}
	})
	if !ok || !called {
		t.Fatalf("SelectLive declined a warmed shape (ok=%v called=%v)", ok, called)
	}
	if vs := v.Stats(); vs.Served != 1 || vs.TableServed != 1 {
		t.Fatalf("SelectLive counters: %+v", vs)
	}
}

// TestSelectLiveDisabledAndOutOfSync: tables off, or a mask that
// disagrees with the tracked stream, must decline without touching the
// Served/Rejected counters (the caller falls through to Entry, which
// applies and counts the same rules).
func TestSelectLiveDisabledAndOutOfSync(t *testing.T) {
	top := topology.DGXV100()
	ring := tableRing(3)

	off := NewStore(top, 0)
	off.SetScoreTables(false)
	off.Warm(1, ring)
	if st := off.Stats(); st.Tables != 0 {
		t.Fatalf("tables-disabled store built %d tables", st.Tables)
	}
	v := off.NewViews()
	if v.SelectLive(ring, top.Graph, 0, 1, func(*match.LiveView, *match.BandwidthAccounting, *score.Table, []int, bool) {}) {
		t.Fatal("SelectLive must decline with tables disabled")
	}
	if vs := v.Stats(); vs.Served != 0 || vs.Rejected != 0 {
		t.Fatalf("declined SelectLive must not count: %+v", vs)
	}

	on := NewStore(top, 0)
	on.Warm(1, ring)
	v2 := on.NewViews()
	// Mask out of sync: the view tracks an idle machine but the request
	// claims GPU 0 is busy.
	stale := top.Graph.Without([]int{0})
	if v2.SelectLive(ring, stale, 0, 1, func(*match.LiveView, *match.BandwidthAccounting, *score.Table, []int, bool) {}) {
		t.Fatal("SelectLive must decline an out-of-sync mask")
	}
	if vs := v2.Stats(); vs.Served != 0 || vs.Rejected != 0 {
		t.Fatalf("declined SelectLive must not count: %+v", vs)
	}
}

// TestStoreBuildCalibration: a parallel store build feeds the
// process-wide EWMA calibration, so a later store's build of the same
// (topology, shape) pair plans from measured costs and reports
// Calibrated.
func TestStoreBuildCalibration(t *testing.T) {
	top := topology.DGXA100()
	shape := tableRing(3)

	first := NewStore(top, 0)
	first.SetBuildWorkers(4)
	first.Warm(4, shape)
	// Seeded: at least one parallel build observed. A fresh store of the
	// same topology must now plan the same shape from the calibration.
	second := NewStore(top, 0)
	second.SetBuildWorkers(4)
	second.Warm(4, shape)
	st := second.Stats()
	if len(st.Builds) != 1 {
		t.Fatalf("second store ran %d builds, want 1", len(st.Builds))
	}
	if !st.Builds[0].Calibrated {
		t.Fatalf("second build of a measured shape must be calibrated: %+v", st.Builds[0])
	}
}
