package matchcache

import (
	"testing"
	"time"

	"mapa/internal/appgraph"
	"mapa/internal/match"
	"mapa/internal/topology"
)

// TestFleetTemplateGoldenCounts pins the closed-form template sizes on
// the DGX-A100 class (a switch-uniform complete graph on 8 GPUs):
// ring-3 has one equivalence class per 3-set — C(8,3) = 56 — and
// ring-4 has the three distinct Hamiltonian-cycle edge sets per 4-set
// — 3·C(8,4) = 210.
func TestFleetTemplateGoldenCounts(t *testing.T) {
	tmpl := topology.DGXA100()
	for _, tc := range []struct {
		k, want int
	}{
		{3, 56},
		{4, 210},
	} {
		u := match.BuildUniverse(appgraph.Ring(tc.k), tmpl.Graph, 0, 1)
		if !u.Complete() {
			t.Fatalf("ring-%d class universe incomplete", tc.k)
		}
		if u.Len() != tc.want {
			t.Fatalf("ring-%d class universe = %d candidates, want %d", tc.k, u.Len(), tc.want)
		}
	}
}

// TestFleetStoreSizeIsNodeCountInvariant pins the tentpole memory
// claim: warming a 1,000-node single-class fleet builds exactly the
// template set a 2-node fleet does — same universe count, same table
// count, same candidates — because cost is O(distinct classes ×
// shapes), never O(nodes × shapes).
func TestFleetStoreSizeIsNodeCountInvariant(t *testing.T) {
	tmpl := topology.DGXA100()
	shapes := appgraph.AllShapes(4)
	small := NewFleetStore(topology.NewFleet(tmpl, 2), 0)
	large := NewFleetStore(topology.NewFleet(tmpl, 1000), 0)
	nSmall := small.Warm(1, shapes...)
	nLarge := large.Warm(1, shapes...)
	if nSmall == 0 {
		t.Fatal("warm built no universes")
	}
	if nSmall != nLarge {
		t.Fatalf("warm built %d universes at 2 nodes, %d at 1000", nSmall, nLarge)
	}
	ss, ls := small.Stats(), large.Stats()
	if ss.Universes != ls.Universes || ss.Tables != ls.Tables {
		t.Fatalf("store footprint differs: 2 nodes %d universes / %d tables, 1000 nodes %d / %d",
			ss.Universes, ss.Tables, ls.Universes, ls.Tables)
	}
}

// TestFleetTemplateBuildWithinFlatBudget is the acceptance timing
// bound: building the full 1,000-node fleet's template store must cost
// no more than twice the 9-node flat machine's store build for the
// same shapes. (In practice it is orders of magnitude cheaper — the
// template build enumerates one 8-GPU class, the flat build a 72-GPU
// machine.)
func TestFleetTemplateBuildWithinFlatBudget(t *testing.T) {
	shapes := appgraph.AllShapes(4)
	flatStart := time.Now()
	flatStore := NewStore(topology.ClusterA100(9), 0)
	flatStore.Warm(4, shapes...)
	flatDur := time.Since(flatStart)

	tmplStart := time.Now()
	tmplStore := NewFleetStore(topology.NewFleet(topology.DGXA100(), 1000), 0)
	tmplStore.Warm(4, shapes...)
	tmplDur := time.Since(tmplStart)

	if tmplDur > 2*flatDur {
		t.Fatalf("1000-node template build %v exceeds 2x the 9-node flat build %v", tmplDur, flatDur)
	}
	t.Logf("template build %v vs flat build %v", tmplDur, flatDur)
}
