package effbw

import (
	"testing"
	"testing/quick"

	"mapa/internal/regress"
	"mapa/internal/topology"
)

func TestCountLinks(t *testing.T) {
	top := topology.DGXV100()
	// Paper's fragmentation example {1,2,5} (0-indexed {0,1,4}):
	// 1 single + 1 double + 1 PCIe.
	mix := CountLinks(top.Graph.InducedSubgraph([]int{0, 1, 4}).Edges())
	if mix != (LinkCounts{X: 1, Y: 1, Z: 1}) {
		t.Fatalf("mix = %+v", mix)
	}
	// Ideal allocation {1,3,4} (0-indexed {0,2,3}): 2 double + 1 single.
	mix = CountLinks(top.Graph.InducedSubgraph([]int{0, 2, 3}).Edges())
	if mix != (LinkCounts{X: 2, Y: 1, Z: 0}) {
		t.Fatalf("ideal mix = %+v", mix)
	}
}

func TestCountLinksNVLink1CountsAsSingle(t *testing.T) {
	top := topology.DGXP100()
	mix := CountLinks(top.Graph.InducedSubgraph([]int{0, 1, 2}).Edges())
	if mix != (LinkCounts{X: 0, Y: 3, Z: 0}) {
		t.Fatalf("P100 triangle mix = %+v", mix)
	}
}

func TestFeaturesShapeAndValues(t *testing.T) {
	f := Features(LinkCounts{X: 1, Y: 2, Z: 3})
	if len(f) != NumFeatures {
		t.Fatalf("len(features) = %d", len(f))
	}
	want := []float64{
		1, 2, 3,
		0.5, 1.0 / 3, 0.25,
		2, 6, 3,
		1.0 / 3, 1.0 / 7, 0.25,
		6, 1.0 / 7,
	}
	for i := range want {
		if diff := f[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("feature %d = %g, want %g", i, f[i], want[i])
		}
	}
}

func TestFeaturesZeroMix(t *testing.T) {
	f := Features(LinkCounts{})
	// All inverse terms are 1, all products 0.
	want := []float64{0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1, 0, 1}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("feature %d = %g, want %g", i, f[i], want[i])
		}
	}
}

func TestPaperModelCoefficients(t *testing.T) {
	m := PaperModel()
	if len(m.Theta) != NumFeatures {
		t.Fatalf("paper model has %d coefficients", len(m.Theta))
	}
	// Spot-check Table 2 values.
	if m.Theta[0] != 16.396 || m.Theta[10] != 62.851 || m.Theta[13] != -46.973 {
		t.Fatalf("Table 2 coefficients wrong: %v", m.Theta)
	}
}

func TestPaperModelOrdersAllocations(t *testing.T) {
	// The published model must prefer richer link mixes: an all-double
	// allocation over a mixed one over PCIe-only.
	m := PaperModel()
	double2 := m.Predict(LinkCounts{X: 1})
	single2 := m.Predict(LinkCounts{Y: 1})
	pcie2 := m.Predict(LinkCounts{Z: 1})
	if !(double2 > single2 && single2 > pcie2) {
		t.Errorf("paper model 2-GPU ordering: double=%g single=%g pcie=%g", double2, single2, pcie2)
	}
}

func TestPredictClampsAtZero(t *testing.T) {
	m := &Model{Theta: make([]float64, NumFeatures)}
	m.Theta[13] = -100 // strongly negative constant-ish term
	if got := m.Predict(LinkCounts{}); got != 0 {
		t.Fatalf("Predict = %g, want clamp at 0", got)
	}
}

func TestCollectSamplesDGXV(t *testing.T) {
	top := topology.DGXV100()
	samples := CollectSamples(top, DefaultSizes())
	// The paper reports 31 unique (x,y,z) mixes for 2..5 GPU
	// allocations on the DGX-V. Our topology is the same machine, so
	// the unique-mix count should be in that neighborhood.
	if len(samples) < 20 {
		t.Fatalf("unique mixes = %d, want >= 20", len(samples))
	}
	seen := make(map[LinkCounts]bool)
	for _, s := range samples {
		if seen[s.Counts] {
			t.Fatalf("duplicate mix %+v", s.Counts)
		}
		seen[s.Counts] = true
		if s.EffBW < 0 {
			t.Fatalf("negative EffBW for %+v", s.Counts)
		}
		if len(s.GPUs) < 2 || len(s.GPUs) > 5 {
			t.Fatalf("representative allocation size %d", len(s.GPUs))
		}
	}
	t.Logf("DGX-V unique link mixes: %d", len(samples))
}

func TestCollectSamplesSkipsInvalidSizes(t *testing.T) {
	top := topology.Summit()
	samples := CollectSamples(top, []int{0, 1, 99, 2})
	for _, s := range samples {
		if len(s.GPUs) != 2 {
			t.Fatalf("unexpected sample size %d", len(s.GPUs))
		}
	}
	if len(samples) == 0 {
		t.Fatal("size 2 should produce samples")
	}
}

func TestTrainOnDGXV(t *testing.T) {
	top := topology.DGXV100()
	m, samples, err := Train(top, DefaultSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Theta) != NumFeatures {
		t.Fatalf("theta size = %d", len(m.Theta))
	}
	// The paper reports relative error 0.0709; our substitute
	// microbenchmark should fit at least roughly as well since EffBW
	// is nearly a function of the mix by construction.
	if m.Metrics.RelErr > 0.25 {
		t.Errorf("relative error = %g, want < 0.25", m.Metrics.RelErr)
	}
	if m.Metrics.Pearson < 0.9 {
		t.Errorf("Pearson = %g, want > 0.9", m.Metrics.Pearson)
	}
	// Prediction should track measurement on the training mixes.
	var pred, actual []float64
	for _, s := range samples {
		pred = append(pred, m.Predict(s.Counts))
		actual = append(actual, s.EffBW)
	}
	if r := regress.Pearson(pred, actual); r < 0.9 {
		t.Errorf("train-set correlation = %g", r)
	}
	t.Logf("fit: relErr=%.4f RMSE=%.3f MAE=%.3f r=%.4f over %d samples",
		m.Metrics.RelErr, m.Metrics.RMSE, m.Metrics.MAE, m.Metrics.Pearson, len(samples))
}

func TestTrainFailsOnTinyTopology(t *testing.T) {
	// Summit with only 2-GPU allocations cannot produce 14 unique
	// mixes.
	if _, _, err := Train(topology.Summit(), []int{2}); err == nil {
		t.Fatal("expected too-few-samples error")
	}
}

func TestTrainedModelGeneralizesAcrossSizes(t *testing.T) {
	// Train on 2-4 GPU allocations, predict 5-GPU mixes: correlation
	// should survive (the paper's Fig. 12 point).
	top := topology.DGXV100()
	m, _, err := Train(top, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	holdout := CollectSamples(top, []int{5})
	var pred, actual []float64
	for _, s := range holdout {
		pred = append(pred, m.Predict(s.Counts))
		actual = append(actual, s.EffBW)
	}
	if r := regress.Pearson(pred, actual); r < 0.6 {
		t.Errorf("holdout correlation = %g, want > 0.6", r)
	}
}

// Property: predictions are finite, non-negative, and monotone when a
// PCIe link upgrades to a double NVLink (for the trained model on
// in-range mixes).
func TestTrainedModelSanityProperty(t *testing.T) {
	top := topology.DGXV100()
	m, _, err := Train(top, DefaultSizes())
	if err != nil {
		t.Fatal(err)
	}
	f := func(xr, yr, zr uint8) bool {
		c := LinkCounts{X: int(xr % 4), Y: int(yr % 4), Z: int(zr % 4)}
		v := m.Predict(c)
		return v >= 0 && v < 1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
