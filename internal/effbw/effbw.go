// Package effbw implements MAPA's Predicted Effective Bandwidth model
// (Sec. 3.4.3, Eq. 2, Table 2): a 14-term regression that predicts the
// effective bandwidth of an allocation from its link mix (x, y, z) —
// the number of double-NVLink, single-NVLink, and PCIe links the
// allocation uses — so the scheduler never has to run a
// microbenchmark per candidate match.
//
// Two models are provided: PaperModel carries the exact Table 2
// coefficients learned by the authors on a real DGX-1 V100, and Train
// re-learns the coefficients against this repository's ncclsim
// microbenchmark substitute, reproducing the paper's training pipeline
// (exhaustively sample allocations with unique (x, y, z), measure
// effective bandwidth, solve the regression).
package effbw

import (
	"fmt"
	"sort"
	"sync"

	"mapa/internal/graph"
	"mapa/internal/ncclsim"
	"mapa/internal/regress"
	"mapa/internal/topology"
)

// LinkCounts is the allocation link mix of Eq. 2: X double-NVLink
// links, Y single-NVLink links (v1 or v2), Z PCIe links.
type LinkCounts struct {
	X, Y, Z int
}

// CountLinks classifies a set of hardware-graph edges into the
// (x, y, z) mix. NVSwitch links count as doubles (the fastest class).
func CountLinks(edges []graph.Edge) LinkCounts {
	var c LinkCounts
	for _, e := range edges {
		switch topology.LinkType(e.Label) {
		case topology.LinkNVLink2x2, topology.LinkNVSwitch, topology.LinkIntraGPU:
			c.X++
		case topology.LinkNVLink1, topology.LinkNVLink2:
			c.Y++
		case topology.LinkPCIe:
			c.Z++
		default:
			panic(fmt.Sprintf("effbw: unknown link label %d", e.Label))
		}
	}
	return c
}

// NumFeatures is the number of terms in Eq. 2.
const NumFeatures = 14

// Features expands a link mix into the paper's 14-term basis:
// linear (x, y, z), inverse-linear, pairwise, inverse-pairwise,
// triplet, inverse-triplet.
func Features(c LinkCounts) []float64 {
	x, y, z := float64(c.X), float64(c.Y), float64(c.Z)
	return []float64{
		x, y, z,
		1 / (x + 1), 1 / (y + 1), 1 / (z + 1),
		x * y, y * z, z * x,
		1 / (x*y + 1), 1 / (y*z + 1), 1 / (z*x + 1),
		x * y * z,
		1 / (x*y*z + 1),
	}
}

// Model is a fitted Eq. 2 predictor.
type Model struct {
	// Theta holds the 14 coefficients θ1..θ14.
	Theta []float64
	// Metrics summarizes fit quality on the training set (zero value
	// for PaperModel, whose training data is not reproducible here).
	Metrics regress.Metrics
}

// Predict returns the predicted effective bandwidth (GB/s) of an
// allocation with the given link mix. Predictions are clamped at zero:
// the regression basis can dip below zero far outside its training
// range, and a negative bandwidth is meaningless to the policies.
func (m *Model) Predict(c LinkCounts) float64 {
	v := regress.Predict(m.Theta, Features(c))
	if v < 0 {
		return 0
	}
	return v
}

// PredictEdges is Predict over an explicit used-edge set.
func (m *Model) PredictEdges(edges []graph.Edge) float64 {
	return m.Predict(CountLinks(edges))
}

// PaperModel returns Eq. 2 with the exact Table 2 coefficients from
// the paper.
func PaperModel() *Model {
	return &Model{Theta: []float64{
		16.396, 4.536, 1.556,
		-20.694, -9.467, 7.615,
		-7.973, 12.733, -4.195,
		-8.413, 62.851, 27.418,
		-5.114, -46.973,
	}}
}

// Sample is one training point: a link mix and the measured effective
// bandwidth of a representative allocation with that mix.
type Sample struct {
	Counts LinkCounts
	EffBW  float64
	// GPUs is the representative allocation measured.
	GPUs []int
}

// MixFromDecomposition converts a ring decomposition into the (x,y,z)
// link mix of the hops the collective actually traverses. This is the
// paper's notion of "links in a given matching pattern M": the links
// the communication uses, not every pairwise link of the allocation.
func MixFromDecomposition(top *topology.Topology, res ncclsim.Result) LinkCounts {
	var c LinkCounts
	for lt, n := range ncclsim.UsedLinks(top, res) {
		switch lt {
		case topology.LinkNVLink2x2, topology.LinkNVSwitch, topology.LinkIntraGPU:
			c.X += n
		case topology.LinkNVLink1, topology.LinkNVLink2:
			c.Y += n
		default:
			c.Z += n
		}
	}
	return c
}

// CollectSamples enumerates every induced allocation of the given
// sizes on the topology, measures its effective bandwidth with the
// ncclsim microbenchmark, and keeps one averaged sample per unique
// (x, y, z) mix of used links — the paper's training-set construction,
// which yielded 31 samples for sizes 2..5 on the DGX-V.
func CollectSamples(top *topology.Topology, sizes []int) []Sample {
	type acc struct {
		sum  float64
		n    int
		gpus []int
	}
	byMix := make(map[LinkCounts]*acc)
	gpus := top.GPUs()
	for _, k := range sizes {
		if k < 2 || k > len(gpus) {
			continue
		}
		subset := make([]int, k)
		var rec func(start, depth int)
		rec = func(start, depth int) {
			if depth == k {
				res := ncclsim.Decompose(top, subset)
				mix := MixFromDecomposition(top, res)
				bw := res.PeakEffBW
				a, ok := byMix[mix]
				if !ok {
					a = &acc{gpus: append([]int(nil), subset...)}
					byMix[mix] = a
				}
				a.sum += bw
				a.n++
				return
			}
			for i := start; i <= len(gpus)-(k-depth); i++ {
				subset[depth] = gpus[i]
				rec(i+1, depth+1)
			}
		}
		rec(0, 0)
	}
	samples := make([]Sample, 0, len(byMix))
	for mix, a := range byMix {
		samples = append(samples, Sample{
			Counts: mix,
			EffBW:  a.sum / float64(a.n),
			GPUs:   a.gpus,
		})
	}
	sort.Slice(samples, func(i, j int) bool {
		a, b := samples[i].Counts, samples[j].Counts
		if a.X != b.X {
			return a.X < b.X
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.Z < b.Z
	})
	return samples
}

// Train fits Eq. 2 against ncclsim measurements on the topology,
// reproducing the paper's regression pipeline. sizes selects the
// allocation sizes sampled (the paper uses 2..5). A small ridge
// penalty regularizes the nearly-collinear 14-term basis.
func Train(top *topology.Topology, sizes []int) (*Model, []Sample, error) {
	samples := CollectSamples(top, sizes)
	if len(samples) < NumFeatures {
		return nil, samples, fmt.Errorf("effbw: only %d unique link mixes on %s; need at least %d",
			len(samples), top.Name, NumFeatures)
	}
	x := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		x[i] = Features(s.Counts)
		y[i] = s.EffBW
	}
	theta, err := regress.Ridge(x, y, 1e-6)
	if err != nil {
		return nil, samples, fmt.Errorf("effbw: fitting Eq. 2: %w", err)
	}
	m := &Model{Theta: theta}
	pred := make([]float64, len(samples))
	for i, s := range samples {
		pred[i] = m.Predict(s.Counts)
	}
	metrics, err := regress.Evaluate(pred, y)
	if err != nil {
		return nil, samples, err
	}
	m.Metrics = metrics
	return m, samples, nil
}

// DefaultSizes is the allocation-size range the paper trains on.
func DefaultSizes() []int { return []int{2, 3, 4, 5} }

var (
	modelCacheMu sync.Mutex
	modelCache   = make(map[string]*Model)
)

// TrainOnMaxGPUs bounds the machine size TrainedFor will train on:
// training-set collection enumerates every C(n, k) allocation for
// k in DefaultSizes, which is combinatorial in n. Multi-node machines
// beyond the bound use the paper's Table 2 model instead.
const TrainOnMaxGPUs = 16

// TrainedFor returns an Eq. 2 model trained against the ncclsim
// microbenchmark on the given topology, caching one model per topology
// name. If the topology has too few distinct link mixes to fit the
// 14-term basis (tiny machines), or too many GPUs to enumerate a
// training set (multi-node clusters), it falls back to the paper's
// Table 2 model, which at least preserves the link-mix ordering.
func TrainedFor(top *topology.Topology) *Model {
	modelCacheMu.Lock()
	defer modelCacheMu.Unlock()
	if m, ok := modelCache[top.Name]; ok {
		return m
	}
	var m *Model
	if top.NumGPUs() > TrainOnMaxGPUs {
		m = PaperModel()
	} else if trained, _, err := Train(top, DefaultSizes()); err == nil {
		m = trained
	} else {
		m = PaperModel()
	}
	modelCache[top.Name] = m
	return m
}
