// Package trace extracts application topology graphs from program
// traces, reproducing both extraction paths of Sec. 3.1 / Fig. 9 of the
// paper:
//
//   - Source-code analysis: multi-GPU communication goes through
//     well-defined APIs (ncclAllReduce over a communicator,
//     cudaMemcpyPeer with explicit src/dst devices). A list of such
//     calls determines the communication pattern.
//   - Runtime profiling: per-link traffic counters (nvidia-smi NVLink
//     counters and PCIe counters) reveal which GPU pairs actually
//     exchanged data, which handles implicit communication (e.g.
//     Unified Memory) that source analysis cannot see.
//
// Since no real CUDA runtime exists here, the traces are synthetic but
// carry the same information content as the tools the paper names.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
)

// CallKind classifies an API call in a source trace.
type CallKind string

const (
	// CallAllReduce is a collective over a communicator
	// (ncclAllReduce and friends); it implies a ring or tree over the
	// participating devices, selected by transfer size as NCCL does.
	CallAllReduce CallKind = "ncclAllReduce"
	// CallBroadcast is a rooted collective; NCCL broadcasts over the
	// same ring/tree channels, so its edge contribution matches
	// CallAllReduce.
	CallBroadcast CallKind = "ncclBroadcast"
	// CallMemcpyPeer is an explicit point-to-point copy
	// (cudaMemcpyPeer); it contributes a single edge.
	CallMemcpyPeer CallKind = "cudaMemcpyPeer"
	// CallSendRecv is a CUDA-aware MPI style pairwise exchange.
	CallSendRecv CallKind = "MPI_Sendrecv"
)

// Call is one communication API invocation found by source analysis.
type Call struct {
	Kind CallKind
	// Devices lists the participating logical devices. Collectives use
	// all of them; point-to-point kinds use exactly two (src, dst).
	Devices []int
	// Bytes is the transfer size, which selects ring vs tree for
	// collectives.
	Bytes float64
}

// FromSource builds the application graph implied by a list of API
// calls, as source-code analysis would (Fig. 9a): the union of the
// per-call communication patterns. Devices are renumbered 0..k-1 in
// ascending order of their IDs in the trace.
func FromSource(calls []Call) (*graph.Graph, error) {
	if len(calls) == 0 {
		return nil, fmt.Errorf("trace: empty source trace")
	}
	// Collect the device universe.
	devSet := make(map[int]bool)
	for i, c := range calls {
		if len(c.Devices) == 0 {
			return nil, fmt.Errorf("trace: call %d has no devices", i)
		}
		for _, d := range c.Devices {
			if d < 0 {
				return nil, fmt.Errorf("trace: call %d has negative device %d", i, d)
			}
			devSet[d] = true
		}
	}
	devs := make([]int, 0, len(devSet))
	for d := range devSet {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	rank := make(map[int]int, len(devs))
	for i, d := range devs {
		rank[d] = i
	}

	g := graph.New()
	for i := range devs {
		g.AddVertex(i)
	}
	for i, c := range calls {
		switch c.Kind {
		case CallAllReduce, CallBroadcast:
			if len(c.Devices) == 1 {
				continue // single-device collective communicates nothing
			}
			// Order participants by rank, as NCCL ring construction
			// does over communicator ranks.
			parts := make([]int, len(c.Devices))
			for j, d := range c.Devices {
				parts[j] = rank[d]
			}
			sort.Ints(parts)
			pat := appgraph.ForCollective(len(parts), c.Bytes)
			for _, e := range pat.Edges() {
				u, v := parts[e.U], parts[e.V]
				if !g.HasEdge(u, v) {
					g.MustAddEdge(u, v, 1, 0)
				}
			}
		case CallMemcpyPeer, CallSendRecv:
			if len(c.Devices) != 2 {
				return nil, fmt.Errorf("trace: call %d (%s) needs exactly 2 devices, got %d", i, c.Kind, len(c.Devices))
			}
			u, v := rank[c.Devices[0]], rank[c.Devices[1]]
			if u == v {
				return nil, fmt.Errorf("trace: call %d copies device %d to itself", i, c.Devices[0])
			}
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, 1, 0)
			}
		default:
			return nil, fmt.Errorf("trace: call %d has unknown kind %q", i, c.Kind)
		}
	}
	return g, nil
}

// LinkCounters is a runtime profile: bytes observed flowing between
// GPU pairs, as nvidia-smi NVLink counters report (Fig. 9b). Keys are
// physical GPU ID pairs.
type LinkCounters map[[2]int]float64

// Add accumulates traffic between two GPUs.
func (lc LinkCounters) Add(u, v int, bytes float64) {
	if u > v {
		u, v = v, u
	}
	lc[[2]int{u, v}] += bytes
}

// FromProfile builds the application graph from runtime link-traffic
// counters: every GPU pair whose observed traffic exceeds threshold
// bytes becomes a communication edge. GPUs are renumbered 0..k-1.
// The threshold filters incidental traffic (page migrations,
// bookkeeping) below communication significance.
func FromProfile(counters LinkCounters, threshold float64) (*graph.Graph, error) {
	if len(counters) == 0 {
		return nil, fmt.Errorf("trace: empty profile")
	}
	devSet := make(map[int]bool)
	for pair, bytes := range counters {
		if bytes < 0 {
			return nil, fmt.Errorf("trace: negative traffic %g between %d and %d", bytes, pair[0], pair[1])
		}
		if pair[0] == pair[1] {
			return nil, fmt.Errorf("trace: self-traffic on GPU %d", pair[0])
		}
		devSet[pair[0]] = true
		devSet[pair[1]] = true
	}
	devs := make([]int, 0, len(devSet))
	for d := range devSet {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	rank := make(map[int]int, len(devs))
	for i, d := range devs {
		rank[d] = i
	}
	g := graph.New()
	for i := range devs {
		g.AddVertex(i)
	}
	for pair, bytes := range counters {
		if bytes > threshold {
			u, v := rank[pair[0]], rank[pair[1]]
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, 1, 0)
			}
		}
	}
	return g, nil
}

// ParseProfile reads an nvidia-smi-like textual link traffic dump, one
// record per line: "gpuA gpuB bytes". Blank lines and lines starting
// with '#' are skipped.
func ParseProfile(r io.Reader) (LinkCounters, error) {
	lc := make(LinkCounters)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 'gpuA gpuB bytes', got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad gpu %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad gpu %q", lineNo, fields[1])
		}
		bytes, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad byte count %q", lineNo, fields[2])
		}
		lc.Add(u, v, bytes)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading profile: %w", err)
	}
	if len(lc) == 0 {
		return nil, fmt.Errorf("trace: profile contained no records")
	}
	return lc, nil
}
