package trace

import (
	"strings"
	"testing"

	"mapa/internal/appgraph"
)

func TestFromSourceAllReduceLargeBuildsRing(t *testing.T) {
	g, err := FromSource([]Call{
		{Kind: CallAllReduce, Devices: []int{0, 1, 2, 3}, Bytes: 1 << 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := appgraph.Ring(4)
	if g.NumEdges() != want.NumEdges() {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want.NumEdges())
	}
	for _, e := range want.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("missing ring edge (%d,%d)", e.U, e.V)
		}
	}
}

func TestFromSourceAllReduceSmallBuildsTree(t *testing.T) {
	g, err := FromSource([]Call{
		{Kind: CallAllReduce, Devices: []int{0, 1, 2, 3, 4}, Bytes: 1 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 { // tree has k-1 edges
		t.Fatalf("edges = %d, want 4 (tree)", g.NumEdges())
	}
}

func TestFromSourceDeviceRenumbering(t *testing.T) {
	// Logical devices 3 and 7 become pattern vertices 0 and 1.
	g, err := FromSource([]Call{
		{Kind: CallMemcpyPeer, Devices: []int{7, 3}, Bytes: 1e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || !g.HasEdge(0, 1) {
		t.Fatalf("renumbering failed: V=%d", g.NumVertices())
	}
}

func TestFromSourceUnionOfCalls(t *testing.T) {
	// The application graph combines all NCCL API calls in the
	// program (Sec. 3.1).
	g, err := FromSource([]Call{
		{Kind: CallAllReduce, Devices: []int{0, 1, 2}, Bytes: 1 << 24}, // 3-ring
		{Kind: CallMemcpyPeer, Devices: []int{0, 3}, Bytes: 1e6},       // extra edge
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if !g.HasEdge(0, 3) || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Fatalf("union incomplete: %v", g.Edges())
	}
}

func TestFromSourceSingleDeviceCollective(t *testing.T) {
	g, err := FromSource([]Call{
		{Kind: CallAllReduce, Devices: []int{5}, Bytes: 1e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Fatal("1-device collective should not create edges")
	}
}

func TestFromSourceErrors(t *testing.T) {
	cases := []struct {
		name  string
		calls []Call
	}{
		{"empty", nil},
		{"no devices", []Call{{Kind: CallAllReduce}}},
		{"negative device", []Call{{Kind: CallAllReduce, Devices: []int{-1, 2}}}},
		{"p2p arity", []Call{{Kind: CallMemcpyPeer, Devices: []int{1, 2, 3}}}},
		{"self copy", []Call{{Kind: CallMemcpyPeer, Devices: []int{2, 2}}}},
		{"unknown kind", []Call{{Kind: "cudaLaunchKernel", Devices: []int{0, 1}}}},
	}
	for _, tc := range cases {
		if _, err := FromSource(tc.calls); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestFromProfileThreshold(t *testing.T) {
	lc := make(LinkCounters)
	lc.Add(0, 1, 1e9) // real traffic
	lc.Add(1, 2, 100) // noise
	g, err := FromProfile(lc, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("high-traffic pair should be an edge")
	}
	if g.HasEdge(1, 2) {
		t.Error("noise pair should be filtered")
	}
	if g.NumVertices() != 3 {
		t.Errorf("V = %d, want 3 (all observed GPUs)", g.NumVertices())
	}
}

func TestLinkCountersAddNormalizes(t *testing.T) {
	lc := make(LinkCounters)
	lc.Add(5, 2, 10)
	lc.Add(2, 5, 15)
	if lc[[2]int{2, 5}] != 25 {
		t.Fatalf("counters = %v", lc)
	}
}

func TestFromProfileErrors(t *testing.T) {
	if _, err := FromProfile(nil, 0); err == nil {
		t.Error("empty profile should error")
	}
	neg := LinkCounters{{0, 1}: -5}
	if _, err := FromProfile(neg, 0); err == nil {
		t.Error("negative traffic should error")
	}
	self := LinkCounters{{3, 3}: 5}
	if _, err := FromProfile(self, 0); err == nil {
		t.Error("self traffic should error")
	}
}

func TestParseProfile(t *testing.T) {
	in := `# gpuA gpuB bytes
0 1 1000000
1 2 2000000

2 0 500
`
	lc, err := ParseProfile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(lc) != 3 {
		t.Fatalf("records = %d", len(lc))
	}
	if lc[[2]int{0, 1}] != 1e6 || lc[[2]int{0, 2}] != 500 {
		t.Fatalf("counters = %v", lc)
	}
	g, err := FromProfile(lc, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 above threshold", g.NumEdges())
	}
}

func TestParseProfileErrors(t *testing.T) {
	cases := []string{
		"0 1",             // wrong arity
		"a 1 100",         // bad gpu
		"0 b 100",         // bad gpu
		"0 1 many",        // bad bytes
		"",                // no records
		"# only comments", // no records
	}
	for _, in := range cases {
		if _, err := ParseProfile(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestSourceAndProfileAgreeOnRing(t *testing.T) {
	// The two extraction paths should produce the same pattern for the
	// same logical behaviour: a 4-GPU ring all-reduce.
	src, err := FromSource([]Call{
		{Kind: CallAllReduce, Devices: []int{0, 1, 2, 3}, Bytes: 1 << 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	lc := make(LinkCounters)
	for _, e := range appgraph.Ring(4).Edges() {
		lc.Add(e.U, e.V, 1e9)
	}
	prof, err := FromProfile(lc, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumEdges() != prof.NumEdges() || src.NumVertices() != prof.NumVertices() {
		t.Fatalf("source %v vs profile %v", src, prof)
	}
	for _, e := range src.Edges() {
		if !prof.HasEdge(e.U, e.V) {
			t.Errorf("profile missing edge (%d,%d)", e.U, e.V)
		}
	}
}
