package collective

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mapa/internal/ncclsim"
	"mapa/internal/topology"
)

func TestFactors(t *testing.T) {
	cases := []struct {
		op   Op
		k    int
		want float64
	}{
		{AllReduce, 2, 1},
		{AllReduce, 4, 1.5},
		{AllReduce, 8, 1.75},
		{ReduceScatter, 4, 0.75},
		{AllGather, 4, 0.75},
		{Broadcast, 4, 1},
		{Reduce, 8, 1},
		{Gather, 2, 0.5},
		{Scatter, 2, 0.5},
	}
	for _, tc := range cases {
		if got := tc.op.Factor(tc.k); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s factor(k=%d) = %g, want %g", tc.op, tc.k, got, tc.want)
		}
	}
}

func TestFactorDegenerate(t *testing.T) {
	for _, op := range Ops() {
		if op.Factor(1) != 0 || op.Steps(1) != 0 {
			t.Errorf("%s: single participant should cost nothing", op)
		}
	}
}

func TestStringNames(t *testing.T) {
	for _, op := range Ops() {
		if !strings.HasPrefix(op.String(), "nccl") {
			t.Errorf("op name %q not NCCL-style", op.String())
		}
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Error("unknown op String should include the value")
	}
}

func TestTimeOrderingAcrossLinks(t *testing.T) {
	top := topology.DGXV100()
	for _, op := range Ops() {
		fast := Time(top, []int{0, 4}, op, 1e8) // double NVLink
		slow := Time(top, []int{0, 5}, op, 1e8) // PCIe
		if fast <= 0 || slow <= 0 {
			t.Fatalf("%s: non-positive times %g, %g", op, fast, slow)
		}
		if fast >= slow {
			t.Errorf("%s: double NVLink (%g s) should beat PCIe (%g s)", op, fast, slow)
		}
	}
}

func TestTimeDegenerateInputs(t *testing.T) {
	top := topology.DGXV100()
	if Time(top, []int{0}, AllReduce, 1e6) != 0 {
		t.Error("1-GPU collective should take no time")
	}
	if Time(top, []int{0, 4}, AllReduce, 0) != 0 {
		t.Error("zero-byte collective should take no time")
	}
	if BusBandwidth(top, []int{0}, AllReduce, 1e6) != 0 {
		t.Error("1-GPU bus bandwidth should be zero")
	}
}

func TestAllReduceConsistentWithNCCLSim(t *testing.T) {
	// collective.Time(AllReduce) must agree with the ncclsim all-reduce
	// model used by the workload package.
	top := topology.DGXV100()
	for _, gpus := range [][]int{{0, 4}, {0, 2, 3}, {0, 1, 2, 3}} {
		want := ncclsim.AllReduceTime(top, gpus, 1e7)
		got := Time(top, gpus, AllReduce, 1e7)
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("gpus %v: collective %g vs ncclsim %g", gpus, got, want)
		}
	}
}

func TestBusBandwidthApproachesEffBW(t *testing.T) {
	// For huge transfers, latency terms vanish and bus bandwidth
	// approaches the allocation's effective bandwidth.
	top := topology.DGXV100()
	gpus := []int{0, 4}
	bb := BusBandwidth(top, gpus, AllReduce, 1e10)
	eff := ncclsim.EffectiveBandwidth(top, gpus, 1e10)
	if math.Abs(bb-eff)/eff > 0.05 {
		t.Errorf("bus bandwidth %g far from effective bandwidth %g", bb, eff)
	}
}

func TestAllGatherCheaperThanAllReduce(t *testing.T) {
	top := topology.DGXV100()
	gpus := []int{0, 1, 2, 3}
	if Time(top, gpus, AllGather, 1e8) >= Time(top, gpus, AllReduce, 1e8) {
		t.Error("all-gather moves half the data of all-reduce and must be faster")
	}
}

// Property: time is non-negative, monotone in message size, and bus
// bandwidth never exceeds the link-capacity bound.
func TestTimeMonotoneProperty(t *testing.T) {
	top := topology.DGXV100()
	gpus := []int{0, 2, 3}
	f := func(aRaw, bRaw uint32, opRaw uint8) bool {
		op := Op(int(opRaw) % int(numOps))
		a, b := float64(aRaw), float64(bRaw)
		if a > b {
			a, b = b, a
		}
		ta, tb := Time(top, gpus, op, a), Time(top, gpus, op, b)
		if ta < 0 || tb < 0 || ta > tb+1e-12 {
			return false
		}
		return BusBandwidth(top, gpus, op, b) <= 80+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
