// Package collective models the cost of the NCCL collective operations
// the paper's workloads use (Sec. 6 lists Reduce, AllReduce, Broadcast,
// Gather, Scatter, and Scatter-Gather/AllGather). Costs follow the
// standard ring-algorithm data-movement factors over the effective
// bandwidth of the allocation as computed by the ncclsim substrate:
//
//	all-reduce       2(k-1)/k · S
//	reduce-scatter    (k-1)/k · S
//	all-gather        (k-1)/k · S
//	broadcast/reduce        1 · S   (pipelined ring)
//	gather/scatter    (k-1)/k · S   (root-bound)
//
// The all-reduce factor is what internal/workload already uses; this
// package generalizes it so application graphs extracted from traces
// with mixed collective calls can be costed uniformly.
package collective

import (
	"fmt"

	"mapa/internal/linkmodel"
	"mapa/internal/ncclsim"
	"mapa/internal/topology"
)

// Op is a collective operation.
type Op int

const (
	AllReduce Op = iota
	ReduceScatter
	AllGather
	Broadcast
	Reduce
	Gather
	Scatter

	numOps
)

// String names the op in NCCL's spelling.
func (op Op) String() string {
	switch op {
	case AllReduce:
		return "ncclAllReduce"
	case ReduceScatter:
		return "ncclReduceScatter"
	case AllGather:
		return "ncclAllGather"
	case Broadcast:
		return "ncclBroadcast"
	case Reduce:
		return "ncclReduce"
	case Gather:
		return "ncclGather"
	case Scatter:
		return "ncclScatter"
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// Ops lists every supported collective.
func Ops() []Op {
	ops := make([]Op, numOps)
	for i := range ops {
		ops[i] = Op(i)
	}
	return ops
}

// Factor returns the ring-algorithm data-movement multiple for the op
// on k participants: the number of payload traversals of the
// bottleneck link per byte of payload.
func (op Op) Factor(k int) float64 {
	if k < 2 {
		return 0
	}
	kf := float64(k)
	switch op {
	case AllReduce:
		return 2 * (kf - 1) / kf
	case ReduceScatter, AllGather, Gather, Scatter:
		return (kf - 1) / kf
	case Broadcast, Reduce:
		return 1
	}
	panic(fmt.Sprintf("collective: unknown op %d", int(op)))
}

// Steps returns the number of pipeline steps (latency terms) the op
// takes on k participants.
func (op Op) Steps(k int) int {
	if k < 2 {
		return 0
	}
	switch op {
	case AllReduce:
		return 2 * (k - 1)
	default:
		return k - 1
	}
}

// Time returns the seconds the op takes to move msgBytes over the
// allocation on the topology. Allocations of fewer than two GPUs take
// no time.
func Time(top *topology.Topology, gpus []int, op Op, msgBytes float64) float64 {
	k := len(gpus)
	if k < 2 || msgBytes <= 0 {
		return 0
	}
	bw := ncclsim.EffectiveBandwidth(top, gpus, msgBytes)
	if bw <= 0 {
		bw = 1
	}
	return op.Factor(k)*msgBytes/(bw*1e9) + float64(op.Steps(k))*linkmodel.StartupLatency
}

// BusBandwidth returns the op's achieved bus bandwidth in GB/s — the
// metric nccl-tests reports: payload-equivalent bytes moved per second
// of wall time.
func BusBandwidth(top *topology.Topology, gpus []int, op Op, msgBytes float64) float64 {
	t := Time(top, gpus, op, msgBytes)
	if t <= 0 {
		return 0
	}
	k := len(gpus)
	return op.Factor(k) * msgBytes / t / 1e9
}
