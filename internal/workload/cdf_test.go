package workload

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRawMsgBytes(t *testing.T) {
	w, _ := ByName("vgg-16")
	want := w.BytesPerIter() / float64(w.CommCallsPerIter)
	if got := w.RawMsgBytes(); got != want {
		t.Fatalf("RawMsgBytes = %g, want %g", got, want)
	}
	if (Workload{}).RawMsgBytes() != 0 {
		t.Fatal("zero workload should have zero raw size")
	}
}

func TestCommSizeCDFMonotoneAndBounded(t *testing.T) {
	probes := []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
	for _, w := range CNNs() {
		cdf := w.CommSizeCDF(probes)
		if !sort.Float64sAreSorted(cdf) {
			t.Errorf("%s: CDF not monotone: %v", w.Name, cdf)
		}
		for _, v := range cdf {
			if v < 0 || v > 1 {
				t.Errorf("%s: CDF value %g out of range", w.Name, v)
			}
		}
		// Median lands at the raw mean size.
		mid := w.CommSizeCDF([]float64{w.RawMsgBytes()})[0]
		if mid < 0.49 || mid > 0.51 {
			t.Errorf("%s: CDF at raw mean = %g, want ~0.5", w.Name, mid)
		}
	}
}

func TestCommSizeCDFZeroProbe(t *testing.T) {
	w, _ := ByName("vgg-16")
	cdf := w.CommSizeCDF([]float64{0, -5})
	if cdf[0] != 0 || cdf[1] != 0 {
		t.Fatalf("non-positive probes should have zero CDF: %v", cdf)
	}
}

func TestFig5aOrdering(t *testing.T) {
	// Fig. 5a: GoogleNet's calls are smaller than VGG's — its CDF
	// rises earlier at every probe.
	vgg, _ := ByName("vgg-16")
	goog, _ := ByName("googlenet")
	probes := []float64{1e3, 1e4, 1e5, 1e6}
	cv := vgg.CommSizeCDF(probes)
	cg := goog.CommSizeCDF(probes)
	for i := range probes {
		if cg[i] < cv[i] {
			t.Errorf("probe %g: GoogleNet CDF %g below VGG %g", probes[i], cg[i], cv[i])
		}
	}
}

func TestSensitiveWorkloadsPassSizeThreshold(t *testing.T) {
	// Sec. 2.3: transfers must exceed ~1e5 bytes (fused) to exploit
	// fast links. GoogleNet fails the size test; CaffeNet passes it but
	// fails on call volume (captured by the compute-bound model).
	goog, _ := ByName("googlenet")
	if goog.MeanCommSizeAboveThreshold(1e5) {
		t.Error("GoogleNet should fail the size threshold")
	}
	for _, name := range []string{"vgg-16", "alexnet", "caffenet"} {
		w, _ := ByName(name)
		if !w.MeanCommSizeAboveThreshold(1e5) {
			t.Errorf("%s should pass the size threshold", name)
		}
	}
}

// Property: CDF values increase with probe size for every workload.
func TestCDFMonotoneProperty(t *testing.T) {
	ws := All()
	f := func(aRaw, bRaw uint32, wRaw uint8) bool {
		w := ws[int(wRaw)%len(ws)]
		a, b := float64(aRaw)+1, float64(bRaw)+1
		if a > b {
			a, b = b, a
		}
		cdf := w.CommSizeCDF([]float64{a, b})
		return cdf[0] <= cdf[1]+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
