package workload

import (
	"testing"

	"mapa/internal/topology"
)

func TestCatalogCompleteness(t *testing.T) {
	// All nine evaluation workloads (Sec. 4) present.
	want := []string{
		"vgg-16", "alexnet", "resnet-50", "inception-v3",
		"caffenet", "googlenet", "cusimann", "gmm", "jacobi",
	}
	if len(All()) != len(want) {
		t.Fatalf("catalog size = %d, want %d", len(All()), len(want))
	}
	for _, name := range want {
		w, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if w.Name != name {
			t.Errorf("ByName(%q) returned %q", name, w.Name)
		}
	}
	if _, err := ByName("bert"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestByNameCaseInsensitive(t *testing.T) {
	w, err := ByName("VGG-16")
	if err != nil || w.Name != "vgg-16" {
		t.Fatalf("ByName(VGG-16) = %+v, %v", w, err)
	}
}

func TestFig5bCommCalls(t *testing.T) {
	// Communication calls per iteration, verbatim from Fig. 5b.
	want := map[string]int{
		"alexnet":      80001,
		"inception-v3": 2830001,
		"vgg-16":       160001,
		"resnet-50":    1600001,
		"caffenet":     84936,
		"googlenet":    640001,
	}
	for name, calls := range want {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if w.CommCallsPerIter != calls {
			t.Errorf("%s: calls/iter = %d, want %d", name, w.CommCallsPerIter, calls)
		}
	}
}

func TestFig5bSensitivityAnnotations(t *testing.T) {
	want := map[string]bool{
		"alexnet": true, "inception-v3": true, "vgg-16": true, "resnet-50": true,
		"caffenet": false, "googlenet": false,
		"cusimann": false, "gmm": false, "jacobi": false,
	}
	for name, sensitive := range want {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if w.Sensitive != sensitive {
			t.Errorf("%s: sensitive = %v, want %v", name, w.Sensitive, sensitive)
		}
	}
	if len(Sensitive()) != 4 || len(Insensitive()) != 5 {
		t.Errorf("partition sizes: %d sensitive, %d insensitive", len(Sensitive()), len(Insensitive()))
	}
	if len(CNNs()) != 6 {
		t.Errorf("CNNs = %d, want 6", len(CNNs()))
	}
}

func TestVGGSpeedupMatchesFig2b(t *testing.T) {
	// Fig. 2b: VGG-16 experiences up to ~3x speedup with double NVLink
	// vs PCIe.
	w, _ := ByName("vgg-16")
	s := w.SpeedupOverPCIe(topology.LinkNVLink2x2)
	if s < 2.4 || s > 3.6 {
		t.Errorf("VGG-16 double-NVLink speedup = %.2f, want ~3x", s)
	}
	// Single NVLink sits between PCIe and double.
	sSingle := w.SpeedupOverPCIe(topology.LinkNVLink2)
	if !(1 < sSingle && sSingle < s) {
		t.Errorf("single NVLink speedup %.2f should be between 1 and %.2f", sSingle, s)
	}
}

func TestGoogleNetInsensitiveFig2b(t *testing.T) {
	// Fig. 2b: GoogleNet is barely affected by link choice.
	w, _ := ByName("googlenet")
	s := w.SpeedupOverPCIe(topology.LinkNVLink2x2)
	if s > 1.25 {
		t.Errorf("GoogleNet speedup = %.2f, want near 1", s)
	}
}

func TestSensitiveWorkloadsSpeedUpMore(t *testing.T) {
	// Every annotated-sensitive workload must gain more from double
	// NVLink than every annotated-insensitive workload.
	minSensitive, maxInsensitive := 1e18, 0.0
	for _, w := range All() {
		s := w.SpeedupOverPCIe(topology.LinkNVLink2x2)
		if w.Sensitive && s < minSensitive {
			minSensitive = s
		}
		if !w.Sensitive && s > maxInsensitive {
			maxInsensitive = s
		}
	}
	if minSensitive <= maxInsensitive {
		t.Errorf("sensitivity inversion: min sensitive speedup %.2f <= max insensitive %.2f",
			minSensitive, maxInsensitive)
	}
	if minSensitive < 1.3 {
		t.Errorf("sensitive workloads should gain >1.3x, got %.2f", minSensitive)
	}
}

func TestExecTimeBasics(t *testing.T) {
	top := topology.DGXV100()
	w, _ := ByName("vgg-16")
	if got := w.ExecTime(top, []int{0, 4}, 0); got != 0 {
		t.Errorf("0 iters should take 0 time, got %g", got)
	}
	// Single GPU: pure compute.
	single := w.ExecTime(top, []int{0}, 100)
	if single != 100*w.ComputeSecPerIter {
		t.Errorf("1-GPU time = %g", single)
	}
	// Communication increases time.
	multi := w.ExecTime(top, []int{0, 4}, 100)
	if multi <= single {
		t.Errorf("2-GPU time %g should exceed compute-only %g", multi, single)
	}
}

func TestExecTimeAllocationQualityMatters(t *testing.T) {
	top := topology.DGXV100()
	w, _ := ByName("vgg-16")
	good := w.ExecTime(top, []int{0, 2, 3}, w.DefaultIters)  // NVLink triangle
	bad := w.ExecTime(top, []int{0, 1, 4}, w.DefaultIters)   // fragmented
	worse := w.ExecTime(top, []int{0, 5, 7}, w.DefaultIters) // PCIe only
	if !(good < bad && bad <= worse) {
		t.Errorf("allocation quality ordering violated: %g, %g, %g", good, bad, worse)
	}
	// Fragmentation should cost a sensitive workload dearly (paper:
	// >50% slowdown possible).
	if bad/good < 1.3 {
		t.Errorf("fragmentation penalty = %.2fx, want > 1.3x", bad/good)
	}
}

func TestBaselineExecTimesInPaperRange(t *testing.T) {
	// Fig. 13: evaluation jobs run for hundreds of seconds. Check each
	// CNN's default-iteration run on a good 2-GPU allocation sits in
	// [50, 2000] seconds.
	top := topology.DGXV100()
	for _, w := range CNNs() {
		tt := w.ExecTime(top, []int{0, 4}, w.DefaultIters)
		if tt < 50 || tt > 2000 {
			t.Errorf("%s: default exec time %.0f s out of range", w.Name, tt)
		}
	}
}

func TestExecTimeAtBandwidthMonotone(t *testing.T) {
	w, _ := ByName("vgg-16")
	prev := 1e18
	for _, bw := range []float64{5, 12, 25, 50, 75} {
		tt := w.ExecTimeAtBandwidth(bw, 4, w.DefaultIters)
		if tt >= prev {
			t.Errorf("time at %g GB/s = %g not decreasing", bw, tt)
		}
		prev = tt
	}
	// Insensitive workloads barely move.
	g, _ := ByName("cusimann")
	lo := g.ExecTimeAtBandwidth(5, 4, g.DefaultIters)
	hi := g.ExecTimeAtBandwidth(75, 4, g.DefaultIters)
	if lo/hi > 1.05 {
		t.Errorf("cusimann varies %.2fx with bandwidth, want flat", lo/hi)
	}
}

func TestExecTimeAtBandwidthEdgeCases(t *testing.T) {
	w, _ := ByName("vgg-16")
	if w.ExecTimeAtBandwidth(50, 4, 0) != 0 {
		t.Error("0 iters should be 0")
	}
	if got := w.ExecTimeAtBandwidth(50, 1, 100); got != 100*w.ComputeSecPerIter {
		t.Errorf("k=1 should be compute only, got %g", got)
	}
	if got := w.ExecTimeAtBandwidth(0, 4, 100); got != 100*w.ComputeSecPerIter {
		t.Errorf("zero bandwidth treated as compute only, got %g", got)
	}
}

func TestCommFraction(t *testing.T) {
	top := topology.DGXV100()
	vgg, _ := ByName("vgg-16")
	cus, _ := ByName("cusimann")
	fv := vgg.CommFraction(top, []int{0, 4})
	fc := cus.CommFraction(top, []int{0, 4})
	if fv < 0.5 {
		t.Errorf("VGG comm fraction = %.2f, want communication-bound", fv)
	}
	if fc > 0.05 {
		t.Errorf("cusimann comm fraction = %.2f, want compute-bound", fc)
	}
	if vgg.CommFraction(top, []int{0}) != 0 {
		t.Error("single GPU has no comm fraction")
	}
}

func TestBytesPerIter(t *testing.T) {
	w, _ := ByName("vgg-16")
	if got := w.BytesPerIter(); got != w.CollectivesPerIter*w.MsgBytes {
		t.Errorf("BytesPerIter = %g", got)
	}
}

func TestSortedNames(t *testing.T) {
	ns := SortedNames()
	if len(ns) != 9 {
		t.Fatalf("names = %v", ns)
	}
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("not sorted: %v", ns)
		}
	}
}

func TestFig6IterationScaling(t *testing.T) {
	// Fig. 6: execution time grows linearly with iterations, and the
	// NVLink-vs-PCIe gap persists (sensitive) or stays negligible
	// (insensitive) as iterations grow.
	nv := topology.FullyConnected(2, topology.LinkNVLink2x2)
	pcie := topology.FullyConnected(2, topology.LinkPCIe)
	vgg, _ := ByName("vgg-16")
	goog, _ := ByName("googlenet")
	for _, iters := range []int{1000, 3000, 7000} {
		gapVGG := vgg.ExecTime(pcie, pcie.GPUs(), iters) / vgg.ExecTime(nv, nv.GPUs(), iters)
		gapGoog := goog.ExecTime(pcie, pcie.GPUs(), iters) / goog.ExecTime(nv, nv.GPUs(), iters)
		if gapVGG < 2 {
			t.Errorf("iters=%d: VGG gap %.2f should stay large", iters, gapVGG)
		}
		if gapGoog > 1.25 {
			t.Errorf("iters=%d: GoogleNet gap %.2f should stay small", iters, gapGoog)
		}
	}
	// Linearity.
	t1 := vgg.ExecTime(nv, nv.GPUs(), 1000)
	t2 := vgg.ExecTime(nv, nv.GPUs(), 2000)
	if diff := t2 / t1; diff < 1.99 || diff > 2.01 {
		t.Errorf("iteration scaling not linear: %g", diff)
	}
}
