package workload

import "math"

// RawMsgBytes returns the average size of one raw collective call as
// Fig. 5a counts them: the per-iteration communication volume divided
// by the per-iteration call count. (MsgBytes is the *fused* transfer
// NCCL actually issues; frameworks batch roughly a thousand raw calls
// per launch.)
func (w Workload) RawMsgBytes() float64 {
	if w.CommCallsPerIter == 0 {
		return 0
	}
	return w.BytesPerIter() / float64(w.CommCallsPerIter)
}

// commSizeSigma is the log-normal spread of raw collective-call sizes.
// Fig. 5a's curves span roughly three decades from first rise to
// saturation, which a log-stddev of ~1.5 (×4.5 per sigma) matches.
const commSizeSigma = 1.5

// CommSizeCDF returns the modeled cumulative distribution of raw
// collective-call sizes at the given byte probes — the curves of
// Fig. 5a. Call sizes are log-normal around the workload's raw mean:
// CNN gradient tensors span the layer-size spectrum, which is the
// heavy-tailed multiplicative mix a log-normal captures.
func (w Workload) CommSizeCDF(probes []float64) []float64 {
	out := make([]float64, len(probes))
	mu := math.Log(w.RawMsgBytes())
	for i, p := range probes {
		if p <= 0 {
			continue
		}
		z := (math.Log(p) - mu) / (commSizeSigma * math.Sqrt2)
		out[i] = 0.5 * (1 + math.Erf(z))
	}
	return out
}

// MeanCommSizeAboveThreshold reports whether the workload's average
// raw call exceeds the given size — the paper's Sec. 2.3 test for
// whether a workload can exploit high-speed links (threshold 1e5
// bytes at the fused-transfer level).
func (w Workload) MeanCommSizeAboveThreshold(bytes float64) bool {
	return w.MsgBytes >= bytes
}
