// Package workload models the multi-GPU workloads of the paper's
// evaluation (Sec. 4): six Caffe CNN training jobs (AlexNet, VGG-16,
// ResNet-50, Inception-v3, GoogleNet, CaffeNet) plus three non-NN
// multi-GPU codes (Cusimann, GMM, Jacobi). Each workload carries the
// communication profile of Fig. 5 — collective calls per iteration and
// characteristic transfer size — plus a compute cost per iteration,
// and an analytic execution-time model:
//
//	T = iters × (computePerIter + collectivesPerIter × allReduceTime)
//
// where allReduceTime comes from the ncclsim substrate and depends on
// the allocation's links and the transfer size. Bandwidth sensitivity
// then *emerges* exactly as the paper explains it (Sec. 2.3):
// GoogleNet's transfers are too small to exploit fast links, CaffeNet
// makes too few collective calls for link speed to matter, and
// Cusimann/GMM/Jacobi barely communicate, while AlexNet, VGG-16,
// ResNet-50, and Inception-v3 are communication-bound at sizes where
// link choice changes bandwidth several-fold.
//
// Calibration targets taken from the paper: VGG-16 gains roughly 3x
// from double NVLink over PCIe at 2 GPUs and GoogleNet is nearly flat
// (Fig. 2b); baseline job execution times land in the hundreds of
// seconds (Fig. 13).
package workload

import (
	"fmt"
	"sort"
	"strings"

	"mapa/internal/appgraph"
	"mapa/internal/ncclsim"
	"mapa/internal/topology"
)

// Workload describes one job type.
type Workload struct {
	Name string
	// CommCallsPerIter is the paper's Fig. 5b column: collective
	// communication calls triggered per GPU per iteration.
	CommCallsPerIter int
	// CollectivesPerIter is the effective number of fused collective
	// launches per iteration. NCCL and the framework batch the raw
	// calls; roughly CommCallsPerIter / 1000 for the CNNs.
	CollectivesPerIter float64
	// MsgBytes is the characteristic fused transfer size (Fig. 5a).
	MsgBytes float64
	// ComputeSecPerIter is the GPU compute time per iteration.
	ComputeSecPerIter float64
	// Sensitive is the paper's bandwidth-sensitivity annotation
	// (Fig. 5b last column; Cusimann/GMM/Jacobi are classified
	// insensitive in Sec. 4).
	Sensitive bool
	// DefaultIters is the training length used in the evaluation runs.
	DefaultIters int
	// Shape is the communication pattern the workload exhibits.
	Shape appgraph.Shape
}

// table is the workload catalog. CommCallsPerIter and Sensitive are
// verbatim from Fig. 5b; the remaining parameters are calibrated as
// described in the package comment.
var table = []Workload{
	{
		Name: "vgg-16", CommCallsPerIter: 160001, CollectivesPerIter: 160,
		MsgBytes: 5e6, ComputeSecPerIter: 0.005, Sensitive: true,
		DefaultIters: 6500, Shape: appgraph.ShapeRing,
	},
	{
		Name: "alexnet", CommCallsPerIter: 80001, CollectivesPerIter: 80,
		MsgBytes: 4e6, ComputeSecPerIter: 0.004, Sensitive: true,
		DefaultIters: 9000, Shape: appgraph.ShapeRing,
	},
	{
		Name: "resnet-50", CommCallsPerIter: 1600001, CollectivesPerIter: 1600,
		MsgBytes: 5e5, ComputeSecPerIter: 0.015, Sensitive: true,
		DefaultIters: 6000, Shape: appgraph.ShapeRing,
	},
	{
		Name: "inception-v3", CommCallsPerIter: 2830001, CollectivesPerIter: 2830,
		MsgBytes: 4e5, ComputeSecPerIter: 0.025, Sensitive: true,
		DefaultIters: 3500, Shape: appgraph.ShapeRing,
	},
	{
		Name: "caffenet", CommCallsPerIter: 84936, CollectivesPerIter: 85,
		MsgBytes: 4e6, ComputeSecPerIter: 0.3, Sensitive: false,
		DefaultIters: 2200, Shape: appgraph.ShapeRing,
	},
	{
		Name: "googlenet", CommCallsPerIter: 640001, CollectivesPerIter: 640,
		MsgBytes: 3e4, ComputeSecPerIter: 0.08, Sensitive: false,
		DefaultIters: 7000, Shape: appgraph.ShapeRing,
	},
	{
		Name: "cusimann", CommCallsPerIter: 1, CollectivesPerIter: 1,
		MsgBytes: 1e4, ComputeSecPerIter: 0.35, Sensitive: false,
		DefaultIters: 2000, Shape: appgraph.ShapeStar,
	},
	{
		Name: "gmm", CommCallsPerIter: 2, CollectivesPerIter: 2,
		MsgBytes: 2e4, ComputeSecPerIter: 0.3, Sensitive: false,
		DefaultIters: 2200, Shape: appgraph.ShapeStar,
	},
	{
		Name: "jacobi", CommCallsPerIter: 4, CollectivesPerIter: 4,
		MsgBytes: 2e5, ComputeSecPerIter: 0.25, Sensitive: false,
		DefaultIters: 2600, Shape: appgraph.ShapeChain,
	},
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range table {
		if strings.EqualFold(w.Name, name) {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// All returns every workload in catalog order.
func All() []Workload {
	return append([]Workload(nil), table...)
}

// Names returns the workload names in catalog order.
func Names() []string {
	ns := make([]string, len(table))
	for i, w := range table {
		ns[i] = w.Name
	}
	return ns
}

// CNNs returns the six Caffe training workloads.
func CNNs() []Workload {
	var out []Workload
	for _, w := range table {
		switch w.Name {
		case "vgg-16", "alexnet", "resnet-50", "inception-v3", "caffenet", "googlenet":
			out = append(out, w)
		}
	}
	return out
}

// Sensitive returns the bandwidth-sensitive workloads.
func Sensitive() []Workload {
	var out []Workload
	for _, w := range table {
		if w.Sensitive {
			out = append(out, w)
		}
	}
	return out
}

// Insensitive returns the bandwidth-insensitive workloads.
func Insensitive() []Workload {
	var out []Workload
	for _, w := range table {
		if !w.Sensitive {
			out = append(out, w)
		}
	}
	return out
}

// BytesPerIter returns the total bytes the workload all-reduces per
// iteration.
func (w Workload) BytesPerIter() float64 {
	return w.CollectivesPerIter * w.MsgBytes
}

// ExecTime returns the modeled execution time in seconds of iters
// iterations on the given allocation. Single-GPU allocations have no
// inter-GPU communication.
func (w Workload) ExecTime(top *topology.Topology, gpus []int, iters int) float64 {
	if iters <= 0 {
		return 0
	}
	compute := w.ComputeSecPerIter
	if len(gpus) < 2 {
		return float64(iters) * compute
	}
	comm := w.CollectivesPerIter * ncclsim.AllReduceTime(top, gpus, w.MsgBytes)
	return float64(iters) * (compute + comm)
}

// ExecTimeAtBandwidth returns the modeled execution time given an
// effective bandwidth (GB/s) directly, for k participating GPUs. This
// is the "effective bandwidth as a proxy for execution time" mode the
// paper's simulator uses (Sec. 5.1), and also generates the
// EffBW-vs-time curves of Fig. 16.
func (w Workload) ExecTimeAtBandwidth(effBW float64, k, iters int) float64 {
	if iters <= 0 {
		return 0
	}
	if k < 2 || effBW <= 0 {
		return float64(iters) * w.ComputeSecPerIter
	}
	factor := float64(2*(k-1)) / float64(k)
	perCollective := factor * w.MsgBytes / (effBW * 1e9)
	comm := w.CollectivesPerIter * perCollective
	return float64(iters) * (w.ComputeSecPerIter + comm)
}

// SpeedupOverPCIe returns the workload's modeled 2-GPU speedup when
// moving from a PCIe pair to the given link type — the quantity
// Fig. 2b plots.
func (w Workload) SpeedupOverPCIe(l topology.LinkType) float64 {
	fast := topology.FullyConnected(2, l)
	slow := topology.FullyConnected(2, topology.LinkPCIe)
	tf := w.ExecTime(fast, fast.GPUs(), w.DefaultIters)
	ts := w.ExecTime(slow, slow.GPUs(), w.DefaultIters)
	return ts / tf
}

// CommFraction returns the fraction of execution time spent
// communicating on the given allocation — a direct sensitivity
// indicator.
func (w Workload) CommFraction(top *topology.Topology, gpus []int) float64 {
	if len(gpus) < 2 {
		return 0
	}
	comm := w.CollectivesPerIter * ncclsim.AllReduceTime(top, gpus, w.MsgBytes)
	return comm / (comm + w.ComputeSecPerIter)
}

// SortedNames returns all workload names sorted alphabetically, for
// deterministic report output.
func SortedNames() []string {
	ns := Names()
	sort.Strings(ns)
	return ns
}
