// Package regress implements ordinary least squares over arbitrary
// feature bases, plus the fit-quality metrics the MAPA paper reports
// for its effective-bandwidth model (relative error, RMSE, MAE) and
// Pearson correlation used in the validation figures.
//
// The paper's Eq. 2 is nonlinear in the link counts (x, y, z) but
// linear in its 14 coefficients, so fitting it is a linear least
// squares problem: solve (XᵀX)θ = Xᵀy by Gaussian elimination with
// partial pivoting.
package regress

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal equations are singular
// (degenerate design matrix, e.g. fewer samples than features or
// perfectly collinear features).
var ErrSingular = errors.New("regress: singular normal equations")

// OLS fits y ≈ X·θ in the least-squares sense and returns θ.
// X is row-major: X[i] is the feature vector of sample i.
func OLS(x [][]float64, y []float64) ([]float64, error) {
	return Ridge(x, y, 0)
}

// Ridge fits y ≈ X·θ with an L2 penalty λ‖θ‖²: it solves
// (XᵀX + λI)θ = Xᵀy. λ = 0 reduces to OLS; a small positive λ
// regularizes nearly-collinear feature bases such as the paper's
// 14-term Eq. 2 evaluated on few samples.
func Ridge(x [][]float64, y []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("regress: negative ridge penalty %g", lambda)
	}
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("regress: %d samples vs %d targets", n, len(y))
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("regress: empty feature vectors")
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("regress: sample %d has %d features, want %d", i, len(row), p)
		}
	}
	// Normal equations A = XᵀX (p×p), b = Xᵀy (p).
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p)
	}
	b := make([]float64, p)
	for s := 0; s < n; s++ {
		row := x[s]
		for i := 0; i < p; i++ {
			b[i] += row[i] * y[s]
			for j := i; j < p; j++ {
				a[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	for i := 0; i < p; i++ {
		a[i][i] += lambda
	}
	theta, err := solve(a, b)
	if err != nil {
		return nil, err
	}
	return theta, nil
}

// solve performs in-place Gaussian elimination with partial pivoting on
// the augmented system a·x = b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	p := len(a)
	for col := 0; col < p; col++ {
		// Pivot: largest absolute value in this column.
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < p; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < p; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, p)
	for i := p - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < p; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// Predict evaluates the linear model θ on one feature vector.
func Predict(theta, features []float64) float64 {
	if len(theta) != len(features) {
		panic(fmt.Sprintf("regress: %d coefficients vs %d features", len(theta), len(features)))
	}
	var v float64
	for i, f := range features {
		v += theta[i] * f
	}
	return v
}

// Metrics summarizes prediction quality the way the paper does
// (Sec. 3.4.3): relative error, RMSE, and MAE, plus Pearson r for the
// correlation plots.
type Metrics struct {
	RelErr  float64 // mean |pred-actual| / mean |actual|
	RMSE    float64
	MAE     float64
	Pearson float64
}

// Evaluate computes fit metrics for predicted vs actual values.
func Evaluate(pred, actual []float64) (Metrics, error) {
	if len(pred) != len(actual) || len(pred) == 0 {
		return Metrics{}, fmt.Errorf("regress: %d predictions vs %d actuals", len(pred), len(actual))
	}
	var sumSq, sumAbs, sumActualAbs float64
	for i := range pred {
		d := pred[i] - actual[i]
		sumSq += d * d
		sumAbs += math.Abs(d)
		sumActualAbs += math.Abs(actual[i])
	}
	n := float64(len(pred))
	m := Metrics{
		RMSE: math.Sqrt(sumSq / n),
		MAE:  sumAbs / n,
	}
	if sumActualAbs > 0 {
		m.RelErr = sumAbs / sumActualAbs
	}
	m.Pearson = Pearson(pred, actual)
	return m, nil
}

// Pearson returns the Pearson correlation coefficient of two series,
// or 0 when either series has zero variance.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
