package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOLSExactLine(t *testing.T) {
	// y = 3 + 2x fits exactly.
	var x [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		xi := float64(i)
		x = append(x, []float64{1, xi})
		y = append(y, 3+2*xi)
	}
	theta, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(theta[0], 3, 1e-9) || !almostEqual(theta[1], 2, 1e-9) {
		t.Fatalf("theta = %v, want [3 2]", theta)
	}
}

func TestOLSQuadraticBasis(t *testing.T) {
	// y = 1 - x + 0.5x² with a quadratic basis.
	var x [][]float64
	var y []float64
	for i := -5; i <= 5; i++ {
		xi := float64(i)
		x = append(x, []float64{1, xi, xi * xi})
		y = append(y, 1-xi+0.5*xi*xi)
	}
	theta, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -1, 0.5}
	for i := range want {
		if !almostEqual(theta[i], want[i], 1e-9) {
			t.Fatalf("theta = %v, want %v", theta, want)
		}
	}
}

func TestOLSOverdeterminedNoise(t *testing.T) {
	// Noisy y = 5x; the slope estimate must land near 5.
	r := rand.New(rand.NewSource(7))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		xi := r.Float64() * 10
		x = append(x, []float64{xi})
		y = append(y, 5*xi+r.NormFloat64()*0.1)
	}
	theta, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(theta[0], 5, 0.05) {
		t.Fatalf("slope = %g, want ~5", theta[0])
	}
}

func TestOLSSingular(t *testing.T) {
	// Two identical columns are collinear.
	x := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	y := []float64{1, 2, 3}
	if _, err := OLS(x, y); err == nil {
		t.Fatal("collinear design should be singular")
	}
}

func TestOLSInputValidation(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := OLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := OLS([][]float64{{}}, []float64{1}); err == nil {
		t.Error("empty features should error")
	}
	if _, err := OLS([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged features should error")
	}
}

func TestPredict(t *testing.T) {
	if got := Predict([]float64{2, -1}, []float64{3, 4}); got != 2 {
		t.Fatalf("Predict = %g, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths should panic")
		}
	}()
	Predict([]float64{1}, []float64{1, 2})
}

func TestEvaluatePerfectFit(t *testing.T) {
	pred := []float64{1, 2, 3}
	m, err := Evaluate(pred, pred)
	if err != nil {
		t.Fatal(err)
	}
	if m.RMSE != 0 || m.MAE != 0 || m.RelErr != 0 {
		t.Fatalf("perfect fit metrics = %+v", m)
	}
	if !almostEqual(m.Pearson, 1, 1e-12) {
		t.Fatalf("Pearson = %g, want 1", m.Pearson)
	}
}

func TestEvaluateKnownError(t *testing.T) {
	pred := []float64{2, 2, 2, 2}
	actual := []float64{1, 3, 1, 3}
	m, err := Evaluate(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.MAE, 1, 1e-12) || !almostEqual(m.RMSE, 1, 1e-12) {
		t.Fatalf("metrics = %+v", m)
	}
	if !almostEqual(m.RelErr, 4.0/8.0, 1e-12) {
		t.Fatalf("RelErr = %g", m.RelErr)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Evaluate(nil, nil); err == nil {
		t.Error("empty input should error")
	}
}

func TestPearsonKnownValues(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	up := []float64{2, 4, 6, 8}
	down := []float64{8, 6, 4, 2}
	if got := Pearson(a, up); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson up = %g", got)
	}
	if got := Pearson(a, down); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson down = %g", got)
	}
	if got := Pearson(a, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("Pearson vs constant = %g, want 0", got)
	}
	if got := Pearson(a, []float64{1, 2}); got != 0 {
		t.Errorf("Pearson mismatched lengths = %g, want 0", got)
	}
}

// Property: OLS on exactly generated data recovers the model well
// enough to predict unseen points.
func TestOLSRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := []float64{r.Float64()*10 - 5, r.Float64()*10 - 5, r.Float64()*10 - 5}
		var x [][]float64
		var y []float64
		for i := 0; i < 40; i++ {
			f1, f2 := r.Float64()*4, r.Float64()*4
			row := []float64{1, f1, f2}
			x = append(x, row)
			y = append(y, Predict(w, row))
		}
		theta, err := OLS(x, y)
		if err != nil {
			return false
		}
		test := []float64{1, r.Float64() * 4, r.Float64() * 4}
		return almostEqual(Predict(theta, test), Predict(w, test), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: residuals of the OLS fit are orthogonal to every feature
// column (the normal-equation optimality condition).
func TestOLSResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var x [][]float64
		var y []float64
		for i := 0; i < 30; i++ {
			row := []float64{1, r.Float64() * 3, r.Float64() * 3}
			x = append(x, row)
			y = append(y, r.Float64()*10)
		}
		theta, err := OLS(x, y)
		if err != nil {
			return false
		}
		for j := 0; j < 3; j++ {
			var dot float64
			for i := range x {
				dot += x[i][j] * (y[i] - Predict(theta, x[i]))
			}
			if math.Abs(dot) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
