// Package jobs defines job specifications, the textual job-file format
// consumed by the simulator (Fig. 14 of the paper: "ID, NumGPUs,
// Topology, BW Sensitive"), and the random job-mix generator used in
// the evaluation (Sec. 4: 300 jobs, uniform workload mix, uniform 1-5
// requested GPUs).
package jobs

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
	"mapa/internal/workload"
)

// Job is one scheduled unit of work.
type Job struct {
	ID        int
	Workload  string
	NumGPUs   int
	Shape     appgraph.Shape
	Sensitive bool
	Iters     int
}

// Pattern builds the job's application graph.
func (j Job) Pattern() (*graph.Graph, error) {
	return appgraph.Build(j.Shape, j.NumGPUs)
}

// Validate checks the job's fields for consistency.
func (j Job) Validate() error {
	if j.NumGPUs < 1 {
		return fmt.Errorf("jobs: job %d requests %d GPUs", j.ID, j.NumGPUs)
	}
	if j.Iters < 1 {
		return fmt.Errorf("jobs: job %d has %d iterations", j.ID, j.Iters)
	}
	if _, err := workload.ByName(j.Workload); err != nil {
		return fmt.Errorf("jobs: job %d: %w", j.ID, err)
	}
	if _, err := appgraph.ParseShape(string(j.Shape)); err != nil {
		return fmt.Errorf("jobs: job %d: %w", j.ID, err)
	}
	return nil
}

// String serializes the job as one job-file line:
// "id,workload,numGPUs,shape,sensitive,iters".
func (j Job) String() string {
	return fmt.Sprintf("%d,%s,%d,%s,%t,%d", j.ID, j.Workload, j.NumGPUs, j.Shape, j.Sensitive, j.Iters)
}

// Write serializes jobs to a job file with a header comment.
func Write(w io.Writer, jobs []Job) error {
	if _, err := fmt.Fprintln(w, "# id,workload,numGPUs,shape,sensitive,iters"); err != nil {
		return err
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, j.String()); err != nil {
			return err
		}
	}
	return nil
}

// Parse reads a job file. Blank lines and '#' comments are skipped.
func Parse(r io.Reader) ([]Job, error) {
	var out []Job
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		j, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("jobs: line %d: %w", lineNo, err)
		}
		out = append(out, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("jobs: reading job file: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("jobs: job file contained no jobs")
	}
	return out, nil
}

func parseLine(line string) (Job, error) {
	fields := strings.Split(line, ",")
	if len(fields) != 6 {
		return Job{}, fmt.Errorf("want 6 comma-separated fields, got %d in %q", len(fields), line)
	}
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
	}
	id, err := strconv.Atoi(fields[0])
	if err != nil {
		return Job{}, fmt.Errorf("bad id %q", fields[0])
	}
	numGPUs, err := strconv.Atoi(fields[2])
	if err != nil {
		return Job{}, fmt.Errorf("bad numGPUs %q", fields[2])
	}
	shape, err := appgraph.ParseShape(fields[3])
	if err != nil {
		return Job{}, err
	}
	sensitive, err := strconv.ParseBool(fields[4])
	if err != nil {
		return Job{}, fmt.Errorf("bad sensitive flag %q", fields[4])
	}
	iters, err := strconv.Atoi(fields[5])
	if err != nil {
		return Job{}, fmt.Errorf("bad iters %q", fields[5])
	}
	j := Job{
		ID: id, Workload: fields[1], NumGPUs: numGPUs,
		Shape: shape, Sensitive: sensitive, Iters: iters,
	}
	if err := j.Validate(); err != nil {
		return Job{}, err
	}
	return j, nil
}

// GenerateConfig controls random job-mix generation.
type GenerateConfig struct {
	// N is the number of jobs (the paper uses 300; Fig. 4 uses 100).
	N int
	// MaxGPUs caps the uniform 1..MaxGPUs GPU request (paper: 5).
	MaxGPUs int
	// Workloads restricts the mix; empty means all nine evaluation
	// workloads.
	Workloads []workload.Workload
	// Seed makes generation reproducible.
	Seed int64
}

// Generate produces a random job mix per the paper's configuration:
// uniform over the workload set and uniform over 1..MaxGPUs requested
// GPUs. Shapes and sensitivity annotations come from the workload
// catalog; iteration counts are the workload defaults.
func Generate(cfg GenerateConfig) ([]Job, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("jobs: cannot generate %d jobs", cfg.N)
	}
	if cfg.MaxGPUs < 1 {
		return nil, fmt.Errorf("jobs: MaxGPUs = %d", cfg.MaxGPUs)
	}
	ws := cfg.Workloads
	if len(ws) == 0 {
		ws = workload.All()
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Job, cfg.N)
	for i := range out {
		w := ws[r.Intn(len(ws))]
		out[i] = Job{
			ID:        i + 1,
			Workload:  w.Name,
			NumGPUs:   1 + r.Intn(cfg.MaxGPUs),
			Shape:     w.Shape,
			Sensitive: w.Sensitive,
			Iters:     w.DefaultIters,
		}
	}
	return out, nil
}

// PaperMix returns the evaluation job mix of Sec. 4: 300 jobs,
// uniform workloads, uniform 1-5 GPUs.
func PaperMix(seed int64) []Job {
	js, err := Generate(GenerateConfig{N: 300, MaxGPUs: 5, Seed: seed})
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return js
}
