package jobs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/workload"
)

func validJob() Job {
	return Job{ID: 1, Workload: "vgg-16", NumGPUs: 3, Shape: appgraph.ShapeRing, Sensitive: true, Iters: 6500}
}

func TestJobValidate(t *testing.T) {
	if err := validJob().Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Job)
	}{
		{"zero GPUs", func(j *Job) { j.NumGPUs = 0 }},
		{"zero iters", func(j *Job) { j.Iters = 0 }},
		{"unknown workload", func(j *Job) { j.Workload = "bert" }},
		{"unknown shape", func(j *Job) { j.Shape = "Mesh" }},
	}
	for _, tc := range cases {
		j := validJob()
		tc.mutate(&j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestJobPattern(t *testing.T) {
	j := validJob()
	g, err := j.Pattern()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("pattern: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestRoundTrip(t *testing.T) {
	in := []Job{
		validJob(),
		{ID: 2, Workload: "cusimann", NumGPUs: 1, Shape: appgraph.ShapeStar, Sensitive: false, Iters: 2000},
		{ID: 3, Workload: "googlenet", NumGPUs: 5, Shape: appgraph.ShapeRing, Sensitive: false, Iters: 7000},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestWriteRejectsInvalidJob(t *testing.T) {
	bad := validJob()
	bad.NumGPUs = 0
	var buf bytes.Buffer
	if err := Write(&buf, []Job{bad}); err == nil {
		t.Fatal("Write should validate jobs")
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	in := `# header
1,vgg-16,3,Ring,true,6500

# trailing comment
2,gmm,2,Star,false,2200
`
	js, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 2 || js[0].Workload != "vgg-16" || js[1].Workload != "gmm" {
		t.Fatalf("parsed %+v", js)
	}
}

func TestParseWhitespaceTolerant(t *testing.T) {
	js, err := Parse(strings.NewReader("1, vgg-16 , 3 , Ring , true , 6500"))
	if err != nil {
		t.Fatal(err)
	}
	if js[0].Workload != "vgg-16" || js[0].NumGPUs != 3 {
		t.Fatalf("parsed %+v", js[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                           // no jobs
		"1,vgg-16,3,Ring,true",       // missing field
		"x,vgg-16,3,Ring,true,6500",  // bad id
		"1,vgg-16,x,Ring,true,6500",  // bad numGPUs
		"1,vgg-16,3,Blob,true,6500",  // bad shape
		"1,vgg-16,3,Ring,maybe,6500", // bad bool
		"1,vgg-16,3,Ring,true,x",     // bad iters
		"1,unknown,3,Ring,true,6500", // unknown workload
		"1,vgg-16,0,Ring,true,6500",  // invalid GPUs
		"# only comments\n\n",        // still no jobs
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected parse error", in)
		}
	}
}

func TestGenerateUniformMix(t *testing.T) {
	js, err := Generate(GenerateConfig{N: 3000, MaxGPUs: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 3000 {
		t.Fatalf("generated %d jobs", len(js))
	}
	gpuCounts := make(map[int]int)
	wlCounts := make(map[string]int)
	for i, j := range js {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if j.ID != i+1 {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		gpuCounts[j.NumGPUs]++
		wlCounts[j.Workload]++
		// Sensitivity must match the catalog annotation.
		w, _ := workload.ByName(j.Workload)
		if j.Sensitive != w.Sensitive {
			t.Fatalf("job %d sensitivity %v mismatches workload %s", i, j.Sensitive, j.Workload)
		}
	}
	// Uniformity: every GPU count 1..5 within 3x of each other.
	for k := 1; k <= 5; k++ {
		if gpuCounts[k] < 3000/5/3 {
			t.Errorf("GPU count %d appeared only %d times", k, gpuCounts[k])
		}
	}
	if len(wlCounts) != len(workload.All()) {
		t.Errorf("only %d workloads in mix", len(wlCounts))
	}
}

func TestGenerateReproducible(t *testing.T) {
	a, _ := Generate(GenerateConfig{N: 50, MaxGPUs: 5, Seed: 7})
	b, _ := Generate(GenerateConfig{N: 50, MaxGPUs: 5, Seed: 7})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give same jobs")
	}
	c, _ := Generate(GenerateConfig{N: 50, MaxGPUs: 5, Seed: 8})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateRestrictedWorkloads(t *testing.T) {
	vgg, _ := workload.ByName("vgg-16")
	js, err := Generate(GenerateConfig{N: 20, MaxGPUs: 3, Workloads: []workload.Workload{vgg}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range js {
		if j.Workload != "vgg-16" {
			t.Fatalf("unexpected workload %s", j.Workload)
		}
		if j.NumGPUs > 3 {
			t.Fatalf("NumGPUs %d > MaxGPUs", j.NumGPUs)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenerateConfig{N: 0, MaxGPUs: 5}); err == nil {
		t.Error("N=0 should error")
	}
	if _, err := Generate(GenerateConfig{N: 5, MaxGPUs: 0}); err == nil {
		t.Error("MaxGPUs=0 should error")
	}
}

func TestPaperMix(t *testing.T) {
	js := PaperMix(1)
	if len(js) != 300 {
		t.Fatalf("paper mix has %d jobs", len(js))
	}
	for _, j := range js {
		if j.NumGPUs < 1 || j.NumGPUs > 5 {
			t.Fatalf("job %d requests %d GPUs", j.ID, j.NumGPUs)
		}
	}
}
