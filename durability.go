package mapa

// Durability: the System's write-ahead journaling, snapshot/recovery,
// and lease-TTL layer. The mutators in mapa.go append one journal
// record per committed mutation under the state lock, after validation
// and before any in-memory change (see journalAppend); this file holds
// the construction-time recovery that replays snapshot + journal back
// into a fresh System, the snapshot capture that lets the journal
// compact, and the TTL APIs (Renew, ReapExpired) whose expirations are
// journaled as releases.

import (
	"fmt"
	"sort"
	"time"

	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/journal"
	"mapa/internal/mig"
	"mapa/internal/policy"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// WithJournal makes the System durable: every committed mutation is
// appended to a write-ahead journal in dir before it is applied, and
// NewSystem recovers the directory's snapshot + journal — rebuilding
// leases, owners, TTL deadlines, health marks, degraded links, and the
// repartition map exactly as they were — before serving. A torn final
// journal record (the signature of a crash mid-append) is discarded;
// any other corruption fails NewSystem rather than silently dropping
// acknowledged state. Pair with periodic System.Snapshot calls to
// bound replay length.
func WithJournal(dir string, opts journal.Options) SystemOption {
	return func(c *systemConfig) {
		c.journalDir = dir
		c.journalOpts = opts
	}
}

// RecoveryStats describes what NewSystem recovered from the journal.
type RecoveryStats struct {
	// Enabled reports whether the System runs with a journal at all.
	Enabled bool
	// SnapshotLSN is the log position of the snapshot the recovery
	// started from (0 = no snapshot, replayed from genesis).
	SnapshotLSN uint64
	// Records is the number of journal records replayed on top of it.
	Records int
	// Leases is the number of live leases after recovery.
	Leases int
	// ReplayTime is the wall time of snapshot install + record replay.
	ReplayTime time.Duration
}

// Recovery returns the construction-time recovery stats (zero when the
// System has no journal).
func (s *System) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// JournalStats returns the journal's counters; ok is false when the
// System has no journal.
func (s *System) JournalStats() (_ journal.Stats, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jw == nil {
		return journal.Stats{}, false
	}
	return s.jw.Stats(), true
}

// recoverFromJournal opens the journal, installs its snapshot, and
// replays the live records through the real mutators — then, and only
// then, attaches the journal to the System, so replay itself never
// re-journals. Called from NewSystem before the match pipeline exists:
// view publishes no-op on nil, and the pipeline is built afterwards
// for the final recovered topology.
func (s *System) recoverFromJournal(dir string, opts journal.Options) (err error) {
	jw, jerr := journal.Open(dir, opts)
	if jerr != nil {
		return jerr
	}
	defer func() {
		if err != nil {
			jw.Close()
		}
	}()
	start := time.Now()
	snap, recs := jw.Recovered()
	s.recovering = true
	if snap != nil {
		if err := s.installSnapshot(snap); err != nil {
			return err
		}
	}
	for i := range recs {
		if err := s.applyRecord(&recs[i]); err != nil {
			return fmt.Errorf("mapa: journal replay: record %d (seq %d, %s): %w",
				i, recs[i].Seq, recs[i].Kind, err)
		}
	}
	s.recovering = false
	// Repartition replay defers scorer retraining (there is no pipeline
	// to serve yet); if the recovered machine is virtual, retrain once.
	if s.baseTop != nil {
		s.scorer = score.NewScorer(effbw.TrainedFor(s.top))
		policy.SetScorer(s.alloc, s.scorer)
	}
	s.jw = jw
	var snapLSN uint64
	if snap != nil {
		snapLSN = snap.LSN
	}
	s.recovery = RecoveryStats{
		Enabled:     true,
		SnapshotLSN: snapLSN,
		Records:     len(recs),
		Leases:      len(s.leases),
		ReplayTime:  time.Since(start),
	}
	return nil
}

// applyRecord replays one journal record through the System's real
// mutators. Allocate records are the exception: the journaled GPU set
// is installed directly — recovery must reproduce the committed
// decision, not re-run the policy against a pipeline that no longer
// sees the same state.
func (s *System) applyRecord(rec *journal.Record) error {
	switch rec.Kind {
	case journal.KindAllocate:
		return s.applyRecoveredAllocate(rec)
	case journal.KindRelease:
		return s.releaseLocked(rec.ID, rec.Expired)
	case journal.KindMark:
		return s.markUnhealthyLocked(rec.GPUs)
	case journal.KindRestore:
		return s.restoreLocked(rec.GPUs)
	case journal.KindDegrade:
		return s.degradeLinkLocked(rec.U, rec.V, rec.BW)
	case journal.KindRepartition:
		slices := make(map[int]int, len(rec.Slices))
		for _, sl := range rec.Slices {
			slices[sl.GPU] = sl.Instances
		}
		return s.repartitionLocked(slices)
	case journal.KindRenew:
		return s.renewLocked(rec.ID, rec.Deadline)
	}
	return fmt.Errorf("unknown record kind %d", uint8(rec.Kind))
}

// applyRecoveredAllocate installs a journaled allocation. The ID must
// be exactly the next one — a repeat or a skip means the journal holds
// a duplicated or missing record, which contiguity checking upstream
// should have caught, so it is treated as corruption.
func (s *System) applyRecoveredAllocate(rec *journal.Record) error {
	if rec.ID != s.nextID+1 {
		return fmt.Errorf("lease ID %d out of order (next is %d): duplicate or missing record", rec.ID, s.nextID+1)
	}
	if len(rec.GPUs) == 0 {
		return fmt.Errorf("lease %d has no GPUs", rec.ID)
	}
	for _, g := range rec.GPUs {
		if !s.avail.HasVertex(g) {
			return fmt.Errorf("GPU %d not free for lease %d", g, rec.ID)
		}
	}
	for _, g := range rec.GPUs {
		s.avail.RemoveVertex(g)
	}
	s.publishAllocate(rec.GPUs)
	s.nextID = rec.ID
	gpus := append([]int(nil), rec.GPUs...)
	s.leases[rec.ID] = gpus
	for _, g := range gpus {
		s.leasedBy[g] = rec.ID
	}
	if rec.Owner != "" {
		s.owners[rec.ID] = rec.Owner
	}
	if rec.Deadline != 0 {
		s.expiry[rec.ID] = rec.Deadline
	}
	return nil
}

// installSnapshot loads a snapshot's state directly into a fresh
// System: base-machine link degradations, the recomposed virtual
// machine (when repartitioned), post-compose link degradations, then
// leases and health marks. Everything is validated against the built
// topology; a snapshot that does not fit the machine is corruption.
func (s *System) installSnapshot(snap *journal.Snapshot) error {
	if snap.Topology != s.catalogName {
		return fmt.Errorf("mapa: journal snapshot is for topology %q, System built for %q", snap.Topology, s.catalogName)
	}
	if snap.Policy != s.alloc.Name() {
		return fmt.Errorf("mapa: journal snapshot is for policy %q, System built for %q", snap.Policy, s.alloc.Name())
	}
	if len(snap.Instances) > 0 {
		// Compose from the pristine-weight base: mig.Compose validates
		// link weights against canonical labels, so degraded links — on
		// the base or the virtual machine — are reapplied as weight
		// diffs after composition, never fed through it.
		s.baseTop = s.top
		s.instances = make(map[int][]int, len(snap.Instances))
		for _, is := range snap.Instances {
			s.instances[is.GPU] = append([]int(nil), is.VIDs...)
		}
		s.nextVID = snap.NextVID
		vt, err := mig.Compose(s.baseTop, s.instances)
		if err != nil {
			return fmt.Errorf("mapa: journal snapshot: recomposing instances: %w", err)
		}
		if err := applyLinks(snap.BaseLinks, s.baseTop.Graph); err != nil {
			return err
		}
		if err := applyLinks(snap.BasePhysLinks, s.baseTop.Physical); err != nil {
			return err
		}
		s.top = vt.Topology
		s.physOf = make(map[int]int, len(vt.PhysicalOf))
		for v, p := range vt.PhysicalOf {
			s.physOf[v] = p
		}
		s.fractions = make(map[int]float64, len(vt.Fraction))
		for v, f := range vt.Fraction {
			s.fractions[v] = f
		}
		s.avail = s.top.Graph.Clone()
	}
	if err := applyLinks(snap.Links, s.top.Graph, s.avail); err != nil {
		return err
	}
	if err := applyLinks(snap.PhysLinks, s.top.Physical); err != nil {
		return err
	}
	score.InvalidateMixes(s.top)
	if snap.NextID < 0 {
		return fmt.Errorf("mapa: journal snapshot: negative next_id %d", snap.NextID)
	}
	s.nextID = snap.NextID
	for _, ls := range snap.Leases {
		if ls.ID <= 0 || ls.ID > snap.NextID {
			return fmt.Errorf("mapa: journal snapshot: lease ID %d outside 1..%d", ls.ID, snap.NextID)
		}
		if _, dup := s.leases[ls.ID]; dup {
			return fmt.Errorf("mapa: journal snapshot: lease %d listed twice", ls.ID)
		}
		if len(ls.GPUs) == 0 {
			return fmt.Errorf("mapa: journal snapshot: lease %d has no GPUs", ls.ID)
		}
		for _, g := range ls.GPUs {
			if !s.avail.HasVertex(g) {
				return fmt.Errorf("mapa: journal snapshot: GPU %d not free for lease %d", g, ls.ID)
			}
		}
		for _, g := range ls.GPUs {
			s.avail.RemoveVertex(g)
		}
		gpus := append([]int(nil), ls.GPUs...)
		s.leases[ls.ID] = gpus
		for _, g := range gpus {
			s.leasedBy[g] = ls.ID
		}
		if ls.Owner != "" {
			s.owners[ls.ID] = ls.Owner
		}
		if ls.Deadline != 0 {
			s.expiry[ls.ID] = ls.Deadline
		}
	}
	for _, g := range snap.Unhealthy {
		if !s.top.Graph.HasVertex(g) {
			return fmt.Errorf("mapa: journal snapshot: unhealthy GPU %d not in topology", g)
		}
		if s.unhealthy[g] {
			return fmt.Errorf("mapa: journal snapshot: GPU %d marked unhealthy twice", g)
		}
		s.unhealthy[g] = true
		if _, leased := s.leasedBy[g]; !leased {
			s.avail.RemoveVertex(g)
		}
	}
	return nil
}

// applyLinks installs recorded link weights onto each graph that has
// the edge (the availability graph drops edges as GPUs lease out, so
// it is checked per edge). Structure never changes — a snapshot link
// that does not exist in the rebuilt topology is corruption.
func applyLinks(links []journal.Link, graphs ...*graph.Graph) error {
	for gi, g := range graphs {
		for _, l := range links {
			e, ok := g.EdgeBetween(l.U, l.V)
			if !ok {
				if gi > 0 {
					continue // availability graph: endpoint already leased out
				}
				return fmt.Errorf("mapa: journal snapshot: no link (%d,%d) in topology", l.U, l.V)
			}
			g.MustAddEdge(l.U, l.V, l.BW, e.Label)
		}
	}
	return nil
}

// Snapshot captures the System's full state under the state lock and
// writes it to the journal, which compacts: the wal is truncated once
// the snapshot is durable, so recovery replays only records appended
// after this call. Mutations block for the duration (small-state JSON
// plus two fsyncs — milliseconds); call it periodically, not per
// operation. Errors if the System has no journal.
func (s *System) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jw == nil {
		return fmt.Errorf("mapa: system has no journal")
	}
	snap, err := s.captureSnapshotLocked()
	if err != nil {
		return err
	}
	snap.LSN = s.jw.LastSeq()
	return s.jw.WriteSnapshot(snap)
}

// Close writes a final snapshot (when journaling) and closes the
// journal; the SIGTERM drain path calls it after in-flight requests
// finish. Journaled mutations fail after Close.
func (s *System) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jw == nil {
		return nil
	}
	snap, err := s.captureSnapshotLocked()
	if err == nil {
		snap.LSN = s.jw.LastSeq()
		err = s.jw.WriteSnapshot(snap)
	}
	if cerr := s.jw.Close(); err == nil {
		err = cerr
	}
	s.jw = nil
	return err
}

// captureSnapshotLocked serializes the current state as a directly
// installable snapshot. Link state is stored as diffs against the
// pristine catalog topology (and, when repartitioned, against a fresh
// re-compose of the recorded instances over the pristine base), so
// snapshots stay small on healthy machines.
func (s *System) captureSnapshotLocked() (*journal.Snapshot, error) {
	pristine, err := topology.ByName(s.catalogName)
	if err != nil {
		return nil, err
	}
	snap := &journal.Snapshot{
		Topology: s.catalogName,
		Policy:   s.alloc.Name(),
		NextID:   s.nextID,
	}
	ids := make([]int, 0, len(s.leases))
	for id := range s.leases {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		snap.Leases = append(snap.Leases, journal.LeaseState{
			ID:       id,
			Owner:    s.owners[id],
			GPUs:     append([]int(nil), s.leases[id]...),
			Deadline: s.expiry[id],
		})
	}
	for g := range s.unhealthy {
		snap.Unhealthy = append(snap.Unhealthy, g)
	}
	sort.Ints(snap.Unhealthy)
	if s.baseTop != nil {
		snap.BaseLinks = diffLinks(s.baseTop.Graph, pristine.Graph)
		snap.BasePhysLinks = diffLinks(s.baseTop.Physical, pristine.Physical)
		phys := make([]int, 0, len(s.instances))
		for g := range s.instances {
			phys = append(phys, g)
		}
		sort.Ints(phys)
		for _, g := range phys {
			snap.Instances = append(snap.Instances, journal.InstanceSet{
				GPU: g, VIDs: append([]int(nil), s.instances[g]...),
			})
		}
		snap.NextVID = s.nextVID
		// Compose from the pristine base, not s.baseTop: Compose
		// validates canonical link weights, and the live base may carry
		// degrades written through from the virtual machine. Every
		// weight deviation of the live virtual topology lands in
		// Links/PhysLinks as a diff against this canonical composition.
		vt, err := mig.Compose(pristine, s.instances)
		if err != nil {
			return nil, fmt.Errorf("mapa: snapshot: recomposing instances: %w", err)
		}
		snap.Links = diffLinks(s.top.Graph, vt.Topology.Graph)
		snap.PhysLinks = diffLinks(s.top.Physical, vt.Topology.Physical)
	} else {
		snap.Links = diffLinks(s.top.Graph, pristine.Graph)
		snap.PhysLinks = diffLinks(s.top.Physical, pristine.Physical)
	}
	return snap, nil
}

// diffLinks returns the edges of cur whose weight differs from ref,
// sorted by endpoints. Only weights can differ: every topology
// mutation preserves link structure.
func diffLinks(cur, ref *graph.Graph) []journal.Link {
	var out []journal.Link
	ref.ForEachEdge(func(e graph.Edge) bool {
		if w := cur.Weight(e.U, e.V); w != e.Weight {
			out = append(out, journal.Link{U: e.U, V: e.V, BW: w})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Renew extends (ttl > 0) or clears (ttl <= 0) a lease's expiry
// deadline, journaling the new deadline so it survives recovery.
// Returns the new deadline in Unix nanoseconds (0 when cleared).
func (s *System) Renew(id int, ttl time.Duration) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var deadline int64
	if ttl > 0 {
		deadline = time.Now().Add(ttl).UnixNano()
	}
	if err := s.renewLocked(id, deadline); err != nil {
		return 0, err
	}
	return deadline, nil
}

func (s *System) renewLocked(id int, deadline int64) error {
	if _, ok := s.leases[id]; !ok {
		return fmt.Errorf("mapa: lease %d not active", id)
	}
	if err := s.journalAppend(&journal.Record{Kind: journal.KindRenew, ID: id, Deadline: deadline}); err != nil {
		return err
	}
	if deadline == 0 {
		delete(s.expiry, id)
	} else {
		s.expiry[id] = deadline
	}
	s.commit(commitOp{kind: opRenew, id: id, deadline: deadline})
	return nil
}

// ReapExpired releases every lease whose TTL deadline is at or before
// now, journaling each expiration as a release marked Expired — a
// tenant that died mid-lease stops leaking its GPUs once its TTL
// lapses. Returns the reaped lease IDs in ascending order. An error
// (a failed journal append, or a lease straddling corrupted topology)
// stops the sweep; already-reaped IDs are still returned.
func (s *System) ReapExpired(now time.Time) ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := now.UnixNano()
	var due []int
	for id, dl := range s.expiry {
		if dl <= cutoff {
			due = append(due, id)
		}
	}
	sort.Ints(due)
	var reaped []int
	for _, id := range due {
		if err := s.releaseLocked(id, true); err != nil {
			return reaped, err
		}
		reaped = append(reaped, id)
	}
	return reaped, nil
}

// Reaped returns the number of leases released by TTL expiry over the
// System's lifetime (including expirations replayed during recovery).
func (s *System) Reaped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reaped
}

// LeaseInfo describes one live lease for inspection APIs.
type LeaseInfo struct {
	ID       int
	Owner    string
	GPUs     []int
	Deadline int64 // Unix nanoseconds; 0 = no TTL
}

// Leases returns the live leases in ascending ID order, with copied
// GPU slices.
func (s *System) Leases() []LeaseInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int, 0, len(s.leases))
	for id := range s.leases {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]LeaseInfo, len(ids))
	for i, id := range ids {
		out[i] = LeaseInfo{
			ID:       id,
			Owner:    s.owners[id],
			GPUs:     append([]int(nil), s.leases[id]...),
			Deadline: s.expiry[id],
		}
	}
	return out
}

// LeaseOwners returns a copy of the lease ID -> owner label map
// (labeled leases only); mapad uses it to rebuild per-tenant ownership
// after recovery.
func (s *System) LeaseOwners() map[int]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]string, len(s.owners))
	for id, o := range s.owners {
		out[id] = o
	}
	return out
}
