// Fragmentation reproduces the paper's motivation study (Sec. 2.2,
// Fig. 4): 100 ML training jobs scheduled with the ID-ordered baseline
// policy on a DGX-V, measuring how far each job's allocated aggregate
// bandwidth falls below the ideal same-size allocation
// (BW_Allocated / BW_IdealAllocation). Most multi-GPU jobs end up
// fragmented — the problem MAPA exists to fix.
//
// Run with: go run ./examples/fragmentation
package main

import (
	"fmt"
	"log"
	"sort"

	"mapa"
)

func main() {
	const topo = "dgx-v100"
	jobs := mapa.PaperJobMix(4)[:100]

	res, err := mapa.Simulate(topo, "baseline", jobs)
	if err != nil {
		log.Fatal(err)
	}

	// Group allocation quality by requested GPU count, as Fig. 4 does.
	byK := make(map[int][]float64)
	for _, j := range res.Jobs {
		if j.NumGPUs < 2 {
			continue
		}
		alloc, err := mapa.AllocationAggregateBandwidth(topo, j.GPUs)
		if err != nil {
			log.Fatal(err)
		}
		ideal, err := mapa.IdealAggregateBandwidth(topo, j.NumGPUs)
		if err != nil {
			log.Fatal(err)
		}
		byK[j.NumGPUs] = append(byK[j.NumGPUs], alloc/ideal)
	}

	fmt.Println("Fig. 4 — BW_Allocated / BW_IdealAllocation under the baseline policy:")
	fmt.Printf("%-8s %6s %8s %8s %8s %8s %8s\n", "numGPUs", "jobs", "min", "q1", "median", "q3", "max")
	ks := make([]int, 0, len(byK))
	for k := range byK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		vals := byK[k]
		sort.Float64s(vals)
		fmt.Printf("%-8d %6d %8.2f %8.2f %8.2f %8.2f %8.2f\n", k, len(vals),
			vals[0], quantile(vals, 0.25), quantile(vals, 0.5), quantile(vals, 0.75), vals[len(vals)-1])
	}
	fmt.Println("\nValues below 1.0 are fragmented allocations; the paper observes 75% of")
	fmt.Println("3-GPU jobs at 0.8 or worse under the same baseline policy.")
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
