// Multitenant reproduces the paper's DGX-V evaluation (Sec. 4,
// Fig. 13 and Table 3): 300 randomly mixed training jobs scheduled
// FIFO under the four allocation policies, reporting per-sensitivity
// execution-time and effective-bandwidth distributions plus the
// speedup summary table.
//
// Run with: go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"sort"

	"mapa"
)

func main() {
	jobs := mapa.PaperJobMix(1)
	fmt.Printf("Scheduling %d jobs (paper mix) on dgx-v100 under all policies...\n\n", len(jobs))

	results, err := mapa.CompareAllPolicies("dgx-v100", jobs)
	if err != nil {
		log.Fatal(err)
	}

	order := []string{"baseline", "topo-aware", "greedy", "preserve"}
	fmt.Println("Fig. 13 — per-policy distributions over bandwidth-sensitive multi-GPU jobs:")
	fmt.Printf("%-12s %10s %10s %10s %10s %12s\n", "policy", "ET q1", "ET med", "ET q3", "ET max", "EffBW med")
	for _, name := range order {
		res := results[name]
		var times, bws []float64
		for _, j := range res.Jobs {
			if j.Sensitive && j.NumGPUs >= 2 {
				times = append(times, j.ExecTime)
				bws = append(bws, j.PredictedEffBW)
			}
		}
		sort.Float64s(times)
		sort.Float64s(bws)
		fmt.Printf("%-12s %10.0f %10.0f %10.0f %10.0f %12.1f\n",
			name, quantile(times, 0.25), quantile(times, 0.5), quantile(times, 0.75),
			times[len(times)-1], quantile(bws, 0.5))
	}

	fmt.Println("\nTable 3 — speedup vs baseline (higher is better):")
	base := results["baseline"]
	baseTimes := sensitiveTimes(base)
	fmt.Printf("%-12s %8s %8s %8s %8s %8s\n", "policy", "25th%", "50th%", "75th%", "MAX", "Tput")
	for _, name := range order {
		times := sensitiveTimes(results[name])
		fmt.Printf("%-12s %8.3f %8.3f %8.3f %8.3f %8.3f\n", name,
			quantile(baseTimes, 0.25)/quantile(times, 0.25),
			quantile(baseTimes, 0.5)/quantile(times, 0.5),
			quantile(baseTimes, 0.75)/quantile(times, 0.75),
			baseTimes[len(baseTimes)-1]/times[len(times)-1],
			results[name].Throughput/base.Throughput)
	}
}

func sensitiveTimes(res mapa.SimulationResult) []float64 {
	var times []float64
	for _, j := range res.Jobs {
		if j.Sensitive && j.NumGPUs >= 2 {
			times = append(times, j.ExecTime)
		}
	}
	sort.Float64s(times)
	return times
}

// quantile interpolates the q-th quantile of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
