// Traceextract demonstrates the paper's two application-topology
// extraction paths (Sec. 3.1, Fig. 9): building the pattern graph from
// a source-analysis call trace and from runtime link-traffic
// profiling, then allocating each with MAPA.
//
// Run with: go run ./examples/traceextract
package main

import (
	"fmt"
	"log"
	"strings"

	"mapa"
)

func main() {
	sys, err := mapa.NewSystem("dgx-v100", "preserve")
	if err != nil {
		log.Fatal(err)
	}

	// --- Path 1: source-code analysis (Fig. 9a) -------------------
	// A Caffe-style training loop: one big ncclAllReduce per layer
	// over 4 devices, plus an explicit peer copy for a pipeline stage.
	calls := []mapa.CollectiveCall{
		{API: mapa.CallAllReduce, Devices: []int{0, 1, 2, 3}, Bytes: 32 << 20},
		{API: mapa.CallMemcpyPeer, Devices: []int{0, 3}, Bytes: 4 << 20},
	}
	fromSource, err := mapa.PatternFromCalls(calls)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source analysis: %d GPUs, %d communication pairs\n",
		fromSource.NumGPUs(), fromSource.NumEdges())

	lease1, err := sys.AllocatePattern(fromSource, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> allocated GPUs %v (predicted EffBW %.1f GB/s)\n\n", lease1.GPUs, lease1.EffBW)

	// --- Path 2: runtime profiling (Fig. 9b) ----------------------
	// nvidia-smi-style NVLink counters: heavy traffic between three
	// GPU pairs, plus incidental noise that the threshold filters out.
	profile := `# gpuA gpuB bytes
0 1 9000000000
1 2 8500000000
2 0 9100000000
0 3 4096
`
	fromProfile, err := mapa.PatternFromProfile(strings.NewReader(profile), 1e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runtime profiling: %d GPUs, %d communication pairs (noise filtered)\n",
		fromProfile.NumGPUs(), fromProfile.NumEdges())

	lease2, err := sys.AllocatePattern(fromProfile, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> allocated GPUs %v (predicted EffBW %.1f GB/s)\n", lease2.GPUs, lease2.EffBW)
	fmt.Printf("\nfree GPUs remaining: %v\n", sys.FreeGPUs())
}
