// Quickstart: allocate multi-GPU jobs on a DGX-1 V100 with MAPA's
// Preserve policy and watch the hardware-graph state evolve.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mapa"
)

func main() {
	// A MAPA System manages one machine: here the paper's DGX-1 V100
	// (8 Volta GPUs in a hybrid cube mesh) under the Preserve policy.
	sys, err := mapa.NewSystem("dgx-v100", "preserve")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Machine: %s (%d GPUs), policy: %s\n\n", sys.Topology(), sys.NumGPUs(), sys.Policy())
	fmt.Println(sys.Matrix())

	// A bandwidth-sensitive 3-GPU training job (e.g. VGG-16). Preserve
	// gives it the match with the highest predicted effective
	// bandwidth.
	vgg, err := sys.Allocate(mapa.JobRequest{NumGPUs: 3, Shape: "Ring", Sensitive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensitive 3-GPU job   -> GPUs %v  (predicted EffBW %.1f GB/s, AggBW %.0f GB/s)\n",
		vgg.GPUs, vgg.EffBW, vgg.AggBW)

	// A bandwidth-insensitive job (e.g. GoogleNet). Preserve places it
	// to keep the most bandwidth free for future sensitive jobs.
	goog, err := sys.Allocate(mapa.JobRequest{NumGPUs: 3, Shape: "Ring", Sensitive: false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("insensitive 3-GPU job -> GPUs %v  (preserved BW %.0f GB/s)\n", goog.GPUs, goog.PreservedBW)
	fmt.Printf("free GPUs now: %v\n", sys.FreeGPUs())

	// When the sensitive job finishes, its GPUs return to the pool and
	// the next job can reuse the freed links.
	if err := sys.Release(vgg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after release: free GPUs %v\n", sys.FreeGPUs())

	next, err := sys.Allocate(mapa.JobRequest{NumGPUs: 2, Sensitive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("next sensitive 2-GPU job -> GPUs %v (predicted EffBW %.1f GB/s)\n", next.GPUs, next.EffBW)
}
