// Exploration reproduces the paper's novel-topology study (Sec. 5,
// Fig. 18): the same multi-tenant job mix scheduled on the 16-GPU
// Torus-2d and Cube-mesh machines under all four policies. The paper's
// finding — MAPA's advantage grows as topologies get larger and less
// uniform — shows up as Preserve lifting the lower tail (min / 25th
// percentile) of effective bandwidth for sensitive jobs, most strongly
// on the irregular Cube-mesh.
//
// Run with: go run ./examples/exploration
package main

import (
	"fmt"
	"log"
	"sort"

	"mapa"
)

func main() {
	jobs := mapa.PaperJobMix(1)
	for _, topo := range []string{"torus-2d", "cubemesh-16"} {
		fmt.Printf("== %s: %d jobs under all policies\n", topo, len(jobs))
		results, err := mapa.CompareAllPoliciesFixed(topo, jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8s %8s %8s %8s %8s\n", "policy", "BW min", "BW q1", "BW med", "BW q3", "BW max")
		for _, name := range []string{"baseline", "topo-aware", "greedy", "preserve"} {
			var bws []float64
			for _, j := range results[name].Jobs {
				if j.Sensitive && j.NumGPUs >= 2 {
					bws = append(bws, j.PredictedEffBW)
				}
			}
			sort.Float64s(bws)
			fmt.Printf("%-12s %8.1f %8.1f %8.1f %8.1f %8.1f\n", name,
				bws[0], quantile(bws, 0.25), quantile(bws, 0.5), quantile(bws, 0.75), bws[len(bws)-1])
		}
		fmt.Println()
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
