// Package mapa is a Go implementation of MAPA — Multi-Accelerator
// Pattern Allocation (Ranganath et al., SC '21) — a graph
// pattern-matching approach to allocating multi-GPU jobs on
// multi-tenant multi-accelerator servers.
//
// MAPA abstracts the server as a weighted hardware graph (vertices =
// GPUs, edge weights = best link bandwidth) and each job as a small
// application pattern graph (vertices = requested GPUs, edges =
// inter-GPU communication). Allocation mines the available hardware
// graph for subgraph-isomorphic matches of the pattern, scores each
// match (Aggregated Bandwidth, Predicted Effective Bandwidth,
// Preserved Bandwidth), and selects one with the Preserve policy:
// bandwidth-sensitive jobs get the match with the highest predicted
// effective bandwidth, insensitive jobs the match that preserves the
// most bandwidth for future sensitive jobs.
//
// The package offers two entry points:
//
//   - System: a live allocator for one machine. Allocate leases GPUs
//     for jobs and Release returns them, with the hardware-graph state
//     managed internally.
//   - Simulate / CompareAllPolicies: the multi-tenant scheduling
//     simulator used to reproduce the paper's evaluation.
package mapa

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mapa/internal/appgraph"
	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/jobs"
	"mapa/internal/journal"
	"mapa/internal/matchcache"
	"mapa/internal/mig"
	"mapa/internal/policy"
	"mapa/internal/sched"
	"mapa/internal/score"
	"mapa/internal/topology"
	"mapa/internal/workload"
)

// Topologies lists the built-in hardware topologies: the paper's
// DGX-1 V100, DGX-1 P100, Summit node, the NVSwitch-fabric DGX-2 and
// DGX A100, and the 16-GPU Torus-2d and Cube-mesh exploration
// machines.
func Topologies() []string { return topology.Names() }

// Policies lists the built-in allocation policies. The paper's
// evaluation set is baseline, topo-aware, greedy, and preserve; the
// rest are ablations.
func Policies() []string { return policy.Names() }

// Workloads lists the built-in workload models (the paper's six Caffe
// CNNs plus Cusimann, GMM, and Jacobi).
func Workloads() []string { return workload.Names() }

// Shapes lists the supported application communication patterns.
func Shapes() []string {
	var out []string
	for _, s := range appgraph.Shapes() {
		out = append(out, string(s))
	}
	return out
}

// JobRequest describes one allocation request to a System.
type JobRequest struct {
	// NumGPUs is the number of accelerators requested (required).
	NumGPUs int
	// Shape names the communication pattern; empty defaults to Ring,
	// NCCL's large-transfer topology.
	Shape string
	// Sensitive annotates bandwidth sensitivity (Algorithm 1 input).
	Sensitive bool
	// Owner is an opaque label recorded with the lease (and journaled,
	// so it survives recovery); mapad stores the owning tenant name
	// here. Empty means unowned.
	Owner string
	// TTL bounds the lease lifetime: a lease not renewed within TTL is
	// released by ReapExpired, its GPUs returning to the free pool.
	// Zero means no expiry.
	TTL time.Duration
}

// Lease is a granted allocation. Release it back to the System when
// the job finishes.
type Lease struct {
	// ID identifies the lease within its System.
	ID int
	// GPUs are the allocated device IDs. The slice is the caller's to
	// keep — sorting, truncating, or serializing it never affects the
	// System's internal lease record.
	GPUs []int
	// EffBW is the predicted effective bandwidth (GB/s) of the
	// allocation; AggBW and PreservedBW are the other MAPA scores.
	EffBW, AggBW, PreservedBW float64
	// Deadline is the lease expiry in Unix nanoseconds (0 = no TTL),
	// set when the request carried a TTL. Renew extends it.
	Deadline int64
}

// System is a live MAPA allocator for one machine. It owns the
// hardware-graph state: Allocate removes GPUs, Release restores them
// (Sec. 3.6 of the paper), and the topology-mutation events —
// MarkUnhealthy/Restore (device health), DegradeLink (link
// degradation), Repartition (MIG re-slicing) — update that state in
// place, repairing the match pipeline incrementally instead of
// rebuilding it. System is safe for concurrent use.
//
// Every mutating call is atomic: it either applies completely or
// returns an error leaving the free set, the lease table, and the
// published delta stream byte-identical to the pre-call state.
//
// The state lock covers decision-critical state only: Allocate builds
// a cold shape's match universe and score table *before* taking it
// (see Store.Ensure), so one tenant's cold miss — hundreds of
// milliseconds of enumeration on a large machine — never stalls
// another tenant's table-served decision, Release, or health event.
// Concurrent cold requests for one shape converge on a single build.
type System struct {
	mu        sync.Mutex
	top       *topology.Topology
	alloc     policy.Allocator
	scorer    *score.Scorer
	avail     *graph.Graph
	cache     *matchcache.Cache
	store     *matchcache.Store
	views     *matchcache.Views
	leases    map[int][]int
	leasedBy  map[int]int    // GPU -> ID of the lease holding it
	owners    map[int]string // lease ID -> owner label (only labeled leases)
	expiry    map[int]int64  // lease ID -> deadline, Unix nanos (only TTL'd leases)
	unhealthy map[int]bool   // GPUs marked unhealthy: visible, unallocatable
	nextID    int
	cfg       systemConfig
	warmDone  chan struct{} // closed when background warming finishes; nil otherwise

	// Durability (see durability.go). jw is the write-ahead journal
	// every committed mutation is appended to under mu, before the
	// in-memory mutation, so an append failure aborts the operation
	// cleanly; nil when journaling is off and during recovery replay.
	// catalogName is the topology name the System was built from —
	// the key snapshots use to rebuild pristine reference state.
	jw          *journal.Journal
	catalogName string
	recovering  bool // replaying the journal inside NewSystem
	recovery    RecoveryStats
	reaped      uint64 // leases released by TTL expiry

	// tenants are the live per-tenant serving handles (see NewTenant);
	// every state delta fans out to each tenant's view stream. Guarded
	// by mu, like the Tenant fields themselves.
	tenants      map[int]*Tenant
	nextTenantID int

	// Test hooks. prewarmGate runs during Allocate's unlocked prewarm
	// phase (keyed by request size) so tests can hold a cold build in
	// flight; onCommit observes every committed mutation under mu — the
	// exact linearization — for replay-oracle suites.
	prewarmGate func(numGPUs int)
	onCommit    func(op commitOp)

	// MIG repartitioning state, initialized lazily by the first
	// Repartition call. baseTop is the physical machine the System was
	// built for; top then points at the current virtual machine.
	baseTop   *topology.Topology
	instances map[int][]int   // physical GPU -> current virtual instance IDs (ascending)
	physOf    map[int]int     // virtual GPU -> physical GPU
	fractions map[int]float64 // virtual GPU -> compute fraction
	nextVID   int             // next fresh virtual ID (monotonic, never reused)
}

// SystemOption configures a System at construction.
type SystemOption func(*systemConfig)

type systemConfig struct {
	workers            int
	buildWorkers       int
	warmMaxGPUs        int
	backgroundWarm     bool
	disableCache       bool
	disableUniverses   bool
	disableLiveViews   bool
	disableScoreTables bool
	journalDir         string
	journalOpts        journal.Options
}

// WithWorkers makes MAPA policies enumerate and score candidate
// matches with n worker goroutines. Decisions are byte-identical to
// the sequential matcher's.
func WithWorkers(n int) SystemOption {
	return func(c *systemConfig) { c.workers = n }
}

// WithBuildWorkers makes every idle-state universe build — warmed at
// construction or triggered on demand by a first decision for a shape —
// run the work-stealing parallel enumeration with n goroutines, even
// when decisions themselves stay sequential. Universe builds are the
// one-time cold-start cost on the serving path of large machines, so
// they get their own knob; unset, builds use the WithWorkers count.
// Built universes are byte-identical at any worker count.
func WithBuildWorkers(n int) SystemOption {
	return func(c *systemConfig) { c.buildWorkers = n }
}

// WithBackgroundWarming makes the WithWarmShapes precomputation run in
// a background goroutine instead of blocking NewSystem, so the first
// decisions overlap the warm-up: a decision needing a not-yet-warmed
// shape builds that shape's universe on demand (the build is shared
// with the warmer — never run twice), and every other shape keeps
// warming behind it. WaitWarm blocks until warming completes.
func WithBackgroundWarming() SystemOption {
	return func(c *systemConfig) { c.backgroundWarm = true }
}

// WithWarmShapes precomputes the idle-state match universes for every
// built-in communication shape (see Shapes) at sizes 2..maxGPUs during
// NewSystem, so even the first decision for those shapes — and every
// later decision on a never-seen availability state — is served by
// mask filtering instead of a subgraph-isomorphism search. Warming is
// the init-time cost MAPA pays once per machine instead of per
// scheduling step.
func WithWarmShapes(maxGPUs int) SystemOption {
	return func(c *systemConfig) { c.warmMaxGPUs = maxGPUs }
}

// WithoutCache disables the tier-2 filtered-view cache (recurring
// availability states stop hitting).
func WithoutCache() SystemOption {
	return func(c *systemConfig) { c.disableCache = true }
}

// WithoutUniverses disables the tier-1 idle-state universe store
// (cache misses fall back to full searches). Live views depend on the
// store, so this disables them too.
func WithoutUniverses() SystemOption {
	return func(c *systemConfig) { c.disableUniverses = true }
}

// WithoutLiveViews disables the tier-0 delta-maintained live views:
// miss decisions fall back to mask-filtering the idle-state universe
// per decision instead of reading an incrementally maintained
// candidate list. Table-served selection rides on the live views, so
// this disables it too.
func WithoutLiveViews() SystemOption {
	return func(c *systemConfig) { c.disableLiveViews = true }
}

// WithoutScoreTables disables score-table precomputation: warmed-shape
// decisions fall back to materializing a candidate entry and scoring it
// dynamically (the pre-table behavior) instead of running the streaming
// argmax over precomputed static metrics plus O(k) delta-maintained
// Eq. 3 arithmetic. Decisions are byte-identical either way; the knob
// exists for memory-constrained deployments and for benchmarking the
// table path against dynamic scoring.
func WithoutScoreTables() SystemOption {
	return func(c *systemConfig) { c.disableScoreTables = true }
}

// warmPatterns builds the canonical warm set, clamped to the machine
// size.
func warmPatterns(maxGPUs, machineGPUs int) []*graph.Graph {
	if maxGPUs > machineGPUs {
		maxGPUs = machineGPUs
	}
	return appgraph.AllShapes(maxGPUs)
}

// NewSystem builds a System for a named topology and policy, with an
// effective-bandwidth model trained for that topology. By default the
// two-tier match pipeline is active: recurring availability states hit
// the filtered-view cache, and new states are derived by bitmask-
// filtering per-shape idle-state universes (built on first use, or at
// construction with WithWarmShapes).
func NewSystem(topologyName, policyName string, opts ...SystemOption) (*System, error) {
	top, err := topology.ByName(topologyName)
	if err != nil {
		return nil, err
	}
	scorer := score.NewScorer(effbw.TrainedFor(top))
	alloc, err := policy.ByName(policyName, scorer)
	if err != nil {
		return nil, err
	}
	var cfg systemConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers > 1 {
		policy.SetParallelism(alloc, cfg.workers)
	}
	s := &System{
		top:         top,
		alloc:       alloc,
		scorer:      scorer,
		avail:       top.Graph.Clone(),
		leases:      make(map[int][]int),
		leasedBy:    make(map[int]int),
		owners:      make(map[int]string),
		expiry:      make(map[int]int64),
		unhealthy:   make(map[int]bool),
		cfg:         cfg,
		catalogName: topologyName,
	}
	// Recovery runs before the pipeline exists: replayed mutations are
	// applied directly to the graphs and lease tables (view publishes
	// no-op on nil), then the pipeline is built once for the final
	// recovered topology and seeded with the live state.
	if cfg.journalDir != "" {
		if err := s.recoverFromJournal(cfg.journalDir, cfg.journalOpts); err != nil {
			return nil, err
		}
	}
	s.buildPipeline(true)
	s.replayViewsLocked(s.views)
	return s, nil
}

// buildPipeline (re)constructs the match pipeline for the System's
// current topology per its construction options, attaching each tier
// to the policy (nil detaches): the tier-2 filtered-view cache —
// recurring availability states reuse prior candidate lists, keyed by
// the free-GPU bitmask that Allocate and Release rotate — the tier-1
// idle-state universe store, and the tier-0 delta-maintained live
// views that let steady-state misses read a maintained candidate list
// instead of scanning a universe. Background warming is honored only
// when allowBackground; Repartition rebuilds synchronously so the
// swapped-in pipeline is deterministic.
func (s *System) buildPipeline(allowBackground bool) {
	cfg := s.cfg
	s.cache, s.store, s.views = nil, nil, nil
	if !cfg.disableCache {
		s.cache = matchcache.New(s.top, matchcache.DefaultShardCapacity)
	}
	policy.AttachCache(s.alloc, s.cache)
	if !cfg.disableUniverses {
		s.store = matchcache.NewStore(s.top, matchcache.DefaultUniverseCapacity)
		if cfg.buildWorkers > 1 {
			s.store.SetBuildWorkers(cfg.buildWorkers)
		}
		if cfg.disableScoreTables || cfg.disableLiveViews {
			// Score tables are served only through the live views'
			// SelectLive path, so with views off they would be warmed
			// dead weight.
			s.store.SetScoreTables(false)
		}
		if cfg.warmMaxGPUs > 1 {
			warmWorkers := cfg.workers
			if cfg.buildWorkers > warmWorkers {
				warmWorkers = cfg.buildWorkers
			}
			shapes := warmPatterns(cfg.warmMaxGPUs, s.top.NumGPUs())
			if cfg.backgroundWarm && allowBackground {
				store := s.store
				s.warmDone = make(chan struct{})
				go func(done chan struct{}) {
					defer close(done)
					store.Warm(warmWorkers, shapes...)
				}(s.warmDone)
			} else {
				s.store.Warm(warmWorkers, shapes...)
			}
		}
		if !cfg.disableLiveViews {
			s.views = s.store.NewViews()
		}
	}
	policy.AttachUniverses(s.alloc, s.store)
	policy.AttachViews(s.alloc, s.views)
}

// WaitWarm blocks until the WithBackgroundWarming precomputation has
// finished (returning immediately when warming was synchronous, never
// requested, or already done). Decisions never require it — unwarmed
// shapes build on demand — but callers that want the full warm set
// resident before a traffic spike can park on it.
func (s *System) WaitWarm() {
	if s.warmDone != nil {
		<-s.warmDone
	}
}

// CacheStats reports the match-pipeline counters of a System: the
// tier-2 filtered-view cache (hits/misses/evictions) and the tier-1
// idle-state universe store (universes built, miss decisions served by
// mask filtering).
type CacheStats struct {
	// Tier 2: filtered-view cache.
	Hits, Misses, Evictions uint64
	Entries, Shards         int
	// Tier 1: idle-state universe store.
	Universes, UniversesIncomplete int
	FilterServed, FilterRejected   uint64
	// UniverseBuildTime is the summed wall time of every idle-state
	// universe enumeration the store has run (warmed or on demand).
	UniverseBuildTime time.Duration
	// ScoreTables counts precomputed static score tables built (one per
	// warmed or table-served shape); TableBuildTime is their summed
	// build wall time.
	ScoreTables    int
	TableBuildTime time.Duration
	// Repairs counts link-degradation events absorbed by incremental
	// table repair; RepairedCandidates the candidates re-derived across
	// them; RepairTime their summed wall time (compare with
	// UniverseBuildTime+TableBuildTime, the cost a rebuild would pay).
	Repairs            int
	RepairedCandidates int
	RepairTime         time.Duration
	// Tier 0: delta-maintained live views.
	LiveViews                int
	ViewServed, ViewRejected uint64
	// TableServed is the subset of ViewServed decisions answered by the
	// table-served selection path: precomputed static metrics plus O(k)
	// delta-maintained Eq. 3 arithmetic, zero dynamic score
	// evaluations.
	TableServed uint64
}

// CacheStats returns a snapshot of the system's match-pipeline
// counters. Disabled tiers report zeros.
func (s *System) CacheStats() CacheStats {
	var out CacheStats
	if s.cache != nil {
		cs := s.cache.Stats()
		out.Hits, out.Misses, out.Evictions = cs.Hits, cs.Misses, cs.Evictions
		out.Entries, out.Shards = cs.Entries, cs.Shards
	}
	if s.store != nil {
		ss := s.store.Stats()
		out.Universes, out.UniversesIncomplete = ss.Universes, ss.Incomplete
		out.FilterServed, out.FilterRejected = ss.FilterServed, ss.FilterRejected
		out.UniverseBuildTime = ss.BuildTime
		out.ScoreTables, out.TableBuildTime = ss.Tables, ss.TableTime
		out.Repairs, out.RepairedCandidates = ss.Repairs, ss.RepairedCandidates
		out.RepairTime = ss.RepairTime
	}
	if s.views != nil {
		vs := s.views.Stats()
		out.LiveViews = vs.Views
		out.ViewServed, out.ViewRejected = vs.Served, vs.Rejected
		out.TableServed = vs.TableServed
	}
	return out
}

// Topology returns the system's topology name.
func (s *System) Topology() string { return s.top.Name }

// Policy returns the system's policy name.
func (s *System) Policy() string { return s.alloc.Name() }

// NumGPUs returns the machine size.
func (s *System) NumGPUs() int { return s.top.NumGPUs() }

// FreeGPUs returns the currently unallocated GPU IDs in ascending
// order.
func (s *System) FreeGPUs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.avail.Vertices()
}

// ActiveLeases returns the number of live leases.
func (s *System) ActiveLeases() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.leases)
}

// Warmed reports, without blocking, whether the construction-time warm
// set is fully resident — immediately true when warming was
// synchronous or never requested. Decisions never require it (unwarmed
// shapes build on demand, outside the state lock); it exists for
// readiness probes that want the cold-start cost behind them.
func (s *System) Warmed() bool {
	s.mu.Lock()
	done := s.warmDone
	s.mu.Unlock()
	if done == nil {
		return true
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// buildPattern resolves a request's communication pattern graph.
func buildPattern(req JobRequest) (*graph.Graph, error) {
	shapeName := req.Shape
	if shapeName == "" {
		shapeName = string(appgraph.ShapeRing)
	}
	shape, err := appgraph.ParseShape(shapeName)
	if err != nil {
		return nil, err
	}
	return appgraph.Build(shape, req.NumGPUs)
}

// commitOp records one committed state transition, handed to the
// onCommit test hook under the state lock — the hook's call order is
// the System's linearization.
type commitOp struct {
	kind     string
	req      JobRequest // allocate only
	id       int        // allocate (assigned ID), release, renew
	gpus     []int      // allocate result; mark/restore arguments
	deadline int64      // allocate, renew: lease expiry (Unix nanos, 0 = none)
	expired  bool       // release: produced by the TTL reaper
	u, v     int        // degrade-link endpoints
	bw       float64    // degrade-link new bandwidth
	slices   []journal.Slice
}

const (
	opAllocate    = "allocate"
	opRelease     = "release"
	opMark        = "mark-unhealthy"
	opRestore     = "restore"
	opDegrade     = "degrade-link"
	opRepartition = "repartition"
	opRenew       = "renew"
)

// commit invokes the linearization test hook with a private copy of
// the op's GPU set, so later mutations cannot rewrite the record.
func (s *System) commit(op commitOp) {
	if s.onCommit == nil {
		return
	}
	op.gpus = append([]int(nil), op.gpus...)
	op.slices = append([]journal.Slice(nil), op.slices...)
	s.onCommit(op)
}

// journalAppend writes one record to the write-ahead journal, called
// under mu by every mutator after validation and before any in-memory
// mutation: a failed append aborts the operation with the state
// untouched, so nothing unjournaled can ever be observed. No-op when
// journaling is off — and during recovery replay, where jw is attached
// only after the replayed records are applied, so replay never
// re-journals.
func (s *System) journalAppend(rec *journal.Record) error {
	if s.jw == nil {
		return nil
	}
	if err := s.jw.Append(rec); err != nil {
		return fmt.Errorf("mapa: %w", err)
	}
	return nil
}

// prewarm builds the shape's match universe and score table (if
// missing) with the state lock released, so a cold shape's
// enumeration runs concurrently with every other System call. It
// returns the store it built against, for the double-check in
// lockWithPipeline.
func (s *System) prewarm(pattern *graph.Graph) *matchcache.Store {
	s.mu.Lock()
	st := s.store
	gate := s.prewarmGate
	s.mu.Unlock()
	if gate != nil {
		gate(pattern.NumVertices())
	}
	if st != nil {
		st.Ensure(pattern, s.cfg.workers)
	}
	return st
}

// lockWithPipeline acquires the state lock for a decision on pattern,
// double-checking the store entry: if a concurrent Repartition swapped
// the pipeline while the unlocked prewarm ran against the old store,
// the build is redone against the current one — the decision must
// never be the call that pays a cold enumeration under the lock.
func (s *System) lockWithPipeline(pattern *graph.Graph, st *matchcache.Store) {
	s.mu.Lock()
	for s.store != st {
		st = s.store
		s.mu.Unlock()
		if st != nil {
			st.Ensure(pattern, s.cfg.workers)
		}
		s.mu.Lock()
	}
}

// Allocate leases GPUs for the request. It returns
// policy.ErrNoAllocation (via errors.Is-compatible wrapping) when the
// request cannot be placed on the currently free GPUs.
//
// A request for a shape whose universe is not yet resident builds it
// before entering the decision critical section, so concurrent
// Allocate, Release, and health calls proceed while the build runs.
func (s *System) Allocate(req JobRequest) (*Lease, error) {
	return s.allocate(nil, req)
}

// allocate is the shared Allocate body: nil t decides with the
// System's own allocator and view stream, non-nil t with the tenant's.
func (s *System) allocate(t *Tenant, req JobRequest) (*Lease, error) {
	pattern, err := buildPattern(req)
	if err != nil {
		return nil, err
	}
	st := s.prewarm(pattern)
	s.lockWithPipeline(pattern, st)
	defer s.mu.Unlock()
	return s.allocateLocked(t, pattern, req)
}

// allocateLocked runs one decision + commit under the state lock. The
// pipeline for pattern's shape must already be resident (prewarm), so
// the decision itself is table lookups plus O(k) arithmetic on warmed
// shapes.
func (s *System) allocateLocked(t *Tenant, pattern *graph.Graph, req JobRequest) (*Lease, error) {
	alloc := s.alloc
	if t != nil {
		alloc = t.alloc
	}
	a, err := alloc.Allocate(s.avail, s.top, policy.Request{Pattern: pattern, Sensitive: req.Sensitive})
	if err != nil {
		return nil, fmt.Errorf("mapa: allocating %d GPUs: %w", req.NumGPUs, err)
	}
	id := s.nextID + 1
	var deadline int64
	if req.TTL > 0 {
		deadline = time.Now().Add(req.TTL).UnixNano()
	}
	if err := s.journalAppend(&journal.Record{
		Kind: journal.KindAllocate, ID: id, NumGPUs: req.NumGPUs,
		Shape: req.Shape, Sensitive: req.Sensitive, Owner: req.Owner,
		Deadline: deadline, GPUs: a.GPUs,
	}); err != nil {
		return nil, err
	}
	for _, g := range a.GPUs {
		s.avail.RemoveVertex(g)
	}
	s.publishAllocate(a.GPUs)
	s.nextID = id
	s.leases[id] = a.GPUs
	for _, g := range a.GPUs {
		s.leasedBy[g] = id
	}
	if req.Owner != "" {
		s.owners[id] = req.Owner
	}
	if deadline != 0 {
		s.expiry[id] = deadline
	}
	lease := &Lease{
		ID: id,
		// A copy, not a.GPUs itself: the internal lease record must
		// never share a backing array with the slice handed to the
		// caller, or a tenant sorting (or a JSON encoder path mutating)
		// Lease.GPUs would silently corrupt release validation.
		GPUs:        append([]int(nil), a.GPUs...),
		EffBW:       a.Scores.EffBW,
		AggBW:       a.Scores.AggBW,
		PreservedBW: a.Scores.PreservedBW,
		Deadline:    deadline,
	}
	s.commit(commitOp{kind: opAllocate, req: req, id: id, gpus: a.GPUs, deadline: deadline})
	return lease, nil
}

// AllocateBatch serves n identical requests in one acquisition of the
// state lock — the request-coalescing primitive behind mapad's burst
// handling: a burst of identical (shape, size) requests pays one
// prewarm and one lock round-trip instead of n. Results are identical
// to n sequential Allocate calls. Both returned slices have length n;
// leases[i] is nil exactly when errs[i] is non-nil (later requests in
// a batch may fail with policy.ErrNoAllocation after earlier ones
// drain the machine).
func (s *System) AllocateBatch(req JobRequest, n int) ([]*Lease, []error) {
	leases := make([]*Lease, n)
	errs := make([]error, n)
	if n <= 0 {
		return leases, errs
	}
	pattern, err := buildPattern(req)
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return leases, errs
	}
	st := s.prewarm(pattern)
	s.lockWithPipeline(pattern, st)
	defer s.mu.Unlock()
	for i := range leases {
		leases[i], errs[i] = s.allocateLocked(nil, pattern, req)
	}
	return leases, errs
}

// publishAllocate fans an allocation delta out to every live-view
// stream bound to this System — its own and each tenant's.
func (s *System) publishAllocate(gpus []int) {
	s.views.Allocate(gpus)
	for _, t := range s.tenants {
		t.views.Allocate(gpus)
	}
}

// publishRelease fans a release delta out to every view stream.
func (s *System) publishRelease(gpus []int) {
	s.views.Release(gpus)
	for _, t := range s.tenants {
		t.views.Release(gpus)
	}
}

// publishMarkUnhealthy fans a health delta out to every view stream.
func (s *System) publishMarkUnhealthy(gpus []int) {
	s.views.MarkUnhealthy(gpus)
	for _, t := range s.tenants {
		t.views.MarkUnhealthy(gpus)
	}
}

// publishRestoreHealth fans a recovery delta out to every view stream.
func (s *System) publishRestoreHealth(gpus []int) {
	s.views.RestoreHealth(gpus)
	for _, t := range s.tenants {
		t.views.RestoreHealth(gpus)
	}
}

// publishUpdateEdge fans a link-weight delta out to every view stream.
func (s *System) publishUpdateEdge(u, v int, bw float64) {
	s.views.UpdateEdge(u, v, bw)
	for _, t := range s.tenants {
		t.views.UpdateEdge(u, v, bw)
	}
}

// Release returns a lease's GPUs to the free pool. Releasing an
// unknown or already-released lease is an error. GPUs marked
// unhealthy while leased do not rejoin the free pool until Restore.
//
// Release validates every hardware edge the rejoin will add before
// mutating anything, so an error (a lease straddling a corrupted
// topology) leaves the System byte-identical to its pre-call state —
// no half-released lease, no partial availability graph, no delta
// published to the live views.
func (s *System) Release(l *Lease) error {
	if l == nil {
		return fmt.Errorf("mapa: nil lease")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.releaseLocked(l.ID, false)
}

// releaseLocked is the shared release body: client releases come in
// with expired=false via Release, the TTL reaper journals expirations
// as releases with expired=true via ReapExpired.
func (s *System) releaseLocked(id int, expired bool) error {
	gpus, ok := s.leases[id]
	if !ok {
		return fmt.Errorf("mapa: lease %d not active", id)
	}
	// Phase 1: validate. The free set is snapshotted once — the
	// released GPUs join it only in phase 2, so one sorted copy serves
	// every edge check and insertion.
	free := s.avail.Vertices()
	var rejoin []int // released GPUs that rejoin the free pool
	for _, g := range gpus {
		if !s.unhealthy[g] {
			rejoin = append(rejoin, g)
		}
	}
	for i, g := range rejoin {
		for _, v := range free {
			if _, ok := s.top.Graph.EdgeBetween(g, v); !ok {
				return fmt.Errorf("mapa: topology %s missing edge (%d,%d)", s.top.Name, g, v)
			}
		}
		for _, h := range rejoin[:i] {
			if _, ok := s.top.Graph.EdgeBetween(g, h); !ok {
				return fmt.Errorf("mapa: topology %s missing edge (%d,%d)", s.top.Name, g, h)
			}
		}
	}
	if err := s.journalAppend(&journal.Record{
		Kind: journal.KindRelease, ID: id, Expired: expired, GPUs: gpus,
	}); err != nil {
		return err
	}
	// Phase 2: mutate. Every edge was validated above, so nothing past
	// this point can fail.
	delete(s.leases, id)
	for _, g := range gpus {
		delete(s.leasedBy, g)
	}
	delete(s.owners, id)
	delete(s.expiry, id)
	if expired {
		s.reaped++
	}
	for i, g := range rejoin {
		s.avail.AddVertex(g)
		for _, v := range free {
			e, _ := s.top.Graph.EdgeBetween(g, v)
			s.avail.MustAddEdge(g, v, e.Weight, e.Label)
		}
		for _, h := range rejoin[:i] {
			e, _ := s.top.Graph.EdgeBetween(g, h)
			s.avail.MustAddEdge(g, h, e.Weight, e.Label)
		}
	}
	// The views track the free mask and the health mask independently,
	// so the full lease is published: unhealthy members re-enter the
	// free mask but stay blocked by the health mask.
	s.publishRelease(gpus)
	s.commit(commitOp{kind: opRelease, id: id, gpus: gpus, expired: expired})
	return nil
}

// MarkUnhealthy marks GPUs unhealthy: they stay visible in the
// topology but become unallocatable until Restore (the ROCm health
// convention — degraded devices are reported, not hidden). Marking a
// leased GPU is allowed — the lease keeps running, but the GPU will
// not rejoin the free pool when released. The event is an O(posting
// list) delta on the live views' health mask; no universe, table, or
// view is rebuilt. Marking an unknown or already-unhealthy GPU, or
// listing one twice, is an error, and an erroring call mutates
// nothing.
func (s *System) MarkUnhealthy(gpus ...int) error {
	if len(gpus) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.markUnhealthyLocked(gpus)
}

func (s *System) markUnhealthyLocked(gpus []int) error {
	seen := make(map[int]bool, len(gpus))
	for _, g := range gpus {
		if !s.top.Graph.HasVertex(g) {
			return fmt.Errorf("mapa: GPU %d not in topology %s", g, s.top.Name)
		}
		if s.unhealthy[g] {
			return fmt.Errorf("mapa: GPU %d already unhealthy", g)
		}
		if seen[g] {
			return fmt.Errorf("mapa: GPU %d listed twice", g)
		}
		seen[g] = true
	}
	if err := s.journalAppend(&journal.Record{Kind: journal.KindMark, GPUs: gpus}); err != nil {
		return err
	}
	for _, g := range gpus {
		s.unhealthy[g] = true
		if _, leased := s.leasedBy[g]; !leased {
			s.avail.RemoveVertex(g)
		}
	}
	s.publishMarkUnhealthy(gpus)
	s.commit(commitOp{kind: opMark, gpus: gpus})
	return nil
}

// Restore returns unhealthy GPUs to service. A restored GPU rejoins
// the free pool immediately unless a lease still holds it (it was
// marked while leased), in which case it becomes allocatable on
// release. Like Release, Restore validates every hardware edge the
// rejoin will add before mutating anything; an error leaves the
// System untouched.
func (s *System) Restore(gpus ...int) error {
	if len(gpus) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restoreLocked(gpus)
}

func (s *System) restoreLocked(gpus []int) error {
	seen := make(map[int]bool, len(gpus))
	for _, g := range gpus {
		if !s.unhealthy[g] {
			return fmt.Errorf("mapa: GPU %d is not unhealthy", g)
		}
		if seen[g] {
			return fmt.Errorf("mapa: GPU %d listed twice", g)
		}
		seen[g] = true
	}
	free := s.avail.Vertices()
	var rejoin []int // restored GPUs that rejoin the free pool now
	for _, g := range gpus {
		if _, leased := s.leasedBy[g]; !leased {
			rejoin = append(rejoin, g)
		}
	}
	for i, g := range rejoin {
		for _, v := range free {
			if _, ok := s.top.Graph.EdgeBetween(g, v); !ok {
				return fmt.Errorf("mapa: topology %s missing edge (%d,%d)", s.top.Name, g, v)
			}
		}
		for _, h := range rejoin[:i] {
			if _, ok := s.top.Graph.EdgeBetween(g, h); !ok {
				return fmt.Errorf("mapa: topology %s missing edge (%d,%d)", s.top.Name, g, h)
			}
		}
	}
	if err := s.journalAppend(&journal.Record{Kind: journal.KindRestore, GPUs: gpus}); err != nil {
		return err
	}
	for _, g := range gpus {
		delete(s.unhealthy, g)
	}
	for i, g := range rejoin {
		s.avail.AddVertex(g)
		for _, v := range free {
			e, _ := s.top.Graph.EdgeBetween(g, v)
			s.avail.MustAddEdge(g, v, e.Weight, e.Label)
		}
		for _, h := range rejoin[:i] {
			e, _ := s.top.Graph.EdgeBetween(g, h)
			s.avail.MustAddEdge(g, h, e.Weight, e.Label)
		}
	}
	s.publishRestoreHealth(gpus)
	s.commit(commitOp{kind: opRestore, gpus: gpus})
	return nil
}

// UnhealthyGPUs returns the GPUs currently marked unhealthy, in
// ascending order.
func (s *System) UnhealthyGPUs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.unhealthy))
	for g := range s.unhealthy {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// DegradeLink sets the bandwidth of an existing machine link (u,v) to
// bw GB/s — a link-degradation (or recovery) event. The hardware
// graphs mutate in place: the link's structure and label survive, only
// its weight changes, so no universe is re-enumerated and no live-view
// posting list moves. The derived state is repaired incrementally:
// built score tables re-derive exactly the candidates containing both
// endpoints (the ring-channel decomposition prices a physical link
// only when the allocation holds both ends, so the affected set is
// exact), the topology's link-mix memo is invalidated, the live views'
// bandwidth accounting absorbs the weight delta in O(degree), and the
// tier-2 cache — which stores scores, not structure — is dropped.
//
// Integral bandwidths are recommended (matching the built-in link
// catalog); they keep repaired scores bit-identical to a from-scratch
// rebuild. For MIG machines, degrading a physical NVLink port edge
// writes through to the base machine and survives repartitioning;
// degraded on-die and PCIe fallback paths are re-derived at catalog
// bandwidth for GPUs that are later re-cut, as in hardware.
func (s *System) DegradeLink(u, v int, bw float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degradeLinkLocked(u, v, bw)
}

func (s *System) degradeLinkLocked(u, v int, bw float64) error {
	if bw < 0 {
		return fmt.Errorf("mapa: negative link bandwidth %v", bw)
	}
	e, ok := s.top.Graph.EdgeBetween(u, v)
	if !ok {
		return fmt.Errorf("mapa: no link (%d,%d) in topology %s", u, v, s.top.Name)
	}
	if e.Weight == bw {
		return nil
	}
	if err := s.journalAppend(&journal.Record{Kind: journal.KindDegrade, U: u, V: v, BW: bw}); err != nil {
		return err
	}
	s.top.Graph.MustAddEdge(u, v, bw, e.Label)
	if pe, ok := s.top.Physical.EdgeBetween(u, v); ok {
		s.top.Physical.MustAddEdge(u, v, bw, pe.Label)
		// Write through to the base machine when running repartitioned:
		// a degraded NVLink port belongs to the physical device, not to
		// the instance currently fronting it.
		if s.baseTop != nil && s.top != s.baseTop {
			pu, pv := s.physOf[u], s.physOf[v]
			if pu != pv {
				if be, ok := s.baseTop.Physical.EdgeBetween(pu, pv); ok {
					s.baseTop.Physical.MustAddEdge(pu, pv, bw, be.Label)
				}
				if be, ok := s.baseTop.Graph.EdgeBetween(pu, pv); ok {
					s.baseTop.Graph.MustAddEdge(pu, pv, bw, be.Label)
				}
			}
		}
	}
	if s.avail.HasVertex(u) && s.avail.HasVertex(v) {
		s.avail.MustAddEdge(u, v, bw, e.Label)
	}
	score.InvalidateMixes(s.top)
	if s.cache != nil {
		s.cache.Clear()
	}
	if s.store != nil {
		s.store.RepairEdge(u, v)
	}
	s.publishUpdateEdge(u, v, bw)
	s.commit(commitOp{kind: opDegrade, u: u, v: v, bw: bw})
	return nil
}

// Repartition re-slices physical GPUs into MIG instances on the live
// System (Sec. 3.2/3.3's virtualized accelerators as a topology
// mutation). slices maps physical GPU ID — an ID of the machine the
// System was built for — to its new instance count (1..7); GPUs not
// listed keep their current slicing. Every instance of a re-cut GPU
// must be lease-free and healthy, or Repartition errors without
// mutating anything. Instances of unchanged GPUs keep their virtual
// IDs, so live leases and health marks survive; re-cut GPUs get fresh,
// never-reused IDs.
//
// Repartitioning changes the vertex set, so unlike the other events it
// rebuilds the match pipeline for the new virtual machine (warming
// synchronously per the System's construction options) and retrains
// the Eq. 2 model. Allocation afterwards treats instances as plain
// vertices; fraction-aware matching (mig.Request.MinFraction) remains
// the mig package's direct API.
func (s *System) Repartition(slices map[int]int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repartitionLocked(slices)
}

func (s *System) repartitionLocked(slices map[int]int) error {
	if s.baseTop == nil {
		s.baseTop = s.top
		s.instances = make(map[int][]int)
		s.physOf = make(map[int]int)
		s.fractions = make(map[int]float64)
		for _, g := range s.top.GPUs() {
			s.instances[g] = []int{g}
			s.physOf[g] = g
			s.fractions[g] = 1
		}
		s.nextVID = graph.Capacity(s.top.Graph)
	}
	var changed []int
	for g, n := range slices {
		if _, ok := s.instances[g]; !ok {
			return fmt.Errorf("mapa: physical GPU %d not in topology %s", g, s.baseTop.Name)
		}
		if n < 1 || n > mig.MaxInstances {
			return fmt.Errorf("mapa: GPU %d split into %d instances; MIG supports 1..%d", g, n, mig.MaxInstances)
		}
		if n != len(s.instances[g]) {
			changed = append(changed, g)
		}
	}
	if len(changed) == 0 {
		return nil
	}
	sort.Ints(changed)
	for _, g := range changed {
		for _, vid := range s.instances[g] {
			if lid, leased := s.leasedBy[vid]; leased {
				return fmt.Errorf("mapa: cannot repartition GPU %d: instance %d held by lease %d", g, vid, lid)
			}
			if s.unhealthy[vid] {
				return fmt.Errorf("mapa: cannot repartition GPU %d: instance %d is unhealthy", g, vid)
			}
		}
	}
	newInstances := make(map[int][]int, len(s.instances))
	for g, vs := range s.instances {
		newInstances[g] = vs
	}
	nextVID := s.nextVID
	for _, g := range changed {
		vs := make([]int, slices[g])
		for i := range vs {
			vs[i] = nextVID
			nextVID++
		}
		newInstances[g] = vs
	}
	vt, err := mig.Compose(s.baseTop, newInstances)
	if err != nil {
		return err
	}
	// The journal records only the changed (GPU, instance count) pairs:
	// replay reaches this point with identical instances and nextVID, so
	// the fresh-ID assignment above is reproduced exactly.
	recSlices := make([]journal.Slice, len(changed))
	for i, g := range changed {
		recSlices[i] = journal.Slice{GPU: g, Instances: slices[g]}
	}
	if err := s.journalAppend(&journal.Record{Kind: journal.KindRepartition, Slices: recSlices}); err != nil {
		return err
	}
	// Point of no return: everything below is infallible. Wait out any
	// in-flight background warm of the old store before swapping it.
	if s.warmDone != nil {
		<-s.warmDone
		s.warmDone = nil
	}
	s.nextVID = nextVID
	s.top = vt.Topology
	s.instances = newInstances
	s.physOf = make(map[int]int, len(vt.PhysicalOf))
	for v, p := range vt.PhysicalOf {
		s.physOf[v] = p
	}
	s.fractions = make(map[int]float64, len(vt.Fraction))
	for v, f := range vt.Fraction {
		s.fractions[v] = f
	}
	// During recovery replay there is no pipeline yet and no tenants:
	// NewSystem retrains the scorer and builds the pipeline once, for
	// the final recovered topology, after the last record is applied.
	if !s.recovering {
		s.scorer = score.NewScorer(effbw.TrainedFor(s.top))
		policy.SetScorer(s.alloc, s.scorer)
		s.buildPipeline(false)
	}
	// Rebuild availability — every instance not leased and not
	// unhealthy — and replay the surviving allocation and health state
	// into the fresh views. Tenant streams are rebound to the new
	// pipeline the same way, so live tenants keep serving across the
	// re-cut.
	s.avail = s.top.Graph.Clone()
	for g := range s.leasedBy {
		s.avail.RemoveVertex(g)
	}
	for g := range s.unhealthy {
		s.avail.RemoveVertex(g)
	}
	if !s.recovering {
		s.replayViewsLocked(s.views)
		for _, t := range s.tenants {
			s.bindTenantLocked(t)
		}
	}
	s.commit(commitOp{kind: opRepartition, slices: recSlices})
	return nil
}

// replayViewsLocked replays the current allocation and health state
// into a fresh view set. View streams start from the whole machine
// free, so a set created (or recreated) mid-stream must inherit the
// live state before it can serve.
func (s *System) replayViewsLocked(v *matchcache.Views) {
	if len(s.leasedBy) > 0 {
		leased := make([]int, 0, len(s.leasedBy))
		for g := range s.leasedBy {
			leased = append(leased, g)
		}
		sort.Ints(leased)
		v.Allocate(leased)
	}
	if len(s.unhealthy) > 0 {
		un := make([]int, 0, len(s.unhealthy))
		for g := range s.unhealthy {
			un = append(un, g)
		}
		sort.Ints(un)
		v.MarkUnhealthy(un)
	}
}

// Instances returns the virtual GPU IDs currently hosted by the given
// physical GPU, ascending. Before any Repartition — or for a GPU left
// whole — a physical GPU hosts itself.
func (s *System) Instances(physical int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.instances == nil {
		if !s.top.Graph.HasVertex(physical) {
			return nil
		}
		return []int{physical}
	}
	return append([]int(nil), s.instances[physical]...)
}

// InstanceFraction returns the share of its physical device's compute
// a virtual GPU carries (1 for whole GPUs, 0 for unknown IDs).
func (s *System) InstanceFraction(v int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fractions == nil {
		if s.top.Graph.HasVertex(v) {
			return 1
		}
		return 0
	}
	return s.fractions[v]
}

// Matrix renders the machine's nvidia-smi-style link matrix.
func (s *System) Matrix() string { return s.top.Matrix() }

// Job is one simulated job. Workload must name a built-in workload
// model; zero Iters uses the workload default.
type Job struct {
	Workload  string
	NumGPUs   int
	Iters     int
	Sensitive *bool // nil uses the workload's catalog annotation
}

// SimJob converts a public Job to the internal representation.
func simJob(id int, j Job) (jobs.Job, error) {
	w, err := workload.ByName(j.Workload)
	if err != nil {
		return jobs.Job{}, err
	}
	iters := j.Iters
	if iters == 0 {
		iters = w.DefaultIters
	}
	sensitive := w.Sensitive
	if j.Sensitive != nil {
		sensitive = *j.Sensitive
	}
	return jobs.Job{
		ID: id, Workload: w.Name, NumGPUs: j.NumGPUs,
		Shape: w.Shape, Sensitive: sensitive, Iters: iters,
	}, nil
}

// JobResult is one simulated job outcome.
type JobResult struct {
	Workload       string
	NumGPUs        int
	GPUs           []int
	Sensitive      bool
	Start, End     float64
	ExecTime       float64
	PredictedEffBW float64
	MeasuredEffBW  float64
}

// SimulationResult is a whole run.
type SimulationResult struct {
	Topology   string
	Policy     string
	Jobs       []JobResult
	Makespan   float64
	Throughput float64
}

// Simulate runs the job list through the multi-tenant scheduling
// simulator (FIFO queue, Fig. 14 of the paper) on the named topology
// and policy.
func Simulate(topologyName, policyName string, jobList []Job) (SimulationResult, error) {
	top, err := topology.ByName(topologyName)
	if err != nil {
		return SimulationResult{}, err
	}
	scorer := score.NewScorer(effbw.TrainedFor(top))
	alloc, err := policy.ByName(policyName, scorer)
	if err != nil {
		return SimulationResult{}, err
	}
	internal := make([]jobs.Job, len(jobList))
	for i, j := range jobList {
		ij, err := simJob(i+1, j)
		if err != nil {
			return SimulationResult{}, err
		}
		internal[i] = ij
	}
	res, err := sched.NewEngine(top, alloc).Run(internal)
	if err != nil {
		return SimulationResult{}, err
	}
	return convertResult(topologyName, res), nil
}

func convertResult(topName string, res sched.RunResult) SimulationResult {
	out := SimulationResult{
		Topology:   topName,
		Policy:     res.Policy,
		Makespan:   res.Makespan,
		Throughput: res.Throughput,
	}
	for _, r := range res.Records {
		out.Jobs = append(out.Jobs, JobResult{
			Workload:       r.Job.Workload,
			NumGPUs:        r.Job.NumGPUs,
			GPUs:           r.GPUs,
			Sensitive:      r.Job.Sensitive,
			Start:          r.Start,
			End:            r.End,
			ExecTime:       r.ExecTime,
			PredictedEffBW: r.PredictedEffBW,
			MeasuredEffBW:  r.MeasuredEffBW,
		})
	}
	return out
}

// PaperJobMix returns the paper's evaluation mix (Sec. 4): 300 jobs,
// uniform over the nine workloads, uniform 1-5 GPUs, reproducible by
// seed.
func PaperJobMix(seed int64) []Job {
	var out []Job
	for _, j := range jobs.PaperMix(seed) {
		sens := j.Sensitive
		out = append(out, Job{Workload: j.Workload, NumGPUs: j.NumGPUs, Iters: j.Iters, Sensitive: &sens})
	}
	return out
}

// IdealAggregateBandwidth returns the maximum aggregate bandwidth
// (GB/s) any k-GPU allocation can have on an idle machine — the
// BW_IdealAllocation denominator of the paper's fragmentation study
// (Fig. 4).
func IdealAggregateBandwidth(topologyName string, k int) (float64, error) {
	top, err := topology.ByName(topologyName)
	if err != nil {
		return 0, err
	}
	return top.IdealAggregate(k), nil
}

// AllocationAggregateBandwidth returns the aggregate bandwidth (GB/s)
// of all pairwise links among the given GPUs — BW_Allocated in the
// fragmentation study.
func AllocationAggregateBandwidth(topologyName string, gpus []int) (float64, error) {
	top, err := topology.ByName(topologyName)
	if err != nil {
		return 0, err
	}
	for _, g := range gpus {
		if !top.Graph.HasVertex(g) {
			return 0, fmt.Errorf("mapa: GPU %d not in topology %s", g, top.Name)
		}
	}
	return top.Graph.InducedSubgraph(gpus).TotalWeight(), nil
}

// CompareAllPolicies runs the same jobs under every paper policy
// (baseline, topo-aware, greedy, preserve) in real-run mode and
// returns results keyed by policy name.
func CompareAllPolicies(topologyName string, jobList []Job) (map[string]SimulationResult, error) {
	return compareAll(topologyName, jobList, sched.ModeRealRun)
}

// CompareAllPoliciesFixed is CompareAllPolicies in the paper's
// exploration-simulator mode (Sec. 5.1): every job keeps its baseline
// duration regardless of allocation, so the admission schedule is
// identical across policies and effective bandwidth isolates
// allocation quality. Use this to reproduce Fig. 18.
func CompareAllPoliciesFixed(topologyName string, jobList []Job) (map[string]SimulationResult, error) {
	return compareAll(topologyName, jobList, sched.ModeFixed)
}

func compareAll(topologyName string, jobList []Job, mode sched.Mode) (map[string]SimulationResult, error) {
	top, err := topology.ByName(topologyName)
	if err != nil {
		return nil, err
	}
	internal := make([]jobs.Job, len(jobList))
	for i, j := range jobList {
		ij, err := simJob(i+1, j)
		if err != nil {
			return nil, err
		}
		internal[i] = ij
	}
	results, err := sched.ComparePoliciesMode(top, sched.PaperPolicies(), internal, mode)
	if err != nil {
		return nil, err
	}
	out := make(map[string]SimulationResult, len(results))
	for name, res := range results {
		out[name] = convertResult(topologyName, res)
	}
	return out, nil
}
