// Package mapa is a Go implementation of MAPA — Multi-Accelerator
// Pattern Allocation (Ranganath et al., SC '21) — a graph
// pattern-matching approach to allocating multi-GPU jobs on
// multi-tenant multi-accelerator servers.
//
// MAPA abstracts the server as a weighted hardware graph (vertices =
// GPUs, edge weights = best link bandwidth) and each job as a small
// application pattern graph (vertices = requested GPUs, edges =
// inter-GPU communication). Allocation mines the available hardware
// graph for subgraph-isomorphic matches of the pattern, scores each
// match (Aggregated Bandwidth, Predicted Effective Bandwidth,
// Preserved Bandwidth), and selects one with the Preserve policy:
// bandwidth-sensitive jobs get the match with the highest predicted
// effective bandwidth, insensitive jobs the match that preserves the
// most bandwidth for future sensitive jobs.
//
// The package offers two entry points:
//
//   - System: a live allocator for one machine. Allocate leases GPUs
//     for jobs and Release returns them, with the hardware-graph state
//     managed internally.
//   - Simulate / CompareAllPolicies: the multi-tenant scheduling
//     simulator used to reproduce the paper's evaluation.
package mapa

import (
	"fmt"
	"sync"
	"time"

	"mapa/internal/appgraph"
	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/jobs"
	"mapa/internal/matchcache"
	"mapa/internal/policy"
	"mapa/internal/sched"
	"mapa/internal/score"
	"mapa/internal/topology"
	"mapa/internal/workload"
)

// Topologies lists the built-in hardware topologies: the paper's
// DGX-1 V100, DGX-1 P100, Summit node, the NVSwitch-fabric DGX-2 and
// DGX A100, and the 16-GPU Torus-2d and Cube-mesh exploration
// machines.
func Topologies() []string { return topology.Names() }

// Policies lists the built-in allocation policies. The paper's
// evaluation set is baseline, topo-aware, greedy, and preserve; the
// rest are ablations.
func Policies() []string { return policy.Names() }

// Workloads lists the built-in workload models (the paper's six Caffe
// CNNs plus Cusimann, GMM, and Jacobi).
func Workloads() []string { return workload.Names() }

// Shapes lists the supported application communication patterns.
func Shapes() []string {
	var out []string
	for _, s := range appgraph.Shapes() {
		out = append(out, string(s))
	}
	return out
}

// JobRequest describes one allocation request to a System.
type JobRequest struct {
	// NumGPUs is the number of accelerators requested (required).
	NumGPUs int
	// Shape names the communication pattern; empty defaults to Ring,
	// NCCL's large-transfer topology.
	Shape string
	// Sensitive annotates bandwidth sensitivity (Algorithm 1 input).
	Sensitive bool
}

// Lease is a granted allocation. Release it back to the System when
// the job finishes.
type Lease struct {
	// ID identifies the lease within its System.
	ID int
	// GPUs are the allocated device IDs.
	GPUs []int
	// EffBW is the predicted effective bandwidth (GB/s) of the
	// allocation; AggBW and PreservedBW are the other MAPA scores.
	EffBW, AggBW, PreservedBW float64
}

// System is a live MAPA allocator for one machine. It owns the
// hardware-graph state: Allocate removes GPUs, Release restores them
// (Sec. 3.6 of the paper). System is safe for concurrent use.
type System struct {
	mu       sync.Mutex
	top      *topology.Topology
	alloc    policy.Allocator
	avail    *graph.Graph
	cache    *matchcache.Cache
	store    *matchcache.Store
	views    *matchcache.Views
	leases   map[int][]int
	nextID   int
	warmDone chan struct{} // closed when background warming finishes; nil otherwise
}

// SystemOption configures a System at construction.
type SystemOption func(*systemConfig)

type systemConfig struct {
	workers            int
	buildWorkers       int
	warmMaxGPUs        int
	backgroundWarm     bool
	disableCache       bool
	disableUniverses   bool
	disableLiveViews   bool
	disableScoreTables bool
}

// WithWorkers makes MAPA policies enumerate and score candidate
// matches with n worker goroutines. Decisions are byte-identical to
// the sequential matcher's.
func WithWorkers(n int) SystemOption {
	return func(c *systemConfig) { c.workers = n }
}

// WithBuildWorkers makes every idle-state universe build — warmed at
// construction or triggered on demand by a first decision for a shape —
// run the work-stealing parallel enumeration with n goroutines, even
// when decisions themselves stay sequential. Universe builds are the
// one-time cold-start cost on the serving path of large machines, so
// they get their own knob; unset, builds use the WithWorkers count.
// Built universes are byte-identical at any worker count.
func WithBuildWorkers(n int) SystemOption {
	return func(c *systemConfig) { c.buildWorkers = n }
}

// WithBackgroundWarming makes the WithWarmShapes precomputation run in
// a background goroutine instead of blocking NewSystem, so the first
// decisions overlap the warm-up: a decision needing a not-yet-warmed
// shape builds that shape's universe on demand (the build is shared
// with the warmer — never run twice), and every other shape keeps
// warming behind it. WaitWarm blocks until warming completes.
func WithBackgroundWarming() SystemOption {
	return func(c *systemConfig) { c.backgroundWarm = true }
}

// WithWarmShapes precomputes the idle-state match universes for every
// built-in communication shape (see Shapes) at sizes 2..maxGPUs during
// NewSystem, so even the first decision for those shapes — and every
// later decision on a never-seen availability state — is served by
// mask filtering instead of a subgraph-isomorphism search. Warming is
// the init-time cost MAPA pays once per machine instead of per
// scheduling step.
func WithWarmShapes(maxGPUs int) SystemOption {
	return func(c *systemConfig) { c.warmMaxGPUs = maxGPUs }
}

// WithoutCache disables the tier-2 filtered-view cache (recurring
// availability states stop hitting).
func WithoutCache() SystemOption {
	return func(c *systemConfig) { c.disableCache = true }
}

// WithoutUniverses disables the tier-1 idle-state universe store
// (cache misses fall back to full searches). Live views depend on the
// store, so this disables them too.
func WithoutUniverses() SystemOption {
	return func(c *systemConfig) { c.disableUniverses = true }
}

// WithoutLiveViews disables the tier-0 delta-maintained live views:
// miss decisions fall back to mask-filtering the idle-state universe
// per decision instead of reading an incrementally maintained
// candidate list. Table-served selection rides on the live views, so
// this disables it too.
func WithoutLiveViews() SystemOption {
	return func(c *systemConfig) { c.disableLiveViews = true }
}

// WithoutScoreTables disables score-table precomputation: warmed-shape
// decisions fall back to materializing a candidate entry and scoring it
// dynamically (the pre-table behavior) instead of running the streaming
// argmax over precomputed static metrics plus O(k) delta-maintained
// Eq. 3 arithmetic. Decisions are byte-identical either way; the knob
// exists for memory-constrained deployments and for benchmarking the
// table path against dynamic scoring.
func WithoutScoreTables() SystemOption {
	return func(c *systemConfig) { c.disableScoreTables = true }
}

// warmPatterns builds the canonical warm set, clamped to the machine
// size.
func warmPatterns(maxGPUs, machineGPUs int) []*graph.Graph {
	if maxGPUs > machineGPUs {
		maxGPUs = machineGPUs
	}
	return appgraph.AllShapes(maxGPUs)
}

// NewSystem builds a System for a named topology and policy, with an
// effective-bandwidth model trained for that topology. By default the
// two-tier match pipeline is active: recurring availability states hit
// the filtered-view cache, and new states are derived by bitmask-
// filtering per-shape idle-state universes (built on first use, or at
// construction with WithWarmShapes).
func NewSystem(topologyName, policyName string, opts ...SystemOption) (*System, error) {
	top, err := topology.ByName(topologyName)
	if err != nil {
		return nil, err
	}
	scorer := score.NewScorer(effbw.TrainedFor(top))
	alloc, err := policy.ByName(policyName, scorer)
	if err != nil {
		return nil, err
	}
	var cfg systemConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers > 1 {
		policy.SetParallelism(alloc, cfg.workers)
	}
	s := &System{
		top:    top,
		alloc:  alloc,
		avail:  top.Graph.Clone(),
		leases: make(map[int][]int),
	}
	if !cfg.disableCache {
		// Steady-state allocation reuses prior candidate lists: the
		// cache key carries the free-GPU bitmask, so Allocate and
		// Release rotate the key and recurring availability states hit.
		s.cache = matchcache.New(top, matchcache.DefaultShardCapacity)
		policy.AttachCache(alloc, s.cache)
	}
	if !cfg.disableUniverses {
		s.store = matchcache.NewStore(top, matchcache.DefaultUniverseCapacity)
		if cfg.buildWorkers > 1 {
			s.store.SetBuildWorkers(cfg.buildWorkers)
		}
		if cfg.disableScoreTables || cfg.disableLiveViews {
			// Score tables are served only through the live views'
			// SelectLive path, so with views off they would be warmed
			// dead weight.
			s.store.SetScoreTables(false)
		}
		policy.AttachUniverses(alloc, s.store)
		if cfg.warmMaxGPUs > 1 {
			warmWorkers := cfg.workers
			if cfg.buildWorkers > warmWorkers {
				warmWorkers = cfg.buildWorkers
			}
			shapes := warmPatterns(cfg.warmMaxGPUs, top.NumGPUs())
			if cfg.backgroundWarm {
				s.warmDone = make(chan struct{})
				go func(done chan struct{}) {
					defer close(done)
					s.store.Warm(warmWorkers, shapes...)
				}(s.warmDone)
			} else {
				s.store.Warm(warmWorkers, shapes...)
			}
		}
		if !cfg.disableLiveViews {
			// Tier 0: the System's allocate/release deltas keep
			// per-shape live candidate views current, so steady-state
			// misses read a maintained list instead of scanning the
			// universe.
			s.views = s.store.NewViews()
			policy.AttachViews(alloc, s.views)
		}
	}
	return s, nil
}

// WaitWarm blocks until the WithBackgroundWarming precomputation has
// finished (returning immediately when warming was synchronous, never
// requested, or already done). Decisions never require it — unwarmed
// shapes build on demand — but callers that want the full warm set
// resident before a traffic spike can park on it.
func (s *System) WaitWarm() {
	if s.warmDone != nil {
		<-s.warmDone
	}
}

// CacheStats reports the match-pipeline counters of a System: the
// tier-2 filtered-view cache (hits/misses/evictions) and the tier-1
// idle-state universe store (universes built, miss decisions served by
// mask filtering).
type CacheStats struct {
	// Tier 2: filtered-view cache.
	Hits, Misses, Evictions uint64
	Entries, Shards         int
	// Tier 1: idle-state universe store.
	Universes, UniversesIncomplete int
	FilterServed, FilterRejected   uint64
	// UniverseBuildTime is the summed wall time of every idle-state
	// universe enumeration the store has run (warmed or on demand).
	UniverseBuildTime time.Duration
	// ScoreTables counts precomputed static score tables built (one per
	// warmed or table-served shape); TableBuildTime is their summed
	// build wall time.
	ScoreTables    int
	TableBuildTime time.Duration
	// Tier 0: delta-maintained live views.
	LiveViews                int
	ViewServed, ViewRejected uint64
	// TableServed is the subset of ViewServed decisions answered by the
	// table-served selection path: precomputed static metrics plus O(k)
	// delta-maintained Eq. 3 arithmetic, zero dynamic score
	// evaluations.
	TableServed uint64
}

// CacheStats returns a snapshot of the system's match-pipeline
// counters. Disabled tiers report zeros.
func (s *System) CacheStats() CacheStats {
	var out CacheStats
	if s.cache != nil {
		cs := s.cache.Stats()
		out.Hits, out.Misses, out.Evictions = cs.Hits, cs.Misses, cs.Evictions
		out.Entries, out.Shards = cs.Entries, cs.Shards
	}
	if s.store != nil {
		ss := s.store.Stats()
		out.Universes, out.UniversesIncomplete = ss.Universes, ss.Incomplete
		out.FilterServed, out.FilterRejected = ss.FilterServed, ss.FilterRejected
		out.UniverseBuildTime = ss.BuildTime
		out.ScoreTables, out.TableBuildTime = ss.Tables, ss.TableTime
	}
	if s.views != nil {
		vs := s.views.Stats()
		out.LiveViews = vs.Views
		out.ViewServed, out.ViewRejected = vs.Served, vs.Rejected
		out.TableServed = vs.TableServed
	}
	return out
}

// Topology returns the system's topology name.
func (s *System) Topology() string { return s.top.Name }

// Policy returns the system's policy name.
func (s *System) Policy() string { return s.alloc.Name() }

// NumGPUs returns the machine size.
func (s *System) NumGPUs() int { return s.top.NumGPUs() }

// FreeGPUs returns the currently unallocated GPU IDs in ascending
// order.
func (s *System) FreeGPUs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.avail.Vertices()
}

// Allocate leases GPUs for the request. It returns
// policy.ErrNoAllocation (via errors.Is-compatible wrapping) when the
// request cannot be placed on the currently free GPUs.
func (s *System) Allocate(req JobRequest) (*Lease, error) {
	shapeName := req.Shape
	if shapeName == "" {
		shapeName = string(appgraph.ShapeRing)
	}
	shape, err := appgraph.ParseShape(shapeName)
	if err != nil {
		return nil, err
	}
	pattern, err := appgraph.Build(shape, req.NumGPUs)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	alloc, err := s.alloc.Allocate(s.avail, s.top, policy.Request{Pattern: pattern, Sensitive: req.Sensitive})
	if err != nil {
		return nil, fmt.Errorf("mapa: allocating %d GPUs: %w", req.NumGPUs, err)
	}
	for _, g := range alloc.GPUs {
		s.avail.RemoveVertex(g)
	}
	s.views.Allocate(alloc.GPUs)
	s.nextID++
	lease := &Lease{
		ID:          s.nextID,
		GPUs:        alloc.GPUs,
		EffBW:       alloc.Scores.EffBW,
		AggBW:       alloc.Scores.AggBW,
		PreservedBW: alloc.Scores.PreservedBW,
	}
	s.leases[lease.ID] = alloc.GPUs
	return lease, nil
}

// Release returns a lease's GPUs to the free pool. Releasing an
// unknown or already-released lease is an error.
func (s *System) Release(l *Lease) error {
	if l == nil {
		return fmt.Errorf("mapa: nil lease")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gpus, ok := s.leases[l.ID]
	if !ok {
		return fmt.Errorf("mapa: lease %d not active", l.ID)
	}
	delete(s.leases, l.ID)
	for _, g := range gpus {
		s.avail.AddVertex(g)
		for _, v := range s.avail.Vertices() {
			if v == g {
				continue
			}
			e, ok := s.top.Graph.EdgeBetween(g, v)
			if !ok {
				return fmt.Errorf("mapa: topology %s missing edge (%d,%d)", s.top.Name, g, v)
			}
			s.avail.MustAddEdge(g, v, e.Weight, e.Label)
		}
	}
	s.views.Release(gpus)
	return nil
}

// Matrix renders the machine's nvidia-smi-style link matrix.
func (s *System) Matrix() string { return s.top.Matrix() }

// Job is one simulated job. Workload must name a built-in workload
// model; zero Iters uses the workload default.
type Job struct {
	Workload  string
	NumGPUs   int
	Iters     int
	Sensitive *bool // nil uses the workload's catalog annotation
}

// SimJob converts a public Job to the internal representation.
func simJob(id int, j Job) (jobs.Job, error) {
	w, err := workload.ByName(j.Workload)
	if err != nil {
		return jobs.Job{}, err
	}
	iters := j.Iters
	if iters == 0 {
		iters = w.DefaultIters
	}
	sensitive := w.Sensitive
	if j.Sensitive != nil {
		sensitive = *j.Sensitive
	}
	return jobs.Job{
		ID: id, Workload: w.Name, NumGPUs: j.NumGPUs,
		Shape: w.Shape, Sensitive: sensitive, Iters: iters,
	}, nil
}

// JobResult is one simulated job outcome.
type JobResult struct {
	Workload       string
	NumGPUs        int
	GPUs           []int
	Sensitive      bool
	Start, End     float64
	ExecTime       float64
	PredictedEffBW float64
	MeasuredEffBW  float64
}

// SimulationResult is a whole run.
type SimulationResult struct {
	Topology   string
	Policy     string
	Jobs       []JobResult
	Makespan   float64
	Throughput float64
}

// Simulate runs the job list through the multi-tenant scheduling
// simulator (FIFO queue, Fig. 14 of the paper) on the named topology
// and policy.
func Simulate(topologyName, policyName string, jobList []Job) (SimulationResult, error) {
	top, err := topology.ByName(topologyName)
	if err != nil {
		return SimulationResult{}, err
	}
	scorer := score.NewScorer(effbw.TrainedFor(top))
	alloc, err := policy.ByName(policyName, scorer)
	if err != nil {
		return SimulationResult{}, err
	}
	internal := make([]jobs.Job, len(jobList))
	for i, j := range jobList {
		ij, err := simJob(i+1, j)
		if err != nil {
			return SimulationResult{}, err
		}
		internal[i] = ij
	}
	res, err := sched.NewEngine(top, alloc).Run(internal)
	if err != nil {
		return SimulationResult{}, err
	}
	return convertResult(topologyName, res), nil
}

func convertResult(topName string, res sched.RunResult) SimulationResult {
	out := SimulationResult{
		Topology:   topName,
		Policy:     res.Policy,
		Makespan:   res.Makespan,
		Throughput: res.Throughput,
	}
	for _, r := range res.Records {
		out.Jobs = append(out.Jobs, JobResult{
			Workload:       r.Job.Workload,
			NumGPUs:        r.Job.NumGPUs,
			GPUs:           r.GPUs,
			Sensitive:      r.Job.Sensitive,
			Start:          r.Start,
			End:            r.End,
			ExecTime:       r.ExecTime,
			PredictedEffBW: r.PredictedEffBW,
			MeasuredEffBW:  r.MeasuredEffBW,
		})
	}
	return out
}

// PaperJobMix returns the paper's evaluation mix (Sec. 4): 300 jobs,
// uniform over the nine workloads, uniform 1-5 GPUs, reproducible by
// seed.
func PaperJobMix(seed int64) []Job {
	var out []Job
	for _, j := range jobs.PaperMix(seed) {
		sens := j.Sensitive
		out = append(out, Job{Workload: j.Workload, NumGPUs: j.NumGPUs, Iters: j.Iters, Sensitive: &sens})
	}
	return out
}

// IdealAggregateBandwidth returns the maximum aggregate bandwidth
// (GB/s) any k-GPU allocation can have on an idle machine — the
// BW_IdealAllocation denominator of the paper's fragmentation study
// (Fig. 4).
func IdealAggregateBandwidth(topologyName string, k int) (float64, error) {
	top, err := topology.ByName(topologyName)
	if err != nil {
		return 0, err
	}
	return top.IdealAggregate(k), nil
}

// AllocationAggregateBandwidth returns the aggregate bandwidth (GB/s)
// of all pairwise links among the given GPUs — BW_Allocated in the
// fragmentation study.
func AllocationAggregateBandwidth(topologyName string, gpus []int) (float64, error) {
	top, err := topology.ByName(topologyName)
	if err != nil {
		return 0, err
	}
	for _, g := range gpus {
		if !top.Graph.HasVertex(g) {
			return 0, fmt.Errorf("mapa: GPU %d not in topology %s", g, top.Name)
		}
	}
	return top.Graph.InducedSubgraph(gpus).TotalWeight(), nil
}

// CompareAllPolicies runs the same jobs under every paper policy
// (baseline, topo-aware, greedy, preserve) in real-run mode and
// returns results keyed by policy name.
func CompareAllPolicies(topologyName string, jobList []Job) (map[string]SimulationResult, error) {
	return compareAll(topologyName, jobList, sched.ModeRealRun)
}

// CompareAllPoliciesFixed is CompareAllPolicies in the paper's
// exploration-simulator mode (Sec. 5.1): every job keeps its baseline
// duration regardless of allocation, so the admission schedule is
// identical across policies and effective bandwidth isolates
// allocation quality. Use this to reproduce Fig. 18.
func CompareAllPoliciesFixed(topologyName string, jobList []Job) (map[string]SimulationResult, error) {
	return compareAll(topologyName, jobList, sched.ModeFixed)
}

func compareAll(topologyName string, jobList []Job, mode sched.Mode) (map[string]SimulationResult, error) {
	top, err := topology.ByName(topologyName)
	if err != nil {
		return nil, err
	}
	internal := make([]jobs.Job, len(jobList))
	for i, j := range jobList {
		ij, err := simJob(i+1, j)
		if err != nil {
			return nil, err
		}
		internal[i] = ij
	}
	results, err := sched.ComparePoliciesMode(top, sched.PaperPolicies(), internal, mode)
	if err != nil {
		return nil, err
	}
	out := make(map[string]SimulationResult, len(results))
	for name, res := range results {
		out[name] = convertResult(topologyName, res)
	}
	return out, nil
}
