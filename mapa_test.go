package mapa

import (
	"errors"
	"testing"

	"mapa/internal/policy"
)

func TestCatalogs(t *testing.T) {
	if len(Topologies()) < 6 {
		t.Errorf("Topologies = %v", Topologies())
	}
	if len(Policies()) < 4 {
		t.Errorf("Policies = %v", Policies())
	}
	if len(Workloads()) != 9 {
		t.Errorf("Workloads = %v", Workloads())
	}
	if len(Shapes()) < 5 {
		t.Errorf("Shapes = %v", Shapes())
	}
}

func TestNewSystemErrors(t *testing.T) {
	if _, err := NewSystem("nope", "preserve"); err == nil {
		t.Error("unknown topology should error")
	}
	if _, err := NewSystem("dgx-v100", "nope"); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestSystemAllocateRelease(t *testing.T) {
	sys, err := NewSystem("dgx-v100", "preserve")
	if err != nil {
		t.Fatal(err)
	}
	if sys.Topology() != "DGX-1-V100" || sys.Policy() != "preserve" || sys.NumGPUs() != 8 {
		t.Fatalf("system metadata wrong: %s %s %d", sys.Topology(), sys.Policy(), sys.NumGPUs())
	}
	lease, err := sys.Allocate(JobRequest{NumGPUs: 3, Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(lease.GPUs) != 3 || lease.EffBW <= 0 {
		t.Fatalf("lease = %+v", lease)
	}
	if got := len(sys.FreeGPUs()); got != 5 {
		t.Fatalf("free GPUs = %d, want 5", got)
	}
	if err := sys.Release(lease); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.FreeGPUs()); got != 8 {
		t.Fatalf("free GPUs after release = %d, want 8", got)
	}
	// Double release is an error.
	if err := sys.Release(lease); err == nil {
		t.Fatal("double release should error")
	}
	if err := sys.Release(nil); err == nil {
		t.Fatal("nil release should error")
	}
}

func TestSystemExhaustion(t *testing.T) {
	sys, err := NewSystem("summit", "greedy")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := sys.Allocate(JobRequest{NumGPUs: 4, Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Allocate(JobRequest{NumGPUs: 3, Sensitive: true}); !errors.Is(err, policy.ErrNoAllocation) {
		t.Fatalf("expected ErrNoAllocation, got %v", err)
	}
	if err := sys.Release(l1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Allocate(JobRequest{NumGPUs: 3, Sensitive: true}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestSystemShapeHandling(t *testing.T) {
	sys, _ := NewSystem("dgx-v100", "preserve")
	if _, err := sys.Allocate(JobRequest{NumGPUs: 4, Shape: "Tree"}); err != nil {
		t.Errorf("tree shape: %v", err)
	}
	if _, err := sys.Allocate(JobRequest{NumGPUs: 2, Shape: "Pentagram"}); err == nil {
		t.Error("unknown shape should error")
	}
	if _, err := sys.Allocate(JobRequest{NumGPUs: 0}); err == nil {
		t.Error("zero GPUs should error")
	}
}

func TestSystemMatrix(t *testing.T) {
	sys, _ := NewSystem("dgx-v100", "baseline")
	if m := sys.Matrix(); len(m) == 0 {
		t.Fatal("empty matrix")
	}
}

func TestSimulateSmallRun(t *testing.T) {
	jobsList := []Job{
		{Workload: "vgg-16", NumGPUs: 2},
		{Workload: "googlenet", NumGPUs: 3},
		{Workload: "gmm", NumGPUs: 1},
	}
	res, err := Simulate("dgx-v100", "preserve", jobsList)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 3 || res.Topology != "dgx-v100" || res.Policy != "preserve" {
		t.Fatalf("result = %+v", res)
	}
	for _, j := range res.Jobs {
		if j.ExecTime <= 0 || len(j.GPUs) != j.NumGPUs {
			t.Fatalf("job result = %+v", j)
		}
	}
	// Iters default applied; sensitivity from catalog.
	if !res.Jobs[0].Sensitive || res.Jobs[1].Sensitive {
		t.Fatal("catalog sensitivity not applied")
	}
}

func TestSimulateSensitivityOverride(t *testing.T) {
	f := false
	res, err := Simulate("dgx-v100", "preserve", []Job{
		{Workload: "vgg-16", NumGPUs: 2, Sensitive: &f},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Sensitive {
		t.Fatal("override ignored")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate("nope", "preserve", nil); err == nil {
		t.Error("unknown topology should error")
	}
	if _, err := Simulate("dgx-v100", "nope", nil); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := Simulate("dgx-v100", "preserve", []Job{{Workload: "nope", NumGPUs: 2}}); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestPaperJobMix(t *testing.T) {
	mix := PaperJobMix(7)
	if len(mix) != 300 {
		t.Fatalf("mix size = %d", len(mix))
	}
	for _, j := range mix {
		if j.NumGPUs < 1 || j.NumGPUs > 5 || j.Sensitive == nil {
			t.Fatalf("bad job %+v", j)
		}
	}
}

func TestCompareAllPolicies(t *testing.T) {
	mix := PaperJobMix(2)[:60]
	results, err := CompareAllPolicies("dgx-v100", mix)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results for %d policies", len(results))
	}
	for name, res := range results {
		if len(res.Jobs) != 60 {
			t.Errorf("%s completed %d jobs", name, len(res.Jobs))
		}
		if res.Throughput <= 0 {
			t.Errorf("%s throughput %g", name, res.Throughput)
		}
	}
	// The MAPA policies must not lose to baseline on throughput by
	// more than noise.
	if results["preserve"].Throughput < 0.95*results["baseline"].Throughput {
		t.Errorf("preserve throughput %g well below baseline %g",
			results["preserve"].Throughput, results["baseline"].Throughput)
	}
}
