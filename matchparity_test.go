package mapa

import (
	"fmt"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/effbw"
	"mapa/internal/jobs"
	"mapa/internal/matchcache"
	"mapa/internal/policy"
	"mapa/internal/sched"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// traceConfig selects one match-pipeline configuration for a parity
// run.
type traceConfig struct {
	workers   int
	cached    bool // tier-2 filtered-view cache
	universes bool // tier-1 idle-state universe store
	warm      bool // prewarm universes for the job-mix shapes
}

// allocationTrace runs the job list through a freshly configured
// engine and renders every record's allocation-relevant fields, so two
// traces compare byte-identically only if every decision matched.
func allocationTrace(t *testing.T, top *topology.Topology, policyName string, jobList []jobs.Job, cfg traceConfig) ([]string, *matchcache.Cache, *matchcache.Store) {
	t.Helper()
	scorer := score.NewScorer(effbw.TrainedFor(top))
	p, err := policy.ByName(policyName, scorer)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.workers > 1 {
		policy.SetParallelism(p, cfg.workers)
	}
	e := sched.NewEngine(top, p)
	if !cfg.cached {
		e.Cache = nil
	}
	if !cfg.universes {
		e.Universes = nil
	} else if cfg.warm {
		e.Universes.Warm(cfg.workers, appgraph.AllShapes(5)...)
	}
	res, err := e.Run(jobList)
	if err != nil {
		t.Fatal(err)
	}
	trace := make([]string, len(res.Records))
	for i, r := range res.Records {
		trace[i] = fmt.Sprintf("job=%d gpus=%v start=%.6f end=%.6f agg=%.6f eff=%.6f pres=%.6f",
			r.Job.ID, r.GPUs, r.Start, r.End, r.AggBW, r.PredictedEffBW, r.PreservedBW)
	}
	return trace, e.Cache, e.Universes
}

// TestCachedAndParallelMatchSequentialAllocations is the acceptance
// check for the match-pipeline rework: on the integration-test
// workloads, every fast path — the tier-2 cached path, the worker-pool
// parallel path, the universe-filtered path, and the warmed two-tier
// pipeline — must produce byte-identical allocation sequences to the
// plain sequential matcher.
func TestCachedAndParallelMatchSequentialAllocations(t *testing.T) {
	cases := []struct {
		topo   string
		policy string
		njobs  int
	}{
		{"dgx-v100", "preserve", 150},
		{"dgx-v100", "greedy", 150},
		{"dgx-a100", "preserve", 100},
		{"torus-2d", "preserve", 60},
	}
	for _, tc := range cases {
		t.Run(tc.topo+"/"+tc.policy, func(t *testing.T) {
			top, err := topology.ByName(tc.topo)
			if err != nil {
				t.Fatal(err)
			}
			jobList := jobs.PaperMix(1)[:tc.njobs]

			sequential, _, _ := allocationTrace(t, top, tc.policy, jobList, traceConfig{workers: 1})
			compare := func(name string, got []string) {
				t.Helper()
				if len(got) != len(sequential) {
					t.Fatalf("%s produced %d records, sequential %d", name, len(got), len(sequential))
				}
				for i := range sequential {
					if got[i] != sequential[i] {
						t.Fatalf("%s diverged from sequential at record %d:\n  seq: %s\n  got: %s",
							name, i, sequential[i], got[i])
					}
				}
			}

			cachedTrace, cache, _ := allocationTrace(t, top, tc.policy, jobList, traceConfig{workers: 1, cached: true})
			compare("cached", cachedTrace)
			parallel, _, _ := allocationTrace(t, top, tc.policy, jobList, traceConfig{workers: 4})
			compare("parallel", parallel)
			both, _, _ := allocationTrace(t, top, tc.policy, jobList, traceConfig{workers: 4, cached: true})
			compare("cached+parallel", both)
			filtered, _, fstore := allocationTrace(t, top, tc.policy, jobList, traceConfig{workers: 1, universes: true})
			compare("filtered (store only)", filtered)
			warmed, _, wstore := allocationTrace(t, top, tc.policy, jobList,
				traceConfig{workers: 1, cached: true, universes: true, warm: true})
			compare("warmed two-tier", warmed)
			warmedPar, _, _ := allocationTrace(t, top, tc.policy, jobList,
				traceConfig{workers: 4, cached: true, universes: true, warm: true})
			compare("warmed two-tier parallel", warmedPar)

			// The cache must actually be doing the work: steady-state
			// scheduling revisits availability states.
			if st := cache.Stats(); st.Hits == 0 {
				t.Fatalf("embedding cache saw no hits over %d jobs: %+v", tc.njobs, st)
			}
			// And the universes must actually be filtering: cold misses
			// (store-only: every decision) are filter-served.
			if st := fstore.Stats(); st.FilterServed == 0 {
				t.Fatalf("universe store served no filters over %d jobs: %+v", tc.njobs, st)
			}
			if st := wstore.Stats(); st.Universes == 0 || st.FilterServed == 0 {
				t.Fatalf("warmed store did not serve the run: %+v", st)
			}
		})
	}
}

// TestSystemSteadyStateUsesCache verifies the live-allocator wiring:
// an allocate/release cycle returns to a previously seen availability
// state and the next identical request hits the cache.
func TestSystemSteadyStateUsesCache(t *testing.T) {
	s, err := NewSystem("dgx-v100", "preserve")
	if err != nil {
		t.Fatal(err)
	}
	req := JobRequest{NumGPUs: 3, Shape: "Ring", Sensitive: true}
	var first *Lease
	for i := 0; i < 5; i++ {
		l, err := s.Allocate(req)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = l
		} else {
			if fmt.Sprint(l.GPUs) != fmt.Sprint(first.GPUs) {
				t.Fatalf("iteration %d allocated %v, first %v — decisions must be reproducible", i, l.GPUs, first.GPUs)
			}
		}
		if err := s.Release(l); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.CacheStats(); st.Hits == 0 {
		t.Fatalf("steady-state cycling produced no cache hits: %+v", st)
	}
}

// TestSystemWarmedServesFirstDecisionByFilter verifies the public
// warming option end to end: a warmed System answers its very first
// request for a warmed shape from the universe, not from a search.
func TestSystemWarmedServesFirstDecisionByFilter(t *testing.T) {
	s, err := NewSystem("dgx-v100", "preserve", WithWarmShapes(5))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Universes == 0 {
		t.Fatalf("WithWarmShapes built no universes: %+v", st)
	}
	if _, err := s.Allocate(JobRequest{NumGPUs: 4, Shape: "Ring", Sensitive: true}); err != nil {
		t.Fatal(err)
	}
	st := s.CacheStats()
	if st.FilterServed == 0 {
		t.Fatalf("first decision was not filter-served: %+v", st)
	}
	// The warmed System must agree with an unwarmed one.
	plain, err := NewSystem("dgx-v100", "preserve", WithoutCache(), WithoutUniverses())
	if err != nil {
		t.Fatal(err)
	}
	lw, err := plain.Allocate(JobRequest{NumGPUs: 4, Shape: "Ring", Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSystem("dgx-v100", "preserve", WithWarmShapes(5))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := s2.Allocate(JobRequest{NumGPUs: 4, Shape: "Ring", Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(l2.GPUs) != fmt.Sprint(lw.GPUs) {
		t.Fatalf("warmed system allocated %v, plain %v", l2.GPUs, lw.GPUs)
	}
}
